(** Domain-pool tests: results land in task order at any worker count,
    progress callbacks fire exactly once per task, and task exceptions
    propagate to the caller. *)

let check = Alcotest.check

let test_map_order_any_jobs () =
  let sequential = Exec.Pool.map ~jobs:1 25 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      let parallel = Exec.Pool.map ~jobs 25 (fun i -> i * i) in
      check
        (Alcotest.array Alcotest.int)
        (Printf.sprintf "jobs=%d matches sequential" jobs)
        sequential parallel)
    [ 2; 4; 9; 40 ]

let test_map_empty_and_single () =
  check Alcotest.int "no tasks" 0 (Array.length (Exec.Pool.map ~jobs:4 0 (fun i -> i)));
  check (Alcotest.array Alcotest.int) "one task" [| 7 |]
    (Exec.Pool.map ~jobs:4 1 (fun _ -> 7))

let test_uneven_tasks_balance () =
  (* tasks of very different cost still produce ordered results *)
  let f i =
    let spin = if i mod 5 = 0 then 40_000 else 10 in
    let acc = ref i in
    for _ = 1 to spin do
      acc := (!acc * 31) land 0xffff
    done;
    (i, !acc)
  in
  check
    (Alcotest.array (Alcotest.pair Alcotest.int Alcotest.int))
    "balanced run matches sequential"
    (Exec.Pool.map ~jobs:1 30 f)
    (Exec.Pool.map ~jobs:3 30 f)

let test_on_done_once_per_task () =
  let seen = Array.make 30 0 in
  let results =
    Exec.Pool.map ~jobs:4
      ~on_done:(fun i r ->
        check Alcotest.int "callback gets the result" (i * 3) r;
        seen.(i) <- seen.(i) + 1)
      30
      (fun i -> i * 3)
  in
  check Alcotest.int "all results" 30 (Array.length results);
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "task %d once" i) 1 c)
    seen

let test_exception_propagates () =
  match Exec.Pool.map ~jobs:3 8 (fun i -> if i = 5 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected the task failure to propagate"
  | exception Failure m -> check Alcotest.string "message" "boom" m

let test_submit_shutdown_drains () =
  let pool = Exec.Pool.create ~jobs:3 in
  let counter = Atomic.make 0 in
  let workers_seen = Atomic.make 0 in
  for _ = 1 to 50 do
    Exec.Pool.submit pool (fun wid ->
        (* worker ids are 0-based and dense *)
        if wid < 0 || wid >= 3 then Alcotest.fail "worker id out of range";
        Atomic.set workers_seen (Atomic.get workers_seen lor (1 lsl wid));
        Atomic.incr counter)
  done;
  Exec.Pool.shutdown pool;
  check Alcotest.int "every task ran" 50 (Atomic.get counter);
  match Exec.Pool.submit pool (fun _ -> ()) with
  | () -> Alcotest.fail "submit after shutdown must fail"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ( "exec-pool",
      [
        Alcotest.test_case "order at any jobs" `Quick test_map_order_any_jobs;
        Alcotest.test_case "empty and single" `Quick test_map_empty_and_single;
        Alcotest.test_case "uneven tasks balance" `Quick test_uneven_tasks_balance;
        Alcotest.test_case "on_done once per task" `Quick test_on_done_once_per_task;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "submit/shutdown drains" `Quick test_submit_shutdown_drains;
      ] );
  ]
