(** Domain-pool tests: results land in task order at any worker count,
    progress callbacks fire exactly once per task, and task exceptions
    propagate to the caller. *)

let check = Alcotest.check

let test_map_order_any_jobs () =
  let sequential = Exec.Pool.map ~jobs:1 25 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      let parallel = Exec.Pool.map ~jobs 25 (fun i -> i * i) in
      check
        (Alcotest.array Alcotest.int)
        (Printf.sprintf "jobs=%d matches sequential" jobs)
        sequential parallel)
    [ 2; 4; 9; 40 ]

let test_map_empty_and_single () =
  check Alcotest.int "no tasks" 0 (Array.length (Exec.Pool.map ~jobs:4 0 (fun i -> i)));
  check (Alcotest.array Alcotest.int) "one task" [| 7 |]
    (Exec.Pool.map ~jobs:4 1 (fun _ -> 7))

let test_uneven_tasks_balance () =
  (* tasks of very different cost still produce ordered results *)
  let f i =
    let spin = if i mod 5 = 0 then 40_000 else 10 in
    let acc = ref i in
    for _ = 1 to spin do
      acc := (!acc * 31) land 0xffff
    done;
    (i, !acc)
  in
  check
    (Alcotest.array (Alcotest.pair Alcotest.int Alcotest.int))
    "balanced run matches sequential"
    (Exec.Pool.map ~jobs:1 30 f)
    (Exec.Pool.map ~jobs:3 30 f)

let test_on_done_once_per_task () =
  let seen = Array.make 30 0 in
  let results =
    Exec.Pool.map ~jobs:4
      ~on_done:(fun i r ->
        check Alcotest.int "callback gets the result" (i * 3) r;
        seen.(i) <- seen.(i) + 1)
      30
      (fun i -> i * 3)
  in
  check Alcotest.int "all results" 30 (Array.length results);
  Array.iteri
    (fun i c -> check Alcotest.int (Printf.sprintf "task %d once" i) 1 c)
    seen

let test_exception_propagates () =
  match Exec.Pool.map ~jobs:3 8 (fun i -> if i = 5 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected the task failure to propagate"
  | exception Failure m -> check Alcotest.string "message" "boom" m

let test_submit_shutdown_drains () =
  let pool = Exec.Pool.create ~jobs:3 in
  let counter = Atomic.make 0 in
  let workers_seen = Atomic.make 0 in
  for _ = 1 to 50 do
    Exec.Pool.submit pool (fun wid ->
        (* worker ids are 0-based and dense *)
        if wid < 0 || wid >= 3 then Alcotest.fail "worker id out of range";
        Atomic.set workers_seen (Atomic.get workers_seen lor (1 lsl wid));
        Atomic.incr counter)
  done;
  Exec.Pool.shutdown pool;
  check Alcotest.int "every task ran" 50 (Atomic.get counter);
  match Exec.Pool.submit pool (fun _ -> ()) with
  | () -> Alcotest.fail "submit after shutdown must fail"
  | exception Invalid_argument _ -> ()

(* A raising task must not kill its worker or wedge shutdown: the queue
   drains, every domain is joined, and the earliest failure is re-raised
   only after the join. *)
let test_failure_drains_and_joins () =
  let pool = Exec.Pool.create ~jobs:3 in
  let ran = Atomic.make 0 in
  for i = 0 to 19 do
    Exec.Pool.submit pool (fun _ ->
        if i = 4 then failwith "task-4" else Atomic.incr ran)
  done;
  (match Exec.Pool.shutdown pool with
  | () -> Alcotest.fail "expected the task failure to re-raise"
  | exception Failure m -> check Alcotest.string "failure message" "task-4" m);
  (* the failing task did not take the rest of the queue down with it *)
  check Alcotest.int "other tasks still ran" 19 (Atomic.get ran)

(* With several failing tasks the surfaced exception is the one with the
   smallest submission index, independent of schedule. *)
let test_earliest_failure_wins () =
  let pool = Exec.Pool.create ~jobs:4 in
  for i = 0 to 15 do
    Exec.Pool.submit pool (fun _ ->
        if i mod 3 = 2 then failwith (Printf.sprintf "task-%d" i))
  done;
  match Exec.Pool.shutdown pool with
  | () -> Alcotest.fail "expected a failure"
  | exception Failure m -> check Alcotest.string "lowest index" "task-2" m

(* run_phase is a reusable barrier: phases never overlap, the pool
   survives many phases, and a failing phase re-raises from wait while
   leaving the pool usable for the next phase. *)
let test_run_phase_reuse () =
  let pool = Exec.Pool.create ~jobs:3 in
  let acc = Array.make 12 (-1) in
  for phase = 0 to 9 do
    Exec.Pool.run_phase pool 12 (fun i ~worker:_ -> acc.(i) <- (phase * 100) + i);
    Array.iteri
      (fun i v ->
        check Alcotest.int
          (Printf.sprintf "phase %d slot %d" phase i)
          ((phase * 100) + i)
          v)
      acc
  done;
  (match Exec.Pool.run_phase pool 6 (fun i ~worker:_ -> if i = 3 then failwith "mid") with
  | () -> Alcotest.fail "expected phase failure"
  | exception Failure m -> check Alcotest.string "phase failure" "mid" m);
  (* wait cleared the failure; the pool is still usable *)
  let ok = Atomic.make 0 in
  Exec.Pool.run_phase pool 8 (fun _ ~worker:_ -> Atomic.incr ok);
  check Alcotest.int "pool reusable after failed phase" 8 (Atomic.get ok);
  Exec.Pool.shutdown pool

(* failed is observable mid-flight and wait consumes the failure. *)
let test_failed_flag_and_wait () =
  let pool = Exec.Pool.create ~jobs:2 in
  Exec.Pool.submit pool (fun _ -> failwith "early");
  (match Exec.Pool.wait pool with
  | () -> Alcotest.fail "expected wait to re-raise"
  | exception Failure m -> check Alcotest.string "wait message" "early" m);
  check Alcotest.bool "wait cleared the failure" false (Exec.Pool.failed pool);
  Exec.Pool.wait pool;
  Exec.Pool.shutdown pool

let suite =
  [
    ( "exec-pool",
      [
        Alcotest.test_case "order at any jobs" `Quick test_map_order_any_jobs;
        Alcotest.test_case "empty and single" `Quick test_map_empty_and_single;
        Alcotest.test_case "uneven tasks balance" `Quick test_uneven_tasks_balance;
        Alcotest.test_case "on_done once per task" `Quick test_on_done_once_per_task;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "submit/shutdown drains" `Quick test_submit_shutdown_drains;
        Alcotest.test_case "failure drains and joins" `Quick
          test_failure_drains_and_joins;
        Alcotest.test_case "earliest failure wins" `Quick
          test_earliest_failure_wins;
        Alcotest.test_case "run_phase reusable barrier" `Quick
          test_run_phase_reuse;
        Alcotest.test_case "failed flag and wait" `Quick
          test_failed_flag_and_wait;
      ] );
  ]
