(** Experiment harness tests: a miniature matrix runs deterministically and
    every table/figure generator renders the expected rows. *)

let check = Alcotest.check

let tiny_config =
  { Experiments.Config.default with budget = 800; trials = 2; cull_rounds = 2 }

let tiny_subjects () =
  List.filter_map Subjects.Registry.find [ "flvmeta"; "imginfo" ]

let matrix =
  lazy (Experiments.Runner.run ~quiet:true ~subjects:(tiny_subjects ()) tiny_config)

let test_matrix_shape () =
  let m = Lazy.force matrix in
  check Alcotest.int "cells" (2 * 7) (Hashtbl.length m.cells);
  let c = Experiments.Runner.cell m ~subject:"flvmeta" ~fuzzer:"path" in
  check Alcotest.int "trials" 2 (List.length c.runs)

let test_parallel_matrix_identical () =
  (* The whole point of the domain-pool runner: every rendered table is
     byte-identical at any worker count. *)
  let m1 = Lazy.force matrix in
  let m4 =
    Experiments.Runner.run ~quiet:true ~jobs:4 ~subjects:(tiny_subjects ())
      tiny_config
  in
  check Alcotest.string "tables byte-identical at jobs=1 and jobs=4"
    (Experiments.Tables.all m1) (Experiments.Tables.all m4);
  let c = Experiments.Runner.cell m4 ~subject:"flvmeta" ~fuzzer:"path" in
  check Alcotest.bool "wall clock recorded" true (c.wall_s > 0.);
  check Alcotest.bool "matrix wall clock aggregates" true
    (Experiments.Runner.total_wall_s m4 >= c.wall_s)

let test_matrix_deterministic () =
  let m1 = Lazy.force matrix in
  let m2 = Experiments.Runner.run ~quiet:true ~subjects:(tiny_subjects ()) tiny_config in
  List.iter
    (fun fuzzer ->
      let a = Experiments.Runner.cell m1 ~subject:"imginfo" ~fuzzer in
      let b = Experiments.Runner.cell m2 ~subject:"imginfo" ~fuzzer in
      check Alcotest.int (fuzzer ^ " same queue")
        (List.hd a.runs).queue_size (List.hd b.runs).queue_size;
      check Alcotest.int (fuzzer ^ " same bugs")
        (Fuzz.Stats.Bug_set.cardinal (Experiments.Runner.cumulative_bugs a))
        (Fuzz.Stats.Bug_set.cardinal (Experiments.Runner.cumulative_bugs b)))
    [ "path"; "pcguard"; "cull"; "opp" ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_tables_render () =
  let m = Lazy.force matrix in
  let checks =
    [
      ("table1", Experiments.Tables.table1 m, "Queue (path)");
      ("table2", Experiments.Tables.table2 m, "TOTAL");
      ("table3", Experiments.Tables.table3 m, "GEOMEAN");
      ("table4", Experiments.Tables.table4 m, "pcguard");
      ("table6", Experiments.Tables.table6 m, "median");
      ("table7", Experiments.Tables.table7 m, "pathafl");
      ("table8", Experiments.Tables.table8 m, "afl");
      ("table9", Experiments.Tables.table9 m, "stack5");
      ("table10", Experiments.Tables.table10 m, "cull_r");
      ("fig3", Experiments.Tables.fig3_venn m, "Venn");
      ("fig2", Experiments.Tables.fig2_series ~subject:"flvmeta" m, "queue size");
    ]
  in
  List.iter
    (fun (name, rendered, expected) ->
      check Alcotest.bool (name ^ " mentions subjects") true
        (contains rendered "flvmeta" || contains rendered "Figure");
      check Alcotest.bool (name ^ " has marker") true (contains rendered expected))
    checks

let test_fig1_renders () =
  let s = Experiments.Tables.fig1 () in
  check Alcotest.bool "mentions paths" true (contains s "acyclic paths");
  check Alcotest.bool "lists ids" true (contains s "path id")

let test_config_env () =
  let c = Experiments.Config.of_env () in
  check Alcotest.bool "positive budget" true (c.budget > 0);
  check Alcotest.bool "positive trials" true (c.trials > 0)

let test_aggregations () =
  let m = Lazy.force matrix in
  let c = Experiments.Runner.cell m ~subject:"imginfo" ~fuzzer:"pcguard" in
  let bugs = Experiments.Runner.cumulative_bugs c in
  check Alcotest.bool "bug union >= per-trial max" true
    (Fuzz.Stats.Bug_set.cardinal bugs
    >= List.fold_left
         (fun acc (r : Fuzz.Strategy.run_result) ->
           max acc (Fuzz.Triage.unique_bugs r.triage))
         0 c.runs);
  check Alcotest.bool "median queue positive" true (Experiments.Runner.median_queue c > 0.);
  check Alcotest.bool "edges non-empty" true
    (not (Fuzz.Measure.Int_set.is_empty (Experiments.Runner.cumulative_edges c)))

let suite =
  [
    ( "experiments",
      [
        Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
        Alcotest.test_case "matrix deterministic" `Quick test_matrix_deterministic;
        Alcotest.test_case "parallel matrix identical" `Quick
          test_parallel_matrix_identical;
        Alcotest.test_case "tables render" `Quick test_tables_render;
        Alcotest.test_case "figure 1 renders" `Quick test_fig1_renders;
        Alcotest.test_case "config from env" `Quick test_config_env;
        Alcotest.test_case "aggregations" `Quick test_aggregations;
      ] );
  ]
