(** Native-emission differential suite: the {!Vm.Emit} engine (generated
    OCaml source, out-of-process compile, Dynlink load) vs the
    interpreter-driven listeners — same status (crash kinds, sites,
    stacks), same block counts (hence fuel accounting), identical cmp
    streams and classified traces — on the curated subjects and on 300
    fixed-seed chain/diamond CFGs batch-compiled through
    {!Vm.Emit.preload}. A fuel ladder drives hang points into chain
    interiors where the emitted bulk-burn replay must reproduce the
    interpreter's exact accounting; [run_batch] is checked against
    one-shot runs; [Ssignal] artifacts must reproduce
    {!Vm.Compile.signal_hooks} bit for bit.

    The whole suite degrades to a skip (with a stderr note) when the
    emitter reports unavailable — no OCaml compiler on PATH, no Dynlink
    — so [dune runtest] stays green on toolchain-less machines. *)

let check = Alcotest.check
let check_bool = check Alcotest.bool

let all_modes =
  [
    Pathcov.Feedback.Block;
    Pathcov.Feedback.Edge;
    Pathcov.Feedback.Ngram 4;
    Pathcov.Feedback.Path;
    Pathcov.Feedback.Pathafl;
  ]

let feedback_hooks ?(h_cmp = fun _ _ -> ()) (fb : Pathcov.Feedback.t) :
    Vm.Interp.hooks =
  {
    Vm.Interp.h_call = fb.on_call;
    h_block = fb.on_block;
    h_edge = fb.on_edge;
    h_ret = fb.on_ret;
    h_cmp;
  }

let pp_status fmt (s : Vm.Interp.status) =
  match s with
  | Vm.Interp.Finished None -> Fmt.string fmt "finished(array)"
  | Vm.Interp.Finished (Some n) -> Fmt.pf fmt "finished(%d)" n
  | Vm.Interp.Hung -> Fmt.string fmt "hung"
  | Vm.Interp.Crashed c -> Fmt.pf fmt "crashed(%a)" Vm.Crash.pp c

let status_t : Vm.Interp.status Alcotest.testable =
  Alcotest.testable pp_status ( = )

let subject_inputs (s : Subjects.Subject.t) : string list =
  s.seeds @ List.map (fun (b : Subjects.Subject.bug) -> b.witness) s.bugs

let trace_contents (m : Pathcov.Coverage_map.t) : (int * int) list =
  let acc = ref [] in
  Pathcov.Coverage_map.iteri_set (fun i b -> acc := (i, b) :: !acc) m;
  List.rev !acc

(* One availability probe for the whole suite: emit + compile + load a
   trivial subject. On failure every test below becomes a no-op pass
   (with one stderr note), keeping CI green without a toolchain. *)
let available =
  lazy
    (let prog = Minic.Lower.compile "fn main() { return 0; }" in
     let prepared = Vm.Interp.prepare prog in
     match Vm.Emit.instance prepared Vm.Compile.Snone with
     | Ok _ -> true
     | Error reason ->
         Printf.eprintf
           "[test_native] emitter unavailable (%s); suite skipped\n%!" reason;
         false)

let instance_exn ?plans ?cmplog prepared spec =
  match Vm.Emit.instance ?plans ?cmplog prepared spec with
  | Ok t -> t
  | Error reason -> Alcotest.failf "Emit.instance failed: %s" reason

(* Batch-compile every (curated subject, spec) pair the tests below
   need into a few grouped compilation units up front — ~6x fewer
   compiler spawns than letting each [instance] call build its own. *)
let curated_preloaded =
  lazy
    (let subs =
       List.map
         (fun s -> Vm.Interp.prepare (Subjects.Subject.compile_fresh s))
         Subjects.Registry.all
     in
     let triples =
       List.concat_map
         (fun prepared ->
           (prepared, Vm.Compile.Ssignal, false)
           :: List.map
                (fun m -> (prepared, Vm.Compile.Sfull m, true))
                all_modes)
         subs
     in
     ignore (Vm.Emit.preload triples))

(* --- curated subjects, every mode: native agrees with the
   interpreter-driven listeners (status, blocks, cmp stream, trace) --- *)

let test_native_mode_agreement () =
  if not (Lazy.force available) then ()
  else begin
    Lazy.force curated_preloaded;
    List.iter
      (fun (s : Subjects.Subject.t) ->
        let prog = Subjects.Subject.compile_fresh s in
        let prepared = Vm.Interp.prepare prog in
        List.iter
          (fun mode ->
            let fb = Pathcov.Feedback.make mode prog in
            let icmps = ref [] and ncmps = ref [] in
            let ictx =
              Vm.Interp.create_ctx
                ~hooks:
                  (feedback_hooks
                     ~h_cmp:(fun a b -> icmps := (a, b) :: !icmps)
                     fb)
                prepared
            in
            let nctx = Vm.Interp.create_ctx prepared in
            let art = instance_exn prepared (Vm.Compile.Sfull mode) in
            let ntrace = Pathcov.Coverage_map.create () in
            Vm.Emit.bind art ~trace:ntrace ~h_cmp:(fun a b ->
                ncmps := (a, b) :: !ncmps);
            List.iter
              (fun input ->
                fb.reset ();
                Pathcov.Coverage_map.clear fb.trace;
                Pathcov.Coverage_map.clear ntrace;
                icmps := [];
                ncmps := [];
                let i = Vm.Interp.run_ctx ictx ~input in
                let n = Vm.Emit.run art nctx ~input in
                let where =
                  Printf.sprintf "%s/%s %S" s.name
                    (Pathcov.Feedback.mode_name mode)
                    input
                in
                check status_t (where ^ " status") i.status n.status;
                check Alcotest.int (where ^ " blocks") i.blocks_executed
                  n.blocks_executed;
                check
                  Alcotest.(list (pair int int))
                  (where ^ " cmp stream") (List.rev !icmps) (List.rev !ncmps);
                Pathcov.Coverage_map.classify fb.trace;
                Pathcov.Coverage_map.classify ntrace;
                check
                  Alcotest.(list (pair int int))
                  (where ^ " classified trace")
                  (trace_contents fb.trace) (trace_contents ntrace))
              (subject_inputs s))
          all_modes)
      Subjects.Registry.all
  end

(* --- 300 fixed-seed chain/diamond CFGs, modes rotated, artifacts
   batch-compiled up front through preload so the whole corpus costs a
   handful of compiler invocations (and zero on a warm cache) --- *)

let differential_corpus =
  lazy
    (let rand = Random.State.make [| 0xA11CE; 300 |] in
     let progs =
       QCheck.Gen.generate ~rand ~n:300 (QCheck.gen Gen.arbitrary_chain_ir)
     in
     let inputs =
       QCheck.Gen.generate ~rand ~n:300 (QCheck.gen Gen.arbitrary_input)
     in
     List.map2
       (fun prog input -> (prog, Vm.Interp.prepare prog, input))
       progs inputs)

let rotation_mode i = List.nth all_modes (i mod List.length all_modes)

let test_native_differential () =
  if not (Lazy.force available) then ()
  else begin
    let corpus = Lazy.force differential_corpus in
    let triples =
      List.mapi
        (fun i (_, prepared, _) ->
          (prepared, Vm.Compile.Sfull (rotation_mode i), true))
        corpus
    in
    let served = Vm.Emit.preload triples in
    check Alcotest.int "preload serves the whole corpus"
      (List.length triples) served;
    List.iteri
      (fun i (prog, prepared, input) ->
        let mode = rotation_mode i in
        let fb = Pathcov.Feedback.make mode prog in
        let icmps = ref [] and ncmps = ref [] in
        let ictx =
          Vm.Interp.create_ctx
            ~hooks:
              (feedback_hooks ~h_cmp:(fun a b -> icmps := (a, b) :: !icmps) fb)
            prepared
        in
        let nctx = Vm.Interp.create_ctx prepared in
        let art = instance_exn prepared (Vm.Compile.Sfull mode) in
        let ntrace = Pathcov.Coverage_map.create () in
        Vm.Emit.bind art ~trace:ntrace ~h_cmp:(fun a b ->
            ncmps := (a, b) :: !ncmps);
        fb.reset ();
        Pathcov.Coverage_map.clear fb.trace;
        let i_out = Vm.Interp.run_ctx ~fuel:50_000 ictx ~input in
        let n_out = Vm.Emit.run ~fuel:50_000 art nctx ~input in
        let where =
          Printf.sprintf "cfg[%d]/%s" i (Pathcov.Feedback.mode_name mode)
        in
        check status_t (where ^ " status") i_out.status n_out.status;
        check Alcotest.int (where ^ " blocks") i_out.blocks_executed
          n_out.blocks_executed;
        check
          Alcotest.(list (pair int int))
          (where ^ " cmp stream") (List.rev !icmps) (List.rev !ncmps);
        Pathcov.Coverage_map.classify fb.trace;
        Pathcov.Coverage_map.classify ntrace;
        check
          Alcotest.(list (pair int int))
          (where ^ " classified trace")
          (trace_contents fb.trace) (trace_contents ntrace))
      corpus
  end

(* --- fuel ladder over the Path-mode slice of the corpus: hang points
   land mid-chain; the emitted bulk-burn dispatcher must give them back
   and replay carefully with the interpreter's exact accounting --- *)

let test_native_fuel_ladder () =
  if not (Lazy.force available) then ()
  else
    List.iteri
      (fun i (prog, prepared, input) ->
        if i mod List.length all_modes = 3 (* the Path rotation slots *)
        then begin
          let fb = Pathcov.Feedback.make Pathcov.Feedback.Path prog in
          let ictx = Vm.Interp.create_ctx ~hooks:(feedback_hooks fb) prepared in
          let nctx = Vm.Interp.create_ctx prepared in
          let art =
            instance_exn prepared (Vm.Compile.Sfull Pathcov.Feedback.Path)
          in
          let ntrace = Pathcov.Coverage_map.create () in
          Vm.Emit.bind art ~trace:ntrace ~h_cmp:(fun _ _ -> ());
          List.iter
            (fun fuel ->
              fb.reset ();
              Pathcov.Coverage_map.clear fb.trace;
              Pathcov.Coverage_map.clear ntrace;
              let i_out = Vm.Interp.run_ctx ~fuel ictx ~input in
              let n_out = Vm.Emit.run ~fuel art nctx ~input in
              let where = Printf.sprintf "cfg[%d] fuel=%d" i fuel in
              check status_t (where ^ " status") i_out.status n_out.status;
              check Alcotest.int (where ^ " blocks") i_out.blocks_executed
                n_out.blocks_executed;
              Pathcov.Coverage_map.classify fb.trace;
              Pathcov.Coverage_map.classify ntrace;
              check
                Alcotest.(list (pair int int))
                (where ^ " trace")
                (trace_contents fb.trace) (trace_contents ntrace))
            [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 500; 5_000 ]
        end)
      (Lazy.force differential_corpus)

(* --- batch entry: one run_batch call over a subject's inputs must
   reproduce the one-shot runs candidate for candidate --- *)

let test_native_batch_agreement () =
  if not (Lazy.force available) then ()
  else begin
    Lazy.force curated_preloaded;
    List.iter
      (fun (s : Subjects.Subject.t) ->
        let prog = Subjects.Subject.compile_fresh s in
        let prepared = Vm.Interp.prepare prog in
        let art =
          instance_exn prepared (Vm.Compile.Sfull Pathcov.Feedback.Path)
        in
        let trace = Pathcov.Coverage_map.create () in
        Vm.Emit.bind art ~trace ~h_cmp:(fun _ _ -> ());
        let inputs = Array.of_list (subject_inputs s) in
        let n = Array.length inputs in
        let ctx1 = Vm.Interp.create_ctx prepared in
        let expect =
          Array.map
            (fun input ->
              Pathcov.Coverage_map.clear trace;
              let out = Vm.Emit.run art ctx1 ~input in
              Pathcov.Coverage_map.classify trace;
              (out.Vm.Interp.status, out.blocks_executed, trace_contents trace))
            inputs
        in
        let ctx2 = Vm.Interp.create_ctx prepared in
        let bufs = Array.map Bytes.of_string inputs in
        Vm.Emit.run_batch art ctx2 ~n
          ~gen:(fun k ->
            Pathcov.Coverage_map.clear trace;
            (bufs.(k), Bytes.length bufs.(k)))
          ~sink:(fun k out ->
            Pathcov.Coverage_map.classify trace;
            let st, bl, tr = expect.(k) in
            let where = Printf.sprintf "%s[%d]" s.name k in
            check status_t (where ^ " status") st out.Vm.Interp.status;
            check Alcotest.int (where ^ " blocks") bl out.blocks_executed;
            check
              Alcotest.(list (pair int int))
              (where ^ " trace") tr (trace_contents trace)))
      Subjects.Registry.all
  end

(* --- Ssignal artifacts: the emitted rolling hash must equal the
   interpreter-hook hash on every curated input --- *)

let test_native_signal_agreement () =
  if not (Lazy.force available) then ()
  else begin
    Lazy.force curated_preloaded;
    List.iter
      (fun (s : Subjects.Subject.t) ->
        let prog = Subjects.Subject.compile_fresh s in
        let prepared = Vm.Interp.prepare prog in
        let cell = ref 0 in
        let ictx =
          Vm.Interp.create_ctx
            ~hooks:(Vm.Compile.signal_hooks prepared ~cell)
            prepared
        in
        let nctx = Vm.Interp.create_ctx prepared in
        let art = instance_exn ~cmplog:false prepared Vm.Compile.Ssignal in
        List.iter
          (fun input ->
            cell := 0;
            let i = Vm.Interp.run_ctx ictx ~input in
            let n = Vm.Emit.run art nctx ~input in
            let where = Printf.sprintf "%s %S" s.name input in
            check status_t (where ^ " status") i.status n.status;
            check Alcotest.int (where ^ " signal") !cell (Vm.Emit.signal art))
          (subject_inputs s))
      Subjects.Registry.all
  end

(* --- cache hygiene: a second instantiation of an already-served triple
   must be a registry hit, never a recompile --- *)

let test_native_cache_hit () =
  if not (Lazy.force available) then ()
  else begin
    let s = Subjects.Registry.find_exn "cflow" in
    let prog = Subjects.Subject.compile_fresh s in
    let prepared = Vm.Interp.prepare prog in
    let _ =
      instance_exn prepared (Vm.Compile.Sfull Pathcov.Feedback.Path)
    in
    let before = Vm.Emit.stats () in
    let _ =
      instance_exn prepared (Vm.Compile.Sfull Pathcov.Feedback.Path)
    in
    let after = Vm.Emit.stats () in
    check Alcotest.int "second instance is a cache hit"
      (before.cache_hits + 1) after.cache_hits;
    check Alcotest.int "second instance compiles nothing"
      before.cache_misses after.cache_misses
  end

(* --- forced failure: PATHFUZZ_EMIT_FAIL=1 must turn every
   instantiation into a clean Error (the campaign fallback hook) --- *)

let test_native_forced_fail () =
  let prog = Minic.Lower.compile "fn main() { return 0; }" in
  let prepared = Vm.Interp.prepare prog in
  Unix.putenv "PATHFUZZ_EMIT_FAIL" "1";
  let r = Vm.Emit.instance prepared Vm.Compile.Snone in
  Unix.putenv "PATHFUZZ_EMIT_FAIL" "";
  check_bool "forced failure yields Error" true (Result.is_error r)

let suite =
  [
    ( "native",
      [
        Alcotest.test_case "subjects: every mode agrees" `Quick
          test_native_mode_agreement;
        Alcotest.test_case "300 chain/diamond CFGs agree" `Slow
          test_native_differential;
        Alcotest.test_case "fuel accounting exact at every budget" `Slow
          test_native_fuel_ladder;
        Alcotest.test_case "batch agrees with one-shot runs" `Quick
          test_native_batch_agreement;
        Alcotest.test_case "selective signal agrees with hooks" `Quick
          test_native_signal_agreement;
        Alcotest.test_case "repeat instantiation hits the cache" `Quick
          test_native_cache_hit;
        Alcotest.test_case "PATHFUZZ_EMIT_FAIL forces clean failure" `Quick
          test_native_forced_fail;
      ] );
  ]
