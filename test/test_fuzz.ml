(** Fuzzer component tests: RNG, mutators, corpus, triage, campaign and
    the strategy drivers. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Fuzz.Rng.create 42 and b = Fuzz.Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Fuzz.Rng.int a 1000) (Fuzz.Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Fuzz.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Fuzz.Rng.int rng 17 in
    check Alcotest.bool "in bounds" true (v >= 0 && v < 17);
    let r = Fuzz.Rng.range rng 3 9 in
    check Alcotest.bool "range" true (r >= 3 && r <= 9)
  done

let test_rng_chance () =
  let rng = Fuzz.Rng.create 1 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Fuzz.Rng.chance rng ~num:1 ~den:4 then incr hits
  done;
  check Alcotest.bool "roughly a quarter" true (!hits > 2000 && !hits < 3000)

let test_rng_split_independent () =
  let rng = Fuzz.Rng.create 5 in
  let c1 = Fuzz.Rng.split rng in
  let c2 = Fuzz.Rng.split rng in
  check Alcotest.bool "children differ" true
    (List.init 10 (fun _ -> Fuzz.Rng.int c1 1000)
    <> List.init 10 (fun _ -> Fuzz.Rng.int c2 1000))

(* --- mutators --- *)

let test_havoc_bounds () =
  let rng = Fuzz.Rng.create 3 in
  for _ = 1 to 500 do
    let child = Fuzz.Mutator.havoc rng (String.make 10 'a') in
    check Alcotest.bool "non-empty" true (String.length child > 0);
    check Alcotest.bool "bounded" true (String.length child <= Fuzz.Mutator.max_len)
  done

let test_havoc_deterministic () =
  let run seed =
    let rng = Fuzz.Rng.create seed in
    List.init 20 (fun _ -> Fuzz.Mutator.havoc rng "hello world")
  in
  check (Alcotest.list Alcotest.string) "same seed same children" (run 9) (run 9);
  check Alcotest.bool "different seed different children" true (run 9 <> run 10)

let test_havoc_empty_input () =
  let rng = Fuzz.Rng.create 4 in
  let child = Fuzz.Mutator.havoc rng "" in
  check Alcotest.bool "synthesises a byte" true (String.length child >= 1)

let test_i2s_le_substitution () =
  let rng = Fuzz.Rng.create 1 in
  (* 1-byte encoding *)
  let s = Fuzz.Mutator.i2s_apply rng { observed = 65; wanted = 90 } "xAx" in
  check Alcotest.string "byte replaced" "xZx" s;
  (* 2-byte little-endian *)
  let input = "ab\x39\x30cd" (* 0x3039 = 12345 *) in
  let s2 = Fuzz.Mutator.i2s_apply rng { observed = 12345; wanted = 513 } input in
  check Alcotest.string "u16 replaced" "ab\x01\x02cd" s2

let test_i2s_ascii_substitution () =
  let rng = Fuzz.Rng.create 1 in
  let candidates =
    List.init 20 (fun _ ->
        Fuzz.Mutator.i2s_apply rng { observed = 80; wanted = 9999 } "width=80;")
  in
  check Alcotest.bool "some rewrite mentions 9999" true
    (List.exists (fun s -> s = "width=9999;" || s <> "width=80;") candidates)

let test_i2s_negative_wanted () =
  let rng = Fuzz.Rng.create 1 in
  (* ASCII: a comparison against a negative constant must emit the signed
     decimal form, not clamp to zero ("width=80;" has exactly one
     candidate rewrite, so the result is deterministic) *)
  check Alcotest.string "signed decimal" "width=-5;"
    (Fuzz.Mutator.i2s_apply rng { observed = 80; wanted = -5 } "width=80;");
  (* little-endian: negative wanted truncates to two's-complement bytes *)
  check Alcotest.string "two's-complement byte" "x\254x"
    (Fuzz.Mutator.i2s_apply rng { observed = 65; wanted = -2 } "xAx")

let test_i2s_no_match () =
  let rng = Fuzz.Rng.create 1 in
  let s = Fuzz.Mutator.i2s_apply rng { observed = 123456; wanted = 1 } "zz" in
  check Alcotest.string "unchanged" "zz" s

let test_deterministic_stage () =
  let children = Fuzz.Mutator.deterministic "ab" in
  (* 8 bitflips + 9 interesting bytes per position *)
  check Alcotest.int "children count" (2 * (8 + 9)) (List.length children);
  check Alcotest.bool "all same length" true
    (List.for_all (fun c -> String.length c = 2) children)

(* --- corpus --- *)

let mk_entry corpus data indices blocks =
  Fuzz.Corpus.add corpus ~data ~indices:(Array.of_list indices) ~exec_blocks:blocks
    ~depth:0 ~found_at:0

let test_favored_covers_union () =
  let c = Fuzz.Corpus.create () in
  ignore (mk_entry c "a" [ 1; 2; 3 ] 10);
  ignore (mk_entry c "b" [ 3; 4 ] 5);
  ignore (mk_entry c "c" [ 1; 2; 3; 4 ] 100);
  let favored = Fuzz.Corpus.favored_subset c in
  let covered =
    List.sort_uniq compare
      (List.concat_map
         (fun (e : Fuzz.Corpus.entry) -> Array.to_list e.indices)
         favored)
  in
  check (Alcotest.list Alcotest.int) "union preserved" [ 1; 2; 3; 4 ] covered;
  (* expensive entry "c" is redundant: a+b already cover everything cheaper *)
  check Alcotest.bool "redundant entry trimmed" true
    (not (List.exists (fun (e : Fuzz.Corpus.entry) -> e.data = "c") favored))

let test_fav_factor_prefers_cheap () =
  let c = Fuzz.Corpus.create () in
  ignore (mk_entry c "slow" [ 7 ] 1000);
  ignore (mk_entry c "fast" [ 7 ] 1);
  let favored = Fuzz.Corpus.favored_subset c in
  check Alcotest.int "single favored" 1 (List.length favored);
  check Alcotest.string "the fast one" "fast" (List.hd favored).data

(* --- triage --- *)

let crash_of src input =
  match Vm.Interp.crash_of (Minic.Lower.compile src) ~input with
  | Some c -> c
  | None -> fail "expected crash"

let test_triage_dedup () =
  let t = Fuzz.Triage.create () in
  let c1 = crash_of "fn main() { bug(1); }" "" in
  Fuzz.Triage.record_crash t ~crash:c1 ~input:"a" ~at_exec:1 ~coverage_novel:true;
  Fuzz.Triage.record_crash t ~crash:c1 ~input:"b" ~at_exec:2 ~coverage_novel:false;
  check Alcotest.int "total" 2 t.total_crashes;
  check Alcotest.int "unique stacks" 1 (Fuzz.Triage.unique_crashes t);
  check Alcotest.int "unique bugs" 1 (Fuzz.Triage.unique_bugs t);
  check Alcotest.int "afl-unique" 1 (Fuzz.Triage.afl_unique_crashes t);
  check
    (Alcotest.option Alcotest.string)
    "witness is first" (Some "a")
    (Fuzz.Triage.bug_witness t (Vm.Crash.Id 1))

let test_triage_merge () =
  let a = Fuzz.Triage.create () and b = Fuzz.Triage.create () in
  Fuzz.Triage.record_crash a
    ~crash:(crash_of "fn main() { bug(1); }" "")
    ~input:"x" ~at_exec:1 ~coverage_novel:true;
  Fuzz.Triage.record_crash b
    ~crash:(crash_of "fn main() { bug(2); }" "")
    ~input:"y" ~at_exec:1 ~coverage_novel:true;
  Fuzz.Triage.merge ~into:a b;
  check Alcotest.int "merged bugs" 2 (Fuzz.Triage.unique_bugs a);
  check Alcotest.int "merged totals" 2 a.total_crashes

(* --- campaign --- *)

let easy_bug_src =
  "fn main() { if (in(0) == 104) { if (in(1) == 105) { bug(5); } } return 0; }"

let run_campaign ?(budget = 3000) ?(seed = 1) ?(mode = Pathcov.Feedback.Edge) src seeds =
  let prog = Minic.Lower.compile src in
  let config =
    { Fuzz.Campaign.default_config with mode; budget; rng_seed = seed }
  in
  Fuzz.Campaign.run ~config prog ~seeds

let test_campaign_finds_easy_bug () =
  let r = run_campaign easy_bug_src [ "aa" ] in
  check Alcotest.bool "bug 5 found" true
    (List.mem (Vm.Crash.Id 5) (Fuzz.Triage.bugs r.triage))

let test_campaign_budget_respected () =
  let r = run_campaign ~budget:500 easy_bug_src [ "aa" ] in
  check Alcotest.bool "execs close to budget" true
    (r.execs >= 500 && r.execs < 600)

let test_campaign_deterministic () =
  let r1 = run_campaign ~seed:3 easy_bug_src [ "aa" ] in
  let r2 = run_campaign ~seed:3 easy_bug_src [ "aa" ] in
  check Alcotest.int "same execs" r1.execs r2.execs;
  check Alcotest.int "same queue" (Fuzz.Corpus.size r1.corpus)
    (Fuzz.Corpus.size r2.corpus);
  check Alcotest.int "same crashes" r1.triage.total_crashes r2.triage.total_crashes;
  let r3 = run_campaign ~seed:4 easy_bug_src [ "aa" ] in
  ignore r3

let test_campaign_seeds_always_retained () =
  let r = run_campaign ~budget:50 "fn main() { return in(0); }" [ "x"; "yy" ] in
  check Alcotest.bool "at least the seeds" true (Fuzz.Corpus.size r.corpus >= 1)

let test_campaign_queue_series_monotonic () =
  let r = run_campaign easy_bug_src [ "aa" ] in
  let rec mono = function
    | (x1, q1) :: ((x2, q2) :: _ as rest) ->
        x1 <= x2 && q1 <= q2 && mono rest
    | _ -> true
  in
  check Alcotest.bool "series monotonic" true (mono r.queue_series)

let test_campaign_survives_crashing_seed () =
  let r = run_campaign ~budget:200 "fn main() { bug(1); }" [ "a" ] in
  check Alcotest.bool "ran" true (r.execs > 0);
  check Alcotest.int "bug found from seed" 1 (Fuzz.Triage.unique_bugs r.triage)

let test_calibration_crash_triaged () =
  (* A queue entry whose data crashes was parked without triage (the
     synthetic-fallback scenario: retained with no clean execution). Its
     first re-execution is the cmplog calibration run, whose outcome used
     to be discarded — the crash must reach Triage with a witness. *)
  let prog =
    Minic.Lower.compile "fn main() { if (len() == 0) { return 0; } bug(9); }"
  in
  let st = Fuzz.Campaign.make_state prog in
  let e =
    Fuzz.Corpus.add st.corpus ~data:"X" ~indices:[||] ~exec_blocks:1 ~depth:0
      ~found_at:0
  in
  check Alcotest.int "nothing triaged yet" 0 (Fuzz.Triage.unique_bugs st.triage);
  ignore (Fuzz.Campaign.calibrate st e);
  check Alcotest.int "calibration crash triaged" 1
    (Fuzz.Triage.unique_bugs st.triage);
  check
    (Alcotest.option Alcotest.string)
    "witness recorded" (Some "X")
    (Fuzz.Triage.bug_witness st.triage (Vm.Crash.Id 9))

let test_calibration_crashes_counted () =
  (* Every input crashes, so the fallback entry crashes on each
     calibration run too: every execution of the campaign must show up in
     total_crashes, not only the mutated candidates. *)
  let prog = Minic.Lower.compile "fn main() { bug(3); }" in
  let config = { Fuzz.Campaign.default_config with budget = 300; rng_seed = 1 } in
  let r = Fuzz.Campaign.run ~config prog ~seeds:[] in
  check Alcotest.int "every execution crashed and was counted" r.execs
    r.triage.total_crashes;
  check Alcotest.bool "bug recorded" true
    (List.mem (Vm.Crash.Id 3) (Fuzz.Triage.bugs r.triage))

let test_campaign_max_depth () =
  (* max_depth flows from the campaign config into the VM: a recursive
     subject bounded at depth 8 crashes with a stack overflow. *)
  let prog =
    Minic.Lower.compile
      "fn f(n) { if (n == 0) { return 0; } return f(n - 1); } fn main() { \
       return f(64); }"
  in
  let config = { Fuzz.Campaign.default_config with max_depth = 8 } in
  let st = Fuzz.Campaign.make_state ~config prog in
  (match (Fuzz.Campaign.execute st "x").status with
  | Vm.Interp.Crashed { kind = Vm.Crash.Stack_overflow; _ } -> ()
  | _ -> Alcotest.fail "expected stack overflow under max_depth 8");
  let deep = { Fuzz.Campaign.default_config with max_depth = 100 } in
  let st2 = Fuzz.Campaign.make_state ~config:deep prog in
  match (Fuzz.Campaign.execute st2 "x").status with
  | Vm.Interp.Finished (Some 0) -> ()
  | _ -> Alcotest.fail "expected clean finish under max_depth 100"

let test_full_queue_preserves_virgin () =
  (* With the queue at max_queue, a novel trace must not be folded into
     the virgin map: that would mark its coverage as seen forever without
     retaining any input that reaches it. *)
  let prog =
    Minic.Lower.compile "fn main() { if (in(0) == 104) { return 1; } return 0; }"
  in
  let config = { Fuzz.Campaign.default_config with max_queue = 1 } in
  let st = Fuzz.Campaign.make_state ~config prog in
  Fuzz.Campaign.add_seed st "a";
  check Alcotest.int "queue at capacity" 1 (Fuzz.Corpus.size st.corpus);
  Fuzz.Campaign.process st ~depth:1 "h";
  check Alcotest.int "not retained over capacity" 1 (Fuzz.Corpus.size st.corpus);
  ignore (Fuzz.Campaign.execute st "h");
  check Alcotest.bool "its coverage is still virgin" true
    (Pathcov.Coverage_map.merge_into ~virgin:st.virgin st.feedback.trace
    <> Pathcov.Coverage_map.Nothing)

(* --- measure & strategies --- *)

let test_edge_union_and_cull () =
  let prog = Minic.Lower.compile easy_bug_src in
  let inputs = [ "aa"; "ha"; "hi"; "aa" ] in
  let union = Fuzz.Measure.edge_union prog inputs in
  let culled = Fuzz.Measure.edge_preserving_cull prog inputs in
  check Alcotest.bool "culled is subset" true
    (List.for_all (fun i -> List.mem i inputs) culled);
  let union2 = Fuzz.Measure.edge_union prog culled in
  check Alcotest.bool "edge coverage preserved" true
    (Fuzz.Measure.Int_set.equal union union2);
  check Alcotest.bool "culled is smaller or equal" true
    (List.length culled <= List.length (List.sort_uniq compare inputs))

let test_path_preserving_cull () =
  let prog = Minic.Lower.compile easy_bug_src in
  let inputs = [ "aa"; "ha"; "hi" ] in
  let culled = Fuzz.Measure.path_preserving_cull prog inputs in
  check Alcotest.bool "non-empty" true (culled <> [])

let subject_src = Subjects.Motivating.subject.Subjects.Subject.source

let test_strategy_plain_runs () =
  let prog = Minic.Lower.compile subject_src in
  let r =
    Fuzz.Strategy.run ~budget:2000 ~trial_seed:1 Fuzz.Strategy.pcguard prog
      ~seeds:[ "hello" ]
  in
  check Alcotest.bool "executed" true (r.execs >= 2000);
  check Alcotest.string "name" "pcguard" r.fuzzer

let test_strategy_cull_rounds () =
  let prog = Minic.Lower.compile subject_src in
  let r =
    Fuzz.Strategy.run ~budget:2000 ~trial_seed:1
      (Fuzz.Strategy.cull ~rounds:4 ())
      prog ~seeds:[ "hello" ]
  in
  (* four rounds of ~500 each *)
  check Alcotest.bool "budget spread over rounds" true
    (r.execs >= 2000 && r.execs <= 2600)

let test_strategy_opp_phases () =
  let prog = Minic.Lower.compile subject_src in
  let r =
    Fuzz.Strategy.run ~budget:2000 ~trial_seed:1 Fuzz.Strategy.opp prog
      ~seeds:[ "hello" ]
  in
  check Alcotest.bool "both phases ran" true (r.execs >= 2000)

let test_strategy_deterministic () =
  let prog = Minic.Lower.compile subject_src in
  let run () =
    let r =
      Fuzz.Strategy.run ~budget:1500 ~trial_seed:7
        (Fuzz.Strategy.cull_r ~rounds:3 ())
        prog ~seeds:[ "hello" ]
    in
    (r.execs, r.queue_size, Fuzz.Triage.unique_bugs r.triage)
  in
  check
    (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "identical runs" (run ()) (run ())

(* --- stats --- *)

let test_stats_median () =
  check (Alcotest.float 1e-9) "odd" 3. (Fuzz.Stats.median_int [ 1; 5; 3 ]);
  check (Alcotest.float 1e-9) "even" 2.5 (Fuzz.Stats.median_int [ 1; 2; 3; 4 ]);
  check Alcotest.bool "empty is nan" true (Float.is_nan (Fuzz.Stats.median_int []))

let test_stats_median_ignores_nan () =
  (* nan entries used to sort arbitrarily under polymorphic compare and
     could be picked as the median; they are filtered instead *)
  check (Alcotest.float 1e-9) "nan leading" 2.
    (Fuzz.Stats.median_float [ nan; 1.; 2.; 3. ]);
  check (Alcotest.float 1e-9) "nan in the middle" 1.5
    (Fuzz.Stats.median_float [ 1.; nan; 2. ]);
  check Alcotest.bool "all nan is nan" true
    (Float.is_nan (Fuzz.Stats.median_float [ nan; nan ]))

let test_stats_geomean () =
  check (Alcotest.float 1e-9) "geomean" 2. (Fuzz.Stats.geomean [ 1.; 4. ]);
  check (Alcotest.float 1e-6) "triple" 2.2894284851 (Fuzz.Stats.geomean [ 1.; 2.; 6. ])

let test_stats_venn () =
  let s l = Fuzz.Stats.bug_set (List.map (fun i -> Vm.Crash.Id i) l) in
  let a = s [ 1; 2; 3 ] and b = s [ 2; 3; 4 ] and c = s [ 3; 4; 5 ] in
  check Alcotest.int "inter" 2 (Fuzz.Stats.inter a b);
  check Alcotest.int "diff" 1 (Fuzz.Stats.diff a b);
  let only_a, only_b, both = Fuzz.Stats.venn2 a b in
  check (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int) "venn2" (1, 1, 2)
    (only_a, only_b, both);
  let oa, ob, oc, ab, ac, bc, abc = Fuzz.Stats.venn3 a b c in
  check Alcotest.int "only a" 1 oa;
  check Alcotest.int "only b" 0 ob;
  check Alcotest.int "only c" 1 oc;
  check Alcotest.int "ab" 1 ab;
  check Alcotest.int "ac" 0 ac;
  check Alcotest.int "bc" 1 bc;
  check Alcotest.int "abc" 1 abc

let prop_havoc_valid =
  QCheck.Test.make ~count:300 ~name:"havoc outputs stay in bounds"
    QCheck.(pair small_int (string_of_size Gen.(int_range 0 100)))
    (fun (seed, input) ->
      let rng = Fuzz.Rng.create seed in
      let child =
        Fuzz.Mutator.havoc
          ~cmps:[| { observed = 65; wanted = 66 } |]
          ~splice_with:"other input" rng input
      in
      String.length child >= 1 && String.length child <= Fuzz.Mutator.max_len)

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "chance" `Quick test_rng_chance;
        Alcotest.test_case "split" `Quick test_rng_split_independent;
      ] );
    ( "mutator",
      [
        Alcotest.test_case "havoc bounds" `Quick test_havoc_bounds;
        Alcotest.test_case "havoc deterministic" `Quick test_havoc_deterministic;
        Alcotest.test_case "havoc empty input" `Quick test_havoc_empty_input;
        Alcotest.test_case "i2s little-endian" `Quick test_i2s_le_substitution;
        Alcotest.test_case "i2s ascii" `Quick test_i2s_ascii_substitution;
        Alcotest.test_case "i2s negative wanted" `Quick test_i2s_negative_wanted;
        Alcotest.test_case "i2s no match" `Quick test_i2s_no_match;
        Alcotest.test_case "deterministic stage" `Quick test_deterministic_stage;
      ] );
    ( "corpus",
      [
        Alcotest.test_case "favored covers union" `Quick test_favored_covers_union;
        Alcotest.test_case "fav factor prefers cheap" `Quick test_fav_factor_prefers_cheap;
      ] );
    ( "triage",
      [
        Alcotest.test_case "dedup" `Quick test_triage_dedup;
        Alcotest.test_case "merge" `Quick test_triage_merge;
      ] );
    ( "campaign",
      [
        Alcotest.test_case "finds easy bug" `Quick test_campaign_finds_easy_bug;
        Alcotest.test_case "budget respected" `Quick test_campaign_budget_respected;
        Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
        Alcotest.test_case "seeds retained" `Quick test_campaign_seeds_always_retained;
        Alcotest.test_case "queue series monotonic" `Quick
          test_campaign_queue_series_monotonic;
        Alcotest.test_case "survives crashing seed" `Quick
          test_campaign_survives_crashing_seed;
        Alcotest.test_case "calibration crash triaged" `Quick
          test_calibration_crash_triaged;
        Alcotest.test_case "calibration crashes counted" `Quick
          test_calibration_crashes_counted;
        Alcotest.test_case "full queue preserves virgin" `Quick
          test_full_queue_preserves_virgin;
        Alcotest.test_case "max_depth plumbed through config" `Quick
          test_campaign_max_depth;
      ] );
    ( "measure-strategy",
      [
        Alcotest.test_case "edge union and cull" `Quick test_edge_union_and_cull;
        Alcotest.test_case "path-preserving cull" `Quick test_path_preserving_cull;
        Alcotest.test_case "plain strategy" `Quick test_strategy_plain_runs;
        Alcotest.test_case "cull rounds" `Quick test_strategy_cull_rounds;
        Alcotest.test_case "opp phases" `Quick test_strategy_opp_phases;
        Alcotest.test_case "strategies deterministic" `Quick test_strategy_deterministic;
      ] );
    ( "stats",
      [
        Alcotest.test_case "median" `Quick test_stats_median;
        Alcotest.test_case "median ignores nan" `Quick test_stats_median_ignores_nan;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "venn" `Quick test_stats_venn;
      ] );
    ("fuzz-properties", List.map QCheck_alcotest.to_alcotest [ prop_havoc_valid ]);
  ]
