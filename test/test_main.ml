(* Aggregates all suites into one alcotest binary: `dune runtest`. *)
let () =
  Alcotest.run "pathcov"
    (Test_frontend.suite @ Test_ballarus.suite @ Test_vm.suite
   @ Test_differential.suite @ Test_compile.suite @ Test_fused.suite
   @ Test_native.suite
   @ Test_coverage.suite
   @ Test_exec.suite
   @ Test_fuzz.suite @ Test_hotpath.suite @ Test_tracer.suite
   @ Test_shard.suite
   @ Test_checkpoint.suite @ Test_subjects.suite
   @ Test_experiments.suite @ Test_obs.suite @ Test_introspect.suite
   @ Test_misc.suite)
