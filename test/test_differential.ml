(** Differential tests: the pooled allocation-free VM ([Vm.Interp]) vs
    the naive boxed reference interpreter ([Interp_ref]) — same status
    (crash kinds, sites, stacks), same block counts, and identical
    classified coverage traces under every feedback mode, for every
    registered subject's seeds and bug witnesses. *)

let check = Alcotest.check

let feedback_hooks (fb : Pathcov.Feedback.t) : Vm.Interp.hooks =
  {
    Vm.Interp.no_hooks with
    h_call = fb.on_call;
    h_block = fb.on_block;
    h_edge = fb.on_edge;
    h_ret = fb.on_ret;
  }

let pp_status fmt (s : Vm.Interp.status) =
  match s with
  | Vm.Interp.Finished None -> Fmt.string fmt "finished(array)"
  | Vm.Interp.Finished (Some n) -> Fmt.pf fmt "finished(%d)" n
  | Vm.Interp.Hung -> Fmt.string fmt "hung"
  | Vm.Interp.Crashed c -> Fmt.pf fmt "crashed(%a)" Vm.Crash.pp c

let status_t : Vm.Interp.status Alcotest.testable =
  Alcotest.testable pp_status ( = )

(* Every input an evaluation campaign is guaranteed to execute: the seed
   corpus plus each ground-truth bug's witness. *)
let subject_inputs (s : Subjects.Subject.t) : string list =
  s.seeds @ List.map (fun (b : Subjects.Subject.bug) -> b.witness) s.bugs

let trace_contents (m : Pathcov.Coverage_map.t) : (int * int) list =
  let acc = ref [] in
  Pathcov.Coverage_map.iteri_set (fun i b -> acc := (i, b) :: !acc) m;
  List.rev !acc

(* Uninstrumented agreement: status and block counts. *)
let test_plain_agreement () =
  List.iter
    (fun (s : Subjects.Subject.t) ->
      let prog = Subjects.Subject.compile_fresh s in
      let ctx = Vm.Interp.create_ctx (Vm.Interp.prepare prog) in
      List.iter
        (fun input ->
          let fast = Vm.Interp.run_ctx ctx ~input in
          let ref_ = Interp_ref.run prog ~input in
          let where = Printf.sprintf "%s %S" s.name input in
          check status_t (where ^ " status") ref_.status fast.status;
          check Alcotest.int
            (where ^ " blocks")
            ref_.blocks_executed fast.blocks_executed)
        (subject_inputs s))
    Subjects.Registry.all

(* Instrumented agreement: both interpreters drive a fresh listener per
   mode; the classified traces must match index-for-index. *)
let test_trace_agreement () =
  let modes =
    [
      Pathcov.Feedback.Block;
      Pathcov.Feedback.Edge;
      Pathcov.Feedback.Ngram 4;
      Pathcov.Feedback.Path;
      Pathcov.Feedback.Pathafl;
    ]
  in
  List.iter
    (fun (s : Subjects.Subject.t) ->
      let prog = Subjects.Subject.compile_fresh s in
      let prepared = Vm.Interp.prepare prog in
      List.iter
        (fun mode ->
          let fb_fast = Pathcov.Feedback.make mode prog in
          let fb_ref = Pathcov.Feedback.make mode prog in
          let ctx =
            Vm.Interp.create_ctx ~hooks:(feedback_hooks fb_fast) prepared
          in
          List.iter
            (fun input ->
              fb_fast.reset ();
              Pathcov.Coverage_map.clear fb_fast.trace;
              fb_ref.reset ();
              Pathcov.Coverage_map.clear fb_ref.trace;
              let fast = Vm.Interp.run_ctx ctx ~input in
              let ref_ =
                Interp_ref.run ~hooks:(feedback_hooks fb_ref) prog ~input
              in
              let where =
                Printf.sprintf "%s/%s %S" s.name
                  (Pathcov.Feedback.mode_name mode)
                  input
              in
              check status_t (where ^ " status") ref_.status fast.status;
              Pathcov.Coverage_map.classify fb_fast.trace;
              Pathcov.Coverage_map.classify fb_ref.trace;
              check
                Alcotest.(list (pair int int))
                (where ^ " classified trace")
                (trace_contents fb_ref.trace)
                (trace_contents fb_fast.trace))
            (subject_inputs s))
        modes)
    Subjects.Registry.all

(* Random programs: the oracle must agree beyond the curated subjects. *)
let prop_differential =
  QCheck.Test.make ~count:300 ~name:"fast and reference interpreters agree"
    (QCheck.pair Gen.arbitrary_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      let fast = Vm.Interp.run ~fuel:50_000 prog ~input in
      let ref_ = Interp_ref.run ~fuel:50_000 prog ~input in
      fast.status = ref_.status
      && fast.blocks_executed = ref_.blocks_executed)

let suite =
  [
    ( "differential",
      [
        Alcotest.test_case "subjects: status and blocks" `Quick
          test_plain_agreement;
        Alcotest.test_case "subjects: classified traces per mode" `Quick
          test_trace_agreement;
      ] );
    ("differential-properties", [ QCheck_alcotest.to_alcotest prop_differential ]);
  ]
