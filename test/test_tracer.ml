(* Engine and selective-tracing guarantees (DESIGN.md §12): campaign
   trajectories — queue contents and order, exec/block clocks, triage,
   snapshot rows — are byte-identical across execution engines
   (interpreter vs staged compilation), selective tracing on/off, shard
   counts, and checkpoint/resume under either engine. Probe self-pruning
   marks functions whose Ball–Larus commit universe is saturated and
   unmarks them when the virgin map is replaced. *)

let check = Alcotest.check
let check_bool = check Alcotest.bool

let row =
  Alcotest.testable
    (fun fmt (r : Obs.Snapshot.row) ->
      Fmt.pf fmt "row@%d queue=%d blocks=%d" r.at_exec r.queue r.blocks)
    ( = )

(* The seed "hi" triggers bug 5 immediately, so seed import, calibration
   and a dense neighborhood of mutated candidates all exercise the
   selective crash-replay path. *)
let easy_bug_src =
  "fn main() { if (in(0) == 104) { if (in(1) == 105) { bug(5); } } return 0; }"

(* Trajectory facts only: everything here is decision-determined.
   Deliberately NOT the full counter block — selective tracing spends a
   different number of (off-clock) replays, which is the point. Snapshot
   rows exclude the replay counter, so they compare equal. *)
let check_traj label (a : Fuzz.Campaign.result) (b : Fuzz.Campaign.result) =
  check Alcotest.int (label ^ ": execs") a.execs b.execs;
  check Alcotest.int (label ^ ": blocks") a.sum_exec_blocks b.sum_exec_blocks;
  check Alcotest.int (label ^ ": havocs") a.havocs b.havocs;
  check
    (Alcotest.list Alcotest.string)
    (label ^ ": queue inputs")
    (Fuzz.Campaign.queue_inputs a)
    (Fuzz.Campaign.queue_inputs b);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    (label ^ ": queue series") a.queue_series b.queue_series;
  check (Alcotest.list row) (label ^ ": snapshot rows") a.snapshots b.snapshots;
  check Alcotest.int (label ^ ": total crashes") a.triage.total_crashes
    b.triage.total_crashes;
  check Alcotest.int (label ^ ": total hangs") a.triage.total_hangs
    b.triage.total_hangs;
  check Alcotest.int
    (label ^ ": stack-unique crashes")
    (Fuzz.Triage.unique_crashes a.triage)
    (Fuzz.Triage.unique_crashes b.triage);
  check Alcotest.int
    (label ^ ": coverage-novel crashes")
    (Fuzz.Triage.afl_unique_crashes a.triage)
    (Fuzz.Triage.afl_unique_crashes b.triage);
  check_bool
    (label ^ ": ground-truth bugs")
    true
    (Fuzz.Triage.bugs a.triage = Fuzz.Triage.bugs b.triage)

let run_one ?(budget = 4_000) ?(seed = 7) ~engine ~selective ~mode ~cmplog prog
    seeds =
  let config =
    {
      Fuzz.Campaign.default_config with
      mode;
      budget;
      rng_seed = seed;
      cmplog;
      engine;
      selective;
    }
  in
  Fuzz.Campaign.run ~obs:(Obs.Observer.create ()) ~config prog ~seeds

(* Every engine x selective combination must replay the reference
   trajectory, per feedback mode and cmplog setting. Native degrades to
   fused when the emitter is unavailable, so its variants hold on every
   host: with a toolchain they pin the generated units to the reference
   trajectory, without one they pin the fallback path. *)
let engine_variants =
  [
    (Fuzz.Tracer.Compiled, false, "compiled");
    (Fuzz.Tracer.Compiled, true, "compiled+sel");
    (Fuzz.Tracer.Interp, true, "interp+sel");
    (Fuzz.Tracer.Native, false, "native");
    (Fuzz.Tracer.Native, true, "native+sel");
  ]

let test_sequential_engines () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  List.iter
    (fun (mode, mname) ->
      List.iter
        (fun cmplog ->
          let base =
            run_one ~engine:Fuzz.Tracer.Interp ~selective:false ~mode ~cmplog
              prog s.seeds
          in
          List.iter
            (fun (engine, selective, ename) ->
              let r = run_one ~engine ~selective ~mode ~cmplog prog s.seeds in
              check_traj
                (Printf.sprintf "cflow/%s cmplog=%b %s" mname cmplog ename)
                base r)
            engine_variants)
        [ false; true ])
    [
      (Pathcov.Feedback.Path, "path");
      (Pathcov.Feedback.Edge, "edge");
      (Pathcov.Feedback.Pathafl, "pathafl");
    ]

let test_sequential_engines_crashy () =
  let prog = Minic.Lower.compile easy_bug_src in
  let base =
    run_one ~budget:3_000 ~seed:5 ~engine:Fuzz.Tracer.Interp ~selective:false
      ~mode:Pathcov.Feedback.Path ~cmplog:true prog [ "hi" ]
  in
  check_bool "crash-dense subject actually crashes" true
    (base.triage.total_crashes > 0);
  List.iter
    (fun (engine, selective, ename) ->
      let r =
        run_one ~budget:3_000 ~seed:5 ~engine ~selective
          ~mode:Pathcov.Feedback.Path ~cmplog:true prog [ "hi" ]
      in
      check_traj ("easy-bug path " ^ ename) base r)
    engine_variants

(* ------------------------------------------------------------------ *)
(* Sharded campaigns                                                  *)
(* ------------------------------------------------------------------ *)

let run_shd ~engine ~selective ~shards prog seeds =
  let cfg =
    {
      Fuzz.Shard.base =
        {
          Fuzz.Campaign.default_config with
          mode = Pathcov.Feedback.Path;
          budget = 2_500;
          rng_seed = 11;
          cmplog = true;
          engine;
          selective;
        };
      shards;
      sync_interval = 512;
    }
  in
  Fuzz.Shard.run ~obs:(Obs.Observer.create ()) cfg prog ~seeds

let check_shard_traj label (a : Fuzz.Shard.result) (b : Fuzz.Shard.result) =
  check_traj label a.campaign b.campaign;
  check_bool
    (label ^ ": virgin map bytes")
    true
    (Pathcov.Coverage_map.equal a.virgin b.virgin);
  check_bool
    (label ^ ": crash-virgin map bytes")
    true
    (Pathcov.Coverage_map.equal a.crash_virgin b.crash_virgin);
  check Alcotest.int (label ^ ": items planned") a.items b.items;
  check Alcotest.int (label ^ ": epochs") a.epochs b.epochs;
  check Alcotest.int (label ^ ": dup_dropped") a.dup_dropped b.dup_dropped

(* The per-shard seen sets must be invisible: same trajectory (and the
   same barrier duplicate-drop count) for selective on/off at every
   shard count. *)
let test_sharded_selective () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let base =
    run_shd ~engine:Fuzz.Tracer.Interp ~selective:false ~shards:1 prog s.seeds
  in
  List.iter
    (fun shards ->
      let r =
        run_shd ~engine:Fuzz.Tracer.Compiled ~selective:true ~shards prog
          s.seeds
      in
      check_shard_traj
        (Printf.sprintf "sharded compiled+sel shards=%d" shards)
        base r;
      let r2 =
        run_shd ~engine:Fuzz.Tracer.Interp ~selective:true ~shards prog s.seeds
      in
      check_shard_traj
        (Printf.sprintf "sharded interp+sel shards=%d" shards)
        base r2;
      let r3 =
        run_shd ~engine:Fuzz.Tracer.Native ~selective:true ~shards prog s.seeds
      in
      check_shard_traj
        (Printf.sprintf "sharded native+sel shards=%d" shards)
        base r3)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume under selective tracing                          *)
(* ------------------------------------------------------------------ *)

(* The seen-signal set is deliberately absent from snapshots: a resumed
   selective run starts with an empty set, re-replays a few signals and
   reaches identical decisions. Checkpoints exclude the engine axis, so
   a snapshot written under one engine must resume identically under
   another — including Native, whose resumes cross the Dynlink'd
   generated units (or the fallback path on toolchain-less hosts). *)
let test_selective_resume () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let config_for engine =
    {
      Fuzz.Campaign.default_config with
      mode = Pathcov.Feedback.Path;
      budget = 6_000;
      rng_seed = 3;
      cmplog = true;
      engine;
      selective = true;
    }
  in
  let acc = ref [] in
  let sink =
    {
      Fuzz.Checkpoint.every = 2_000;
      subject = "cflow";
      fuzzer = "test";
      save = (fun ck -> acc := ck :: !acc);
    }
  in
  let straight =
    Fuzz.Campaign.run
      ~config:(config_for Fuzz.Tracer.Compiled)
      ~checkpoint:sink prog ~seeds:s.seeds
  in
  check_bool "wrote at least one checkpoint" true (!acc <> []);
  List.iter
    (fun (engine, ename) ->
      let config = config_for engine in
      List.iter
        (fun ck ->
          let resumed = Fuzz.Campaign.run ~config ~resume:ck prog ~seeds:[] in
          let label =
            Printf.sprintf "selective resume@%d (%s)"
              ck.Fuzz.Checkpoint.progress.execs ename
          in
          check Alcotest.int (label ^ ": execs") straight.execs resumed.execs;
          check
            (Alcotest.list Alcotest.string)
            (label ^ ": queue inputs")
            (Fuzz.Campaign.queue_inputs straight)
            (Fuzz.Campaign.queue_inputs resumed);
          check Alcotest.int (label ^ ": blocks") straight.sum_exec_blocks
            resumed.sum_exec_blocks;
          check Alcotest.int (label ^ ": total crashes")
            straight.triage.total_crashes resumed.triage.total_crashes;
          check_bool
            (label ^ ": ground-truth bugs")
            true
            (Fuzz.Triage.bugs straight.triage = Fuzz.Triage.bugs resumed.triage))
        !acc)
    [ (Fuzz.Tracer.Compiled, "compiled"); (Fuzz.Tracer.Native, "native") ]

(* ------------------------------------------------------------------ *)
(* Probe self-pruning                                                 *)
(* ------------------------------------------------------------------ *)

let saturate_universe virgin (u : int array) =
  let mask = Pathcov.Coverage_map.size virgin - 1 in
  let idxs = Array.map (fun i -> i land mask) u in
  let vals = Array.map (fun _ -> 255) u in
  ignore (Pathcov.Coverage_map.merge_sparse_into ~virgin ~idxs ~vals)

let test_pruning_marks () =
  let prog = Minic.Lower.compile easy_bug_src in
  let prepared = Vm.Interp.prepare_cached prog in
  let tracer =
    Fuzz.Tracer.make ~engine:Fuzz.Tracer.Compiled ~selective:true
      ~cmplog:false ~mode:Pathcov.Feedback.Path prepared
  in
  check_bool "pruning available (compiled+selective+path)" true
    (Fuzz.Tracer.pruning_available tracer);
  let interp_tracer =
    Fuzz.Tracer.make ~engine:Fuzz.Tracer.Interp ~selective:true ~cmplog:false
      ~mode:Pathcov.Feedback.Path prepared
  in
  check_bool "pruning unavailable on the interpreter engine" false
    (Fuzz.Tracer.pruning_available interp_tracer);
  let virgin = Pathcov.Coverage_map.create_virgin () in
  Fuzz.Tracer.refresh_pruning tracer ~virgin;
  check Alcotest.int "fresh virgin map prunes nothing" 0
    (Fuzz.Tracer.pruned_fids tracer);
  (* saturate every enumerable commit universe; main's three acyclic
     paths are comfortably within the enumeration bound *)
  let art = Vm.Compile.cached ~cmplog:false prepared (Vm.Compile.Sfull Pathcov.Feedback.Path) in
  let enumerable = ref 0 in
  Array.iteri
    (fun fid _ ->
      let u = Vm.Compile.path_universe art fid in
      if Array.length u > 0 then begin
        incr enumerable;
        saturate_universe virgin u
      end)
    prepared.Vm.Interp.rfuncs;
  check_bool "at least one enumerable function" true (!enumerable > 0);
  Fuzz.Tracer.refresh_pruning tracer ~virgin;
  check Alcotest.int "saturated universes all prune" !enumerable
    (Fuzz.Tracer.pruned_fids tracer);
  (* a fresh (restored) virgin map must unprune everything again *)
  let fresh = Pathcov.Coverage_map.create_virgin () in
  Fuzz.Tracer.refresh_pruning tracer ~virgin:fresh;
  check Alcotest.int "fresh virgin map unprunes" 0
    (Fuzz.Tracer.pruned_fids tracer)

(* End to end: a campaign whose virgin map is fully saturated must prune
   during calibration — and still calibrate/triage correctly (the
   crash-dense entry replays unpruned before crash triage). *)
let test_pruning_in_calibration () =
  let prog = Minic.Lower.compile easy_bug_src in
  let config =
    {
      Fuzz.Campaign.default_config with
      mode = Pathcov.Feedback.Path;
      budget = 1_000;
      cmplog = true;
      engine = Fuzz.Tracer.Compiled;
      selective = true;
    }
  in
  let st = Fuzz.Campaign.make_state ~config prog in
  Fuzz.Campaign.add_seed st "xx";
  check_bool "seed retained" true (Fuzz.Corpus.size st.corpus > 0);
  (* saturate the whole virgin map *)
  let n = Pathcov.Coverage_map.size st.virgin in
  let idxs = Array.init n Fun.id in
  let vals = Array.make n 255 in
  ignore (Pathcov.Coverage_map.merge_sparse_into ~virgin:st.virgin ~idxs ~vals);
  let crashes0 = st.triage.total_crashes in
  ignore (Fuzz.Campaign.calibrate st (Fuzz.Corpus.get st.corpus 0));
  check_bool "calibration engaged pruning" true
    (Fuzz.Tracer.pruned_fids st.tracer > 0);
  (* the crashing seed "hi" was never retained; force a crash calibration
     on a synthetic entry to cross the pruned-crash replay path *)
  let e =
    Fuzz.Corpus.add st.corpus ~data:"hi" ~indices:[||] ~exec_blocks:1 ~depth:0
      ~found_at:0
  in
  ignore (Fuzz.Campaign.calibrate st e);
  check Alcotest.int "pruned calibration still triages crashes"
    (crashes0 + 1) st.triage.total_crashes

let suite =
  [
    ( "tracer",
      [
        Alcotest.test_case "sequential engine/selective identity" `Slow
          test_sequential_engines;
        Alcotest.test_case "crash-dense engine/selective identity" `Quick
          test_sequential_engines_crashy;
        Alcotest.test_case "sharded selective identity" `Slow
          test_sharded_selective;
        Alcotest.test_case "selective checkpoint/resume identity" `Quick
          test_selective_resume;
        Alcotest.test_case "pruning marks follow virgin saturation" `Quick
          test_pruning_marks;
        Alcotest.test_case "pruning engages in calibration" `Quick
          test_pruning_in_calibration;
      ] );
  ]
