(** Staged-compiler differential suite: [Vm.Compile] (closures, probes
    baked in) vs [Vm.Interp] driving the runtime [Pathcov.Feedback]
    listeners — same status (crash kinds, sites, stacks), same block
    counts (hence fuel behaviour), same cmplog event streams, identical
    classified traces under every feedback mode; plus the selective-
    tracing signal parity between the two engines, probe-pruning
    invariants, and a steady-state allocation bound for the compiled
    hot path. *)

let check = Alcotest.check
let check_bool = check Alcotest.bool

let all_modes =
  [
    Pathcov.Feedback.Block;
    Pathcov.Feedback.Edge;
    Pathcov.Feedback.Ngram 4;
    Pathcov.Feedback.Path;
    Pathcov.Feedback.Pathafl;
  ]

let feedback_hooks ?(h_cmp = fun _ _ -> ()) (fb : Pathcov.Feedback.t) :
    Vm.Interp.hooks =
  {
    Vm.Interp.h_call = fb.on_call;
    h_block = fb.on_block;
    h_edge = fb.on_edge;
    h_ret = fb.on_ret;
    h_cmp;
  }

let pp_status fmt (s : Vm.Interp.status) =
  match s with
  | Vm.Interp.Finished None -> Fmt.string fmt "finished(array)"
  | Vm.Interp.Finished (Some n) -> Fmt.pf fmt "finished(%d)" n
  | Vm.Interp.Hung -> Fmt.string fmt "hung"
  | Vm.Interp.Crashed c -> Fmt.pf fmt "crashed(%a)" Vm.Crash.pp c

let status_t : Vm.Interp.status Alcotest.testable =
  Alcotest.testable pp_status ( = )

let subject_inputs (s : Subjects.Subject.t) : string list =
  s.seeds @ List.map (fun (b : Subjects.Subject.bug) -> b.witness) s.bugs

let trace_contents (m : Pathcov.Coverage_map.t) : (int * int) list =
  let acc = ref [] in
  Pathcov.Coverage_map.iteri_set (fun i b -> acc := (i, b) :: !acc) m;
  List.rev !acc

(* --- uninstrumented ([Snone]) agreement on the curated subjects --- *)

let test_none_agreement () =
  List.iter
    (fun (s : Subjects.Subject.t) ->
      let prog = Subjects.Subject.compile_fresh s in
      let prepared = Vm.Interp.prepare prog in
      let ictx = Vm.Interp.create_ctx prepared in
      let cctx = Vm.Interp.create_ctx prepared in
      let art = Vm.Compile.compile prepared Vm.Compile.Snone in
      List.iter
        (fun input ->
          let i = Vm.Interp.run_ctx ictx ~input in
          let c = Vm.Compile.run art cctx ~input in
          let where = Printf.sprintf "%s %S" s.name input in
          check status_t (where ^ " status") i.status c.status;
          check Alcotest.int (where ^ " blocks") i.blocks_executed
            c.blocks_executed)
        (subject_inputs s))
    Subjects.Registry.all

(* --- instrumented agreement, every mode: status, blocks, classified
   trace, and the cmplog operand stream --- *)

let test_mode_agreement () =
  List.iter
    (fun (s : Subjects.Subject.t) ->
      let prog = Subjects.Subject.compile_fresh s in
      let prepared = Vm.Interp.prepare prog in
      List.iter
        (fun mode ->
          let fb = Pathcov.Feedback.make mode prog in
          let icmps = ref [] and ccmps = ref [] in
          let ictx =
            Vm.Interp.create_ctx
              ~hooks:
                (feedback_hooks
                   ~h_cmp:(fun a b -> icmps := (a, b) :: !icmps)
                   fb)
              prepared
          in
          let cctx = Vm.Interp.create_ctx prepared in
          let art = Vm.Compile.compile prepared (Vm.Compile.Sfull mode) in
          let ctrace = Pathcov.Coverage_map.create () in
          Vm.Compile.bind art ~trace:ctrace ~h_cmp:(fun a b ->
              ccmps := (a, b) :: !ccmps);
          List.iter
            (fun input ->
              fb.reset ();
              Pathcov.Coverage_map.clear fb.trace;
              Pathcov.Coverage_map.clear ctrace;
              icmps := [];
              ccmps := [];
              let i = Vm.Interp.run_ctx ictx ~input in
              let c = Vm.Compile.run art cctx ~input in
              let where =
                Printf.sprintf "%s/%s %S" s.name
                  (Pathcov.Feedback.mode_name mode)
                  input
              in
              check status_t (where ^ " status") i.status c.status;
              check Alcotest.int (where ^ " blocks") i.blocks_executed
                c.blocks_executed;
              check
                Alcotest.(list (pair int int))
                (where ^ " cmp stream") (List.rev !icmps) (List.rev !ccmps);
              Pathcov.Coverage_map.classify fb.trace;
              Pathcov.Coverage_map.classify ctrace;
              check
                Alcotest.(list (pair int int))
                (where ^ " classified trace")
                (trace_contents fb.trace) (trace_contents ctrace))
            (subject_inputs s))
        all_modes)
    Subjects.Registry.all

(* --- selective-tracing signal: both engines fold the same hash --- *)

let test_signal_parity () =
  List.iter
    (fun (s : Subjects.Subject.t) ->
      let prog = Subjects.Subject.compile_fresh s in
      let prepared = Vm.Interp.prepare prog in
      let cell = ref 0 in
      let ictx =
        Vm.Interp.create_ctx
          ~hooks:(Vm.Compile.signal_hooks prepared ~cell)
          prepared
      in
      let cctx = Vm.Interp.create_ctx prepared in
      let art = Vm.Compile.compile prepared Vm.Compile.Ssignal in
      let sigs = Hashtbl.create 16 in
      List.iter
        (fun input ->
          cell := 0;
          let i = Vm.Interp.run_ctx ictx ~input in
          let c = Vm.Compile.run art cctx ~input in
          let where = Printf.sprintf "%s %S" s.name input in
          check status_t (where ^ " status") i.status c.status;
          check Alcotest.int (where ^ " signal") !cell
            (Vm.Compile.signal art);
          Hashtbl.replace sigs !cell ())
        (subject_inputs s);
      (* sanity: the signal actually separates distinct executions — a
         constant hash would trivially satisfy parity *)
      let distinct_inputs =
        List.length
          (List.sort_uniq compare
             (List.map
                (fun input -> (Vm.Interp.run_ctx ictx ~input).blocks_executed)
                (subject_inputs s)))
      in
      check_bool
        (s.name ^ " signal separates executions")
        true
        (Hashtbl.length sigs >= distinct_inputs))
    Subjects.Registry.all

(* --- random programs x all modes: the compiled engine must agree with
   the interpreter-driven listeners beyond the curated subjects --- *)

let prop_compiled_differential =
  QCheck.Test.make ~count:300 ~name:"compiled and interpreted engines agree"
    (QCheck.pair Gen.arbitrary_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      let prepared = Vm.Interp.prepare prog in
      List.for_all
        (fun mode ->
          let fb = Pathcov.Feedback.make mode prog in
          let ictx =
            Vm.Interp.create_ctx ~hooks:(feedback_hooks fb) prepared
          in
          let cctx = Vm.Interp.create_ctx prepared in
          let art = Vm.Compile.compile prepared (Vm.Compile.Sfull mode) in
          let ctrace = Pathcov.Coverage_map.create () in
          Vm.Compile.bind art ~trace:ctrace ~h_cmp:(fun _ _ -> ());
          fb.reset ();
          Pathcov.Coverage_map.clear fb.trace;
          let i = Vm.Interp.run_ctx ~fuel:50_000 ictx ~input in
          let c = Vm.Compile.run ~fuel:50_000 art cctx ~input in
          Pathcov.Coverage_map.classify fb.trace;
          Pathcov.Coverage_map.classify ctrace;
          i.status = c.status
          && i.blocks_executed = c.blocks_executed
          && trace_contents fb.trace = trace_contents ctrace)
        all_modes)

(* ... and the signal parity property over the same space. *)
let prop_signal_differential =
  QCheck.Test.make ~count:300 ~name:"signal hash identical across engines"
    (QCheck.pair Gen.arbitrary_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      let prepared = Vm.Interp.prepare prog in
      let cell = ref 0 in
      let ictx =
        Vm.Interp.create_ctx
          ~hooks:(Vm.Compile.signal_hooks prepared ~cell)
          prepared
      in
      let cctx = Vm.Interp.create_ctx prepared in
      let art = Vm.Compile.compile prepared Vm.Compile.Ssignal in
      let i = Vm.Interp.run_ctx ~fuel:50_000 ictx ~input in
      let c = Vm.Compile.run ~fuel:50_000 art cctx ~input in
      i.status = c.status && !cell = Vm.Compile.signal art)

(* --- probe self-pruning invariants (path mode) ---

   Eliding a function's commits must (a) only remove trace indices, (b)
   remove only indices inside that function's enumerated commit
   universe, and (c) leave the register discipline exact: un-eliding
   restores the byte-identical trace. *)

let test_pruning_invariants () =
  List.iter
    (fun (s : Subjects.Subject.t) ->
      let prog = Subjects.Subject.compile_fresh s in
      let prepared = Vm.Interp.prepare prog in
      let cctx = Vm.Interp.create_ctx prepared in
      let art = Vm.Compile.compile prepared (Vm.Compile.Sfull Path) in
      let trace = Pathcov.Coverage_map.create () in
      Vm.Compile.bind art ~trace ~h_cmp:(fun _ _ -> ());
      let run_trace input =
        Pathcov.Coverage_map.clear trace;
        ignore (Vm.Compile.run art cctx ~input);
        Pathcov.Coverage_map.classify trace;
        trace_contents trace
      in
      let nfuncs = Array.length prog.funcs in
      let enumerable =
        List.filter
          (fun fid -> Array.length (Vm.Compile.path_universe art fid) > 0)
          (List.init nfuncs Fun.id)
      in
      check_bool (s.name ^ " has enumerable functions") true
        (enumerable <> []);
      (* the universe holds unwrapped keys; traces hold map indices *)
      let mask = Pathcov.Coverage_map.size trace - 1 in
      let universe = Hashtbl.create 256 in
      List.iter
        (fun fid ->
          Array.iter
            (fun key -> Hashtbl.replace universe (key land mask) ())
            (Vm.Compile.path_universe art fid))
        enumerable;
      List.iter
        (fun input ->
          let full = run_trace input in
          (* pruning enabled but nothing marked: identical *)
          Vm.Compile.set_pruning art true;
          check
            Alcotest.(list (pair int int))
            (s.name ^ " pruning-on/empty trace") full (run_trace input);
          (* every enumerable function elided *)
          List.iter (fun fid -> Vm.Compile.prune_fid art fid true) enumerable;
          let pruned = run_trace input in
          List.iter
            (fun (idx, _) ->
              check_bool
                (Printf.sprintf "%s pruned idx %d survives from full" s.name
                   idx)
                true
                (List.mem_assoc idx full))
            pruned;
          List.iter
            (fun (idx, b) ->
              match List.assoc_opt idx pruned with
              | Some b' ->
                  check Alcotest.int
                    (Printf.sprintf "%s surviving idx %d byte" s.name idx)
                    b b'
              | None ->
                  check_bool
                    (Printf.sprintf
                       "%s removed idx %d lies in the pruned universe" s.name
                       idx)
                    true (Hashtbl.mem universe idx))
            full;
          (* restore: byte-identical again *)
          List.iter (fun fid -> Vm.Compile.prune_fid art fid false) enumerable;
          check
            Alcotest.(list (pair int int))
            (s.name ^ " restored trace") full (run_trace input);
          Vm.Compile.set_pruning art false)
        (subject_inputs s))
    Subjects.Registry.all

(* --- steady-state allocation: the compiled hot path ---

   Closure dispatch must not re-introduce per-exec allocation: beyond
   the program's own [array(n)] requests, a compiled run through the
   pooled context allocates nothing once warm. cflow allocates no
   arrays, so the bound is a few words (outcome record + status). *)

let test_compiled_allocation () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let prepared = Vm.Interp.prepare prog in
  let ctx = Vm.Interp.create_ctx prepared in
  let art = Vm.Compile.compile prepared (Vm.Compile.Sfull Path) in
  let trace = Pathcov.Coverage_map.create () in
  Vm.Compile.bind art ~trace ~h_cmp:(fun _ _ -> ());
  let input = List.hd s.seeds in
  let one () = ignore (Vm.Compile.run art ctx ~input) in
  for _ = 1 to 64 do
    one ()
  done;
  let n = 2048 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    one ()
  done;
  let per_exec = (Gc.minor_words () -. w0) /. float_of_int n in
  check_bool
    (Printf.sprintf "compiled minor words per exec bounded (got %.1f)"
       per_exec)
    true
    (per_exec >= 0. && per_exec < 16.)

let suite =
  [
    ( "compile",
      [
        Alcotest.test_case "subjects: none spec agrees" `Quick
          test_none_agreement;
        Alcotest.test_case "subjects: every mode agrees" `Quick
          test_mode_agreement;
        Alcotest.test_case "subjects: signal parity across engines" `Quick
          test_signal_parity;
        Alcotest.test_case "path probe pruning invariants" `Quick
          test_pruning_invariants;
        Alcotest.test_case "compiled hot path allocation-free" `Quick
          test_compiled_allocation;
      ] );
    ( "compile-properties",
      [
        QCheck_alcotest.to_alcotest prop_compiled_differential;
        QCheck_alcotest.to_alcotest prop_signal_differential;
      ] );
  ]
