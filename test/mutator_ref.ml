(* Reference mutation engine: the historical string-round-trip havoc
   implementation, kept verbatim as the differential oracle for the pooled
   scratch-buffer engine in [Fuzz.Mutator]. Every operator here allocates
   fresh strings/bytes per step; the production engine must produce
   byte-identical children while consuming RNG draws in the same order
   (see [Test_mutator_diff]). Do not "improve" this file. *)

open Fuzz

let interesting8 = [| -128; -1; 0; 1; 16; 32; 64; 100; 127 |]

let interesting16 =
  [| -32768; -129; 128; 255; 256; 512; 1000; 1024; 4096; 32767 |]

let max_len = 4096

let clamp_len s = if String.length s > max_len then String.sub s 0 max_len else s

(* --- individual havoc operations on a mutable byte buffer --- *)

let flip_bit rng b =
  if Bytes.length b > 0 then begin
    let i = Rng.int rng (Bytes.length b) in
    let bit = Rng.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)))
  end

let set_random_byte rng b =
  if Bytes.length b > 0 then
    Bytes.set b (Rng.int rng (Bytes.length b)) (Rng.byte rng)

let add_sub_byte rng b =
  if Bytes.length b > 0 then begin
    let i = Rng.int rng (Bytes.length b) in
    let delta = Rng.range rng 1 35 in
    let delta = if Rng.bool rng then delta else -delta in
    Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + delta) land 255))
  end

let set_interesting8 rng b =
  if Bytes.length b > 0 then begin
    let i = Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Rng.choose rng interesting8 land 255))
  end

let set_interesting16 rng b =
  if Bytes.length b >= 2 then begin
    let i = Rng.int rng (Bytes.length b - 1) in
    let v = Rng.choose rng interesting16 land 0xffff in
    Bytes.set b i (Char.chr (v land 255));
    Bytes.set b (i + 1) (Char.chr ((v lsr 8) land 255))
  end

let copy_chunk rng b =
  let n = Bytes.length b in
  if n >= 2 then begin
    let len = Rng.range rng 1 (max 1 (n / 2)) in
    let src = Rng.int rng (n - len + 1) in
    let dst = Rng.int rng (n - len + 1) in
    Bytes.blit b src b dst len
  end

(* Length-changing operations work on strings. *)

let insert_random rng s =
  let n = String.length s in
  if n >= max_len then s
  else begin
    let pos = Rng.int rng (n + 1) in
    let len = Rng.range rng 1 8 in
    let ins = String.init len (fun _ -> Rng.byte rng) in
    String.sub s 0 pos ^ ins ^ String.sub s pos (n - pos)
  end

let duplicate_chunk rng s =
  let n = String.length s in
  if n = 0 || n >= max_len then s
  else begin
    let len = Rng.range rng 1 (max 1 (n / 2)) in
    let src = Rng.int rng (n - len + 1) in
    let pos = Rng.int rng (n + 1) in
    let chunk = String.sub s src len in
    clamp_len (String.sub s 0 pos ^ chunk ^ String.sub s pos (n - pos))
  end

let delete_chunk rng s =
  let n = String.length s in
  if n <= 1 then s
  else begin
    let len = Rng.range rng 1 (max 1 (n / 2)) in
    let pos = Rng.int rng (n - len + 1) in
    String.sub s 0 pos ^ String.sub s (pos + len) (n - pos - len)
  end

(* --- input-to-state substitution (cmplog) --- *)

type cmp_pair = Fuzz.Mutator.cmp_pair = { observed : int; wanted : int }

let encode_le width v = String.init width (fun i -> Char.chr ((v asr (8 * i)) land 255))

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go 0

let replace_at s pos repl =
  let n = String.length s and m = String.length repl in
  if pos + m > n then s
  else String.sub s 0 pos ^ repl ^ String.sub s (pos + m) (n - pos - m)

let i2s_apply rng (p : cmp_pair) (s : string) : string =
  let try_width w =
    if p.observed < 0 || (w < 8 && p.observed >= 1 lsl (8 * w)) then None
    else
      let pat = encode_le w p.observed in
      match find_sub s pat with
      | Some pos -> Some (replace_at s pos (encode_le w p.wanted))
      | None -> None
  in
  let try_ascii () =
    if p.observed < 0 then None
    else
      let pat = string_of_int p.observed in
      if String.length pat = 0 then None
      else
        match find_sub s pat with
        | Some pos ->
            let n = String.length s in
            let repl = string_of_int p.wanted in
            Some
              (clamp_len
                 (String.sub s 0 pos ^ repl
                 ^ String.sub s (pos + String.length pat)
                     (n - pos - String.length pat)))
        | None -> None
  in
  let candidates = List.filter_map (fun f -> f ()) [
    (fun () -> try_width 1);
    (fun () -> try_width 2);
    (fun () -> try_width 4);
    try_ascii;
  ]
  in
  match candidates with
  | [] -> s
  | l -> Rng.choose_list rng l

(* --- havoc --- *)

let havoc ?(cmps = []) ?splice_with rng (s : string) : string =
  let s = ref (if s = "" then String.make 1 (Rng.byte rng) else s) in
  let stack = 1 lsl Rng.range rng 0 3 in
  for _ = 1 to stack do
    let n_ops = 10 in
    let op = Rng.int rng (n_ops + (if cmps = [] then 0 else 3) + (match splice_with with None -> 0 | Some _ -> 1)) in
    match op with
    | 0 | 1 ->
        let b = Bytes.of_string !s in
        flip_bit rng b;
        s := Bytes.to_string b
    | 2 ->
        let b = Bytes.of_string !s in
        set_random_byte rng b;
        s := Bytes.to_string b
    | 3 | 4 ->
        let b = Bytes.of_string !s in
        add_sub_byte rng b;
        s := Bytes.to_string b
    | 5 ->
        let b = Bytes.of_string !s in
        set_interesting8 rng b;
        s := Bytes.to_string b
    | 6 ->
        let b = Bytes.of_string !s in
        set_interesting16 rng b;
        s := Bytes.to_string b
    | 7 ->
        let b = Bytes.of_string !s in
        copy_chunk rng b;
        s := Bytes.to_string b
    | 8 -> s := insert_random rng !s
    | 9 -> s := if Rng.bool rng then duplicate_chunk rng !s else delete_chunk rng !s
    | (10 | 11 | 12) when cmps <> [] ->
        (* input-to-state: solve an observed comparison *)
        s := i2s_apply rng (Rng.choose_list rng cmps) !s
    | _ -> begin
        (* splice: take a prefix of us and a suffix of the other entry *)
        match splice_with with
        | Some other when String.length other > 1 && String.length !s > 1 ->
            let cut_a = Rng.int rng (String.length !s) in
            let cut_b = Rng.int rng (String.length other) in
            s :=
              clamp_len
                (String.sub !s 0 cut_a
                ^ String.sub other cut_b (String.length other - cut_b))
        | _ -> ()
      end
  done;
  !s
