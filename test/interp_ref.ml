(** Reference interpreter: a deliberately naive, boxed-value evaluator
    over [Minic.Ir], kept as the differential-testing oracle for the
    pooled allocation-free VM ([Vm.Interp]). It allocates freely (boxed
    {!Vm.Value.t} everywhere, fresh environments per call, a live crash
    stack) and shares no code with the production hot path, but must
    agree with it exactly: same [status] (including crash kinds, sites
    and stacks), same [blocks_executed], and — via the hooks — the same
    event stream, hence identical coverage traces. Event and fuel
    ordering deliberately mirror [Vm.Interp]: fuel burns at block entry
    and before each instruction, [h_cmp] fires after comparison operand
    evaluation, arguments evaluate left-to-right in the caller before the
    stack frame is pushed, and the callee's depth check precedes its
    [h_call]. *)

open Minic

exception Crash_exn of Vm.Crash.kind * int
exception Out_of_fuel

type env = {
  prog : Ir.program;
  hooks : Vm.Interp.hooks;
  globals : (string, Vm.Value.t) Hashtbl.t;
  input : string;
  mutable fuel : int;
  max_depth : int;
  mutable blocks : int;
  mutable stack : Vm.Crash.frame list;  (** newest first *)
}

let type_err site what = raise (Crash_exn (Vm.Crash.Type_error what, site))

let as_int site = function
  | Vm.Value.Vint n -> n
  | Vm.Value.Varr _ -> type_err site "int expected"

let as_arr site = function
  | Vm.Value.Varr a -> a
  | Vm.Value.Vint _ -> type_err site "array expected"

let read env frame site name =
  match Hashtbl.find_opt frame name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some v -> v
      | None ->
          ignore site;
          raise (Vm.Interp.Unknown_name name))

let write env frame name v =
  if Hashtbl.mem frame name then Hashtbl.replace frame name v
  else if Hashtbl.mem env.globals name then Hashtbl.replace env.globals name v
  else raise (Vm.Interp.Unknown_name name)

let burn env =
  env.fuel <- env.fuel - 1;
  if env.fuel <= 0 then raise Out_of_fuel

let is_cmp : Ast.binop -> bool = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | _ -> false

let rec eval_int env frame site (e : Ir.expr) : int =
  match e with
  | Const n -> n
  | Load v -> as_int site (read env frame site v)
  | Index (b, i) ->
      let a = eval_arr env frame site b in
      let idx = eval_int env frame site i in
      if idx < 0 || idx >= Array.length a then
        raise
          (Crash_exn (Vm.Crash.Out_of_bounds { len = Array.length a; idx }, site))
      else a.(idx)
  | Binop (op, e1, e2) when is_cmp op ->
      let a = eval_int env frame site e1 in
      let b = eval_int env frame site e2 in
      env.hooks.h_cmp a b;
      let r =
        match op with
        | Eq -> a = b
        | Ne -> a <> b
        | Lt -> a < b
        | Le -> a <= b
        | Gt -> a > b
        | Ge -> a >= b
        | _ -> assert false
      in
      if r then 1 else 0
  | Binop (op, e1, e2) -> begin
      let a = eval_int env frame site e1 in
      let b = eval_int env frame site e2 in
      match op with
      | Add -> a + b
      | Sub -> a - b
      | Mul -> a * b
      | Div ->
          if b = 0 then raise (Crash_exn (Vm.Crash.Div_by_zero, site)) else a / b
      | Rem ->
          if b = 0 then raise (Crash_exn (Vm.Crash.Div_by_zero, site)) else a mod b
      | Band -> a land b
      | Bor -> a lor b
      | Bxor -> a lxor b
      | Shl -> a lsl min 62 (b land 63)
      | Shr -> a asr min 62 (b land 63)
      | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> assert false
    end
  | Unop (Neg, e) -> -eval_int env frame site e
  | Unop (Not, e) -> if eval_int env frame site e = 0 then 1 else 0
  | Unop (Bnot, e) -> lnot (eval_int env frame site e)
  | InByte e ->
      let i = eval_int env frame site e in
      if i < 0 || i >= String.length env.input then -1
      else Char.code env.input.[i]
  | InputLen -> String.length env.input
  | Abs e -> abs (eval_int env frame site e)
  | ArrayMake _ -> type_err site "array in int context"
  | ArrayLen e -> Array.length (eval_arr env frame site e)

and eval_arr env frame site (e : Ir.expr) : int array =
  match e with
  | Load v -> as_arr site (read env frame site v)
  | ArrayMake n ->
      let n = eval_int env frame site n in
      if n < 0 || n > Vm.Interp.max_alloc then
        raise (Crash_exn (Vm.Crash.Bad_alloc n, site))
      else Array.make n 0
  | _ -> type_err site "array expected"

and eval_val env frame site (e : Ir.expr) : Vm.Value.t =
  match e with
  | Load v -> read env frame site v
  | ArrayMake _ -> Vm.Value.Varr (eval_arr env frame site e)
  | _ -> Vm.Value.Vint (eval_int env frame site e)

let func_index (prog : Ir.program) (name : string) : int =
  let rec go i =
    if i >= Array.length prog.funcs then raise (Vm.Interp.Unknown_name name)
    else if prog.funcs.(i).name = name then i
    else go (i + 1)
  in
  go 0

let rec call env (fid : int) (args : Vm.Value.t list) (depth : int) :
    Vm.Value.t =
  if depth > env.max_depth then
    raise (Crash_exn (Vm.Crash.Stack_overflow, -1));
  let f = env.prog.funcs.(fid) in
  env.hooks.h_call fid;
  let frame : (string, Vm.Value.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace frame p (Vm.Value.Vint 0)) f.params;
  List.iter (fun l -> Hashtbl.replace frame l (Vm.Value.Vint 0)) f.locals;
  (try List.iter2 (fun p v -> Hashtbl.replace frame p v) f.params args
   with Invalid_argument _ -> assert false);
  let rec run_block label : Vm.Value.t =
    burn env;
    env.blocks <- env.blocks + 1;
    env.hooks.h_block fid label;
    let b = f.blocks.(label) in
    List.iter (exec_instr env frame fid depth) b.instrs;
    match b.term with
    | Goto l ->
        env.hooks.h_edge fid label l;
        run_block l
    | Branch { cond; if_true; if_false; site } ->
        let dst =
          if eval_int env frame site cond <> 0 then if_true else if_false
        in
        env.hooks.h_edge fid label dst;
        run_block dst
    | Ret { e; site } ->
        let v =
          match e with
          | Some e -> eval_val env frame site e
          | None -> Vm.Value.Vint 0
        in
        env.hooks.h_ret fid label;
        v
  in
  run_block 0

and exec_instr env frame fid depth (i : Ir.instr) : unit =
  burn env;
  match i with
  | Assign { dst; e; site } -> write env frame dst (eval_val env frame site e)
  | Store { base; idx; v; site } ->
      let a = eval_arr env frame site base in
      let i = eval_int env frame site idx in
      let x = eval_int env frame site v in
      if i < 0 || i >= Array.length a then
        raise
          (Crash_exn (Vm.Crash.Out_of_bounds { len = Array.length a; idx = i }, site))
      else a.(i) <- x
  | CallI { dst; callee; args; site } ->
      let cid = func_index env.prog callee in
      let argv = List.map (eval_val env frame site) args in
      env.stack <-
        { Vm.Crash.fn = env.prog.funcs.(fid).name; site } :: env.stack;
      let v = call env cid argv (depth + 1) in
      env.stack <- List.tl env.stack;
      (match dst with Some d -> write env frame d v | None -> ())
  | BugI { bug; site } -> raise (Crash_exn (Vm.Crash.Seeded bug, site))
  | CheckI { cond; bug; site } ->
      if eval_int env frame site cond = 0 then
        raise (Crash_exn (Vm.Crash.Check_failed bug, site))

let site_function (prog : Ir.program) site =
  if site >= 0 && site < Array.length prog.sites then prog.sites.(site).sfunc
  else "?"

let run ?(fuel = Vm.Interp.default_fuel) ?(hooks = Vm.Interp.no_hooks)
    ?(max_depth = Vm.Interp.default_max_depth) (prog : Ir.program)
    ~(input : string) : Vm.Interp.outcome =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Ast.global) ->
      match g with
      | Gint n -> Hashtbl.replace globals n (Vm.Value.Vint 0)
      | Garr (n, s) -> Hashtbl.replace globals n (Vm.Value.Varr (Array.make s 0)))
    prog.globals;
  let env =
    { prog; hooks; globals; input; fuel; max_depth; blocks = 0; stack = [] }
  in
  let status =
    try
      match call env (func_index prog "main") [] 0 with
      | Vm.Value.Vint n -> Vm.Interp.Finished (Some n)
      | Vm.Value.Varr _ -> Vm.Interp.Finished None
    with
    | Crash_exn (kind, site) ->
        let top = { Vm.Crash.fn = site_function prog site; site } in
        Vm.Interp.Crashed { Vm.Crash.kind; stack = top :: env.stack }
    | Out_of_fuel -> Vm.Interp.Hung
    | Stack_overflow ->
        Vm.Interp.Crashed { Vm.Crash.kind = Vm.Crash.Stack_overflow; stack = env.stack }
  in
  { Vm.Interp.status; blocks_executed = env.blocks }
