(** Deep-introspection tests (PR 9): the engine-metrics registry, the
    span tracer and its Chrome export, JSON string escaping, the stall
    watchdog's detection rule, the sharded event stream's determinism,
    and the zero-perturbation rule extended to fully-instrumented
    observers (metrics + trace + clock) across engines and shard
    counts. *)

let check = Alcotest.check
let check_bool msg = Alcotest.(check bool) msg

(* A deterministic virtual clock: +1.0 per reading (what `pathfuzz
   profile --deterministic` installs). *)
let tick_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 1.;
    !t

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metrics_instruments () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "a.count" in
  Obs.Metrics.bump c;
  Obs.Metrics.add c 4;
  let g = Obs.Metrics.gauge m "b.level" in
  Obs.Metrics.set g 7;
  Obs.Metrics.set_max g 3;
  Obs.Metrics.set_max g 11;
  let w = Obs.Metrics.wall m "c.wall_s" in
  Obs.Metrics.add_wall w 0.25;
  Obs.Metrics.add_wall w 0.5;
  let h = Obs.Metrics.hist m "d.sizes" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 4; 8; 1000 ];
  check Alcotest.int "counter" 5 (Obs.Metrics.counter_value m "a.count");
  check Alcotest.int "gauge keeps running max" 11
    (Obs.Metrics.gauge_value m "b.level");
  check (Alcotest.float 1e-9) "wall accumulates" 0.75
    (Obs.Metrics.wall_value m "c.wall_s");
  let n, sum, max_v = Obs.Metrics.hist_stats m "d.sizes" in
  check Alcotest.int "hist count" 7 n;
  check Alcotest.int "hist sum" 1018 sum;
  check Alcotest.int "hist max" 1000 max_v;
  (* log2 bucketing: 0 -> bucket 0, 1 -> 1, {2,3} -> 2, 4 -> 3, 8 -> 4 *)
  (match Obs.Metrics.find m "d.sizes" with
  | Some (Obs.Metrics.Hist h) ->
      List.iter
        (fun (b, expect) ->
          check Alcotest.int
            (Printf.sprintf "bucket %d" b)
            expect
            h.Obs.Metrics.buckets.(b))
        [ (0, 1); (1, 1); (2, 2); (3, 1); (4, 1); (10, 1) ]
  | _ -> Alcotest.fail "d.sizes not a hist");
  (* registration order is first-use order *)
  check
    (Alcotest.list Alcotest.string)
    "registration order"
    [ "a.count"; "b.level"; "c.wall_s"; "d.sizes" ]
    (Obs.Metrics.names m);
  (* get-or-create returns the same live record *)
  check_bool "counter identity" true (Obs.Metrics.counter m "a.count" == c);
  (* a name cannot change kinds *)
  check_bool "kind mismatch rejected" true
    (match Obs.Metrics.gauge m "a.count" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_merge_and_reset () =
  let into = Obs.Metrics.create () and src = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter into "n") 2;
  Obs.Metrics.add (Obs.Metrics.counter src "n") 3;
  Obs.Metrics.observe (Obs.Metrics.hist src "h") 5;
  Obs.Metrics.observe (Obs.Metrics.hist src "h") 9;
  Obs.Metrics.add_wall (Obs.Metrics.wall src "w") 1.5;
  Obs.Metrics.add_into ~into src;
  check Alcotest.int "counters sum" 5 (Obs.Metrics.counter_value into "n");
  let n, sum, max_v = Obs.Metrics.hist_stats into "h" in
  check Alcotest.int "hist merged count" 2 n;
  check Alcotest.int "hist merged sum" 14 sum;
  check Alcotest.int "hist merged max" 9 max_v;
  check (Alcotest.float 1e-9) "wall merged" 1.5
    (Obs.Metrics.wall_value into "w");
  (* the barrier drain: reset zeroes values but keeps registrations *)
  Obs.Metrics.reset src;
  check Alcotest.int "reset zeroes counter" 0
    (Obs.Metrics.counter_value src "n");
  check Alcotest.int "reset zeroes hist"
    0
    (let n, _, _ = Obs.Metrics.hist_stats src "h" in
     n);
  check
    (Alcotest.list Alcotest.string)
    "reset keeps names" [ "n"; "h"; "w" ] (Obs.Metrics.names src);
  (* a second drain after reset adds nothing *)
  Obs.Metrics.add_into ~into src;
  check Alcotest.int "drained registry adds zero" 5
    (Obs.Metrics.counter_value into "n")

let test_metrics_json () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter m "n") 3;
  Obs.Metrics.observe (Obs.Metrics.hist m "h") 4;
  Obs.Metrics.add_wall (Obs.Metrics.wall m "w") 0.5;
  let json = Obs.Metrics.to_json m in
  check Alcotest.string "metrics json"
    ("{\"n\": 3, \"h\": {\"count\": 1, \"sum\": 4, \"max\": 4, \"buckets\": "
   ^ "[0, 0, 0, 1]}, \"w\": 0.5}")
    json

(* ------------------------------------------------------------------ *)
(* Span tracer *)

let test_trace_spans_and_agg () =
  let tr = Obs.Trace.create ~clock:(tick_clock ()) ~tracks:2 () in
  check Alcotest.int "tracks" 2 (Obs.Trace.n_tracks tr);
  (* nested spans: the outer Epoch brackets an inner Exec *)
  Obs.Trace.begin_span tr ~track:0 Obs.Trace.Epoch;
  Obs.Trace.begin_span tr ~track:0 Obs.Trace.Exec;
  Obs.Trace.end_span ~arg:32 tr ~track:0 ();
  Obs.Trace.end_span tr ~track:0 ();
  (match Obs.Trace.spans tr ~track:0 with
  | [ inner; outer ] ->
      check_bool "inner is exec" true (inner.Obs.Trace.kind = Obs.Trace.Exec);
      check Alcotest.int "inner arg" 32 inner.Obs.Trace.arg;
      check_bool "outer is epoch" true (outer.Obs.Trace.kind = Obs.Trace.Epoch);
      check_bool "outer brackets inner" true
        (outer.Obs.Trace.t0 <= inner.Obs.Trace.t0
        && outer.Obs.Trace.dur >= inner.Obs.Trace.dur)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  (* aggregates see both; the other track saw nothing *)
  let n, s = Obs.Trace.agg tr ~track:0 Obs.Trace.Exec in
  check Alcotest.int "exec agg count" 1 n;
  check_bool "exec agg wall positive" true (s > 0.);
  check Alcotest.int "track 1 silent" 0
    (fst (Obs.Trace.agg tr ~track:1 Obs.Trace.Exec));
  Obs.Trace.begin_span tr ~track:1 Obs.Trace.Exec;
  Obs.Trace.end_span tr ~track:1 ();
  check Alcotest.int "agg_all sums tracks" 2
    (fst (Obs.Trace.agg_all tr Obs.Trace.Exec));
  (* the thunk helper is exception-safe *)
  (try
     Obs.Trace.span tr ~track:0 Obs.Trace.Triage (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "span closed on raise" 1
    (fst (Obs.Trace.agg tr ~track:0 Obs.Trace.Triage))

let test_trace_ring_overflow () =
  let tr = Obs.Trace.create ~capacity:4 ~clock:(tick_clock ()) ~tracks:1 () in
  for i = 1 to 6 do
    Obs.Trace.begin_span tr ~track:0 Obs.Trace.Exec;
    Obs.Trace.end_span ~arg:i tr ~track:0 ()
  done;
  check Alcotest.int "total counts everything" 6 (Obs.Trace.total tr ~track:0);
  check Alcotest.int "dropped = total - capacity" 2
    (Obs.Trace.dropped tr ~track:0);
  check
    (Alcotest.list Alcotest.int)
    "newest retained, oldest first" [ 3; 4; 5; 6 ]
    (List.map
       (fun (s : Obs.Trace.span) -> s.Obs.Trace.arg)
       (Obs.Trace.spans tr ~track:0));
  (* aggregates still cover the overwritten spans *)
  check Alcotest.int "agg covers overwritten" 6
    (fst (Obs.Trace.agg tr ~track:0 Obs.Trace.Exec))

let test_trace_chrome_export () =
  let tr = Obs.Trace.create ~clock:(tick_clock ()) ~tracks:2 () in
  Obs.Trace.begin_span tr ~track:0 Obs.Trace.Compile;
  Obs.Trace.end_span tr ~track:0 ();
  Obs.Trace.begin_span tr ~track:1 Obs.Trace.Exec;
  Obs.Trace.end_span ~arg:9 tr ~track:1 ();
  let tmp = Filename.temp_file "pathfuzz_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      Obs.Trace.to_chrome
        ~track_names:(fun i ->
          if i = 0 then Some "coordinator" else Some "shard 0")
        tr oc;
      close_out oc;
      let ic = open_in tmp in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      check_bool "object form" true
        (String.length body > 20
        && String.sub body 0 16 = "{\"traceEvents\": ");
      let has needle =
        let nl = String.length needle and bl = String.length body in
        let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
        go 0
      in
      check_bool "thread names emitted" true (has "\"coordinator\"");
      check_bool "complete events" true (has "\"ph\": \"X\"");
      check_bool "span kinds named" true (has "\"compile\"");
      check_bool "args carried" true (has "{\"arg\": 9}");
      check_bool "tid per track" true (has "\"tid\": 1"))

(* ------------------------------------------------------------------ *)
(* JSON string escaping (the Sink JSONL audit) *)

let test_json_string_escaping () =
  List.iter
    (fun (raw, quoted) ->
      check Alcotest.string ("escape " ^ String.escaped raw) quoted
        (Obs.Snapshot.json_string raw))
    [
      ("plain", "\"plain\"");
      ("with \"quotes\"", "\"with \\\"quotes\\\"\"");
      ("back\\slash", "\"back\\\\slash\"");
      ("line\nbreak", "\"line\\nbreak\"");
      ("tab\there", "\"tab\\there\"");
      ("cr\rlf", "\"cr\\rlf\"");
      ("ctrl\x01char", "\"ctrl\\u0001char\"");
      ("", "\"\"");
    ]

(* ------------------------------------------------------------------ *)
(* Stall watchdog *)

let test_stall_check () =
  let stalled walls =
    Fuzz.Shard.stall_check ~walls ~factor:Fuzz.Shard.stall_factor
  in
  check Alcotest.int "single shard never stalls" 0
    (List.length (stalled [| 5.0 |]));
  check Alcotest.int "balanced epoch: none" 0
    (List.length (stalled [| 1.0; 1.1; 0.9; 1.0 |]));
  check Alcotest.int "zero walls (unclocked): none" 0
    (List.length (stalled [| 0.; 0.; 0. |]));
  (* one shard 5x the median is flagged, with the median it tripped *)
  (match stalled [| 1.0; 5.0; 1.0; 1.2 |] with
  | [ (s, w, med) ] ->
      check Alcotest.int "stalled shard" 1 s;
      check (Alcotest.float 1e-9) "stalled wall" 5.0 w;
      (* even count: median = mean of the middle two (1.0, 1.2) *)
      check (Alcotest.float 1e-9) "median" 1.1 med
  | v -> Alcotest.failf "expected 1 verdict, got %d" (List.length v));
  (* the factor is a strict multiplier *)
  check Alcotest.int "at exactly factor x median: none" 0
    (List.length (stalled [| 1.0; 4.0; 1.0 |]));
  check Alcotest.int "just beyond: flagged" 1
    (List.length (stalled [| 1.0; 4.01; 1.0 |]));
  (* two laggards flag independently *)
  check Alcotest.int "two stalls" 2
    (List.length (stalled [| 1.0; 9.0; 1.0; 8.0; 1.0 |]))

let test_stall_event_jsonl () =
  let ev =
    Obs.Event.Stall
      { at_exec = 4096; epoch = 2; shard = 1; wall_s = 0.5; median_s = 0.1 }
  in
  check Alcotest.string "stall name" "stall" (Obs.Event.name ev);
  let line = Obs.Event.to_jsonl ev in
  check_bool ("stall jsonl: " ^ line) true
    (String.length line > 2
    && line.[0] = '{'
    && line.[String.length line - 1] = '}'
    && not (String.contains line '\n'))

(* ------------------------------------------------------------------ *)
(* Zero perturbation with the full introspection stack *)

let trajectory (r : Fuzz.Campaign.result) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (e : Fuzz.Corpus.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d:%d:%b:%S;" e.id e.depth e.found_at e.favored
           e.data))
    (Fuzz.Corpus.to_list r.corpus);
  Buffer.add_string buf
    (Printf.sprintf "|execs=%d havocs=%d blocks=%d crashes=%d hangs=%d"
       r.execs r.havocs r.sum_exec_blocks r.triage.total_crashes
       r.triage.total_hangs);
  Buffer.contents buf

(* A fully loaded observer: virtual clock, span trace, ring sink; the
   metrics registry is always present. *)
let introspected_obs ~tracks () =
  let clock = tick_clock () in
  let ring = Obs.Sink.create_ring ~capacity:512 () in
  Obs.Observer.create ~clock
    ~trace:(Obs.Trace.create ~clock ~tracks ())
    ~sink:(Obs.Sink.locked (Obs.Sink.ring ring))
    ()

let test_introspected_campaign_identical () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let plans = Pathcov.Ball_larus.of_program prog in
  List.iter
    (fun (label, engine, selective) ->
      let config =
        {
          Fuzz.Campaign.default_config with
          budget = 3_000;
          rng_seed = 7;
          engine;
          selective;
        }
      in
      let bare =
        trajectory (Fuzz.Campaign.run ~plans ~config prog ~seeds:s.seeds)
      in
      let obs = introspected_obs ~tracks:1 () in
      let observed =
        trajectory (Fuzz.Campaign.run ~plans ~obs ~config prog ~seeds:s.seeds)
      in
      check Alcotest.string (label ^ ": introspected = bare") bare observed;
      (* the instrumentation actually recorded the run *)
      let n_batch, sum_batch, _ =
        Obs.Metrics.hist_stats obs.metrics "exec.batch_n"
      in
      check_bool (label ^ ": batch hist fed") true
        (n_batch > 0 && sum_batch > 0);
      let n_dirty, _, _ =
        Obs.Metrics.hist_stats obs.metrics "vm.dirty_reset_w"
      in
      check_bool (label ^ ": dirty-reset hist fed per exec") true
        (n_dirty >= 3_000 - 64);
      check_bool (label ^ ": exec spans recorded") true
        (fst (Obs.Trace.agg_all (Option.get obs.trace) Obs.Trace.Exec) > 0);
      check_bool (label ^ ": vm wall harvested") true
        (Obs.Metrics.wall_value obs.metrics "campaign.vm_s" > 0.);
      if engine <> Fuzz.Tracer.Interp then begin
        check_bool (label ^ ": compile span recorded") true
          (fst (Obs.Trace.agg_all (Option.get obs.trace) Obs.Trace.Compile)
          > 0);
        check_bool (label ^ ": compile cache consulted") true
          (Obs.Metrics.gauge_value obs.metrics "engine.cache_hits"
           + Obs.Metrics.gauge_value obs.metrics "engine.cache_misses"
          > 0)
      end;
      if selective then
        check_bool (label ^ ": seen signals harvested") true
          (Obs.Metrics.gauge_value obs.metrics "engine.seen_signals" > 0))
    [
      ("interp", Fuzz.Tracer.Interp, false);
      ("fused", Fuzz.Tracer.Fused, false);
      ("fused+selective", Fuzz.Tracer.Fused, true);
    ]

let shard_signature (r : Fuzz.Shard.result) : string =
  Printf.sprintf "%d|%d|%d|%d|%s" r.campaign.execs
    (Fuzz.Corpus.size r.campaign.corpus)
    r.campaign.triage.total_crashes
    (Pathcov.Coverage_map.bytes_hash r.virgin)
    (String.concat ";" (Fuzz.Campaign.queue_inputs r.campaign))

let run_sharded ?obs ~shards prog seeds =
  let cfg =
    {
      Fuzz.Shard.base =
        {
          Fuzz.Campaign.default_config with
          mode = Pathcov.Feedback.Edge;
          budget = 3_000;
          rng_seed = 11;
        };
      shards;
      sync_interval = 512;
    }
  in
  Fuzz.Shard.run ?obs cfg prog ~seeds

let test_introspected_sharded_identical () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let bare = shard_signature (run_sharded ~shards:1 prog s.seeds) in
  List.iter
    (fun shards ->
      let obs = introspected_obs ~tracks:(shards + 1) () in
      let observed = shard_signature (run_sharded ~obs ~shards prog s.seeds) in
      check Alcotest.string
        (Printf.sprintf "shards %d introspected = shards 1 bare" shards)
        bare observed;
      (* shard-private registries drained into the coordinator's *)
      let n_batch, _, _ = Obs.Metrics.hist_stats obs.metrics "exec.batch_n" in
      check_bool
        (Printf.sprintf "shards %d: batch hist drained at barriers" shards)
        true (n_batch > 0);
      (* the coordinator recorded plan/merge spans; each shard its epochs *)
      let tr = Option.get obs.trace in
      check_bool
        (Printf.sprintf "shards %d: merge spans" shards)
        true
        (fst (Obs.Trace.agg tr ~track:0 Obs.Trace.Merge) > 0);
      for sh = 0 to shards - 1 do
        check_bool
          (Printf.sprintf "shards %d: shard %d epoch spans" shards sh)
          true
          (fst (Obs.Trace.agg tr ~track:(sh + 1) Obs.Trace.Epoch) > 0)
      done)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Sharded event-stream determinism *)

let test_sharded_event_stream_deterministic () =
  (* Every sharded event is emitted coordinator-side at plan/merge time,
     so the stream through a locked sink is deterministic: re-runs at
     the same width replay it byte for byte, and — Shard_sync aside,
     which encodes the width itself — it matches the width-1 stream. *)
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let events ~shards =
    let ring = Obs.Sink.create_ring ~capacity:4096 () in
    let obs =
      Obs.Observer.create ~sink:(Obs.Sink.locked (Obs.Sink.ring ring)) ()
    in
    ignore (run_sharded ~obs ~shards prog s.seeds);
    List.map Obs.Event.to_jsonl (Obs.Sink.ring_events ring)
  in
  let a = events ~shards:2 and b = events ~shards:2 in
  check Alcotest.int "re-run: same event count" (List.length a)
    (List.length b);
  check (Alcotest.list Alcotest.string) "re-run: identical stream" a b;
  let strip ls =
    List.filter
      (fun l ->
        (* drop the sync-barrier heartbeat, whose payload names the width *)
        not
          (String.length l >= 19
          && String.sub l 0 19 = "{\"ev\": \"shard_sync\""))
      ls
  in
  check
    (Alcotest.list Alcotest.string)
    "width-invariant modulo sync events" (strip (events ~shards:1)) (strip a)

(* ------------------------------------------------------------------ *)
(* Profile report determinism *)

let test_profile_report_deterministic () =
  let s = Subjects.Registry.find_exn "cflow" in
  let report () =
    let prog = Subjects.Subject.compile_fresh s in
    let plans = Pathcov.Ball_larus.of_program prog in
    let obs = introspected_obs ~tracks:1 () in
    let config =
      { Fuzz.Campaign.default_config with budget = 2_000; rng_seed = 3 }
    in
    ignore (Fuzz.Campaign.run ~plans ~obs ~config prog ~seeds:s.seeds);
    Experiments.Profile_report.render ~title:"test" ~with_wall:true ~shards:0
      obs
  in
  let a = report () and b = report () in
  check Alcotest.string "virtual-clock report reproduces byte for byte" a b;
  let has needle =
    let nl = String.length needle and al = String.length a in
    let rec go i = i + nl <= al && (String.sub a i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "phase table present" true (has "Phase walls");
  check_bool "metrics table present" true (has "Engine metrics");
  check_bool "counters present" true (has "Campaign counters");
  check_bool "no shard table for sequential" true
    (not (has "Shard utilization"))

let suite =
  [
    ( "introspect",
      [
        Alcotest.test_case "metrics instruments" `Quick
          test_metrics_instruments;
        Alcotest.test_case "metrics merge and reset" `Quick
          test_metrics_merge_and_reset;
        Alcotest.test_case "metrics json" `Quick test_metrics_json;
        Alcotest.test_case "trace spans and aggregates" `Quick
          test_trace_spans_and_agg;
        Alcotest.test_case "trace ring overflow" `Quick
          test_trace_ring_overflow;
        Alcotest.test_case "trace chrome export" `Quick
          test_trace_chrome_export;
        Alcotest.test_case "json string escaping" `Quick
          test_json_string_escaping;
        Alcotest.test_case "stall check" `Quick test_stall_check;
        Alcotest.test_case "stall event jsonl" `Quick test_stall_event_jsonl;
        Alcotest.test_case "introspected campaign identical" `Quick
          test_introspected_campaign_identical;
        Alcotest.test_case "introspected sharded identical" `Quick
          test_introspected_sharded_identical;
        Alcotest.test_case "sharded event stream deterministic" `Quick
          test_sharded_event_stream_deterministic;
        Alcotest.test_case "profile report deterministic" `Quick
          test_profile_report_deterministic;
      ] );
  ]
