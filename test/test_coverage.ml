(** Coverage map and feedback listener tests, including the paper's core
    discrimination claim as a unit test: the path listener distinguishes
    executions that the edge listener cannot. *)

let check = Alcotest.check
let fail = Alcotest.fail

module Cm = Pathcov.Coverage_map

let test_bucketing () =
  let expect = [ (0, 0); (1, 1); (2, 2); (3, 4); (4, 8); (7, 8); (8, 16);
                 (15, 16); (16, 32); (31, 32); (32, 64); (127, 64); (128, 128);
                 (255, 128) ] in
  List.iter
    (fun (count, bucket) ->
      check Alcotest.int (Printf.sprintf "bucket of %d" count) bucket
        (Cm.bucket_of_count count))
    expect

let test_hit_and_clear () =
  let m = Cm.create ~size_log2:8 () in
  Cm.hit m 5;
  Cm.hit m 5;
  Cm.hit m 300 (* wraps to 300 land 255 = 44 *);
  check Alcotest.int "two set" 2 (Cm.count_set m);
  check (Alcotest.list Alcotest.int) "indices" [ 5; 44 ] (Cm.set_indices m);
  check (Alcotest.array Alcotest.int) "indices array" [| 5; 44 |]
    (Cm.sorted_indices m);
  check Alcotest.int "raw count" 2 (Cm.get m 5);
  Cm.clear m;
  check Alcotest.int "cleared" 0 (Cm.count_set m);
  check Alcotest.int "byte zeroed" 0 (Cm.get m 5)

let test_saturation () =
  let m = Cm.create ~size_log2:8 () in
  for _ = 1 to 1000 do
    Cm.hit m 3
  done;
  check Alcotest.int "saturates at 255" 255 (Cm.get m 3)

let test_classify () =
  let m = Cm.create ~size_log2:8 () in
  for _ = 1 to 5 do
    Cm.hit m 9
  done;
  Cm.classify m;
  check Alcotest.int "5 -> bucket 8" 8 (Cm.get m 9)

let test_novelty_transitions () =
  let virgin = Cm.create_virgin ~size_log2:8 () in
  let trace = Cm.create ~size_log2:8 () in
  Cm.hit trace 7;
  Cm.classify trace;
  check Alcotest.bool "first hit is new tuple" true
    (Cm.merge_into ~virgin trace = Cm.New_tuple);
  check Alcotest.bool "same trace no longer novel" true
    (Cm.merge_into ~virgin trace = Cm.Nothing);
  (* same tuple, higher bucket: New_bucket *)
  let trace2 = Cm.create ~size_log2:8 () in
  for _ = 1 to 4 do
    Cm.hit trace2 7
  done;
  Cm.classify trace2;
  check Alcotest.bool "bucket change" true
    (Cm.merge_into ~virgin trace2 = Cm.New_bucket);
  (* a different index: New_tuple again *)
  let trace3 = Cm.create ~size_log2:8 () in
  Cm.hit trace3 8;
  Cm.classify trace3;
  check Alcotest.bool "new index" true (Cm.merge_into ~virgin trace3 = Cm.New_tuple)

let test_copy_and_hash () =
  let m = Cm.create ~size_log2:8 () in
  Cm.hit m 1;
  Cm.hit m 200;
  let m2 = Cm.copy m in
  check Alcotest.int "hash equal" (Cm.hash m) (Cm.hash m2);
  Cm.hit m2 3;
  check Alcotest.bool "hash differs" true (Cm.hash m <> Cm.hash m2)

let prop_merge_idempotent =
  QCheck.Test.make ~count:200 ~name:"merging a trace twice yields Nothing"
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 10_000))
    (fun idxs ->
      let virgin = Cm.create_virgin ~size_log2:12 () in
      let trace = Cm.create ~size_log2:12 () in
      List.iter (Cm.hit trace) idxs;
      Cm.classify trace;
      ignore (Cm.merge_into ~virgin trace);
      Cm.merge_into ~virgin trace = Cm.Nothing)

let prop_journal_matches_bytes =
  QCheck.Test.make ~count:200 ~name:"journal agrees with raw bytes"
    QCheck.(list_of_size Gen.(int_range 0 100) (int_bound 4095))
    (fun idxs ->
      let m = Cm.create ~size_log2:12 () in
      List.iter (Cm.hit m) idxs;
      let expected = List.sort_uniq compare idxs in
      Cm.set_indices m = expected
      && Array.to_list (Cm.sorted_indices m) = expected
      && Cm.count_set m = List.length expected)

(* --- feedback listeners --- *)

let run_with_feedback fb prog input =
  let hooks =
    {
      Vm.Interp.no_hooks with
      h_call = fb.Pathcov.Feedback.on_call;
      h_block = fb.Pathcov.Feedback.on_block;
      h_edge = fb.Pathcov.Feedback.on_edge;
      h_ret = fb.Pathcov.Feedback.on_ret;
    }
  in
  fb.Pathcov.Feedback.reset ();
  Cm.clear fb.trace;
  ignore (Vm.Interp.run ~hooks prog ~input);
  Cm.classify fb.trace;
  List.map (fun i -> (i, Cm.get fb.trace i)) (Cm.set_indices fb.trace)

(* Two inputs that traverse the same edge set along different paths:
   in the two-diamond function, inputs 10 (T,F) and 03 (F,T) jointly cover
   all four arms; then 13 (T,T) adds no new edge but is a new path. *)
let two_diamond_src =
  "fn f(a, c) { var y = 0; if (a) { y = 1; } else { y = 2; } if (c) { y = y + \
   10; } else { y = y + 20; } return y; }\n\
   fn main() { return f(in(0) - 48, in(1) - 48); }"

let test_path_discriminates_edge_does_not () =
  let prog = Minic.Lower.compile two_diamond_src in
  let check_mode mode expect_novel =
    let fb = Pathcov.Feedback.make mode prog in
    let virgin = Cm.create_virgin () in
    let merge input =
      ignore (run_with_feedback fb prog input);
      Cm.merge_into ~virgin fb.trace
    in
    ignore (merge "10");
    ignore (merge "03");
    let n = merge "13" in
    check Alcotest.bool
      (Pathcov.Feedback.mode_name mode ^ " novelty for third input")
      expect_novel
      (n <> Cm.Nothing)
  in
  (* edge coverage: all edges already seen -> no novelty *)
  check_mode Pathcov.Feedback.Edge false;
  (* path coverage: the (T,T) combination is a brand-new acyclic path *)
  check_mode Pathcov.Feedback.Path true

let test_edge_feedback_orders () =
  (* edge coverage distinguishes A->B from B->A *)
  let src =
    "fn a() { return 1; } fn b() { return 2; } fn main() { if (in(0) == 104) { \
     a(); b(); } else { b(); a(); } return 0; }"
  in
  let prog = Minic.Lower.compile src in
  let fb = Pathcov.Feedback.make Pathcov.Feedback.Edge prog in
  let t1 = run_with_feedback fb prog "h" in
  let t2 = run_with_feedback fb prog "x" in
  check Alcotest.bool "different maps" true (t1 <> t2)

let test_block_coarser_than_edge () =
  let prog = Minic.Lower.compile two_diamond_src in
  let fb_block = Pathcov.Feedback.make Pathcov.Feedback.Block prog in
  let fb_path = Pathcov.Feedback.make Pathcov.Feedback.Path prog in
  let count fb input = List.length (run_with_feedback fb prog input) in
  (* block count is bounded by total blocks; path adds per-activation ids *)
  check Alcotest.bool "block <= path+blocks sanity" true
    (count fb_block "13" > 0 && count fb_path "13" > 0)

let test_ngram_and_pathafl_smoke () =
  let prog = Minic.Lower.compile two_diamond_src in
  List.iter
    (fun mode ->
      let fb = Pathcov.Feedback.make mode prog in
      let t = run_with_feedback fb prog "13" in
      check Alcotest.bool (Pathcov.Feedback.mode_name mode ^ " produces coverage")
        true (t <> []))
    [ Pathcov.Feedback.Ngram 2; Pathcov.Feedback.Ngram 4; Pathcov.Feedback.Pathafl ]

let test_path_feedback_survives_crash () =
  (* a crash unwinds mid-path; reset must clear leftover registers *)
  let src = "fn main() { var a = array(2); if (in(0) == 104) { a[9] = 1; } return 0; }" in
  let prog = Minic.Lower.compile src in
  let fb = Pathcov.Feedback.make Pathcov.Feedback.Path prog in
  ignore (run_with_feedback fb prog "h");
  (* crashing run *)
  let t = run_with_feedback fb prog "x" in
  check Alcotest.bool "clean run commits" true (t <> [])

let prop_feedback_deterministic =
  QCheck.Test.make ~count:60 ~name:"listeners are deterministic"
    (QCheck.pair Gen.arbitrary_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      List.for_all
        (fun mode ->
          let fb = Pathcov.Feedback.make mode prog in
          let a = run_with_feedback fb prog input in
          let b = run_with_feedback fb prog input in
          a = b)
        [ Pathcov.Feedback.Edge; Pathcov.Feedback.Path; Pathcov.Feedback.Ngram 2 ])

let suite =
  [
    ( "coverage-map",
      [
        Alcotest.test_case "bucketing" `Quick test_bucketing;
        Alcotest.test_case "hit and clear" `Quick test_hit_and_clear;
        Alcotest.test_case "saturation" `Quick test_saturation;
        Alcotest.test_case "classify" `Quick test_classify;
        Alcotest.test_case "novelty transitions" `Quick test_novelty_transitions;
        Alcotest.test_case "copy and hash" `Quick test_copy_and_hash;
      ] );
    ( "feedback",
      [
        Alcotest.test_case "path discriminates where edge cannot" `Quick
          test_path_discriminates_edge_does_not;
        Alcotest.test_case "edge feedback sees orders" `Quick test_edge_feedback_orders;
        Alcotest.test_case "block vs path sanity" `Quick test_block_coarser_than_edge;
        Alcotest.test_case "ngram and pathafl smoke" `Quick test_ngram_and_pathafl_smoke;
        Alcotest.test_case "path feedback survives crash" `Quick
          test_path_feedback_survives_crash;
      ] );
    ( "coverage-properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_merge_idempotent; prop_journal_matches_bytes; prop_feedback_deterministic ] );
  ]
