(** Random MiniC program generation for property-based tests. Programs are
    built structurally (straight from the AST grammar), so they are always
    parseable, sema-clean and reducible — which lets properties over the
    whole pipeline (lowering, dominance, Ball–Larus, VM) run on thousands
    of distinct CFGs. *)

open Minic.Ast

let pos = dummy_pos

let e expr = { expr; epos = pos }
let s stmt = { stmt; spos = pos }

(* Expression generator over a fixed set of int-typed locals. *)
let rec gen_expr vars depth st =
  let open QCheck.Gen in
  if depth <= 0 then
    frequency
      [
        (3, map (fun n -> e (Int n)) (int_range (-8) 260));
        (3, map (fun v -> e (Var v)) (oneofl vars));
        (1, return (e Len));
        (2, map (fun i -> e (In (e (Int i)))) (int_range 0 24));
      ]
      st
  else
    frequency
      [
        (2, gen_expr vars 0);
        ( 4,
          fun st ->
            let op =
              oneofl
                [ Add; Sub; Mul; Eq; Ne; Lt; Le; Gt; Ge; Land; Lor; Band; Bxor ]
                st
            in
            let a = gen_expr vars (depth - 1) st in
            let b = gen_expr vars (depth - 1) st in
            e (Binop (op, a, b)) );
        (1, fun st -> e (Unop (Not, gen_expr vars (depth - 1) st)));
        (1, fun st -> e (Abs (gen_expr vars (depth - 1) st)));
      ]
      st

(* Statement generator: structured control flow only, bounded nesting.
   [depth] bounds nesting; loops get a counter guard so programs always
   terminate well within fuel. *)
let rec gen_block vars ~loops depth st =
  let open QCheck.Gen in
  let n = int_range 1 4 st in
  List.concat (List.init n (fun _ -> gen_stmt vars ~loops depth st))

and gen_stmt vars ~loops depth st : stmt_node list =
  let open QCheck.Gen in
  let choice = int_range 0 (if depth > 0 then 5 else 2) st in
  match choice with
  | 0 | 1 ->
      let v = oneofl vars st in
      [ s (Assign (v, gen_expr vars 2 st)) ]
  | 2 ->
      let v = oneofl vars st in
      [ s (Assign (v, gen_expr vars 1 st)) ]
  | 3 ->
      let cond = gen_expr vars 2 st in
      let then_ = gen_block vars ~loops (depth - 1) st in
      let else_ = if bool st then gen_block vars ~loops (depth - 1) st else [] in
      [ s (If (cond, then_, else_)) ]
  | 4 when loops ->
      (* bounded while loop over a dedicated counter *)
      let v = oneofl vars st in
      let bound = int_range 1 6 st in
      [
        s (Assign (v, e (Int 0)));
        s
          (While
             ( e (Binop (Lt, e (Var v), e (Int bound))),
               gen_block vars ~loops:false (depth - 1) st
               @ [ s (Assign (v, e (Binop (Add, e (Var v), e (Int 1))))) ] ));
      ]
  | _ ->
      let cond = gen_expr vars 2 st in
      [ s (If (cond, gen_block vars ~loops (depth - 1) st, [])) ]

(** Generate a full program: two helper functions plus [main] calling
    them. All variables are pre-declared so scoping always checks. *)
let gen_program : program QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let vars = [ "a"; "b"; "c" ] in
  let decls = List.map (fun v -> s (Decl (v, Some (e (Int 0))))) vars in
  let mk_func name ~loops =
    let body = decls @ gen_block vars ~loops 3 st in
    let ret = s (Return (Some (gen_expr vars 1 st))) in
    { fname = name; params = [ "x" ]; body = body @ [ ret ]; fpos = pos }
  in
  let f = mk_func "f" ~loops:true in
  let g = mk_func "g" ~loops:(bool st) in
  let main_body =
    decls
    @ [
        s (Assign ("a", e (Call ("f", [ e (In (e (Int 0))) ]))));
        s (Assign ("b", e (Call ("g", [ e (Var "a") ]))));
        s (Return (Some (e (Binop (Add, e (Var "a"), e (Var "b"))))));
      ]
  in
  {
    globals = [ Gint "gcount" ];
    funcs = [ f; g; { fname = "main"; params = []; body = main_body; fpos = pos } ];
  }

let arbitrary_program : program QCheck.arbitrary = QCheck.make gen_program

(* --- chain/diamond-biased programs (superblock-fusion differentials) ---

   Lowered CFGs from this generator are dominated by the shapes the
   fusion pass targets: long straight-line assignment runs (single-
   predecessor goto chains), if/else diamonds whose arms rejoin, and
   division sites whose divisor reads input — so a crash (or a small
   fuel budget) lands mid-chain, where bulk-burn replay must reproduce
   the interpreter's exact site and fuel accounting. *)

let gen_chain_stmt vars st : stmt_node list =
  let open QCheck.Gen in
  match int_range 0 9 st with
  | 0 | 1 | 2 | 3 ->
      (* straight-line run: a single-predecessor chain once lowered *)
      let n = int_range 3 8 st in
      List.init n (fun _ ->
          let v = oneofl vars st in
          s (Assign (v, gen_expr vars 1 st)))
  | 4 | 5 ->
      (* rejoining diamond with straight-line arms *)
      let cond = gen_expr vars 1 st in
      let arm () =
        List.init
          (int_range 1 4 st)
          (fun _ ->
            let v = oneofl vars st in
            s (Assign (v, gen_expr vars 1 st)))
      in
      [ s (If (cond, arm (), arm ())) ]
  | 6 | 7 ->
      (* mid-chain crash site: input-dependent divisor *)
      let v = oneofl vars st in
      [
        s
          (Assign
             ( v,
               e
                 (Binop
                    ( Div,
                      gen_expr vars 1 st,
                      e (In (e (Int (int_range 0 24 st)))) )) ));
      ]
  | _ ->
      (* bounded loop: the back edge's target has two predecessors, so
         fusion must stop at the loop head *)
      let v = oneofl vars st in
      let bound = int_range 1 5 st in
      [
        s (Assign (v, e (Int 0)));
        s
          (While
             ( e (Binop (Lt, e (Var v), e (Int bound))),
               List.init
                 (int_range 1 3 st)
                 (fun _ ->
                   let w = oneofl vars st in
                   s (Assign (w, gen_expr vars 1 st)))
               @ [ s (Assign (v, e (Binop (Add, e (Var v), e (Int 1))))) ] ));
      ]

let gen_chain_program : program QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let vars = [ "a"; "b"; "c"; "d" ] in
  let decls = List.map (fun v -> s (Decl (v, Some (e (Int 1))))) vars in
  let mk_func name =
    let n = int_range 3 6 st in
    let body =
      decls @ List.concat (List.init n (fun _ -> gen_chain_stmt vars st))
    in
    let ret = s (Return (Some (gen_expr vars 1 st))) in
    { fname = name; params = [ "x" ]; body = body @ [ ret ]; fpos = pos }
  in
  let f = mk_func "f" in
  let g = mk_func "g" in
  let main_body =
    decls
    @ [
        s (Assign ("a", e (Call ("f", [ e (In (e (Int 0))) ]))));
        s (Assign ("b", e (Call ("g", [ e (Var "a") ]))));
        s (Return (Some (e (Binop (Add, e (Var "a"), e (Var "b"))))));
      ]
  in
  {
    globals = [ Gint "gcount" ];
    funcs =
      [ f; g; { fname = "main"; params = []; body = main_body; fpos = pos } ];
  }

(** Lowered IR of a chain/diamond-biased program. *)
let gen_chain_ir : Minic.Ir.program QCheck.Gen.t =
  QCheck.Gen.map
    (fun p ->
      Minic.Sema.check p;
      Minic.Lower.lower p)
    gen_chain_program

let arbitrary_chain_ir : Minic.Ir.program QCheck.arbitrary =
  QCheck.make gen_chain_ir

(** Lowered IR of a random program (checks sema along the way). *)
let gen_ir : Minic.Ir.program QCheck.Gen.t =
  QCheck.Gen.map
    (fun p ->
      Minic.Sema.check p;
      Minic.Lower.lower p)
    gen_program

let arbitrary_ir : Minic.Ir.program QCheck.arbitrary = QCheck.make gen_ir

(** Random input strings for VM runs. *)
let gen_input : string QCheck.Gen.t =
  QCheck.Gen.(string_size ~gen:char (int_range 0 40))

let arbitrary_input = QCheck.make gen_input
