(** VM tests: evaluation semantics, the crash model, limits, hooks. *)

let check = Alcotest.check
let fail = Alcotest.fail

let run ?fuel src input =
  (Vm.Interp.run ?fuel (Minic.Lower.compile src) ~input).status

let ret src input =
  match run src input with
  | Vm.Interp.Finished v -> Option.value ~default:min_int v
  | Vm.Interp.Crashed c -> fail (Fmt.str "unexpected crash: %a" Vm.Crash.pp c)
  | Vm.Interp.Hung -> fail "unexpected hang"

let crash src input =
  match run src input with
  | Vm.Interp.Crashed c -> c
  | Vm.Interp.Finished _ -> fail "expected crash"
  | Vm.Interp.Hung -> fail "expected crash, got hang"

let test_arithmetic () =
  check Alcotest.int "add" 7 (ret "fn main() { return 3 + 4; }" "");
  check Alcotest.int "mul before add" 11 (ret "fn main() { return 3 + 4 * 2; }" "");
  check Alcotest.int "division truncates" 3 (ret "fn main() { return 7 / 2; }" "");
  check Alcotest.int "negative" (-5) (ret "fn main() { return -5; }" "");
  check Alcotest.int "mod" 2 (ret "fn main() { return 17 % 5; }" "");
  check Alcotest.int "bitops" 6 (ret "fn main() { return (12 & 7) | 2; }" "");
  check Alcotest.int "xor" 5 (ret "fn main() { return 6 ^ 3; }" "");
  check Alcotest.int "shift" 24 (ret "fn main() { return 3 << 3; }" "");
  check Alcotest.int "bnot" (-1) (ret "fn main() { return ~0; }" "");
  check Alcotest.int "abs" 9 (ret "fn main() { return abs(0 - 9); }" "")

let test_comparisons_bool () =
  check Alcotest.int "lt true" 1 (ret "fn main() { return 1 < 2; }" "");
  check Alcotest.int "ge false" 0 (ret "fn main() { return 1 >= 2; }" "");
  check Alcotest.int "not" 1 (ret "fn main() { return !0; }" "");
  check Alcotest.int "and short" 0 (ret "fn main() { return 0 && 1 / 0; }" "");
  check Alcotest.int "or short" 1 (ret "fn main() { return 1 || 1 / 0; }" "")

let test_short_circuit_effects () =
  (* the right-hand call must not run when the left side decides *)
  let src =
    "global n; fn tick() { n = n + 1; return 1; } fn main() { var x = 0 && \
     tick(); var y = 1 || tick(); return n + x + y; }"
  in
  check Alcotest.int "no ticks" 1 (ret src "")

let test_input_builtins () =
  check Alcotest.int "in" 104 (ret "fn main() { return in(0); }" "h");
  check Alcotest.int "in OOB" (-1) (ret "fn main() { return in(9); }" "h");
  check Alcotest.int "in negative" (-1) (ret "fn main() { return in(0 - 1); }" "h");
  check Alcotest.int "len" 5 (ret "fn main() { return len(); }" "hello")

let test_arrays () =
  check Alcotest.int "store/load" 42
    (ret "fn main() { var a = array(4); a[2] = 42; return a[2]; }" "");
  check Alcotest.int "array_len" 7 (ret "fn main() { return array_len(array(7)); }" "");
  check Alcotest.int "zero init" 0 (ret "fn main() { var a = array(3); return a[1]; }" "");
  (* arrays are references: callee mutation visible to caller *)
  let src =
    "fn set(a) { a[0] = 9; return 0; } fn main() { var a = array(2); set(a); \
     return a[0]; }"
  in
  check Alcotest.int "by reference" 9 (ret src "")

let test_globals () =
  let src =
    "global g; global arr[4]; fn bump() { g = g + 1; arr[g] = g * 10; return g; } \
     fn main() { bump(); bump(); return arr[2] + g; }"
  in
  check Alcotest.int "global state" 22 (ret src "");
  (* globals reset between runs *)
  let prog = Minic.Lower.compile src in
  let prep = Vm.Interp.prepare prog in
  let r1 = Vm.Interp.run_prepared prep ~input:"" in
  let r2 = Vm.Interp.run_prepared prep ~input:"" in
  (match (r1.status, r2.status) with
  | Vm.Interp.Finished (Some a), Vm.Interp.Finished (Some b) ->
      check Alcotest.int "deterministic across runs" a b
  | _ -> fail "expected finishes");
  ()

let test_recursion () =
  let src =
    "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } fn \
     main() { return fib(10); }"
  in
  check Alcotest.int "fib" 55 (ret src "")

let test_crash_oob_read () =
  let c = crash "fn main() { var a = array(2); return a[5]; }" "" in
  match c.kind with
  | Vm.Crash.Out_of_bounds { len = 2; idx = 5 } -> ()
  | _ -> fail "wrong crash kind"

let test_crash_oob_write () =
  let c = crash "fn main() { var a = array(2); a[0 - 1] = 3; return 0; }" "" in
  match c.kind with
  | Vm.Crash.Out_of_bounds { idx = -1; _ } -> ()
  | _ -> fail "wrong crash kind"

let test_crash_div_rem () =
  (match (crash "fn main() { return 1 / in(0); }" "\x00").kind with
  | Vm.Crash.Div_by_zero -> ()
  | _ -> fail "expected div by zero");
  match (crash "fn main() { return 1 % in(0); }" "\x00").kind with
  | Vm.Crash.Div_by_zero -> ()
  | _ -> fail "expected rem by zero"

let test_crash_seeded_and_check () =
  (match Vm.Crash.bug_identity (crash "fn main() { bug(42); }" "") with
  | Vm.Crash.Id 42 -> ()
  | _ -> fail "expected bug 42");
  (match Vm.Crash.bug_identity (crash "fn main() { check(0, 9); }" "") with
  | Vm.Crash.Id 9 -> ()
  | _ -> fail "expected check 9");
  (* check passes when non-zero *)
  check Alcotest.int "check passes" 0 (ret "fn main() { check(5, 9); return 0; }" "")

let test_crash_bad_alloc () =
  match (crash "fn main() { var a = array(0 - 3); return 0; }" "").kind with
  | Vm.Crash.Bad_alloc (-3) -> ()
  | _ -> fail "expected bad alloc"

let test_crash_stack_overflow () =
  let src = "fn f(n) { return f(n + 1); } fn main() { return f(0); }" in
  match (crash src "").kind with
  | Vm.Crash.Stack_overflow -> ()
  | _ -> fail "expected stack overflow"

let test_hang () =
  let src = "fn main() { var i = 0; while (1) { i = i + 1; } return i; }" in
  match run ~fuel:1000 src "" with
  | Vm.Interp.Hung -> ()
  | _ -> fail "expected hang"

let test_crash_stack_trace () =
  let src =
    "fn inner() { bug(1); } fn outer() { inner(); return 0; } fn main() { \
     outer(); return 0; }"
  in
  let c = crash src "" in
  let fns = List.map (fun (f : Vm.Crash.frame) -> f.fn) c.stack in
  check (Alcotest.list Alcotest.string) "stack" [ "inner"; "outer"; "main" ] fns

let test_top5_hash_stability () =
  let src = "fn main() { bug(1); }" in
  let a = Vm.Crash.top5_hash (crash src "") in
  let b = Vm.Crash.top5_hash (crash src "xyz") in
  check Alcotest.int "same crash, same hash" a b;
  let src2 = "fn g() { bug(1); } fn main() { g(); return 0; }" in
  let c = Vm.Crash.top5_hash (crash src2 "") in
  check Alcotest.bool "different stack, different hash" true (a <> c)

let test_type_confusion_site () =
  (* Regression: [Rload] used to report site -1 on array-used-as-int type
     confusion, so the crash blamed function "?" with an unstable dedup
     frame. The real faulting site (and thus function) must be reported. *)
  let src =
    "fn f() { var a = array(2); return a + 1; } fn main() { f(); return 0; }"
  in
  let c = crash src "" in
  (match c.kind with
  | Vm.Crash.Type_error _ -> ()
  | _ -> fail "expected type confusion");
  match c.stack with
  | top :: rest ->
      check Alcotest.string "faulting function" "f" top.fn;
      check Alcotest.bool "real site" true (top.site >= 0);
      check
        (Alcotest.list Alcotest.string)
        "callers" [ "main" ]
        (List.map (fun (f : Vm.Crash.frame) -> f.fn) rest)
  | [] -> fail "empty crash stack"

let test_max_depth_configurable () =
  let src =
    "fn f(n) { if (n == 0) { return 0; } return f(n - 1); } fn main() { \
     return f(50); }"
  in
  let prog = Minic.Lower.compile src in
  (match (Vm.Interp.run prog ~input:"").status with
  | Vm.Interp.Finished (Some 0) -> ()
  | _ -> fail "default depth should accommodate 50 frames");
  match (Vm.Interp.run ~max_depth:10 prog ~input:"").status with
  | Vm.Interp.Crashed { kind = Vm.Crash.Stack_overflow; _ } -> ()
  | _ -> fail "expected stack overflow at max_depth 10"

let test_steady_state_allocation () =
  (* Guards the pooled execution context against future re-boxing: after
     warmup, a loop-heavy subject must run with only the outcome record
     and the program's own array(n) requests allocated per execution. *)
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let fb = Pathcov.Feedback.make Pathcov.Feedback.Path prog in
  let hooks =
    {
      Vm.Interp.no_hooks with
      h_call = fb.Pathcov.Feedback.on_call;
      h_block = fb.Pathcov.Feedback.on_block;
      h_edge = fb.Pathcov.Feedback.on_edge;
      h_ret = fb.Pathcov.Feedback.on_ret;
    }
  in
  let ctx = Vm.Interp.create_ctx ~hooks (Vm.Interp.prepare prog) in
  let input = List.hd s.seeds in
  let one () =
    fb.reset ();
    Pathcov.Coverage_map.clear fb.trace;
    ignore (Vm.Interp.run_ctx ctx ~input);
    Pathcov.Coverage_map.classify fb.trace
  in
  for _ = 1 to 64 do
    one ()
  done;
  let n = 512 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    one ()
  done;
  let per_exec = (Gc.minor_words () -. w0) /. float_of_int n in
  check Alcotest.bool
    (Printf.sprintf "minor words per exec bounded (got %.1f)" per_exec)
    true (per_exec < 256.)

let test_hooks_fire () =
  let src = "fn main() { var i = 0; while (i < 3) { i = i + 1; } return i; }" in
  let calls = ref 0 and blocks = ref 0 and edges = ref 0 and rets = ref 0 in
  let hooks =
    {
      Vm.Interp.h_call = (fun _ -> incr calls);
      h_block = (fun _ _ -> incr blocks);
      h_edge = (fun _ _ _ -> incr edges);
      h_ret = (fun _ _ -> incr rets);
      h_cmp = (fun _ _ -> ());
    }
  in
  ignore (Vm.Interp.run ~hooks (Minic.Lower.compile src) ~input:"");
  check Alcotest.int "one call" 1 !calls;
  check Alcotest.int "one ret" 1 !rets;
  check Alcotest.bool "blocks = edges + 1 per activation" true (!blocks = !edges + 1)

let test_cmp_hook () =
  let pairs = ref [] in
  let hooks =
    { Vm.Interp.no_hooks with h_cmp = (fun a b -> pairs := (a, b) :: !pairs) }
  in
  ignore
    (Vm.Interp.run ~hooks
       (Minic.Lower.compile "fn main() { if (in(0) == 77) { return 1; } return 0; }")
       ~input:"A");
  check
    Alcotest.(list (pair int int))
    "captured comparison" [ (65, 77) ] !pairs

let test_blocks_counted () =
  let out = Vm.Interp.run (Minic.Lower.compile "fn main() { return 0; }") ~input:"" in
  check Alcotest.int "single block" 1 out.blocks_executed

let prop_vm_total =
  QCheck.Test.make ~count:300 ~name:"VM is total on generated programs"
    (QCheck.pair Gen.arbitrary_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      match (Vm.Interp.run ~fuel:50_000 prog ~input).status with
      | Vm.Interp.Finished _ | Vm.Interp.Crashed _ | Vm.Interp.Hung -> true)

let prop_vm_deterministic =
  QCheck.Test.make ~count:100 ~name:"VM runs are deterministic"
    (QCheck.pair Gen.arbitrary_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      let prep = Vm.Interp.prepare prog in
      let a = Vm.Interp.run_prepared prep ~input in
      let b = Vm.Interp.run_prepared prep ~input in
      a.status = b.status && a.blocks_executed = b.blocks_executed)

let suite =
  [
    ( "vm",
      [
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "comparisons and booleans" `Quick test_comparisons_bool;
        Alcotest.test_case "short-circuit effects" `Quick test_short_circuit_effects;
        Alcotest.test_case "input builtins" `Quick test_input_builtins;
        Alcotest.test_case "arrays" `Quick test_arrays;
        Alcotest.test_case "globals" `Quick test_globals;
        Alcotest.test_case "recursion" `Quick test_recursion;
        Alcotest.test_case "crash: OOB read" `Quick test_crash_oob_read;
        Alcotest.test_case "crash: OOB write" `Quick test_crash_oob_write;
        Alcotest.test_case "crash: div/rem by zero" `Quick test_crash_div_rem;
        Alcotest.test_case "crash: seeded and check" `Quick test_crash_seeded_and_check;
        Alcotest.test_case "crash: bad alloc" `Quick test_crash_bad_alloc;
        Alcotest.test_case "crash: stack overflow" `Quick test_crash_stack_overflow;
        Alcotest.test_case "hang on fuel" `Quick test_hang;
        Alcotest.test_case "crash stack trace" `Quick test_crash_stack_trace;
        Alcotest.test_case "type confusion reports real site" `Quick
          test_type_confusion_site;
        Alcotest.test_case "max_depth is configurable" `Quick
          test_max_depth_configurable;
        Alcotest.test_case "steady-state allocation bounded" `Quick
          test_steady_state_allocation;
        Alcotest.test_case "top-5 hash stability" `Quick test_top5_hash_stability;
        Alcotest.test_case "hooks fire" `Quick test_hooks_fire;
        Alcotest.test_case "cmp hook" `Quick test_cmp_hook;
        Alcotest.test_case "blocks counted" `Quick test_blocks_counted;
      ] );
    ( "vm-properties",
      List.map QCheck_alcotest.to_alcotest [ prop_vm_total; prop_vm_deterministic ] );
  ]
