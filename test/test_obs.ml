(** Observability-layer tests: the zero-perturbation rule (observed and
    unobserved campaigns run byte-identical trajectories), counter
    hot-path allocation, ring-buffer sink semantics, the snapshot-derived
    legacy views, pool trial events, and the bench trend history. *)

let check = Alcotest.check
let check_bool msg = Alcotest.(check bool) msg

(* ------------------------------------------------------------------ *)
(* Zero perturbation: byte-identical trajectories under any observer *)

(* Everything the fuzzing loop decided, folded into one comparable
   summary: final queue bytes + discovery metadata, triage tallies,
   exec/havoc counts. Wall floats are excluded (they are observer-clock
   artifacts, identically 0 here). *)
let trajectory (r : Fuzz.Campaign.result) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (e : Fuzz.Corpus.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d:%d:%b:%S;" e.id e.depth e.found_at e.favored
           e.data))
    (Fuzz.Corpus.to_list r.corpus);
  Buffer.add_string buf
    (Printf.sprintf "|execs=%d havocs=%d blocks=%d" r.execs r.havocs
       r.sum_exec_blocks);
  Buffer.add_string buf
    (Printf.sprintf "|crashes=%d/%d/%d hangs=%d bugs=%d"
       r.triage.total_crashes
       (Fuzz.Triage.unique_crashes r.triage)
       (Fuzz.Triage.afl_unique_crashes r.triage)
       r.triage.total_hangs
       (Fuzz.Triage.unique_bugs r.triage));
  List.iter
    (fun (x, q) -> Buffer.add_string buf (Printf.sprintf "|%d,%d" x q))
    r.queue_series;
  Buffer.contents buf

let run_with ?obs config prog seeds = Fuzz.Campaign.run ?obs ~config prog ~seeds

let test_byte_identical_trajectories () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let configs =
    [
      ("path+cmplog", { Fuzz.Campaign.default_config with budget = 3_000 });
      ( "edge no cmplog",
        {
          Fuzz.Campaign.default_config with
          mode = Pathcov.Feedback.Edge;
          budget = 3_000;
          cmplog = false;
          rng_seed = 5;
        } );
      ( "pathafl",
        {
          Fuzz.Campaign.default_config with
          mode = Pathcov.Feedback.Pathafl;
          budget = 2_000;
          cmplog = false;
          rng_seed = 9;
        } );
    ]
  in
  let tmp = Filename.temp_file "pathfuzz_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      List.iter
        (fun (name, config) ->
          let bare = trajectory (run_with config prog s.seeds) in
          (* null sink *)
          let null_obs = Obs.Observer.create () in
          check Alcotest.string (name ^ ": null sink")
            bare
            (trajectory (run_with ~obs:null_obs config prog s.seeds));
          (* memory ring sink *)
          let ring = Obs.Sink.create_ring ~capacity:64 () in
          let ring_obs = Obs.Observer.create ~sink:(Obs.Sink.ring ring) () in
          check Alcotest.string (name ^ ": ring sink")
            bare
            (trajectory (run_with ~obs:ring_obs config prog s.seeds));
          check_bool (name ^ ": ring saw events") true
            (Obs.Sink.ring_total ring > 0);
          (* JSONL writer sink *)
          let oc = open_out tmp in
          let jsonl_obs = Obs.Observer.create ~sink:(Obs.Sink.jsonl oc) () in
          let tj = trajectory (run_with ~obs:jsonl_obs config prog s.seeds) in
          close_out oc;
          check Alcotest.string (name ^ ": jsonl sink") bare tj;
          (* the clock changes only wall floats, never the trajectory *)
          let t = ref 0. in
          let clocked =
            Obs.Observer.create
              ~clock:(fun () ->
                t := !t +. 0.001;
                !t)
              ()
          in
          check Alcotest.string (name ^ ": with clock")
            bare
            (trajectory (run_with ~obs:clocked config prog s.seeds)))
        configs)

let test_shared_observer_identical () =
  (* A multi-phase strategy must fuzz identically whether or not one
     accumulating observer is threaded through its phases. *)
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let plans = Pathcov.Ball_larus.of_program prog in
  let strat_sig (r : Fuzz.Strategy.run_result) =
    Printf.sprintf "%d|%d|%d|%s" r.execs r.queue_size
      (Fuzz.Triage.unique_bugs r.triage)
      (String.concat ";" r.final_queue)
  in
  List.iter
    (fun fz ->
      let bare =
        Fuzz.Strategy.run ~plans ~budget:2_000 ~trial_seed:3 fz prog
          ~seeds:s.seeds
      in
      let obs = Obs.Observer.create () in
      let observed =
        Fuzz.Strategy.run ~plans ~obs ~budget:2_000 ~trial_seed:3 fz prog
          ~seeds:s.seeds
      in
      check Alcotest.string
        (fz.Fuzz.Strategy.name ^ ": observed = unobserved")
        (strat_sig bare) (strat_sig observed);
      (* the shared observer accumulated across phases *)
      check_bool (fz.Fuzz.Strategy.name ^ ": counters accumulated") true
        (obs.counters.execs >= 2_000 - 64))
    [ Fuzz.Strategy.cull ~rounds:3 (); Fuzz.Strategy.opp ]

(* ------------------------------------------------------------------ *)
(* Counter hot path stays allocation-free *)

let test_counter_allocation_free () =
  (* The per-exec hot path touches int counters only (the float wall
     splits are clock-gated onto paths that already allocate), so the
     steady-state cost of counting must be zero allocation. *)
  let c = Obs.Counters.create () in
  (* warm up *)
  for _ = 1 to 1000 do
    c.execs <- c.execs + 1
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 100_000 do
    c.execs <- c.execs + 1;
    c.blocks <- c.blocks + 7;
    c.havocs <- c.havocs + 1;
    c.retained <- c.retained + 1;
    c.queue_full_drops <- c.queue_full_drops + 1
  done;
  let dw = Gc.minor_words () -. w0 in
  check_bool
    (Printf.sprintf "counter bumps allocate nothing (got %.1f words)" dw)
    true (dw < 256.)

let test_observed_campaign_allocation () =
  (* The whole observer layer (counters + cadenced snapshots through a
     null sink) must not move campaign steady-state allocation. *)
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let config =
    { Fuzz.Campaign.default_config with budget = 6_000; rng_seed = 3 }
  in
  let measure obs =
    let w0 = Gc.minor_words () in
    let r = Fuzz.Campaign.run ?obs ~config prog ~seeds:s.seeds in
    ((Gc.minor_words () -. w0) /. float_of_int (max 1 r.execs), r)
  in
  let bare, _ = measure None in
  let observed, _ = measure (Some (Obs.Observer.create ())) in
  check_bool
    (Printf.sprintf "observed %.1f w/exec within 15%% + 8w of bare %.1f"
       observed bare)
    true
    (observed < (bare *. 1.15) +. 8.)

(* ------------------------------------------------------------------ *)
(* Ring sink semantics *)

let test_ring_buffer () =
  let r = Obs.Sink.create_ring ~capacity:4 () in
  let sink = Obs.Sink.ring r in
  check Alcotest.int "empty total" 0 (Obs.Sink.ring_total r);
  check Alcotest.int "empty events" 0 (List.length (Obs.Sink.ring_events r));
  for i = 1 to 6 do
    sink.emit (Obs.Event.Hang { at_exec = i })
  done;
  check Alcotest.int "total counts all" 6 (Obs.Sink.ring_total r);
  check Alcotest.int "dropped = total - capacity" 2 (Obs.Sink.ring_dropped r);
  let kept =
    List.map
      (function Obs.Event.Hang { at_exec } -> at_exec | _ -> -1)
      (Obs.Sink.ring_events r)
  in
  check (Alcotest.list Alcotest.int) "newest capacity kept, oldest first"
    [ 3; 4; 5; 6 ] kept;
  check_bool "capacity must be positive" true
    (match Obs.Sink.create_ring ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tee_and_status_sinks () =
  let ra = Obs.Sink.create_ring ~capacity:8 () in
  let rb = Obs.Sink.create_ring ~capacity:8 () in
  let t = Obs.Sink.tee (Obs.Sink.ring ra) (Obs.Sink.ring rb) in
  t.emit (Obs.Event.Hang { at_exec = 1 });
  check Alcotest.int "tee reaches both" 2
    (Obs.Sink.ring_total ra + Obs.Sink.ring_total rb);
  let lines = ref [] in
  let st = Obs.Sink.status (fun l -> lines := l :: !lines) in
  st.emit (Obs.Event.Hang { at_exec = 1 });
  check Alcotest.int "status ignores non-snapshots" 0 (List.length !lines);
  let row =
    Obs.Snapshot.of_counters (Obs.Counters.create ()) ~queue:0
      ~virgin_residual:0
  in
  st.emit (Obs.Event.Snapshot row);
  check Alcotest.int "status prints snapshots" 1 (List.length !lines)

(* ------------------------------------------------------------------ *)
(* Snapshots carry the legacy views *)

let test_snapshot_derived_views () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let config = { Fuzz.Campaign.default_config with budget = 2_000 } in
  let obs = Obs.Observer.create () in
  let r = Fuzz.Campaign.run ~obs ~config prog ~seeds:s.seeds in
  check_bool "snapshots recorded" true (List.length r.snapshots >= 2);
  (* queue_series is exactly the snapshot trajectory *)
  check Alcotest.int "series length = snapshots" (List.length r.snapshots)
    (List.length r.queue_series);
  List.iter2
    (fun (x, q) (row : Obs.Snapshot.row) ->
      check Alcotest.int "series exec = row exec" x row.at_exec;
      check Alcotest.int "series queue = row queue" q row.queue)
    r.queue_series r.snapshots;
  (* final row is the exhausted-budget sample *)
  let last = List.nth r.snapshots (List.length r.snapshots - 1) in
  check Alcotest.int "final row at budget" r.execs last.at_exec;
  check Alcotest.int "final row queue = final corpus"
    (Fuzz.Corpus.size r.corpus) last.queue;
  (* result aggregates are observer deltas *)
  check Alcotest.int "execs" obs.counters.execs r.execs;
  check Alcotest.int "havocs" obs.counters.havocs r.havocs;
  check Alcotest.int "blocks" obs.counters.blocks r.sum_exec_blocks;
  check Alcotest.int "retained = queue growth"
    (Fuzz.Corpus.size r.corpus) obs.counters.retained;
  (* virgin residual shrinks as coverage accrues *)
  let first = List.hd r.snapshots in
  check_bool "virgin residual monotonically non-increasing" true
    (last.virgin_residual <= first.virgin_residual);
  check_bool "virgin residual below map size" true
    (first.virgin_residual < 1 lsl config.map_size_log2);
  (* crash tallies agree between triage and counters *)
  check Alcotest.int "crash counter = triage" r.triage.total_crashes
    obs.counters.crashes;
  check Alcotest.int "hang counter = triage" r.triage.total_hangs
    obs.counters.hangs;
  check Alcotest.int "stack-unique counter = triage"
    (Fuzz.Triage.unique_crashes r.triage)
    obs.counters.crashes_stack_unique;
  check Alcotest.int "cov-novel counter = triage"
    (Fuzz.Triage.afl_unique_crashes r.triage)
    obs.counters.crashes_cov_novel

let test_virgin_residual () =
  (* residual counts bytes still 0xFF: full on a fresh virgin map, zero
     on a fresh (all-zero) trace map, decremented per consumed index *)
  let v = Pathcov.Coverage_map.create_virgin ~size_log2:8 () in
  check Alcotest.int "virgin starts full" 256 (Pathcov.Coverage_map.residual v);
  check Alcotest.int "zero trace map residual" 0
    (Pathcov.Coverage_map.residual (Pathcov.Coverage_map.create ~size_log2:8 ()));
  let trace = Pathcov.Coverage_map.create ~size_log2:8 () in
  Pathcov.Coverage_map.hit trace 3;
  Pathcov.Coverage_map.hit trace 77;
  Pathcov.Coverage_map.classify trace;
  ignore (Pathcov.Coverage_map.merge_into ~virgin:v trace);
  check Alcotest.int "two bytes consumed" 254 (Pathcov.Coverage_map.residual v)

(* ------------------------------------------------------------------ *)
(* Event JSONL shape *)

let test_event_jsonl () =
  let lines =
    [
      Obs.Event.to_jsonl (Obs.Event.Hang { at_exec = 7 });
      Obs.Event.to_jsonl
        (Obs.Event.Retain { at_exec = 3; id = 1; len = 4; depth = 0 });
      Obs.Event.to_jsonl
        (Obs.Event.Trial_end { task = 2; worker = 1; wall_s = 0.5 });
      Obs.Snapshot.to_jsonl
        (Obs.Snapshot.of_counters (Obs.Counters.create ()) ~queue:3
           ~virgin_residual:9);
    ]
  in
  List.iter
    (fun l ->
      check_bool ("object line: " ^ l) true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      check_bool ("no newline inside: " ^ l) true
        (not (String.contains l '\n')))
    lines;
  check_bool "hang shape" true
    (List.nth lines 0 = "{\"ev\": \"hang\", \"at\": 7}");
  check_bool "snapshot tagged" true
    (String.length (List.nth lines 3) > 20
    && String.sub (List.nth lines 3) 0 19 = "{\"ev\": \"snapshot\", ")

(* ------------------------------------------------------------------ *)
(* Pool trial events *)

let test_pool_trial_events () =
  List.iter
    (fun jobs ->
      let ring = Obs.Sink.create_ring ~capacity:256 () in
      let sink = Obs.Sink.ring ring in
      let r = Exec.Pool.map ~jobs ~sink 12 (fun i -> i * 2) in
      check Alcotest.int "results intact" 12 (Array.length r);
      let begins = Array.make 12 0 and ends = Array.make 12 0 in
      List.iter
        (function
          | Obs.Event.Trial_begin { task; worker } ->
              check_bool "begin worker in range" true
                (worker >= 0 && worker < max 1 jobs);
              begins.(task) <- begins.(task) + 1
          | Obs.Event.Trial_end { task; worker; wall_s } ->
              check_bool "end worker in range" true
                (worker >= 0 && worker < max 1 jobs);
              check_bool "wall non-negative" true (wall_s >= 0.);
              ends.(task) <- ends.(task) + 1
          | _ -> ())
        (Obs.Sink.ring_events ring);
      Array.iteri
        (fun i n ->
          check Alcotest.int (Printf.sprintf "task %d begins once" i) 1 n;
          check Alcotest.int (Printf.sprintf "task %d ends once" i) 1
            ends.(i))
        begins)
    [ 1; 3 ]

(* ------------------------------------------------------------------ *)
(* Culling observability *)

let test_cull_events_and_replays () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.program s in
  let inputs = s.seeds @ [ "zzz"; "if(1){}" ] in
  let ring = Obs.Sink.create_ring ~capacity:32 () in
  let obs = Obs.Observer.create ~sink:(Obs.Sink.ring ring) () in
  let bare = Fuzz.Measure.edge_preserving_cull prog inputs in
  let observed = Fuzz.Measure.edge_preserving_cull ~obs prog inputs in
  check (Alcotest.list Alcotest.string) "cull unchanged by observer" bare
    observed;
  check Alcotest.int "every replay counted" (List.length inputs)
    obs.counters.replays;
  match Obs.Sink.ring_events ring with
  | [ Obs.Event.Cull { before; after; _ } ] ->
      check Alcotest.int "before = inputs" (List.length inputs) before;
      check Alcotest.int "after = kept" (List.length observed) after
  | evs ->
      Alcotest.failf "expected exactly one Cull event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Bench trend history *)

let test_bench_history_roundtrip () =
  let tmp = Filename.temp_file "pathfuzz_hist" ".jsonl" in
  Sys.remove tmp;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      check Alcotest.int "missing file loads empty" 0
        (List.length (Experiments.Bench_history.load tmp));
      let row day v =
        {
          Experiments.Bench_history.date = day;
          source = "campaign";
          label = "t";
          machine = "nproc=1 ocaml=test";
          cells =
            [
              { Experiments.Bench_history.subject = "cflow";
                mode = "path";
                shards = 0;
                engine = "interp";
                execs_per_sec = v;
              };
              { Experiments.Bench_history.subject = "gdk";
                mode = "edge";
                shards = 0;
                engine = "interp";
                execs_per_sec = 2. *. v;
              };
            ];
        }
      in
      Experiments.Bench_history.append tmp (row "2026-08-01" 100_000.);
      Experiments.Bench_history.append tmp (row "2026-08-02" 110_000.);
      let loaded = Experiments.Bench_history.load tmp in
      check Alcotest.int "two rows" 2 (List.length loaded);
      let r0 = List.hd loaded in
      check Alcotest.string "date" "2026-08-01"
        r0.Experiments.Bench_history.date;
      check Alcotest.string "source" "campaign"
        r0.Experiments.Bench_history.source;
      check Alcotest.int "cells" 2
        (List.length r0.Experiments.Bench_history.cells);
      check (Alcotest.float 0.01) "execs_per_sec" 100_000.
        (List.hd r0.Experiments.Bench_history.cells)
          .Experiments.Bench_history.execs_per_sec;
      (* no regression at parity *)
      check Alcotest.int "parity: no regressions" 0
        (List.length
           (Experiments.Bench_history.check ~threshold_pct:20. loaded
              (row "2026-08-03" 105_000.)));
      (* a >20% drop on one cell is flagged *)
      let regs =
        Experiments.Bench_history.check ~threshold_pct:20. loaded
          {
            Experiments.Bench_history.date = "2026-08-03";
            source = "campaign";
            label = "t";
            machine = "";
            cells =
              [
                { Experiments.Bench_history.subject = "cflow";
                  mode = "path";
                  shards = 0;
                  engine = "interp";
                  execs_per_sec = 50_000.;
                };
                { Experiments.Bench_history.subject = "gdk";
                  mode = "edge";
                  shards = 0;
                  engine = "interp";
                  execs_per_sec = 205_000.;
                };
              ];
          }
      in
      check Alcotest.int "one regression" 1 (List.length regs);
      let r = List.hd regs in
      check Alcotest.string "regressed cell" "cflow/path"
        r.Experiments.Bench_history.key;
      check_bool "drop beyond threshold" true
        (r.Experiments.Bench_history.drop_pct > 20.);
      (* unknown cells and other sources are ignored *)
      check Alcotest.int "different source: no baseline" 0
        (List.length
           (Experiments.Bench_history.check ~threshold_pct:20. loaded
              {
                Experiments.Bench_history.date = "d";
                source = "throughput";
                label = "";
                machine = "";
                cells =
                  [
                    { Experiments.Bench_history.subject = "cflow";
                      mode = "path";
                      shards = 0;
                      engine = "interp";
                      execs_per_sec = 1.;
                    };
                  ];
              }));
      (* shards partition the baseline: a sharded cell has no history
         among the unsharded rows above, so it never trips the gate *)
      check Alcotest.int "sharded cell: separate baseline" 0
        (List.length
           (Experiments.Bench_history.check ~threshold_pct:20. loaded
              {
                Experiments.Bench_history.date = "d";
                source = "campaign";
                label = "";
                machine = "";
                cells =
                  [
                    { Experiments.Bench_history.subject = "cflow";
                      mode = "path";
                      shards = 4;
                      engine = "interp";
                      execs_per_sec = 1.;
                    };
                  ];
              }));
      (* engines partition it too: a compiled cell never compares
         against the interp rows above *)
      check Alcotest.int "compiled cell: separate baseline" 0
        (List.length
           (Experiments.Bench_history.check ~threshold_pct:20. loaded
              {
                Experiments.Bench_history.date = "d";
                source = "campaign";
                label = "";
                machine = "";
                cells =
                  [
                    { Experiments.Bench_history.subject = "cflow";
                      mode = "path";
                      shards = 0;
                      engine = "compiled";
                      execs_per_sec = 1.;
                    };
                  ];
              })))

(* Pre-sharding history lines carry no "shards" field; they must load
   with shards = 0, and round-trip lines must carry it explicitly. *)
let test_bench_history_schema_tolerant () =
  let tmp = Filename.temp_file "pathfuzz_hist_old" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc
        ("{\"schema\": \"pathfuzz-history/v1\", \"date\": \"2026-01-01\", "
       ^ "\"source\": \"campaign\", \"label\": \"legacy\", \"cells\": "
       ^ "[{\"subject\": \"cflow\", \"mode\": \"path\", "
       ^ "\"execs_per_sec\": 123456.0}]}\n");
      close_out oc;
      Experiments.Bench_history.append tmp
        {
          Experiments.Bench_history.date = "2026-01-02";
          source = "campaign";
          label = "sharded";
          machine = "";
          cells =
            [
              { Experiments.Bench_history.subject = "cflow";
                mode = "path";
                shards = 4;
                engine = "interp";
                execs_per_sec = 200_000.;
              };
            ];
        };
      match Experiments.Bench_history.load tmp with
      | [ legacy; sharded ] ->
          let lc = List.hd legacy.Experiments.Bench_history.cells in
          check Alcotest.int "legacy line defaults to shards 0" 0
            lc.Experiments.Bench_history.shards;
          check Alcotest.string "legacy line defaults to interp engine"
            "interp" lc.Experiments.Bench_history.engine;
          check Alcotest.string "legacy line defaults to empty machine" ""
            legacy.Experiments.Bench_history.machine;
          check (Alcotest.float 0.01) "legacy execs/sec intact" 123_456.
            lc.Experiments.Bench_history.execs_per_sec;
          let sc = List.hd sharded.Experiments.Bench_history.cells in
          check Alcotest.int "sharded cell round-trips" 4
            sc.Experiments.Bench_history.shards;
          check Alcotest.string "machine round-trips" ""
            sharded.Experiments.Bench_history.machine
      | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows))

let test_bench_history_parses_bench_files () =
  (* The checked-in bench baselines must stay ingestible. *)
  List.iter
    (fun path ->
      if Sys.file_exists path then
        match Experiments.Bench_history.cells_of_bench path with
        | None -> Alcotest.failf "no cells block in %s" path
        | Some cells ->
            check_bool (path ^ " has cells") true (List.length cells > 0);
            List.iter
              (fun (c : Experiments.Bench_history.cell) ->
                check_bool "subject non-empty" true (c.subject <> "");
                check_bool "positive rate" true (c.execs_per_sec > 0.))
              cells)
    [ "../BENCH_throughput.json"; "../BENCH_campaign.json" ]

let test_mode_of_name () =
  let roundtrip m =
    check_bool
      (Pathcov.Feedback.mode_name m ^ " roundtrips")
      true
      (Pathcov.Feedback.mode_of_name (Pathcov.Feedback.mode_name m) = Some m)
  in
  List.iter roundtrip
    [
      Pathcov.Feedback.Block;
      Pathcov.Feedback.Edge;
      Pathcov.Feedback.Path;
      Pathcov.Feedback.Pathafl;
      Pathcov.Feedback.Ngram 2;
      Pathcov.Feedback.Ngram 8;
    ];
  check_bool "unknown rejected" true
    (Pathcov.Feedback.mode_of_name "bogus" = None);
  check_bool "ngram1 rejected" true
    (Pathcov.Feedback.mode_of_name "ngram1" = None);
  check_bool "ngramx rejected" true
    (Pathcov.Feedback.mode_of_name "ngramx" = None)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "byte-identical trajectories" `Quick
          test_byte_identical_trajectories;
        Alcotest.test_case "shared observer identical" `Quick
          test_shared_observer_identical;
        Alcotest.test_case "counter bumps allocation-free" `Quick
          test_counter_allocation_free;
        Alcotest.test_case "observed campaign allocation" `Quick
          test_observed_campaign_allocation;
        Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
        Alcotest.test_case "tee and status sinks" `Quick
          test_tee_and_status_sinks;
        Alcotest.test_case "snapshot derived views" `Quick
          test_snapshot_derived_views;
        Alcotest.test_case "virgin residual" `Quick test_virgin_residual;
        Alcotest.test_case "event jsonl shape" `Quick test_event_jsonl;
        Alcotest.test_case "pool trial events" `Quick test_pool_trial_events;
        Alcotest.test_case "cull events and replays" `Quick
          test_cull_events_and_replays;
        Alcotest.test_case "bench history roundtrip" `Quick
          test_bench_history_roundtrip;
        Alcotest.test_case "bench history parses bench files" `Quick
          test_bench_history_parses_bench_files;
        Alcotest.test_case "bench history shards schema tolerance" `Quick
          test_bench_history_schema_tolerant;
        Alcotest.test_case "mode of name" `Quick test_mode_of_name;
      ] );
  ]
