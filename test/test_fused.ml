(** Superblock-fusion and batched-cohort suite: the [~fused] staged
    artifact vs the interpreter-driven listeners — same status (crash
    kinds, sites, stacks), same block counts (hence fuel accounting),
    identical classified traces — on the curated subjects and on random
    CFGs biased toward exactly the shapes fusion rewrites (single-
    predecessor chains, rejoining diamonds, mid-chain division crashes).
    A fuel ladder drives hang points into chain interiors, where the
    bulk-burn replay must reproduce the interpreter's exact accounting.
    The batch entries ([run_batch]) are checked against one-shot runs
    and for steady-state allocation. *)

let check = Alcotest.check
let check_bool = check Alcotest.bool

let all_modes =
  [
    Pathcov.Feedback.Block;
    Pathcov.Feedback.Edge;
    Pathcov.Feedback.Ngram 4;
    Pathcov.Feedback.Path;
    Pathcov.Feedback.Pathafl;
  ]

let feedback_hooks ?(h_cmp = fun _ _ -> ()) (fb : Pathcov.Feedback.t) :
    Vm.Interp.hooks =
  {
    Vm.Interp.h_call = fb.on_call;
    h_block = fb.on_block;
    h_edge = fb.on_edge;
    h_ret = fb.on_ret;
    h_cmp;
  }

let pp_status fmt (s : Vm.Interp.status) =
  match s with
  | Vm.Interp.Finished None -> Fmt.string fmt "finished(array)"
  | Vm.Interp.Finished (Some n) -> Fmt.pf fmt "finished(%d)" n
  | Vm.Interp.Hung -> Fmt.string fmt "hung"
  | Vm.Interp.Crashed c -> Fmt.pf fmt "crashed(%a)" Vm.Crash.pp c

let status_t : Vm.Interp.status Alcotest.testable =
  Alcotest.testable pp_status ( = )

let subject_inputs (s : Subjects.Subject.t) : string list =
  s.seeds @ List.map (fun (b : Subjects.Subject.bug) -> b.witness) s.bugs

let trace_contents (m : Pathcov.Coverage_map.t) : (int * int) list =
  let acc = ref [] in
  Pathcov.Coverage_map.iteri_set (fun i b -> acc := (i, b) :: !acc) m;
  List.rev !acc

(* --- curated subjects, every mode: fused agrees with the
   interpreter-driven listeners (status, blocks, cmp stream, trace) --- *)

let test_fused_mode_agreement () =
  List.iter
    (fun (s : Subjects.Subject.t) ->
      let prog = Subjects.Subject.compile_fresh s in
      let prepared = Vm.Interp.prepare prog in
      List.iter
        (fun mode ->
          let fb = Pathcov.Feedback.make mode prog in
          let icmps = ref [] and ccmps = ref [] in
          let ictx =
            Vm.Interp.create_ctx
              ~hooks:
                (feedback_hooks
                   ~h_cmp:(fun a b -> icmps := (a, b) :: !icmps)
                   fb)
              prepared
          in
          let cctx = Vm.Interp.create_ctx prepared in
          let art =
            Vm.Compile.compile ~fused:true prepared (Vm.Compile.Sfull mode)
          in
          let ctrace = Pathcov.Coverage_map.create () in
          Vm.Compile.bind art ~trace:ctrace ~h_cmp:(fun a b ->
              ccmps := (a, b) :: !ccmps);
          List.iter
            (fun input ->
              fb.reset ();
              Pathcov.Coverage_map.clear fb.trace;
              Pathcov.Coverage_map.clear ctrace;
              icmps := [];
              ccmps := [];
              let i = Vm.Interp.run_ctx ictx ~input in
              let c = Vm.Compile.run art cctx ~input in
              let where =
                Printf.sprintf "%s/%s %S" s.name
                  (Pathcov.Feedback.mode_name mode)
                  input
              in
              check status_t (where ^ " status") i.status c.status;
              check Alcotest.int (where ^ " blocks") i.blocks_executed
                c.blocks_executed;
              check
                Alcotest.(list (pair int int))
                (where ^ " cmp stream") (List.rev !icmps) (List.rev !ccmps);
              Pathcov.Coverage_map.classify fb.trace;
              Pathcov.Coverage_map.classify ctrace;
              check
                Alcotest.(list (pair int int))
                (where ^ " classified trace")
                (trace_contents fb.trace) (trace_contents ctrace))
            (subject_inputs s))
        all_modes)
    Subjects.Registry.all

(* --- chain-biased random CFGs x every mode: beyond the curated set --- *)

let prop_fused_differential =
  QCheck.Test.make ~count:300
    ~name:"fused engine agrees on chain/diamond CFGs"
    (QCheck.pair Gen.arbitrary_chain_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      let prepared = Vm.Interp.prepare prog in
      List.for_all
        (fun mode ->
          let fb = Pathcov.Feedback.make mode prog in
          let ictx =
            Vm.Interp.create_ctx ~hooks:(feedback_hooks fb) prepared
          in
          let cctx = Vm.Interp.create_ctx prepared in
          let art =
            Vm.Compile.compile ~fused:true prepared (Vm.Compile.Sfull mode)
          in
          let ctrace = Pathcov.Coverage_map.create () in
          Vm.Compile.bind art ~trace:ctrace ~h_cmp:(fun _ _ -> ());
          fb.reset ();
          Pathcov.Coverage_map.clear fb.trace;
          let i = Vm.Interp.run_ctx ~fuel:50_000 ictx ~input in
          let c = Vm.Compile.run ~fuel:50_000 art cctx ~input in
          Pathcov.Coverage_map.classify fb.trace;
          Pathcov.Coverage_map.classify ctrace;
          i.status = c.status
          && i.blocks_executed = c.blocks_executed
          && trace_contents fb.trace = trace_contents ctrace)
        all_modes)

(* --- fuel ladder: hang points land mid-chain; bulk-burn replay must
   reproduce the interpreter's exact fuel accounting and crash sites --- *)

let prop_fused_fuel_ladder =
  QCheck.Test.make ~count:100
    ~name:"fused fuel accounting exact at every budget"
    (QCheck.pair Gen.arbitrary_chain_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      let prepared = Vm.Interp.prepare prog in
      let fb = Pathcov.Feedback.make Pathcov.Feedback.Path prog in
      let ictx = Vm.Interp.create_ctx ~hooks:(feedback_hooks fb) prepared in
      let cctx = Vm.Interp.create_ctx prepared in
      let art =
        Vm.Compile.compile ~fused:true prepared
          (Vm.Compile.Sfull Pathcov.Feedback.Path)
      in
      let ctrace = Pathcov.Coverage_map.create () in
      Vm.Compile.bind art ~trace:ctrace ~h_cmp:(fun _ _ -> ());
      List.for_all
        (fun fuel ->
          fb.reset ();
          Pathcov.Coverage_map.clear fb.trace;
          Pathcov.Coverage_map.clear ctrace;
          let i = Vm.Interp.run_ctx ~fuel ictx ~input in
          let c = Vm.Compile.run ~fuel art cctx ~input in
          Pathcov.Coverage_map.classify fb.trace;
          Pathcov.Coverage_map.classify ctrace;
          i.status = c.status
          && i.blocks_executed = c.blocks_executed
          && trace_contents fb.trace = trace_contents ctrace)
        [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 500; 5_000 ])

(* --- batch entries: one run_batch call over a subject's inputs must
   reproduce the one-shot runs candidate for candidate, including the
   post-crash context sweep between candidates --- *)

let test_batch_agreement () =
  List.iter
    (fun (s : Subjects.Subject.t) ->
      let prog = Subjects.Subject.compile_fresh s in
      let prepared = Vm.Interp.prepare prog in
      List.iter
        (fun fused ->
          let art =
            Vm.Compile.compile ~fused prepared
              (Vm.Compile.Sfull Pathcov.Feedback.Path)
          in
          let trace = Pathcov.Coverage_map.create () in
          Vm.Compile.bind art ~trace ~h_cmp:(fun _ _ -> ());
          let inputs = Array.of_list (subject_inputs s) in
          let n = Array.length inputs in
          (* one-shot reference results on a fresh context *)
          let ctx1 = Vm.Interp.create_ctx prepared in
          let expect =
            Array.map
              (fun input ->
                Pathcov.Coverage_map.clear trace;
                let out = Vm.Compile.run art ctx1 ~input in
                Pathcov.Coverage_map.classify trace;
                (out.Vm.Interp.status, out.blocks_executed,
                 trace_contents trace))
              inputs
          in
          let ctx2 = Vm.Interp.create_ctx prepared in
          let bufs = Array.map Bytes.of_string inputs in
          Vm.Compile.run_batch art ctx2 ~n
            ~gen:(fun k ->
              Pathcov.Coverage_map.clear trace;
              (bufs.(k), Bytes.length bufs.(k)))
            ~sink:(fun k out ->
              Pathcov.Coverage_map.classify trace;
              let st, bl, tr = expect.(k) in
              let where =
                Printf.sprintf "%s[%d] fused=%b" s.name k fused
              in
              check status_t (where ^ " status") st out.Vm.Interp.status;
              check Alcotest.int (where ^ " blocks") bl out.blocks_executed;
              check
                Alcotest.(list (pair int int))
                (where ^ " trace") tr (trace_contents trace)))
        [ false; true ])
    Subjects.Registry.all

(* --- steady-state allocation: the batched cohort loop ---

   Batching must not re-introduce per-candidate allocation: beyond the
   gen closure's scratch-view pair, a warm cohort through the pooled
   context stays within the same few-words bound as the one-shot
   compiled hot path. *)

let test_batch_allocation () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let prepared = Vm.Interp.prepare prog in
  let ctx = Vm.Interp.create_ctx prepared in
  let art =
    Vm.Compile.compile ~fused:true prepared
      (Vm.Compile.Sfull Pathcov.Feedback.Path)
  in
  let trace = Pathcov.Coverage_map.create () in
  Vm.Compile.bind art ~trace ~h_cmp:(fun _ _ -> ());
  let buf = Bytes.of_string (List.hd s.seeds) in
  let len = Bytes.length buf in
  let gen _ = (buf, len) in
  let sink _ (_ : Vm.Interp.outcome) = () in
  Vm.Compile.run_batch art ctx ~n:64 ~gen ~sink;
  let n = 2048 in
  let w0 = Gc.minor_words () in
  Vm.Compile.run_batch art ctx ~n ~gen ~sink;
  let per_exec = (Gc.minor_words () -. w0) /. float_of_int n in
  check_bool
    (Printf.sprintf "batched minor words per exec bounded (got %.1f)"
       per_exec)
    true
    (per_exec >= 0. && per_exec < 16.)

let suite =
  [
    ( "fused",
      [
        Alcotest.test_case "subjects: every mode agrees" `Quick
          test_fused_mode_agreement;
        Alcotest.test_case "batch agrees with one-shot runs" `Quick
          test_batch_agreement;
        Alcotest.test_case "batched cohort allocation-free" `Quick
          test_batch_allocation;
      ] );
    ( "fused-properties",
      [
        QCheck_alcotest.to_alcotest prop_fused_differential;
        QCheck_alcotest.to_alcotest prop_fused_fuel_ladder;
      ] );
  ]
