(* Checkpoint/resume guarantees (DESIGN.md §9): a snapshot captured at a
   deterministic boundary and resumed later replays the uninterrupted
   run's remaining trajectory byte for byte — queue, coverage maps,
   crash triage, counters, and every subsequently-written snapshot — for
   sequential and sharded campaigns, edge and pathafl feedback, cmplog
   on and off. The serialized format round-trips exactly and rejects
   every damaged input with a clean [Error]. Also pins the RNG stream
   (the checkpoint format records raw stream positions, so the stream
   itself is part of the on-disk contract). *)

let check = Alcotest.check
let check_bool = check Alcotest.bool

let easy_bug_src =
  "fn main() { if (in(0) == 104) { if (in(1) == 105) { bug(5); } } return 0; }"

(* ------------------------------------------------------------------ *)
(* RNG stream pins                                                     *)
(* ------------------------------------------------------------------ *)

(* The raw stream is frozen: any change to the generator invalidates
   every recorded trajectory and every checkpoint's [rng_state]. These
   draws were recorded from the current implementation. *)
let test_rng_pins () =
  let r = Fuzz.Rng.create 1 in
  let next8 = List.init 8 (fun _ -> Fuzz.Rng.next r) in
  check
    (Alcotest.list Alcotest.int)
    "Rng.next, seed 1, first 8"
    [
      2301179995845785463;
      737513604162040260;
      2715498065152891471;
      3776362331709563659;
      2499084914300579375;
      505749053440136933;
      626836860205017594;
      2723450598084135843;
    ]
    next8;
  (* [Rng.int] is next mod bound — modulo-biased, deliberately kept (see
     rng.mli): these pins also freeze the bias. *)
  let r = Fuzz.Rng.create 42 in
  let mod8 = List.init 8 (fun _ -> Fuzz.Rng.int r 1000) in
  check
    (Alcotest.list Alcotest.int)
    "Rng.int _ 1000, seed 42, first 8"
    [ 971; 319; 939; 312; 779; 465; 586; 619 ]
    mod8;
  let sub = Fuzz.Rng.substream ~seed:7 3 in
  let sub4 = List.init 4 (fun _ -> Fuzz.Rng.next sub) in
  check
    (Alcotest.list Alcotest.int)
    "Rng.substream ~seed:7 3, first 4"
    [
      2219306520149622348;
      146489169204054088;
      1601720339431690807;
      2444856828765668800;
    ]
    sub4

(* state/of_state/set_state continue the stream draw for draw. *)
let test_rng_state_roundtrip () =
  let r = Fuzz.Rng.create 123 in
  for _ = 1 to 5 do
    ignore (Fuzz.Rng.next r)
  done;
  let s = Fuzz.Rng.state r in
  let expect = List.init 6 (fun _ -> Fuzz.Rng.next r) in
  let r2 = Fuzz.Rng.of_state s in
  check
    (Alcotest.list Alcotest.int)
    "of_state continues the stream" expect
    (List.init 6 (fun _ -> Fuzz.Rng.next r2));
  let r3 = Fuzz.Rng.create 0 in
  ignore (Fuzz.Rng.next r3);
  Fuzz.Rng.set_state r3 s;
  check
    (Alcotest.list Alcotest.int)
    "set_state repositions in place" expect
    (List.init 6 (fun _ -> Fuzz.Rng.next r3))

(* ------------------------------------------------------------------ *)
(* Helpers: runs with an in-memory checkpoint sink                     *)
(* ------------------------------------------------------------------ *)

(* Collect every snapshot a run writes; [every = 1] fires at each
   deterministic boundary that advanced the exec clock. *)
let mem_sink acc =
  {
    Fuzz.Checkpoint.every = 1;
    subject = "easy";
    fuzzer = "test";
    save = (fun ck -> acc := ck :: !acc);
  }

let seq_config ?(budget = 3_000) ?(seed = 11) ?(cmplog = false)
    ?(mode = Pathcov.Feedback.Edge) () =
  { Fuzz.Campaign.default_config with mode; budget; rng_seed = seed; cmplog }

let run_seq ?checkpoint ?resume config prog seeds =
  let obs = Obs.Observer.create () in
  let r = Fuzz.Campaign.run ~obs ~config ?checkpoint ?resume prog ~seeds in
  (r, obs)

let shard_config ?(budget = 1_500) ?(seed = 11) ?(sync_interval = 256)
    ?(cmplog = false) ?(mode = Pathcov.Feedback.Edge) ~shards () =
  {
    Fuzz.Shard.base =
      { Fuzz.Campaign.default_config with mode; budget; rng_seed = seed; cmplog };
    shards;
    sync_interval;
  }

let run_shd ?checkpoint ?resume config prog seeds =
  let obs = Obs.Observer.create () in
  let r = Fuzz.Shard.run ~obs ?checkpoint ?resume config prog ~seeds in
  (r, obs)

let counter_fields (obs : Obs.Observer.t) =
  Obs.Counters.to_fields obs.Obs.Observer.counters

(* Campaign-level byte identity (the sequential analogue of
   test_shard.check_identical) plus the full counter block. *)
let check_campaign_identical label (a : Fuzz.Campaign.result) oa
    (b : Fuzz.Campaign.result) ob =
  check Alcotest.int (label ^ ": execs") a.execs b.execs;
  check Alcotest.int (label ^ ": blocks") a.sum_exec_blocks b.sum_exec_blocks;
  check Alcotest.int (label ^ ": havocs") a.havocs b.havocs;
  check
    (Alcotest.list Alcotest.string)
    (label ^ ": queue inputs")
    (Fuzz.Campaign.queue_inputs a)
    (Fuzz.Campaign.queue_inputs b);
  check Alcotest.int (label ^ ": total crashes") a.triage.total_crashes
    b.triage.total_crashes;
  check Alcotest.int (label ^ ": total hangs") a.triage.total_hangs
    b.triage.total_hangs;
  check Alcotest.int
    (label ^ ": stack-unique crashes")
    (Fuzz.Triage.unique_crashes a.triage)
    (Fuzz.Triage.unique_crashes b.triage);
  check Alcotest.int
    (label ^ ": coverage-novel crashes")
    (Fuzz.Triage.afl_unique_crashes a.triage)
    (Fuzz.Triage.afl_unique_crashes b.triage);
  check_bool
    (label ^ ": ground-truth bugs")
    true
    (Fuzz.Triage.bugs a.triage = Fuzz.Triage.bugs b.triage);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    (label ^ ": counter block") (counter_fields oa) (counter_fields ob)

let check_shard_identical label (a : Fuzz.Shard.result) oa
    (b : Fuzz.Shard.result) ob =
  check_campaign_identical label a.campaign oa b.campaign ob;
  check_bool
    (label ^ ": virgin map bytes")
    true
    (Pathcov.Coverage_map.equal a.virgin b.virgin);
  check_bool
    (label ^ ": crash-virgin map bytes")
    true
    (Pathcov.Coverage_map.equal a.crash_virgin b.crash_virgin);
  check Alcotest.int (label ^ ": items planned") a.items b.items;
  check Alcotest.int (label ^ ": epochs") a.epochs b.epochs;
  check Alcotest.int (label ^ ": dup_dropped") a.dup_dropped b.dup_dropped

(* The snapshots a resumed run writes must be the straight run's tail:
   same boundaries, same fingerprints (wall-clock floats zeroed). *)
let check_snapshot_tail label ~(straight : Fuzz.Checkpoint.t list)
    ~(resumed_from : Fuzz.Checkpoint.t) (resumed : Fuzz.Checkpoint.t list) =
  let tail =
    List.filter
      (fun (ck : Fuzz.Checkpoint.t) ->
        ck.progress.execs > resumed_from.Fuzz.Checkpoint.progress.execs)
      straight
  in
  check Alcotest.int
    (label ^ ": resumed snapshot count")
    (List.length tail) (List.length resumed);
  List.iter2
    (fun (s : Fuzz.Checkpoint.t) (r : Fuzz.Checkpoint.t) ->
      check Alcotest.int
        (Printf.sprintf "%s: snapshot exec clock @%d" label s.progress.execs)
        s.progress.execs r.progress.execs;
      check Alcotest.int
        (Printf.sprintf "%s: snapshot fingerprint @%d" label s.progress.execs)
        (Fuzz.Checkpoint.fingerprint s)
        (Fuzz.Checkpoint.fingerprint r))
    tail resumed

(* Evenly-spaced sample of at most [n] elements (always includes the
   first and last) — resuming from every cycle boundary of a sequential
   run would be hundreds of runs for no extra coverage. *)
let sample n l =
  let len = List.length l in
  if len <= n then l
  else
    List.filteri
      (fun i _ -> i = 0 || i = len - 1 || i * (n - 1) / len <> (i + 1) * (n - 1) / len)
      l

(* ------------------------------------------------------------------ *)
(* Differential resume: sequential campaign                            *)
(* ------------------------------------------------------------------ *)

let test_sequential_resume () =
  let prog = Minic.Lower.compile easy_bug_src in
  List.iter
    (fun cmplog ->
      let config = seq_config ~cmplog () in
      let acc = ref [] in
      let straight, obs_s =
        run_seq ~checkpoint:(mem_sink acc) config prog [ "aa" ]
      in
      let cks = List.rev !acc in
      check_bool
        (Printf.sprintf "cmplog=%b: straight run wrote snapshots" cmplog)
        true
        (List.length cks >= 2);
      List.iter
        (fun (ck : Fuzz.Checkpoint.t) ->
          let label =
            Printf.sprintf "seq cmplog=%b resume@%d" cmplog ck.progress.execs
          in
          let acc_r = ref [] in
          let resumed, obs_r =
            run_seq ~checkpoint:(mem_sink acc_r) ~resume:ck config prog []
          in
          check_campaign_identical label straight obs_s resumed obs_r;
          check_snapshot_tail label ~straight:cks ~resumed_from:ck
            (List.rev !acc_r))
        (sample 5 cks))
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Differential resume: sharded campaign                               *)
(* ------------------------------------------------------------------ *)

(* feedback mode x cmplog x resume shard count in {1, 2}: a snapshot
   taken at a merge barrier resumes byte-identically, at the snapshot's
   own shard count or a different one (barriers are functions of
   (seed, sync_interval) alone). *)
let test_sharded_resume () =
  let prog = Minic.Lower.compile easy_bug_src in
  List.iter
    (fun (mode, mname) ->
      List.iter
        (fun cmplog ->
          let acc = ref [] in
          let straight, obs_s =
            run_shd
              ~checkpoint:(mem_sink acc)
              (shard_config ~mode ~cmplog ~shards:2 ())
              prog [ "aa" ]
          in
          let cks = List.rev !acc in
          check_bool
            (Printf.sprintf "%s cmplog=%b: barriers wrote snapshots" mname
               cmplog)
            true
            (List.length cks >= 2);
          List.iter
            (fun shards ->
              List.iter
                (fun (ck : Fuzz.Checkpoint.t) ->
                  let label =
                    Printf.sprintf "%s cmplog=%b shards=%d resume@%d" mname
                      cmplog shards ck.progress.execs
                  in
                  let acc_r = ref [] in
                  let resumed, obs_r =
                    run_shd
                      ~checkpoint:(mem_sink acc_r)
                      ~resume:ck
                      (shard_config ~mode ~cmplog ~shards ())
                      prog []
                  in
                  check_shard_identical label straight obs_s resumed obs_r;
                  check_snapshot_tail label ~straight:cks ~resumed_from:ck
                    (List.rev !acc_r))
                (sample 3 cks))
            [ 1; 2 ])
        [ false; true ])
    [ (Pathcov.Feedback.Edge, "edge"); (Pathcov.Feedback.Pathafl, "pathafl") ]

(* ------------------------------------------------------------------ *)
(* Serialization round trip and robustness                             *)
(* ------------------------------------------------------------------ *)

(* A representative snapshot: mid-run, non-empty queue, crashes triaged. *)
let some_checkpoint () =
  let prog = Minic.Lower.compile easy_bug_src in
  let acc = ref [] in
  let _ =
    run_shd
      ~checkpoint:(mem_sink acc)
      (shard_config ~budget:2_000 ~cmplog:true ~shards:2 ())
      prog [ "aa" ]
  in
  match List.rev !acc with
  | [] -> Alcotest.fail "expected at least one snapshot"
  | _ :: _ as l -> List.nth l (List.length l - 1)

let test_roundtrip () =
  let ck = some_checkpoint () in
  let s = Fuzz.Checkpoint.to_string ck in
  match Fuzz.Checkpoint.of_string s with
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)
  | Ok ck2 ->
      check Alcotest.string "re-serialization is byte-identical" s
        (Fuzz.Checkpoint.to_string ck2);
      check Alcotest.int "fingerprints agree"
        (Fuzz.Checkpoint.fingerprint ck)
        (Fuzz.Checkpoint.fingerprint ck2);
      check Alcotest.int "exec clock survives" ck.progress.execs
        ck2.progress.execs;
      check Alcotest.int "queue survives"
        (Array.length ck.entries)
        (Array.length ck2.entries)

let expect_error label = function
  | Ok (_ : Fuzz.Checkpoint.t) ->
      Alcotest.fail (label ^ ": damaged snapshot was accepted")
  | Error msg ->
      check_bool (label ^ ": diagnostic is not empty") true
        (String.length msg > 0)

let test_rejects_damage () =
  let ck = some_checkpoint () in
  let s = Fuzz.Checkpoint.to_string ck in
  let len = String.length s in
  (* truncation at every interesting depth: inside the magic, inside the
     payload, one byte short of the checksum *)
  List.iter
    (fun n ->
      expect_error
        (Printf.sprintf "truncated to %d/%d bytes" n len)
        (Fuzz.Checkpoint.of_string (String.sub s 0 n)))
    [ 0; 5; len / 3; len / 2; len - 1 ];
  (* a single flipped payload byte must fail the whole-file checksum *)
  let flipped = Bytes.of_string s in
  let pos = len / 2 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x40));
  expect_error "flipped payload byte"
    (Fuzz.Checkpoint.of_string (Bytes.to_string flipped));
  (* future version: same magic, version we do not understand *)
  let future = Bytes.of_string s in
  let vpos = String.length "pathfuzz-checkpoint/v" in
  Bytes.set future vpos '9';
  expect_error "future version"
    (Fuzz.Checkpoint.of_string (Bytes.to_string future));
  (* foreign files *)
  expect_error "empty string" (Fuzz.Checkpoint.of_string "");
  expect_error "foreign bytes"
    (Fuzz.Checkpoint.of_string "not a checkpoint at all\n\x00\x01\x02")

let test_compat_check () =
  let ck = some_checkpoint () in
  (match Fuzz.Checkpoint.check_compat ~expected:ck.id ck with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("identical config rejected: " ^ e));
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (match
     Fuzz.Checkpoint.check_compat
       ~expected:{ ck.id with rng_seed = ck.id.rng_seed + 1 }
       ck
   with
  | Ok () -> Alcotest.fail "seed mismatch accepted"
  | Error e ->
      check_bool "diagnostic names the field" true (contains e "seed"));
  match
    Fuzz.Checkpoint.check_compat
      ~expected:{ ck.id with subject = "other"; cmplog = not ck.id.cmplog }
      ck
  with
  | Ok () -> Alcotest.fail "multi-field mismatch accepted"
  | Error e ->
      check_bool "diagnostic lists every mismatch" true
        (contains e "subject" && contains e "cmplog")

let test_file_io () =
  let ck = some_checkpoint () in
  let path = Filename.temp_file "pathfuzz-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let bytes_written = Fuzz.Checkpoint.write_file ~path ck in
      check Alcotest.int "write_file reports the serialized size"
        (String.length (Fuzz.Checkpoint.to_string ck))
        bytes_written;
      (match Fuzz.Checkpoint.read_file path with
      | Error e -> Alcotest.fail ("read back failed: " ^ e)
      | Ok ck2 ->
          check Alcotest.string "file round trip is byte-identical"
            (Fuzz.Checkpoint.to_string ck)
            (Fuzz.Checkpoint.to_string ck2));
      check_bool "no .tmp residue left behind" false
        (Sys.file_exists (path ^ ".tmp")));
  match Fuzz.Checkpoint.read_file "/nonexistent/pathfuzz.ckpt" with
  | Ok _ -> Alcotest.fail "read of a missing file succeeded"
  | Error msg -> check_bool "missing file is a clean Error" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Steady state with a live sink                                       *)
(* ------------------------------------------------------------------ *)

(* Periodic checkpointing must not leak allocation into the mutator's
   steady state: same bound as the shard-loop allocation guarantee, with
   a sink capturing real snapshots at every barrier. *)
let test_allocation_with_checkpointing () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let obs = Obs.Observer.create ~clock:(fun () -> 0.) () in
  let saved = ref 0 in
  let sink =
    {
      Fuzz.Checkpoint.every = 1_024;
      subject = "cflow";
      fuzzer = "afl";
      save = (fun (_ : Fuzz.Checkpoint.t) -> incr saved);
    }
  in
  let cfg =
    {
      Fuzz.Shard.base =
        { Fuzz.Campaign.default_config with budget = 6_000; rng_seed = 3 };
      shards = 2;
      sync_interval = 512;
    }
  in
  let r = Fuzz.Shard.run ~obs ~checkpoint:sink cfg prog ~seeds:s.seeds in
  check_bool "snapshots were captured" true (!saved >= 2);
  check_bool "campaign generated candidates" true (r.campaign.havocs > 1_000);
  let per_cand =
    r.campaign.mut_minor_words /. float_of_int r.campaign.havocs
  in
  check_bool
    (Printf.sprintf
       "mutator minor words per candidate bounded with sink active (got %.1f)"
       per_cand)
    true
    (per_cand >= 0. && per_cand < 20.)

let suite =
  [
    ( "checkpoint",
      [
        Alcotest.test_case "rng stream pinned" `Quick test_rng_pins;
        Alcotest.test_case "rng state round trip" `Quick
          test_rng_state_roundtrip;
        Alcotest.test_case "sequential resume byte-identical" `Quick
          test_sequential_resume;
        Alcotest.test_case "sharded resume byte-identical" `Quick
          test_sharded_resume;
        Alcotest.test_case "serialization round trip" `Quick test_roundtrip;
        Alcotest.test_case "damaged snapshots rejected" `Quick
          test_rejects_damage;
        Alcotest.test_case "config compatibility check" `Quick
          test_compat_check;
        Alcotest.test_case "atomic file round trip" `Quick test_file_io;
        Alcotest.test_case "steady-state allocation with sink" `Quick
          test_allocation_with_checkpointing;
      ] );
  ]
