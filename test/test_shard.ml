(* Sharded-campaign guarantees: the merged trajectory is a deterministic
   function of (seed, sync_interval) alone — byte-identical across shard
   counts {1, 2, 4}, worker counts and re-runs, for afl-style edge and
   pathafl feedback with cmplog on and off — and the per-shard step loop
   stays allocation-lean in steady state. *)

let check = Alcotest.check
let check_bool = check Alcotest.bool

let easy_bug_src =
  "fn main() { if (in(0) == 104) { if (in(1) == 105) { bug(5); } } return 0; }"

let run_sharded ?(budget = 2_000) ?(seed = 11) ?(sync_interval = 256)
    ?(mode = Pathcov.Feedback.Edge) ?(cmplog = false) ?workers ~shards prog
    seeds =
  let cfg =
    {
      Fuzz.Shard.base =
        { Fuzz.Campaign.default_config with mode; budget; rng_seed = seed; cmplog };
      shards;
      sync_interval;
    }
  in
  Fuzz.Shard.run ?workers cfg prog ~seeds

(* The full byte-identity contract between two sharded runs: queue
   contents and order, merged virgin maps, crash sets (raw, stack-unique,
   coverage-novel, ground-truth bugs), and the exec clock. *)
let check_identical label (a : Fuzz.Shard.result) (b : Fuzz.Shard.result) =
  check Alcotest.int (label ^ ": execs") a.campaign.execs b.campaign.execs;
  check
    (Alcotest.list Alcotest.string)
    (label ^ ": queue inputs")
    (Fuzz.Campaign.queue_inputs a.campaign)
    (Fuzz.Campaign.queue_inputs b.campaign);
  check_bool
    (label ^ ": virgin map bytes")
    true
    (Pathcov.Coverage_map.equal a.virgin b.virgin);
  check_bool
    (label ^ ": crash-virgin map bytes")
    true
    (Pathcov.Coverage_map.equal a.crash_virgin b.crash_virgin);
  check Alcotest.int
    (label ^ ": total crashes")
    a.campaign.triage.total_crashes b.campaign.triage.total_crashes;
  check Alcotest.int
    (label ^ ": total hangs")
    a.campaign.triage.total_hangs b.campaign.triage.total_hangs;
  check Alcotest.int
    (label ^ ": stack-unique crashes")
    (Fuzz.Triage.unique_crashes a.campaign.triage)
    (Fuzz.Triage.unique_crashes b.campaign.triage);
  check Alcotest.int
    (label ^ ": coverage-novel crashes")
    (Fuzz.Triage.afl_unique_crashes a.campaign.triage)
    (Fuzz.Triage.afl_unique_crashes b.campaign.triage);
  let stacks (t : Fuzz.Triage.t) =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.by_stack [] |> List.sort compare
  in
  check
    (Alcotest.list Alcotest.int)
    (label ^ ": crash stack hashes")
    (stacks a.campaign.triage) (stacks b.campaign.triage);
  check_bool
    (label ^ ": ground-truth bugs")
    true
    (Fuzz.Triage.bugs a.campaign.triage = Fuzz.Triage.bugs b.campaign.triage);
  check Alcotest.int (label ^ ": items planned") a.items b.items;
  check Alcotest.int (label ^ ": epochs") a.epochs b.epochs;
  check Alcotest.int (label ^ ": dup_dropped") a.dup_dropped b.dup_dropped

(* shards ∈ {1, 2, 4} x {afl-edge, pathafl} x cmplog {off, on}: the merge
   barrier must hide the shard count completely. *)
let test_differential_shard_counts () =
  let prog = Minic.Lower.compile easy_bug_src in
  List.iter
    (fun (mode, mname) ->
      List.iter
        (fun cmplog ->
          let label =
            Printf.sprintf "%s cmplog=%b" mname cmplog
          in
          let r1 = run_sharded ~mode ~cmplog ~shards:1 prog [ "aa" ] in
          let r2 = run_sharded ~mode ~cmplog ~shards:2 prog [ "aa" ] in
          let r4 = run_sharded ~mode ~cmplog ~shards:4 prog [ "aa" ] in
          check_identical (label ^ " 1v2") r1 r2;
          check_identical (label ^ " 1v4") r1 r4)
        [ false; true ])
    [ (Pathcov.Feedback.Edge, "edge"); (Pathcov.Feedback.Pathafl, "pathafl") ]

(* A registry subject with a real block graph: same contract, plus the
   virgin fingerprint helper used by the bench determinism report. *)
let test_differential_subject () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let r1 = run_sharded ~budget:1_500 ~shards:1 prog s.seeds in
  let r2 = run_sharded ~budget:1_500 ~shards:2 prog s.seeds in
  let r4 = run_sharded ~budget:1_500 ~shards:4 prog s.seeds in
  check_identical "cflow 1v2" r1 r2;
  check_identical "cflow 1v4" r1 r4;
  check Alcotest.int "virgin fingerprints agree"
    (Pathcov.Coverage_map.bytes_hash r1.virgin)
    (Pathcov.Coverage_map.bytes_hash r4.virgin)

(* Worker count is a pure wall-clock knob: undersubscribed (2 workers for
   4 shards) and fully inline (1 worker) runs match the one-per-shard
   default byte for byte. *)
let test_workers_irrelevant () =
  let prog = Minic.Lower.compile easy_bug_src in
  let r_def = run_sharded ~shards:4 prog [ "aa" ] in
  let r_w1 = run_sharded ~shards:4 ~workers:1 prog [ "aa" ] in
  let r_w2 = run_sharded ~shards:4 ~workers:2 prog [ "aa" ] in
  check_identical "workers 1" r_def r_w1;
  check_identical "workers 2" r_def r_w2

(* Re-running the same configuration is trivially byte-identical. *)
let test_rerun_identical () =
  let prog = Minic.Lower.compile easy_bug_src in
  let r1 = run_sharded ~shards:2 ~cmplog:true prog [ "aa" ] in
  let r2 = run_sharded ~shards:2 ~cmplog:true prog [ "aa" ] in
  check_identical "rerun" r1 r2

(* The sync schedule is part of the trajectory's identity: a different
   sync_interval is allowed to (and here does) change the outcome, which
   is what pins the determinism contract to (seed, sync_interval). *)
let test_sync_interval_changes_trajectory () =
  let prog = Minic.Lower.compile easy_bug_src in
  let r_a = run_sharded ~shards:2 ~sync_interval:64 prog [ "aa" ] in
  let r_b = run_sharded ~shards:2 ~sync_interval:512 prog [ "aa" ] in
  check Alcotest.int "epochs differ with the schedule" 0
    (if r_a.epochs = r_b.epochs then 1 else 0)

let test_budget_and_bug () =
  let prog = Minic.Lower.compile easy_bug_src in
  let r = run_sharded ~budget:4_000 ~shards:2 prog [ "aa" ] in
  check_bool "execs reach the budget" true
    (r.campaign.execs >= 4_000 && r.campaign.execs < 4_000 + 600);
  check_bool "easy bug found" true
    (List.mem (Vm.Crash.Id 5) (Fuzz.Triage.bugs r.campaign.triage))

let test_rejects_bad_config () =
  let prog = Minic.Lower.compile easy_bug_src in
  let bad shards sync_interval =
    match run_sharded ~shards ~sync_interval prog [ "aa" ] with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "shards 0 rejected" true (bad 0 256);
  check_bool "sync_interval 0 rejected" true (bad 2 0)

(* Steady-state allocation of the per-shard step loop, through the same
   observer-clock bracket the sequential campaign guarantee uses: the
   scratch engine mutates in place, so the mutator allocates nothing per
   candidate on any shard. *)
let test_shard_allocation () =
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let obs = Obs.Observer.create ~clock:(fun () -> 0.) () in
  let cfg =
    {
      Fuzz.Shard.base =
        { Fuzz.Campaign.default_config with budget = 6_000; rng_seed = 3 };
      shards = 2;
      sync_interval = 512;
    }
  in
  let r = Fuzz.Shard.run ~obs cfg prog ~seeds:s.seeds in
  check_bool "sharded campaign generated candidates" true
    (r.campaign.havocs > 1_000);
  let per_cand =
    r.campaign.mut_minor_words /. float_of_int r.campaign.havocs
  in
  check_bool
    (Printf.sprintf "shard-loop minor words per candidate bounded (got %.1f)"
       per_cand)
    true
    (per_cand >= 0. && per_cand < 20.)

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "byte-identical across shard counts" `Quick
          test_differential_shard_counts;
        Alcotest.test_case "byte-identical on a registry subject" `Quick
          test_differential_subject;
        Alcotest.test_case "worker count is wall-clock only" `Quick
          test_workers_irrelevant;
        Alcotest.test_case "re-run identical" `Quick test_rerun_identical;
        Alcotest.test_case "sync interval is part of the identity" `Quick
          test_sync_interval_changes_trajectory;
        Alcotest.test_case "budget respected, bug found" `Quick
          test_budget_and_bug;
        Alcotest.test_case "bad config rejected" `Quick test_rejects_bad_config;
        Alcotest.test_case "per-shard loop steady-state allocation" `Quick
          test_shard_allocation;
      ] );
  ]
