(* Fuzzer hot-path guarantees: (1) the pooled scratch-buffer havoc engine
   is byte-identical to the historical string-round-trip engine kept in
   [Mutator_ref] — same children AND the same number of RNG draws, which
   is what makes whole campaigns byte-identical; (2) the mutation layer
   and the campaign loop stay allocation-lean in steady state. *)

open Alcotest

let check_bool = check Alcotest.bool

(* --- differential: scratch havoc vs the reference engine --- *)

let diff_inputs =
  [
    "";
    "A";
    "hello world";
    "width=80;height=24;";
    "12345 67890 0";
    String.make 64 '\x00';
    String.init 40 (fun i -> Char.chr (i * 7 land 255));
    (* contains LE encodings of 65 (1-byte) and 12345 (2-byte) *)
    "\x41\x00\x00\x00 magic \x39\x30";
    String.make Fuzz.Mutator.max_len 'z';
    String.make (Fuzz.Mutator.max_len - 3) 'q';
    String.init 200 (fun i -> Char.chr (i land 255));
    "neg -5 and 305419896 end";
  ]

let diff_cmps =
  [
    [];
    [ { Fuzz.Mutator.observed = 65; wanted = 90 } ];
    [
      { Fuzz.Mutator.observed = 12345; wanted = 513 };
      { observed = 305419896; wanted = 1 };
      { observed = 80; wanted = -5 };
    ];
    [
      { Fuzz.Mutator.observed = 0; wanted = 255 };
      { observed = 122; wanted = 0 };
      { observed = 7; wanted = 1 lsl 30 };
      { observed = 1 lsl 20; wanted = 42 };
    ];
  ]

let diff_splices =
  [ None; Some "xy"; Some (String.init 300 (fun i -> Char.chr (i * 3 land 255))) ]

(* Every (input x cmps x splice x seed) case chains three havocs — children
   feed back as inputs, exercising transiently-over-max_len lengths — and
   then compares one extra draw from each stream, pinning that both engines
   consumed exactly the same number of RNG draws. One scratch is reused
   across all cases, as a campaign does. *)
let test_differential () =
  let sc = Fuzz.Mutator.create_scratch () in
  let cases = ref 0 in
  List.iteri
    (fun ii input ->
      List.iteri
        (fun ci cmps ->
          let cmps_arr = Array.of_list cmps in
          List.iteri
            (fun si splice_with ->
              for seed = 1 to 10 do
                incr cases;
                let r_ref = Fuzz.Rng.create (seed * 7919) in
                let r_new = Fuzz.Rng.create (seed * 7919) in
                let s_ref = ref input and s_new = ref input in
                for round = 1 to 3 do
                  s_ref := Mutator_ref.havoc ~cmps ?splice_with r_ref !s_ref;
                  s_new :=
                    Fuzz.Mutator.havoc_into sc ~cmps:cmps_arr ?splice_with
                      r_new !s_new;
                  if !s_ref <> !s_new then
                    failf
                      "child mismatch: input %d, cmps %d, splice %d, seed %d, \
                       round %d (ref %d bytes, scratch %d bytes)"
                      ii ci si seed round (String.length !s_ref)
                      (String.length !s_new)
                done;
                check Alcotest.int "rng draw-count parity"
                  (Fuzz.Rng.int r_ref 1_000_003)
                  (Fuzz.Rng.int r_new 1_000_003)
              done)
            diff_splices)
        diff_cmps)
    diff_inputs;
  check_bool ">= 1000 differential cases" true (!cases >= 1000)

(* --- steady-state allocation: the mutation engine alone --- *)

let test_mutator_allocation () =
  let sc = Fuzz.Mutator.create_scratch () in
  let rng = Fuzz.Rng.create 42 in
  let input = String.init 256 (fun i -> Char.chr (i land 255)) in
  let cmps = [| { Fuzz.Mutator.observed = 65; wanted = 90 } |] in
  let one () =
    ignore (Fuzz.Mutator.havoc_into sc ~cmps ~splice_with:"peer data" rng input)
  in
  for _ = 1 to 64 do
    one ()
  done;
  let n = 2048 in
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    one ()
  done;
  let per_child = (Gc.minor_words () -. w0) /. float_of_int n in
  (* a 256-byte input yields children of at most ~320 bytes (insert adds
     <= 8 bytes per op, stacks are <= 8 deep), i.e. <= ~41 words for the
     one child string the engine is allowed to allocate *)
  check_bool
    (Printf.sprintf "mutator minor words per child bounded (got %.1f)"
       per_child)
    true (per_child < 96.)

(* --- steady-state allocation: the full campaign loop --- *)

let test_campaign_allocation () =
  (* The observer clock brackets [Mutator.havoc_in_place] in the real
     loop; a null clock keeps the measurement allocation-free itself. The
     old string-round-trip engine measured 150-310 minor words per
     candidate on this path; the in-place engine allocates nothing per
     candidate (children execute straight out of the scratch buffer and
     are only materialised on retention, outside this bracket). *)
  let s = Subjects.Registry.find_exn "cflow" in
  let prog = Subjects.Subject.compile_fresh s in
  let config =
    { Fuzz.Campaign.default_config with budget = 6_000; rng_seed = 3 }
  in
  let obs = Obs.Observer.create ~clock:(fun () -> 0.) () in
  let r = Fuzz.Campaign.run ~obs ~config prog ~seeds:s.seeds in
  check_bool "campaign generated candidates" true (r.havocs > 1_000);
  let per_cand = r.mut_minor_words /. float_of_int r.havocs in
  check_bool
    (Printf.sprintf "campaign minor words per candidate bounded (got %.1f)"
       per_cand)
    true
    (per_cand >= 0. && per_cand < 20.)

(* --- indexed corpus invariants --- *)

let test_corpus_indexing () =
  let c = Fuzz.Corpus.create () in
  for i = 0 to 40 do
    ignore
      (Fuzz.Corpus.add c
         ~data:(String.make (1 + (i mod 5)) 'a')
         ~indices:[| i; i + 100 |]
         ~exec_blocks:(1 + i) ~depth:0 ~found_at:i)
  done;
  check Alcotest.int "size" 41 (Fuzz.Corpus.size c);
  List.iteri
    (fun i (e : Fuzz.Corpus.entry) ->
      check Alcotest.int "get agrees with discovery order" e.id
        (Fuzz.Corpus.get c i).id)
    (Fuzz.Corpus.to_list c);
  let seen = ref 0 in
  Fuzz.Corpus.iter (fun _ -> incr seen) c;
  check Alcotest.int "iter visits all" 41 !seen;
  let arr = Fuzz.Corpus.covered_indices_arr c in
  check
    (Alcotest.list Alcotest.int)
    "array/list agree" (Fuzz.Corpus.covered_indices c) (Array.to_list arr);
  check Alcotest.int "covered union" 82 (Array.length arr);
  Array.iteri
    (fun i v -> if i > 0 then check_bool "ascending" true (arr.(i - 1) < v))
    arr;
  check_bool "out-of-range get raises" true
    (match Fuzz.Corpus.get c 41 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    ( "hotpath",
      [
        test_case "scratch havoc matches reference engine" `Quick
          test_differential;
        test_case "indexed corpus invariants" `Quick test_corpus_indexing;
        test_case "mutator steady-state allocation" `Quick
          test_mutator_allocation;
        test_case "campaign steady-state allocation" `Quick
          test_campaign_allocation;
      ] );
  ]
