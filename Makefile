.PHONY: all build test bench shard-bench micro tables history resume-check engine-check profile-check clean

all: build

build:
	dune build

test:
	dune runtest

# Refresh both checked-in benchmark artifacts. Each run carries the
# embedded baseline cells forward (see README "Benchmarks"), so the
# pre-optimisation trajectory is never erased by a refresh.
bench: build
	./_build/default/bin/pathfuzz.exe bench-throughput -o BENCH_throughput.json
	./_build/default/bin/pathfuzz.exe bench-campaign -o BENCH_campaign.json

# Sharded-campaign benchmark: measures --shards 1 and --shards $(SHARDS)
# (default 4) per cell, checks the merged coverage/queue/crash
# fingerprints are byte-identical across shard counts, and reports the
# execs/sec speedup geomean. Writes the combined cells (distinguished by
# their "shards" field) into BENCH_campaign.json like `make bench`.
SHARDS ?= 4
shard-bench: build
	./_build/default/bin/pathfuzz.exe bench-campaign --shards $(SHARDS) -o BENCH_campaign.json

# Append the current benchmark artifacts to the checked-in trend file
# BENCH_history.jsonl and fail on >20% regressions vs the trailing
# window. Run after `make bench`; set LABEL to tag the row.
history: build
	./_build/default/bin/pathfuzz.exe bench-history --label "$(LABEL)"

# Resume-determinism smoke: an interrupted-and-resumed campaign must
# print byte-identical results to the uninterrupted one — sequentially,
# and from a 2-shard snapshot resumed single-sharded (barriers are
# functions of (seed, sync_interval), not the shard count).
resume-check: build
	@rm -rf _build/resume-check && mkdir -p _build/resume-check
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f afl -b 4000 \
	  > _build/resume-check/straight.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f afl -b 4000 \
	  --checkpoint _build/resume-check/seq.ckpt --checkpoint-every 2500 \
	  > _build/resume-check/ckpt.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f afl -b 4000 \
	  --resume _build/resume-check/seq.ckpt > _build/resume-check/resumed.out
	diff _build/resume-check/straight.out _build/resume-check/ckpt.out
	diff _build/resume-check/straight.out _build/resume-check/resumed.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f afl -b 4000 \
	  --shards 2 --sync-interval 512 > _build/resume-check/sh-straight.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f afl -b 4000 \
	  --shards 2 --sync-interval 512 \
	  --checkpoint _build/resume-check/sh.ckpt --checkpoint-every 2500 \
	  > _build/resume-check/sh-ckpt.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f afl -b 4000 \
	  --shards 1 --sync-interval 512 --resume _build/resume-check/sh.ckpt \
	  > _build/resume-check/sh-resumed.out
	diff _build/resume-check/sh-straight.out _build/resume-check/sh-ckpt.out
	diff _build/resume-check/sh-straight.out _build/resume-check/sh-resumed.out
	@echo "resume-check: straight, checkpointed and resumed runs identical"

# Engine-determinism smoke: the staged-compilation engine (with and
# without superblock fusion), the native generated-unit engine and
# selective tracing must be trajectory-invisible — fuzz stdout is
# byte-identical across --engine interp/compiled/fused/native x
# --selective on/off, sequentially and at any shard count (path mode
# exercises the Ball-Larus probes, the fused bulk-burn/folded-increment
# paths and the cmplog taps). The native tiers run against a private
# emit cache: the first run measures the cold compile wall, the second
# must be served entirely from the cache (100% hits, zero misses), and
# a PATHFUZZ_EMIT_FAIL=1 run must degrade to fused mid-flight with the
# fallback counted in the metrics — all with identical stdout.
engine-check: build
	@rm -rf _build/engine-check && mkdir -p _build/engine-check
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  > _build/engine-check/interp.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --engine compiled > _build/engine-check/compiled.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --engine compiled --selective > _build/engine-check/selective.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --engine fused > _build/engine-check/fused.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --engine fused --selective > _build/engine-check/fused-selective.out
	diff _build/engine-check/interp.out _build/engine-check/compiled.out
	diff _build/engine-check/interp.out _build/engine-check/selective.out
	diff _build/engine-check/interp.out _build/engine-check/fused.out
	diff _build/engine-check/interp.out _build/engine-check/fused-selective.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --shards 2 --sync-interval 512 > _build/engine-check/sh-interp.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --shards 2 --sync-interval 512 --engine compiled --selective \
	  > _build/engine-check/sh-selective.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --shards 2 --sync-interval 512 --engine fused --selective \
	  > _build/engine-check/sh-fused.out
	diff _build/engine-check/sh-interp.out _build/engine-check/sh-selective.out
	diff _build/engine-check/sh-interp.out _build/engine-check/sh-fused.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --engine native --emit-cache _build/engine-check/emit-cache \
	  --metrics _build/engine-check/native-cold.metrics.json \
	  > _build/engine-check/native-cold.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --engine native --emit-cache _build/engine-check/emit-cache \
	  --metrics _build/engine-check/native-warm.metrics.json \
	  > _build/engine-check/native-warm.out
	diff _build/engine-check/interp.out _build/engine-check/native-cold.out
	diff _build/engine-check/interp.out _build/engine-check/native-warm.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --shards 2 --sync-interval 512 --engine native --selective \
	  --emit-cache _build/engine-check/emit-cache \
	  > _build/engine-check/sh-native.out
	diff _build/engine-check/sh-interp.out _build/engine-check/sh-native.out
	PATHFUZZ_EMIT_FAIL=1 ./_build/default/bin/pathfuzz.exe fuzz -s cflow \
	  -f path -b 6000 --engine native \
	  --metrics _build/engine-check/native-fail.metrics.json \
	  > _build/engine-check/native-fail.out
	diff _build/engine-check/interp.out _build/engine-check/native-fail.out
	python3 -c "import json; \
	  cold = json.load(open('_build/engine-check/native-cold.metrics.json')); \
	  warm = json.load(open('_build/engine-check/native-warm.metrics.json')); \
	  fail = json.load(open('_build/engine-check/native-fail.metrics.json')); \
	  assert fail['emit.fallbacks'] > 0, 'forced emit failure not counted'; \
	  print('engine-check: emit compile wall cold %.3fs -> warm %.3fs' \
	    % (cold['emit.compile_s'], warm['emit.compile_s'])); \
	  assert cold['emit.fallbacks'] > 0 or ( \
	    warm['emit.cache_misses'] == 0 and warm['emit.cache_hits'] > 0 \
	    and warm['emit.fallbacks'] == 0), \
	    'warm native run was not served 100% from the emit cache'"
	@echo "engine-check: trajectories identical across engines and selective tracing"

# Introspection-perturbation smoke: recording a span trace and the
# engine-metrics registry must be trajectory-invisible — fuzz stdout is
# byte-identical with and without --trace/--metrics, sequentially and
# sharded, under the interpreter and the fused engine — and the trace
# files must parse as valid Chrome trace-event JSON.
profile-check: build
	@rm -rf _build/profile-check && mkdir -p _build/profile-check
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  > _build/profile-check/plain.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --trace _build/profile-check/seq.trace.json \
	  --metrics _build/profile-check/seq.metrics.json \
	  > _build/profile-check/traced.out
	diff _build/profile-check/plain.out _build/profile-check/traced.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --engine fused --selective > _build/profile-check/fused.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --engine fused --selective \
	  --trace _build/profile-check/fused.trace.json \
	  --metrics _build/profile-check/fused.metrics.json \
	  > _build/profile-check/fused-traced.out
	diff _build/profile-check/fused.out _build/profile-check/fused-traced.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --shards 2 --sync-interval 512 > _build/profile-check/sh.out
	./_build/default/bin/pathfuzz.exe fuzz -s cflow -f path -b 6000 \
	  --shards 2 --sync-interval 512 \
	  --trace _build/profile-check/sh.trace.json \
	  --metrics _build/profile-check/sh.metrics.json \
	  > _build/profile-check/sh-traced.out
	diff _build/profile-check/sh.out _build/profile-check/sh-traced.out
	python3 -m json.tool _build/profile-check/seq.trace.json > /dev/null
	python3 -m json.tool _build/profile-check/fused.trace.json > /dev/null
	python3 -m json.tool _build/profile-check/sh.trace.json > /dev/null
	python3 -m json.tool _build/profile-check/seq.metrics.json > /dev/null
	python3 -m json.tool _build/profile-check/fused.metrics.json > /dev/null
	python3 -m json.tool _build/profile-check/sh.metrics.json > /dev/null
	@echo "profile-check: tracing is trajectory-invisible; trace/metrics files are valid JSON"

# Bechamel micro-benchmarks (one per table/figure of the paper).
micro: build
	dune exec bench/main.exe

# The paper's result tables (fast profile).
tables: build
	./_build/default/bin/pathfuzz.exe tables --fast

clean:
	dune clean
