(** Rendering for [pathfuzz profile]: the deep-introspection report over
    one campaign's span-trace aggregates, engine-metrics registry and
    counter block. Pure formatting — everything here reads data that was
    collected under the zero-perturbation rule (DESIGN §7/§14), so for a
    deterministic clock (or no clock at all) the rendered report is
    byte-deterministic and golden-testable. *)

(* Every span kind, in a fixed display order: the table shape never
   depends on which phases happened to fire. *)
let phase_kinds : Obs.Trace.kind list =
  [
    Obs.Trace.Compile;
    Obs.Trace.Plan;
    Obs.Trace.Mutate;
    Obs.Trace.Exec;
    Obs.Trace.Calibrate;
    Obs.Trace.Replay;
    Obs.Trace.Triage;
    Obs.Trace.Merge;
    Obs.Trace.Checkpoint;
    Obs.Trace.Epoch;
  ]

let wall (v : float) : string = Printf.sprintf "%.3f" v

(** Phase wall breakdown from the span aggregates, summed across all
    tracks (coordinator plus every shard). *)
let phase_table (tr : Obs.Trace.t) : string =
  let rows =
    List.map
      (fun k ->
        let n, s = Obs.Trace.agg_all tr k in
        [ Obs.Trace.kind_name k; string_of_int n; wall s ])
      phase_kinds
  in
  Render.table ~title:"Phase walls (span aggregates, all tracks)"
    ~header:[ "phase"; "spans"; "wall_s" ] ~rows

(** Per-shard utilization from the [shardN.busy_s]/[shardN.wait_s]
    walls the coordinator accumulates at each barrier. [None] for
    sequential (or single-shard) runs. *)
let shard_table (m : Obs.Metrics.t) ~(shards : int) : string option =
  if shards < 2 then None
  else
    let rows =
      List.init shards (fun s ->
          let busy =
            Obs.Metrics.wall_value m (Printf.sprintf "shard%d.busy_s" s)
          in
          let wait =
            Obs.Metrics.wall_value m (Printf.sprintf "shard%d.wait_s" s)
          in
          let util =
            if busy +. wait > 0. then 100. *. busy /. (busy +. wait) else 0.
          in
          [ string_of_int s; wall busy; wall wait; Printf.sprintf "%.1f" util ])
    in
    Some
      (Render.table ~title:"Shard utilization (epoch walls at barriers)"
         ~header:[ "shard"; "busy_s"; "wait_s"; "util%" ]
         ~rows)

(** The whole metrics registry, one row per instrument in registration
    order (the order is itself deterministic for a deterministic
    trajectory). *)
let metrics_table (m : Obs.Metrics.t) : string =
  let rows =
    List.map
      (fun name ->
        match Obs.Metrics.find m name with
        | Some (Obs.Metrics.Counter c) ->
            [ name; "counter"; string_of_int c.Obs.Metrics.c ]
        | Some (Obs.Metrics.Gauge g) ->
            [ name; "gauge"; string_of_int g.Obs.Metrics.g ]
        | Some (Obs.Metrics.Wall w) -> [ name; "wall"; wall w.Obs.Metrics.s ]
        | Some (Obs.Metrics.Hist h) ->
            [
              name;
              "hist";
              Printf.sprintf "n=%d sum=%d max=%d" h.Obs.Metrics.count
                h.Obs.Metrics.sum h.Obs.Metrics.max_v;
            ]
        | None -> [ name; "-"; "-" ])
      (Obs.Metrics.names m)
  in
  Render.table ~title:"Engine metrics (registration order)"
    ~header:[ "metric"; "kind"; "value" ]
    ~rows

(** Assemble the full report: phase walls (when the observer carries a
    trace), shard utilization (multi-shard runs), the metrics registry
    and the counter block. [with_wall] adds the vm/mut wall rows to the
    counters table (meaningful only for clocked runs). *)
let render ?(title = "pathfuzz profile") ?(with_wall = false) ~(shards : int)
    (obs : Obs.Observer.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
  (match obs.Obs.Observer.trace with
  | Some tr -> Buffer.add_string buf (phase_table tr)
  | None -> ());
  (match shard_table obs.Obs.Observer.metrics ~shards with
  | Some t -> Buffer.add_string buf t
  | None -> ());
  Buffer.add_string buf (metrics_table obs.Obs.Observer.metrics);
  Buffer.add_string buf
    (Obs_render.counters_table ~with_wall obs.Obs.Observer.counters);
  Buffer.contents buf
