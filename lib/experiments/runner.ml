(** Experiment runner: executes the (subject x fuzzer x trial) matrix once
    and caches the per-run results; every table and figure generator then
    aggregates from the same matrix, exactly as the paper derives Tables
    II/III/IV/VI and Figure 3 from one set of campaigns. *)

type cell = {
  subject : Subjects.Subject.t;
  fuzzer : Fuzz.Strategy.fuzzer;
  runs : Fuzz.Strategy.run_result list;  (** one per trial *)
  wall_s : float;
      (** wall-clock seconds summed over this cell's trials. Diagnostic
          only — deliberately absent from every rendered table, so table
          output stays byte-identical across worker counts. *)
}

type matrix = {
  config : Config.t;
  cells : (string * string, cell) Hashtbl.t;  (** (subject, fuzzer) *)
  fuzzers : Fuzz.Strategy.fuzzer list;
  subjects : Subjects.Subject.t list;
}

(** The evaluated fuzzer configurations (§V), including the appendix ones. *)
let standard_fuzzers (cfg : Config.t) : Fuzz.Strategy.fuzzer list =
  [
    Fuzz.Strategy.path;
    Fuzz.Strategy.pcguard;
    Fuzz.Strategy.cull ~rounds:cfg.cull_rounds ();
    Fuzz.Strategy.opp;
    Fuzz.Strategy.cull_r ~rounds:cfg.cull_rounds ();
    Fuzz.Strategy.pathafl;
    Fuzz.Strategy.afl;
  ]

(* Per-subject Ball–Larus plans, computed once and shared read-only
   across trials (and worker domains — the memo is mutex-guarded, the
   plans themselves immutable). Keyed on subject name: every trial of a
   subject sees the same memoized program below. *)
let plans_memo : (string, Pathcov.Ball_larus.program_plans) Hashtbl.t =
  Hashtbl.create 16

let plans_mutex = Mutex.create ()

let subject_plans (subject : Subjects.Subject.t) (prog : Minic.Ir.program) :
    Pathcov.Ball_larus.program_plans =
  Mutex.protect plans_mutex (fun () ->
      match Hashtbl.find_opt plans_memo subject.Subjects.Subject.name with
      | Some p -> p
      | None ->
          let p = Pathcov.Ball_larus.of_program prog in
          Hashtbl.add plans_memo subject.Subjects.Subject.name p;
          p)

(** Run one (subject, fuzzer, trial) task. Subject preparation is hoisted
    out of the per-trial loop: the program ({!Subjects.Subject.program},
    memoized), its Ball–Larus plans (memo above) and — inside
    [Campaign.run], via [Vm.Interp.prepare_cached] — the prepared CFG are
    all built once per subject and shared read-only across trials and
    worker domains. Campaigns are pure functions of
    (program, seeds, config) and the shared artifacts are immutable, so
    the matrix stays bit-identical at any worker count. *)
let run_trial (cfg : Config.t) (subject : Subjects.Subject.t)
    (fuzzer : Fuzz.Strategy.fuzzer) (trial : int) :
    Fuzz.Strategy.run_result * float =
  let prog = Subjects.Subject.program subject in
  let plans = subject_plans subject prog in
  let t0 = Unix.gettimeofday () in
  let r =
    Fuzz.Strategy.run ~plans ~budget:cfg.budget
      ~trial_seed:(cfg.base_seed + (trial * 7919))
      fuzzer prog ~seeds:subject.seeds
  in
  (r, Unix.gettimeofday () -. t0)

(** Run the full matrix, fanning the (subject x fuzzer x trial) task list
    out over [jobs] worker domains. Results are collected keyed by task
    index and merged in a fixed order, so the matrix — and every table
    derived from it — is identical regardless of worker count or
    scheduling. [quiet] suppresses progress on stderr. *)
let run ?(quiet = false) ?(jobs = 1) ?fuzzers ?subjects (cfg : Config.t) : matrix =
  let fuzzers = Option.value fuzzers ~default:(standard_fuzzers cfg) in
  let subjects = Option.value subjects ~default:Subjects.Registry.all in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun subject ->
           List.concat_map
             (fun (fuzzer : Fuzz.Strategy.fuzzer) ->
               List.init cfg.trials (fun trial -> (subject, fuzzer, trial)))
             fuzzers)
         subjects)
  in
  let total = Array.length tasks in
  if (not quiet) && jobs > 1 then
    Printf.eprintf "[matrix] %d tasks on %d worker domains\n%!" total jobs;
  let done_ = ref 0 in
  (* Worker attribution comes from the pool's own [Trial_end] events:
     the sink fires under the result mutex just before [on_done i], so
     [attrib.(i)] is always current when the progress line reads it. *)
  let attrib = Array.make (max 1 total) (0, 0.) in
  let sink =
    Obs.Sink.make (function
      | Obs.Event.Trial_end { task; worker; wall_s } ->
          attrib.(task) <- (worker, wall_s)
      | _ -> ())
  in
  (* [on_done] runs under the pool's result mutex: one progress line per
     completed task, never interleaved between workers. *)
  let on_done i ((r : Fuzz.Strategy.run_result), _wall) =
    incr done_;
    if not quiet then begin
      let subject, (fuzzer : Fuzz.Strategy.fuzzer), trial = tasks.(i) in
      let worker, wall = attrib.(i) in
      Printf.eprintf
        "[matrix %3d/%d] %-10s %-8s trial %d  w%d %6.2fs  bugs: %d\n%!" !done_
        total subject.Subjects.Subject.name fuzzer.name trial worker wall
        (Fuzz.Triage.unique_bugs r.triage)
    end
  in
  let results =
    Exec.Pool.map ~jobs ~sink ~on_done total (fun i ->
        let subject, fuzzer, trial = tasks.(i) in
        run_trial cfg subject fuzzer trial)
  in
  (* Deterministic merge: regroup trial results into cells by task index,
     independent of the order workers finished in. *)
  let cells = Hashtbl.create 128 in
  let nf = List.length fuzzers in
  List.iteri
    (fun si subject ->
      List.iteri
        (fun fi (fuzzer : Fuzz.Strategy.fuzzer) ->
          let base = ((si * nf) + fi) * cfg.trials in
          let runs = List.init cfg.trials (fun t -> fst results.(base + t)) in
          let wall_s =
            List.fold_left
              (fun acc t -> acc +. snd results.(base + t))
              0.
              (List.init cfg.trials Fun.id)
          in
          Hashtbl.replace cells
            (subject.Subjects.Subject.name, fuzzer.name)
            { subject; fuzzer; runs; wall_s })
        fuzzers)
    subjects;
  { config = cfg; cells; fuzzers; subjects }

(** Total wall-clock seconds spent fuzzing across the whole matrix (the
    sum of per-trial times, not elapsed time — with [jobs] > 1 the
    elapsed time is smaller). *)
let total_wall_s (m : matrix) : float =
  Hashtbl.fold (fun _ c acc -> acc +. c.wall_s) m.cells 0.

let cell (m : matrix) ~subject ~fuzzer : cell =
  match Hashtbl.find_opt m.cells (subject, fuzzer) with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Runner.cell: no cell (%s, %s)" subject fuzzer)

(* ------------------------------------------------------------------ *)
(* Per-cell aggregations *)

(** Union of ground-truth bugs over all trials (the "cumulative" columns). *)
let cumulative_bugs (c : cell) : Fuzz.Stats.Bug_set.t =
  List.fold_left
    (fun acc (r : Fuzz.Strategy.run_result) ->
      Fuzz.Stats.Bug_set.union acc (Fuzz.Stats.bug_set (Fuzz.Triage.bugs r.triage)))
    Fuzz.Stats.Bug_set.empty c.runs

(** Count of distinct stack-hash unique crashes over all trials. *)
let cumulative_unique_crashes (c : cell) : int =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Fuzz.Strategy.run_result) ->
      Hashtbl.iter (fun h _ -> Hashtbl.replace tbl h ()) r.triage.by_stack)
    c.runs;
  Hashtbl.length tbl

let median_bugs (c : cell) : float =
  Fuzz.Stats.median_int
    (List.map (fun (r : Fuzz.Strategy.run_result) -> Fuzz.Triage.unique_bugs r.triage) c.runs)

let median_queue (c : cell) : float =
  Fuzz.Stats.median_int
    (List.map (fun (r : Fuzz.Strategy.run_result) -> r.queue_size) c.runs)

let total_crashes (c : cell) : int =
  List.fold_left
    (fun acc (r : Fuzz.Strategy.run_result) -> acc + r.triage.total_crashes)
    0 c.runs

let afl_unique_crashes (c : cell) : int =
  List.fold_left
    (fun acc (r : Fuzz.Strategy.run_result) ->
      acc + Fuzz.Triage.afl_unique_crashes r.triage)
    0 c.runs

(** Cumulative edge coverage: union over trials of afl-showmap on the final
    queue plus the seeds (Table IV's measurement). *)
let cumulative_edges (c : cell) : Fuzz.Measure.Int_set.t =
  let prog = Subjects.Subject.program c.subject in
  List.fold_left
    (fun acc (r : Fuzz.Strategy.run_result) ->
      Fuzz.Measure.Int_set.union acc
        (Fuzz.Measure.edge_union prog (c.subject.seeds @ r.final_queue)))
    Fuzz.Measure.Int_set.empty c.runs

(** Per-trial bug sets (medians and per-run set algebra, Table VI). *)
let per_trial_bugs (c : cell) : Fuzz.Stats.Bug_set.t list =
  List.map
    (fun (r : Fuzz.Strategy.run_result) ->
      Fuzz.Stats.bug_set (Fuzz.Triage.bugs r.triage))
    c.runs
