(** Execution-throughput telemetry: the perf trajectory behind every table.

    Every number in the evaluation is bought with executions, so execs/sec
    is the real budget unit behind the paper's wall-clock budgets. This
    module measures steady-state interpreter throughput per
    (subject x feedback mode) cell — executions/sec, VM blocks/sec and GC
    minor words allocated per execution — and renders the result as the
    [BENCH_throughput.json] baseline that future PRs are compared against.

    One measured "execution" is exactly one iteration of the campaign hot
    loop: feedback reset, trace clear, VM run, trace classify — i.e. what
    [Fuzz.Campaign.execute] does minus queue bookkeeping. Seeds are cycled
    in order, so the work per execution (and therefore minor-words/exec)
    is deterministic; only the wall-clock rates vary across hosts. *)

type sample = {
  subject : string;
  mode : string;  (** feedback mode name, or ["none"] (uninstrumented) *)
  execs : int;  (** measured executions (after warmup) *)
  wall_s : float;
  execs_per_sec : float;
  blocks_per_sec : float;
  minor_words_per_exec : float;
}

(** The measured instrumentation ladder: uninstrumented, then each
    feedback mode of the sensitivity ladder. *)
let modes : (string * Pathcov.Feedback.mode option) list =
  [
    ("none", None);
    ("block", Some Pathcov.Feedback.Block);
    ("edge", Some Pathcov.Feedback.Edge);
    ("path", Some Pathcov.Feedback.Path);
    ("pathafl", Some Pathcov.Feedback.Pathafl);
  ]

(* One throughput cell: replay the subject's seeds round-robin through a
   reused execution context. Warmup executions let frame pools and the
   touched-index journals reach steady state before the clock starts. *)
let measure ?(warmup = 64) ~execs ~(mode : Pathcov.Feedback.mode option)
    (s : Subjects.Subject.t) : sample =
  let prog = Subjects.Subject.compile_fresh s in
  let prepared = Vm.Interp.prepare prog in
  let fb = Option.map (fun m -> Pathcov.Feedback.make m prog) mode in
  let hooks =
    match fb with
    | None -> Vm.Interp.no_hooks
    | Some fb ->
        {
          Vm.Interp.no_hooks with
          h_call = fb.Pathcov.Feedback.on_call;
          h_block = fb.Pathcov.Feedback.on_block;
          h_edge = fb.Pathcov.Feedback.on_edge;
          h_ret = fb.Pathcov.Feedback.on_ret;
        }
  in
  let ctx = Vm.Interp.create_ctx ~hooks prepared in
  let seeds = Array.of_list (if s.seeds = [] then [ "A" ] else s.seeds) in
  let nseeds = Array.length seeds in
  let blocks = ref 0 in
  let one i =
    (match fb with
    | Some fb ->
        fb.Pathcov.Feedback.reset ();
        Pathcov.Coverage_map.clear fb.trace
    | None -> ());
    let out = Vm.Interp.run_ctx ctx ~input:seeds.(i mod nseeds) in
    blocks := !blocks + out.blocks_executed;
    match fb with Some fb -> Pathcov.Coverage_map.classify fb.trace | None -> ()
  in
  for i = 0 to warmup - 1 do
    one i
  done;
  blocks := 0;
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to execs - 1 do
    one i
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  let per_sec n = if wall_s > 0. then float_of_int n /. wall_s else 0. in
  {
    subject = s.name;
    mode = (match mode with None -> "none" | Some m -> Pathcov.Feedback.mode_name m);
    execs;
    wall_s;
    execs_per_sec = per_sec execs;
    blocks_per_sec = per_sec !blocks;
    minor_words_per_exec = mw /. float_of_int (max 1 execs);
  }

(** Measure the full (subject x mode) grid. *)
let grid ?warmup ~execs (subjects : Subjects.Subject.t list) : sample list =
  List.concat_map
    (fun s -> List.map (fun (_, m) -> measure ?warmup ~execs ~mode:m s) modes)
    subjects

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* Hand-rolled JSON: the repo deliberately has no JSON dependency. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let sample_json buf (s : sample) =
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"subject\": %S, \"mode\": %S, \"execs\": %d, \"wall_s\": %s, \
        \"execs_per_sec\": %s, \"blocks_per_sec\": %s, \
        \"minor_words_per_exec\": %s}"
       s.subject s.mode s.execs (json_float s.wall_s)
       (json_float s.execs_per_sec)
       (json_float s.blocks_per_sec)
       (json_float s.minor_words_per_exec))

(** Extract the raw (verbatim) cell lines of a [key] array block from a
    previously written BENCH_*.json file, e.g. [~key:"baseline_cells"].
    Used to carry a recorded baseline forward when the file is
    regenerated ([make bench]) and to seed a new baseline from an old
    file's [cells]. Returns [None] when the file or block is missing.
    This is a format-anchored line scan, not a JSON parser: it only
    understands the layout our own writers emit. *)
let extract_cells ~(key : string) (path : string) : string option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let lines = List.rev !lines in
    let marker = Printf.sprintf "  \"%s\": [" key in
    let rec skip = function
      | [] -> None
      | l :: rest -> if l = marker then Some rest else skip rest
    in
    match skip lines with
    | None -> None
    | Some rest ->
        let rec take acc = function
          | [] -> None  (* unterminated block: treat as absent *)
          | l :: rest ->
              if l = "  ]" || l = "  ]," then
                Some (String.concat "\n" (List.rev acc))
              else take (l :: acc) rest
        in
        take [] rest
  end

(** Render the [BENCH_throughput.json] document. [baseline] optionally
    embeds a prior measurement (e.g. the pre-optimisation interpreter) so
    the file itself records the trajectory, not just the endpoint;
    [baseline_raw] does the same from a previously rendered cell block
    (see {!extract_cells}), taking precedence over [baseline]. *)
let to_json ?(note = "") ?(baseline = []) ?baseline_raw (samples : sample list)
    : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"pathfuzz-throughput/v1\",\n";
  if note <> "" then
    Buffer.add_string buf (Printf.sprintf "  \"note\": %S,\n" note);
  let block name ss =
    Buffer.add_string buf (Printf.sprintf "  %S: [\n" name);
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ",\n";
        sample_json buf s)
      ss;
    Buffer.add_string buf "\n  ]"
  in
  block "cells" samples;
  (match baseline_raw with
  | Some raw when raw <> "" ->
      Buffer.add_string buf ",\n  \"baseline_cells\": [\n";
      Buffer.add_string buf raw;
      Buffer.add_string buf "\n  ]"
  | _ ->
      if baseline <> [] then begin
        Buffer.add_string buf ",\n";
        block "baseline_cells" baseline
      end);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(** Human-readable table (the bench hook and [--smoke] output). *)
let to_table (samples : sample list) : string =
  let header = [ "subject"; "mode"; "execs/s"; "blocks/s"; "minor w/exec" ] in
  let rows =
    List.map
      (fun s ->
        [
          s.subject;
          s.mode;
          Printf.sprintf "%.0f" s.execs_per_sec;
          Printf.sprintf "%.0f" s.blocks_per_sec;
          Printf.sprintf "%.1f" s.minor_words_per_exec;
        ])
      samples
  in
  Render.table ~title:"Throughput (execs/sec by subject x feedback)" ~header ~rows
