(** Execution-throughput telemetry: the perf trajectory behind every table.

    Every number in the evaluation is bought with executions, so execs/sec
    is the real budget unit behind the paper's wall-clock budgets. This
    module measures steady-state execution throughput per
    (subject x feedback mode x engine) cell — executions/sec, VM
    blocks/sec and GC minor words allocated per execution — and renders
    the result as the [BENCH_throughput.json] baseline that future PRs
    are compared against.

    One measured "execution" is exactly one iteration of the campaign hot
    loop: feedback reset, trace clear, run, trace classify — i.e. what
    [Fuzz.Campaign.execute] does minus queue bookkeeping. Five engines
    are measured: [interp] (the pooled interpreter driving the runtime
    listeners), [compiled] (the [Vm.Compile] staged artifact with probes
    baked in), [fused] (the staged artifact with superblock fusion —
    single-predecessor chains collapsed into one closure with coalesced
    fuel burns and folded path increments), [selective] (the
    selective-tracing pipeline: the near-null signal specialisation per
    execution plus a full-instrumentation replay on each first-seen
    signal; the mode-less row is the pure signal floor with no replay),
    and [native] (the [Vm.Emit] per-subject generated OCaml unit,
    compiled out-of-process and Dynlink'd — measured only when the
    emitter is available on this host; {!grid} probes once and skips the
    native rows with a stderr note otherwise).
    Selective rows also report [replays] — the replays that fell inside
    the measured window, which drops to ~0 once the cycled seeds' signals
    are all seen (the amortisation the campaign enjoys). Seeds are cycled
    in order, so the work per execution (and therefore minor-words/exec)
    is deterministic; only wall-clock rates vary across hosts. *)

type sample = {
  subject : string;
  mode : string;  (** feedback mode name, or ["none"] (uninstrumented) *)
  engine : string;
      (** "interp", "compiled", "fused", "selective" or "native" *)
  execs : int;  (** measured executions (after warmup) *)
  wall_s : float;
  execs_per_sec : float;
  blocks_per_sec : float;
  minor_words_per_exec : float;
  replays : int;
      (** selective rows: full-instrumentation replays (first-seen
          signals) inside the measured window; 0 elsewhere *)
}

(** The measured instrumentation ladder: uninstrumented, then each
    feedback mode of the sensitivity ladder. *)
let modes : (string * Pathcov.Feedback.mode option) list =
  [
    ("none", None);
    ("block", Some Pathcov.Feedback.Block);
    ("edge", Some Pathcov.Feedback.Edge);
    ("path", Some Pathcov.Feedback.Path);
    ("pathafl", Some Pathcov.Feedback.Pathafl);
  ]

(** The measured engines, in presentation order — the grid default and
    the universe the [--engines] bench filter validates against. *)
let engines : string list =
  [ "interp"; "compiled"; "fused"; "selective"; "native" ]

(* One throughput cell: replay the subject's seeds round-robin through a
   reused execution context. Warmup executions let frame pools, the
   touched-index journals and (for the compiled engines) the per-domain
   artifact cache reach steady state before the clock starts.
   Preparation is shared across cells: [Subject.program] memoises the
   front-end and [Interp.prepare_cached] the slot resolution, so a grid
   pays for each once instead of per cell. *)
let measure ?(warmup = 64) ~execs ~(engine : string)
    ~(mode : Pathcov.Feedback.mode option) (s : Subjects.Subject.t) : sample =
  let prog = Subjects.Subject.program s in
  let prepared = Vm.Interp.prepare_cached prog in
  let seeds = Array.of_list (if s.seeds = [] then [ "A" ] else s.seeds) in
  let nseeds = Array.length seeds in
  let blocks = ref 0 in
  let replays = ref 0 in
  let one : int -> unit =
    match engine with
    | "interp" ->
        let fb = Option.map (fun m -> Pathcov.Feedback.make m prog) mode in
        let hooks =
          match fb with
          | None -> Vm.Interp.no_hooks
          | Some fb ->
              {
                Vm.Interp.no_hooks with
                h_call = fb.Pathcov.Feedback.on_call;
                h_block = fb.Pathcov.Feedback.on_block;
                h_edge = fb.Pathcov.Feedback.on_edge;
                h_ret = fb.Pathcov.Feedback.on_ret;
              }
        in
        let ctx = Vm.Interp.create_ctx ~hooks prepared in
        fun i ->
          (match fb with
          | Some fb ->
              fb.Pathcov.Feedback.reset ();
              Pathcov.Coverage_map.clear fb.trace
          | None -> ());
          let out = Vm.Interp.run_ctx ctx ~input:seeds.(i mod nseeds) in
          blocks := !blocks + out.blocks_executed;
          (match fb with
          | Some fb -> Pathcov.Coverage_map.classify fb.trace
          | None -> ())
    | "compiled" | "fused" ->
        let spec =
          match mode with
          | None -> Vm.Compile.Snone
          | Some m -> Vm.Compile.Sfull m
        in
        (* cmplog is off in this loop (the h_cmp binding below is a
           no-op), so the cmp-free artifact variant is the honest cost *)
        let art =
          Vm.Compile.cached ~cmplog:false ~fused:(engine = "fused") prepared
            spec
        in
        let ctx = Vm.Interp.create_ctx prepared in
        let trace = Pathcov.Coverage_map.create () in
        Vm.Compile.bind art ~trace ~h_cmp:(fun _ _ -> ());
        fun i ->
          (match mode with
          | Some _ -> Pathcov.Coverage_map.clear trace
          | None -> ());
          let out = Vm.Compile.run art ctx ~input:seeds.(i mod nseeds) in
          blocks := !blocks + out.blocks_executed;
          (match mode with
          | Some _ -> Pathcov.Coverage_map.classify trace
          | None -> ())
    | "selective" -> (
        let sig_art = Vm.Compile.cached prepared Vm.Compile.Ssignal in
        let ctx = Vm.Interp.create_ctx prepared in
        match mode with
        | None ->
            (* the bulk-exec floor of selective tracing: signal spec
               only, no trace to clear or classify, no replays *)
            fun i ->
              let out = Vm.Compile.run sig_art ctx ~input:seeds.(i mod nseeds) in
              blocks := !blocks + out.blocks_executed
        | Some m ->
            (* the full selective pipeline at this mode: a signal run per
               execution plus a full-instrumentation replay on each
               first-seen signal — the steady-state cost the campaign's
               bulk executions actually pay *)
            let full =
              Vm.Compile.cached ~cmplog:false prepared (Vm.Compile.Sfull m)
            in
            let trace = Pathcov.Coverage_map.create () in
            Vm.Compile.bind full ~trace ~h_cmp:(fun _ _ -> ());
            let seen = Hashtbl.create 256 in
            fun i ->
              let input = seeds.(i mod nseeds) in
              let out = Vm.Compile.run sig_art ctx ~input in
              blocks := !blocks + out.blocks_executed;
              let s = Vm.Compile.signal sig_art in
              if not (Hashtbl.mem seen s) then begin
                Hashtbl.add seen s ();
                incr replays;
                Pathcov.Coverage_map.clear trace;
                ignore (Vm.Compile.run full ctx ~input);
                Pathcov.Coverage_map.classify trace
              end)
    | "native" -> (
        let spec =
          match mode with
          | None -> Vm.Compile.Snone
          | Some m -> Vm.Compile.Sfull m
        in
        match Vm.Emit.instance ~cmplog:false prepared spec with
        | Error msg ->
            invalid_arg
              (Printf.sprintf
                 "Throughput.measure: native emitter unavailable (%s)" msg)
        | Ok em ->
            let ctx = Vm.Interp.create_ctx prepared in
            let trace = Pathcov.Coverage_map.create () in
            Vm.Emit.bind em ~trace ~h_cmp:(fun _ _ -> ());
            fun i ->
              (match mode with
              | Some _ -> Pathcov.Coverage_map.clear trace
              | None -> ());
              let out = Vm.Emit.run em ctx ~input:seeds.(i mod nseeds) in
              blocks := !blocks + out.blocks_executed;
              (match mode with
              | Some _ -> Pathcov.Coverage_map.classify trace
              | None -> ()))
    | e -> invalid_arg (Printf.sprintf "Throughput.measure: engine %S" e)
  in
  for i = 0 to warmup - 1 do
    one i
  done;
  blocks := 0;
  replays := 0;
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to execs - 1 do
    one i
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  let per_sec n = if wall_s > 0. then float_of_int n /. wall_s else 0. in
  {
    subject = s.name;
    mode = (match mode with None -> "none" | Some m -> Pathcov.Feedback.mode_name m);
    engine;
    execs;
    wall_s;
    execs_per_sec = per_sec execs;
    blocks_per_sec = per_sec !blocks;
    minor_words_per_exec = mw /. float_of_int (max 1 execs);
    replays = !replays;
  }

(** Measure the (subject x mode x engine) grid: every mode under each
    requested engine (default: all of {!engines}), where [selective]'s
    mode-less row is the signal floor and its instrumented rows the full
    pipeline (signal runs + first-seen replays). [native] cells are
    measured only when the emitter works on this host: the grid probes
    once (first subject, no instrumentation) and drops the engine with a
    stderr note otherwise, so a toolchain-less machine still produces
    the rest of the grid. Unknown engine names raise [Invalid_argument]
    (the CLI validates before calling). *)
let grid ?warmup ?(engines = engines) ~execs
    (subjects : Subjects.Subject.t list) : sample list =
  List.iter
    (fun e ->
      if
        not
          (List.mem e [ "interp"; "compiled"; "fused"; "selective"; "native" ])
      then invalid_arg (Printf.sprintf "Throughput.grid: engine %S" e))
    engines;
  let engines =
    if not (List.mem "native" engines) then engines
    else
      match subjects with
      | [] -> engines
      | s :: _ -> (
          let prepared =
            Vm.Interp.prepare_cached (Subjects.Subject.program s)
          in
          match Vm.Emit.instance ~cmplog:false prepared Vm.Compile.Snone with
          | Ok _ -> engines
          | Error msg ->
              Printf.eprintf
                "[throughput] native engine unavailable (%s); skipping \
                 native cells\n\
                 %!"
                msg;
              List.filter (fun e -> e <> "native") engines)
  in
  List.concat_map
    (fun s ->
      List.concat_map
        (fun engine ->
          List.map (fun (_, m) -> measure ?warmup ~execs ~engine ~mode:m s) modes)
        engines)
    subjects

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* Hand-rolled JSON: the repo deliberately has no JSON dependency. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let sample_json buf (s : sample) =
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"subject\": %S, \"mode\": %S, \"engine\": %S, \"execs\": %d, \
        \"wall_s\": %s, \"execs_per_sec\": %s, \"blocks_per_sec\": %s, \
        \"minor_words_per_exec\": %s%s}"
       s.subject s.mode s.engine s.execs (json_float s.wall_s)
       (json_float s.execs_per_sec)
       (json_float s.blocks_per_sec)
       (json_float s.minor_words_per_exec)
       (if s.engine = "selective" then
          Printf.sprintf ", \"replays\": %d" s.replays
        else ""))

(** Extract the raw (verbatim) cell lines of a [key] array block from a
    previously written BENCH_*.json file, e.g. [~key:"baseline_cells"].
    Used to carry a recorded baseline forward when the file is
    regenerated ([make bench]) and to seed a new baseline from an old
    file's [cells]. Returns [None] when the file or block is missing.
    This is a format-anchored line scan, not a JSON parser: it only
    understands the layout our own writers emit. *)
let extract_cells ~(key : string) (path : string) : string option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let lines = List.rev !lines in
    let marker = Printf.sprintf "  \"%s\": [" key in
    let rec skip = function
      | [] -> None
      | l :: rest -> if l = marker then Some rest else skip rest
    in
    match skip lines with
    | None -> None
    | Some rest ->
        let rec take acc = function
          | [] -> None  (* unterminated block: treat as absent *)
          | l :: rest ->
              if l = "  ]" || l = "  ]," then
                Some (String.concat "\n" (List.rev acc))
              else take (l :: acc) rest
        in
        take [] rest
  end

(* ------------------------------------------------------------------ *)
(* Speedup vs the recorded baseline *)

type speedup = {
  sp_subject : string;
  sp_baseline : float;  (** baseline path-mode execs/sec *)
  sp_current : float;  (** compiled-engine path-mode execs/sec *)
  sp_ratio : float;
}

(* Minimal cell scan over a raw cell block (the bench_history idiom):
   baseline cells predate the engine field, so a missing engine reads as
   "interp". *)
let scan_cells (raw : string) : (string * string * string * float) list =
  let field obj key =
    let pat = Printf.sprintf "\"%s\": " key in
    let n = String.length obj and m = String.length pat in
    let rec find i =
      if i + m > n then None
      else if String.sub obj i m = pat then Some (i + m)
      else find (i + 1)
    in
    find 0
  in
  let string_field obj key =
    match field obj key with
    | Some i when i < String.length obj && obj.[i] = '"' -> (
        match String.index_from_opt obj (i + 1) '"' with
        | Some stop -> Some (String.sub obj (i + 1) (stop - i - 1))
        | None -> None)
    | _ -> None
  in
  let float_field obj key =
    match field obj key with
    | None -> None
    | Some start ->
        let stop = ref start in
        let n = String.length obj in
        while
          !stop < n
          && (match obj.[!stop] with
             | ',' | '}' | ']' | ' ' | '\n' -> false
             | _ -> true)
        do
          incr stop
        done;
        float_of_string_opt (String.sub obj start (!stop - start))
  in
  let rec go i acc =
    match String.index_from_opt raw i '{' with
    | None -> List.rev acc
    | Some o -> (
        match String.index_from_opt raw o '}' with
        | None -> List.rev acc
        | Some c ->
            let obj = String.sub raw o (c - o + 1) in
            let acc =
              match
                ( string_field obj "subject",
                  string_field obj "mode",
                  float_field obj "execs_per_sec" )
              with
              | Some subject, Some mode, Some eps ->
                  let engine =
                    Option.value ~default:"interp" (string_field obj "engine")
                  in
                  (subject, mode, engine, eps) :: acc
              | _ -> acc
            in
            go (c + 1) acc)
  in
  go 0 []

let geomean = function
  | [] -> None
  | l ->
      Some
        (exp
           (List.fold_left (fun a x -> a +. log x) 0. l
           /. float_of_int (List.length l)))

(** Per-subject speedup of this run's [engine] cells at [mode] over the
    recorded baseline's interp cells at the same mode, plus the
    geometric mean. [None] when either side has no usable cell. *)
let speedup_for ~(mode : string) ~(engine : string) ~(baseline_raw : string)
    (samples : sample list) : (float * speedup list) option =
  let base = scan_cells baseline_raw in
  let per_subject =
    List.filter_map
      (fun s ->
        if s.mode = mode && s.engine = engine then
          match
            List.find_opt
              (fun (subj, m, e, _) -> subj = s.subject && m = mode && e = "interp")
              base
          with
          | Some (_, _, _, b) when b > 0. ->
              Some
                {
                  sp_subject = s.subject;
                  sp_baseline = b;
                  sp_current = s.execs_per_sec;
                  sp_ratio = s.execs_per_sec /. b;
                }
          | _ -> None
        else None)
      samples
  in
  match per_subject with
  | [] -> None
  | l ->
      let g = Option.get (geomean (List.map (fun sp -> sp.sp_ratio) l)) in
      Some (g, l)

(** Per-subject path-mode speedup of this run's compiled engine over the
    recorded baseline cells, plus the geometric mean — the ISSUE 7 / PR 2
    acceptance number. [None] when either side has no usable path cell. *)
let speedup_vs_baseline ~(baseline_raw : string) (samples : sample list) :
    (float * speedup list) option =
  speedup_for ~mode:"path" ~engine:"compiled" ~baseline_raw samples

(** Geomean speedup vs the baseline's interp cells for every
    (mode x engine) pair present in [samples] — the honest per-mode view
    behind the single path scalar. Modes keep the ladder order; engines
    are ordered compiled, fused, selective, native. *)
let speedups_by_mode ~(baseline_raw : string) (samples : sample list) :
    (string * string * float) list =
  let mode_names = List.map fst modes in
  List.concat_map
    (fun mode ->
      List.filter_map
        (fun engine ->
          match speedup_for ~mode ~engine ~baseline_raw samples with
          | Some (g, _) -> Some (mode, engine, g)
          | None -> None)
        [ "compiled"; "fused"; "selective"; "native" ])
    mode_names

(** Render the [BENCH_throughput.json] document. [baseline] optionally
    embeds a prior measurement (e.g. the pre-optimisation interpreter) so
    the file itself records the trajectory, not just the endpoint;
    [baseline_raw] does the same from a previously rendered cell block
    (see {!extract_cells}), taking precedence over [baseline]. When a
    baseline is embedded, the path-mode compiled-vs-baseline speedup is
    recorded in the document too. *)
let to_json ?(note = "") ?(baseline = []) ?baseline_raw (samples : sample list)
    : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"pathfuzz-throughput/v1\",\n";
  if note <> "" then
    Buffer.add_string buf (Printf.sprintf "  \"note\": %S,\n" note);
  (match baseline_raw with
  | Some raw when raw <> "" ->
      (match speedup_vs_baseline ~baseline_raw:raw samples with
      | Some (g, _) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  \"path_speedup_compiled_vs_baseline\": %s,\n" (json_float g))
      | None -> ());
      (match speedup_for ~mode:"path" ~engine:"fused" ~baseline_raw:raw samples with
      | Some (g, _) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  \"path_speedup_fused_vs_baseline\": %s,\n" (json_float g))
      | None -> ());
      (match speedup_for ~mode:"path" ~engine:"native" ~baseline_raw:raw samples with
      | Some (g, _) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  \"path_speedup_native_vs_baseline\": %s,\n" (json_float g))
      | None -> ());
      (match speedups_by_mode ~baseline_raw:raw samples with
      | [] -> ()
      | l ->
          Buffer.add_string buf "  \"speedups_vs_baseline\": [\n";
          List.iteri
            (fun i (mode, engine, g) ->
              if i > 0 then Buffer.add_string buf ",\n";
              Buffer.add_string buf
                (Printf.sprintf
                   "    {\"mode\": %S, \"engine\": %S, \"geomean\": %s}" mode
                   engine (json_float g)))
            l;
          Buffer.add_string buf "\n  ],\n")
  | _ -> ());
  let block name ss =
    Buffer.add_string buf (Printf.sprintf "  %S: [\n" name);
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ",\n";
        sample_json buf s)
      ss;
    Buffer.add_string buf "\n  ]"
  in
  block "cells" samples;
  (match baseline_raw with
  | Some raw when raw <> "" ->
      Buffer.add_string buf ",\n  \"baseline_cells\": [\n";
      Buffer.add_string buf raw;
      Buffer.add_string buf "\n  ]"
  | _ ->
      if baseline <> [] then begin
        Buffer.add_string buf ",\n";
        block "baseline_cells" baseline
      end);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(** Human-readable table (the bench hook and [--smoke] output). *)
let to_table (samples : sample list) : string =
  let header =
    [
      "subject"; "mode"; "engine"; "execs/s"; "blocks/s"; "minor w/exec";
      "replays";
    ]
  in
  let rows =
    List.map
      (fun s ->
        [
          s.subject;
          s.mode;
          s.engine;
          Printf.sprintf "%.0f" s.execs_per_sec;
          Printf.sprintf "%.0f" s.blocks_per_sec;
          Printf.sprintf "%.1f" s.minor_words_per_exec;
          (if s.engine = "selective" then string_of_int s.replays else "-");
        ])
      samples
  in
  Render.table ~title:"Throughput (execs/sec by subject x feedback x engine)"
    ~header ~rows

(** One line per subject: the acceptance-criterion view. *)
let speedup_report ?(engine = "compiled") (g : float) (l : speedup list) :
    string =
  String.concat "\n"
    (List.map
       (fun sp ->
         Printf.sprintf "  %-10s path: %.0f -> %.0f execs/s (%.2fx)"
           sp.sp_subject sp.sp_baseline sp.sp_current sp.sp_ratio)
       l
    @ [
        Printf.sprintf "  geomean speedup vs baseline (path, %s): %.2fx" engine
          g;
      ])
