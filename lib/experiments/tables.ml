(** Generators for every table and figure of the paper's evaluation.
    Each function renders the same rows/series the paper reports, derived
    from one shared run matrix (see DESIGN.md §3 for the index). *)

open Fuzz.Stats

let subj_names (m : Runner.matrix) =
  List.map (fun (s : Subjects.Subject.t) -> s.name) m.subjects

let bugs m ~subject ~fuzzer = Runner.cumulative_bugs (Runner.cell m ~subject ~fuzzer)

(* ------------------------------------------------------------------ *)
(* Table I: subject statistics — functions and queue items, edge vs path
   (the paper measures this after a 24-hour run; ours uses the same full
   campaigns as the other tables). *)

let table1 (m : Runner.matrix) : string =
  let rows =
    List.map
      (fun (s : Subjects.Subject.t) ->
        let q fuzzer =
          Render.f1 (Runner.median_queue (Runner.cell m ~subject:s.name ~fuzzer))
        in
        [ s.name; Render.i (Subjects.Subject.num_functions s); q "pcguard"; q "path" ])
      m.subjects
  in
  Render.table ~title:"Table I: subject statistics (queue items, edge vs path feedback)"
    ~header:[ "Benchmark"; "Functions"; "Queue (edge)"; "Queue (path)" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Table II: cumulative unique bugs (and unique crashes) per fuzzer, plus
   the pairwise set comparisons of the paper's columns. *)

let table2 (m : Runner.matrix) : string =
  let fuzzers = [ "path"; "pcguard"; "cull"; "opp" ] in
  let totals = Hashtbl.create 16 in
  let add key v =
    Hashtbl.replace totals key (v + Option.value ~default:0 (Hashtbl.find_opt totals key))
  in
  let rows =
    List.map
      (fun subject ->
        let b f = bugs m ~subject ~fuzzer:f in
        let crashes f =
          Runner.cumulative_unique_crashes (Runner.cell m ~subject ~fuzzer:f)
        in
        let count f =
          let n = Bug_set.cardinal (b f) in
          add f n;
          add (f ^ "#cr") (crashes f);
          Printf.sprintf "%d (%d)" n (crashes f)
        in
        let pair name v =
          add name v;
          Render.i v
        in
        [ subject ]
        @ List.map count fuzzers
        @ [
            pair "path^pcguard" (inter (b "path") (b "pcguard"));
            pair "cull^pcguard" (inter (b "cull") (b "pcguard"));
            pair "opp^pcguard" (inter (b "opp") (b "pcguard"));
            pair "opp^cull" (inter (b "opp") (b "cull"));
            pair "path\\pcguard" (diff (b "path") (b "pcguard"));
            pair "pcguard\\path" (diff (b "pcguard") (b "path"));
            pair "cull\\pcguard" (diff (b "cull") (b "pcguard"));
            pair "pcguard\\cull" (diff (b "pcguard") (b "cull"));
            pair "opp\\pcguard" (diff (b "opp") (b "pcguard"));
            pair "pcguard\\opp" (diff (b "pcguard") (b "opp"));
            pair "opp\\cull" (diff (b "opp") (b "cull"));
            pair "cull\\opp" (diff (b "cull") (b "opp"));
          ])
      (subj_names m)
  in
  let total_row =
    [ "TOTAL" ]
    @ List.map
        (fun f ->
          Printf.sprintf "%d (%d)"
            (Option.value ~default:0 (Hashtbl.find_opt totals f))
            (Option.value ~default:0 (Hashtbl.find_opt totals (f ^ "#cr"))))
        fuzzers
    @ List.map
        (fun k -> Render.i (Option.value ~default:0 (Hashtbl.find_opt totals k)))
        [
          "path^pcguard"; "cull^pcguard"; "opp^pcguard"; "opp^cull";
          "path\\pcguard"; "pcguard\\path"; "cull\\pcguard"; "pcguard\\cull";
          "opp\\pcguard"; "pcguard\\opp"; "opp\\cull"; "cull\\opp";
        ]
  in
  Render.table
    ~title:
      "Table II: unique bugs (unique crashes) cumulatively across trials, with \
       pairwise intersections and differences"
    ~header:
      [
        "Benchmark"; "path"; "pcguard"; "cull"; "opp"; "pa^pc"; "cu^pc"; "op^pc";
        "op^cu"; "pa\\pc"; "pc\\pa"; "cu\\pc"; "pc\\cu"; "op\\pc"; "pc\\op";
        "op\\cu"; "cu\\op";
      ]
    ~rows:(rows @ [ total_row ])

(* ------------------------------------------------------------------ *)
(* Figure 3: Venn regions for unique bugs across all benchmarks. *)

let union_all m fuzzer =
  List.fold_left
    (fun acc subject -> Bug_set.union acc (bugs m ~subject ~fuzzer))
    Bug_set.empty (subj_names m)

let fig3_venn (m : Runner.matrix) : string =
  let path = union_all m "path" in
  let pcguard = union_all m "pcguard" in
  let cull = union_all m "cull" in
  let opp = union_all m "opp" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "\nFigure 3: Venn regions for unique bugs (all benchmarks)\n";
  Buffer.add_string buf "--------------------------------------------------------\n";
  let v2 name a b (sa, sb) =
    let only_a, only_b, both = venn2 a b in
    Buffer.add_string buf
      (Printf.sprintf "%-22s %s-only=%d  both=%d  %s-only=%d\n" name sa only_a both
         sb only_b)
  in
  v2 "path vs pcguard" path pcguard ("path", "pcguard");
  v2 "cull vs pcguard" cull pcguard ("cull", "pcguard");
  v2 "opp vs pcguard" opp pcguard ("opp", "pcguard");
  let oa, ob, oc, ab, ac, bc, abc = venn3 path cull opp in
  Buffer.add_string buf
    (Printf.sprintf
       "path/cull/opp          path-only=%d cull-only=%d opp-only=%d \
        path&cull=%d path&opp=%d cull&opp=%d all=%d\n"
       oa ob oc ab ac bc abc);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table III: median queue sizes and ratios vs pcguard, with geomean. *)

let table3 (m : Runner.matrix) : string =
  let ratios = Hashtbl.create 8 in
  let rows =
    List.map
      (fun subject ->
        let q f = Runner.median_queue (Runner.cell m ~subject ~fuzzer:f) in
        let base = q "pcguard" in
        let ratio f =
          let r = if base > 0. then q f /. base else nan in
          Hashtbl.add ratios f r;
          Render.f2 r
        in
        [
          subject;
          Render.f1 (q "path");
          Render.f1 base;
          Render.f1 (q "cull");
          Render.f1 (q "opp");
          ratio "path";
          ratio "cull";
          ratio "opp";
        ])
      (subj_names m)
  in
  let geo f = Render.f2 (geomean (Hashtbl.find_all ratios f)) in
  let total = [ "GEOMEAN"; ""; ""; ""; ""; geo "path"; geo "cull"; geo "opp" ] in
  Render.table ~title:"Table III: median queue sizes and ratios vs pcguard"
    ~header:
      [
        "Benchmark"; "path"; "pcguard"; "cull"; "opp"; "path/pc"; "cull/pc"; "opp/pc";
      ]
    ~rows:(rows @ [ total ])

(* ------------------------------------------------------------------ *)
(* Table IV: cumulative edge coverage and set subtractions vs pcguard. *)

let table4 (m : Runner.matrix) : string =
  let totals = Array.make 7 0 in
  let rows =
    List.map
      (fun subject ->
        let e f = Runner.cumulative_edges (Runner.cell m ~subject ~fuzzer:f) in
        let path = e "path" and pcguard = e "pcguard" in
        let cull = e "cull" and opp = e "opp" in
        let module S = Fuzz.Measure.Int_set in
        let vals =
          [
            S.cardinal path;
            S.cardinal pcguard;
            S.cardinal cull;
            S.cardinal opp;
            S.cardinal (S.diff path pcguard);
            S.cardinal (S.diff cull pcguard);
            S.cardinal (S.diff opp pcguard);
          ]
        in
        List.iteri (fun i v -> totals.(i) <- totals.(i) + v) vals;
        subject :: List.map Render.i vals)
      (subj_names m)
  in
  let total_row = "TOTAL" :: List.map Render.i (Array.to_list totals) in
  Render.table
    ~title:"Table IV: edge coverage attained cumulatively, with set subtractions"
    ~header:
      [
        "Benchmark"; "path"; "pcguard"; "cull"; "opp"; "path\\pc"; "cull\\pc";
        "opp\\pc";
      ]
    ~rows:(rows @ [ total_row ])

(* ------------------------------------------------------------------ *)
(* Table V (Appendix A): seed-corpus processing cost under edge vs path
   instrumentation, like the paper's calibration experiment; the corpus is
   a short pcguard campaign's final queue. An earlier version measured
   real CPU time here, which made [Tables.all] non-reproducible (the one
   table that differed run to run, and between --jobs settings). Instead
   we replay the corpus once and charge each listener the VM events it
   actually processes: the edge listener performs one map update per block
   transition, while the path listener pays an activation push per call, a
   Ball-Larus plan lookup per CFG edge, and a path commit per return. The
   ratio is a deterministic proxy for instrumentation overhead. *)

let table5 (m : Runner.matrix) : string =
  let ratios = ref [] in
  let rows =
    List.map
      (fun (s : Subjects.Subject.t) ->
        let prog = Subjects.Subject.program s in
        let prepared = Vm.Interp.prepare prog in
        let cell = Runner.cell m ~subject:s.name ~fuzzer:"pcguard" in
        let corpus =
          match cell.runs with
          | r :: _ -> s.seeds @ r.final_queue
          | [] -> s.seeds
        in
        let blocks = ref 0 and edges = ref 0 and acts = ref 0 in
        let hooks =
          {
            Vm.Interp.no_hooks with
            h_call = (fun _ -> incr acts);
            h_block = (fun _ _ -> incr blocks);
            h_edge = (fun _ _ _ -> incr edges);
            h_ret = (fun _ _ -> incr acts);
          }
        in
        List.iter
          (fun input -> ignore (Vm.Interp.run_prepared ~hooks prepared ~input))
          corpus;
        let c_edge = !blocks in
        let c_path = !edges + !acts in
        let ratio =
          if c_edge > 0 then float_of_int c_path /. float_of_int c_edge
          else nan
        in
        ratios := ratio :: !ratios;
        [ s.name; Render.i c_edge; Render.i c_path; Render.f2 ratio ])
      m.subjects
  in
  let total = [ "GEOMEAN"; ""; ""; Render.f2 (geomean !ratios) ] in
  Render.table
    ~title:
      "Table V (Appendix A): queue processing cost (probe events), pcguard \
       vs path instrumentation"
    ~header:[ "Benchmark"; "pcguard"; "path"; "path/pcguard" ]
    ~rows:(rows @ [ total ])

(* ------------------------------------------------------------------ *)
(* Table VI (Appendix B): median unique bugs per fuzzer + pairwise medians. *)

let table6 (m : Runner.matrix) : string =
  let fuzzers = [ "path"; "pcguard"; "cull"; "opp" ] in
  let med l = Fuzz.Stats.median_int l in
  let rows =
    List.map
      (fun subject ->
        let per f = Runner.per_trial_bugs (Runner.cell m ~subject ~fuzzer:f) in
        let m_of f =
          Render.f1 (med (List.map Bug_set.cardinal (per f)))
        in
        (* median of per-trial pairwise values, pairing trial i with trial i *)
        let pairwise op a b =
          let la = per a and lb = per b in
          Render.f1 (med (List.map2 (fun x y -> op x y) la lb))
        in
        [ subject ]
        @ List.map m_of fuzzers
        @ [
            pairwise inter "path" "pcguard";
            pairwise inter "cull" "pcguard";
            pairwise inter "opp" "pcguard";
            pairwise diff "path" "pcguard";
            pairwise diff "pcguard" "path";
            pairwise diff "cull" "pcguard";
            pairwise diff "opp" "pcguard";
          ])
      (subj_names m)
  in
  Render.table
    ~title:"Table VI (Appendix B): median unique bugs across trials"
    ~header:
      [
        "Benchmark"; "path"; "pcguard"; "cull"; "opp"; "pa^pc"; "cu^pc"; "op^pc";
        "pa\\pc"; "pc\\pa"; "cu\\pc"; "op\\pc";
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Table VII (Appendix C): our path-aware fuzzers vs PathAFL. *)

let table7 (m : Runner.matrix) : string =
  let totals = Hashtbl.create 16 in
  let add k v =
    Hashtbl.replace totals k (v + Option.value ~default:0 (Hashtbl.find_opt totals k))
  in
  let rows =
    List.map
      (fun subject ->
        let b f = bugs m ~subject ~fuzzer:f in
        let count f =
          let n = Bug_set.cardinal (b f) in
          add f n;
          Render.i n
        in
        let pair k v = add k v; Render.i v in
        [ subject ]
        @ List.map count [ "path"; "pathafl"; "cull"; "opp" ]
        @ [
            pair "path^pathafl" (inter (b "path") (b "pathafl"));
            pair "cull^pathafl" (inter (b "cull") (b "pathafl"));
            pair "opp^pathafl" (inter (b "opp") (b "pathafl"));
            pair "path\\pathafl" (diff (b "path") (b "pathafl"));
            pair "pathafl\\path" (diff (b "pathafl") (b "path"));
            pair "cull\\pathafl" (diff (b "cull") (b "pathafl"));
            pair "pathafl\\cull" (diff (b "pathafl") (b "cull"));
            pair "opp\\pathafl" (diff (b "opp") (b "pathafl"));
            pair "pathafl\\opp" (diff (b "pathafl") (b "opp"));
          ])
      (subj_names m)
  in
  let total_row =
    [ "TOTAL" ]
    @ List.map
        (fun k -> Render.i (Option.value ~default:0 (Hashtbl.find_opt totals k)))
        [
          "path"; "pathafl"; "cull"; "opp"; "path^pathafl"; "cull^pathafl";
          "opp^pathafl"; "path\\pathafl"; "pathafl\\path"; "cull\\pathafl";
          "pathafl\\cull"; "opp\\pathafl"; "pathafl\\opp";
        ]
  in
  Render.table ~title:"Table VII (Appendix C): unique bugs, ours vs PathAFL"
    ~header:
      [
        "Benchmark"; "path"; "pathafl"; "cull"; "opp"; "pa^pf"; "cu^pf"; "op^pf";
        "pa\\pf"; "pf\\pa"; "cu\\pf"; "pf\\cu"; "op\\pf"; "pf\\op";
      ]
    ~rows:(rows @ [ total_row ])

(* ------------------------------------------------------------------ *)
(* Table VIII: PathAFL vs AFL unique bugs. *)

let table8 (m : Runner.matrix) : string =
  let t_pf = ref 0 and t_afl = ref 0 and t_i = ref 0 and t_d1 = ref 0 and t_d2 = ref 0 in
  let rows =
    List.map
      (fun subject ->
        let pf = bugs m ~subject ~fuzzer:"pathafl" in
        let afl = bugs m ~subject ~fuzzer:"afl" in
        let i = inter pf afl and d1 = diff pf afl and d2 = diff afl pf in
        t_pf := !t_pf + Bug_set.cardinal pf;
        t_afl := !t_afl + Bug_set.cardinal afl;
        t_i := !t_i + i;
        t_d1 := !t_d1 + d1;
        t_d2 := !t_d2 + d2;
        [
          subject;
          Render.i (Bug_set.cardinal pf);
          Render.i (Bug_set.cardinal afl);
          Render.i i;
          Render.i d1;
          Render.i d2;
        ])
      (subj_names m)
  in
  let total =
    [ "TOTAL"; Render.i !t_pf; Render.i !t_afl; Render.i !t_i; Render.i !t_d1;
      Render.i !t_d2 ]
  in
  Render.table ~title:"Table VIII (Appendix C): unique bugs, PathAFL vs AFL"
    ~header:
      [ "Benchmark"; "pathafl"; "afl"; "pathafl^afl"; "pathafl\\afl"; "afl\\pathafl" ]
    ~rows:(rows @ [ total ])

(* ------------------------------------------------------------------ *)
(* Table IX: crashes and unique crashes, PathAFL vs AFL, under both
   deduplication notions (AFL's coverage-novelty and stack-hash top-5). *)

let table9 (m : Runner.matrix) : string =
  let sums = Array.make 4 0 in
  let rows =
    List.map
      (fun subject ->
        let c f = Runner.cell m ~subject ~fuzzer:f in
        let vals =
          [
            Runner.afl_unique_crashes (c "pathafl");
            Runner.cumulative_unique_crashes (c "pathafl");
            Runner.afl_unique_crashes (c "afl");
            Runner.cumulative_unique_crashes (c "afl");
          ]
        in
        List.iteri (fun i v -> sums.(i) <- sums.(i) + v) vals;
        subject :: List.map Render.i vals)
      (subj_names m)
  in
  let total = "TOTAL" :: List.map Render.i (Array.to_list sums) in
  Render.table
    ~title:
      "Table IX (Appendix C): crash dedup notions — AFL coverage-novel \
       crashes vs stack-hash unique crashes"
    ~header:
      [
        "Benchmark"; "pathafl (afl-uniq)"; "pathafl (stack5)"; "afl (afl-uniq)";
        "afl (stack5)";
      ]
    ~rows:(rows @ [ total ])

(* ------------------------------------------------------------------ *)
(* Table X (Appendix D): random-culling ablation. *)

let table10 (m : Runner.matrix) : string =
  let totals = Hashtbl.create 16 in
  let add k v =
    Hashtbl.replace totals k (v + Option.value ~default:0 (Hashtbl.find_opt totals k))
  in
  let rows =
    List.map
      (fun subject ->
        let b f = bugs m ~subject ~fuzzer:f in
        let count f =
          let n = Bug_set.cardinal (b f) in
          add f n;
          Render.i n
        in
        let pair k v = add k v; Render.i v in
        [ subject ]
        @ List.map count [ "path"; "cull_r"; "cull" ]
        @ [
            pair "path^cull_r" (inter (b "path") (b "cull_r"));
            pair "cull^cull_r" (inter (b "cull") (b "cull_r"));
            pair "path\\cull_r" (diff (b "path") (b "cull_r"));
            pair "cull_r\\path" (diff (b "cull_r") (b "path"));
            pair "cull\\cull_r" (diff (b "cull") (b "cull_r"));
            pair "cull_r\\cull" (diff (b "cull_r") (b "cull"));
          ])
      (subj_names m)
  in
  let total_row =
    [ "TOTAL" ]
    @ List.map
        (fun k -> Render.i (Option.value ~default:0 (Hashtbl.find_opt totals k)))
        [
          "path"; "cull_r"; "cull"; "path^cull_r"; "cull^cull_r"; "path\\cull_r";
          "cull_r\\path"; "cull\\cull_r"; "cull_r\\cull";
        ]
  in
  Render.table ~title:"Table X (Appendix D): culling-with-random-selection ablation"
    ~header:
      [
        "Benchmark"; "path"; "cull_r"; "cull"; "pa^cr"; "cu^cr"; "pa\\cr";
        "cr\\pa"; "cu\\cr"; "cr\\cu";
      ]
    ~rows:(rows @ [ total_row ])

(* ------------------------------------------------------------------ *)
(* Figure 1: the motivating example's CFG with Ball-Larus increments. *)

let fig1 () : string =
  let prog = Subjects.Subject.program Subjects.Motivating.subject in
  let foo = Minic.Ir.func_exn prog "foo" in
  let plan = Pathcov.Ball_larus.of_func foo in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "\nFigure 1: motivating example, path identification machinery\n";
  Buffer.add_string buf "------------------------------------------------------------\n";
  Buffer.add_string buf (Fmt.str "%a\n" Minic.Pretty.pp_func foo);
  Buffer.add_string buf
    (Printf.sprintf "\nacyclic paths: %d, instrumented transitions (probes): %d\n"
       plan.num_paths plan.probes);
  Buffer.add_string buf "edge increments (Ball-Larus values on DAG edges):\n";
  Array.iter
    (fun (e : Pathcov.Ball_larus.edge) ->
      if e.kind <> Pathcov.Ball_larus.Back && e.value <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "  L%d -> %s : +%d\n" e.src
             (if e.dst = plan.nblocks then "EXIT" else "L" ^ string_of_int e.dst)
             e.value))
    plan.edges;
  Buffer.add_string buf "\npath id -> block sequence:\n";
  List.iter
    (fun (id, nodes) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d: %s\n" id
           (String.concat " -> "
              (List.map
                 (fun n -> if n = plan.nblocks then "EXIT" else "L" ^ string_of_int n)
                 nodes))))
    (Pathcov.Ball_larus.enumerate plan);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Figure 2: queue growth over time per technique, on one subject. *)

let fig2_series ?(subject = "gdk") (m : Runner.matrix) : string =
  (* Partial matrices (tests, ad-hoc runs) may not contain the paper's
     showcase subject; fall back to the first subject present. *)
  let subject =
    if
      List.exists
        (fun (s : Subjects.Subject.t) -> s.name = subject)
        m.subjects
    then subject
    else
      match m.subjects with s :: _ -> s.name | [] -> subject
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "\nFigure 2: queue size over time (%s, trial 1) — execs: queue per \
        technique\n"
       subject);
  Buffer.add_string buf "----------------------------------------------------------\n";
  List.iter
    (fun fuzzer ->
      match (Runner.cell m ~subject ~fuzzer).runs with
      | r :: _ ->
          Buffer.add_string buf (Printf.sprintf "%-8s " fuzzer);
          List.iter
            (fun (x, q) -> Buffer.add_string buf (Printf.sprintf "%d:%d " x q))
            r.queue_series;
          Buffer.add_char buf '\n'
      | [] -> ())
    [ "path"; "pcguard"; "cull"; "opp" ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

(** Render everything, in paper order. *)
let all (m : Runner.matrix) : string =
  String.concat "\n"
    [
      fig1 ();
      table1 m;
      table2 m;
      fig3_venn m;
      table3 m;
      table4 m;
      table5 m;
      table6 m;
      table7 m;
      table8 m;
      table9 m;
      table10 m;
      fig2_series m;
    ]
