(** Benchmark trend history: dated execs/sec cells accumulated across
    PRs in a checked-in [BENCH_history.jsonl], appended by
    [pathfuzz bench-history] from the current [BENCH_throughput.json] /
    [BENCH_campaign.json] and checked for regressions against the
    trailing window.

    [BENCH_throughput.json] and [BENCH_campaign.json] each hold one
    measurement plus one embedded baseline — a trajectory of length two.
    The history file is the long axis: one JSONL row per (date, source)
    with the per-(subject, mode) execs/sec cells of that day's bench, so
    the perf story survives arbitrarily many regenerations of the
    snapshot files.

    Like the rest of the repo's JSON handling, parsing is a
    format-anchored scan of our own writers' output (the
    {!Throughput.extract_cells} idiom), not a general JSON parser. *)

type cell = {
  subject : string;
  mode : string;
  shards : int;
      (** sharded-campaign width; 0 = the unsharded sequential loop
          (also the schema-tolerant default for pre-sharding history
          lines, so legacy cells and [--shards 1] cells never collide) *)
  engine : string;
      (** execution engine of the measurement ("interp", "compiled",
          "selective"); the schema-tolerant default for pre-engine
          history lines is "interp", which is what those lines measured *)
  execs_per_sec : float;
}

type row = {
  date : string;  (** YYYY-MM-DD *)
  source : string;  (** "throughput" or "campaign" *)
  label : string;  (** free-form tag, e.g. a PR name *)
  machine : string;
      (** host fingerprint ("nproc=N ocaml=V"); "" on pre-machine lines.
          Recorded so cross-host rate jumps in the trend are explicable;
          deliberately not part of the regression-check key *)
  cells : cell list;
}

(* ------------------------------------------------------------------ *)
(* Field scanning *)

(* Find [pat] in [s] at or after [from]. *)
let find_sub (s : string) ~(from : int) (pat : string) : int option =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  if from < 0 then None else go from

let string_field (obj : string) (key : string) : string option =
  match find_sub obj ~from:0 (Printf.sprintf "\"%s\": \"" key) with
  | None -> None
  | Some i -> (
      let start = i + String.length key + 5 in
      match String.index_from_opt obj start '"' with
      | None -> None
      | Some stop -> Some (String.sub obj start (stop - start)))

let float_field (obj : string) (key : string) : float option =
  match find_sub obj ~from:0 (Printf.sprintf "\"%s\": " key) with
  | None -> None
  | Some i ->
      let start = i + String.length key + 4 in
      let stop = ref start in
      let n = String.length obj in
      while
        !stop < n
        && (match obj.[!stop] with
           | ',' | '}' | ']' | ' ' | '\n' -> false
           | _ -> true)
      do
        incr stop
      done;
      float_of_string_opt (String.sub obj start (!stop - start))

let int_field (obj : string) (key : string) : int option =
  match float_field obj key with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

(* Parse every flat {...} object at or after [from] into a cell;
   malformed objects are skipped. *)
let cells_of_string ?(from = 0) (s : string) : cell list =
  let rec go i acc =
    match String.index_from_opt s i '{' with
    | None -> List.rev acc
    | Some o -> (
        match String.index_from_opt s o '}' with
        | None -> List.rev acc
        | Some c ->
            let obj = String.sub s o (c - o + 1) in
            let acc =
              match
                ( string_field obj "subject",
                  string_field obj "mode",
                  float_field obj "execs_per_sec" )
              with
              | Some subject, Some mode, Some execs_per_sec ->
                  (* "shards" appeared with the sharded-campaign bench,
                     "engine" with staged compilation; older lines
                     simply lack them *)
                  let shards =
                    Option.value ~default:0 (int_field obj "shards")
                  in
                  let engine =
                    Option.value ~default:"interp" (string_field obj "engine")
                  in
                  { subject; mode; shards; engine; execs_per_sec } :: acc
              | _ -> acc
            in
            go (c + 1) acc)
  in
  if from >= String.length s then [] else go from []

(* ------------------------------------------------------------------ *)
(* Reading *)

(** The current cells of a BENCH_*.json file ([None] if the file or its
    "cells" block is missing). *)
let cells_of_bench (path : string) : cell list option =
  match Throughput.extract_cells ~key:"cells" path with
  | None -> None
  | Some raw -> Some (cells_of_string raw)

let row_of_line (line : string) : row option =
  match
    ( string_field line "schema",
      string_field line "date",
      string_field line "source" )
  with
  | Some "pathfuzz-history/v1", Some date, Some source ->
      let label = Option.value ~default:"" (string_field line "label") in
      let machine = Option.value ~default:"" (string_field line "machine") in
      let cells =
        match find_sub line ~from:0 "\"cells\": [" with
        | None -> []
        | Some i -> cells_of_string ~from:i line
      in
      Some { date; source; label; machine; cells }
  | _ -> None

(** Load a history file, oldest row first. Unparseable lines are
    ignored, so a hand-edited file degrades soft. Missing file = []. *)
let load (path : string) : row list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rows = ref [] in
    (try
       while true do
         match row_of_line (input_line ic) with
         | Some r -> rows := r :: !rows
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !rows
  end

(* ------------------------------------------------------------------ *)
(* Writing *)

let row_to_jsonl (r : row) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\": \"pathfuzz-history/v1\", \"date\": %S, \"source\": %S, \
        \"label\": %S, \"machine\": %S, \"cells\": ["
       r.date r.source r.label r.machine);
  List.iteri
    (fun i (c : cell) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"subject\": %S, \"mode\": %S, \"shards\": %d, \"engine\": %S, \
            \"execs_per_sec\": %s}"
           c.subject c.mode c.shards c.engine
           (Throughput.json_float c.execs_per_sec)))
    r.cells;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(** Append [row] as one JSONL line. *)
let append (path : string) (r : row) : unit =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (row_to_jsonl r);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Regression check *)

type regression = {
  key : string;
      (** "subject/mode", with "@sN" appended for sharded cells and
          "@engine" for non-interp engines *)
  baseline : float;  (** trailing-window mean execs/sec *)
  current : float;
  drop_pct : float;  (** positive = slower than baseline *)
}

(** Compare [candidate]'s cells against the trailing [window] rows of
    the same source in [history]. A cell regresses when its execs/sec
    falls more than [threshold_pct] percent below the window mean; cells
    with no history are skipped (first appearance of a subject or
    mode). Wall-clock rates are noisy, so the caller picks a threshold
    well above host jitter (default 20%). *)
let check ?(window = 4) ~threshold_pct (history : row list) (candidate : row) :
    regression list =
  let trailing =
    let same = List.filter (fun r -> r.source = candidate.source) history in
    let n = List.length same in
    List.filteri (fun i _ -> i >= n - window) same
  in
  List.filter_map
    (fun (c : cell) ->
      let past =
        List.filter_map
          (fun r ->
            List.find_opt
              (fun (p : cell) ->
                p.subject = c.subject && p.mode = c.mode
                && p.shards = c.shards && p.engine = c.engine)
              r.cells)
          trailing
      in
      match past with
      | [] -> None
      | _ ->
          let mean =
            List.fold_left (fun a p -> a +. p.execs_per_sec) 0. past
            /. float_of_int (List.length past)
          in
          if mean > 0. && c.execs_per_sec < mean *. (1. -. (threshold_pct /. 100.))
          then
            Some
              {
                key =
                  c.subject ^ "/" ^ c.mode
                  ^ (if c.shards > 0 then Printf.sprintf "@s%d" c.shards
                     else "")
                  ^ (if c.engine <> "interp" then "@" ^ c.engine else "");
                baseline = mean;
                current = c.execs_per_sec;
                drop_pct = 100. *. (1. -. (c.execs_per_sec /. mean));
              }
          else None)
    candidate.cells

(* ------------------------------------------------------------------ *)
(* Rendering *)

let geo_mean (cells : cell list) : float =
  let pos = List.filter (fun c -> c.execs_per_sec > 0.) cells in
  match pos with
  | [] -> 0.
  | _ ->
      exp
        (List.fold_left (fun a c -> a +. log c.execs_per_sec) 0. pos
        /. float_of_int (List.length pos))

(** One line per history row: the trend at a glance. *)
let to_table (rows : row list) : string =
  let header = [ "date"; "source"; "label"; "cells"; "gmean execs/s" ] in
  let render (r : row) =
    [
      r.date;
      r.source;
      (if r.label = "" then "-" else r.label);
      string_of_int (List.length r.cells);
      Printf.sprintf "%.0f" (geo_mean r.cells);
    ]
  in
  Render.table ~title:"Bench history (execs/sec trend)" ~header
    ~rows:(List.map render rows)

let regressions_report (regs : regression list) : string =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf
           "REGRESSION %s: %.0f execs/s vs trailing mean %.0f (-%.1f%%)" r.key
           r.current r.baseline r.drop_pct)
       regs)
