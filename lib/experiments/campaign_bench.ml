(** Campaign-level throughput telemetry: the fuzzer-side companion to
    {!Throughput}.

    [Throughput] measures the bare execution hot path (reset, run,
    classify) — the VM's share of the budget. This module measures what a
    campaign actually buys per second: full [Fuzz.Campaign.run] loops per
    (subject x feedback mode), including mutation, queue scheduling,
    novelty merging and triage. Alongside execs/sec and minor-words/exec
    it reports the mutation-vs-VM wall-clock split (via the campaign's
    telemetry clock) and the mutation layer's own minor-words per
    candidate — the two numbers the scratch-buffer mutation engine and
    the indexed corpus are accountable to. Results render as the
    [BENCH_campaign.json] baseline (schema pathfuzz-campaign/v1).

    Campaigns are deterministic (fixed rng_seed), so the work per cell —
    and therefore queue size, havocs and minor-words — is reproducible;
    only the wall-clock rates vary across hosts. *)

type sample = {
  subject : string;
  mode : string;  (** feedback mode name *)
  shards : int;
      (** sharded-campaign width; 0 = the unsharded sequential loop *)
  budget : int;  (** configured execution budget *)
  execs : int;  (** executions actually performed *)
  queue : int;  (** final queue size *)
  havocs : int;  (** mutated candidates generated *)
  wall_s : float;
  execs_per_sec : float;
  minor_words_per_exec : float;  (** whole campaign loop *)
  mut_frac : float;  (** share of wall-clock inside the mutator *)
  vm_frac : float;  (** share of wall-clock inside the VM *)
  mut_minor_words_per_cand : float;  (** mutator minor words per candidate *)
}

(** The measured feedback ladder (campaigns need a listener, so there is
    no "none" row here; cmplog is on everywhere, as in the paper). *)
let modes : (string * Pathcov.Feedback.mode) list =
  [
    ("block", Pathcov.Feedback.Block);
    ("edge", Pathcov.Feedback.Edge);
    ("path", Pathcov.Feedback.Path);
    ("pathafl", Pathcov.Feedback.Pathafl);
  ]

(* One campaign cell: a full deterministic Campaign.run under the
   telemetry clock, bracketed by GC and wall-clock counters. Program
   compilation and Ball-Larus planning happen outside the bracket. *)
let measure ~budget ~(mode : Pathcov.Feedback.mode) (s : Subjects.Subject.t) :
    sample =
  let prog = Subjects.Subject.compile_fresh s in
  let plans = Pathcov.Ball_larus.of_program prog in
  let config =
    { Fuzz.Campaign.default_config with mode; budget; rng_seed = 1 }
  in
  let obs = Obs.Observer.create ~clock:Unix.gettimeofday () in
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = Fuzz.Campaign.run ~plans ~obs ~config prog ~seeds:s.seeds in
  let wall_s = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  let frac x = if wall_s > 0. then x /. wall_s else 0. in
  (* mut/vm split re-sourced from the engine-metrics registry the
     campaign harvests at budget exhaustion (the observer is private to
     this cell, so the cumulative walls are this run's) *)
  let vm_s = Obs.Metrics.wall_value obs.metrics "campaign.vm_s" in
  let mut_s = Obs.Metrics.wall_value obs.metrics "campaign.mut_s" in
  {
    subject = s.name;
    mode = Pathcov.Feedback.mode_name mode;
    shards = 0;
    budget;
    execs = r.execs;
    queue = Fuzz.Corpus.size r.corpus;
    havocs = r.havocs;
    wall_s;
    execs_per_sec =
      (if wall_s > 0. then float_of_int r.execs /. wall_s else 0.);
    minor_words_per_exec = mw /. float_of_int (max 1 r.execs);
    mut_frac = frac mut_s;
    vm_frac = frac vm_s;
    mut_minor_words_per_cand =
      r.mut_minor_words /. float_of_int (max 1 r.havocs);
  }

(** Measure the full (subject x mode) grid. *)
let grid ~budget (subjects : Subjects.Subject.t list) : sample list =
  List.concat_map
    (fun s -> List.map (fun (_, m) -> measure ~budget ~mode:m s) modes)
    subjects

(* ------------------------------------------------------------------ *)
(* Sharded campaigns *)

(** Everything the sharded determinism contract promises to hold fixed
    across shard counts, condensed per cell: merged coverage-map bytes,
    crash-virgin bytes, queue contents and the crash set. *)
type fingerprint = {
  virgin_hash : int;  (** FNV-1a over the merged virgin map's bytes *)
  crash_virgin_hash : int;
  queue_size : int;
  queue_hash : int;  (** over queue inputs, in discovery order *)
  total_crashes : int;
  stack_hashes : int list;  (** stack-unique crash identities, sorted *)
}

let fingerprint_of (r : Fuzz.Shard.result) : fingerprint =
  let queue_hash =
    List.fold_left
      (fun h input -> (h * 1_000_003) lxor Hashtbl.hash input)
      0x811c9dc5
      (Fuzz.Campaign.queue_inputs r.campaign)
  in
  {
    virgin_hash = Pathcov.Coverage_map.bytes_hash r.virgin;
    crash_virgin_hash = Pathcov.Coverage_map.bytes_hash r.crash_virgin;
    queue_size = Fuzz.Corpus.size r.campaign.corpus;
    queue_hash;
    total_crashes = r.campaign.triage.total_crashes;
    stack_hashes =
      Hashtbl.fold (fun k _ acc -> k :: acc) r.campaign.triage.by_stack []
      |> List.sort compare;
  }

(** One sharded campaign cell under the telemetry clock — the sharded
    twin of {!measure}, plus the determinism fingerprint the bench
    compares across shard counts. *)
let measure_sharded ~budget ~shards ~sync_interval
    ~(mode : Pathcov.Feedback.mode) (s : Subjects.Subject.t) :
    sample * fingerprint =
  let prog = Subjects.Subject.compile_fresh s in
  let plans = Pathcov.Ball_larus.of_program prog in
  let cfg =
    {
      Fuzz.Shard.base =
        { Fuzz.Campaign.default_config with mode; budget; rng_seed = 1 };
      shards;
      sync_interval;
    }
  in
  let obs = Obs.Observer.create ~clock:Unix.gettimeofday () in
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = Fuzz.Shard.run ~plans ~obs cfg prog ~seeds:s.seeds in
  let wall_s = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  let c = r.campaign in
  let frac x = if wall_s > 0. then x /. wall_s else 0. in
  let vm_s = Obs.Metrics.wall_value obs.metrics "campaign.vm_s" in
  let mut_s = Obs.Metrics.wall_value obs.metrics "campaign.mut_s" in
  ( {
      subject = s.name;
      mode = Pathcov.Feedback.mode_name mode;
      shards;
      budget;
      execs = c.execs;
      queue = Fuzz.Corpus.size c.corpus;
      havocs = c.havocs;
      wall_s;
      execs_per_sec = (if wall_s > 0. then float_of_int c.execs /. wall_s else 0.);
      minor_words_per_exec = mw /. float_of_int (max 1 c.execs);
      mut_frac = frac mut_s;
      vm_frac = frac vm_s;
      mut_minor_words_per_cand =
        c.mut_minor_words /. float_of_int (max 1 c.havocs);
    },
    fingerprint_of r )

(** The sharded (subject x mode) grid at one shard count. Allocation per
    exec is measured on the coordinating domain only ([Gc.minor_words]
    is domain-local), so that column understates multi-domain runs —
    the execs/sec and determinism columns are the ones this grid is
    for. *)
let shard_grid ~budget ~shards ~sync_interval
    (subjects : Subjects.Subject.t list) : (sample * fingerprint) list =
  List.concat_map
    (fun s ->
      List.map
        (fun (_, m) -> measure_sharded ~budget ~shards ~sync_interval ~mode:m s)
        modes)
    subjects

(** Geometric mean of per-cell execs/sec ratios (sample lists must be
    the same grid in the same order). *)
let speedup_geomean ~(base : sample list) (samples : sample list) : float =
  let ratios =
    List.filter_map
      (fun (b, s) ->
        if b.execs_per_sec > 0. && s.execs_per_sec > 0. then
          Some (s.execs_per_sec /. b.execs_per_sec)
        else None)
      (List.combine base samples)
  in
  match ratios with
  | [] -> 0.
  | _ ->
      exp
        (List.fold_left (fun a r -> a +. log r) 0. ratios
        /. float_of_int (List.length ratios))

(* ------------------------------------------------------------------ *)
(* Rendering *)

let json_float = Throughput.json_float

let sample_json buf (s : sample) =
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"subject\": %S, \"mode\": %S, \"shards\": %d, \"budget\": %d, \
        \"execs\": %d, \"queue\": %d, \"havocs\": %d, \"wall_s\": %s, \
        \"execs_per_sec\": %s, \"minor_words_per_exec\": %s, \"mut_frac\": \
        %s, \"vm_frac\": %s, \"mut_minor_words_per_cand\": %s}"
       s.subject s.mode s.shards s.budget s.execs s.queue s.havocs
       (json_float s.wall_s)
       (json_float s.execs_per_sec)
       (json_float s.minor_words_per_exec)
       (json_float s.mut_frac) (json_float s.vm_frac)
       (json_float s.mut_minor_words_per_cand))

(** Render the [BENCH_campaign.json] document (pathfuzz-campaign/v1).
    [baseline_raw] re-embeds a previously rendered cell block verbatim
    (see {!Throughput.extract_cells}) so the file records the perf
    trajectory, not just the endpoint. *)
let to_json ?(note = "") ?baseline_raw (samples : sample list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"pathfuzz-campaign/v1\",\n";
  if note <> "" then
    Buffer.add_string buf (Printf.sprintf "  \"note\": %S,\n" note);
  Buffer.add_string buf "  \"cells\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      sample_json buf s)
    samples;
  Buffer.add_string buf "\n  ]";
  (match baseline_raw with
  | Some raw when raw <> "" ->
      Buffer.add_string buf ",\n  \"baseline_cells\": [\n";
      Buffer.add_string buf raw;
      Buffer.add_string buf "\n  ]"
  | _ -> ());
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(** Human-readable table (the bench hook and [--smoke] output). *)
let to_table (samples : sample list) : string =
  let header =
    [
      "subject";
      "mode";
      "shards";
      "execs/s";
      "minor w/exec";
      "mut%";
      "vm%";
      "mut w/cand";
    ]
  in
  let rows =
    List.map
      (fun s ->
        [
          s.subject;
          s.mode;
          (if s.shards = 0 then "-" else string_of_int s.shards);
          Printf.sprintf "%.0f" s.execs_per_sec;
          Printf.sprintf "%.1f" s.minor_words_per_exec;
          Printf.sprintf "%.1f" (100. *. s.mut_frac);
          Printf.sprintf "%.1f" (100. *. s.vm_frac);
          Printf.sprintf "%.1f" s.mut_minor_words_per_cand;
        ])
      samples
  in
  Render.table ~title:"Campaign throughput (full fuzzing loop)" ~header ~rows
