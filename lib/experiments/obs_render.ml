(** Text rendering for the observability layer: the [pathfuzz stats]
    tables over an {!Obs.Observer.t}'s counter block, snapshot log and
    retained events, plus the JSONL dump. Pure formatting — nothing here
    touches a live campaign. *)

(** The [fuzzer_stats]-style counters table. Wall-split floats appear
    only when a clock was installed (they are identically 0 otherwise,
    and [pathfuzz stats] runs unclocked so its output is deterministic). *)
let counters_table ?(with_wall = false) (c : Obs.Counters.t) : string =
  let rows =
    List.map (fun (k, v) -> [ k; string_of_int v ]) (Obs.Counters.to_fields c)
  in
  let rows =
    if with_wall then
      rows
      @ [
          [ "vm_s"; Printf.sprintf "%.3f" c.vm_s ];
          [ "mut_s"; Printf.sprintf "%.3f" c.mut_s ];
          [ "mut_minor_words"; Printf.sprintf "%.0f" c.mut_minor_words ];
        ]
    else rows
  in
  Render.table ~title:"Campaign counters (fuzzer_stats analogue)"
    ~header:[ "counter"; "value" ] ~rows

(** The snapshot trajectory table (the [plot_data] analogue). *)
let snapshots_table (rows : Obs.Snapshot.row list) : string =
  let header =
    [
      "at_exec";
      "queue";
      "favored";
      "pending";
      "cycles";
      "retained";
      "crashes";
      "uniq";
      "novel";
      "hangs";
      "virgin";
    ]
  in
  let render (r : Obs.Snapshot.row) =
    [
      string_of_int r.at_exec;
      string_of_int r.queue;
      string_of_int r.favored;
      string_of_int r.pending_favored;
      string_of_int r.cycles;
      string_of_int r.retained;
      string_of_int r.crashes;
      string_of_int r.crashes_stack_unique;
      string_of_int r.crashes_cov_novel;
      string_of_int r.hangs;
      string_of_int r.virgin_residual;
    ]
  in
  Render.table ~title:"Snapshots (plot_data analogue)" ~header
    ~rows:(List.map render rows)

(** The retained-events table ([limit] newest; a ring sink already
    bounds what we hold). Snapshot events are omitted — they have their
    own table. *)
let events_table ?(limit = 40) (events : Obs.Event.t list) : string =
  let events =
    List.filter
      (function Obs.Event.Snapshot _ -> false | _ -> true)
      events
  in
  let n = List.length events in
  let events =
    (* keep the newest [limit] without losing discovery order *)
    if n <= limit then events
    else List.filteri (fun i _ -> i >= n - limit) events
  in
  let render e =
    let at = Obs.Event.at_exec e in
    [
      (if at < 0 then "-" else string_of_int at);
      Obs.Event.name e;
      Obs.Event.detail e;
    ]
  in
  let title =
    if n > limit then
      Printf.sprintf "Events (newest %d of %d retained)" limit n
    else "Events"
  in
  (* detail is free-form prose: left-align it by making it the last of
     exactly three columns and padding manually via Render.table *)
  Render.table ~title ~header:[ "at_exec"; "event"; "detail" ]
    ~rows:(List.map render events)

(** Dump snapshots and events as JSONL onto [oc] (events already include
    snapshot rows when they came through a recording sink; this helper
    writes exactly what it is given, in order). *)
let dump_jsonl (oc : out_channel) (events : Obs.Event.t list) : unit =
  List.iter
    (fun e ->
      output_string oc (Obs.Event.to_jsonl e);
      output_char oc '\n')
    events
