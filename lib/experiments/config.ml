(** Experiment-scale knobs. The paper fuzzes 18 subjects x 4-7 fuzzers x 10
    trials x 48 hours; we keep the same matrix shape but measure budgets in
    executions so runs are deterministic and CI-sized. Environment
    overrides: PATHCOV_BUDGET (execs per run), PATHCOV_TRIALS,
    PATHCOV_ROUNDS (culling rounds), PATHCOV_FAST=1 (smoke-test scale),
    PATHFUZZ_JOBS (worker domains for the matrix runner). *)

type t = {
  budget : int;  (** executions per fuzzing run (stand-in for 48 h) *)
  trials : int;  (** runs per (subject, fuzzer) pair (paper: 10) *)
  cull_rounds : int;  (** culling windows per run (paper: 8 x 6 h) *)
  map_size_log2 : int;
  base_seed : int;  (** trial i uses rng seed [base_seed + i] *)
  jobs : int;
      (** worker domains fanning the experiment matrix out; the matrix is
          bit-identical at any value, so this is purely a wall-clock knob *)
}

let default =
  {
    budget = 24_000;
    trials = 5;
    cull_rounds = 3;
    map_size_log2 = 16;
    base_seed = 1;
    jobs = 1;
  }

let fast = { default with budget = 4_000; trials = 2 }

(* Invalid values are a configuration error, not a preference: silently
   falling back used to turn PATHFUZZ_JOBS=0 (or "four") into a
   single-worker run with no sign anything was ignored. *)
let env_int name fallback =
  match Sys.getenv_opt name with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n > 0 -> n
      | Some n ->
          Fmt.epr "pathfuzz: %s must be a positive integer, got %d@." name n;
          exit 2
      | None ->
          Fmt.epr "pathfuzz: %s must be a positive integer, got %S@." name v;
          exit 2)
  | None -> fallback

(** Resolve the configuration from the environment. *)
let of_env () =
  let base = if Sys.getenv_opt "PATHCOV_FAST" = Some "1" then fast else default in
  {
    base with
    budget = env_int "PATHCOV_BUDGET" base.budget;
    trials = env_int "PATHCOV_TRIALS" base.trials;
    cull_rounds = env_int "PATHCOV_ROUNDS" base.cull_rounds;
    jobs = env_int "PATHFUZZ_JOBS" base.jobs;
  }

(* [jobs] deliberately stays out of [pp]: the header line is printed with
   the rendered tables, which must be byte-identical at any worker count. *)
let pp fmt t =
  Fmt.pf fmt "budget=%d execs, trials=%d, cull_rounds=%d, map=2^%d" t.budget
    t.trials t.cull_rounds t.map_size_log2
