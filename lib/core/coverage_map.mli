(** AFL-style fixed-size coverage bitmap with hit-count bucketing and a
    touched-index journal (clear/classify/merge cost is proportional to
    the indices actually hit, not to the map size). *)

type t

(** Novelty verdict of {!merge_into}. *)
type novelty =
  | Nothing  (** nothing new *)
  | New_bucket  (** a known tuple reached a new hit-count bucket *)
  | New_tuple  (** a never-seen map index was hit *)

val default_size_log2 : int

(** Create an all-zero trace map of [2^size_log2] entries (4 ≤ n ≤ 24). *)
val create : ?size_log2:int -> unit -> t

(** Create an all-0xFF virgin map, written only through {!merge_into}. *)
val create_virgin : ?size_log2:int -> unit -> t

val size : t -> int

(** Reset all touched counts to zero. *)
val clear : t -> unit

(** Record one hit at an index (wrapped into range, saturating at 255). *)
val hit : t -> int -> unit

(** AFL's power-of-two count classification (1,2,3,4-7,8-15,...). *)
val bucket_of_count : int -> int

(** Replace raw counts by their bucket representative, in place. *)
val classify : t -> unit

(** Compare a classified trace against the virgin map, folding any novelty
    into the virgin map. Virgin semantics follow AFL: novelty means
    [trace land virgin <> 0] at some index. *)
val merge_into : virgin:t -> t -> novelty

(** Overwrite [dst]'s bytes with [src]'s (same size required) — the
    per-work-item virgin snapshot primitive of sharded campaigns: one
    blit re-seeds a shard's scratch virgin map from the epoch-start
    global map. *)
val copy_into : dst:t -> t -> unit

(** A detached copy of the raw map payload (checkpoint capture); pairs
    with {!restore_raw}. *)
val raw_bytes : t -> bytes

(** Overwrite the map with a captured {!raw_bytes} image (same size
    required) and reset the journal — the checkpoint restore half. *)
val restore_raw : t -> bytes -> unit

(** The merge half of {!merge_into} over a sparse (index, classified
    byte) capture instead of a live trace — sharded campaigns replay
    their shards' recorded discoveries against the shared virgin map in
    deterministic order at the sync barrier. *)
val merge_sparse_into : virgin:t -> idxs:int array -> vals:int array -> novelty

(** Would {!merge_sparse_into} report novelty? Pure — the virgin map is
    not written. Selective shard loops consult it before promoting a
    novelty signal to the permanently-seen set. *)
val sparse_would_merge : virgin:t -> idxs:int array -> vals:int array -> bool

(** Classified bytes of a trace at the given indices (pairs with
    {!sorted_indices} to form the sparse capture above). *)
val values_at : t -> int array -> int array

(** Byte-for-byte map equality (determinism checks). *)
val equal : t -> t -> bool

(** FNV-1a over the raw map bytes; unlike {!hash} it fingerprints virgin
    maps (whose journals are unused) as well as traces. *)
val bytes_hash : t -> int

(** Number of indices hit (AFL's [count_bytes]). *)
val count_set : t -> int

(** Indices hit, ascending, as a fresh array (the journal slice sorted
    in place — the allocation-lean form used on the fuzzer's retention
    path). *)
val sorted_indices : t -> int array

(** Indices hit, ascending (list wrapper over {!sorted_indices}, kept
    for renderers and tests). *)
val set_indices : t -> int list

(** [iteri_set f t] calls [f idx byte] for every touched index. *)
val iteri_set : (int -> int -> unit) -> t -> unit

val copy : t -> t

(** Raw byte at a (wrapped) map index — tests and diagnostics. *)
val get : t -> int -> int

(** Number of virgin-map indices still fully untouched (byte = 0xFF) —
    the "virgin bits residual" sampled into stats snapshots. Word-wise
    scan: cheap enough for a per-snapshot cadence, not for per-exec. *)
val residual : t -> int

(** Order-independent FNV-1a hash of the trace contents. *)
val hash : t -> int
