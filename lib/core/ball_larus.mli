(** The Ball–Larus acyclic-path encoding (Ball & Larus, MICRO'96), adapted
    as a fuzzer coverage feedback per §III–IV of the paper.

    Given a function CFG the pass converts it to a DAG (back edges are
    replaced by ENTRY/EXIT dummy edges), numbers the acyclic paths so that
    the sum of edge increments along any ENTRY→EXIT path is a unique ID in
    [0, num_paths), and emits a runtime plan: which CFG transitions add to
    the per-activation path register, and which commit a finished path.
    Probe placement is optionally minimised with a maximal-weight spanning
    tree; both placements commit identical IDs (property-tested). *)

(** Classification of DAG edges. *)
type edge_kind =
  | Real  (** an original CFG edge that is not a back edge *)
  | Back  (** an original back edge (excluded from the DAG) *)
  | Exit_real  (** return block → EXIT *)
  | Dummy_entry  (** ENTRY → loop header, standing in for a back edge *)
  | Dummy_exit  (** latch → EXIT, standing in for a back edge *)

type edge = {
  id : int;  (** dense edge identifier, unique within the function *)
  src : int;
  dst : int;  (** EXIT is node [nblocks] *)
  kind : edge_kind;
  mutable value : int;  (** Ball–Larus increment value *)
  mutable in_tree : bool;  (** spanning-tree membership *)
  mutable inc : int;  (** chord increment after probe placement *)
}

(** What the runtime must do when a CFG transition is traversed. *)
type edge_op =
  | Add of int  (** r <- r + k *)
  | Commit_back of { add : int; reset : int }
      (** count [r + add] as a finished path; r <- reset *)

(** The per-function instrumentation artifact. *)
type t = {
  fname : string;
  nblocks : int;
  num_paths : int;  (** number of distinct acyclic paths in the function *)
  edges : edge array;
  out_edges : edge list array;  (** DAG out-edges per node, deterministic order *)
  back_edges : (int * int) list;
  edge_ops : (int * int, edge_op) Hashtbl.t;
  ret_add : int array;  (** commit adjustment per return block *)
  probes : int;  (** number of CFG transitions carrying instrumentation *)
}

(** Raised when a function's CFG is irreducible (cannot happen for CFGs
    produced by the MiniC front-end, whose loops are structured). *)
exception Irreducible of string

(** Build the instrumentation plan for one function. [optimize] (default
    true) selects spanning-tree probe placement over the naive
    increment-on-every-valued-edge placement. *)
val of_func : ?optimize:bool -> Minic.Ir.func -> t

(** What to do when the CFG transition [src→dst] executes; [None] means
    the transition carries no probe. *)
val on_edge : t -> src:int -> dst:int -> edge_op option

(** Increment to add to the register when committing at return block. *)
val on_ret : t -> block:int -> int

(** Dense per-transition form of the plan for the execution hot path: the
    op for CFG transition [src→dst] lives at index [src * d_stride + dst],
    so an edge listener does two array loads per event instead of a
    hashtable probe that allocates an option. *)
type dense = {
  d_stride : int;
  d_tag : Bytes.t;  (** ['\000'] no probe, ['\001'] add, ['\002'] commit *)
  d_add : int array;
  d_reset : int array;
}

val dense : t -> dense

(** [regenerate t id] is the DAG node sequence of path [id] (Ball–Larus
    §3.4). Raises [Invalid_argument] when [id] is out of range. *)
val regenerate : t -> int -> int list

(** Like {!regenerate} but returning the DAG edges themselves, which are
    unique even when a dummy edge parallels a real one. *)
val regenerate_edges : t -> int -> edge list

(** All path IDs with their node sequences. Exponential in CFG size;
    intended for tests and examples on small functions. *)
val enumerate : t -> (int * int list) list

(** Whole-program artifact: one plan per function. *)
type program_plans = {
  plans : t array;  (** indexed by function index in the program *)
  total_paths : int;
  total_probes : int;
}

(** Run the pass over every function of a program. *)
val of_program : ?optimize:bool -> Minic.Ir.program -> program_plans
