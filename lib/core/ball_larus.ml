(** The Ball–Larus acyclic-path encoding (Ball & Larus, MICRO'96), adapted
    as a fuzzer coverage feedback per §III–IV of the paper.

    Given a function CFG, the pass:
    + finds loop back edges and converts the CFG to a DAG by replacing each
      back edge [v→w] with dummy edges [ENTRY→w] and [v→EXIT];
    + numbers acyclic paths: [num_paths EXIT = 1],
      [num_paths v = Σ num_paths (succ v)] in reverse topological order;
    + assigns each DAG edge an increment value such that the sum of values
      along any ENTRY→EXIT DAG path is a unique ID in [0, n);
    + optionally minimises probes by pushing increments off a maximal-weight
      spanning tree onto its chords (classic Ball–Larus event placement);
      the sum over chord increments along a path equals the sum over all
      edge values, so path IDs are unchanged (property-tested).

    At run time a per-activation register [r] starts at 0; real non-back
    edges add their increment; a back edge commits [r + add] as a completed
    path ID and resets [r]; a return commits [r + add]. The resulting plan
    is consumed by the VM's edge hooks — semantically identical to compiled
    instrumentation, with the placement decided entirely at "compile" time. *)

type edge_kind =
  | Real  (** an original CFG edge that is not a back edge *)
  | Back  (** an original back edge (excluded from the DAG) *)
  | Exit_real  (** return block → EXIT *)
  | Dummy_entry  (** ENTRY → header, standing in for a back edge *)
  | Dummy_exit  (** latch → EXIT, standing in for a back edge *)

type edge = {
  id : int;
  src : int;
  dst : int;  (** EXIT is node [nblocks] *)
  kind : edge_kind;
  mutable value : int;  (** Ball–Larus increment value *)
  mutable in_tree : bool;
  mutable inc : int;  (** chord increment after spanning-tree placement *)
}

(** What the runtime must do when a CFG edge (or return) is traversed. *)
type edge_op =
  | Add of int  (** r <- r + k *)
  | Commit_back of { add : int; reset : int }
      (** count (r + add) as a finished path; r <- reset *)

type t = {
  fname : string;
  nblocks : int;
  num_paths : int;  (** number of distinct acyclic paths in the function *)
  edges : edge array;
  out_edges : edge list array;  (** DAG out-edges per node, deterministic order *)
  back_edges : (int * int) list;
  (* Runtime plan, keyed on original CFG transitions. *)
  edge_ops : (int * int, edge_op) Hashtbl.t;
  ret_add : int array;  (** commit adjustment per return block *)
  probes : int;  (** number of CFG transitions carrying instrumentation *)
}

exception Irreducible of string

(* ------------------------------------------------------------------ *)
(* DAG construction *)

let build_dag (cfg : Minic.Cfg.t) fname =
  if not (Minic.Loops.reducible cfg) then
    raise (Irreducible fname);
  let n = Minic.Cfg.num_blocks cfg in
  let exit_node = n in
  let backs = Minic.Loops.back_edges cfg in
  let is_back v w = List.mem (v, w) backs in
  let edges = ref [] in
  let next_id = ref 0 in
  let add_edge src dst kind =
    let e = { id = !next_id; src; dst; kind; value = 0; in_tree = false; inc = 0 } in
    incr next_id;
    edges := e :: !edges;
    e
  in
  (* Real edges in deterministic order: per block, terminator order. *)
  for v = 0 to n - 1 do
    List.iter
      (fun w ->
        if is_back v w then ignore (add_edge v w Back)
        else ignore (add_edge v w Real))
      (Minic.Cfg.successors cfg v)
  done;
  List.iter (fun r -> ignore (add_edge r exit_node Exit_real)) (Minic.Cfg.exits cfg);
  (* Dummy edges for each back edge, in back-edge discovery order. *)
  List.iter
    (fun (v, w) ->
      ignore (add_edge 0 w Dummy_entry);
      ignore (add_edge v exit_node Dummy_exit))
    backs;
  let all = Array.of_list (List.rev !edges) in
  let out = Array.make (n + 1) [] in
  Array.iter
    (fun e -> if e.kind <> Back then out.(e.src) <- e :: out.(e.src))
    all;
  (* Restore insertion order (deterministic successor order). *)
  Array.iteri (fun i l -> out.(i) <- List.rev l) out;
  (all, out, backs, exit_node)

(* Reverse topological order of DAG nodes (EXIT first). *)
let rev_topo out_edges nnodes =
  let state = Array.make nnodes 0 in
  let order = ref [] in
  let rec dfs v =
    if state.(v) = 0 then begin
      state.(v) <- 1;
      List.iter (fun e -> dfs e.dst) out_edges.(v);
      state.(v) <- 2;
      order := v :: !order
    end
  in
  for v = 0 to nnodes - 1 do
    dfs v
  done;
  (* !order is forward topological; reverse it. *)
  List.rev !order

(* ------------------------------------------------------------------ *)
(* Path numbering (Figure 5 of Ball–Larus). *)

let number_paths out_edges nnodes exit_node =
  let num = Array.make nnodes 0 in
  let order = rev_topo out_edges nnodes in
  List.iter
    (fun v ->
      if v = exit_node then num.(v) <- 1
      else begin
        let total = ref 0 in
        List.iter
          (fun e ->
            e.value <- !total;
            total := !total + num.(e.dst))
          out_edges.(v);
        num.(v) <- !total
      end)
    order;
  num

(* ------------------------------------------------------------------ *)
(* Spanning-tree probe placement.

   We add a virtual EXIT→ENTRY tree edge (forcing equal node potentials at
   ENTRY and EXIT), grow a maximal-weight spanning tree over the undirected
   DAG, then set chord increments to inc(e) = value(e) + phi(src) - phi(dst)
   where phi is the tree potential with inc = 0 on tree edges. Weights
   favour high-frequency edges (estimated by loop depth) so probes land on
   cold edges. *)

module Union_find = struct
  let create n = Array.init n (fun i -> i)

  let rec find t x = if t.(x) = x then x else let r = find t t.(x) in t.(x) <- r; r

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then false
    else begin
      t.(ra) <- rb;
      true
    end
end

let place_on_spanning_tree edges out_edges nnodes exit_node depths =
  let uf = Union_find.create nnodes in
  (* The virtual EXIT→ENTRY edge is in the tree by construction. *)
  ignore (Union_find.union uf exit_node 0);
  let weight e =
    (* deeper-nested edges are hotter; prefer them as tree edges *)
    let d v = if v >= Array.length depths then 0 else depths.(v) in
    (10 * max (d e.src) (d e.dst)) + (match e.kind with Real -> 1 | _ -> 0)
  in
  let sorted = Array.copy edges in
  Array.sort (fun a b -> compare (weight b, a.id) (weight a, b.id)) sorted;
  Array.iter
    (fun e ->
      if e.kind <> Back && Union_find.union uf e.src e.dst then e.in_tree <- true)
    sorted;
  (* Potentials by BFS over tree edges (undirected). *)
  let phi = Array.make nnodes 0 in
  let seen = Array.make nnodes false in
  let adj = Array.make nnodes [] in
  Array.iter
    (fun e ->
      if e.in_tree then begin
        adj.(e.src) <- (e, true) :: adj.(e.src);
        adj.(e.dst) <- (e, false) :: adj.(e.dst)
      end)
    edges;
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  phi.(0) <- 0;
  (* exit and entry share potential via the virtual edge (value 0) *)
  if not seen.(exit_node) then begin
    seen.(exit_node) <- true;
    phi.(exit_node) <- 0;
    Queue.add exit_node queue
  end;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun (e, forward) ->
        let u = if forward then e.dst else e.src in
        if not seen.(u) then begin
          seen.(u) <- true;
          (* inc(tree) = 0 = value + phi(src) - phi(dst) *)
          if forward then phi.(u) <- phi.(v) + e.value
          else phi.(u) <- phi.(v) - e.value;
          Queue.add u queue
        end)
      adj.(v)
  done;
  Array.iter
    (fun e ->
      if e.kind <> Back then
        e.inc <- (if e.in_tree then 0 else e.value + phi.(e.src) - phi.(e.dst)))
    edges;
  ignore out_edges

(* ------------------------------------------------------------------ *)
(* Plan assembly *)

(** Build the instrumentation plan for one function.
    [optimize] selects spanning-tree probe placement (default) over the
    naive increment-on-every-valued-edge placement. *)
let of_func ?(optimize = true) (f : Minic.Ir.func) : t =
  let cfg = Minic.Cfg.of_func f in
  let n = Minic.Cfg.num_blocks cfg in
  let edges, out_edges, backs, exit_node = build_dag cfg f.name in
  let num = number_paths out_edges (n + 1) exit_node in
  if optimize then
    place_on_spanning_tree edges out_edges (n + 1) exit_node (Minic.Loops.depths cfg)
  else
    Array.iter (fun e -> if e.kind <> Back then e.inc <- e.value) edges;
  (* Look up the dummy-edge increments for each back edge. *)
  let dummy_entry_inc w =
    let e =
      Array.to_list edges
      |> List.find (fun e -> e.kind = Dummy_entry && e.dst = w)
    in
    e.inc
  in
  let dummy_exit_inc v =
    let e =
      Array.to_list edges
      |> List.find (fun e -> e.kind = Dummy_exit && e.src = v)
    in
    e.inc
  in
  let edge_ops = Hashtbl.create 16 in
  let probes = ref 0 in
  Array.iter
    (fun e ->
      match e.kind with
      | Real ->
          if e.inc <> 0 then begin
            Hashtbl.replace edge_ops (e.src, e.dst) (Add e.inc);
            incr probes
          end
      | Back | Exit_real | Dummy_entry | Dummy_exit -> ())
    edges;
  List.iter
    (fun (v, w) ->
      Hashtbl.replace edge_ops (v, w)
        (Commit_back { add = dummy_exit_inc v; reset = dummy_entry_inc w });
      incr probes)
    backs;
  let ret_add = Array.make n 0 in
  Array.iter
    (fun e -> if e.kind = Exit_real then ret_add.(e.src) <- e.inc)
    edges;
  {
    fname = f.name;
    nblocks = n;
    num_paths = num.(0);
    edges;
    out_edges;
    back_edges = backs;
    edge_ops;
    ret_add;
    probes = !probes;
  }

(** What to do when the CFG transition [src→dst] executes. *)
let on_edge (t : t) ~src ~dst : edge_op option = Hashtbl.find_opt t.edge_ops (src, dst)

(** Increment to add to the register when committing at return block [b]. *)
let on_ret (t : t) ~block = t.ret_add.(block)

(* Dense per-transition form of [edge_ops] for the execution hot path:
   flat arrays indexed by [src * d_stride + dst], so a listener does two
   loads per edge event instead of a hashtable probe that allocates an
   option. The stride is [nblocks + 1] because plan keys may in principle
   mention the EXIT pseudo-node. *)
type dense = {
  d_stride : int;
  d_tag : Bytes.t;  (** ['\000'] no probe, ['\001'] add, ['\002'] commit *)
  d_add : int array;
  d_reset : int array;
}

let dense (t : t) : dense =
  let stride = t.nblocks + 1 in
  let n = max 1 (t.nblocks * stride) in
  let d =
    {
      d_stride = stride;
      d_tag = Bytes.make n '\000';
      d_add = Array.make n 0;
      d_reset = Array.make n 0;
    }
  in
  Hashtbl.iter
    (fun (src, dst) op ->
      let i = (src * stride) + dst in
      match op with
      | Add k ->
          Bytes.set d.d_tag i '\001';
          d.d_add.(i) <- k
      | Commit_back { add; reset } ->
          Bytes.set d.d_tag i '\002';
          d.d_add.(i) <- add;
          d.d_reset.(i) <- reset)
    t.edge_ops;
  d

(* ------------------------------------------------------------------ *)
(* Path regeneration: ID → DAG node sequence (Ball–Larus §3.4). Useful for
   the standalone profiler example and for exhaustiveness tests. *)

let regenerate (t : t) (id : int) : int list =
  if id < 0 || id >= t.num_paths then
    invalid_arg
      (Printf.sprintf "Ball_larus.regenerate: id %d out of [0,%d)" id t.num_paths);
  let exit_node = t.nblocks in
  let rec walk v rem acc =
    if v = exit_node then List.rev acc
    else begin
      (* Choose the out-edge with the largest value <= rem. Values are
         assigned in increasing successor order, so scan for the last
         admissible edge. *)
      let best =
        List.fold_left
          (fun best e ->
            if e.value <= rem then
              match best with
              | Some b when b.value >= e.value -> best
              | _ -> Some e
            else best)
          None t.out_edges.(v)
      in
      match best with
      | None -> List.rev acc  (* EXIT-adjacent; cannot happen on valid ids *)
      | Some e -> walk e.dst (rem - e.value) (e.dst :: acc)
    end
  in
  walk 0 id [ 0 ]

(** Like [regenerate] but returning the DAG edges themselves, which are
    unique even when a dummy edge parallels a real one (the node sequence
    alone is ambiguous in that case). *)
let regenerate_edges (t : t) (id : int) : edge list =
  if id < 0 || id >= t.num_paths then
    invalid_arg
      (Printf.sprintf "Ball_larus.regenerate_edges: id %d out of [0,%d)" id
         t.num_paths);
  let exit_node = t.nblocks in
  let rec walk v rem acc =
    if v = exit_node then List.rev acc
    else begin
      let best =
        List.fold_left
          (fun best e ->
            if e.value <= rem then
              match best with
              | Some b when b.value >= e.value -> best
              | _ -> Some e
            else best)
          None t.out_edges.(v)
      in
      match best with
      | None -> List.rev acc
      | Some e -> walk e.dst (rem - e.value) (e :: acc)
    end
  in
  walk 0 id []

(** Enumerate all path IDs with their DAG node sequences. Exponential in
    CFG size; intended for tests and examples on small functions. *)
let enumerate (t : t) : (int * int list) list =
  List.init t.num_paths (fun id -> (id, regenerate t id))

(* ------------------------------------------------------------------ *)
(* Program-level artifact *)

type program_plans = {
  plans : t array;  (** indexed by function index in the program *)
  total_paths : int;
  total_probes : int;
}

(** Run the pass over every function of a program. *)
let of_program ?(optimize = true) (p : Minic.Ir.program) : program_plans =
  let plans = Array.map (fun f -> of_func ~optimize f) p.funcs in
  {
    plans;
    total_paths = Array.fold_left (fun a pl -> a + pl.num_paths) 0 plans;
    total_probes = Array.fold_left (fun a pl -> a + pl.probes) 0 plans;
  }
