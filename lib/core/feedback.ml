(** Coverage feedback listeners: the sensitivity ladder studied by the
    paper. Each listener consumes VM execution events and fills a trace
    [Coverage_map.t]; the fuzzer then classifies the trace and asks the
    virgin map for novelty. Implemented modes:

    - [Block]: basic-block coverage (n-gram with n=0);
    - [Edge]: AFL/pcguard-style edge coverage via a shifted previous-block
      key, the paper's baseline feedback;
    - [Ngram n]: last-n-blocks history hashing (§VII related work);
    - [Path]: the paper's contribution — Ball–Larus intra-procedural
      acyclic-path IDs, committed at back edges and returns, indexed as
      [(path_id xor function_salt) mod map_size] (§IV);
    - [Pathafl]: a PathAFL-like sketch — edge coverage plus a rolling hash
      over "key" edges (function entries and branch edges), approximating
      partial whole-program paths (Appendix C comparison).

    Listeners sit on the execution hot path (every VM block/edge event
    lands here), so [make] precomputes per-(function, block) key tables
    and the dense Ball–Larus transition tables once, and every handler is
    allocation-free: events index arrays — no hashing, no hashtable
    probes, no option or list allocation. *)

type mode = Block | Edge | Ngram of int | Path | Pathafl

let mode_name = function
  | Block -> "block"
  | Edge -> "edge"
  | Ngram n -> Printf.sprintf "ngram%d" n
  | Path -> "path"
  | Pathafl -> "pathafl"

let mode_of_name = function
  | "block" -> Some Block
  | "edge" -> Some Edge
  | "path" -> Some Path
  | "pathafl" -> Some Pathafl
  | s when String.length s > 5 && String.sub s 0 5 = "ngram" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some n when n >= 2 -> Some (Ngram n)
      | _ -> None)
  | _ -> None

type t = {
  mode : mode;
  trace : Coverage_map.t;
  reset : unit -> unit;  (** called before each execution *)
  on_call : int -> unit;  (** [fid]: a function activation begins *)
  on_block : int -> int -> unit;  (** [fid block]: control enters block *)
  on_edge : int -> int -> int -> unit;  (** [fid src dst]: CFG transition *)
  on_ret : int -> int -> unit;  (** [fid block]: return executes in block *)
}

(* Stable per-(function, block) location key, spread over the map domain. *)
let block_key fid block = ((fid * 0x9e3779b1) + (block * 0x85ebca6b)) land max_int

(* The precomputed form: [keys.(fid).(block) = block_key fid block]. *)
let block_key_table (prog : Minic.Ir.program) : int array array =
  Array.mapi
    (fun fid (f : Minic.Ir.func) ->
      Array.init (Array.length f.blocks) (fun b -> block_key fid b))
    prog.funcs

let make_block prog map =
  let keys = block_key_table prog in
  {
    mode = Block;
    trace = map;
    reset = (fun () -> ());
    on_call = (fun _ -> ());
    on_block =
      (fun fid b ->
        Coverage_map.hit map (Array.unsafe_get (Array.unsafe_get keys fid) b));
    on_edge = (fun _ _ _ -> ());
    on_ret = (fun _ _ -> ());
  }

let make_edge prog map =
  let keys = block_key_table prog in
  let prev = ref 0 in
  {
    mode = Edge;
    trace = map;
    reset = (fun () -> prev := 0);
    on_call = (fun _ -> ());
    on_block =
      (fun fid b ->
        let cur = Array.unsafe_get (Array.unsafe_get keys fid) b in
        Coverage_map.hit map (cur lxor !prev);
        prev := cur lsr 1);
    on_edge = (fun _ _ _ -> ());
    on_ret = (fun _ _ -> ());
  }

let make_ngram n prog map =
  if n < 2 then invalid_arg "Feedback.make_ngram: n must be >= 2";
  let keys = block_key_table prog in
  let hist = Array.make n 0 in
  let pos = ref 0 in
  {
    mode = Ngram n;
    trace = map;
    reset =
      (fun () ->
        Array.fill hist 0 n 0;
        pos := 0);
    on_call = (fun _ -> ());
    on_block =
      (fun fid b ->
        hist.(!pos mod n) <- Array.unsafe_get (Array.unsafe_get keys fid) b;
        incr pos;
        let h = ref 0 in
        for i = 0 to n - 1 do
          h := !h lxor (hist.(i) lsr (i land 15))
        done;
        Coverage_map.hit map !h);
    on_edge = (fun _ _ _ -> ());
    on_ret = (fun _ _ -> ());
  }

let make_path (plans : Ball_larus.program_plans) (prog : Minic.Ir.program) map =
  let salts =
    Array.map (fun (f : Minic.Ir.func) -> Hashtbl.hash f.name * 0x9e3779b1) prog.funcs
  in
  (* Dense transition tables: two loads per edge event instead of a
     hashtable probe allocating an option. *)
  let dense = Array.map Ball_larus.dense plans.plans in
  let ret_adds =
    Array.map (fun (p : Ball_larus.t) -> p.Ball_larus.ret_add) plans.plans
  in
  (* One path register per live activation, kept as a growable int stack
     (no per-call consing); reset clears leftovers from crashed
     executions. *)
  let regs = ref (Array.make 64 0) in
  let top = ref 0 in
  let commit fid pid =
    Coverage_map.hit map ((pid lxor Array.unsafe_get salts fid) land max_int)
  in
  {
    mode = Path;
    trace = map;
    reset = (fun () -> top := 0);
    on_call =
      (fun _fid ->
        if !top = Array.length !regs then begin
          let bigger = Array.make (2 * !top) 0 in
          Array.blit !regs 0 bigger 0 !top;
          regs := bigger
        end;
        Array.unsafe_set !regs !top 0;
        incr top);
    on_block = (fun _ _ -> ());
    on_edge =
      (fun fid src dst ->
        let d = Array.unsafe_get dense fid in
        let i = (src * d.Ball_larus.d_stride) + dst in
        match Bytes.unsafe_get d.Ball_larus.d_tag i with
        | '\000' -> ()
        | '\001' ->
            if !top > 0 then begin
              let r = !regs in
              let k = !top - 1 in
              Array.unsafe_set r k
                (Array.unsafe_get r k + Array.unsafe_get d.Ball_larus.d_add i)
            end
        | _ ->
            if !top > 0 then begin
              let r = !regs in
              let k = !top - 1 in
              commit fid (Array.unsafe_get r k + Array.unsafe_get d.Ball_larus.d_add i);
              Array.unsafe_set r k (Array.unsafe_get d.Ball_larus.d_reset i)
            end);
    on_ret =
      (fun fid block ->
        if !top > 0 then begin
          let k = !top - 1 in
          commit fid
            (Array.unsafe_get !regs k
            + Array.unsafe_get (Array.unsafe_get ret_adds fid) block);
          top := k
        end);
  }

let make_pathafl (prog : Minic.Ir.program) map =
  let keys = block_key_table prog in
  (* Per-function entry keys, and the branch-edge predicate: edges out of
     multi-successor blocks are "key" edges feeding the rolling
     whole-program hash. *)
  let entry_keys =
    Array.init (Array.length prog.funcs) (fun fid -> block_key fid 0 + 1)
  in
  let nsucc =
    Array.map
      (fun (f : Minic.Ir.func) ->
        Array.map
          (fun (b : Minic.Ir.block) -> List.length (Minic.Ir.successors b.term))
          f.blocks)
      prog.funcs
  in
  let prev = ref 0 in
  let rolling = ref 0 in
  let key_event k =
    rolling := (((!rolling lsl 13) lor (!rolling lsr 49)) lxor k) land max_int;
    Coverage_map.hit map !rolling
  in
  {
    mode = Pathafl;
    trace = map;
    reset =
      (fun () ->
        prev := 0;
        rolling := 0);
    on_call = (fun fid -> key_event (Array.unsafe_get entry_keys fid));
    on_block =
      (fun fid b ->
        let cur = Array.unsafe_get (Array.unsafe_get keys fid) b in
        Coverage_map.hit map (cur lxor !prev);
        prev := cur lsr 1);
    on_edge =
      (fun fid src dst ->
        if Array.unsafe_get (Array.unsafe_get nsucc fid) src >= 2 then
          key_event (Array.unsafe_get (Array.unsafe_get keys fid) src lxor (dst * 31)));
    on_ret = (fun _ _ -> ());
  }

(** Instantiate a feedback listener for [prog]. [plans] may be supplied to
    share a precomputed Ball–Larus artifact across campaigns (it is only
    consulted for [Path] mode). *)
let make ?size_log2 ?plans mode (prog : Minic.Ir.program) : t =
  let map = Coverage_map.create ?size_log2 () in
  match mode with
  | Block -> make_block prog map
  | Edge -> make_edge prog map
  | Ngram n -> make_ngram n prog map
  | Path ->
      let plans =
        match plans with Some p -> p | None -> Ball_larus.of_program prog
      in
      make_path plans prog map
  | Pathafl -> make_pathafl prog map
