(** AFL-style fixed-size coverage bitmap with hit-count bucketing.

    A trace map records hit counts per index during one execution; counts
    are then classified into AFL's power-of-two buckets and compared
    against the campaign-wide virgin map. [merge_into] answers the
    fuzzer's novelty question: did this execution hit a new tuple, or a
    known tuple in a new bucket? The default size is 2^16 (the paper uses
    2^18 to match L2 caches; ours is configurable and smaller because
    MiniC subjects have far fewer tuples than UNIFUZZ binaries).

    Unlike AFL's memset-and-scan loops (which vectorise in C), the map
    keeps a journal of touched indices so that clearing, classifying and
    merging cost O(indices actually hit) — the OCaml-appropriate way to
    keep per-execution overhead proportional to the program's work. *)

type t = {
  bits : Bytes.t;
  mask : int;
  mutable touched : int array;  (** indices with non-zero count, unordered *)
  mutable ntouched : int;
}

type novelty =
  | Nothing  (** nothing new *)
  | New_bucket  (** a known tuple reached a new hit-count bucket *)
  | New_tuple  (** a never-seen map index was hit *)

let default_size_log2 = 16

let create ?(size_log2 = default_size_log2) () =
  if size_log2 < 4 || size_log2 > 24 then invalid_arg "Coverage_map.create";
  let size = 1 lsl size_log2 in
  { bits = Bytes.make size '\000'; mask = size - 1; touched = Array.make 256 0; ntouched = 0 }

let size t = Bytes.length t.bits

let clear t =
  for k = 0 to t.ntouched - 1 do
    Bytes.unsafe_set t.bits (Array.unsafe_get t.touched k) '\000'
  done;
  t.ntouched <- 0

let record_touch t i =
  if t.ntouched = Array.length t.touched then begin
    let bigger = Array.make (2 * t.ntouched) 0 in
    Array.blit t.touched 0 bigger 0 t.ntouched;
    t.touched <- bigger
  end;
  t.touched.(t.ntouched) <- i;
  t.ntouched <- t.ntouched + 1

(** Record one hit at [idx] (wrapped into range, saturating at 255). *)
let hit t idx =
  let i = idx land t.mask in
  let c = Char.code (Bytes.unsafe_get t.bits i) in
  if c = 0 then record_touch t i;
  if c < 255 then Bytes.unsafe_set t.bits i (Char.unsafe_chr (c + 1))

(* AFL's count classification: 1,2,3,4-7,8-15,16-31,32-127,128-255 map to
   distinct bits so bucket transitions show up as new bits. *)
let bucket_of_count = function
  | 0 -> 0
  | 1 -> 1
  | 2 -> 2
  | 3 -> 4
  | n when n < 8 -> 8
  | n when n < 16 -> 16
  | n when n < 32 -> 32
  | n when n < 128 -> 64
  | _ -> 128

let classify_lookup = Array.init 256 (fun c -> Char.chr (bucket_of_count c))

(** Replace raw counts by their bucket representative, in place. *)
let classify t =
  for k = 0 to t.ntouched - 1 do
    let i = Array.unsafe_get t.touched k in
    let c = Char.code (Bytes.unsafe_get t.bits i) in
    Bytes.unsafe_set t.bits i (Array.unsafe_get classify_lookup c)
  done

(** Compare a classified trace against the virgin map, folding any novelty
    into the virgin map. Virgin semantics follow AFL: virgin starts
    all-0xFF and novelty means [trace land virgin <> 0] at some index. *)
let merge_into ~(virgin : t) (trace : t) : novelty =
  if Bytes.length virgin.bits <> Bytes.length trace.bits then
    invalid_arg "Coverage_map.merge_into";
  let res = ref Nothing in
  for k = 0 to trace.ntouched - 1 do
    let i = Array.unsafe_get trace.touched k in
    let tr = Char.code (Bytes.unsafe_get trace.bits i) in
    if tr <> 0 then begin
      let vg = Char.code (Bytes.unsafe_get virgin.bits i) in
      if tr land vg <> 0 then begin
        if vg = 255 then res := New_tuple
        else if !res = Nothing then res := New_bucket;
        Bytes.unsafe_set virgin.bits i (Char.unsafe_chr (vg land lnot tr land 255))
      end
    end
  done;
  !res

(* A virgin map is all-0xFF and is only ever written through [merge_into]
   or [merge_sparse_into]; its journal is unused. *)
let create_virgin ?size_log2 () =
  let t = create ?size_log2 () in
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\255';
  t

(** Overwrite [dst]'s bytes with [src]'s — the per-work-item virgin
    snapshot primitive of sharded campaigns: one blit re-seeds a shard's
    scratch virgin map from the epoch-start global map. Journals are not
    copied (virgin maps never use theirs); [dst]'s is reset so the map
    behaves like a fresh virgin map. Sizes must match. *)
let copy_into ~(dst : t) (src : t) : unit =
  if Bytes.length dst.bits <> Bytes.length src.bits then
    invalid_arg "Coverage_map.copy_into";
  Bytes.blit src.bits 0 dst.bits 0 (Bytes.length src.bits);
  dst.ntouched <- 0

(** A detached copy of the raw map payload — what a campaign snapshot
    records for its virgin/crash-virgin maps. Pairs with {!restore_raw}. *)
let raw_bytes (t : t) : bytes = Bytes.copy t.bits

(** Overwrite the map's payload with a previously captured {!raw_bytes}
    image (sizes must match) and reset the journal — the checkpoint
    restore half of the blit pair. Virgin maps never use their journal,
    so a restored map behaves exactly like the captured one. *)
let restore_raw (t : t) (payload : bytes) : unit =
  if Bytes.length payload <> Bytes.length t.bits then
    invalid_arg "Coverage_map.restore_raw";
  Bytes.blit payload 0 t.bits 0 (Bytes.length payload);
  t.ntouched <- 0

(** The merge half of {!merge_into} over a sparse capture instead of a
    live trace: [idxs.(k)] carries classified byte [vals.(k)]. Sharded
    campaigns record each retained candidate's classified trace as such a
    pair of arrays in the parallel phase and replay the merges against
    the shared virgin map, in deterministic order, at the sync barrier. *)
let merge_sparse_into ~(virgin : t) ~(idxs : int array) ~(vals : int array) :
    novelty =
  if Array.length idxs <> Array.length vals then
    invalid_arg "Coverage_map.merge_sparse_into";
  let res = ref Nothing in
  for k = 0 to Array.length idxs - 1 do
    let i = Array.unsafe_get idxs k land virgin.mask in
    let tr = Array.unsafe_get vals k in
    if tr <> 0 then begin
      let vg = Char.code (Bytes.unsafe_get virgin.bits i) in
      if tr land vg <> 0 then begin
        if vg = 255 then res := New_tuple
        else if !res = Nothing then res := New_bucket;
        Bytes.unsafe_set virgin.bits i (Char.unsafe_chr (vg land lnot tr land 255))
      end
    end
  done;
  !res

(** Would {!merge_sparse_into} report novelty against [virgin]? A pure
    check — the virgin map is not written. Selective shard loops use it
    to decide whether a novelty signal may enter the permanently-seen
    set: only coverage already folded into the epoch-start global map is
    monotonically non-novel for the rest of the run. *)
let sparse_would_merge ~(virgin : t) ~(idxs : int array) ~(vals : int array) :
    bool =
  if Array.length idxs <> Array.length vals then
    invalid_arg "Coverage_map.sparse_would_merge";
  let n = Array.length idxs in
  let rec go k =
    k < n
    && (Array.unsafe_get vals k
        land Char.code
              (Bytes.unsafe_get virgin.bits (Array.unsafe_get idxs k land virgin.mask))
        <> 0
       || go (k + 1))
  in
  go 0

(** Classified bytes of a trace at the given indices (the sparse capture
    paired with {!sorted_indices} on the sharded retention path). *)
let values_at (t : t) (idxs : int array) : int array =
  Array.map (fun i -> Char.code (Bytes.unsafe_get t.bits (i land t.mask))) idxs

(** Byte-for-byte map equality — the determinism check of the sharded
    differential suite ([merge_into] only ever writes [bits], so
    comparing the payload compares the maps). *)
let equal (a : t) (b : t) : bool = Bytes.equal a.bits b.bits

(** FNV-1a over the raw map bytes. Unlike {!hash} this does not consult
    the journal, so it fingerprints virgin maps (whose journals are
    unused) as well as traces. *)
let bytes_hash (t : t) : int =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to Bytes.length t.bits - 1 do
    h := !h lxor Char.code (Bytes.unsafe_get t.bits i);
    h := !h * 0x100000001b3
  done;
  !h land max_int

(** Number of indices hit in a trace (AFL's [count_bytes]). *)
let count_set t = t.ntouched

(** Indices hit in a trace, ascending, as a fresh array: the journal
    slice is copied once and sorted in place — no list-sort-then-array
    detour on the retention path. *)
let sorted_indices t =
  let a = Array.sub t.touched 0 t.ntouched in
  Array.sort Int.compare a;
  a

(** Indices hit in a trace, ascending (list wrapper over
    {!sorted_indices}, kept for renderers and tests). *)
let set_indices t = Array.to_list (sorted_indices t)

(** [iteri_set f t] calls [f idx count] for every touched index. *)
let iteri_set f t =
  for k = 0 to t.ntouched - 1 do
    let i = t.touched.(k) in
    f i (Char.code (Bytes.get t.bits i))
  done

let copy t =
  {
    bits = Bytes.copy t.bits;
    mask = t.mask;
    touched = Array.copy t.touched;
    ntouched = t.ntouched;
  }

(** Read the raw byte at a map index (tests and diagnostics). *)
let get t idx = Char.code (Bytes.get t.bits (idx land t.mask))

(** Number of virgin-map indices still fully untouched (byte = 0xFF) —
    the "virgin bits residual" sampled into stats snapshots. A virgin
    map's journal is unused, so this scans the raw bytes; the scan is
    word-wise (one 64-bit compare per 8 indices) because virgin maps
    stay almost entirely 0xFF, making the per-snapshot cost ~map/8
    loads rather than map bytes. *)
let residual t =
  let bits = t.bits in
  let n = Bytes.length bits in
  let all_ff = -1L in
  let count = ref 0 in
  let k = ref 0 in
  while !k + 8 <= n do
    if Bytes.get_int64_ne bits !k = all_ff then count := !count + 8
    else
      for j = !k to !k + 7 do
        if Bytes.unsafe_get bits j = '\255' then incr count
      done;
    k := !k + 8
  done;
  while !k < n do
    if Bytes.unsafe_get bits !k = '\255' then incr count;
    incr k
  done;
  !count

(** FNV-1a hash of the trace contents (order-independent via sorting). *)
let hash t =
  let idxs = sorted_indices t in
  let h = ref 0x3bf29ce484222325 in
  Array.iter
    (fun i ->
      let c = Char.code (Bytes.unsafe_get t.bits i) in
      h := !h lxor ((i lsl 8) lor c);
      h := !h * 0x100000001b3)
    idxs;
  !h land max_int
