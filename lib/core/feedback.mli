(** Coverage feedback listeners: the sensitivity ladder studied by the
    paper. Each listener consumes VM execution events and fills a trace
    {!Coverage_map.t}; the fuzzer classifies the trace and asks the virgin
    map for novelty. *)

(** Available feedback modes:
    - [Block]: basic-block coverage (n-gram with n = 0);
    - [Edge]: AFL/pcguard-style edge coverage, the paper's baseline;
    - [Ngram n]: last-n-blocks history hashing (§VII related work);
    - [Path]: the paper's contribution — Ball–Larus intra-procedural
      acyclic-path IDs committed at back edges and returns, indexed as
      [(path_id xor function_salt) mod map_size] (§IV);
    - [Pathafl]: a PathAFL-like sketch — edge coverage plus a rolling hash
      over key edges, approximating partial whole-program paths
      (Appendix C comparison). *)
type mode = Block | Edge | Ngram of int | Path | Pathafl

val mode_name : mode -> string

(** Inverse of {!mode_name} ("block", "edge", "ngram<n>", "path",
    "pathafl") — the CLI/stats surface parses mode names with this so
    the two can never drift apart. *)
val mode_of_name : string -> mode option

(** Stable per-(function, block) location key, spread over the map
    domain — the primitive every listener derives its indices from.
    Exposed so the staged compiler ([Vm.Compile]) bakes exactly the same
    keys into its probes as the runtime listeners compute. *)
val block_key : int -> int -> int

type t = {
  mode : mode;
  trace : Coverage_map.t;
  reset : unit -> unit;  (** call before each execution *)
  on_call : int -> unit;  (** [fid]: a function activation begins *)
  on_block : int -> int -> unit;  (** [fid block]: control enters block *)
  on_edge : int -> int -> int -> unit;  (** [fid src dst]: CFG transition *)
  on_ret : int -> int -> unit;  (** [fid block]: return executes in block *)
}

(** Instantiate a feedback listener for a program. [plans] may be supplied
    to share a precomputed Ball–Larus artifact across campaigns (consulted
    only in [Path] mode). *)
val make :
  ?size_log2:int ->
  ?plans:Ball_larus.program_plans ->
  mode ->
  Minic.Ir.program ->
  t
