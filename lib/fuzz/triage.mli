(** Crash bookkeeping at the three granularities used by the evaluation:
    raw crash counts, stack-hash "unique crashes" (top 5 frames, §V-A),
    AFL-2.52b-style coverage-novel crashes (Appendix C / Table IX), and
    ground-truth unique bugs (the paper's manually deduplicated notion,
    exact here thanks to seeded identities). *)

type record = {
  crash : Vm.Crash.t;
  input : string;  (** a witness input triggering this crash *)
  at_exec : int;  (** execution counter at discovery *)
}

type t = {
  mutable total_crashes : int;
  mutable total_hangs : int;
  by_stack : (int, record) Hashtbl.t;  (** top-5-frame hash -> first record *)
  by_bug : (Vm.Crash.identity, record) Hashtbl.t;
  mutable afl_unique : record list;  (** coverage-novel crashes, newest first *)
  obs : Obs.Observer.t option;
      (** crash-class counters + Crash/Hang events flow here when set *)
}

(** [obs] wires crash-class counters and Crash/Hang events into an
    observer; recording behaviour is otherwise identical (the
    zero-perturbation rule). *)
val create : ?obs:Obs.Observer.t -> unit -> t

(** Record a crash. [coverage_novel] says whether the crash's trace had
    new bits against the campaign's crash-virgin map (the AFL notion). *)
val record_crash :
  t -> crash:Vm.Crash.t -> input:string -> at_exec:int -> coverage_novel:bool -> unit

(** Record a hang; [at_exec] anchors the observer event (default -1). *)
val record_hang : ?at_exec:int -> t -> unit
val unique_crashes : t -> int
val afl_unique_crashes : t -> int

(** Ground-truth bug identities found, sorted. *)
val bugs : t -> Vm.Crash.identity list

val unique_bugs : t -> int
val bug_witness : t -> Vm.Crash.identity -> string option

(** Merge [src] into [into] (used when a strategy stitches several fuzzer
    instances into one campaign-level report). *)
val merge : into:t -> t -> unit
