(** The fuzzer queue and AFL's favored-corpus machinery
    ([update_bitmap_score]/[cull_queue]): for every coverage-map index the
    cheapest entry covering it is top-rated, and an entry is *favored* if
    it is top-rated somewhere. The paper's culling strategy (§III-B1) and
    opportunistic queue trim (§III-B2) reuse this machinery, as does the
    scheduler's favored-skip logic.

    The queue is a growable array in discovery order: entries are never
    removed, so an index is a stable identity and {!get} is O(1) — the
    scheduler snapshots a cycle by remembering the queue length and the
    splice stage picks random peers without list walks. *)

type entry = {
  id : int;
  data : string;
  indices : int array;  (** classified trace indices hit, ascending *)
  exec_blocks : int;  (** work proxy standing in for execution time *)
  depth : int;  (** mutation chain length from the seed *)
  found_at : int;  (** global execution counter at discovery *)
  fav : int;  (** cached fav_factor: exec_blocks x (length + 16) *)
  mutable favored : bool;
  mutable times_fuzzed : int;
}

type t = {
  mutable arr : entry array;  (** slots [0, size), discovery order *)
  mutable size : int;
  mutable next_id : int;
  top_rated : (int, entry) Hashtbl.t;  (** map index -> cheapest entry *)
  mutable pending_favored : int;
}

val create : unit -> t

(** afl's fav_factor: execution work x input length (cached per entry). *)
val fav_factor : entry -> int

(** Full favored recomputation (afl's cull_queue, run at cycle starts). *)
val recompute_favored : t -> unit

val add :
  t ->
  data:string ->
  indices:int array ->
  exec_blocks:int ->
  depth:int ->
  found_at:int ->
  entry

(** The [i]-th entry in discovery order, O(1); raises on out-of-range. *)
val get : t -> int -> entry

(** Iterate entries in discovery order. *)
val iter : (entry -> unit) -> t -> unit

(** Entries in discovery order. *)
val to_list : t -> entry list

val size : t -> int

(** Entries whose union of indices equals the whole queue's union, chosen
    greedily by {!fav_factor} — the "minimal coverage-preserving queue"
    the culling strategy retains. *)
val favored_subset : t -> entry list

(** Union of all covered indices across the queue, ascending. *)
val covered_indices_arr : t -> int array

(** List wrapper over {!covered_indices_arr} (renderer convenience). *)
val covered_indices : t -> int list
