(** The fuzzer queue and AFL's favored-corpus machinery
    ([update_bitmap_score]/[cull_queue]): for every coverage-map index the
    cheapest entry covering it is top-rated, and an entry is *favored* if
    it is top-rated somewhere. The paper's culling strategy (§III-B1) and
    opportunistic queue trim (§III-B2) reuse this machinery, as does the
    scheduler's favored-skip logic.

    The queue is a growable array in discovery order: entries are never
    removed, so an index is a stable identity and {!get} is O(1) — the
    scheduler snapshots a cycle by remembering the queue length and the
    splice stage picks random peers without list walks. *)

type entry = {
  id : int;
  data : string;
  indices : int array;  (** classified trace indices hit, ascending *)
  exec_blocks : int;  (** work proxy standing in for execution time *)
  depth : int;  (** mutation chain length from the seed *)
  found_at : int;  (** global execution counter at discovery *)
  fav : int;  (** cached fav_factor: exec_blocks x (length + 16) *)
  mutable favored : bool;
  mutable times_fuzzed : int;
}

type t = {
  mutable arr : entry array;  (** slots [0, size), discovery order *)
  mutable size : int;
  mutable next_id : int;
  top_rated : (int, entry) Hashtbl.t;  (** map index -> cheapest entry *)
  mutable pending_favored : int;
}

val create : unit -> t

(** afl's fav_factor: execution work x input length (cached per entry). *)
val fav_factor : entry -> int

(** Full favored recomputation (afl's cull_queue, run at cycle starts). *)
val recompute_favored : t -> unit

val add :
  t ->
  data:string ->
  indices:int array ->
  exec_blocks:int ->
  depth:int ->
  found_at:int ->
  entry

(** The [i]-th entry in discovery order, O(1); raises on out-of-range. *)
val get : t -> int -> entry

(** Iterate entries in discovery order. *)
val iter : (entry -> unit) -> t -> unit

(** Entries in discovery order. *)
val to_list : t -> entry list

val size : t -> int

(** Incremental update_bitmap_score: the (just-retained) entry claims
    every top_rated slot it covers more cheaply, bumping
    [pending_favored] for newly-favored never-fuzzed entries. Full
    favored refresh stays with {!recompute_favored} at cycle starts. *)
val claim_top_rated : t -> entry -> unit

(** {2 Shard views}

    Fixed-length prefix snapshots of the queue, safe to read from worker
    domains while the coordinator is quiescent: the backing array is
    captured at creation so coordinator-side growth between sync epochs
    never moves a live view. Entries are shared, not copied — shards
    must treat them as read-only. *)

type view

(** Snapshot the first [limit] entries (clamped to the current size). *)
val view : t -> limit:int -> view

val view_size : view -> int

(** The [i]-th entry of the snapshot, O(1); raises on out-of-range. *)
val view_get : view -> int -> entry

(** Entries whose union of indices equals the whole queue's union, chosen
    greedily by {!fav_factor} — the "minimal coverage-preserving queue"
    the culling strategy retains. *)
val favored_subset : t -> entry list

(** Union of all covered indices across the queue, ascending. *)
val covered_indices_arr : t -> int array

(** List wrapper over {!covered_indices_arr} (renderer convenience). *)
val covered_indices : t -> int list
