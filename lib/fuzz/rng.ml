(** Deterministic splitmix64-style PRNG. The fuzzer's behaviour must be a
    pure function of (program, seeds, trial seed) so experiments are
    replayable; we avoid [Stdlib.Random] to keep the stream stable across
    OCaml releases and independent of global state. *)

type t = { mutable s : int }

let create seed = { s = (seed * 0x9e3779b9) lxor 0x5deece66d }

(* splitmix64 finalizer on a 63-bit state. *)
let next t =
  t.s <- (t.s + 0x1e3779b97f4a7c15) land max_int;
  let z = t.s in
  let z = (z lxor (z lsr 30)) * 0x1b97f4a7c15 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14ce4e6cd9 land max_int in
  (z lxor (z lsr 31)) land max_int

(** Uniform int in [0, bound); [bound] must be positive.

    Known bias, kept deliberately: [next t mod bound] is modulo-biased —
    for bounds that do not divide 2^63 the low residues are selected with
    probability (ceil(2^63/bound) / 2^63) vs floor for the rest. The skew
    is ~bound/2^63 (negligible for fuzzing bounds of a few thousand) but
    it is a real bias, and fixing the draw function (e.g. with rejection
    sampling) would change every recorded trajectory, benchmark
    fingerprint and golden file in the repo. The stream is therefore
    frozen as-is; a regression test pins the first draws of a fixed seed
    so any accidental stream change fails loudly. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  next t mod bound

let bool t = next t land 1 = 1

(** True with probability [num]/[den]. *)
let chance t ~num ~den = int t den < num

let byte t = Char.chr (int t 256)

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with [] -> invalid_arg "Rng.choose_list" | _ -> List.nth l (int t (List.length l))

(** Range [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Rng.range";
  lo + int t (hi - lo + 1)

(** Derive an independent child generator (for per-trial streams). *)
let split t = create (next t)

(** The raw stream position. [of_state (state t)] reproduces [t]'s
    future draws exactly — the checkpoint/resume primitive: a snapshot
    records each live stream's position and a resumed campaign rebuilds
    generators that continue the original streams draw for draw. *)
let state t = t.s

let of_state s = { s }

(** Reposition an existing generator onto a captured stream position —
    the in-place form of {!of_state} used when restoring a checkpoint
    into already-constructed campaign state. *)
let set_state t s = t.s <- s

(** The [index]-th independent stream of [seed], without consuming any
    draws from a parent generator: a pure function of [(seed, index)].
    Sharded campaigns key their per-work-item streams this way so the
    stream an item sees depends only on its position in the deterministic
    global schedule — never on which shard or domain ran it. *)
let substream ~seed index =
  let t = create seed in
  t.s <- (t.s + ((index + 1) * 0x1e3779b97f4a7c15)) land max_int;
  create (next t)
