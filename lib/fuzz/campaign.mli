(** The coverage-guided fuzzing loop: an afl-fuzz-shaped campaign over the
    MiniC VM, parameterised by the feedback listener (§IV "Integration").
    Budgets are execution counts — the deterministic stand-in for the
    paper's wall-clock budgets — and all randomness flows from one
    {!Rng.t}, so a run is a pure function of (program, seeds, config). *)

type config = {
  mode : Pathcov.Feedback.mode;
  budget : int;  (** total target executions *)
  rng_seed : int;
  fuel : int;  (** VM fuel per execution (the timeout analogue) *)
  max_depth : int;  (** VM call-depth limit per execution *)
  map_size_log2 : int;
  cmplog : bool;  (** comparison-operand capture + I2S mutations *)
  max_queue : int;  (** hard safety bound on queue growth *)
}

val default_config : config

type result = {
  config : config;
  corpus : Corpus.t;
  triage : Triage.t;
  execs : int;  (** executions actually performed *)
  queue_series : (int * int) list;  (** (execs, queue size) samples *)
  sum_exec_blocks : int;  (** total VM blocks executed, throughput proxy *)
  havocs : int;  (** mutated candidates generated *)
  vm_s : float;  (** wall-clock inside the VM (0 unless [clock] given) *)
  mut_s : float;  (** wall-clock inside the mutator (0 unless [clock] given) *)
  mut_minor_words : float;  (** GC minor words allocated by the mutator *)
}

(** Final queue inputs, in discovery order. *)
val queue_inputs : result -> string list

(** Run a campaign. [plans] shares a precomputed Ball–Larus artifact
    across campaigns on the same program. [clock] (a wall-clock reader,
    e.g. [Unix.gettimeofday]) enables the mutation-vs-VM telemetry split
    that [pathfuzz bench-campaign] reports; fuzzing behaviour is
    identical with or without it. *)
val run :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?clock:(unit -> float) ->
  ?config:config ->
  Minic.Ir.program ->
  seeds:string list ->
  result

(** {2 Pipeline stages}

    The individual stages of the loop are exposed so tests can drive them
    directly (e.g. triaging a calibration crash on an entry that was
    parked in the queue without a clean execution). *)

(** Mutation-vs-VM wall-clock/allocation split (bench mode only). *)
type telemetry = {
  mutable vm_s : float;
  mutable mut_s : float;
  mutable mut_minor_words : float;
}

(** Per-exec comparison-operand capture: flat, insertion-ordered,
    deduplicated, bounded — pairs reach the mutator in program order
    rather than [Hashtbl.fold] order. *)
type cmp_buf = {
  ops_a : int array;
  ops_b : int array;
  mutable n_cmps : int;
}

(** Live campaign state. Fields are exposed read-mostly for tests and
    diagnostics; mutate only through the stage functions below. The
    state owns a pooled {!Vm.Interp.exec_ctx} with the instrumentation
    hooks preinstalled, so every stage executes allocation-free. *)
type state = {
  prepared : Vm.Interp.prepared;
  ctx : Vm.Interp.exec_ctx;  (** pooled execution context, reused per exec *)
  cfg : config;
  feedback : Pathcov.Feedback.t;
  virgin : Pathcov.Coverage_map.t;
  crash_virgin : Pathcov.Coverage_map.t;
  corpus : Corpus.t;
  triage : Triage.t;
  rng : Rng.t;
  mutable execs : int;
  mutable blocks : int;
  mutable havocs : int;
  mutable series : (int * int) list;
  mutable sample_every : int;
  cmp_buf : cmp_buf;  (** per-exec comparison pairs, program order *)
  scratch : Mutator.scratch;  (** pooled mutation buffer, reused per child *)
  clock : (unit -> float) option;
  tele : telemetry;
}

(** Build a fresh campaign state. *)
val make_state :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?clock:(unit -> float) ->
  ?config:config ->
  Minic.Ir.program ->
  state

(** Run one input; the trace map is left classified for novelty checks. *)
val execute : state -> string -> Vm.Interp.outcome

(** Execute a seed and retain it unconditionally (afl imports the full
    seed directory); crashes and hangs are triaged. *)
val add_seed : state -> string -> unit

(** Evaluate one candidate end to end: execute, triage crashes/hangs,
    retain on coverage novelty if the queue has capacity. *)
val process : state -> depth:int -> string -> unit

(** One calibration run of a queue entry, capturing cmplog operand pairs;
    the outcome is triaged exactly like {!process}'s. *)
val calibrate : state -> Corpus.entry -> Mutator.cmp_pair array
