(** The coverage-guided fuzzing loop: an afl-fuzz-shaped campaign over the
    MiniC VM, parameterised by the feedback listener (§IV "Integration").
    Budgets are execution counts — the deterministic stand-in for the
    paper's wall-clock budgets — and all randomness flows from one
    {!Rng.t}, so a run is a pure function of (program, seeds, config).

    Campaigns are observable: pass an {!Obs.Observer.t} to collect the
    counter block, periodic snapshot rows and structured events. The
    observer obeys the zero-perturbation rule (no RNG draws, no fuzzing
    decision reads observer state), so observed and unobserved runs are
    byte-identical — see DESIGN.md §7. *)

type config = {
  mode : Pathcov.Feedback.mode;
  budget : int;  (** total target executions *)
  rng_seed : int;
  fuel : int;  (** VM fuel per execution (the timeout analogue) *)
  max_depth : int;  (** VM call-depth limit per execution *)
  map_size_log2 : int;
  cmplog : bool;  (** comparison-operand capture + I2S mutations *)
  max_queue : int;  (** hard safety bound on queue growth *)
  engine : Tracer.engine;
      (** execution engine — interpreter or staged compilation; the
          trajectory is engine-invariant (test-enforced differentially) *)
  selective : bool;
      (** selective tracing: bulk executions run a near-null novelty-
          signal specialisation and re-execute fully only on first-seen
          signals; decisions are byte-identical to always-on tracing
          (DESIGN §12) *)
}

val default_config : config

type result = {
  config : config;
  corpus : Corpus.t;
  triage : Triage.t;
  execs : int;  (** executions actually performed *)
  queue_series : (int * int) list;
      (** (execs, queue size) samples — a derived view over [snapshots] *)
  sum_exec_blocks : int;  (** total VM blocks executed, throughput proxy *)
  havocs : int;  (** mutated candidates generated *)
  snapshots : Obs.Snapshot.row list;
      (** this run's periodic stats rows (the [plot_data] analogue) *)
  vm_s : float;  (** wall inside the VM (0 unless the observer has a clock) *)
  mut_s : float;  (** wall inside the mutator (0 unless clocked) *)
  mut_minor_words : float;  (** GC minor words allocated by the mutator *)
}

(** Final queue inputs, in discovery order. *)
val queue_inputs : result -> string list

(** Run a campaign. [plans] shares a precomputed Ball–Larus artifact
    across campaigns on the same program. [obs] supplies the observer —
    counters, snapshot log, event sink, and the optional wall clock that
    enables the mutation-vs-VM split [pathfuzz bench-campaign] reports.
    A shared observer accumulates across runs (multi-phase strategies,
    benches); each run's [result] reports its own deltas. Fuzzing
    behaviour is identical with or without an observer.

    [checkpoint] writes a {!Checkpoint.t} through the sink at each cycle
    boundary crossing a multiple of [sink.every] executions (mid-budget
    only). [resume] restores one such snapshot instead of importing
    [seeds]: the resumed run replays the uninterrupted run's remaining
    trajectory byte for byte (test-enforced differentially). Both
    require the campaign to own its observer — the checkpointed counter
    block is restored wholesale. *)
val run :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?obs:Obs.Observer.t ->
  ?config:config ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  Minic.Ir.program ->
  seeds:string list ->
  result

(** {2 Pipeline stages}

    The individual stages of the loop are exposed so tests can drive them
    directly (e.g. triaging a calibration crash on an entry that was
    parked in the queue without a clean execution). *)

(** Per-exec comparison-operand capture: flat, insertion-ordered,
    deduplicated, bounded — pairs reach the mutator in program order
    rather than [Hashtbl.fold] order. *)
type cmp_buf = {
  ops_a : int array;
  ops_b : int array;
  mutable n_cmps : int;
}

val make_cmp_buf : unit -> cmp_buf

(** Both substitution directions per captured pair, in capture order. *)
val cmps_of_buf : cmp_buf -> Mutator.cmp_pair array

(** The instrumentation hook set a campaign installs in its execution
    context (the cmplog probe exists only when the config asks for it) —
    sharded campaigns build one per shard. *)
val make_hooks : config -> Pathcov.Feedback.t -> cmp_buf -> Vm.Interp.hooks

(** afl-fuzz's fuzz_one skip probabilities over an explicit RNG and
    queue state (the sharded planner draws from its own stream). *)
val entry_skip : Rng.t -> pending_favored:int -> Corpus.entry -> bool

(** Havoc energy for one queue entry (simplified perf_score): a pure
    function of the entry and the budget. *)
val entry_energy : budget:int -> Corpus.entry -> int

(** Live campaign state. Fields are exposed read-mostly for tests and
    diagnostics; mutate only through the stage functions below. The
    state owns a pooled {!Vm.Interp.exec_ctx} with the instrumentation
    hooks preinstalled, so every stage executes allocation-free. *)
type state = {
  prepared : Vm.Interp.prepared;
  ctx : Vm.Interp.exec_ctx;  (** pooled execution context, reused per exec *)
  tracer : Tracer.t;  (** engine dispatch + selective-tracing state *)
  cfg : config;
  feedback : Pathcov.Feedback.t;
  virgin : Pathcov.Coverage_map.t;
  crash_virgin : Pathcov.Coverage_map.t;
  corpus : Corpus.t;
  triage : Triage.t;
  rng : Rng.t;
  mutable execs : int;  (** this campaign's executions (budget clock) *)
  mutable blocks : int;
  mutable havocs : int;
  mutable sample_every : int;  (** snapshot cadence in executions *)
  cmp_buf : cmp_buf;  (** per-exec comparison pairs, program order *)
  scratch : Mutator.scratch;  (** pooled mutation buffer, reused per child *)
  obs : Obs.Observer.t;
      (** counters + snapshots + event sink; may be shared across phases *)
  h_batch : Obs.Metrics.hist;
      (** cohort-size histogram ([exec.batch_n]), pre-registered in the
          observer's metrics registry at state creation *)
  h_dirty : Obs.Metrics.hist;
      (** context dirty-reset widths ([vm.dirty_reset_w]) *)
}

(** Build a fresh campaign state. *)
val make_state :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?obs:Obs.Observer.t ->
  ?config:config ->
  Minic.Ir.program ->
  state

(** Run one input; the trace map is left classified for novelty checks. *)
val execute : state -> string -> Vm.Interp.outcome

(** Execute a seed and retain it unconditionally (afl imports the full
    seed directory); crashes and hangs are triaged. *)
val add_seed : state -> string -> unit

(** Evaluate one candidate end to end: execute, triage crashes/hangs,
    retain on coverage novelty if the queue has capacity. *)
val process : state -> depth:int -> string -> unit

(** Zero-copy twin of {!process} over the candidate sitting in the
    mutation scratch. The campaign's own havoc loop runs cohorts through
    [Tracer.run_full_batch]/[run_signal_batch] with the same decision
    procedure; this per-candidate form serves one-off evaluation sites
    and stage-level tests. *)
val process_scratch : state -> depth:int -> unit

(** One calibration run of a queue entry, capturing cmplog operand pairs;
    the outcome is triaged exactly like {!process}'s. *)
val calibrate : state -> Corpus.entry -> Mutator.cmp_pair array

(** {2 Checkpoint/resume}

    Exposed so tests can capture and restore mid-campaign state without
    going through {!run}'s sink plumbing. *)

(** Snapshot the campaign at a cycle boundary ([sync_interval = 0] in the
    recorded identity). *)
val capture_checkpoint :
  state -> subject:string -> fuzzer:string -> Checkpoint.t

(** Load a snapshot into freshly built state (queue, triage, virgin maps,
    RNG position, clocks, counters, snapshot rows). Config validation is
    the caller's job ({!Checkpoint.check_compat}); only the map size is
    re-checked. *)
val restore_checkpoint : state -> Checkpoint.t -> unit
