(** Small statistics toolbox for the evaluation: medians, geometric means
    and the set algebra behind the pairwise bug comparisons (∩ and ∖
    columns of Tables II/VI/VII/VIII/X and the Figure 3 Venn regions). *)

(** Median of the non-nan entries. nan never participates: under
    polymorphic [compare] a nan sorts to an arbitrary position and can
    poison the picked middle element, and a nan trial (e.g. an empty
    aggregation upstream) should not erase the information carried by the
    remaining trials. Empty or all-nan input yields nan. *)
let median_float (l : float list) : float =
  match List.sort Float.compare (List.filter (fun x -> not (Float.is_nan x)) l) with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let median_int (l : int list) : float = median_float (List.map float_of_int l)

(** Geometric mean of positive ratios; zero/negative entries are skipped
    (mirrors how the paper reports GEOMEAN rows). *)
let geomean (l : float list) : float =
  let pos = List.filter (fun x -> x > 0.) l in
  match pos with
  | [] -> nan
  | _ ->
      exp (List.fold_left (fun a x -> a +. log x) 0. pos /. float_of_int (List.length pos))

module Bug_set = Set.Make (struct
  type t = Vm.Crash.identity

  let compare = Vm.Crash.identity_compare
end)

let bug_set (ids : Vm.Crash.identity list) : Bug_set.t = Bug_set.of_list ids

let inter a b = Bug_set.cardinal (Bug_set.inter a b)
let diff a b = Bug_set.cardinal (Bug_set.diff a b)

(** Sizes of the seven regions of a three-set Venn diagram, as
    [(only_a, only_b, only_c, ab, ac, bc, abc)]. *)
let venn3 a b c =
  let abc = Bug_set.inter a (Bug_set.inter b c) in
  let ab = Bug_set.diff (Bug_set.inter a b) abc in
  let ac = Bug_set.diff (Bug_set.inter a c) abc in
  let bc = Bug_set.diff (Bug_set.inter b c) abc in
  let only_a = Bug_set.diff a (Bug_set.union b c) in
  let only_b = Bug_set.diff b (Bug_set.union a c) in
  let only_c = Bug_set.diff c (Bug_set.union a b) in
  Bug_set.
    ( cardinal only_a,
      cardinal only_b,
      cardinal only_c,
      cardinal ab,
      cardinal ac,
      cardinal bc,
      cardinal abc )

(** Two-set Venn regions: [(only_a, only_b, both)]. *)
let venn2 a b =
  let both = Bug_set.inter a b in
  (diff a b, diff b a, Bug_set.cardinal both)
