(** Execution-engine selection and selective tracing for campaigns.

    A campaign executes candidates through one of four engines over the
    same pooled {!Vm.Interp.exec_ctx}:

    - [Interp]: the reference CFG interpreter driving the runtime
      feedback listeners through hooks;
    - [Compiled]: the {!Vm.Compile} staged artifact with the listener
      probes partially evaluated into the block closures;
    - [Fused]: [Compiled] plus superblock fusion — single-predecessor
      goto chains collapsed into one closure with coalesced fuel burns
      and folded Ball–Larus increments ([Vm.Compile.compile ~fused]);
    - [Native]: the {!Vm.Emit} per-subject generated OCaml unit —
      fusion plus out-of-process [ocamlopt] and a Dynlink load, cached
      on disk. When emission fails for any reason (no toolchain,
      compile error, forced [PATHFUZZ_EMIT_FAIL]) the tracer silently
      degrades to [Fused] and records why ({!emit_fallback}), so
      campaigns behave identically on toolchain-less machines.

    All produce byte-identical traces, outcomes and fuel accounting
    (test-enforced differentially), so the engine choice is invisible to
    the fuzzing trajectory.

    On top of either engine, {e selective tracing} splits each candidate
    evaluation in two: a bulk run under a near-null specialisation that
    folds only a 62-bit rolling novelty signal over the tagged
    call/block/return event stream ({!Vm.Compile.signal} /
    {!Vm.Compile.signal_hooks}), and — only when the signal has not been
    seen before — a full-instrumentation replay that rebuilds the
    classified trace for the usual merge/retain pipeline. Because per-
    activation block sequences (and hence every derived feedback index,
    in every mode) are a function of the event stream, signal equality
    implies trace equality up to hash collisions, and the campaign's
    decisions are byte-identical to the always-instrumented pipeline's
    (DESIGN.md §12 gives the argument; the differential suite enforces
    it). The seen set is an in-memory cache of "this trace is already
    folded into the virgin map": it is deliberately absent from
    checkpoints — a resumed run re-replays a few signals and reaches the
    very same decisions.

    The tracer also owns the probe self-pruning schedule: once every map
    index a function's Ball–Larus path commits can produce is saturated
    in the virgin map, the commit's map write can never change novelty
    and is elided ({!Vm.Compile.prune_fid}). Pruning is enabled only
    around calibration runs — the one full-instrumentation site whose
    trace feeds nothing but the virgin merge — so retained entries keep
    exactly the trace indices the unpruned pipeline records. *)

type engine = Interp | Compiled | Fused | Native

let engine_name = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Fused -> "fused"
  | Native -> "native"

let engine_of_name = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | "fused" -> Some Fused
  | "native" -> Some Native
  | _ -> None

let engine_names = [ "interp"; "compiled"; "fused"; "native" ]

type t = {
  engine : engine;
  selective : bool;
  mode : Pathcov.Feedback.mode;
  full_art : Vm.Compile.t option;  (** [Compiled]: the [Sfull mode] artifact *)
  sig_art : Vm.Compile.t option;  (** [Compiled] + selective: [Ssignal] *)
  full_emit : Vm.Emit.t option;  (** [Native]: the emitted [Sfull mode] unit *)
  sig_emit : Vm.Emit.t option;  (** [Native] + selective: emitted [Ssignal] *)
  emit_fallback : string option;
      (** [Native] only: why emission failed and the tracer degraded to
          the fused closure engine ([None] when native is live) *)
  sig_cell : int ref;  (** [Interp] + selective: rolling-hash accumulator *)
  sig_ctx : Vm.Interp.exec_ctx option;
      (** [Interp] + selective: private context with the signal hooks *)
  seen : (int, unit) Hashtbl.t;  (** signals whose traces are in the virgin map *)
  mutable last_sig : int;  (** signal of the last signal-specialised run *)
  prune_mark : bool array;  (** current per-function pruning marks *)
  mutable pruned : int;  (** functions currently marked pruned *)
  compile_s : float;  (** wall spent compiling artifacts (0 unclocked) *)
}

(** Build a tracer over a prepared subject. [shared] (default [true])
    memoises compiled artifacts per domain ({!Vm.Compile.cached});
    sharded campaigns pass [~shared:false] to compile fresh per shard —
    the artifact's rebindable state is single-threaded. [cmplog] elides
    the comparison probes from compiled code when the campaign binds a
    no-op [h_cmp] anyway. [clock] (optional, observation-only) times the
    artifact compilations into {!compile_seconds}. *)
let make ?plans ?clock ?(shared = true) ~(engine : engine)
    ~(selective : bool) ~(cmplog : bool) ~(mode : Pathcov.Feedback.mode)
    (prepared : Vm.Interp.prepared) : t =
  let compile_s = ref 0. in
  let clocked f =
    let t0 = match clock with Some c -> c () | None -> 0. in
    let r = f () in
    (match clock with
    | Some c -> compile_s := !compile_s +. (c () -. t0)
    | None -> ());
    r
  in
  (* [Native]: emit + load both needed specialisations up front. Any
     failure — no compiler on PATH, compile error, Dynlink refusal,
     forced [PATHFUZZ_EMIT_FAIL] — degrades the whole tracer to the
     fused closure engine (recording why), so campaigns behave
     identically on toolchain-less machines. *)
  let full_emit, sig_emit, emit_fallback =
    match engine with
    | Interp | Compiled | Fused -> (None, None, None)
    | Native -> (
        let r =
          clocked (fun () ->
              match
                Vm.Emit.instance ?plans ~cmplog prepared
                  (Vm.Compile.Sfull mode)
              with
              | Error _ as e -> e
              | Ok full ->
                  if not selective then Ok (full, None)
                  else (
                    match
                      Vm.Emit.instance ?plans ~cmplog prepared
                        Vm.Compile.Ssignal
                    with
                    | Ok sg -> Ok (full, Some sg)
                    | Error e -> Error e))
        in
        match r with
        | Ok (full, sg) -> (Some full, sg, None)
        | Error reason ->
            Vm.Emit.note_fallback ();
            (None, None, Some reason))
  in
  let fused =
    match engine with
    | Fused -> true
    | Native -> emit_fallback <> None
    | Interp | Compiled -> false
  in
  let compile spec =
    clocked (fun () ->
        if shared then Vm.Compile.cached ?plans ~cmplog ~fused prepared spec
        else Vm.Compile.compile ?plans ~cmplog ~fused prepared spec)
  in
  let full_art =
    match engine with
    | Interp -> None
    | Compiled | Fused -> Some (compile (Vm.Compile.Sfull mode))
    | Native ->
        if emit_fallback <> None then Some (compile (Vm.Compile.Sfull mode))
        else None
  in
  let sig_art =
    match engine with
    | (Compiled | Fused) when selective -> Some (compile Vm.Compile.Ssignal)
    | Native when selective && emit_fallback <> None ->
        Some (compile Vm.Compile.Ssignal)
    | _ -> None
  in
  let sig_cell = ref 0 in
  let sig_ctx =
    match engine with
    | Interp when selective ->
        Some
          (Vm.Interp.create_ctx
             ~hooks:(Vm.Compile.signal_hooks prepared ~cell:sig_cell)
             prepared)
    | _ -> None
  in
  {
    engine;
    selective;
    mode;
    full_art;
    sig_art;
    full_emit;
    sig_emit;
    emit_fallback;
    sig_cell;
    sig_ctx;
    seen = Hashtbl.create 4096;
    last_sig = 0;
    prune_mark = Array.make (Array.length prepared.rfuncs) false;
    pruned = 0;
    compile_s = !compile_s;
  }

let engine_of (t : t) : engine = t.engine
let selective (t : t) : bool = t.selective

(** [Some reason] when a [Native] tracer failed to emit and degraded to
    the fused closure engine; [None] otherwise. *)
let emit_fallback (t : t) : string option = t.emit_fallback

(** Retarget the compiled artifact's probes at the campaign's trace map
    and cmplog probe (no-op for the interpreter engine, whose hooks are
    installed in the campaign context directly). *)
let bind (t : t) ~(trace : Pathcov.Coverage_map.t) ~(h_cmp : int -> int -> unit)
    : unit =
  match t.full_emit with
  | Some e -> Vm.Emit.bind e ~trace ~h_cmp
  | None -> (
      match t.full_art with
      | Some art -> Vm.Compile.bind art ~trace ~h_cmp
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Execution *)

let run_full (t : t) (ctx : Vm.Interp.exec_ctx) ~(fuel : int)
    ~(max_depth : int) ~(input : string) : Vm.Interp.outcome =
  match t.full_emit with
  | Some e -> Vm.Emit.run ~fuel ~max_depth e ctx ~input
  | None -> (
      match t.full_art with
      | Some art -> Vm.Compile.run ~fuel ~max_depth art ctx ~input
      | None -> Vm.Interp.run_ctx ~fuel ~max_depth ctx ~input)

let run_full_sub (t : t) (ctx : Vm.Interp.exec_ctx) ~(fuel : int)
    ~(max_depth : int) ~(buf : Bytes.t) ~(len : int) : Vm.Interp.outcome =
  match t.full_emit with
  | Some e -> Vm.Emit.run_sub ~fuel ~max_depth e ctx ~buf ~len
  | None -> (
      match t.full_art with
      | Some art -> Vm.Compile.run_sub ~fuel ~max_depth art ctx ~buf ~len
      | None -> Vm.Interp.run_ctx_sub ~fuel ~max_depth ctx ~buf ~len)

let run_signal (t : t) (ctx : Vm.Interp.exec_ctx) ~(fuel : int)
    ~(max_depth : int) ~(input : string) : Vm.Interp.outcome =
  match t.sig_emit with
  | Some e ->
      let out = Vm.Emit.run ~fuel ~max_depth e ctx ~input in
      t.last_sig <- Vm.Emit.signal e;
      out
  | None -> (
      match t.sig_art with
      | Some art ->
          let out = Vm.Compile.run ~fuel ~max_depth art ctx ~input in
          t.last_sig <- Vm.Compile.signal art;
          out
      | None -> (
          match t.sig_ctx with
          | Some sctx ->
              t.sig_cell := 0;
              let out = Vm.Interp.run_ctx ~fuel ~max_depth sctx ~input in
              t.last_sig <- !(t.sig_cell);
              out
          | None -> invalid_arg "Tracer.run_signal: not a selective tracer"))

let run_signal_sub (t : t) (ctx : Vm.Interp.exec_ctx) ~(fuel : int)
    ~(max_depth : int) ~(buf : Bytes.t) ~(len : int) : Vm.Interp.outcome =
  match t.sig_emit with
  | Some e ->
      let out = Vm.Emit.run_sub ~fuel ~max_depth e ctx ~buf ~len in
      t.last_sig <- Vm.Emit.signal e;
      out
  | None -> (
      match t.sig_art with
      | Some art ->
          let out = Vm.Compile.run_sub ~fuel ~max_depth art ctx ~buf ~len in
          t.last_sig <- Vm.Compile.signal art;
          out
      | None -> (
          match t.sig_ctx with
          | Some sctx ->
              t.sig_cell := 0;
              let out = Vm.Interp.run_ctx_sub ~fuel ~max_depth sctx ~buf ~len in
              t.last_sig <- !(t.sig_cell);
              out
          | None ->
              invalid_arg "Tracer.run_signal_sub: not a selective tracer"))

(* Batched cohort execution: hoist the per-candidate engine dispatch
   (and, compiled, the prepared-identity check) out of the havoc inner
   loop, and let back-to-back runs take the context's journaled
   fast-reset path. Same observable semantics per candidate as the
   one-shot entries above. *)

let run_full_batch ?clock ?vm_s (t : t) (ctx : Vm.Interp.exec_ctx)
    ~(fuel : int) ~(max_depth : int) ~(n : int)
    ~(gen : int -> Bytes.t * int) ~(sink : int -> Vm.Interp.outcome -> unit) :
    unit =
  match t.full_emit with
  | Some e -> Vm.Emit.run_batch ~fuel ~max_depth ?clock ?vm_s e ctx ~n ~gen ~sink
  | None -> (
      match t.full_art with
      | Some art ->
          Vm.Compile.run_batch ~fuel ~max_depth ?clock ?vm_s art ctx ~n ~gen
            ~sink
      | None ->
          Vm.Interp.run_batch ~fuel ~max_depth ?clock ?vm_s ctx ~n ~gen ~sink)

(* The signal variant latches [last_sig] before each [sink] call, so the
   sink observes exactly what a [run_signal_sub]-per-candidate loop
   would. The interpreter case runs on the private signal context ([ctx]
   is ignored), mirroring [run_signal_sub]. *)
let run_signal_batch ?clock ?vm_s (t : t) (ctx : Vm.Interp.exec_ctx)
    ~(fuel : int) ~(max_depth : int) ~(n : int)
    ~(gen : int -> Bytes.t * int) ~(sink : int -> Vm.Interp.outcome -> unit) :
    unit =
  ignore ctx;
  match t.sig_emit with
  | Some e ->
      Vm.Emit.run_batch ~fuel ~max_depth ?clock ?vm_s e ctx ~n ~gen
        ~sink:(fun k out ->
          t.last_sig <- Vm.Emit.signal e;
          sink k out)
  | None -> (
      match t.sig_art with
      | Some art ->
          Vm.Compile.run_batch ~fuel ~max_depth ?clock ?vm_s art ctx ~n ~gen
            ~sink:(fun k out ->
              t.last_sig <- Vm.Compile.signal art;
              sink k out)
      | None -> (
          match t.sig_ctx with
          | Some sctx ->
              Vm.Interp.run_batch ~fuel ~max_depth ?clock ?vm_s sctx ~n
                ~gen:(fun k ->
                  t.sig_cell := 0;
                  gen k)
                ~sink:(fun k out ->
                  t.last_sig <- !(t.sig_cell);
                  sink k out)
          | None ->
              invalid_arg "Tracer.run_signal_batch: not a selective tracer"))

let last_signal (t : t) : int = t.last_sig
let seen_signal (t : t) (s : int) : bool = Hashtbl.mem t.seen s

let mark_seen (t : t) (s : int) : unit =
  if not (Hashtbl.mem t.seen s) then Hashtbl.add t.seen s ()

(* ------------------------------------------------------------------ *)
(* Probe self-pruning *)

(** Pruning applies when the full engine is a compiled [Path] artifact
    under selective tracing — the configuration whose calibration runs
    are the only consumers of the elided commits. *)
let pruning_available (t : t) : bool =
  t.selective
  && (match t.mode with Pathcov.Feedback.Path -> true | _ -> false)
  && t.full_art <> None

(** Recompute the per-function pruning marks from the virgin map: a
    function is pruned when every map index its path commits can produce
    ({!Vm.Compile.path_universe}) is fully saturated (virgin byte 0).
    Saturation is monotone, but culprits can also {e unprune}: the marks
    are recomputed from scratch, so a restored (resumed) virgin map
    yields the same marks as the uninterrupted run's. *)
let refresh_pruning (t : t) ~(virgin : Pathcov.Coverage_map.t) : unit =
  match t.full_art with
  | None -> ()
  | Some art ->
      for fid = 0 to Array.length t.prune_mark - 1 do
        let u = Vm.Compile.path_universe art fid in
        let n = Array.length u in
        if n > 0 then begin
          let sat = ref true in
          let k = ref 0 in
          while !sat && !k < n do
            if Pathcov.Coverage_map.get virgin (Array.unsafe_get u !k) <> 0
            then sat := false;
            incr k
          done;
          if !sat <> t.prune_mark.(fid) then begin
            t.prune_mark.(fid) <- !sat;
            t.pruned <- (t.pruned + if !sat then 1 else -1);
            Vm.Compile.prune_fid art fid !sat
          end
        end
      done

(** Gate the pruning marks on or off ({!Vm.Compile.set_pruning}); the
    initial state is off, and campaigns enable it only around
    calibration runs. *)
let set_pruning (t : t) (on : bool) : unit =
  match t.full_art with
  | Some art -> Vm.Compile.set_pruning art on
  | None -> ()

(** Functions currently marked pruned (diagnostics and tests). *)
let pruned_fids (t : t) : int = t.pruned

(* ------------------------------------------------------------------ *)
(* Introspection — read-only tallies for the metrics registry. *)

(** Wall spent compiling this tracer's artifacts ([0.] unclocked). *)
let compile_seconds (t : t) : float = t.compile_s

(** Distinct novelty signals recorded as seen. *)
let seen_signals (t : t) : int = Hashtbl.length t.seen

(** Engine-level tallies from the compiled artifacts: bulk-burn
    rollback counts summed over both artifacts, fusion shape from the
    full artifact. [None] for the interpreter engine. *)
let artifact_stats (t : t) :
    (Vm.Compile.runtime_stats * Vm.Compile.static_stats) option =
  match (t.full_art, t.sig_art) with
  | None, None -> None
  | full, sg ->
      let r art =
        match art with
        | Some a -> Vm.Compile.runtime_stats a
        | None -> { Vm.Compile.rollbacks = 0; careful_units = 0 }
      in
      let rf = r full and rs = r sg in
      let runtime =
        {
          Vm.Compile.rollbacks = rf.rollbacks + rs.rollbacks;
          careful_units = rf.careful_units + rs.careful_units;
        }
      in
      let static =
        match full with
        | Some a -> Vm.Compile.static_stats a
        | None ->
            { Vm.Compile.chains = 0; chain_blocks = 0; chain_max = 0; dup_instrs = 0 }
      in
      Some (runtime, static)
