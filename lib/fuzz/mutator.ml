(** Input mutation engine: the AFL havoc stack, splicing, and an
    input-to-state substitution stage fed by comparison operands captured
    by the VM (the stand-in for AFL++'s cmplog/Redqueen, which the paper
    enables for all fuzzer configurations). The mutators are byte-oriented
    and deliberately mirror afl-fuzz's repertoire so that the feedback
    mechanisms — not the mutators — differentiate the configurations.

    The havoc stack mutates a pooled {!scratch} buffer in place — one
    growable [Bytes.t] plus a length cursor per campaign, mirroring the
    VM's [exec_ctx] design — and materialises exactly one string per
    child ([Bytes.sub_string] at the end). Every operator draws from the
    RNG in the same order, with the same bounds, as the historical
    string-round-trip implementation (kept as the differential oracle in
    [test/mutator_ref.ml]), so campaign trajectories are byte-identical
    to the allocating engine. *)

let interesting8 = [| -128; -1; 0; 1; 16; 32; 64; 100; 127 |]

let interesting16 =
  [| -32768; -129; 128; 255; 256; 512; 1000; 1024; 4096; 32767 |]

let max_len = 4096

let clamp_len s = if String.length s > max_len then String.sub s 0 max_len else s

(* --- input-to-state substitution (cmplog) --- *)

(** A comparison observed at run time: the program compared [observed]
    (an input-derived value, hopefully) against [wanted]. *)
type cmp_pair = { observed : int; wanted : int }

let encode_le width v = String.init width (fun i -> Char.chr ((v asr (8 * i)) land 255))

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go 0

let replace_at s pos repl =
  let n = String.length s and m = String.length repl in
  if pos + m > n then s
  else String.sub s 0 pos ^ repl ^ String.sub s (pos + m) (n - pos - m)

(** Try to rewrite [s] so that the observed operand becomes the wanted
    one: search for little-endian (1/2/4-byte) and ASCII-decimal encodings
    of [observed] and substitute the encoding of [wanted]. Negative
    [wanted] values are emitted too — as truncated two's-complement bytes
    on the little-endian paths and as the signed decimal form on the
    ASCII path — so comparisons against negative constants stay solvable.
    Returns [s] unchanged when no encoding is found. *)
let i2s_apply rng (p : cmp_pair) (s : string) : string =
  let try_width w =
    if p.observed < 0 || (w < 8 && p.observed >= 1 lsl (8 * w)) then None
    else
      let pat = encode_le w p.observed in
      match find_sub s pat with
      | Some pos -> Some (replace_at s pos (encode_le w p.wanted))
      | None -> None
  in
  let try_ascii () =
    if p.observed < 0 then None
    else
      let pat = string_of_int p.observed in
      if String.length pat = 0 then None
      else
        match find_sub s pat with
        | Some pos ->
            let n = String.length s in
            let repl = string_of_int p.wanted in
            Some
              (clamp_len
                 (String.sub s 0 pos ^ repl
                 ^ String.sub s (pos + String.length pat)
                     (n - pos - String.length pat)))
        | None -> None
  in
  let candidates = List.filter_map (fun f -> f ()) [
    (fun () -> try_width 1);
    (fun () -> try_width 2);
    (fun () -> try_width 4);
    try_ascii;
  ]
  in
  match candidates with
  | [] -> s
  | l -> Rng.choose_list rng l

(* --- the pooled mutation buffer --- *)

(** Reusable per-campaign mutation state: the child under construction
    ([buf] up to [len]) and a staging area for chunk duplication. Both
    grow on demand and are retained across candidates. *)
type scratch = {
  mutable buf : Bytes.t;
  mutable len : int;
  mutable tmp : Bytes.t;  (** staging for duplicate-chunk sources *)
}

(* Capacity head-room: lengths stay <= max_len + 8 between operators
   (insert does not clamp, matching the historical engine), and the
   worst transient during duplicate-chunk is len * 3/2; double max_len
   covers both without reallocation in steady state. *)
let create_scratch () =
  { buf = Bytes.create (2 * max_len); len = 0; tmp = Bytes.create max_len }

let ensure_buf (sc : scratch) n =
  if Bytes.length sc.buf < n then begin
    let bigger = Bytes.create (max n (2 * Bytes.length sc.buf)) in
    Bytes.blit sc.buf 0 bigger 0 sc.len;
    sc.buf <- bigger
  end

let ensure_tmp (sc : scratch) n =
  if Bytes.length sc.tmp < n then sc.tmp <- Bytes.create (max n (2 * Bytes.length sc.tmp))

(* --- individual havoc operations, in place on the scratch buffer ---
   Each draws from the RNG in exactly the order and with exactly the
   bounds of the string-round-trip engine (see test/mutator_ref.ml). *)

let flip_bit sc rng =
  if sc.len > 0 then begin
    let i = Rng.int rng sc.len in
    let bit = Rng.int rng 8 in
    Bytes.set sc.buf i (Char.chr (Char.code (Bytes.get sc.buf i) lxor (1 lsl bit)))
  end

let set_random_byte sc rng =
  if sc.len > 0 then Bytes.set sc.buf (Rng.int rng sc.len) (Rng.byte rng)

let add_sub_byte sc rng =
  if sc.len > 0 then begin
    let i = Rng.int rng sc.len in
    let delta = Rng.range rng 1 35 in
    let delta = if Rng.bool rng then delta else -delta in
    Bytes.set sc.buf i (Char.chr ((Char.code (Bytes.get sc.buf i) + delta) land 255))
  end

let set_interesting8 sc rng =
  if sc.len > 0 then begin
    let i = Rng.int rng sc.len in
    Bytes.set sc.buf i (Char.chr (Rng.choose rng interesting8 land 255))
  end

let set_interesting16 sc rng =
  if sc.len >= 2 then begin
    let i = Rng.int rng (sc.len - 1) in
    let v = Rng.choose rng interesting16 land 0xffff in
    Bytes.set sc.buf i (Char.chr (v land 255));
    Bytes.set sc.buf (i + 1) (Char.chr ((v lsr 8) land 255))
  end

let copy_chunk sc rng =
  let n = sc.len in
  if n >= 2 then begin
    let len = Rng.range rng 1 (max 1 (n / 2)) in
    let src = Rng.int rng (n - len + 1) in
    let dst = Rng.int rng (n - len + 1) in
    Bytes.blit sc.buf src sc.buf dst len
  end

(* Length-changing operations shift the tail in place. *)

let insert_random sc rng =
  let n = sc.len in
  if n < max_len then begin
    let pos = Rng.int rng (n + 1) in
    let len = Rng.range rng 1 8 in
    ensure_buf sc (n + len);
    Bytes.blit sc.buf pos sc.buf (pos + len) (n - pos);
    for i = pos to pos + len - 1 do
      Bytes.set sc.buf i (Rng.byte rng)
    done;
    sc.len <- n + len
  end

let duplicate_chunk sc rng =
  let n = sc.len in
  if n > 0 && n < max_len then begin
    let len = Rng.range rng 1 (max 1 (n / 2)) in
    let src = Rng.int rng (n - len + 1) in
    let pos = Rng.int rng (n + 1) in
    ensure_buf sc (n + len);
    ensure_tmp sc len;
    Bytes.blit sc.buf src sc.tmp 0 len;
    Bytes.blit sc.buf pos sc.buf (pos + len) (n - pos);
    Bytes.blit sc.tmp 0 sc.buf pos len;
    sc.len <- min (n + len) max_len
  end

let delete_chunk sc rng =
  let n = sc.len in
  if n > 1 then begin
    let len = Rng.range rng 1 (max 1 (n / 2)) in
    let pos = Rng.int rng (n - len + 1) in
    Bytes.blit sc.buf (pos + len) sc.buf pos (n - pos - len);
    sc.len <- n - len
  end

let splice sc rng (other : string) =
  if String.length other > 1 && sc.len > 1 then begin
    let cut_a = Rng.int rng sc.len in
    let cut_b = Rng.int rng (String.length other) in
    let total = min (cut_a + String.length other - cut_b) max_len in
    ensure_buf sc total;
    (* total < cut_a is possible when len transiently exceeds max_len
       (insert does not clamp): the child is then just our clamped
       prefix, which is already in place. *)
    if total > cut_a then
      Bytes.blit_string other cut_b sc.buf cut_a (total - cut_a);
    sc.len <- total
  end

(* In-place input-to-state: locate candidate encodings of [observed]
   (little-endian w=1/2/4, then ASCII decimal — the same fixed probe
   order as the string engine), draw among the hits, rewrite in place. *)

(* The search loops carry all state as parameters: inner [let rec]
   helpers would capture their environment and allocate a closure per
   probe, which dominated the i2s hot path. *)
let rec le_eq b pos v width j =
  j = width
  || Char.code (Bytes.unsafe_get b (pos + j)) = (v asr (8 * j)) land 255
     && le_eq b pos v width (j + 1)

let rec find_le_from b n v width pos =
  if pos + width > n then -1
  else if le_eq b pos v width 0 then pos
  else find_le_from b n v width (pos + 1)

let find_le b n ~width v = find_le_from b n v width 0

let rec bytes_eq buf pos pat poff m j =
  j = m
  || Bytes.unsafe_get buf (pos + j) = Bytes.unsafe_get pat (poff + j)
     && bytes_eq buf pos pat poff m (j + 1)

let rec find_bytes_from buf n pat poff m pos =
  if pos + m > n then -1
  else if bytes_eq buf pos pat poff m 0 then pos
  else find_bytes_from buf n pat poff m (pos + 1)

let find_bytes buf n pat poff m =
  if m = 0 then -1 else find_bytes_from buf n pat poff m 0

let write_le b pos width v =
  for j = 0 to width - 1 do
    Bytes.set b (pos + j) (Char.unsafe_chr ((v asr (8 * j)) land 255))
  done

(* Decimal rendering into a staging buffer, byte-for-byte what
   [string_of_int] produces — hand-rolled because string_of_int's format
   machinery allocates per call. Digits iterate on the negated
   (non-positive) value so [min_int] renders exactly. *)
let rec dec_ndigits n acc = if n = 0 then acc else dec_ndigits (n / 10) (acc + 1)

let rec dec_fill b base n i =
  if n <> 0 then begin
    Bytes.set b (base + i) (Char.unsafe_chr (48 - (n mod 10)));
    dec_fill b base (n / 10) (i - 1)
  end

(* Returns the length written at [off]. *)
let write_decimal (b : Bytes.t) off (v : int) : int =
  if v = 0 then begin
    Bytes.set b off '0';
    1
  end
  else begin
    let neg = v < 0 in
    let n = if neg then v else -v in
    let nd = dec_ndigits n 0 in
    let sign = if neg then 1 else 0 in
    dec_fill b (off + sign) n (nd - 1);
    if neg then Bytes.set b off '-';
    sign + nd
  end

let le_candidate buf n observed w =
  if observed < 0 || (w < 8 && observed >= 1 lsl (8 * w)) then -1
  else find_le buf n ~width:w observed

let i2s_in_place sc rng (p : cmp_pair) =
  let n = sc.len in
  let c1 = le_candidate sc.buf n p.observed 1 in
  let c2 = le_candidate sc.buf n p.observed 2 in
  let c4 = le_candidate sc.buf n p.observed 4 in
  (* decimal pattern of [observed] staged at tmp[0, m); tmp is never
     live across operators, so sharing it with duplicate-chunk is fine *)
  ensure_tmp sc 64;
  let m = if p.observed < 0 then 0 else write_decimal sc.tmp 0 p.observed in
  let ca = find_bytes sc.buf n sc.tmp 0 m in
  let ncand =
    (if c1 >= 0 then 1 else 0)
    + (if c2 >= 0 then 1 else 0)
    + (if c4 >= 0 then 1 else 0)
    + if ca >= 0 then 1 else 0
  in
  if ncand > 0 then begin
    (* the single draw Rng.choose_list made over the candidate list,
       which was built in this width-then-ascii order *)
    let k = Rng.int rng ncand in
    let k =
      if c1 >= 0 then
        if k = 0 then begin
          write_le sc.buf c1 1 p.wanted;
          -1
        end
        else k - 1
      else k
    in
    let k =
      if k >= 0 && c2 >= 0 then
        if k = 0 then begin
          write_le sc.buf c2 2 p.wanted;
          -1
        end
        else k - 1
      else k
    in
    let k =
      if k >= 0 && c4 >= 0 then
        if k = 0 then begin
          write_le sc.buf c4 4 p.wanted;
          -1
        end
        else k - 1
      else k
    in
    if k >= 0 && ca >= 0 then begin
      (* replace the pattern at [ca] by the decimal of [wanted], staged
         at tmp[32, 32 + r) *)
      let r = write_decimal sc.tmp 32 p.wanted in
      let new_n = n - m + r in
      ensure_buf sc new_n;
      Bytes.blit sc.buf (ca + m) sc.buf (ca + r) (n - ca - m);
      Bytes.blit sc.tmp 32 sc.buf ca r;
      sc.len <- min new_n max_len
    end
  end

(* --- havoc --- *)

(** One havoc-mutated child of [s], built in place in [scratch] (read it
    from [sc.buf] up to [sc.len]): a random stack of 1–8 operations.
    [cmps] supplies captured comparison operands for the input-to-state
    operator; [splice_with] (when provided) allows the crossover operator
    into a second corpus entry. Allocates nothing in steady state — the
    campaign executes the child straight out of the buffer
    ({!Vm.Interp.run_ctx_sub}) and materialises a string only on
    retention. *)
let havoc_in_place (sc : scratch) ?(cmps = [||]) ?splice_with rng (s : string)
    : unit =
  let slen = String.length s in
  if slen = 0 then begin
    ensure_buf sc 1;
    Bytes.set sc.buf 0 (Rng.byte rng);
    sc.len <- 1
  end
  else begin
    ensure_buf sc slen;
    Bytes.blit_string s 0 sc.buf 0 slen;
    sc.len <- slen
  end;
  let stack = 1 lsl Rng.range rng 0 3 in
  let ncmps = Array.length cmps in
  let n_ops = 10 in
  let bound =
    n_ops
    + (if ncmps = 0 then 0 else 3)
    + (match splice_with with None -> 0 | Some _ -> 1)
  in
  for _ = 1 to stack do
    let op = Rng.int rng bound in
    match op with
    | 0 | 1 -> flip_bit sc rng
    | 2 -> set_random_byte sc rng
    | 3 | 4 -> add_sub_byte sc rng
    | 5 -> set_interesting8 sc rng
    | 6 -> set_interesting16 sc rng
    | 7 -> copy_chunk sc rng
    | 8 -> insert_random sc rng
    | 9 ->
        if Rng.bool rng then duplicate_chunk sc rng else delete_chunk sc rng
    | (10 | 11 | 12) when ncmps > 0 ->
        (* input-to-state: solve an observed comparison *)
        i2s_in_place sc rng cmps.(Rng.int rng ncmps)
    | _ -> begin
        (* splice: take a prefix of us and a suffix of the other entry *)
        match splice_with with
        | Some other -> splice sc rng other
        | None -> ()
      end
  done

(** {!havoc_in_place} plus one [Bytes.sub_string] for the child. *)
let havoc_into (sc : scratch) ?cmps ?splice_with rng (s : string) : string =
  havoc_in_place sc ?cmps ?splice_with rng s;
  Bytes.sub_string sc.buf 0 sc.len

(** Convenience wrapper allocating a fresh scratch per call — cold paths
    and tests only; campaigns hold one scratch and use {!havoc_in_place}
    or {!havoc_into}. *)
let havoc ?cmps ?splice_with rng (s : string) : string =
  havoc_into (create_scratch ()) ?cmps ?splice_with rng s

(** The deterministic stage (walking bit flips and interesting bytes) used
    by tests and the classic-AFL profile; returns all children. *)
let deterministic (s : string) : string list =
  let out = ref [] in
  let n = String.length s in
  for i = 0 to n - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code s.[i] lxor (1 lsl bit)));
      out := Bytes.to_string b :: !out
    done;
    Array.iter
      (fun v ->
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (v land 255));
        out := Bytes.to_string b :: !out)
      interesting8
  done;
  List.rev !out
