(** Post-campaign measurement utilities: the afl-showmap analogue used by
    the coverage study (Table IV) and the queue-trimming primitives shared
    by the culling and opportunistic strategies. *)

module Int_set : Set.S with type elt = int

(** Edge-coverage indices hit by one input under the pcguard-style
    listener (raw tuple identities; bucketing is irrelevant here). *)
val edges_of_input : ?fuel:int -> Minic.Ir.program -> string -> Int_set.t

(** Union of edge coverage over a corpus — "afl-showmap over the queue".
    [obs] counts the replays (off-budget executions) without affecting
    the result. *)
val edge_union :
  ?fuel:int -> ?obs:Obs.Observer.t -> Minic.Ir.program -> string list -> Int_set.t

(** Greedy edge-coverage-preserving trim (the favored-corpus construction
    the paper uses as its culling criterion, §III-B1, and as the
    opportunistic queue pre-processing, §III-B2). Order-stable,
    duplicate-free. [obs] counts replays and receives a [Cull] event with
    the before/after sizes; the trim itself is observer-independent. *)
val edge_preserving_cull :
  ?fuel:int -> ?obs:Obs.Observer.t -> Minic.Ir.program -> string list -> string list

(** Same trim but preserving *path* coverage — the alternative criterion
    the paper tested and rejected (§III-B1 footnote); kept for the
    ablation bench. *)
val path_preserving_cull :
  ?fuel:int ->
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?obs:Obs.Observer.t ->
  Minic.Ir.program ->
  string list ->
  string list
