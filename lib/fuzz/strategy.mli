(** The fuzzer configurations of the evaluation (§V) as strategy drivers
    over {!Campaign}: the plain feedbacks, the culling driver (with
    edge-preserving, path-preserving and random criteria), and the
    opportunistic two-phase driver. *)

type spec =
  | Plain of Pathcov.Feedback.mode
  | Cull of { rounds : int; criterion : [ `Edges | `Paths | `Random ] }
  | Opportunistic

type fuzzer = { name : string; spec : spec; cmplog : bool }

(** AFL++'s default edge feedback with cmplog — the paper's baseline. *)
val pcguard : fuzzer

(** The baseline path-aware fuzzer (§III-A). *)
val path : fuzzer

(** [path] with periodic edge-coverage-preserving queue culling (§III-B1). *)
val cull : ?rounds:int -> unit -> fuzzer

(** The Appendix D ablation: random trimming of 84–98% per round. *)
val cull_r : ?rounds:int -> unit -> fuzzer

(** Culling by path identity — the criterion the paper tested and
    rejected (§III-B1 footnote). *)
val cull_p : ?rounds:int -> unit -> fuzzer

(** The opportunistic strategy (§III-B2): first half of the budget under
    edge feedback, queue trimmed edge-preserving, second half path-aware;
    only the second phase's findings count. *)
val opp : fuzzer

(** PathAFL-like whole-program path sketch atop an AFL-2.52b-like profile
    (no cmplog), Appendix C. *)
val pathafl : fuzzer

(** Plain AFL-like edge fuzzing (no cmplog), Appendix C. *)
val afl : fuzzer

(** Sensitivity-ladder extras (§VII). *)
val block : fuzzer

val ngram : int -> fuzzer

(** Campaign-level outcome of running one fuzzer on one subject. *)
type run_result = {
  fuzzer : string;
  final_queue : string list;  (** inputs in the queue when the budget ended *)
  queue_size : int;
  triage : Triage.t;
  execs : int;
  queue_series : (int * int) list;
  sum_exec_blocks : int;
}

(** Wrap one finished campaign in the run-level report shape (the
    sharded CLI path reports a {!Shard.result.campaign} through this). *)
val of_campaign : string -> Campaign.result -> run_result

(** Run [fuzzer] on a program for [budget] executions. [plans] shares the
    Ball–Larus artifact across configurations of a trial. [obs] is shared
    across every phase of a multi-phase strategy (cull rounds, the two
    opportunistic halves), so counters and snapshots accumulate over the
    whole campaign; fuzzing behaviour is identical without it. [engine]
    (default [Tracer.Interp]; [Compiled] and [Fused] select the staged
    artifact, without or with superblock fusion) and [selective]
    (default off) pick the execution engine and selective tracing for
    every phase — both are trajectory-invisible (test-enforced
    differentially), and every phase's havoc cohorts run through the
    batched [Tracer.run_*_batch] entries whatever the engine. *)
val run :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?obs:Obs.Observer.t ->
  ?engine:Tracer.engine ->
  ?selective:bool ->
  budget:int ->
  trial_seed:int ->
  fuzzer ->
  Minic.Ir.program ->
  seeds:string list ->
  run_result
