(** Execution-engine selection and selective tracing for campaigns.

    A tracer wraps one prepared subject with a choice of execution
    engine — the reference CFG interpreter, the {!Vm.Compile} staged
    artifact, the staged artifact with superblock fusion
    ([Vm.Compile.compile ~fused]), or the {!Vm.Emit} per-subject
    generated-and-Dynlink'd native unit (degrading to fused, with
    {!emit_fallback} recording why, when emission fails) — plus,
    optionally, {e selective tracing}: bulk executions
    run under a near-null specialisation that folds only a 62-bit
    novelty signal, and a full-instrumentation replay rebuilds the
    classified trace exactly when the signal is new. Signal equality
    implies trace equality (up to hash collisions), so campaign
    trajectories are byte-identical across engines × selective on/off —
    DESIGN.md §12 gives the argument, the differential suite enforces
    it. *)

type engine = Interp | Compiled | Fused | Native

val engine_name : engine -> string

(** Inverse of {!engine_name}; [None] on unknown names (CLI parsing). *)
val engine_of_name : string -> engine option

(** Every engine name, in presentation order — the single source of
    truth for CLI documentation, diagnostics and bench filters. *)
val engine_names : string list

type t

(** Build a tracer over a prepared subject. [shared] (default [true])
    memoises compiled artifacts per domain ({!Vm.Compile.cached});
    sharded campaigns pass [~shared:false] to compile fresh per shard —
    the artifact's rebindable state is single-threaded. [cmplog] elides
    comparison probes from compiled code when the campaign binds a no-op
    [h_cmp] anyway. Engine [Interp] with [selective] builds a private
    signal context over {!Vm.Compile.signal_hooks}. [clock]
    (observation-only) times artifact compilation into
    {!compile_seconds}. *)
val make :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?clock:(unit -> float) ->
  ?shared:bool ->
  engine:engine ->
  selective:bool ->
  cmplog:bool ->
  mode:Pathcov.Feedback.mode ->
  Vm.Interp.prepared ->
  t

val engine_of : t -> engine
val selective : t -> bool

(** [Some reason] when a [Native] tracer failed to emit (no compiler,
    compile error, Dynlink refusal, forced [PATHFUZZ_EMIT_FAIL]) and
    degraded to the fused closure engine; [None] otherwise. *)
val emit_fallback : t -> string option

(** Retarget the compiled artifact's probes at the campaign's trace map
    and cmplog probe (no-op for the interpreter engine, whose hooks are
    installed in the campaign context directly). *)
val bind :
  t -> trace:Pathcov.Coverage_map.t -> h_cmp:(int -> int -> unit) -> unit

(** {2 Execution}

    [run_full]/[run_full_sub] execute with full instrumentation through
    the selected engine on the given pooled context (compiled probes
    ignore the context's hooks). [run_signal]/[run_signal_sub] execute
    the signal specialisation and latch {!last_signal}; they require a
    selective tracer. *)

val run_full :
  t ->
  Vm.Interp.exec_ctx ->
  fuel:int ->
  max_depth:int ->
  input:string ->
  Vm.Interp.outcome

val run_full_sub :
  t ->
  Vm.Interp.exec_ctx ->
  fuel:int ->
  max_depth:int ->
  buf:Bytes.t ->
  len:int ->
  Vm.Interp.outcome

val run_signal :
  t ->
  Vm.Interp.exec_ctx ->
  fuel:int ->
  max_depth:int ->
  input:string ->
  Vm.Interp.outcome

val run_signal_sub :
  t ->
  Vm.Interp.exec_ctx ->
  fuel:int ->
  max_depth:int ->
  buf:Bytes.t ->
  len:int ->
  Vm.Interp.outcome

(** {2 Batched cohort execution}

    Run [n] candidates back-to-back on one context: [gen k] produces
    the [k]-th candidate as a [(buf, len)] scratch view, [sink k out]
    consumes its result before [gen (k + 1)] runs, so a single scratch
    buffer may back the whole cohort. Per-candidate semantics are
    identical to a [run_full_sub]/[run_signal_sub] loop; the batch
    hoists the engine dispatch out of the loop and lets back-to-back
    runs take the context's journaled fast-reset path. [clock]/[vm_s]
    bracket each VM run alone. The signal variant latches
    {!last_signal} before each [sink] call and requires a selective
    tracer (the interpreter case runs on the private signal context —
    the passed context is ignored, as in [run_signal_sub]). *)

val run_full_batch :
  ?clock:(unit -> float) ->
  ?vm_s:(float -> unit) ->
  t ->
  Vm.Interp.exec_ctx ->
  fuel:int ->
  max_depth:int ->
  n:int ->
  gen:(int -> Bytes.t * int) ->
  sink:(int -> Vm.Interp.outcome -> unit) ->
  unit

val run_signal_batch :
  ?clock:(unit -> float) ->
  ?vm_s:(float -> unit) ->
  t ->
  Vm.Interp.exec_ctx ->
  fuel:int ->
  max_depth:int ->
  n:int ->
  gen:(int -> Bytes.t * int) ->
  sink:(int -> Vm.Interp.outcome -> unit) ->
  unit

(** The signal latched by the last [run_signal]/[run_signal_sub]. *)
val last_signal : t -> int

(** {2 Seen-signal set}

    An in-memory cache of "a trace with this signal is already folded
    into the virgin map". Deliberately absent from checkpoints: a
    resumed campaign re-replays a few signals and reaches identical
    decisions. *)

val seen_signal : t -> int -> bool
val mark_seen : t -> int -> unit

(** {2 Probe self-pruning}

    Active only for compiled [Path] artifacts under selective tracing,
    and only around calibration runs — the one full-instrumentation
    site whose trace feeds nothing but the virgin merge, so eliding
    saturated Ball–Larus commits cannot perturb the trajectory. *)

val pruning_available : t -> bool

(** Recompute per-function pruning marks from the virgin map: a function
    prunes when every index in its {!Vm.Compile.path_universe} is
    saturated (virgin byte 0). Recomputed from scratch each call, so a
    restored virgin map reproduces the uninterrupted run's marks. *)
val refresh_pruning : t -> virgin:Pathcov.Coverage_map.t -> unit

(** Gate the pruning marks on or off; initial state is off. *)
val set_pruning : t -> bool -> unit

(** Functions currently marked pruned (diagnostics and tests). *)
val pruned_fids : t -> int

(** {2 Introspection}

    Read-only tallies the campaign drains into its metrics registry at
    deterministic points; reading them never perturbs execution. *)

(** Wall spent compiling this tracer's artifacts ([0.] when [make] was
    given no clock). *)
val compile_seconds : t -> float

(** Distinct novelty signals recorded as seen. *)
val seen_signals : t -> int

(** Engine-level tallies from the compiled artifacts: bulk-burn
    rollback counts summed over both artifacts, fusion shape from the
    full artifact. [None] for the interpreter engine. *)
val artifact_stats :
  t -> (Vm.Compile.runtime_stats * Vm.Compile.static_stats) option
