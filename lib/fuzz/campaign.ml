(** The coverage-guided fuzzing loop: an afl-fuzz-shaped campaign over the
    MiniC VM, parameterised by the feedback listener (§IV "Integration").

    A campaign owns a virgin map, a crash-virgin map, the queue, and the
    triage record. Its budget is an execution count — the deterministic
    stand-in for the paper's wall-clock budgets — and all randomness flows
    from one [Rng.t], so a run is a pure function of
    (program, seeds, config). *)

type config = {
  mode : Pathcov.Feedback.mode;
  budget : int;  (** total target executions *)
  rng_seed : int;
  fuel : int;  (** VM fuel per execution (the timeout analogue) *)
  max_depth : int;  (** VM call-depth limit per execution *)
  map_size_log2 : int;
  cmplog : bool;  (** enable comparison-operand capture + I2S mutations *)
  max_queue : int;  (** hard safety bound on queue growth *)
}

let default_config =
  {
    mode = Pathcov.Feedback.Edge;
    budget = 20_000;
    rng_seed = 1;
    fuel = Vm.Interp.default_fuel;
    max_depth = Vm.Interp.default_max_depth;
    map_size_log2 = 16;
    cmplog = true;
    max_queue = 500_000;
  }

type result = {
  config : config;
  corpus : Corpus.t;
  triage : Triage.t;
  execs : int;  (** executions actually performed *)
  queue_series : (int * int) list;  (** (execs, queue size) samples *)
  sum_exec_blocks : int;  (** total VM blocks executed, throughput proxy *)
}

(** Final queue inputs, in discovery order. *)
let queue_inputs (r : result) : string list =
  List.map (fun (e : Corpus.entry) -> e.data) (Corpus.to_list r.corpus)

type state = {
  prepared : Vm.Interp.prepared;
  ctx : Vm.Interp.exec_ctx;  (** pooled execution context, reused per exec *)
  cfg : config;
  feedback : Pathcov.Feedback.t;
  virgin : Pathcov.Coverage_map.t;
  crash_virgin : Pathcov.Coverage_map.t;
  corpus : Corpus.t;
  triage : Triage.t;
  rng : Rng.t;
  mutable execs : int;
  mutable blocks : int;
  mutable series : (int * int) list;
  mutable sample_every : int;
  cmp_buf : (int * int, unit) Hashtbl.t;  (** per-exec comparison pairs *)
}

(* The instrumentation hook set installed in the context at state-creation
   time. The cmplog probe (and its per-exec buffer bookkeeping) exists
   only when the config asks for it. *)
let make_hooks (cfg : config) (fb : Pathcov.Feedback.t)
    (cmp_buf : (int * int, unit) Hashtbl.t) : Vm.Interp.hooks =
  {
    Vm.Interp.h_call = fb.on_call;
    h_block = fb.on_block;
    h_edge = fb.on_edge;
    h_ret = fb.on_ret;
    h_cmp =
      (if cfg.cmplog then (fun a b ->
         if a <> b && Hashtbl.length cmp_buf < 64 then
           Hashtbl.replace cmp_buf (a, b) ())
       else fun _ _ -> ());
  }

(* Run one input; the trace map is left classified for novelty checks. *)
let execute (st : state) (input : string) : Vm.Interp.outcome =
  st.feedback.reset ();
  Pathcov.Coverage_map.clear st.feedback.trace;
  if st.cfg.cmplog then Hashtbl.reset st.cmp_buf;
  let out =
    Vm.Interp.run_ctx ~fuel:st.cfg.fuel ~max_depth:st.cfg.max_depth st.ctx ~input
  in
  st.execs <- st.execs + 1;
  st.blocks <- st.blocks + out.blocks_executed;
  Pathcov.Coverage_map.classify st.feedback.trace;
  if st.execs mod st.sample_every = 0 then
    st.series <- (st.execs, Corpus.size st.corpus) :: st.series;
  out

let current_cmps (st : state) : Mutator.cmp_pair list =
  Hashtbl.fold
    (fun (a, b) () acc ->
      { Mutator.observed = a; wanted = b } :: { Mutator.observed = b; wanted = a } :: acc)
    st.cmp_buf []

(* Incremental update_bitmap_score: claim top_rated slots that this entry
   covers more cheaply; favored flags are refreshed in full at cycle
   boundaries by [Corpus.recompute_favored]. *)
let update_top_rated (st : state) (e : Corpus.entry) =
  Array.iter
    (fun idx ->
      match Hashtbl.find_opt st.corpus.top_rated idx with
      | Some best when Corpus.fav_factor best <= Corpus.fav_factor e -> ()
      | _ ->
          Hashtbl.replace st.corpus.top_rated idx e;
          if not e.favored then begin
            e.favored <- true;
            if e.times_fuzzed = 0 then
              st.corpus.pending_favored <- st.corpus.pending_favored + 1
          end)
    e.indices

(* Crash/hang bookkeeping shared by every execution site — seed import,
   queue-entry calibration and mutated candidates all triage the same way,
   so no outcome can be dropped on the floor. *)
let triage_outcome (st : state) (out : Vm.Interp.outcome) ~(input : string) : unit =
  match out.status with
  | Vm.Interp.Crashed crash ->
      let coverage_novel =
        Pathcov.Coverage_map.merge_into ~virgin:st.crash_virgin st.feedback.trace
        <> Pathcov.Coverage_map.Nothing
      in
      Triage.record_crash st.triage ~crash ~input ~at_exec:st.execs ~coverage_novel
  | Vm.Interp.Hung -> Triage.record_hang st.triage
  | Vm.Interp.Finished _ -> ()

(* Evaluate one candidate input end to end: execute, triage crashes and
   hangs, retain on coverage novelty. *)
let process (st : state) ~depth (input : string) : unit =
  let out = execute st input in
  match out.status with
  | Vm.Interp.Crashed _ | Vm.Interp.Hung -> triage_outcome st out ~input
  | Vm.Interp.Finished _ ->
      (* The capacity check precedes the virgin merge: a full queue must
         not mark coverage as seen without retaining an input reaching
         it, or that coverage becomes unreachable for the whole run. *)
      if Corpus.size st.corpus < st.cfg.max_queue then begin
        let novelty =
          Pathcov.Coverage_map.merge_into ~virgin:st.virgin st.feedback.trace
        in
        if novelty <> Pathcov.Coverage_map.Nothing then begin
          let indices =
            Array.of_list (Pathcov.Coverage_map.set_indices st.feedback.trace)
          in
          let e =
            Corpus.add st.corpus ~data:input ~indices
              ~exec_blocks:(max 1 out.blocks_executed) ~depth ~found_at:st.execs
          in
          update_top_rated st e
        end
      end

(* Seeds are always retained (afl imports the full seed directory). *)
let add_seed (st : state) (input : string) : unit =
  let out = execute st input in
  match out.status with
  | Vm.Interp.Crashed _ | Vm.Interp.Hung -> triage_outcome st out ~input
  | Vm.Interp.Finished _ ->
      ignore (Pathcov.Coverage_map.merge_into ~virgin:st.virgin st.feedback.trace);
      let indices =
        Array.of_list (Pathcov.Coverage_map.set_indices st.feedback.trace)
      in
      let e =
        Corpus.add st.corpus ~data:input ~indices
          ~exec_blocks:(max 1 out.blocks_executed) ~depth:0 ~found_at:st.execs
      in
      update_top_rated st e

(** One calibration run of a queue entry, capturing cmplog operand pairs
    for input-to-state mutation (the colorization stage of AFL++). The
    outcome flows through the same triage/novelty path as [process]: a
    crash or hang here — possible for the synthetic fallback entry, whose
    data never executed cleanly — must be recorded, not discarded. *)
let calibrate (st : state) (e : Corpus.entry) : Mutator.cmp_pair list =
  let out = execute st e.data in
  (match out.status with
  | Vm.Interp.Crashed _ | Vm.Interp.Hung -> triage_outcome st out ~input:e.data
  | Vm.Interp.Finished _ ->
      ignore (Pathcov.Coverage_map.merge_into ~virgin:st.virgin st.feedback.trace));
  current_cmps st

(* afl-fuzz's skip probabilities in fuzz_one. *)
let should_skip (st : state) (e : Corpus.entry) : bool =
  if e.favored then false
  else if st.corpus.pending_favored > 0 then Rng.chance st.rng ~num:99 ~den:100
  else if e.times_fuzzed > 0 then Rng.chance st.rng ~num:95 ~den:100
  else Rng.chance st.rng ~num:75 ~den:100

(* Havoc energy for one queue entry (a simplified perf_score). *)
let energy (st : state) (e : Corpus.entry) : int =
  let base = 48 in
  let base = if e.favored then base * 2 else base in
  let base = if e.times_fuzzed = 0 then base * 2 else base in
  let base = if e.depth > 4 then base * 5 / 4 else base in
  min base (max 8 (st.cfg.budget / 64))

let random_other (st : state) (e : Corpus.entry) : string option =
  match st.corpus.entries with
  | [] | [ _ ] -> None
  | l ->
      let pick = List.nth l (Rng.int st.rng (List.length l)) in
      if pick.id = e.id then None else Some pick.data

(** Build a fresh campaign state. Exposed (alongside [execute],
    [add_seed], [process] and [calibrate]) so tests can drive individual
    pipeline stages directly. *)
let make_state ?plans ?(config = default_config) (prog : Minic.Ir.program) : state =
  let feedback =
    Pathcov.Feedback.make ~size_log2:config.map_size_log2 ?plans config.mode prog
  in
  let prepared = Vm.Interp.prepare prog in
  let cmp_buf = Hashtbl.create 64 in
  let hooks = make_hooks config feedback cmp_buf in
  {
    prepared;
    ctx = Vm.Interp.create_ctx ~hooks prepared;
    cfg = config;
    feedback;
    virgin = Pathcov.Coverage_map.create_virgin ~size_log2:config.map_size_log2 ();
    crash_virgin =
      Pathcov.Coverage_map.create_virgin ~size_log2:config.map_size_log2 ();
    corpus = Corpus.create ();
    triage = Triage.create ();
    rng = Rng.create config.rng_seed;
    execs = 0;
    blocks = 0;
    series = [];
    sample_every = max 1 (config.budget / 64);
    cmp_buf;
  }

(** Run a campaign. [plans] shares a precomputed Ball–Larus artifact. *)
let run ?plans ?(config = default_config) (prog : Minic.Ir.program)
    ~(seeds : string list) : result =
  let st = make_state ?plans ~config prog in
  List.iter (add_seed st) seeds;
  (* Never start with an empty queue: synthesise a minimal seed. *)
  if Corpus.size st.corpus = 0 then add_seed st "A";
  if Corpus.size st.corpus = 0 then
    (* even "A" crashes; fall back to an entry with no coverage *)
    ignore
      (Corpus.add st.corpus ~data:"A" ~indices:[||] ~exec_blocks:1 ~depth:0
         ~found_at:st.execs);
  while st.execs < config.budget do
    Corpus.recompute_favored st.corpus;
    let snapshot = Corpus.to_list st.corpus in
    List.iter
      (fun (e : Corpus.entry) ->
        if st.execs < config.budget && not (should_skip st e) then begin
          let cmps = if config.cmplog then calibrate st e else [] in
          let n = energy st e in
          let i = ref 0 in
          while !i < n && st.execs < config.budget do
            let child =
              Mutator.havoc ~cmps ?splice_with:(random_other st e) st.rng e.data
            in
            process st ~depth:(e.depth + 1) child;
            incr i
          done;
          e.times_fuzzed <- e.times_fuzzed + 1;
          if e.favored && e.times_fuzzed = 1 then
            st.corpus.pending_favored <- max 0 (st.corpus.pending_favored - 1)
        end)
      snapshot
  done;
  {
    config;
    corpus = st.corpus;
    triage = st.triage;
    execs = st.execs;
    queue_series = List.rev ((st.execs, Corpus.size st.corpus) :: st.series);
    sum_exec_blocks = st.blocks;
  }
