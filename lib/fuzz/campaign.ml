(** The coverage-guided fuzzing loop: an afl-fuzz-shaped campaign over the
    MiniC VM, parameterised by the feedback listener (§IV "Integration").

    A campaign owns a virgin map, a crash-virgin map, the queue, and the
    triage record. Its budget is an execution count — the deterministic
    stand-in for the paper's wall-clock budgets — and all randomness flows
    from one [Rng.t], so a run is a pure function of
    (program, seeds, config).

    Every campaign carries an {!Obs.Observer.t} (a fresh counters-only
    one when the caller passes none): the preallocated counter block is
    bumped inline, snapshot rows are sampled every [budget / 64] execs,
    and structured events flow to the observer's sink from the cold
    paths (retention, crashes, cycle boundaries, calibration). Observers
    obey the zero-perturbation rule — they never consume RNG draws and
    fuzzing decisions never branch on observer state — so observed and
    unobserved campaigns run byte-identical trajectories (test-enforced). *)

type config = {
  mode : Pathcov.Feedback.mode;
  budget : int;  (** total target executions *)
  rng_seed : int;
  fuel : int;  (** VM fuel per execution (the timeout analogue) *)
  max_depth : int;  (** VM call-depth limit per execution *)
  map_size_log2 : int;
  cmplog : bool;  (** enable comparison-operand capture + I2S mutations *)
  max_queue : int;  (** hard safety bound on queue growth *)
  engine : Tracer.engine;  (** execution engine (trajectory-invisible) *)
  selective : bool;  (** signal-first execution with full replay on novelty *)
}

let default_config =
  {
    mode = Pathcov.Feedback.Edge;
    budget = 20_000;
    rng_seed = 1;
    fuel = Vm.Interp.default_fuel;
    max_depth = Vm.Interp.default_max_depth;
    map_size_log2 = 16;
    cmplog = true;
    max_queue = 500_000;
    engine = Tracer.Interp;
    selective = false;
  }

type result = {
  config : config;
  corpus : Corpus.t;
  triage : Triage.t;
  execs : int;  (** executions actually performed *)
  queue_series : (int * int) list;  (** (execs, queue size) samples *)
  sum_exec_blocks : int;  (** total VM blocks executed, throughput proxy *)
  havocs : int;  (** mutated candidates generated *)
  snapshots : Obs.Snapshot.row list;  (** this run's periodic stats rows *)
  vm_s : float;  (** wall inside the VM (0 unless the observer has a clock) *)
  mut_s : float;  (** wall inside the mutator (0 unless clocked) *)
  mut_minor_words : float;  (** GC minor words allocated by the mutator *)
}

(** Final queue inputs, in discovery order. *)
let queue_inputs (r : result) : string list =
  List.map (fun (e : Corpus.entry) -> e.data) (Corpus.to_list r.corpus)

(** Per-exec comparison-operand capture: a flat, insertion-ordered,
    deduplicated buffer bounded at {!cmp_capacity} pairs. The previous
    [(int * int, unit) Hashtbl.t] allocated a key tuple per probe hit and
    — worse — handed its pairs to the mutator in [Hashtbl.fold] order, an
    implementation detail of the hash function; program order is the
    deterministic contract. *)
type cmp_buf = {
  ops_a : int array;
  ops_b : int array;
  mutable n_cmps : int;
}

let cmp_capacity = 64

let make_cmp_buf () =
  {
    ops_a = Array.make cmp_capacity 0;
    ops_b = Array.make cmp_capacity 0;
    n_cmps = 0;
  }

let cmp_seen (b : cmp_buf) a bv =
  let rec go i =
    i < b.n_cmps
    && ((Array.unsafe_get b.ops_a i = a && Array.unsafe_get b.ops_b i = bv)
       || go (i + 1))
  in
  go 0

type state = {
  prepared : Vm.Interp.prepared;
  ctx : Vm.Interp.exec_ctx;  (** pooled execution context, reused per exec *)
  tracer : Tracer.t;  (** engine dispatch + selective-tracing state *)
  cfg : config;
  feedback : Pathcov.Feedback.t;
  virgin : Pathcov.Coverage_map.t;
  crash_virgin : Pathcov.Coverage_map.t;
  corpus : Corpus.t;
  triage : Triage.t;
  rng : Rng.t;
  mutable execs : int;  (** this campaign's executions (budget clock) *)
  mutable blocks : int;
  mutable havocs : int;
  mutable sample_every : int;  (** snapshot cadence in executions *)
  cmp_buf : cmp_buf;  (** per-exec comparison pairs, program order *)
  scratch : Mutator.scratch;  (** pooled mutation buffer, reused per child *)
  obs : Obs.Observer.t;
      (** counters + snapshots + event sink; may be shared across phases *)
  h_batch : Obs.Metrics.hist;  (** cohort sizes ([exec.batch_n]) *)
  h_dirty : Obs.Metrics.hist;  (** context dirty-reset widths *)
}

(* Span brackets on the campaign's track (track 0): plain begin/end on
   the preallocated ring when the observer carries a trace, nothing
   otherwise. Observation-only — never consults RNG or feedback state. *)
let trace_begin (st : state) (k : Obs.Trace.kind) : unit =
  match st.obs.trace with
  | Some tr -> Obs.Trace.begin_span tr ~track:0 k
  | None -> ()

let trace_end ?(arg = 0) (st : state) : unit =
  match st.obs.trace with
  | Some tr -> Obs.Trace.end_span ~arg tr ~track:0 ()
  | None -> ()

(* The instrumentation hook set installed in the context at state-creation
   time. The cmplog probe (and its per-exec buffer bookkeeping) exists
   only when the config asks for it. *)
let make_hooks (cfg : config) (fb : Pathcov.Feedback.t) (cmp_buf : cmp_buf) :
    Vm.Interp.hooks =
  {
    Vm.Interp.h_call = fb.on_call;
    h_block = fb.on_block;
    h_edge = fb.on_edge;
    h_ret = fb.on_ret;
    h_cmp =
      (if cfg.cmplog then (fun a b ->
         if a <> b && cmp_buf.n_cmps < cmp_capacity && not (cmp_seen cmp_buf a b)
         then begin
           Array.unsafe_set cmp_buf.ops_a cmp_buf.n_cmps a;
           Array.unsafe_set cmp_buf.ops_b cmp_buf.n_cmps b;
           cmp_buf.n_cmps <- cmp_buf.n_cmps + 1
         end)
       else fun _ _ -> ());
  }

(* One periodic stats row: the counter block plus the two facts only the
   campaign can see (queue size, virgin residual). The residual scan is
   word-wise over the virgin map — cheap at snapshot cadence. *)
let take_snapshot (st : state) : unit =
  Obs.Observer.snapshot st.obs
    (Obs.Snapshot.of_counters st.obs.counters
       ~queue:(Corpus.size st.corpus)
       ~virgin_residual:(Pathcov.Coverage_map.residual st.virgin))

(* Pre/post brackets around one VM run, shared by the string path and
   the scratch-buffer fast path. The trace map is left classified for
   novelty checks. *)
let pre_exec (st : state) : unit =
  st.feedback.reset ();
  Pathcov.Coverage_map.clear st.feedback.trace;
  if st.cfg.cmplog then st.cmp_buf.n_cmps <- 0

let post_exec (st : state) (out : Vm.Interp.outcome) : unit =
  st.execs <- st.execs + 1;
  st.blocks <- st.blocks + out.blocks_executed;
  let c = st.obs.counters in
  c.execs <- c.execs + 1;
  c.blocks <- c.blocks + out.blocks_executed;
  Obs.Metrics.observe st.h_dirty st.ctx.last_reset_width;
  Pathcov.Coverage_map.classify st.feedback.trace;
  if st.execs mod st.sample_every = 0 then take_snapshot st

(* Run one input with full instrumentation through the selected engine. *)
let run_full (st : state) (input : string) : Vm.Interp.outcome =
  match st.obs.clock with
  | None ->
      Tracer.run_full st.tracer st.ctx ~fuel:st.cfg.fuel
        ~max_depth:st.cfg.max_depth ~input
  | Some now ->
      let t0 = now () in
      let out =
        Tracer.run_full st.tracer st.ctx ~fuel:st.cfg.fuel
          ~max_depth:st.cfg.max_depth ~input
      in
      let c = st.obs.counters in
      c.vm_s <- c.vm_s +. (now () -. t0);
      out

let run_full_scratch (st : state) : Vm.Interp.outcome =
  let sc = st.scratch in
  match st.obs.clock with
  | None ->
      Tracer.run_full_sub st.tracer st.ctx ~fuel:st.cfg.fuel
        ~max_depth:st.cfg.max_depth ~buf:sc.buf ~len:sc.len
  | Some now ->
      let t0 = now () in
      let out =
        Tracer.run_full_sub st.tracer st.ctx ~fuel:st.cfg.fuel
          ~max_depth:st.cfg.max_depth ~buf:sc.buf ~len:sc.len
      in
      let c = st.obs.counters in
      c.vm_s <- c.vm_s +. (now () -. t0);
      out

(* Run one input. *)
let execute (st : state) (input : string) : Vm.Interp.outcome =
  pre_exec st;
  let out = run_full st input in
  post_exec st out;
  out

(* Run the candidate sitting in the mutation scratch, zero-copy. *)
let execute_scratch (st : state) : Vm.Interp.outcome =
  pre_exec st;
  let out = run_full_scratch st in
  post_exec st out;
  out

(* Selective-tracing bulk run: the near-null signal specialisation. The
   exec/block clocks advance exactly as for a fully-traced run — outcomes
   (and [blocks_executed]) are engine- and spec-invariant — so budget
   accounting, snapshot cadence and checkpoint marks are untouched by
   selective mode. The trace map stays cleared (pre_exec) and classify
   over an empty journal is a no-op. *)
let execute_signal_scratch (st : state) : Vm.Interp.outcome =
  pre_exec st;
  let sc = st.scratch in
  let out =
    match st.obs.clock with
    | None ->
        Tracer.run_signal_sub st.tracer st.ctx ~fuel:st.cfg.fuel
          ~max_depth:st.cfg.max_depth ~buf:sc.buf ~len:sc.len
    | Some now ->
        let t0 = now () in
        let out =
          Tracer.run_signal_sub st.tracer st.ctx ~fuel:st.cfg.fuel
            ~max_depth:st.cfg.max_depth ~buf:sc.buf ~len:sc.len
        in
        let c = st.obs.counters in
        c.vm_s <- c.vm_s +. (now () -. t0);
        out
  in
  post_exec st out;
  out

(* String-input twin of [execute_signal_scratch]. *)
let execute_signal (st : state) (input : string) : Vm.Interp.outcome =
  pre_exec st;
  let out =
    match st.obs.clock with
    | None ->
        Tracer.run_signal st.tracer st.ctx ~fuel:st.cfg.fuel
          ~max_depth:st.cfg.max_depth ~input
    | Some now ->
        let t0 = now () in
        let out =
          Tracer.run_signal st.tracer st.ctx ~fuel:st.cfg.fuel
            ~max_depth:st.cfg.max_depth ~input
        in
        let c = st.obs.counters in
        c.vm_s <- c.vm_s +. (now () -. t0);
        out
  in
  post_exec st out;
  out

(* Full-instrumentation replay after a signal run (or after a pruned
   calibration crash): rebuilds the classified trace for merge/triage.
   Counted as a replay, not an execution — the budget clock already
   ticked for the first run of the same candidate. *)
let reexec_full_scratch (st : state) : Vm.Interp.outcome =
  trace_begin st Obs.Trace.Replay;
  st.feedback.reset ();
  Pathcov.Coverage_map.clear st.feedback.trace;
  let out = run_full_scratch st in
  Pathcov.Coverage_map.classify st.feedback.trace;
  let c = st.obs.counters in
  c.replays <- c.replays + 1;
  trace_end st;
  out

let reexec_full (st : state) (input : string) : Vm.Interp.outcome =
  trace_begin st Obs.Trace.Replay;
  st.feedback.reset ();
  Pathcov.Coverage_map.clear st.feedback.trace;
  let out = run_full st input in
  Pathcov.Coverage_map.classify st.feedback.trace;
  let c = st.obs.counters in
  c.replays <- c.replays + 1;
  trace_end st;
  out

(** Both substitution directions per captured pair, in capture order —
    shared by the sequential calibration path and sharded work items. *)
let cmps_of_buf (b : cmp_buf) : Mutator.cmp_pair array =
  Array.init (2 * b.n_cmps) (fun k ->
      let i = k lsr 1 in
      if k land 1 = 0 then
        { Mutator.observed = b.ops_a.(i); wanted = b.ops_b.(i) }
      else { Mutator.observed = b.ops_b.(i); wanted = b.ops_a.(i) })

let current_cmps (st : state) : Mutator.cmp_pair array = cmps_of_buf st.cmp_buf

(* Incremental update_bitmap_score (afl's on-retention half, now owned by
   Corpus so the sharded merge scheduler shares it verbatim). *)
let update_top_rated (st : state) (e : Corpus.entry) =
  Corpus.claim_top_rated st.corpus e

(* Crash/hang bookkeeping shared by every execution site — seed import,
   queue-entry calibration and mutated candidates all triage the same way,
   so no outcome can be dropped on the floor. Counter bumps and Crash/Hang
   events ride on the triage record (see Triage). *)
let triage_outcome (st : state) (out : Vm.Interp.outcome) ~(input : string) : unit =
  match out.status with
  | Vm.Interp.Crashed crash ->
      trace_begin st Obs.Trace.Triage;
      let coverage_novel =
        Pathcov.Coverage_map.merge_into ~virgin:st.crash_virgin st.feedback.trace
        <> Pathcov.Coverage_map.Nothing
      in
      Triage.record_crash st.triage ~crash ~input ~at_exec:st.execs ~coverage_novel;
      trace_end st
  | Vm.Interp.Hung ->
      trace_begin st Obs.Trace.Triage;
      Triage.record_hang ~at_exec:st.execs st.triage;
      trace_end st
  | Vm.Interp.Finished _ -> ()

(* Queue-capacity bookkeeping for one evaluated finished exec. The
   capacity check precedes the virgin merge (and, under selective
   tracing, precedes marking a signal seen): a full queue must not mark
   coverage as seen without retaining an input reaching it, or that
   coverage becomes unreachable for the whole run. *)
let queue_full (st : state) : bool =
  Corpus.size st.corpus >= st.cfg.max_queue
  && begin
       (* drop counted per evaluated exec; the event fires once per
          campaign (branching on a counter never feeds back into fuzzing
          decisions) *)
       let c = st.obs.counters in
       c.queue_full_drops <- c.queue_full_drops + 1;
       if c.queue_full_drops = 1 then
         Obs.Observer.event st.obs
           (Obs.Event.Queue_full
              { at_exec = c.execs; queue = Corpus.size st.corpus });
       true
     end

(* Coverage-novelty verdict for the execution just finished. *)
let novel (st : state) : bool =
  (not (queue_full st))
  && Pathcov.Coverage_map.merge_into ~virgin:st.virgin st.feedback.trace
     <> Pathcov.Coverage_map.Nothing

let retain (st : state) ~depth (out : Vm.Interp.outcome) (data : string) : unit
    =
  let indices = Pathcov.Coverage_map.sorted_indices st.feedback.trace in
  let e =
    Corpus.add st.corpus ~data ~indices
      ~exec_blocks:(max 1 out.blocks_executed) ~depth ~found_at:st.execs
  in
  update_top_rated st e;
  let c = st.obs.counters in
  c.retained <- c.retained + 1;
  Obs.Observer.event st.obs
    (Obs.Event.Retain
       { at_exec = c.execs; id = e.id; len = String.length data; depth })

(* Evaluate one candidate input end to end: execute, triage crashes and
   hangs, retain on coverage novelty. Under selective tracing, the same
   decision procedure as [process_selective_scratch] below. *)
let process (st : state) ~depth (input : string) : unit =
  if st.cfg.selective then begin
    let out = execute_signal st input in
    match out.status with
    | Vm.Interp.Crashed _ ->
        let out = reexec_full st input in
        triage_outcome st out ~input
    | Vm.Interp.Hung -> triage_outcome st out ~input
    | Vm.Interp.Finished _ ->
        let s = Tracer.last_signal st.tracer in
        if not (Tracer.seen_signal st.tracer s) then
          if not (queue_full st) then begin
            let out = reexec_full st input in
            if
              Pathcov.Coverage_map.merge_into ~virgin:st.virgin
                st.feedback.trace
              <> Pathcov.Coverage_map.Nothing
            then retain st ~depth out input;
            Tracer.mark_seen st.tracer s
          end
  end
  else
    let out = execute st input in
    match out.status with
    | Vm.Interp.Crashed _ | Vm.Interp.Hung -> triage_outcome st out ~input
    | Vm.Interp.Finished _ -> if novel st then retain st ~depth out input

(* Hot-path variant of [process]: the candidate lives in the mutation
   scratch and its string is materialised only when triage or retention
   actually needs one — the common (boring) candidate allocates nothing
   beyond the VM's own requests. *)
let scratch_child (st : state) : string =
  Bytes.sub_string st.scratch.buf 0 st.scratch.len

(* Selective evaluation of the scratch candidate: one signal-specialised
   run, then a full-instrumentation replay only when the trace can
   matter. Decision-identical to [process_scratch] without selective
   tracing (DESIGN §12):
   - a crash always replays — crash triage reads the trace for the
     crash-virgin merge, whose saturation is independent of the virgin
     map, so crash signals are never marked seen;
   - a hang triages directly — the trace is never read;
   - a finished run with a seen signal would replay a trace already
     folded into the virgin map, whose merge verdict is Nothing by
     virgin monotonicity: skipping it is invisible;
   - a first-seen signal replays, merges, retains on novelty, and only
     then enters the seen set. The queue-capacity check fires first and
     suppresses the marking, exactly as [novel] suppresses the merge. *)
(* The decision procedures proper, over the outcome of a run that
   already went through [post_exec] — shared by the per-candidate
   [process_*_scratch] wrappers and the batched cohort loop in [run]
   (whose sinks feed them directly). *)
let decide_selective_scratch (st : state) ~depth (out : Vm.Interp.outcome) :
    unit =
  match out.status with
  | Vm.Interp.Crashed _ ->
      let out = reexec_full_scratch st in
      triage_outcome st out ~input:(scratch_child st)
  | Vm.Interp.Hung -> triage_outcome st out ~input:(scratch_child st)
  | Vm.Interp.Finished _ ->
      let s = Tracer.last_signal st.tracer in
      if not (Tracer.seen_signal st.tracer s) then
        if not (queue_full st) then begin
          let out = reexec_full_scratch st in
          if
            Pathcov.Coverage_map.merge_into ~virgin:st.virgin st.feedback.trace
            <> Pathcov.Coverage_map.Nothing
          then retain st ~depth out (scratch_child st);
          Tracer.mark_seen st.tracer s
        end

let decide_scratch (st : state) ~depth (out : Vm.Interp.outcome) : unit =
  match out.status with
  | Vm.Interp.Crashed _ | Vm.Interp.Hung ->
      triage_outcome st out ~input:(scratch_child st)
  | Vm.Interp.Finished _ ->
      if novel st then retain st ~depth out (scratch_child st)

(* Per-candidate wrappers over the decision procedures — the batched
   cohort loop in [run] is the hot path; these remain for one-off
   evaluation sites and tests driving single stages. *)
let process_selective_scratch (st : state) ~depth : unit =
  let out = execute_signal_scratch st in
  decide_selective_scratch st ~depth out

let process_scratch (st : state) ~depth : unit =
  if st.cfg.selective then process_selective_scratch st ~depth
  else begin
    let out = execute_scratch st in
    decide_scratch st ~depth out
  end

(* Seeds are always retained (afl imports the full seed directory). *)
let add_seed (st : state) (input : string) : unit =
  let out = execute st input in
  match out.status with
  | Vm.Interp.Crashed _ | Vm.Interp.Hung -> triage_outcome st out ~input
  | Vm.Interp.Finished _ ->
      ignore
        (Pathcov.Coverage_map.merge_into ~virgin:st.virgin st.feedback.trace);
      let c = st.obs.counters in
      c.seeds_imported <- c.seeds_imported + 1;
      Obs.Observer.event st.obs
        (Obs.Event.Seed_import { at_exec = c.execs; len = String.length input });
      retain st ~depth:0 out input

(** One calibration run of a queue entry, capturing cmplog operand pairs
    for input-to-state mutation (the colorization stage of AFL++). The
    outcome flows through the same triage/novelty path as [process]: a
    crash or hang here — possible for the synthetic fallback entry, whose
    data never executed cleanly — must be recorded, not discarded. *)
let calibrate (st : state) (e : Corpus.entry) : Mutator.cmp_pair array =
  (* Probe self-pruning is enabled for exactly this run: calibration is
     always fully instrumented, and its trace feeds only the virgin
     merge — eliding writes to saturated indices cannot change the merge
     verdict (Nothing either way at those indices) or the virgin bytes.
     Retention and crash triage read [sorted_indices], so the marks come
     off before anything else executes, and a crash under pruning is
     replayed unpruned before its crash-virgin merge. *)
  trace_begin st Obs.Trace.Calibrate;
  let prune =
    Tracer.pruning_available st.tracer
    &&
    (Tracer.refresh_pruning st.tracer ~virgin:st.virgin;
     Tracer.pruned_fids st.tracer > 0)
  in
  if prune then Tracer.set_pruning st.tracer true;
  let out = execute st e.data in
  if prune then Tracer.set_pruning st.tracer false;
  (match out.status with
  | Vm.Interp.Crashed _ ->
      let out = if prune then reexec_full st e.data else out in
      triage_outcome st out ~input:e.data
  | Vm.Interp.Hung -> triage_outcome st out ~input:e.data
  | Vm.Interp.Finished _ ->
      ignore (Pathcov.Coverage_map.merge_into ~virgin:st.virgin st.feedback.trace));
  let c = st.obs.counters in
  c.calibrations <- c.calibrations + 1;
  Obs.Observer.event st.obs
    (Obs.Event.Calibration
       { at_exec = c.execs; entry = e.id; cmps = st.cmp_buf.n_cmps });
  trace_end st;
  current_cmps st

(** afl-fuzz's skip probabilities in fuzz_one, over an explicit RNG and
    queue state — the sequential scheduler draws from the campaign
    stream, the sharded planner from its dedicated planning stream. *)
let entry_skip (rng : Rng.t) ~(pending_favored : int) (e : Corpus.entry) : bool
    =
  if e.favored then false
  else if pending_favored > 0 then Rng.chance rng ~num:99 ~den:100
  else if e.times_fuzzed > 0 then Rng.chance rng ~num:95 ~den:100
  else Rng.chance rng ~num:75 ~den:100

let should_skip (st : state) (e : Corpus.entry) : bool =
  entry_skip st.rng ~pending_favored:st.corpus.pending_favored e

(** Havoc energy for one queue entry (a simplified perf_score) — a pure
    function of the entry and the budget, shared with the shard planner. *)
let entry_energy ~(budget : int) (e : Corpus.entry) : int =
  let base = 48 in
  let base = if e.favored then base * 2 else base in
  let base = if e.times_fuzzed = 0 then base * 2 else base in
  let base = if e.depth > 4 then base * 5 / 4 else base in
  min base (max 8 (budget / 64))

let energy (st : state) (e : Corpus.entry) : int =
  entry_energy ~budget:st.cfg.budget e

(* O(1) random splice peer. The RNG draw is mapped to the same entry the
   List.nth-over-newest-first walk used to select (draw [k] is the [k]-th
   newest), so campaign trajectories are unchanged. *)
let random_other (st : state) (e : Corpus.entry) : string option =
  let n = Corpus.size st.corpus in
  if n <= 1 then None
  else
    let pick = Corpus.get st.corpus (n - 1 - Rng.int st.rng n) in
    if pick.id = e.id then None else Some pick.data

(** Build a fresh campaign state. Exposed (alongside [execute],
    [add_seed], [process] and [calibrate]) so tests can drive individual
    pipeline stages directly. *)
let make_state ?plans ?obs ?(config = default_config) (prog : Minic.Ir.program)
    : state =
  let obs = match obs with Some o -> o | None -> Obs.Observer.null () in
  let feedback =
    Pathcov.Feedback.make ~size_log2:config.map_size_log2 ?plans config.mode prog
  in
  let prepared = Vm.Interp.prepare_cached prog in
  let cmp_buf = make_cmp_buf () in
  let hooks = make_hooks config feedback cmp_buf in
  (match obs.trace with
  | Some tr -> Obs.Trace.begin_span tr ~track:0 Obs.Trace.Compile
  | None -> ());
  let tracer =
    Tracer.make ?plans ?clock:obs.clock ~engine:config.engine
      ~selective:config.selective ~cmplog:config.cmplog ~mode:config.mode
      prepared
  in
  (match obs.trace with
  | Some tr -> Obs.Trace.end_span tr ~track:0 ()
  | None -> ());
  (match Tracer.emit_fallback tracer with
  | Some reason -> Obs.Observer.event obs (Obs.Event.Emit_fallback { reason })
  | None -> ());
  Tracer.bind tracer ~trace:feedback.trace ~h_cmp:hooks.Vm.Interp.h_cmp;
  {
    prepared;
    ctx = Vm.Interp.create_ctx ~hooks prepared;
    tracer;
    cfg = config;
    feedback;
    virgin = Pathcov.Coverage_map.create_virgin ~size_log2:config.map_size_log2 ();
    crash_virgin =
      Pathcov.Coverage_map.create_virgin ~size_log2:config.map_size_log2 ();
    corpus = Corpus.create ();
    triage = Triage.create ~obs ();
    rng = Rng.create config.rng_seed;
    execs = 0;
    blocks = 0;
    havocs = 0;
    sample_every = max 1 (config.budget / 64);
    cmp_buf;
    scratch = Mutator.create_scratch ();
    obs;
    h_batch = Obs.Metrics.hist obs.metrics "exec.batch_n";
    h_dirty = Obs.Metrics.hist obs.metrics "vm.dirty_reset_w";
  }

(** The snapshot of a sequential campaign at a cycle boundary, under the
    identity fields carried by the checkpoint sink ([sync_interval = 0]
    marks the sequential loop). The planner-cursor slots of [progress]
    are unused here — the whole cursor is the exec clock. *)
let capture_checkpoint (st : state) ~(subject : string) ~(fuzzer : string) :
    Checkpoint.t =
  Checkpoint.capture
    ~id:
      {
        Checkpoint.subject;
        fuzzer;
        mode = Pathcov.Feedback.mode_name st.cfg.mode;
        cmplog = st.cfg.cmplog;
        rng_seed = st.cfg.rng_seed;
        budget = st.cfg.budget;
        fuel = st.cfg.fuel;
        max_depth = st.cfg.max_depth;
        map_size_log2 = st.cfg.map_size_log2;
        max_queue = st.cfg.max_queue;
        sync_interval = 0;
      }
    ~progress:
      {
        Checkpoint.execs = st.execs;
        blocks = st.blocks;
        havocs = st.havocs;
        rng_state = Rng.state st.rng;
        items_total = 0;
        cycle_len = 0;
        next_qi = 0;
        epochs = 0;
        dup_dropped = 0;
      }
    ~virgin:st.virgin ~crash_virgin:st.crash_virgin ~corpus:st.corpus
    ~triage:st.triage ~counters:st.obs.counters
    ~snapshots:(Obs.Observer.snapshots st.obs)

(** Load a cycle-boundary snapshot into freshly built campaign state:
    queue, triage, both virgin maps, the campaign RNG position, the
    exec/block/havoc clocks, the counter block and the recorded snapshot
    rows (preloaded without sink emission). The caller is responsible
    for config validation ({!Checkpoint.check_compat}); only the map
    size — which would make the blit fault — is re-checked here. *)
let restore_checkpoint (st : state) (ck : Checkpoint.t) : unit =
  if ck.Checkpoint.id.map_size_log2 <> st.cfg.map_size_log2 then
    invalid_arg "Campaign.restore_checkpoint: map size disagrees with config";
  Checkpoint.restore_corpus_into ck st.corpus;
  Checkpoint.restore_triage_into ck st.triage;
  Pathcov.Coverage_map.restore_raw st.virgin ck.Checkpoint.virgin;
  Pathcov.Coverage_map.restore_raw st.crash_virgin ck.Checkpoint.crash_virgin;
  Rng.set_state st.rng ck.Checkpoint.progress.rng_state;
  st.execs <- ck.Checkpoint.progress.execs;
  st.blocks <- ck.Checkpoint.progress.blocks;
  st.havocs <- ck.Checkpoint.progress.havocs;
  Obs.Counters.add_into ~into:st.obs.counters ck.Checkpoint.counters;
  Obs.Observer.preload_snapshots st.obs (Array.to_list ck.Checkpoint.snapshots)

(* One havoc-mutated candidate built into the scratch, counted and (when
   the observer carries a clock) timed. *)
let mutate (st : state) ~cmps ?splice_with (data : string) : unit =
  st.havocs <- st.havocs + 1;
  let c = st.obs.counters in
  c.havocs <- c.havocs + 1;
  (match splice_with with Some _ -> c.splices <- c.splices + 1 | None -> ());
  if Array.length cmps > 0 then c.i2s_cands <- c.i2s_cands + 1;
  trace_begin st Obs.Trace.Mutate;
  (match st.obs.clock with
  | None -> Mutator.havoc_in_place st.scratch ~cmps ?splice_with st.rng data
  | Some now ->
      let w0 = Gc.minor_words () in
      let t0 = now () in
      Mutator.havoc_in_place st.scratch ~cmps ?splice_with st.rng data;
      c.mut_s <- c.mut_s +. (now () -. t0);
      c.mut_minor_words <- c.mut_minor_words +. (Gc.minor_words () -. w0));
  trace_end st

(* Drain the engine-level tallies into the observer's metrics registry.
   Runs once per campaign at budget exhaustion — a deterministic point —
   so registration order (and hence every dump) is reproducible. Gauges
   use set semantics: the sources are cumulative (per artifact / per
   domain), so the latest reading is the total. *)
let harvest_metrics (st : state) : unit =
  let m = st.obs.metrics in
  let c = st.obs.counters in
  Obs.Metrics.set_wall (Obs.Metrics.wall m "campaign.vm_s") c.vm_s;
  Obs.Metrics.set_wall (Obs.Metrics.wall m "campaign.mut_s") c.mut_s;
  Obs.Metrics.add_wall
    (Obs.Metrics.wall m "engine.compile_s")
    (Tracer.compile_seconds st.tracer);
  let hits, misses = Vm.Compile.cache_stats () in
  Obs.Metrics.set (Obs.Metrics.gauge m "engine.cache_hits") hits;
  Obs.Metrics.set (Obs.Metrics.gauge m "engine.cache_misses") misses;
  Obs.Metrics.set
    (Obs.Metrics.gauge m "engine.seen_signals")
    (Tracer.seen_signals st.tracer);
  (* Emitter tallies only exist on native campaigns — process-global
     cumulative sources, so set semantics; gated to keep every other
     engine's metric dump (and the golden reports) untouched. *)
  (match st.cfg.engine with
  | Tracer.Native ->
      let e = Vm.Emit.stats () in
      Obs.Metrics.set_wall (Obs.Metrics.wall m "emit.compile_s") e.compile_s;
      Obs.Metrics.set (Obs.Metrics.gauge m "emit.cache_hits") e.cache_hits;
      Obs.Metrics.set (Obs.Metrics.gauge m "emit.cache_misses") e.cache_misses;
      Obs.Metrics.set (Obs.Metrics.gauge m "emit.fallbacks") e.fallbacks
  | Tracer.Interp | Tracer.Compiled | Tracer.Fused -> ());
  match Tracer.artifact_stats st.tracer with
  | None -> ()
  | Some (r, s) ->
      Obs.Metrics.set (Obs.Metrics.gauge m "engine.rollbacks")
        r.Vm.Compile.rollbacks;
      Obs.Metrics.set
        (Obs.Metrics.gauge m "engine.careful_units")
        r.Vm.Compile.careful_units;
      Obs.Metrics.set (Obs.Metrics.gauge m "fusion.chains") s.Vm.Compile.chains;
      Obs.Metrics.set
        (Obs.Metrics.gauge m "fusion.chain_blocks")
        s.Vm.Compile.chain_blocks;
      Obs.Metrics.set
        (Obs.Metrics.gauge m "fusion.chain_max")
        s.Vm.Compile.chain_max;
      Obs.Metrics.set
        (Obs.Metrics.gauge m "fusion.dup_instrs")
        s.Vm.Compile.dup_instrs

(** Run a campaign. [plans] shares a precomputed Ball–Larus artifact;
    [obs] supplies the observer (counters, snapshot log, event sink and
    the optional wall clock that enables the mutation-vs-VM split the
    benches report). Fuzzing behaviour is identical with or without it.

    [checkpoint] writes a snapshot at each cycle boundary that crosses a
    multiple of [sink.every] executions (mid-budget only). [resume]
    restores one such snapshot instead of importing [seeds]; the resumed
    run replays the uninterrupted run's trajectory byte for byte. Both
    assume the campaign owns its observer — a checkpointed counter block
    is restored wholesale, so resuming into a shared observer would
    double-count other phases' work. *)
let run ?plans ?obs ?(config = default_config) ?(checkpoint : Checkpoint.sink option)
    ?(resume : Checkpoint.t option) (prog : Minic.Ir.program)
    ~(seeds : string list) : result =
  let st = make_state ?plans ?obs ~config prog in
  let c = st.obs.counters in
  (* deltas vs the observer's state at entry: a shared observer (culling
     rounds, the opportunistic driver, benches) accumulates globally
     while each run reports its own share *)
  let exec_base = c.execs in
  let snap_base = st.obs.n_snapshots in
  let vm_s0 = c.vm_s and mut_s0 = c.mut_s in
  let mut_minor_words0 = c.mut_minor_words in
  (match resume with
  | Some ck -> restore_checkpoint st ck
  | None ->
      List.iter (add_seed st) seeds;
      (* Never start with an empty queue: synthesise a minimal seed. *)
      if Corpus.size st.corpus = 0 then add_seed st "A";
      if Corpus.size st.corpus = 0 then
        (* even "A" crashes; fall back to an entry with no coverage *)
        ignore
          (Corpus.add st.corpus ~data:"A" ~indices:[||] ~exec_blocks:1 ~depth:0
             ~found_at:st.execs));
  (* The snapshot schedule is a pure function of the exec clock
     (Checkpoint.next_mark), so straight and resumed runs write the same
     remaining snapshots at the same boundaries. *)
  let next_mark = ref max_int in
  (match checkpoint with
  | Some sk -> next_mark := Checkpoint.next_mark ~every:sk.every ~execs:st.execs
  | None -> ());
  while st.execs < config.budget do
    (match checkpoint with
    | Some sk when st.execs >= !next_mark ->
        trace_begin st Obs.Trace.Checkpoint;
        sk.save (capture_checkpoint st ~subject:sk.subject ~fuzzer:sk.fuzzer);
        trace_end st;
        next_mark := Checkpoint.next_mark ~every:sk.every ~execs:st.execs
    | _ -> ());
    Corpus.recompute_favored st.corpus;
    c.cycles <- c.cycles + 1;
    let fav = ref 0 in
    Corpus.iter (fun e -> if e.favored then incr fav) st.corpus;
    c.favored <- !fav;
    c.pending_favored <- st.corpus.pending_favored;
    Obs.Observer.event st.obs
      (Obs.Event.Favored_cycle
         {
           at_exec = c.execs;
           queue = Corpus.size st.corpus;
           favored = !fav;
           pending = st.corpus.pending_favored;
         });
    (* index-preserving snapshot: entries are append-only, so the queue
       length bounds this cycle's pass and entries found mid-cycle wait
       for the next one — exactly the semantics of the old list copy *)
    let cycle_len = Corpus.size st.corpus in
    for qi = 0 to cycle_len - 1 do
      let e = Corpus.get st.corpus qi in
      if st.execs < config.budget && not (should_skip st e) then begin
        let cmps = if config.cmplog then calibrate st e else [||] in
        let n = energy st e in
        (* Batched cohort: the whole energy allotment runs back-to-back
           through one [Tracer.run_*_batch] call. Each candidate ticks
           the budget clock exactly once (replays don't), so the cohort
           size is exactly what the per-candidate loop would have run;
           generation, post-exec accounting and the retain/triage
           decisions are the same code in the same order. *)
        let count = max 0 (min n (config.budget - st.execs)) in
        if count > 0 then begin
          let depth = e.depth + 1 in
          Obs.Metrics.observe st.h_batch count;
          trace_begin st Obs.Trace.Exec;
          let gen _ =
            mutate st ~cmps ?splice_with:(random_other st e) e.data;
            pre_exec st;
            (st.scratch.buf, st.scratch.len)
          in
          let clock = st.obs.clock in
          let vm_s =
            match clock with
            | None -> None
            | Some _ ->
                Some
                  (fun dt ->
                    let c = st.obs.counters in
                    c.vm_s <- c.vm_s +. dt)
          in
          if config.selective then
            Tracer.run_signal_batch ?clock ?vm_s st.tracer st.ctx
              ~fuel:config.fuel ~max_depth:config.max_depth ~n:count ~gen
              ~sink:(fun _ out ->
                post_exec st out;
                decide_selective_scratch st ~depth out)
          else
            Tracer.run_full_batch ?clock ?vm_s st.tracer st.ctx
              ~fuel:config.fuel ~max_depth:config.max_depth ~n:count ~gen
              ~sink:(fun _ out ->
                post_exec st out;
                decide_scratch st ~depth out);
          trace_end ~arg:count st
        end;
        e.times_fuzzed <- e.times_fuzzed + 1;
        if e.favored && e.times_fuzzed = 1 then
          st.corpus.pending_favored <- max 0 (st.corpus.pending_favored - 1)
      end
    done
  done;
  (* final snapshot row: budget exhausted (kept even when it duplicates a
     cadence row, matching the historical queue_series tail sample) *)
  take_snapshot st;
  harvest_metrics st;
  let snapshots = Obs.Observer.snapshots_from st.obs ~from:snap_base in
  {
    config;
    corpus = st.corpus;
    triage = st.triage;
    execs = st.execs;
    (* derived view over this run's snapshot rows, in the historical
       (campaign-local execs, queue size) shape *)
    queue_series =
      List.map
        (fun (r : Obs.Snapshot.row) -> (r.at_exec - exec_base, r.queue))
        snapshots;
    sum_exec_blocks = st.blocks;
    havocs = st.havocs;
    snapshots;
    vm_s = c.vm_s -. vm_s0;
    mut_s = c.mut_s -. mut_s0;
    mut_minor_words = c.mut_minor_words -. mut_minor_words0;
  }
