(** Deterministic splitmix64-style PRNG. The fuzzer's behaviour must be a
    pure function of (program, seeds, trial seed) so experiments are
    replayable; the stream is stable across OCaml releases and independent
    of global state. *)

type t

val create : int -> t

(** Next raw positive integer of the stream. *)
val next : t -> int

(** Uniform int in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

val bool : t -> bool

(** True with probability [num]/[den]. *)
val chance : t -> num:int -> den:int -> bool

val byte : t -> char
val choose : t -> 'a array -> 'a
val choose_list : t -> 'a list -> 'a

(** Inclusive range [lo, hi]. *)
val range : t -> int -> int -> int

(** Derive an independent child generator (per-trial streams). *)
val split : t -> t

(** The [index]-th independent stream of [seed] — a pure function of
    [(seed, index)] consuming no parent draws. Sharded campaigns key
    per-work-item streams by schedule position with this, making the
    streams independent of shard assignment and worker count. *)
val substream : seed:int -> int -> t
