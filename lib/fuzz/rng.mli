(** Deterministic splitmix64-style PRNG. The fuzzer's behaviour must be a
    pure function of (program, seeds, trial seed) so experiments are
    replayable; the stream is stable across OCaml releases and independent
    of global state. *)

type t

val create : int -> t

(** Next raw positive integer of the stream. *)
val next : t -> int

(** Uniform int in [0, bound); [bound] must be positive. The draw is
    [next t mod bound] — modulo-biased by ~bound/2^63, frozen as-is
    because rejection sampling would invalidate every recorded
    trajectory (see the definition for the full rationale). *)
val int : t -> int -> int

val bool : t -> bool

(** True with probability [num]/[den]. *)
val chance : t -> num:int -> den:int -> bool

val byte : t -> char
val choose : t -> 'a array -> 'a
val choose_list : t -> 'a list -> 'a

(** Inclusive range [lo, hi]. *)
val range : t -> int -> int -> int

(** Derive an independent child generator (per-trial streams). *)
val split : t -> t

(** The raw stream position; [of_state (state t)] continues [t]'s
    stream draw for draw (the checkpoint/resume primitive). *)
val state : t -> int

val of_state : int -> t

(** Reposition an existing generator onto a captured position (the
    in-place form of {!of_state}). *)
val set_state : t -> int -> unit

(** The [index]-th independent stream of [seed] — a pure function of
    [(seed, index)] consuming no parent draws. Sharded campaigns key
    per-work-item streams by schedule position with this, making the
    streams independent of shard assignment and worker count. *)
val substream : seed:int -> int -> t
