(** Post-campaign measurement utilities: the afl-showmap analogue used by
    the coverage study (Table IV) and the queue-trimming primitives shared
    by the culling and opportunistic strategies. Each helper builds one
    pooled execution context and replays every input through it. *)

module Int_set = Set.Make (Int)

let make_hooks (fb : Pathcov.Feedback.t) : Vm.Interp.hooks =
  {
    Vm.Interp.no_hooks with
    h_call = fb.on_call;
    h_block = fb.on_block;
    h_edge = fb.on_edge;
    h_ret = fb.on_ret;
  }

(* One reusable replay context per (prepared program, feedback) pair. *)
let make_ctx prepared fb =
  Vm.Interp.create_ctx ~hooks:(make_hooks fb) prepared

(* Replay [input] under [fb] through [ctx], returning the raw trace
   indices it hits (ascending array) and an afl-style cost (work x size).
   Replays are off-budget executions; [obs] only counts them. *)
let replay ?(fuel = Vm.Interp.default_fuel) ?obs ctx fb input =
  (match obs with
  | Some (o : Obs.Observer.t) -> o.counters.replays <- o.counters.replays + 1
  | None -> ());
  fb.Pathcov.Feedback.reset ();
  Pathcov.Coverage_map.clear fb.trace;
  let out = Vm.Interp.run_ctx ~fuel ctx ~input in
  let idxs = Pathcov.Coverage_map.sorted_indices fb.trace in
  (idxs, out.blocks_executed * (String.length input + 16))

let set_of_array a = Array.fold_left (fun acc i -> Int_set.add i acc) Int_set.empty a

(** Edge-coverage indices hit by one input under the pcguard-style
    listener (raw tuple identities; bucketing is irrelevant here). *)
let edges_of_input ?fuel prog (input : string) : Int_set.t =
  let fb = Pathcov.Feedback.make Pathcov.Feedback.Edge prog in
  let ctx = make_ctx (Vm.Interp.prepare_cached prog) fb in
  set_of_array (fst (replay ?fuel ctx fb input))

(** Union of edge coverage over a corpus — "afl-showmap over the queue". *)
let edge_union ?fuel ?obs prog (inputs : string list) : Int_set.t =
  let fb = Pathcov.Feedback.make Pathcov.Feedback.Edge prog in
  let ctx = make_ctx (Vm.Interp.prepare_cached prog) fb in
  List.fold_left
    (fun acc input ->
      Array.fold_left
        (fun acc i -> Int_set.add i acc)
        acc
        (fst (replay ?fuel ?obs ctx fb input)))
    Int_set.empty inputs

(* Greedy favored-corpus construction over an arbitrary feedback: keep,
   for every covered index, the cheapest input covering it. Order-stable. *)
let preserving_cull ?fuel ?obs prog fb (inputs : string list) : string list =
  let ctx = make_ctx (Vm.Interp.prepare_cached prog) fb in
  (* order-stable dedup: queue semantics never hold duplicates *)
  let seen = Hashtbl.create 64 in
  let inputs =
    List.filter
      (fun i ->
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          true
        end)
      inputs
  in
  let scored =
    List.map
      (fun input ->
        let idxs, cost = replay ?fuel ?obs ctx fb input in
        (input, idxs, cost))
      inputs
  in
  let top : (int, string * int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (input, idxs, cost) ->
      Array.iter
        (fun idx ->
          match Hashtbl.find_opt top idx with
          | Some (_, best) when best <= cost -> ()
          | _ -> Hashtbl.replace top idx (input, cost))
        idxs)
    scored;
  let keep = Hashtbl.create 256 in
  Hashtbl.iter (fun _ (input, _) -> Hashtbl.replace keep input ()) top;
  let kept = List.filter (fun i -> Hashtbl.mem keep i) inputs in
  (match obs with
  | Some (o : Obs.Observer.t) ->
      Obs.Observer.event o
        (Obs.Event.Cull
           {
             at_exec = o.counters.execs;
             before = List.length inputs;
             after = List.length kept;
           })
  | None -> ());
  kept

(** Greedy edge-coverage-preserving trim (the favored-corpus construction
    the paper uses as its culling criterion, §III-B1, and as the
    opportunistic queue pre-processing, §III-B2). *)
let edge_preserving_cull ?fuel ?obs prog (inputs : string list) : string list =
  preserving_cull ?fuel ?obs prog
    (Pathcov.Feedback.make Pathcov.Feedback.Edge prog)
    inputs

(** Same trim but preserving *path* coverage — the alternative culling
    criterion the paper tested and rejected (§III-B1 footnote). Exposed
    for the ablation bench. *)
let path_preserving_cull ?fuel ?plans ?obs prog (inputs : string list) : string list =
  preserving_cull ?fuel ?obs prog
    (Pathcov.Feedback.make ?plans Pathcov.Feedback.Path prog)
    inputs
