(** Versioned campaign snapshots ([pathfuzz-checkpoint/v1]): capture a
    campaign's full state at a deterministic boundary, write it to a
    checksummed binary file, and later resume a run whose remaining
    trajectory is byte-identical to the uninterrupted one.

    The format is an ASCII magic+version header, a length-prefixed
    little-endian payload, and a trailing FNV-1a checksum; {!of_string}
    turns every failure mode (foreign file, future version, truncation,
    corruption, inconsistent payload) into [Error diagnostic] — never an
    exception. See DESIGN.md §9. *)

(** The identity of the run that wrote a snapshot; resume must validate
    the whole block ({!check_compat}). [sync_interval = 0] marks a
    sequential campaign; a positive value is the sharded merge-barrier
    schedule. *)
type config_id = {
  subject : string;
  fuzzer : string;
  mode : string;  (** {!Pathcov.Feedback.mode_name} *)
  cmplog : bool;
  rng_seed : int;
  budget : int;
  fuel : int;
  max_depth : int;
  map_size_log2 : int;
  max_queue : int;
  sync_interval : int;  (** 0 = sequential campaign loop *)
}

(** Campaign clocks, the sharded planner cursor, and the live RNG stream
    position ({!Rng.state}); per-item streams need no state — they are
    pure substreams of [items_total]. *)
type progress = {
  execs : int;
  blocks : int;
  havocs : int;
  rng_state : int;
  items_total : int;
  cycle_len : int;
  next_qi : int;
  epochs : int;
  dup_dropped : int;
}

type entry_rec = {
  e_id : int;
  e_data : string;
  e_indices : int array;
  e_exec_blocks : int;
  e_depth : int;
  e_found_at : int;
  e_favored : bool;
  e_times_fuzzed : int;
}

type crash_rec = { x_crash : Vm.Crash.t; x_input : string; x_at_exec : int }

type triage_rec = {
  tr_total_crashes : int;
  tr_total_hangs : int;
  tr_by_stack : crash_rec array;  (** sorted by top-5-frame hash *)
  tr_by_bug : crash_rec array;  (** sorted by ground-truth identity *)
  tr_afl_unique : crash_rec array;  (** stored list order (newest first) *)
}

type t = {
  id : config_id;
  progress : progress;
  virgin : bytes;
  crash_virgin : bytes;
  entries : entry_rec array;  (** discovery order *)
  next_entry_id : int;
  pending_favored : int;
  top_rated : (int * int) array;  (** (map index, entry id), ascending *)
  counters : Obs.Counters.t;  (** detached copy of the observer block *)
  snapshots : Obs.Snapshot.row array;
  triage : triage_rec;
}

(** How a campaign writes snapshots: at each deterministic boundary
    (sequential cycle boundary / sharded merge barrier) that crosses a
    multiple of [every] executions and is still mid-budget, the runner
    captures its state and hands it to [save]. [subject] and [fuzzer]
    are identity fields the campaign itself cannot know. *)
type sink = {
  every : int;
  subject : string;
  fuzzer : string;
  save : t -> unit;
}

(** The exec count at which the next snapshot fires — a pure function of
    the current exec clock, so straight and resumed runs compute the
    identical snapshot schedule. *)
val next_mark : every:int -> execs:int -> int

(** Capture a snapshot from live campaign pieces. [counters] is copied;
    [snapshots] are the observer's rows so far. *)
val capture :
  id:config_id ->
  progress:progress ->
  virgin:Pathcov.Coverage_map.t ->
  crash_virgin:Pathcov.Coverage_map.t ->
  corpus:Corpus.t ->
  triage:Triage.t ->
  counters:Obs.Counters.t ->
  snapshots:Obs.Snapshot.row list ->
  t

(** Rebuild the captured queue into a (normally fresh) corpus: entries
    in discovery order with metadata, favored flags, the top-rated table
    and the pending-favored count. *)
val restore_corpus_into : t -> Corpus.t -> unit

(** Refill a (normally fresh) triage record; observer counters are not
    re-bumped — totals live in the restored counter block. *)
val restore_triage_into : t -> Triage.t -> unit

(** Validate that a snapshot belongs to the run being resumed; [Error]
    lists every mismatching field. *)
val check_compat : expected:config_id -> t -> (unit, string) result

(** Deterministic identity: FNV-1a over the payload with wall-clock
    floats zeroed. Straight and resumed runs at the same logical point
    have equal fingerprints. *)
val fingerprint : t -> int

val to_string : t -> string

(** Decode a serialized snapshot; all failures come back as [Error]. *)
val of_string : string -> (t, string) result

(** Serialize to [path] atomically (write to [path ^ ".tmp"], rename);
    returns the serialized size in bytes. *)
val write_file : path:string -> t -> int

val read_file : string -> (t, string) result
