(** The fuzzer queue and AFL's favored-corpus machinery.

    Each interesting test case is retained as an [entry] with the sparse
    set of coverage-map indices it touches. [recompute_favored] implements
    afl-fuzz's [update_bitmap_score]/[cull_queue] greedy set-cover
    approximation: for every map index, the cheapest entry covering it is
    top-rated, and an entry is *favored* if it is top-rated for at least
    one index. The paper's culling strategy (§III-B1) and the opportunistic
    queue trim (§III-B2) both reuse exactly this machinery, as does the
    scheduler's favored-skip logic. *)

type entry = {
  id : int;
  data : string;
  indices : int array;  (** classified trace indices hit, ascending *)
  exec_blocks : int;  (** work proxy standing in for execution time *)
  depth : int;  (** mutation chain length from the seed *)
  found_at : int;  (** global execution counter at discovery *)
  mutable favored : bool;
  mutable times_fuzzed : int;
}

type t = {
  mutable entries : entry list;  (** newest first *)
  mutable size : int;
  mutable next_id : int;
  top_rated : (int, entry) Hashtbl.t;  (** map index -> cheapest entry *)
  mutable pending_favored : int;
}

let create () =
  { entries = []; size = 0; next_id = 0; top_rated = Hashtbl.create 1024; pending_favored = 0 }

(* afl's fav_factor: exec time * input length. *)
let fav_factor e = e.exec_blocks * (String.length e.data + 16)

let recompute_favored (t : t) : unit =
  Hashtbl.reset t.top_rated;
  List.iter
    (fun e ->
      Array.iter
        (fun idx ->
          match Hashtbl.find_opt t.top_rated idx with
          | Some best when fav_factor best <= fav_factor e -> ()
          | _ -> Hashtbl.replace t.top_rated idx e)
        e.indices)
    (List.rev t.entries);
  let favored = Hashtbl.create 64 in
  Hashtbl.iter (fun _ e -> Hashtbl.replace favored e.id ()) t.top_rated;
  t.pending_favored <- 0;
  List.iter
    (fun e ->
      e.favored <- Hashtbl.mem favored e.id;
      if e.favored && e.times_fuzzed = 0 then
        t.pending_favored <- t.pending_favored + 1)
    t.entries

let add (t : t) ~data ~indices ~exec_blocks ~depth ~found_at : entry =
  let e =
    {
      id = t.next_id;
      data;
      indices;
      exec_blocks;
      depth;
      found_at;
      favored = false;
      times_fuzzed = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.entries <- e :: t.entries;
  t.size <- t.size + 1;
  e

let to_list t = List.rev t.entries
let size t = t.size

(** Entries whose union of indices equals the whole queue's union, chosen
    greedily by fav_factor — the "minimal coverage-preserving queue" the
    culling strategy retains. *)
let favored_subset (t : t) : entry list =
  recompute_favored t;
  List.filter (fun e -> e.favored) (to_list t)

(** Union of all covered indices across the queue. *)
let covered_indices (t : t) : int list =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun e -> Array.iter (fun i -> Hashtbl.replace tbl i ()) e.indices)
    t.entries;
  List.sort Int.compare (Hashtbl.fold (fun i () acc -> i :: acc) tbl [])
