(** The fuzzer queue and AFL's favored-corpus machinery.

    Each interesting test case is retained as an [entry] with the sparse
    set of coverage-map indices it touches. [recompute_favored] implements
    afl-fuzz's [update_bitmap_score]/[cull_queue] greedy set-cover
    approximation: for every map index, the cheapest entry covering it is
    top-rated, and an entry is *favored* if it is top-rated for at least
    one index. The paper's culling strategy (§III-B1) and the opportunistic
    queue trim (§III-B2) both reuse exactly this machinery, as does the
    scheduler's favored-skip logic.

    The queue is a growable array in discovery order rather than a list:
    entries are never removed, so an index is a stable identity, random
    peers are O(1) lookups instead of [List.nth] walks (quadratic over a
    campaign as the queue grows), and the cycle scheduler snapshots the
    queue by remembering its length. [fav_factor] is cached per entry at
    admission — data and cost never change — so the greedy set-cover pass
    stops recomputing it per covered index. *)

type entry = {
  id : int;
  data : string;
  indices : int array;  (** classified trace indices hit, ascending *)
  exec_blocks : int;  (** work proxy standing in for execution time *)
  depth : int;  (** mutation chain length from the seed *)
  found_at : int;  (** global execution counter at discovery *)
  fav : int;  (** cached fav_factor: exec_blocks x (length + 16) *)
  mutable favored : bool;
  mutable times_fuzzed : int;
}

type t = {
  mutable arr : entry array;  (** slots [0, size), discovery order *)
  mutable size : int;
  mutable next_id : int;
  top_rated : (int, entry) Hashtbl.t;  (** map index -> cheapest entry *)
  mutable pending_favored : int;
}

let create () =
  {
    arr = [||];
    size = 0;
    next_id = 0;
    top_rated = Hashtbl.create 1024;
    pending_favored = 0;
  }

(* afl's fav_factor: exec time * input length (cached at admission). *)
let fav_factor e = e.fav

let size t = t.size

(** The [i]-th entry in discovery order, O(1). *)
let get t i =
  if i < 0 || i >= t.size then invalid_arg "Corpus.get";
  Array.unsafe_get t.arr i

(** Iterate entries in discovery order. *)
let iter f t =
  for i = 0 to t.size - 1 do
    f (Array.unsafe_get t.arr i)
  done

let recompute_favored (t : t) : unit =
  Hashtbl.reset t.top_rated;
  iter
    (fun e ->
      Array.iter
        (fun idx ->
          match Hashtbl.find_opt t.top_rated idx with
          | Some best when best.fav <= e.fav -> ()
          | _ -> Hashtbl.replace t.top_rated idx e)
        e.indices)
    t;
  iter (fun e -> e.favored <- false) t;
  Hashtbl.iter (fun _ e -> e.favored <- true) t.top_rated;
  t.pending_favored <- 0;
  iter
    (fun e ->
      if e.favored && e.times_fuzzed = 0 then
        t.pending_favored <- t.pending_favored + 1)
    t

let add (t : t) ~data ~indices ~exec_blocks ~depth ~found_at : entry =
  let e =
    {
      id = t.next_id;
      data;
      indices;
      exec_blocks;
      depth;
      found_at;
      fav = exec_blocks * (String.length data + 16);
      favored = false;
      times_fuzzed = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  if t.size = Array.length t.arr then begin
    let bigger = Array.make (max 16 (2 * t.size)) e in
    Array.blit t.arr 0 bigger 0 t.size;
    t.arr <- bigger
  end;
  t.arr.(t.size) <- e;
  t.size <- t.size + 1;
  e

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.arr.(i) :: acc) in
  go (t.size - 1) []

(** Incremental update_bitmap_score (afl's on-retention half of the
    favored machinery): the new entry claims every top_rated slot it
    covers more cheaply; favored flags are refreshed in full at cycle
    boundaries by {!recompute_favored}. Newly-favored never-fuzzed
    entries bump [pending_favored], exactly as the cycle recompute
    would. *)
let claim_top_rated (t : t) (e : entry) : unit =
  Array.iter
    (fun idx ->
      match Hashtbl.find_opt t.top_rated idx with
      | Some best when best.fav <= e.fav -> ()
      | _ ->
          Hashtbl.replace t.top_rated idx e;
          if not e.favored then begin
            e.favored <- true;
            if e.times_fuzzed = 0 then t.pending_favored <- t.pending_favored + 1
          end)
    e.indices

(* ------------------------------------------------------------------ *)
(* Shard views *)

(** A fixed-length prefix snapshot of the queue, safe to read from worker
    domains while the coordinator is quiescent: the backing array is
    captured at creation, so growth (and array reallocation) on the
    coordinator side between epochs never moves a live view. Entries are
    shared, not copied — shards treat them as read-only. *)
type view = { varr : entry array; vsize : int }

(** Snapshot the first [limit] entries (clamped to the current size). *)
let view (t : t) ~(limit : int) : view =
  { varr = t.arr; vsize = min (max 0 limit) t.size }

let view_size (v : view) = v.vsize

let view_get (v : view) i =
  if i < 0 || i >= v.vsize then invalid_arg "Corpus.view_get";
  Array.unsafe_get v.varr i

(** Entries whose union of indices equals the whole queue's union, chosen
    greedily by fav_factor — the "minimal coverage-preserving queue" the
    culling strategy retains. *)
let favored_subset (t : t) : entry list =
  recompute_favored t;
  List.filter (fun e -> e.favored) (to_list t)

(** Union of all covered indices across the queue, ascending. *)
let covered_indices_arr (t : t) : int array =
  let tbl = Hashtbl.create 1024 in
  iter (fun e -> Array.iter (fun i -> Hashtbl.replace tbl i ()) e.indices) t;
  let out = Array.make (Hashtbl.length tbl) 0 in
  let k = ref 0 in
  Hashtbl.iter
    (fun i () ->
      out.(!k) <- i;
      incr k)
    tbl;
  Array.sort Int.compare out;
  out

(** List wrapper over {!covered_indices_arr} (renderer convenience). *)
let covered_indices (t : t) : int list = Array.to_list (covered_indices_arr t)
