(** Input mutation engine: the AFL havoc stack, splicing, and an
    input-to-state substitution stage fed by comparison operands captured
    by the VM (the stand-in for AFL++'s cmplog/Redqueen, enabled for all
    fuzzer configurations in the paper's evaluation).

    The havoc stack works in place on a pooled {!scratch} buffer; the
    campaign executes children straight out of it (zero-copy) and only
    materialises a string on retention. Every operator consumes RNG
    draws in the same order and with the same bounds as the historical
    string-round-trip engine, so campaign trajectories are unchanged. *)

(** Hard cap on generated input length. *)
val max_len : int

(** A comparison observed at run time: the program compared [observed]
    (hopefully an input-derived value) against [wanted]. *)
type cmp_pair = { observed : int; wanted : int }

(** Try to rewrite the input so the observed operand becomes the wanted
    one: searches for little-endian (1/2/4-byte) and ASCII-decimal
    encodings of [observed] and substitutes the encoding of [wanted];
    returns the input unchanged when no encoding is found. *)
val i2s_apply : Rng.t -> cmp_pair -> string -> string

(** Reusable per-campaign mutation buffer: the child under construction
    lives in [buf] up to [len] (plus a staging area for chunk
    duplication). Create once, thread through {!havoc_in_place} /
    {!havoc_into}; treat the fields as read-only outside this module. *)
type scratch = {
  mutable buf : Bytes.t;
  mutable len : int;
  mutable tmp : Bytes.t;
}

val create_scratch : unit -> scratch

(** One havoc-mutated child built in place in [scratch]: a random stack
    of 1–8 operations (bit flips, arithmetic, interesting values, block
    copy/insert/delete, optional input-to-state substitution from [cmps],
    optional splice with a second corpus entry). The child is
    [sc.buf[0, sc.len)] — never empty — and stays valid until the next
    call on the same scratch. Allocation-free in steady state. *)
val havoc_in_place :
  scratch -> ?cmps:cmp_pair array -> ?splice_with:string -> Rng.t -> string -> unit

(** {!havoc_in_place} plus one [Bytes.sub_string] for the child. *)
val havoc_into :
  scratch -> ?cmps:cmp_pair array -> ?splice_with:string -> Rng.t -> string -> string

(** {!havoc_into} with a throwaway scratch — cold paths and tests only. *)
val havoc :
  ?cmps:cmp_pair array -> ?splice_with:string -> Rng.t -> string -> string

(** The deterministic stage (walking bit flips and interesting bytes),
    used by tests and the classic-AFL profile; returns all children. *)
val deterministic : string -> string list
