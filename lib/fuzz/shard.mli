(** Deterministic intra-campaign sharding: one campaign spread across N
    OCaml 5 domains with an execution-count synchronization schedule.

    A sharded run is organised as a sequence of {e epochs}. The
    coordinator plans each epoch deterministically — walking the queue in
    cycle order with the sequential scheduler's skip/energy rules, one
    private RNG stream per work item keyed by the item's position in the
    global schedule — then fans the items out round-robin over the shard
    pool. Each shard evaluates its items against a private virgin overlay
    seeded from the epoch-start global map and records discoveries as
    sparse captures; the barrier replays them against the shared state in
    global item order. The merged trajectory (queue contents and order,
    virgin-map bytes, crash set, counters) is therefore a deterministic
    function of [(seed, sync_interval)] alone — byte-identical across
    re-runs {e and across shard/worker counts}, which is what the
    differential suite and the CI determinism smoke check enforce.
    DESIGN.md §8 gives the full schedule and determinism argument. *)

type config = {
  base : Campaign.config;
  shards : int;  (** parallel width of each epoch (>= 1) *)
  sync_interval : int;  (** executions scheduled between merge barriers *)
}

val default_sync_interval : int

(** [Campaign.default_config] with [shards = 1] and the default sync
    interval. *)
val default_config : config

type result = {
  campaign : Campaign.result;  (** the familiar campaign-level report *)
  shards : int;
  sync_interval : int;
  epochs : int;  (** sync barriers executed *)
  items : int;  (** work items scheduled over the whole run *)
  dup_dropped : int;
      (** shard-retained candidates another item beat to the barrier *)
  virgin : Pathcov.Coverage_map.t;  (** final merged virgin map *)
  crash_virgin : Pathcov.Coverage_map.t;
}

(** Run one sharded campaign. [workers] caps the domain-pool width
    (default: one worker per shard); it is purely a wall-clock knob —
    any value yields byte-identical results. [plans] and [obs] behave as
    in {!Campaign.run}; the observer's optional clock enables the same
    vm/mutator wall split, accumulated per shard and aggregated at each
    barrier under the zero-perturbation rule.

    [checkpoint] writes a {!Checkpoint.t} at each merge barrier crossing
    a multiple of [sink.every] executions (mid-budget only); [resume]
    restores one instead of importing [seeds]. Barriers are functions of
    [(seed, sync_interval)] alone, so a snapshot taken at any
    shard/worker count resumes at any other with a byte-identical
    remaining trajectory. Both assume the campaign owns its observer. *)
val run :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?obs:Obs.Observer.t ->
  ?workers:int ->
  ?checkpoint:Checkpoint.sink ->
  ?resume:Checkpoint.t ->
  config ->
  Minic.Ir.program ->
  seeds:string list ->
  result

(** {2 Stall watchdog}

    After every merge barrier of a clocked, multi-shard run the
    coordinator compares each shard's epoch wall against the epoch's
    median and emits an {!Obs.Event.Stall} (plus a [shard.stalls]
    counter bump) for any shard beyond [stall_factor ×] the median.
    Walls exist only when the observer carries a clock, so the watchdog
    is observation-only by construction. *)

(** Stall threshold as a multiple of the median epoch wall. *)
val stall_factor : float

(** Pure stall verdicts over one epoch's per-shard walls:
    [(shard, wall, median)] for each wall exceeding [factor *.] the
    median; empty for fewer than two shards or a non-positive median.
    Exposed for unit tests. *)
val stall_check : walls:float array -> factor:float -> (int * float * float) list
