(** The fuzzer configurations of the evaluation (§V "Fuzzer
    configurations") as strategy drivers over [Campaign]:

    - [pcguard]: AFL++'s default edge feedback, with cmplog;
    - [path]: the baseline path-aware fuzzer (§III-A);
    - [cull]: [path] with periodic edge-coverage-preserving queue culling
      (§III-B1) — the driver splits the budget into rounds, culls between
      them and reseeds a fresh fuzzer instance with the culled queue;
    - [cull_r]: the Appendix D ablation — random trimming of 84–98%;
    - [cull_p]: culling by *path* identity (the rejected criterion);
    - [opp]: the opportunistic strategy (§III-B2) — first half of the
      budget under edge feedback, queue trimmed edge-preserving, second
      half path-aware (only the second phase's findings count);
    - [pathafl]: the PathAFL-like sketch atop an AFL-2.52b-like profile
      (no cmplog), Appendix C;
    - [afl]: plain AFL-like edge fuzzing (no cmplog), Appendix C;
    - plus the sensitivity ladder ([block], [ngram n]) for ablations. *)

type spec =
  | Plain of Pathcov.Feedback.mode
  | Cull of { rounds : int; criterion : [ `Edges | `Paths | `Random ] }
  | Opportunistic

type fuzzer = { name : string; spec : spec; cmplog : bool }

let pcguard = { name = "pcguard"; spec = Plain Pathcov.Feedback.Edge; cmplog = true }
let path = { name = "path"; spec = Plain Pathcov.Feedback.Path; cmplog = true }

let cull ?(rounds = 8) () =
  { name = "cull"; spec = Cull { rounds; criterion = `Edges }; cmplog = true }

let cull_r ?(rounds = 8) () =
  { name = "cull_r"; spec = Cull { rounds; criterion = `Random }; cmplog = true }

let cull_p ?(rounds = 8) () =
  { name = "cull_p"; spec = Cull { rounds; criterion = `Paths }; cmplog = true }

let opp = { name = "opp"; spec = Opportunistic; cmplog = true }
let pathafl = { name = "pathafl"; spec = Plain Pathcov.Feedback.Pathafl; cmplog = false }
let afl = { name = "afl"; spec = Plain Pathcov.Feedback.Edge; cmplog = false }
let block = { name = "block"; spec = Plain Pathcov.Feedback.Block; cmplog = true }

let ngram n =
  {
    name = Printf.sprintf "ngram%d" n;
    spec = Plain (Pathcov.Feedback.Ngram n);
    cmplog = true;
  }

(** Campaign-level outcome of running one fuzzer on one subject. *)
type run_result = {
  fuzzer : string;
  final_queue : string list;  (** inputs in the queue when the budget ended *)
  queue_size : int;
  triage : Triage.t;
  execs : int;
  queue_series : (int * int) list;
  sum_exec_blocks : int;
}

let of_campaign name (r : Campaign.result) : run_result =
  {
    fuzzer = name;
    final_queue = Campaign.queue_inputs r;
    queue_size = Corpus.size r.corpus;
    triage = r.triage;
    execs = r.execs;
    queue_series = r.queue_series;
    sum_exec_blocks = r.sum_exec_blocks;
  }

let base_config ?(engine = Tracer.Interp) ?(selective = false) ~budget
    ~trial_seed ~cmplog mode =
  {
    Campaign.default_config with
    mode;
    budget;
    rng_seed = trial_seed;
    cmplog;
    engine;
    selective;
  }

(* Random trim per Appendix D: remove 84–98% of the queue. *)
let random_trim rng inputs =
  let n = List.length inputs in
  if n <= 2 then inputs
  else begin
    let keep_pct = Rng.range rng 2 16 in
    let keep = max 1 (n * keep_pct / 100) in
    (* Reservoir-free selection: shuffle indices deterministically. *)
    let arr = Array.of_list inputs in
    for i = Array.length arr - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list (Array.sub arr 0 keep)
  end

(** Run [fuzzer] on [prog] with [seeds] for [budget] executions. [plans]
    shares the Ball–Larus artifact across configurations of a trial.
    [obs] is shared across every phase of a multi-phase strategy, so its
    counters and snapshots accumulate over the whole campaign (culling
    replays included); fuzzing behaviour is identical without it. *)
let run ?plans ?obs ?engine ?selective ~budget ~trial_seed (fuzzer : fuzzer)
    (prog : Minic.Ir.program) ~(seeds : string list) : run_result =
  match fuzzer.spec with
  | Plain mode ->
      let config =
        base_config ?engine ?selective ~budget ~trial_seed
          ~cmplog:fuzzer.cmplog mode
      in
      of_campaign fuzzer.name (Campaign.run ?plans ?obs ~config prog ~seeds)
  | Cull { rounds; criterion } ->
      let rounds = max 1 rounds in
      let per_round = max 1 (budget / rounds) in
      let rng = Rng.create (trial_seed * 7 + 13) in
      let triage = Triage.create () in
      let rec go round seeds_now execs_so_far series last =
        let config =
          base_config ?engine ?selective ~budget:per_round
            ~trial_seed:(trial_seed + (round * 101))
            ~cmplog:fuzzer.cmplog Pathcov.Feedback.Path
        in
        let r = Campaign.run ?plans ?obs ~config prog ~seeds:seeds_now in
        Triage.merge ~into:triage r.triage;
        let execs_total = execs_so_far + r.execs in
        let series =
          series
          @ List.map (fun (x, q) -> (x + execs_so_far, q)) r.queue_series
        in
        if round + 1 >= rounds then (r, execs_total, series)
        else begin
          let queue = Campaign.queue_inputs r in
          let culled =
            match criterion with
            | `Edges -> Measure.edge_preserving_cull ?obs prog queue
            | `Paths -> Measure.path_preserving_cull ?plans ?obs prog queue
            | `Random -> random_trim rng queue
          in
          ignore last;
          go (round + 1) culled execs_total series (Some r)
        end
      in
      let last, execs, series = go 0 seeds 0 [] None in
      {
        fuzzer = fuzzer.name;
        final_queue = Campaign.queue_inputs last;
        queue_size = Corpus.size last.corpus;
        triage;
        execs;
        queue_series = series;
        sum_exec_blocks = last.sum_exec_blocks;
      }
  | Opportunistic ->
      let half = max 1 (budget / 2) in
      let config1 =
        base_config ?engine ?selective ~budget:half
          ~trial_seed:(trial_seed + 17) ~cmplog:true Pathcov.Feedback.Edge
      in
      let phase1 = Campaign.run ?plans ?obs ~config:config1 prog ~seeds in
      (* The paper strips crashing inputs (our queue never holds them) and
         trims the donor queue to an edge-preserving subset. *)
      let donor =
        Measure.edge_preserving_cull ?obs prog (Campaign.queue_inputs phase1)
      in
      let donor = if donor = [] then seeds else donor in
      let config2 =
        base_config ?engine ?selective ~budget:(budget - half) ~trial_seed
          ~cmplog:fuzzer.cmplog Pathcov.Feedback.Path
      in
      let phase2 = Campaign.run ?plans ?obs ~config:config2 prog ~seeds:donor in
      {
        fuzzer = fuzzer.name;
        final_queue = Campaign.queue_inputs phase2;
        queue_size = Corpus.size phase2.corpus;
        (* Only the path-aware phase's findings count (§V: crashing inputs
           from the donor are removed so opp relies on its own abilities). *)
        triage = phase2.triage;
        execs = phase1.execs + phase2.execs;
        queue_series =
          phase1.queue_series
          @ List.map (fun (x, q) -> (x + phase1.execs, q)) phase2.queue_series;
        sum_exec_blocks = phase1.sum_exec_blocks + phase2.sum_exec_blocks;
      }
