(** Crash bookkeeping at the three granularities used by the evaluation:

    - raw crash count;
    - "unique crashes": stack-trace clustering over the top 5 frames
      (standard practice, §V-A and Table IX columns 3/5);
    - "AFL unique crashes": AFL 2.52b's trace-novelty notion, where a
      crash is unique iff it hits a coverage tuple no previous crash hit
      (Appendix C, Table IX columns 2/4) — maintained by the campaign via
      a crash-virgin map and recorded here;
    - ground-truth unique *bugs*: exact seeded identities, standing in for
      the paper's manual deduplication. *)

type record = {
  crash : Vm.Crash.t;
  input : string;  (** a witness input triggering this crash *)
  at_exec : int;  (** execution counter at discovery *)
}

type t = {
  mutable total_crashes : int;
  mutable total_hangs : int;
  by_stack : (int, record) Hashtbl.t;  (** top-5-frame hash -> first record *)
  by_bug : (Vm.Crash.identity, record) Hashtbl.t;
  mutable afl_unique : record list;  (** coverage-novel crashes, newest first *)
  obs : Obs.Observer.t option;
      (** crash-class counters + Crash/Hang events flow here when set *)
}

let create ?obs () =
  {
    total_crashes = 0;
    total_hangs = 0;
    by_stack = Hashtbl.create 64;
    by_bug = Hashtbl.create 64;
    afl_unique = [];
    obs;
  }

(** Record a crash. [coverage_novel] says whether the crash's trace had new
    bits against the campaign's crash-virgin map (the AFL notion). *)
let record_crash (t : t) ~(crash : Vm.Crash.t) ~input ~at_exec ~coverage_novel : unit =
  t.total_crashes <- t.total_crashes + 1;
  let r = { crash; input; at_exec } in
  let h = Vm.Crash.top5_hash crash in
  let stack_unique = not (Hashtbl.mem t.by_stack h) in
  if stack_unique then Hashtbl.replace t.by_stack h r;
  let id = Vm.Crash.bug_identity crash in
  if not (Hashtbl.mem t.by_bug id) then Hashtbl.replace t.by_bug id r;
  if coverage_novel then t.afl_unique <- r :: t.afl_unique;
  match t.obs with
  | None -> ()
  | Some o ->
      let c = o.counters in
      c.crashes <- c.crashes + 1;
      if stack_unique then c.crashes_stack_unique <- c.crashes_stack_unique + 1;
      if coverage_novel then c.crashes_cov_novel <- c.crashes_cov_novel + 1;
      Obs.Observer.event o
        (Obs.Event.Crash { at_exec; stack_unique; cov_novel = coverage_novel })

let record_hang ?(at_exec = -1) (t : t) =
  t.total_hangs <- t.total_hangs + 1;
  match t.obs with
  | None -> ()
  | Some o ->
      o.counters.hangs <- o.counters.hangs + 1;
      Obs.Observer.event o (Obs.Event.Hang { at_exec })

let unique_crashes t = Hashtbl.length t.by_stack
let afl_unique_crashes t = List.length t.afl_unique

(** Ground-truth bug identities found, sorted. *)
let bugs t : Vm.Crash.identity list =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.by_bug []
  |> List.sort Vm.Crash.identity_compare

let unique_bugs t = Hashtbl.length t.by_bug

let bug_witness t id = Option.map (fun r -> r.input) (Hashtbl.find_opt t.by_bug id)

(** Merge [src] into [dst] (used when a strategy stitches several fuzzer
    instances into one campaign-level report). *)
let merge ~into:(dst : t) (src : t) : unit =
  dst.total_crashes <- dst.total_crashes + src.total_crashes;
  dst.total_hangs <- dst.total_hangs + src.total_hangs;
  Hashtbl.iter
    (fun h r -> if not (Hashtbl.mem dst.by_stack h) then Hashtbl.replace dst.by_stack h r)
    src.by_stack;
  Hashtbl.iter
    (fun id r -> if not (Hashtbl.mem dst.by_bug id) then Hashtbl.replace dst.by_bug id r)
    src.by_bug;
  dst.afl_unique <- src.afl_unique @ dst.afl_unique
