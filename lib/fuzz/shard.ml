(** Deterministic intra-campaign sharding: one fuzzing campaign spread
    over N OCaml 5 domains with a fixed synchronization schedule.

    The sequential {!Campaign} loop feeds every discovery back into the
    very next candidate decision, which is exactly what a parallel run
    cannot reproduce. The sharded runner trades that instant feedback for
    a bounded-staleness schedule built from three pieces:

    - {b a deterministic planner} (coordinator-only): walks the queue in
      cycle order exactly like the sequential scheduler — skip
      probabilities from a dedicated planning RNG stream, afl energy,
      cycle boundaries with full favored recomputation — and emits a list
      of {e work items}, each pinned to (queue entry, private RNG stream,
      energy, exec-counter base). Item RNG streams are keyed by the item's
      position in the global schedule ({!Rng.substream}), never by shard
      or worker id. Planning stops when [sync_interval] executions are
      scheduled (or the budget is exhausted) — the sync schedule is
      measured in executions, independent of wall-clock;

    - {b per-shard step loops} (parallel phase): items are assigned
      round-robin (item [i] to shard [i mod shards]); each shard owns a
      private {!Vm.Interp.exec_ctx}, feedback listener, cmplog buffer and
      mutation scratch, and evaluates its items against a private virgin
      overlay re-seeded per item from the epoch-start global map
      ({!Pathcov.Coverage_map.copy_into}) — so what an item retains
      depends only on the epoch-start state and its own discoveries,
      never on what ran concurrently. Retained candidates and crashes are
      recorded as sparse (index, classified byte) captures; nothing
      shared is written during the phase;

    - {b a merge barrier} (coordinator-only): after the phase completes,
      item results are replayed against the shared virgin/crash-virgin
      maps in global item order — admitting candidates that still add
      coverage, dropping cross-item duplicates, triaging crashes and
      hangs, claiming top-rated slots, aggregating per-shard counter
      blocks into the campaign observer and sampling one snapshot row.

    Because the planner, the item streams and the merge order are all
    functions of the schedule position alone, the merged trajectory —
    queue contents and order, virgin map bytes, crash set, counters — is
    a deterministic function of [(seed, sync_interval)] and {e identical
    for every shard count and worker count}: [shards] only chooses how
    much of each epoch runs concurrently. The differential suite
    enforces byte-identity across shards ∈ {1, 2, 4}; re-runs are
    trivially identical. Observability keeps the zero-perturbation rule:
    shard counter blocks are private until the barrier, and no fuzzing
    decision reads observer state. *)

type config = {
  base : Campaign.config;
  shards : int;  (** parallel width of each epoch (>= 1) *)
  sync_interval : int;  (** executions scheduled between merge barriers *)
}

let default_sync_interval = 2048

let default_config =
  { base = Campaign.default_config; shards = 1; sync_interval = default_sync_interval }

(* ------------------------------------------------------------------ *)
(* Work items and their results *)

(* One planned unit of fuzzing work: calibrate (cmplog) and havoc one
   queue entry with a private RNG stream. [base_exec] anchors the item's
   executions on the campaign's deterministic exec clock. *)
type item = {
  entry_idx : int;  (** queue position of the entry *)
  entry_id : int;
  rng : Rng.t;  (** private stream, keyed by global item counter *)
  calib : bool;
  energy : int;  (** havoc candidates to evaluate *)
  base_exec : int;  (** campaign execs before this item's first one *)
}

(* Sparse captures recorded by shards and replayed at the barrier. *)
type retained_rec = {
  r_data : string;
  r_idxs : int array;  (** classified trace indices, ascending *)
  r_vals : int array;  (** classified trace bytes at [r_idxs] *)
  r_exec_blocks : int;
  r_depth : int;
  r_at_exec : int;
}

type crash_rec = {
  c_crash : Vm.Crash.t;
  c_input : string;
  c_at_exec : int;
  c_idxs : int array;
  c_vals : int array;
}

type item_result = {
  mutable execs : int;
  mutable n_cmps : int;  (** calibration pairs captured (event payload) *)
  mutable retained : retained_rec list;  (** newest first *)
  mutable crashes : crash_rec list;  (** newest first *)
  mutable hangs : int list;  (** at_exec anchors, newest first *)
}

(* ------------------------------------------------------------------ *)
(* Shards *)

(** One shard's private execution resources, created once per campaign
    and reused across every epoch. The counter block is bumped lock-free
    on the shard's own domain and drained into the campaign observer at
    each barrier. *)
type shard = {
  ctx : Vm.Interp.exec_ctx;
  tracer : Tracer.t;  (** engine dispatch + per-shard seen-signal set *)
  feedback : Pathcov.Feedback.t;
  cmp_buf : Campaign.cmp_buf;
  scratch : Mutator.scratch;
  item_virgin : Pathcov.Coverage_map.t;  (** per-item overlay of the global map *)
  counters : Obs.Counters.t;
  clock : (unit -> float) option;
  metrics : Obs.Metrics.t;
      (** shard-private registry, drained into the campaign observer's at
          each barrier (exactly like the counter block) *)
  h_batch : Obs.Metrics.hist;  (** cohort sizes ([exec.batch_n]) *)
  h_dirty : Obs.Metrics.hist;  (** context dirty-reset widths *)
  span_trace : Obs.Trace.t option;
      (** the observer's trace when it has a track for this shard *)
  track : int;  (** this shard's trace track ([shard index + 1]) *)
  mutable epoch_wall : float;  (** wall of this shard's last epoch slice *)
}

let make_shard ?plans (base : Campaign.config) prepared clock span_trace
    ~(track : int) prog : shard =
  let feedback =
    Pathcov.Feedback.make ~size_log2:base.map_size_log2 ?plans base.mode prog
  in
  let cmp_buf = Campaign.make_cmp_buf () in
  let hooks = Campaign.make_hooks base feedback cmp_buf in
  (* ~shared:false: compiled artifacts carry single-threaded rebindable
     state, so every shard compiles its own *)
  let tracer =
    Tracer.make ?plans ?clock ~shared:false ~engine:base.engine
      ~selective:base.selective ~cmplog:base.cmplog ~mode:base.mode prepared
  in
  Tracer.bind tracer ~trace:feedback.trace ~h_cmp:hooks.Vm.Interp.h_cmp;
  let metrics = Obs.Metrics.create () in
  {
    ctx = Vm.Interp.create_ctx ~hooks prepared;
    tracer;
    feedback;
    cmp_buf;
    scratch = Mutator.create_scratch ();
    item_virgin =
      Pathcov.Coverage_map.create_virgin ~size_log2:base.map_size_log2 ();
    counters = Obs.Counters.create ();
    clock;
    metrics;
    h_batch = Obs.Metrics.hist metrics "exec.batch_n";
    h_dirty = Obs.Metrics.hist metrics "vm.dirty_reset_w";
    span_trace =
      (match span_trace with
      | Some tr when track < Obs.Trace.n_tracks tr -> Some tr
      | _ -> None);
    track;
    epoch_wall = 0.;
  }

(* Span brackets on this shard's own trace track. Each track is written
   only by the domain running the shard's slice, so no locking. *)
let sh_trace_begin (sh : shard) (k : Obs.Trace.kind) : unit =
  match sh.span_trace with
  | Some tr -> Obs.Trace.begin_span tr ~track:sh.track k
  | None -> ()

let sh_trace_end ?(arg = 0) (sh : shard) : unit =
  match sh.span_trace with
  | Some tr -> Obs.Trace.end_span ~arg tr ~track:sh.track ()
  | None -> ()

(* Pre/post brackets around one VM run on a shard — the parallel twin of
   Campaign.pre_exec/post_exec, writing only shard-private state. *)
let sh_pre (base : Campaign.config) (sh : shard) : unit =
  sh.feedback.reset ();
  Pathcov.Coverage_map.clear sh.feedback.trace;
  if base.cmplog then sh.cmp_buf.n_cmps <- 0

let sh_post (sh : shard) (out : Vm.Interp.outcome) : unit =
  let c = sh.counters in
  c.execs <- c.execs + 1;
  c.blocks <- c.blocks + out.blocks_executed;
  Obs.Metrics.observe sh.h_dirty sh.ctx.last_reset_width;
  Pathcov.Coverage_map.classify sh.feedback.trace

let sh_run_full_scratch (base : Campaign.config) (sh : shard) :
    Vm.Interp.outcome =
  let sc = sh.scratch in
  match sh.clock with
  | None ->
      Tracer.run_full_sub sh.tracer sh.ctx ~fuel:base.fuel
        ~max_depth:base.max_depth ~buf:sc.buf ~len:sc.len
  | Some now ->
      let t0 = now () in
      let out =
        Tracer.run_full_sub sh.tracer sh.ctx ~fuel:base.fuel
          ~max_depth:base.max_depth ~buf:sc.buf ~len:sc.len
      in
      sh.counters.vm_s <- sh.counters.vm_s +. (now () -. t0);
      out

let sh_exec (base : Campaign.config) (sh : shard) (input : string) :
    Vm.Interp.outcome =
  sh_pre base sh;
  let out =
    match sh.clock with
    | None ->
        Tracer.run_full sh.tracer sh.ctx ~fuel:base.fuel
          ~max_depth:base.max_depth ~input
    | Some now ->
        let t0 = now () in
        let out =
          Tracer.run_full sh.tracer sh.ctx ~fuel:base.fuel
            ~max_depth:base.max_depth ~input
        in
        sh.counters.vm_s <- sh.counters.vm_s +. (now () -. t0);
        out
  in
  sh_post sh out;
  out

(* The per-candidate scratch executions are batched in run_item below
   ([Tracer.run_full_batch]/[run_signal_batch]); only the replay path
   keeps a one-shot scratch runner. *)
let sh_reexec_scratch (base : Campaign.config) (sh : shard) : Vm.Interp.outcome
    =
  sh_trace_begin sh Obs.Trace.Replay;
  sh.feedback.reset ();
  Pathcov.Coverage_map.clear sh.feedback.trace;
  let out = sh_run_full_scratch base sh in
  Pathcov.Coverage_map.classify sh.feedback.trace;
  sh.counters.replays <- sh.counters.replays + 1;
  sh_trace_end sh;
  out

let scratch_child (sh : shard) : string =
  Bytes.sub_string sh.scratch.buf 0 sh.scratch.len

(* O(1) random splice peer over the epoch-start queue snapshot — the
   same draw-to-entry mapping as Campaign.random_other, against the view
   so every shard sees the same corpus regardless of merge-time growth. *)
let random_other_view (rng : Rng.t) (view : Corpus.view) (e : Corpus.entry) :
    string option =
  let n = Corpus.view_size view in
  if n <= 1 then None
  else
    let pick = Corpus.view_get view (n - 1 - Rng.int rng n) in
    if pick.Corpus.id = e.Corpus.id then None else Some pick.Corpus.data

(** The per-shard step loop: evaluate one work item end to end against a
    private virgin overlay, recording retentions/crashes/hangs as sparse
    captures for the merge barrier. Touches only shard-private state
    plus read-only views of the epoch-start corpus and virgin map. *)
let run_item (base : Campaign.config) (sh : shard) (view : Corpus.view)
    (global_virgin : Pathcov.Coverage_map.t) (it : item) : item_result =
  let e = Corpus.view_get view it.entry_idx in
  Pathcov.Coverage_map.copy_into ~dst:sh.item_virgin global_virgin;
  let res = { execs = 0; n_cmps = 0; retained = []; crashes = []; hangs = [] } in
  let local = ref 0 in
  let capture_outcome (out : Vm.Interp.outcome) ~(input : unit -> string)
      ~(depth : int) : unit =
    let tr = sh.feedback.trace in
    match out.status with
    | Vm.Interp.Crashed crash ->
        let idxs = Pathcov.Coverage_map.sorted_indices tr in
        res.crashes <-
          {
            c_crash = crash;
            c_input = input ();
            c_at_exec = it.base_exec + !local;
            c_idxs = idxs;
            c_vals = Pathcov.Coverage_map.values_at tr idxs;
          }
          :: res.crashes
    | Vm.Interp.Hung -> res.hangs <- (it.base_exec + !local) :: res.hangs
    | Vm.Interp.Finished _ ->
        if
          Pathcov.Coverage_map.merge_into ~virgin:sh.item_virgin tr
          <> Pathcov.Coverage_map.Nothing
        then
          let idxs = Pathcov.Coverage_map.sorted_indices tr in
          res.retained <-
            {
              r_data = input ();
              r_idxs = idxs;
              r_vals = Pathcov.Coverage_map.values_at tr idxs;
              r_exec_blocks = max 1 out.blocks_executed;
              r_depth = depth;
              r_at_exec = it.base_exec + !local;
            }
            :: res.retained
  in
  (* calibration run: capture cmplog pairs; its coverage never counts as
     novel (the entry is already in the queue), mirroring the sequential
     calibrate stage *)
  let cmps =
    if it.calib then begin
      let out = sh_exec base sh e.Corpus.data in
      incr local;
      (match out.status with
      | Vm.Interp.Crashed _ | Vm.Interp.Hung ->
          (* rewind the retention check: calibration outcomes are triaged
             but never retained *)
          let tr = sh.feedback.trace in
          (match out.status with
          | Vm.Interp.Crashed crash ->
              let idxs = Pathcov.Coverage_map.sorted_indices tr in
              res.crashes <-
                {
                  c_crash = crash;
                  c_input = e.Corpus.data;
                  c_at_exec = it.base_exec + !local;
                  c_idxs = idxs;
                  c_vals = Pathcov.Coverage_map.values_at tr idxs;
                }
                :: res.crashes
          | _ -> res.hangs <- (it.base_exec + !local) :: res.hangs)
      | Vm.Interp.Finished _ ->
          ignore
            (Pathcov.Coverage_map.merge_into ~virgin:sh.item_virgin
               sh.feedback.trace));
      sh.counters.calibrations <- sh.counters.calibrations + 1;
      res.n_cmps <- sh.cmp_buf.n_cmps;
      Campaign.cmps_of_buf sh.cmp_buf
    end
    else [||]
  in
  let c = sh.counters in
  (* Batched cohort: the item's whole energy allotment runs back-to-back
     through one [Tracer.run_*_batch] call — generation (splice draw,
     counter bumps, timed mutation, pre-exec reset) moves into [gen],
     the per-candidate bookkeeping and capture into [sink], in exactly
     the per-iteration order of the former loop. Replays don't go
     through the batch, so [local] ticks once per candidate as before. *)
  let gen _ =
    let splice_with = random_other_view it.rng view e in
    c.havocs <- c.havocs + 1;
    (match splice_with with Some _ -> c.splices <- c.splices + 1 | None -> ());
    if Array.length cmps > 0 then c.i2s_cands <- c.i2s_cands + 1;
    (match sh.clock with
    | None ->
        Mutator.havoc_in_place sh.scratch ~cmps ?splice_with it.rng
          e.Corpus.data
    | Some now ->
        let w0 = Gc.minor_words () in
        let t0 = now () in
        Mutator.havoc_in_place sh.scratch ~cmps ?splice_with it.rng
          e.Corpus.data;
        c.mut_s <- c.mut_s +. (now () -. t0);
        c.mut_minor_words <- c.mut_minor_words +. (Gc.minor_words () -. w0));
    sh_pre base sh;
    (sh.scratch.buf, sh.scratch.len)
  in
  let vm_s =
    match sh.clock with
    | None -> None
    | Some _ -> Some (fun dt -> c.vm_s <- c.vm_s +. dt)
  in
  if it.energy > 0 then begin
    Obs.Metrics.observe sh.h_batch it.energy;
    sh_trace_begin sh Obs.Trace.Exec
  end;
  (if not base.selective then
     Tracer.run_full_batch ?clock:sh.clock ?vm_s sh.tracer sh.ctx
       ~fuel:base.fuel ~max_depth:base.max_depth ~n:it.energy ~gen
       ~sink:(fun _ out ->
         sh_post sh out;
         incr local;
         capture_outcome out
           ~input:(fun () -> scratch_child sh)
           ~depth:(e.Corpus.depth + 1))
   else
     (* Selective step: signal run first, full replay only when the
        trace can matter. The seen set persists across items and
        epochs, so admission is stricter than the sequential rule: a
        signal is promoted only when its trace is wholly non-novel
        against the EPOCH-START global map — monotonically non-novel
        against every later global map and every item overlay seeded
        from one, making the skip invisible. A capture that is novel
        only item-locally (or that the barrier later drops, e.g. on a
        full queue) is not promoted and is re-captured identically by
        later items — barrier decisions, dup-drop counts and the final
        trajectory match the always-traced run for every shard count. *)
     Tracer.run_signal_batch ?clock:sh.clock ?vm_s sh.tracer sh.ctx
       ~fuel:base.fuel ~max_depth:base.max_depth ~n:it.energy ~gen
       ~sink:(fun _ out ->
         sh_post sh out;
         incr local;
         match out.status with
         | Vm.Interp.Crashed _ ->
             (* crash triage needs the trace (crash-virgin merge at the
                barrier); crash signals are never marked seen *)
             let out = sh_reexec_scratch base sh in
             capture_outcome out
               ~input:(fun () -> scratch_child sh)
               ~depth:(e.Corpus.depth + 1)
         | Vm.Interp.Hung -> res.hangs <- (it.base_exec + !local) :: res.hangs
         | Vm.Interp.Finished _ ->
             let s = Tracer.last_signal sh.tracer in
             if not (Tracer.seen_signal sh.tracer s) then begin
               let out = sh_reexec_scratch base sh in
               capture_outcome out
                 ~input:(fun () -> scratch_child sh)
                 ~depth:(e.Corpus.depth + 1);
               let tr = sh.feedback.trace in
               let idxs = Pathcov.Coverage_map.sorted_indices tr in
               let vals = Pathcov.Coverage_map.values_at tr idxs in
               if
                 not
                   (Pathcov.Coverage_map.sparse_would_merge
                      ~virgin:global_virgin ~idxs ~vals)
               then Tracer.mark_seen sh.tracer s
             end));
  if it.energy > 0 then sh_trace_end ~arg:it.energy sh;
  res.execs <- !local;
  res.retained <- List.rev res.retained;
  res.crashes <- List.rev res.crashes;
  res.hangs <- List.rev res.hangs;
  res

(* ------------------------------------------------------------------ *)
(* Coordinator *)

type result = {
  campaign : Campaign.result;  (** the familiar campaign-level report *)
  shards : int;
  sync_interval : int;
  epochs : int;  (** sync barriers executed *)
  items : int;  (** work items scheduled over the whole run *)
  dup_dropped : int;
      (** shard-retained candidates another item beat to the barrier *)
  virgin : Pathcov.Coverage_map.t;  (** final merged virgin map *)
  crash_virgin : Pathcov.Coverage_map.t;
}

type t = {
  cfg : config;
  obs : Obs.Observer.t;
  corpus : Corpus.t;
  virgin : Pathcov.Coverage_map.t;
  crash_virgin : Pathcov.Coverage_map.t;
  triage : Triage.t;
  plan_rng : Rng.t;  (** skip-probability draws, planning order *)
  mutable execs : int;  (** campaign-local exec clock (budget) *)
  mutable items_total : int;  (** global item counter, keys RNG substreams *)
  mutable cycle_len : int;
  mutable next_qi : int;
  mutable epochs : int;
  mutable dup_dropped : int;
  exec_base : int;  (** observer exec counter at campaign start *)
}

(* Plan one epoch: walk the queue in cycle order, exactly like the
   sequential scheduler, until [sync_interval] executions are scheduled
   or the budget is spent. Consumes skip draws from the planning stream
   and mutates times_fuzzed/pending_favored at plan time (the sequential
   loop does so between entries; both orders are deterministic). *)
let plan_epoch (t : t) : item array =
  let base = t.cfg.base in
  let c = t.obs.counters in
  let items = ref [] in
  let n_items = ref 0 in
  let planned = ref 0 in
  while !planned < t.cfg.sync_interval && t.execs + !planned < base.budget do
    if t.next_qi >= t.cycle_len then begin
      Corpus.recompute_favored t.corpus;
      c.cycles <- c.cycles + 1;
      let fav = ref 0 in
      Corpus.iter (fun e -> if e.Corpus.favored then incr fav) t.corpus;
      c.favored <- !fav;
      c.pending_favored <- t.corpus.pending_favored;
      Obs.Observer.event t.obs
        (Obs.Event.Favored_cycle
           {
             at_exec = t.exec_base + t.execs + !planned;
             queue = Corpus.size t.corpus;
             favored = !fav;
             pending = t.corpus.pending_favored;
           });
      t.cycle_len <- Corpus.size t.corpus;
      t.next_qi <- 0
    end;
    let e = Corpus.get t.corpus t.next_qi in
    t.next_qi <- t.next_qi + 1;
    if not (Campaign.entry_skip t.plan_rng ~pending_favored:t.corpus.pending_favored e)
    then begin
      let calib_cost = if base.cmplog then 1 else 0 in
      let remaining = base.budget - (t.execs + !planned) in
      let energy =
        min (Campaign.entry_energy ~budget:base.budget e)
          (max 0 (remaining - calib_cost))
      in
      items :=
        {
          entry_idx = t.next_qi - 1;
          entry_id = e.Corpus.id;
          rng = Rng.substream ~seed:base.rng_seed (t.items_total + 1);
          calib = base.cmplog;
          energy;
          base_exec = t.execs + !planned;
        }
        :: !items;
      t.items_total <- t.items_total + 1;
      incr n_items;
      planned := !planned + calib_cost + energy;
      e.Corpus.times_fuzzed <- e.Corpus.times_fuzzed + 1;
      if e.Corpus.favored && e.Corpus.times_fuzzed = 1 then
        t.corpus.pending_favored <- max 0 (t.corpus.pending_favored - 1)
    end
  done;
  let arr = Array.of_list (List.rev !items) in
  arr

(* Replay one epoch's item results against the shared state, in global
   item order — the only place shared campaign state is written. *)
let merge_epoch (t : t) (items : item array) (results : item_result array) :
    int =
  let base = t.cfg.base in
  let c = t.obs.counters in
  let retained_now = ref 0 in
  Array.iteri
    (fun k (it : item) ->
      let r = results.(k) in
      if it.calib then
        Obs.Observer.event t.obs
          (Obs.Event.Calibration
             {
               at_exec = t.exec_base + it.base_exec + 1;
               entry = it.entry_id;
               cmps = r.n_cmps;
             });
      List.iter
        (fun (cr : crash_rec) ->
          let coverage_novel =
            Pathcov.Coverage_map.merge_sparse_into ~virgin:t.crash_virgin
              ~idxs:cr.c_idxs ~vals:cr.c_vals
            <> Pathcov.Coverage_map.Nothing
          in
          Triage.record_crash t.triage ~crash:cr.c_crash ~input:cr.c_input
            ~at_exec:cr.c_at_exec ~coverage_novel)
        r.crashes;
      List.iter (fun at -> Triage.record_hang ~at_exec:at t.triage) r.hangs;
      List.iter
        (fun (rr : retained_rec) ->
          if Corpus.size t.corpus >= base.max_queue then begin
            c.queue_full_drops <- c.queue_full_drops + 1;
            if c.queue_full_drops = 1 then
              Obs.Observer.event t.obs
                (Obs.Event.Queue_full
                   {
                     at_exec = t.exec_base + rr.r_at_exec;
                     queue = Corpus.size t.corpus;
                   })
          end
          else if
            Pathcov.Coverage_map.merge_sparse_into ~virgin:t.virgin
              ~idxs:rr.r_idxs ~vals:rr.r_vals
            <> Pathcov.Coverage_map.Nothing
          then begin
            let e =
              Corpus.add t.corpus ~data:rr.r_data ~indices:rr.r_idxs
                ~exec_blocks:rr.r_exec_blocks ~depth:rr.r_depth
                ~found_at:rr.r_at_exec
            in
            Corpus.claim_top_rated t.corpus e;
            c.retained <- c.retained + 1;
            incr retained_now;
            Obs.Observer.event t.obs
              (Obs.Event.Retain
                 {
                   at_exec = t.exec_base + rr.r_at_exec;
                   id = e.Corpus.id;
                   len = String.length rr.r_data;
                   depth = rr.r_depth;
                 })
          end
          else t.dup_dropped <- t.dup_dropped + 1)
        r.retained)
    items;
  !retained_now

let take_snapshot (t : t) : unit =
  Obs.Observer.snapshot t.obs
    (Obs.Snapshot.of_counters t.obs.counters ~queue:(Corpus.size t.corpus)
       ~virgin_residual:(Pathcov.Coverage_map.residual t.virgin))

(* ------------------------------------------------------------------ *)
(* Stall watchdog *)

(** A shard counts as stalled when its epoch slice took more than this
    many times the median shard's wall. *)
let stall_factor = 4.

(** Pure stall verdicts over one epoch's per-shard walls:
    [(shard, wall, median)] for every shard whose wall exceeds
    [factor *.] the median. Empty when fewer than two shards or when the
    median is zero (unclocked or degenerate epochs never stall). *)
let stall_check ~(walls : float array) ~(factor : float) :
    (int * float * float) list =
  let n = Array.length walls in
  if n < 2 then []
  else begin
    let sorted = Array.copy walls in
    Array.sort compare sorted;
    let median =
      if n land 1 = 1 then sorted.(n / 2)
      else 0.5 *. (sorted.((n / 2) - 1) +. sorted.(n / 2))
    in
    if median <= 0. then []
    else begin
      let out = ref [] in
      for s = n - 1 downto 0 do
        if walls.(s) > factor *. median then
          out := (s, walls.(s), median) :: !out
      done;
      !out
    end
  end

(* Coordinator-side span brackets on track 0 (planning, merge barriers,
   checkpoint writes). *)
let co_trace_begin (obs : Obs.Observer.t) (k : Obs.Trace.kind) : unit =
  match obs.trace with
  | Some tr -> Obs.Trace.begin_span tr ~track:0 k
  | None -> ()

let co_trace_end ?(arg = 0) (obs : Obs.Observer.t) : unit =
  match obs.trace with
  | Some tr -> Obs.Trace.end_span ~arg tr ~track:0 ()
  | None -> ()

(** Snapshot the sharded campaign at a merge barrier. Barriers are the
    only capture points: between them shard-private state is in flight,
    but at a barrier the entire campaign is the shared state below plus
    the planner cursor — and both are pure functions of
    [(seed, sync_interval)], so checkpoints are too, independent of
    shard and worker count. Per-item RNG streams need no capture: they
    are substreams keyed by [items_total]. *)
let capture_checkpoint (t : t) ~(subject : string) ~(fuzzer : string) :
    Checkpoint.t =
  let base = t.cfg.base in
  let c = t.obs.counters in
  Checkpoint.capture
    ~id:
      {
        Checkpoint.subject;
        fuzzer;
        mode = Pathcov.Feedback.mode_name base.mode;
        cmplog = base.cmplog;
        rng_seed = base.rng_seed;
        budget = base.budget;
        fuel = base.fuel;
        max_depth = base.max_depth;
        map_size_log2 = base.map_size_log2;
        max_queue = base.max_queue;
        sync_interval = t.cfg.sync_interval;
      }
    ~progress:
      {
        Checkpoint.execs = t.execs;
        blocks = c.blocks;
        havocs = c.havocs;
        rng_state = Rng.state t.plan_rng;
        items_total = t.items_total;
        cycle_len = t.cycle_len;
        next_qi = t.next_qi;
        epochs = t.epochs;
        dup_dropped = t.dup_dropped;
      }
    ~virgin:t.virgin ~crash_virgin:t.crash_virgin ~corpus:t.corpus
    ~triage:t.triage ~counters:c
    ~snapshots:(Obs.Observer.snapshots t.obs)

(** Load a barrier snapshot into a freshly built coordinator: shared
    state (queue with favored/top-rated machinery, triage, virgin maps),
    the planner cursor and its RNG position, the counter block and the
    recorded snapshot rows. Config validation is the caller's job
    ({!Checkpoint.check_compat}); only the map size is re-checked. *)
let restore_checkpoint (t : t) (ck : Checkpoint.t) : unit =
  if ck.Checkpoint.id.map_size_log2 <> t.cfg.base.map_size_log2 then
    invalid_arg "Shard.restore_checkpoint: map size disagrees with config";
  Checkpoint.restore_corpus_into ck t.corpus;
  Checkpoint.restore_triage_into ck t.triage;
  Pathcov.Coverage_map.restore_raw t.virgin ck.Checkpoint.virgin;
  Pathcov.Coverage_map.restore_raw t.crash_virgin ck.Checkpoint.crash_virgin;
  Rng.set_state t.plan_rng ck.Checkpoint.progress.rng_state;
  t.execs <- ck.Checkpoint.progress.execs;
  t.items_total <- ck.Checkpoint.progress.items_total;
  t.cycle_len <- ck.Checkpoint.progress.cycle_len;
  t.next_qi <- ck.Checkpoint.progress.next_qi;
  t.epochs <- ck.Checkpoint.progress.epochs;
  t.dup_dropped <- ck.Checkpoint.progress.dup_dropped;
  Obs.Counters.add_into ~into:t.obs.counters ck.Checkpoint.counters;
  Obs.Observer.preload_snapshots t.obs (Array.to_list ck.Checkpoint.snapshots)

(* Seed import on shard 0's resources, before any parallel phase — the
   sequential add_seed semantics: seeds always retained, crashes/hangs
   triaged, coverage merged into the shared virgin map directly. *)
let import_seed (t : t) (sh : shard) (input : string) : unit =
  let base = t.cfg.base in
  let out = sh_exec base sh input in
  t.execs <- t.execs + 1;
  let c = t.obs.counters in
  match out.status with
  | Vm.Interp.Crashed crash ->
      let coverage_novel =
        Pathcov.Coverage_map.merge_into ~virgin:t.crash_virgin
          sh.feedback.trace
        <> Pathcov.Coverage_map.Nothing
      in
      Triage.record_crash t.triage ~crash ~input ~at_exec:t.execs
        ~coverage_novel
  | Vm.Interp.Hung -> Triage.record_hang ~at_exec:t.execs t.triage
  | Vm.Interp.Finished _ ->
      ignore
        (Pathcov.Coverage_map.merge_into ~virgin:t.virgin sh.feedback.trace);
      c.seeds_imported <- c.seeds_imported + 1;
      Obs.Observer.event t.obs
        (Obs.Event.Seed_import
           { at_exec = t.exec_base + t.execs; len = String.length input });
      let indices = Pathcov.Coverage_map.sorted_indices sh.feedback.trace in
      let e =
        Corpus.add t.corpus ~data:input ~indices
          ~exec_blocks:(max 1 out.blocks_executed) ~depth:0 ~found_at:t.execs
      in
      Corpus.claim_top_rated t.corpus e;
      c.retained <- c.retained + 1;
      Obs.Observer.event t.obs
        (Obs.Event.Retain
           {
             at_exec = t.exec_base + t.execs;
             id = e.Corpus.id;
             len = String.length input;
             depth = 0;
           })

(** Run one sharded campaign. [workers] caps the domain-pool width (the
    default runs one worker per shard; any value yields byte-identical
    results — it is purely a wall-clock knob, like [--jobs] for trial
    fan-out). [plans] and [obs] behave as in {!Campaign.run}; the
    observer's clock enables the same vm/mutator wall split, accumulated
    per shard and aggregated at each barrier.

    [checkpoint] writes a snapshot at each merge barrier that crosses a
    multiple of [sink.every] executions (mid-budget only); [resume]
    restores one instead of importing [seeds]. Because barriers — and
    therefore checkpoints — are functions of [(seed, sync_interval)]
    alone, a snapshot taken at any shard/worker count resumes at any
    other with a byte-identical remaining trajectory. Both assume the
    campaign owns its observer (the counter block is restored
    wholesale). *)
let run ?plans ?obs ?workers ?(checkpoint : Checkpoint.sink option)
    ?(resume : Checkpoint.t option) (cfg : config) (prog : Minic.Ir.program)
    ~(seeds : string list) : result =
  if cfg.shards < 1 then invalid_arg "Shard.run: shards must be >= 1";
  if cfg.sync_interval < 1 then
    invalid_arg "Shard.run: sync_interval must be >= 1";
  let obs = match obs with Some o -> o | None -> Obs.Observer.null () in
  let base = cfg.base in
  let prepared = Vm.Interp.prepare_cached prog in
  let shards =
    Array.init cfg.shards (fun s ->
        make_shard ?plans base prepared obs.clock obs.trace ~track:(s + 1) prog)
  in
  (* Emission fails identically for every shard (same cache key), so one
     event stands for the fleet. *)
  (match Tracer.emit_fallback shards.(0).tracer with
  | Some reason -> Obs.Observer.event obs (Obs.Event.Emit_fallback { reason })
  | None -> ());
  let c = obs.counters in
  let exec_base = c.execs in
  let snap_base = obs.n_snapshots in
  let vm_s0 = c.vm_s and mut_s0 = c.mut_s in
  let mut_minor_words0 = c.mut_minor_words in
  let blocks0 = c.blocks and havocs0 = c.havocs in
  let t =
    {
      cfg;
      obs;
      corpus = Corpus.create ();
      virgin =
        Pathcov.Coverage_map.create_virgin ~size_log2:base.map_size_log2 ();
      crash_virgin =
        Pathcov.Coverage_map.create_virgin ~size_log2:base.map_size_log2 ();
      triage = Triage.create ~obs ();
      plan_rng = Rng.substream ~seed:base.rng_seed 0;
      execs = 0;
      items_total = 0;
      cycle_len = 0;
      next_qi = 0;
      epochs = 0;
      dup_dropped = 0;
      exec_base;
    }
  in
  (match resume with
  | Some ck -> restore_checkpoint t ck
  | None ->
      List.iter (import_seed t shards.(0)) seeds;
      if Corpus.size t.corpus = 0 then import_seed t shards.(0) "A";
      if Corpus.size t.corpus = 0 then
        ignore
          (Corpus.add t.corpus ~data:"A" ~indices:[||] ~exec_blocks:1 ~depth:0
             ~found_at:t.execs);
      (* drain seed-import execution counts out of shard 0's block so the
         observer is current before the first barrier *)
      Obs.Counters.add_into ~into:c shards.(0).counters;
      Obs.Counters.reset shards.(0).counters;
      Obs.Metrics.add_into ~into:obs.metrics shards.(0).metrics;
      Obs.Metrics.reset shards.(0).metrics);
  (* snapshot schedule: a pure function of the exec clock, identical for
     straight and resumed runs *)
  let next_mark = ref max_int in
  (match checkpoint with
  | Some sk -> next_mark := Checkpoint.next_mark ~every:sk.every ~execs:t.execs
  | None -> ());
  let workers =
    min cfg.shards (match workers with Some w -> max 1 w | None -> cfg.shards)
  in
  let pool = if workers > 1 then Some (Exec.Pool.create ~jobs:workers) else None in
  Fun.protect
    ~finally:(fun () ->
      match pool with Some p -> Exec.Pool.shutdown p | None -> ())
    (fun () ->
      while t.execs < base.budget do
        co_trace_begin obs Obs.Trace.Plan;
        let items = plan_epoch t in
        let n = Array.length items in
        co_trace_end ~arg:n obs;
        let results = Array.make n None in
        let view = Corpus.view t.corpus ~limit:(Corpus.size t.corpus) in
        let slice s ~worker:_ =
          let sh = shards.(s) in
          let t0 = match sh.clock with Some now -> now () | None -> 0. in
          sh_trace_begin sh Obs.Trace.Epoch;
          let mine = ref 0 in
          let k = ref s in
          while !k < n do
            results.(!k) <- Some (run_item base sh view t.virgin items.(!k));
            incr mine;
            k := !k + cfg.shards
          done;
          sh_trace_end ~arg:!mine sh;
          sh.epoch_wall <-
            (match sh.clock with Some now -> now () -. t0 | None -> 0.)
        in
        (match pool with
        | Some p -> Exec.Pool.run_phase p cfg.shards slice
        | None ->
            for s = 0 to cfg.shards - 1 do
              slice s ~worker:0
            done);
        let results =
          Array.map
            (function
              | Some r -> r | None -> invalid_arg "Shard.run: missing result")
            results
        in
        (* barrier: the shard domains are parked (run_phase returned), so
           draining their private counter/metric blocks is race-free *)
        Array.iter
          (fun sh ->
            Obs.Counters.add_into ~into:c sh.counters;
            Obs.Counters.reset sh.counters;
            Obs.Metrics.add_into ~into:obs.metrics sh.metrics;
            Obs.Metrics.reset sh.metrics)
          shards;
        co_trace_begin obs Obs.Trace.Merge;
        let retained_now = merge_epoch t items results in
        co_trace_end ~arg:retained_now obs;
        Array.iter (fun (r : item_result) -> t.execs <- t.execs + r.execs) results;
        t.epochs <- t.epochs + 1;
        (* stall watchdog: epoch walls exist only when the observer
           carries a clock, so verdicts (like every wall) are
           observation-only and never reach a fuzzing decision *)
        (match obs.clock with
        | Some _ when cfg.shards > 1 ->
            let walls = Array.map (fun sh -> sh.epoch_wall) shards in
            let maxw = Array.fold_left max 0. walls in
            let m = obs.metrics in
            Array.iteri
              (fun s sh ->
                Obs.Metrics.add_wall
                  (Obs.Metrics.wall m (Printf.sprintf "shard%d.busy_s" s))
                  sh.epoch_wall;
                Obs.Metrics.add_wall
                  (Obs.Metrics.wall m (Printf.sprintf "shard%d.wait_s" s))
                  (maxw -. sh.epoch_wall))
              shards;
            List.iter
              (fun (s, w, med) ->
                Obs.Metrics.bump (Obs.Metrics.counter m "shard.stalls");
                Obs.Observer.event t.obs
                  (Obs.Event.Stall
                     {
                       at_exec = t.exec_base + t.execs;
                       epoch = t.epochs;
                       shard = s;
                       wall_s = w;
                       median_s = med;
                     }))
              (stall_check ~walls ~factor:stall_factor)
        | _ -> ());
        Obs.Observer.event t.obs
          (Obs.Event.Shard_sync
             {
               at_exec = t.exec_base + t.execs;
               epoch = t.epochs;
               queue = Corpus.size t.corpus;
               retained = retained_now;
               dup_dropped = t.dup_dropped;
             });
        take_snapshot t;
        (* barrier-aligned checkpoint, mid-budget only: resuming the
           final state would be a no-op and the written file should
           always have budget left to replay *)
        match checkpoint with
        | Some sk when t.execs < base.budget && t.execs >= !next_mark ->
            co_trace_begin obs Obs.Trace.Checkpoint;
            sk.save (capture_checkpoint t ~subject:sk.subject ~fuzzer:sk.fuzzer);
            co_trace_end obs;
            next_mark := Checkpoint.next_mark ~every:sk.every ~execs:t.execs
        | _ -> ()
      done);
  (* engine-level harvest, mirroring the sequential campaign's: walls
     and gauges set once at budget exhaustion; artifact tallies summed
     across the per-shard tracers (fusion shape is per-artifact and
     identical across shards, so shard 0's stands for all). *)
  let m = obs.metrics in
  Obs.Metrics.set_wall (Obs.Metrics.wall m "campaign.vm_s") c.vm_s;
  Obs.Metrics.set_wall (Obs.Metrics.wall m "campaign.mut_s") c.mut_s;
  Obs.Metrics.add_wall
    (Obs.Metrics.wall m "engine.compile_s")
    (Array.fold_left
       (fun a sh -> a +. Tracer.compile_seconds sh.tracer)
       0. shards);
  let hits, misses = Vm.Compile.cache_stats () in
  Obs.Metrics.set (Obs.Metrics.gauge m "engine.cache_hits") hits;
  Obs.Metrics.set (Obs.Metrics.gauge m "engine.cache_misses") misses;
  Obs.Metrics.set
    (Obs.Metrics.gauge m "engine.seen_signals")
    (Array.fold_left (fun a sh -> a + Tracer.seen_signals sh.tracer) 0 shards);
  (match base.engine with
  | Tracer.Native ->
      let e = Vm.Emit.stats () in
      Obs.Metrics.set_wall (Obs.Metrics.wall m "emit.compile_s") e.compile_s;
      Obs.Metrics.set (Obs.Metrics.gauge m "emit.cache_hits") e.cache_hits;
      Obs.Metrics.set (Obs.Metrics.gauge m "emit.cache_misses") e.cache_misses;
      Obs.Metrics.set (Obs.Metrics.gauge m "emit.fallbacks") e.fallbacks
  | Tracer.Interp | Tracer.Compiled | Tracer.Fused -> ());
  (match Tracer.artifact_stats shards.(0).tracer with
  | None -> ()
  | Some (_, s) ->
      let rollbacks = ref 0 and careful = ref 0 in
      Array.iter
        (fun sh ->
          match Tracer.artifact_stats sh.tracer with
          | Some (r, _) ->
              rollbacks := !rollbacks + r.Vm.Compile.rollbacks;
              careful := !careful + r.Vm.Compile.careful_units
          | None -> ())
        shards;
      Obs.Metrics.set (Obs.Metrics.gauge m "engine.rollbacks") !rollbacks;
      Obs.Metrics.set (Obs.Metrics.gauge m "engine.careful_units") !careful;
      Obs.Metrics.set (Obs.Metrics.gauge m "fusion.chains") s.Vm.Compile.chains;
      Obs.Metrics.set
        (Obs.Metrics.gauge m "fusion.chain_blocks")
        s.Vm.Compile.chain_blocks;
      Obs.Metrics.set
        (Obs.Metrics.gauge m "fusion.chain_max")
        s.Vm.Compile.chain_max;
      Obs.Metrics.set
        (Obs.Metrics.gauge m "fusion.dup_instrs")
        s.Vm.Compile.dup_instrs);
  let snapshots = Obs.Observer.snapshots_from obs ~from:snap_base in
  {
    campaign =
      {
        Campaign.config = base;
        corpus = t.corpus;
        triage = t.triage;
        execs = t.execs;
        queue_series =
          List.map
            (fun (r : Obs.Snapshot.row) -> (r.at_exec - exec_base, r.queue))
            snapshots;
        sum_exec_blocks = c.blocks - blocks0;
        havocs = c.havocs - havocs0;
        snapshots;
        vm_s = c.vm_s -. vm_s0;
        mut_s = c.mut_s -. mut_s0;
        mut_minor_words = c.mut_minor_words -. mut_minor_words0;
      };
    shards = cfg.shards;
    sync_interval = cfg.sync_interval;
    epochs = t.epochs;
    items = t.items_total;
    dup_dropped = t.dup_dropped;
    virgin = t.virgin;
    crash_virgin = t.crash_virgin;
  }
