(** Versioned campaign snapshots: stop a campaign at a barrier, write its
    full state to disk, and later resume a run that is {e byte-identical}
    to the uninterrupted one.

    Because a campaign trajectory is already a pure function of
    [(seed, sync_interval)] (sharded) or the seed (sequential), a snapshot
    only has to capture the campaign-visible state at a deterministic
    boundary — a sequential cycle boundary or a sharded merge barrier —
    and a resumed run replays the exact future of the original. That is a
    stronger contract than AFL-family "resume from the queue directory"
    restarts, and it is testable: the differential suite checkpoints at
    every barrier and proves each resume reproduces the straight run's
    queue, coverage maps, crash triage and observer counters byte for
    byte.

    What a snapshot holds:
    - a {!config_id} naming the run (subject, fuzzer, mode, cmplog, seed,
      budget, VM limits, map size, sync interval) — validated on resume;
    - {!progress}: exec/block/havoc clocks, the planner cursor of a
      sharded run, and every live RNG stream position ({!Rng.state});
    - the virgin and crash-virgin coverage maps, raw bytes;
    - the indexed corpus: entries with their sparse coverage indices and
      [found_at]/[times_fuzzed]/favored metadata, plus the top-rated
      table and pending-favored count;
    - the {!Obs.Counters.t} block and the snapshot rows recorded so far
      (wall-clock floats ride along but are excluded from
      {!fingerprint}, the deterministic identity);
    - the triage record: every crash cluster with its witness input.

    On-disk format ([pathfuzz-checkpoint/v1]): an ASCII magic+version
    header, a length-prefixed little-endian binary payload, and a
    trailing FNV-1a checksum over everything before it. {!of_string}
    rejects truncated, corrupted, foreign and future-versioned files
    with a diagnostic [Error] — never an exception — so the CLI can turn
    any bad snapshot into a clean nonzero exit. *)

let magic_prefix = "pathfuzz-checkpoint/"
let version = 1
let header = Printf.sprintf "%sv%d\n" magic_prefix version

(** The identity of the run that wrote a snapshot. Resume validates the
    whole block: resuming under a different subject, fuzzer, seed or
    sync schedule would silently produce a trajectory comparable to
    nothing, so a mismatch is a hard error. [sync_interval = 0] marks a
    sequential campaign (cycle-boundary snapshots); a positive value is
    the sharded merge-barrier schedule. *)
type config_id = {
  subject : string;
  fuzzer : string;
  mode : string;  (** {!Pathcov.Feedback.mode_name} *)
  cmplog : bool;
  rng_seed : int;
  budget : int;
  fuel : int;
  max_depth : int;
  map_size_log2 : int;
  max_queue : int;
  sync_interval : int;  (** 0 = sequential campaign loop *)
}

(** Campaign clocks and cursors. The sequential loop uses [rng_state]
    (its single campaign stream) and the exec/block/havoc clocks; the
    sharded coordinator additionally stores its planner cursor
    ([items_total], [cycle_len], [next_qi], [epochs], [dup_dropped]) and
    keeps [rng_state] for the planning stream. Per-item RNG streams need
    no state: they are keyed by [items_total] ({!Rng.substream}). *)
type progress = {
  execs : int;
  blocks : int;
  havocs : int;
  rng_state : int;
  items_total : int;
  cycle_len : int;
  next_qi : int;
  epochs : int;
  dup_dropped : int;
}

type entry_rec = {
  e_id : int;
  e_data : string;
  e_indices : int array;
  e_exec_blocks : int;
  e_depth : int;
  e_found_at : int;
  e_favored : bool;
  e_times_fuzzed : int;
}

type crash_rec = { x_crash : Vm.Crash.t; x_input : string; x_at_exec : int }

type triage_rec = {
  tr_total_crashes : int;
  tr_total_hangs : int;
  tr_by_stack : crash_rec array;  (** sorted by top-5-frame hash *)
  tr_by_bug : crash_rec array;  (** sorted by ground-truth identity *)
  tr_afl_unique : crash_rec array;  (** stored list order (newest first) *)
}

type t = {
  id : config_id;
  progress : progress;
  virgin : bytes;
  crash_virgin : bytes;
  entries : entry_rec array;  (** discovery order *)
  next_entry_id : int;
  pending_favored : int;
  top_rated : (int * int) array;  (** (map index, entry id), ascending *)
  counters : Obs.Counters.t;  (** detached copy of the observer block *)
  snapshots : Obs.Snapshot.row array;
  triage : triage_rec;
}

(** How a campaign writes snapshots: at each deterministic boundary that
    crosses a multiple of [every] executions (and is still mid-budget),
    the runner captures its state and hands it to [save]. [subject] and
    [fuzzer] are identity fields the campaign itself cannot know. *)
type sink = {
  every : int;
  subject : string;
  fuzzer : string;
  save : t -> unit;
}

(** The exec count at which the next snapshot fires, as a pure function
    of the current exec clock — straight and resumed runs compute the
    identical snapshot schedule. *)
let next_mark ~every ~execs = ((execs / every) + 1) * every

(* ------------------------------------------------------------------ *)
(* Capture *)

let capture ~(id : config_id) ~(progress : progress)
    ~(virgin : Pathcov.Coverage_map.t)
    ~(crash_virgin : Pathcov.Coverage_map.t) ~(corpus : Corpus.t)
    ~(triage : Triage.t) ~(counters : Obs.Counters.t)
    ~(snapshots : Obs.Snapshot.row list) : t =
  let entries =
    Array.init (Corpus.size corpus) (fun i ->
        let e = Corpus.get corpus i in
        {
          e_id = e.Corpus.id;
          e_data = e.Corpus.data;
          e_indices = Array.copy e.Corpus.indices;
          e_exec_blocks = e.Corpus.exec_blocks;
          e_depth = e.Corpus.depth;
          e_found_at = e.Corpus.found_at;
          e_favored = e.Corpus.favored;
          e_times_fuzzed = e.Corpus.times_fuzzed;
        })
  in
  let top_rated =
    Hashtbl.fold
      (fun idx (e : Corpus.entry) acc -> (idx, e.Corpus.id) :: acc)
      corpus.Corpus.top_rated []
    |> List.sort compare |> Array.of_list
  in
  let rec_of (r : Triage.record) =
    { x_crash = r.Triage.crash; x_input = r.Triage.input; x_at_exec = r.Triage.at_exec }
  in
  let sorted_records tbl key_order =
    Hashtbl.fold (fun k r acc -> (k, r) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> key_order a b)
    |> List.map (fun (_, r) -> rec_of r)
    |> Array.of_list
  in
  let counters_copy = Obs.Counters.create () in
  Obs.Counters.add_into ~into:counters_copy counters;
  {
    id;
    progress;
    virgin = Pathcov.Coverage_map.raw_bytes virgin;
    crash_virgin = Pathcov.Coverage_map.raw_bytes crash_virgin;
    entries;
    next_entry_id = corpus.Corpus.next_id;
    pending_favored = corpus.Corpus.pending_favored;
    top_rated;
    counters = counters_copy;
    snapshots = Array.of_list snapshots;
    triage =
      {
        tr_total_crashes = triage.Triage.total_crashes;
        tr_total_hangs = triage.Triage.total_hangs;
        tr_by_stack = sorted_records triage.Triage.by_stack compare;
        tr_by_bug =
          sorted_records triage.Triage.by_bug Vm.Crash.identity_compare;
        tr_afl_unique =
          Array.of_list (List.map rec_of triage.Triage.afl_unique);
      };
  }

(* ------------------------------------------------------------------ *)
(* Restore *)

(** Rebuild the captured queue into [corpus] (normally fresh): entries in
    discovery order with their metadata, favored flags, the top-rated
    table and the pending-favored count — everything the scheduler and
    the incremental [claim_top_rated] path read. *)
let restore_corpus_into (ck : t) (corpus : Corpus.t) : unit =
  corpus.Corpus.size <- 0;
  Hashtbl.reset corpus.Corpus.top_rated;
  Array.iter
    (fun (er : entry_rec) ->
      let e =
        Corpus.add corpus ~data:er.e_data ~indices:er.e_indices
          ~exec_blocks:er.e_exec_blocks ~depth:er.e_depth
          ~found_at:er.e_found_at
      in
      e.Corpus.favored <- er.e_favored;
      e.Corpus.times_fuzzed <- er.e_times_fuzzed)
    ck.entries;
  corpus.Corpus.next_id <- ck.next_entry_id;
  corpus.Corpus.pending_favored <- ck.pending_favored;
  let by_id = Hashtbl.create (max 16 (Array.length ck.entries)) in
  Corpus.iter (fun e -> Hashtbl.replace by_id e.Corpus.id e) corpus;
  Array.iter
    (fun (idx, eid) ->
      match Hashtbl.find_opt by_id eid with
      | Some e -> Hashtbl.replace corpus.Corpus.top_rated idx e
      | None -> invalid_arg "Checkpoint.restore_corpus_into: dangling entry id")
    ck.top_rated

(** Refill [triage] (normally fresh) from the captured record. Counters
    are {e not} re-bumped — crash/hang totals live in the restored
    counter block — so the observer wired into [triage] only sees what
    happens after the resume. *)
let restore_triage_into (ck : t) (triage : Triage.t) : unit =
  let record (x : crash_rec) =
    { Triage.crash = x.x_crash; input = x.x_input; at_exec = x.x_at_exec }
  in
  triage.Triage.total_crashes <- ck.triage.tr_total_crashes;
  triage.Triage.total_hangs <- ck.triage.tr_total_hangs;
  Hashtbl.reset triage.Triage.by_stack;
  Hashtbl.reset triage.Triage.by_bug;
  Array.iter
    (fun x ->
      Hashtbl.replace triage.Triage.by_stack
        (Vm.Crash.top5_hash x.x_crash)
        (record x))
    ck.triage.tr_by_stack;
  Array.iter
    (fun x ->
      Hashtbl.replace triage.Triage.by_bug
        (Vm.Crash.bug_identity x.x_crash)
        (record x))
    ck.triage.tr_by_bug;
  triage.Triage.afl_unique <-
    Array.to_list (Array.map record ck.triage.tr_afl_unique)

(* ------------------------------------------------------------------ *)
(* Config compatibility *)

(** Validate that a snapshot belongs to the run being resumed. Every
    identity field must match: a different subject, fuzzer, mode,
    cmplog setting, seed, budget, VM limit, map size or sync schedule
    means the resumed trajectory would not be the checkpointed one. *)
let check_compat ~(expected : config_id) (ck : t) : (unit, string) result =
  let c = ck.id in
  let mism = ref [] in
  let chk name a b pp = if a <> b then mism := Printf.sprintf "%s: checkpoint has %s, this run has %s" name (pp a) (pp b) :: !mism in
  let str s = Printf.sprintf "%S" s in
  let num = string_of_int in
  let bl = string_of_bool in
  chk "subject" c.subject expected.subject str;
  chk "fuzzer" c.fuzzer expected.fuzzer str;
  chk "mode" c.mode expected.mode str;
  chk "cmplog" c.cmplog expected.cmplog bl;
  chk "seed" c.rng_seed expected.rng_seed num;
  chk "budget" c.budget expected.budget num;
  chk "fuel" c.fuel expected.fuel num;
  chk "max-depth" c.max_depth expected.max_depth num;
  chk "map-size-log2" c.map_size_log2 expected.map_size_log2 num;
  chk "max-queue" c.max_queue expected.max_queue num;
  chk "sync-interval" c.sync_interval expected.sync_interval num;
  match List.rev !mism with
  | [] -> Ok ()
  | ms -> Error (String.concat "; " ms)

(* ------------------------------------------------------------------ *)
(* Binary encoding: little-endian, length-prefixed, checksummed *)

let w_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let w_bool buf b = w_int buf (if b then 1 else 0)

let w_str buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_bytes buf b =
  w_int buf (Bytes.length b);
  Buffer.add_bytes buf b

(* Floats as raw IEEE bits; [zero] writes 0.0 instead — the fingerprint
   path, where wall-clock measurements must not perturb the identity. *)
let w_float ~zero buf f =
  Buffer.add_int64_le buf (if zero then 0L else Int64.bits_of_float f)

let w_int_array buf a =
  w_int buf (Array.length a);
  Array.iter (w_int buf) a

let w_crash buf (c : Vm.Crash.t) =
  (match c.Vm.Crash.kind with
  | Vm.Crash.Out_of_bounds { len; idx } ->
      w_int buf 0;
      w_int buf len;
      w_int buf idx
  | Vm.Crash.Div_by_zero -> w_int buf 1
  | Vm.Crash.Seeded id ->
      w_int buf 2;
      w_int buf id
  | Vm.Crash.Check_failed id ->
      w_int buf 3;
      w_int buf id
  | Vm.Crash.Bad_alloc n ->
      w_int buf 4;
      w_int buf n
  | Vm.Crash.Stack_overflow -> w_int buf 5
  | Vm.Crash.Type_error s ->
      w_int buf 6;
      w_str buf s);
  w_int buf (List.length c.Vm.Crash.stack);
  List.iter
    (fun (f : Vm.Crash.frame) ->
      w_str buf f.Vm.Crash.fn;
      w_int buf f.Vm.Crash.site)
    c.Vm.Crash.stack

let w_crash_rec buf (x : crash_rec) =
  w_crash buf x.x_crash;
  w_str buf x.x_input;
  w_int buf x.x_at_exec

let w_counters ~zero buf (c : Obs.Counters.t) =
  List.iter (fun (_, v) -> w_int buf v) (Obs.Counters.to_fields c);
  w_float ~zero buf c.Obs.Counters.vm_s;
  w_float ~zero buf c.Obs.Counters.mut_s;
  w_float ~zero buf c.Obs.Counters.mut_minor_words

let w_snapshot ~zero buf (r : Obs.Snapshot.row) =
  w_int buf r.Obs.Snapshot.at_exec;
  w_int buf r.queue;
  w_int buf r.favored;
  w_int buf r.pending_favored;
  w_int buf r.cycles;
  w_int buf r.retained;
  w_int buf r.havocs;
  w_int buf r.splices;
  w_int buf r.i2s_cands;
  w_int buf r.calibrations;
  w_int buf r.crashes;
  w_int buf r.crashes_stack_unique;
  w_int buf r.crashes_cov_novel;
  w_int buf r.hangs;
  w_int buf r.queue_full_drops;
  w_int buf r.blocks;
  w_int buf r.virgin_residual;
  w_float ~zero buf r.vm_s;
  w_float ~zero buf r.mut_s;
  w_float ~zero buf r.mut_minor_words

let payload ?(zero_floats = false) (ck : t) : string =
  let buf = Buffer.create 4096 in
  let zero = zero_floats in
  let id = ck.id in
  w_str buf id.subject;
  w_str buf id.fuzzer;
  w_str buf id.mode;
  w_bool buf id.cmplog;
  w_int buf id.rng_seed;
  w_int buf id.budget;
  w_int buf id.fuel;
  w_int buf id.max_depth;
  w_int buf id.map_size_log2;
  w_int buf id.max_queue;
  w_int buf id.sync_interval;
  let p = ck.progress in
  w_int buf p.execs;
  w_int buf p.blocks;
  w_int buf p.havocs;
  w_int buf p.rng_state;
  w_int buf p.items_total;
  w_int buf p.cycle_len;
  w_int buf p.next_qi;
  w_int buf p.epochs;
  w_int buf p.dup_dropped;
  w_bytes buf ck.virgin;
  w_bytes buf ck.crash_virgin;
  w_int buf (Array.length ck.entries);
  Array.iter
    (fun (e : entry_rec) ->
      w_int buf e.e_id;
      w_str buf e.e_data;
      w_int_array buf e.e_indices;
      w_int buf e.e_exec_blocks;
      w_int buf e.e_depth;
      w_int buf e.e_found_at;
      w_bool buf e.e_favored;
      w_int buf e.e_times_fuzzed)
    ck.entries;
  w_int buf ck.next_entry_id;
  w_int buf ck.pending_favored;
  w_int buf (Array.length ck.top_rated);
  Array.iter
    (fun (idx, eid) ->
      w_int buf idx;
      w_int buf eid)
    ck.top_rated;
  w_counters ~zero buf ck.counters;
  w_int buf (Array.length ck.snapshots);
  Array.iter (w_snapshot ~zero buf) ck.snapshots;
  let tr = ck.triage in
  w_int buf tr.tr_total_crashes;
  w_int buf tr.tr_total_hangs;
  w_int buf (Array.length tr.tr_by_stack);
  Array.iter (w_crash_rec buf) tr.tr_by_stack;
  w_int buf (Array.length tr.tr_by_bug);
  Array.iter (w_crash_rec buf) tr.tr_by_bug;
  w_int buf (Array.length tr.tr_afl_unique);
  Array.iter (w_crash_rec buf) tr.tr_afl_unique;
  Buffer.contents buf

(* FNV-1a over a string region, folded into OCaml's 63-bit int range —
   the same construction Coverage_map.bytes_hash uses. *)
let fnv (s : string) ~pos ~len : int =
  let h = ref 0x3bf29ce484222325 in
  for i = pos to pos + len - 1 do
    h := !h lxor Char.code (String.unsafe_get s i);
    h := !h * 0x100000001b3
  done;
  !h land max_int

(** The snapshot's deterministic identity: FNV-1a over the payload with
    every wall-clock float zeroed. Two runs at the same logical point —
    straight vs resumed, clocked vs unclocked, any shard count — have
    equal fingerprints. *)
let fingerprint (ck : t) : int =
  let p = payload ~zero_floats:true ck in
  fnv p ~pos:0 ~len:(String.length p)

(** Serialize: header, payload, trailing checksum over both. *)
let to_string (ck : t) : string =
  let body = header ^ payload ck in
  let chk = Buffer.create 8 in
  Buffer.add_int64_le chk (Int64.of_int (fnv body ~pos:0 ~len:(String.length body)));
  body ^ Buffer.contents chk

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Corrupt of string

type reader = { src : string; limit : int; mutable pos : int }

let need (r : reader) n =
  if n < 0 || r.pos + n > r.limit then raise (Corrupt "truncated payload")

let r_int (r : reader) : int =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let r_count (r : reader) what : int =
  let n = r_int r in
  (* any honest count is bounded by the remaining payload bytes *)
  if n < 0 || n > r.limit - r.pos then
    raise (Corrupt (Printf.sprintf "implausible %s count %d" what n));
  n

let r_bool (r : reader) : bool = r_int r <> 0

let r_str (r : reader) : string =
  let n = r_count r "string length" in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_bytes (r : reader) : bytes = Bytes.of_string (r_str r)

let r_float (r : reader) : float =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let r_int_array (r : reader) : int array =
  let n = r_count r "array" in
  Array.init n (fun _ -> r_int r)

let r_crash (r : reader) : Vm.Crash.t =
  let kind =
    match r_int r with
    | 0 ->
        let len = r_int r in
        let idx = r_int r in
        Vm.Crash.Out_of_bounds { len; idx }
    | 1 -> Vm.Crash.Div_by_zero
    | 2 -> Vm.Crash.Seeded (r_int r)
    | 3 -> Vm.Crash.Check_failed (r_int r)
    | 4 -> Vm.Crash.Bad_alloc (r_int r)
    | 5 -> Vm.Crash.Stack_overflow
    | 6 -> Vm.Crash.Type_error (r_str r)
    | k -> raise (Corrupt (Printf.sprintf "unknown crash kind tag %d" k))
  in
  let n = r_count r "stack" in
  let stack =
    List.init n (fun _ ->
        let fn = r_str r in
        let site = r_int r in
        { Vm.Crash.fn; site })
  in
  { Vm.Crash.kind; stack }

let r_crash_rec (r : reader) : crash_rec =
  let x_crash = r_crash r in
  let x_input = r_str r in
  let x_at_exec = r_int r in
  { x_crash; x_input; x_at_exec }

let r_counters (r : reader) : Obs.Counters.t =
  let c = Obs.Counters.create () in
  c.Obs.Counters.execs <- r_int r;
  c.blocks <- r_int r;
  c.havocs <- r_int r;
  c.splices <- r_int r;
  c.i2s_cands <- r_int r;
  c.calibrations <- r_int r;
  c.seeds_imported <- r_int r;
  c.retained <- r_int r;
  c.favored <- r_int r;
  c.pending_favored <- r_int r;
  c.cycles <- r_int r;
  c.queue_full_drops <- r_int r;
  c.crashes <- r_int r;
  c.crashes_stack_unique <- r_int r;
  c.crashes_cov_novel <- r_int r;
  c.hangs <- r_int r;
  c.replays <- r_int r;
  c.vm_s <- r_float r;
  c.mut_s <- r_float r;
  c.mut_minor_words <- r_float r;
  c

let r_snapshot (r : reader) : Obs.Snapshot.row =
  let at_exec = r_int r in
  let queue = r_int r in
  let favored = r_int r in
  let pending_favored = r_int r in
  let cycles = r_int r in
  let retained = r_int r in
  let havocs = r_int r in
  let splices = r_int r in
  let i2s_cands = r_int r in
  let calibrations = r_int r in
  let crashes = r_int r in
  let crashes_stack_unique = r_int r in
  let crashes_cov_novel = r_int r in
  let hangs = r_int r in
  let queue_full_drops = r_int r in
  let blocks = r_int r in
  let virgin_residual = r_int r in
  let vm_s = r_float r in
  let mut_s = r_float r in
  let mut_minor_words = r_float r in
  {
    Obs.Snapshot.at_exec;
    queue;
    favored;
    pending_favored;
    cycles;
    retained;
    havocs;
    splices;
    i2s_cands;
    calibrations;
    crashes;
    crashes_stack_unique;
    crashes_cov_novel;
    hangs;
    queue_full_drops;
    blocks;
    virgin_residual;
    vm_s;
    mut_s;
    mut_minor_words;
  }

let parse_payload (src : string) ~pos ~limit : t =
  let r = { src; limit; pos } in
  let subject = r_str r in
  let fuzzer = r_str r in
  let mode = r_str r in
  let cmplog = r_bool r in
  let rng_seed = r_int r in
  let budget = r_int r in
  let fuel = r_int r in
  let max_depth = r_int r in
  let map_size_log2 = r_int r in
  let max_queue = r_int r in
  let sync_interval = r_int r in
  let id =
    {
      subject;
      fuzzer;
      mode;
      cmplog;
      rng_seed;
      budget;
      fuel;
      max_depth;
      map_size_log2;
      max_queue;
      sync_interval;
    }
  in
  let execs = r_int r in
  let blocks = r_int r in
  let havocs = r_int r in
  let rng_state = r_int r in
  let items_total = r_int r in
  let cycle_len = r_int r in
  let next_qi = r_int r in
  let epochs = r_int r in
  let dup_dropped = r_int r in
  let progress =
    {
      execs;
      blocks;
      havocs;
      rng_state;
      items_total;
      cycle_len;
      next_qi;
      epochs;
      dup_dropped;
    }
  in
  let virgin = r_bytes r in
  let crash_virgin = r_bytes r in
  let n_entries = r_count r "entry" in
  let entries =
    Array.init n_entries (fun _ ->
        let e_id = r_int r in
        let e_data = r_str r in
        let e_indices = r_int_array r in
        let e_exec_blocks = r_int r in
        let e_depth = r_int r in
        let e_found_at = r_int r in
        let e_favored = r_bool r in
        let e_times_fuzzed = r_int r in
        {
          e_id;
          e_data;
          e_indices;
          e_exec_blocks;
          e_depth;
          e_found_at;
          e_favored;
          e_times_fuzzed;
        })
  in
  let next_entry_id = r_int r in
  let pending_favored = r_int r in
  let n_top = r_count r "top-rated" in
  let top_rated =
    Array.init n_top (fun _ ->
        let idx = r_int r in
        let eid = r_int r in
        (idx, eid))
  in
  let counters = r_counters r in
  let n_snaps = r_count r "snapshot" in
  let snapshots = Array.init n_snaps (fun _ -> r_snapshot r) in
  let tr_total_crashes = r_int r in
  let tr_total_hangs = r_int r in
  let n_stack = r_count r "stack-crash" in
  let tr_by_stack = Array.init n_stack (fun _ -> r_crash_rec r) in
  let n_bug = r_count r "bug-crash" in
  let tr_by_bug = Array.init n_bug (fun _ -> r_crash_rec r) in
  let n_afl = r_count r "afl-crash" in
  let tr_afl_unique = Array.init n_afl (fun _ -> r_crash_rec r) in
  if r.pos <> limit then raise (Corrupt "trailing bytes after payload");
  (* referential sanity: the restore path must never fault *)
  let expect_map_len = 1 lsl map_size_log2 in
  if map_size_log2 < 4 || map_size_log2 > 24 then
    raise (Corrupt (Printf.sprintf "bad map_size_log2 %d" map_size_log2));
  if Bytes.length virgin <> expect_map_len then
    raise (Corrupt "virgin map length disagrees with map_size_log2");
  if Bytes.length crash_virgin <> expect_map_len then
    raise (Corrupt "crash-virgin map length disagrees with map_size_log2");
  let ids = Hashtbl.create (max 16 n_entries) in
  Array.iter (fun (e : entry_rec) -> Hashtbl.replace ids e.e_id ()) entries;
  Array.iter
    (fun (_, eid) ->
      if not (Hashtbl.mem ids eid) then
        raise (Corrupt (Printf.sprintf "top-rated refers to unknown entry %d" eid)))
    top_rated;
  {
    id;
    progress;
    virgin;
    crash_virgin;
    entries;
    next_entry_id;
    pending_favored;
    top_rated;
    counters;
    snapshots;
    triage =
      { tr_total_crashes; tr_total_hangs; tr_by_stack; tr_by_bug; tr_afl_unique };
  }

(** Decode a serialized snapshot. Every failure mode — foreign file,
    future format version, truncation, bit corruption, malformed or
    inconsistent payload — comes back as [Error diagnostic], never an
    exception. *)
let of_string (s : string) : (t, string) result =
  let len = String.length s in
  if len < String.length magic_prefix then
    Error "not a pathfuzz checkpoint (file too short for the magic header)"
  else if String.sub s 0 (String.length magic_prefix) <> magic_prefix then
    Error "not a pathfuzz checkpoint (bad magic header)"
  else
    match String.index_from_opt s (String.length magic_prefix) '\n' with
    | None -> Error "not a pathfuzz checkpoint (unterminated version header)"
    | Some nl ->
        let v =
          String.sub s (String.length magic_prefix)
            (nl - String.length magic_prefix)
        in
        if v <> Printf.sprintf "v%d" version then
          Error
            (Printf.sprintf
               "unsupported checkpoint format version %S (this build reads v%d)"
               v version)
        else if len < nl + 1 + 8 then
          Error "checkpoint truncated (missing checksum)"
        else
          let body_len = len - 8 in
          let stored =
            Int64.to_int (String.get_int64_le s body_len)
          in
          if fnv s ~pos:0 ~len:body_len <> stored then
            Error "checkpoint checksum mismatch (truncated or corrupt file)"
          else begin
            match parse_payload s ~pos:(nl + 1) ~limit:body_len with
            | ck -> Ok ck
            | exception Corrupt msg ->
                Error (Printf.sprintf "corrupt checkpoint: %s" msg)
            | exception _ -> Error "corrupt checkpoint: malformed payload"
          end

(* ------------------------------------------------------------------ *)
(* Files *)

(** Write atomically: serialize to [path ^ ".tmp"], then rename — an
    interrupted write never destroys the previous good snapshot.
    Returns the serialized size in bytes (for checkpoint metrics). *)
let write_file ~(path : string) (ck : t) : int =
  let tmp = path ^ ".tmp" in
  let payload = to_string ck in
  let oc = open_out_bin tmp in
  output_string oc payload;
  close_out oc;
  Sys.rename tmp path;
  String.length payload

let read_file (path : string) : (t, string) result =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> of_string contents
