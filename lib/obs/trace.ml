(** Preallocated per-track span rings — the campaign's flight recorder.

    A trace owns a fixed set of {e tracks} (track 0 = the coordinator /
    sequential campaign, track [s + 1] = shard [s]); each track carries
    a preallocated ring of completed spans plus a fixed-depth open-span
    stack and per-kind aggregate totals. Recording a span is two clock
    reads and a handful of int/float stores into preallocated arrays —
    zero steady-state allocation, so span recording obeys the
    zero-perturbation rule (DESIGN.md §7/§14): nothing here is read
    back by fuzzing decisions, and a campaign run with a trace attached
    executes the exact same trajectory as one without.

    The clock is passed in by the caller (obs is stdlib-only; campaigns
    pass [Unix.gettimeofday] or [Monotonic.now], tests pass virtual
    clocks), and each track is only ever touched from one domain —
    shards record onto their own track, the coordinator onto track 0 —
    so no locking is needed.

    Completed spans export as Chrome trace-event JSON ("X" complete
    events, one [tid] per track), loadable in [chrome://tracing] and
    Perfetto. *)

type kind =
  | Plan  (** coordinator: epoch planning *)
  | Mutate  (** candidate generation (mutator) *)
  | Exec  (** VM execution of a candidate cohort *)
  | Calibrate  (** calibration / cmplog colorization runs *)
  | Replay  (** selective-tracing full replays and triage re-execs *)
  | Triage  (** crash triage *)
  | Merge  (** coordinator: shard sync-barrier merge *)
  | Compile  (** staged subject compilation *)
  | Checkpoint  (** campaign snapshot serialization + write *)
  | Epoch  (** one shard's whole epoch slice (shard tracks) *)

let n_kinds = 10

let kind_index = function
  | Plan -> 0
  | Mutate -> 1
  | Exec -> 2
  | Calibrate -> 3
  | Replay -> 4
  | Triage -> 5
  | Merge -> 6
  | Compile -> 7
  | Checkpoint -> 8
  | Epoch -> 9

let kind_of_index = function
  | 0 -> Plan
  | 1 -> Mutate
  | 2 -> Exec
  | 3 -> Calibrate
  | 4 -> Replay
  | 5 -> Triage
  | 6 -> Merge
  | 7 -> Compile
  | 8 -> Checkpoint
  | 9 -> Epoch
  | k -> invalid_arg (Printf.sprintf "Trace.kind_of_index: %d" k)

let kind_name = function
  | Plan -> "plan"
  | Mutate -> "mutate"
  | Exec -> "exec"
  | Calibrate -> "calibrate"
  | Replay -> "replay"
  | Triage -> "triage"
  | Merge -> "merge"
  | Compile -> "compile"
  | Checkpoint -> "checkpoint"
  | Epoch -> "epoch"

(** A finished span, as read back from the ring. *)
type span = { kind : kind; t0 : float; dur : float; arg : int }

let stack_cap = 32

type track = {
  (* completed-span ring, parallel arrays *)
  rk : int array;  (** kind index *)
  rt0 : float array;  (** start, seconds since trace origin *)
  rdur : float array;  (** duration, seconds *)
  rarg : int array;  (** caller payload (batch size, bytes, ...) *)
  mutable next : int;  (** next write slot *)
  mutable total : int;  (** spans ever completed *)
  (* open-span stack; depth may exceed [stack_cap], in which case the
     overflowing frames are counted but not recorded *)
  sk : int array;
  st : float array;
  mutable depth : int;
  (* per-kind aggregates over *all* completed spans, including any the
     ring has overwritten *)
  agg_n : int array;
  agg_s : float array;
}

type t = {
  clock : unit -> float;
  origin : float;  (** clock value at creation; span times are relative *)
  capacity : int;
  tracks : track array;
}

let make_track capacity =
  {
    rk = Array.make capacity 0;
    rt0 = Array.make capacity 0.;
    rdur = Array.make capacity 0.;
    rarg = Array.make capacity 0;
    next = 0;
    total = 0;
    sk = Array.make stack_cap 0;
    st = Array.make stack_cap 0.;
    depth = 0;
    agg_n = Array.make n_kinds 0;
    agg_s = Array.make n_kinds 0.;
  }

let create ?(capacity = 8192) ~(clock : unit -> float) ~(tracks : int) () : t =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  if tracks < 1 then invalid_arg "Trace.create: tracks < 1";
  {
    clock;
    origin = clock ();
    capacity;
    tracks = Array.init tracks (fun _ -> make_track capacity);
  }

let n_tracks (t : t) : int = Array.length t.tracks

let begin_span (t : t) ~(track : int) (k : kind) : unit =
  let tr = t.tracks.(track) in
  if tr.depth < stack_cap then begin
    tr.sk.(tr.depth) <- kind_index k;
    tr.st.(tr.depth) <- t.clock () -. t.origin
  end;
  tr.depth <- tr.depth + 1

let end_span ?(arg = 0) (t : t) ~(track : int) () : unit =
  let tr = t.tracks.(track) in
  if tr.depth > 0 then begin
    tr.depth <- tr.depth - 1;
    if tr.depth < stack_cap then begin
      let k = tr.sk.(tr.depth) in
      let t0 = tr.st.(tr.depth) in
      let dur = t.clock () -. t.origin -. t0 in
      tr.rk.(tr.next) <- k;
      tr.rt0.(tr.next) <- t0;
      tr.rdur.(tr.next) <- dur;
      tr.rarg.(tr.next) <- arg;
      tr.next <- (tr.next + 1) mod t.capacity;
      tr.total <- tr.total + 1;
      tr.agg_n.(k) <- tr.agg_n.(k) + 1;
      tr.agg_s.(k) <- tr.agg_s.(k) +. dur
    end
  end

(** Time a thunk as one span. *)
let span ?arg (t : t) ~(track : int) (k : kind) (f : unit -> 'a) : 'a =
  begin_span t ~track k;
  Fun.protect ~finally:(fun () -> end_span ?arg t ~track ()) f

(* ------------------------------------------------------------------ *)
(* Readback *)

(** Retained spans of one track, oldest first. *)
let spans (t : t) ~(track : int) : span list =
  let tr = t.tracks.(track) in
  let n = min tr.total t.capacity in
  let start = (tr.next - n + t.capacity) mod t.capacity in
  List.init n (fun i ->
      let j = (start + i) mod t.capacity in
      {
        kind = kind_of_index tr.rk.(j);
        t0 = tr.rt0.(j);
        dur = tr.rdur.(j);
        arg = tr.rarg.(j);
      })

(** Spans ever completed on a track (retained or overwritten). *)
let total (t : t) ~(track : int) : int = t.tracks.(track).total

(** Spans lost to ring capacity on a track. *)
let dropped (t : t) ~(track : int) : int =
  max 0 (t.tracks.(track).total - t.capacity)

(** [(count, total seconds)] for one kind on one track, over every
    completed span including overwritten ones. *)
let agg (t : t) ~(track : int) (k : kind) : int * float =
  let tr = t.tracks.(track) in
  let i = kind_index k in
  (tr.agg_n.(i), tr.agg_s.(i))

(** [(count, total seconds)] for one kind summed across all tracks. *)
let agg_all (t : t) (k : kind) : int * float =
  let i = kind_index k in
  Array.fold_left
    (fun (n, s) tr -> (n + tr.agg_n.(i), s +. tr.agg_s.(i)))
    (0, 0.) t.tracks

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

(* Microsecond timestamp with sub-µs precision, the unit the trace-event
   format specifies. *)
let usec (s : float) : string = Printf.sprintf "%.3f" (s *. 1e6)

(** Write the whole trace as Chrome trace-event JSON (the
    [{"traceEvents": [...]}] object form) — loadable in
    [chrome://tracing] / Perfetto. One [tid] per track; [track_names]
    label them with thread-name metadata events. *)
let to_chrome ?(track_names = fun _ -> None) (t : t) (oc : out_channel) : unit
    =
  output_string oc "{\"traceEvents\": [";
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",";
    output_string oc "\n";
    output_string oc line
  in
  Array.iteri
    (fun tid _ ->
      match track_names tid with
      | Some name ->
          emit
            (Printf.sprintf
               "{\"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"name\": \
                \"thread_name\", \"args\": {\"name\": %s}}"
               tid
               (Snapshot.json_string name))
      | None -> ())
    t.tracks;
  Array.iteri
    (fun tid _ ->
      List.iter
        (fun (sp : span) ->
          emit
            (Printf.sprintf
               "{\"ph\": \"X\", \"pid\": 0, \"tid\": %d, \"name\": %s, \
                \"cat\": \"pathfuzz\", \"ts\": %s, \"dur\": %s, \"args\": \
                {\"arg\": %d}}"
               tid
               (Snapshot.json_string (kind_name sp.kind))
               (usec sp.t0) (usec sp.dur) sp.arg))
        (spans t ~track:tid))
    t.tracks;
  output_string oc "\n]}\n"
