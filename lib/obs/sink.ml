(** Pluggable event sinks.

    A sink is just an [emit]/[flush] pair. The stock sinks:

    - {!null}: drops everything (the default observer — campaigns pay
      only counter stores);
    - {!ring}: a preallocated ring buffer retaining the last [capacity]
      events in memory ([pathfuzz stats]);
    - {!jsonl}: one JSON object per line on an [out_channel];
    - {!status}: human status lines for snapshot events only (the
      [pathfuzz fuzz --stats] monitor);
    - {!tee}: fan one event stream out to two sinks;
    - {!locked}: mutex-wrap a sink so multiple domains can share it
      (the {!Exec.Pool} trial events). *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

let null : t = { emit = ignore; flush = ignore }

let make ?(flush = ignore) emit : t = { emit; flush }

(* ------------------------------------------------------------------ *)
(* Ring buffer *)

type ring = {
  buf : Event.t option array;  (** slots, oldest overwritten first *)
  mutable next : int;  (** next write position *)
  mutable total : int;  (** events ever emitted *)
}

let create_ring ?(capacity = 4096) () : ring =
  if capacity < 1 then invalid_arg "Sink.create_ring: capacity < 1";
  { buf = Array.make capacity None; next = 0; total = 0 }

let ring (r : ring) : t =
  {
    emit =
      (fun e ->
        r.buf.(r.next) <- Some e;
        r.next <- (r.next + 1) mod Array.length r.buf;
        r.total <- r.total + 1);
    flush = ignore;
  }

(** Retained events, oldest first. *)
let ring_events (r : ring) : Event.t list =
  let cap = Array.length r.buf in
  let n = min r.total cap in
  let start = (r.next - n + cap) mod cap in
  List.init n (fun i ->
      match r.buf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

(** Events emitted over the ring's lifetime (retained or overwritten). *)
let ring_total (r : ring) : int = r.total

(** Events lost to capacity. *)
let ring_dropped (r : ring) : int = max 0 (r.total - Array.length r.buf)

(* ------------------------------------------------------------------ *)
(* Writers *)

(** JSONL writer. The channel is the caller's to close; [flush] flushes. *)
let jsonl (oc : out_channel) : t =
  {
    emit =
      (fun e ->
        output_string oc (Event.to_jsonl e);
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

(** Status-line writer: renders snapshot events through [print] (e.g.
    [prerr_endline]) and ignores everything else — periodic monitor
    output without per-event noise. *)
let status (print : string -> unit) : t =
  {
    emit =
      (fun e ->
        match e with
        | Event.Snapshot row -> print ("[stats] " ^ Snapshot.to_status row)
        | _ -> ());
    flush = ignore;
  }

let tee (a : t) (b : t) : t =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

(** Serialize a sink shared across domains. *)
let locked (s : t) : t =
  let m = Mutex.create () in
  let guard f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  { emit = guard s.emit; flush = guard s.flush }
