(** Structured campaign events.

    Events fire on the fuzzer's *cold* paths — retention, crashes, cycle
    boundaries, calibration, pool trial scheduling — never per
    execution, so emitting them costs one constructor and one sink call
    on paths that already allocate. Everything an event carries is data
    the campaign computed anyway: observers never consume RNG draws and
    never feed back into fuzzing decisions (the zero-perturbation rule,
    test-enforced). *)

type t =
  | Seed_import of { at_exec : int; len : int }
      (** a seed-directory input was executed and retained *)
  | Retain of { at_exec : int; id : int; len : int; depth : int }
      (** a coverage-novel candidate was admitted to the queue *)
  | Favored_cycle of {
      at_exec : int;
      queue : int;
      favored : int;
      pending : int;
    }  (** a queue cycle began; favored flags were recomputed *)
  | Calibration of { at_exec : int; entry : int; cmps : int }
      (** a queue entry was calibrated, capturing [cmps] operand pairs *)
  | Crash of { at_exec : int; stack_unique : bool; cov_novel : bool }
  | Hang of { at_exec : int }
  | Queue_full of { at_exec : int; queue : int }
      (** first finished execution evaluated against a full queue *)
  | Cull of { at_exec : int; before : int; after : int }
      (** a queue trim (culling/opportunistic strategies) *)
  | Shard_sync of {
      at_exec : int;
      epoch : int;
      queue : int;
      retained : int;  (** candidates admitted at this barrier *)
      dup_dropped : int;  (** shard-novel candidates another item beat to it *)
    }  (** a sharded campaign's sync barrier merged shard discoveries *)
  | Stall of {
      at_exec : int;
      epoch : int;
      shard : int;
      wall_s : float;  (** the straggler's epoch wall *)
      median_s : float;  (** median epoch wall across shards *)
    }
      (** the coordinator's watchdog flagged a shard whose epoch wall
          exceeded the stall factor times the median (clocked runs
          only; diagnostics, never a fuzzing decision) *)
  | Emit_fallback of { reason : string }
      (** a native-engine campaign failed to emit/compile/load its
          generated unit and degraded to the fused closure engine *)
  | Snapshot of Snapshot.row  (** periodic stats sample *)
  | Trial_begin of { task : int; worker : int }
      (** a pool worker claimed trial [task] *)
  | Trial_end of { task : int; worker : int; wall_s : float }

let name = function
  | Seed_import _ -> "seed_import"
  | Retain _ -> "retain"
  | Favored_cycle _ -> "favored_cycle"
  | Calibration _ -> "calibration"
  | Crash _ -> "crash"
  | Hang _ -> "hang"
  | Queue_full _ -> "queue_full"
  | Cull _ -> "cull"
  | Shard_sync _ -> "shard_sync"
  | Stall _ -> "stall"
  | Emit_fallback _ -> "emit_fallback"
  | Snapshot _ -> "snapshot"
  | Trial_begin _ -> "trial_begin"
  | Trial_end _ -> "trial_end"

(** Execution counter the event is anchored to (-1 for pool events,
    which live outside any one campaign's exec clock). *)
let at_exec = function
  | Seed_import { at_exec; _ }
  | Retain { at_exec; _ }
  | Favored_cycle { at_exec; _ }
  | Calibration { at_exec; _ }
  | Crash { at_exec; _ }
  | Hang { at_exec }
  | Queue_full { at_exec; _ }
  | Cull { at_exec; _ }
  | Shard_sync { at_exec; _ }
  | Stall { at_exec; _ } ->
      at_exec
  | Snapshot r -> r.Snapshot.at_exec
  | Emit_fallback _ | Trial_begin _ | Trial_end _ -> -1

(** Human-readable payload (everything but the name and exec anchor). *)
let detail = function
  | Seed_import { len; _ } -> Printf.sprintf "len %d" len
  | Retain { id; len; depth; _ } ->
      Printf.sprintf "entry %d, len %d, depth %d" id len depth
  | Favored_cycle { queue; favored; pending; _ } ->
      Printf.sprintf "queue %d, favored %d, pending %d" queue favored pending
  | Calibration { entry; cmps; _ } ->
      Printf.sprintf "entry %d, cmps %d" entry cmps
  | Crash { stack_unique; cov_novel; _ } ->
      Printf.sprintf "stack_unique %b, cov_novel %b" stack_unique cov_novel
  | Hang _ -> ""
  | Queue_full { queue; _ } -> Printf.sprintf "queue %d" queue
  | Cull { before; after; _ } -> Printf.sprintf "%d -> %d" before after
  | Shard_sync { epoch; queue; retained; dup_dropped; _ } ->
      Printf.sprintf "epoch %d, queue %d, retained %d, dup %d" epoch queue
        retained dup_dropped
  | Stall { epoch; shard; wall_s; median_s; _ } ->
      Printf.sprintf "shard %d, epoch %d, wall %.3fs vs median %.3fs" shard
        epoch wall_s median_s
  | Emit_fallback { reason } -> reason
  | Snapshot r -> Snapshot.to_status r
  | Trial_begin { task; worker } ->
      Printf.sprintf "task %d, worker %d" task worker
  | Trial_end { task; worker; wall_s } ->
      Printf.sprintf "task %d, worker %d, %.2fs" task worker wall_s

(** One JSONL line (no trailing newline); snapshots delegate to
    {!Snapshot.to_jsonl} so both streams share one schema. *)
let to_jsonl (e : t) : string =
  match e with
  | Snapshot r -> Snapshot.to_jsonl r
  | Seed_import { at_exec; len } ->
      Printf.sprintf "{\"ev\": \"seed_import\", \"at\": %d, \"len\": %d}"
        at_exec len
  | Retain { at_exec; id; len; depth } ->
      Printf.sprintf
        "{\"ev\": \"retain\", \"at\": %d, \"id\": %d, \"len\": %d, \"depth\": \
         %d}"
        at_exec id len depth
  | Favored_cycle { at_exec; queue; favored; pending } ->
      Printf.sprintf
        "{\"ev\": \"favored_cycle\", \"at\": %d, \"queue\": %d, \"favored\": \
         %d, \"pending\": %d}"
        at_exec queue favored pending
  | Calibration { at_exec; entry; cmps } ->
      Printf.sprintf
        "{\"ev\": \"calibration\", \"at\": %d, \"entry\": %d, \"cmps\": %d}"
        at_exec entry cmps
  | Crash { at_exec; stack_unique; cov_novel } ->
      Printf.sprintf
        "{\"ev\": \"crash\", \"at\": %d, \"stack_unique\": %b, \
         \"cov_novel\": %b}"
        at_exec stack_unique cov_novel
  | Hang { at_exec } -> Printf.sprintf "{\"ev\": \"hang\", \"at\": %d}" at_exec
  | Queue_full { at_exec; queue } ->
      Printf.sprintf "{\"ev\": \"queue_full\", \"at\": %d, \"queue\": %d}"
        at_exec queue
  | Cull { at_exec; before; after } ->
      Printf.sprintf
        "{\"ev\": \"cull\", \"at\": %d, \"before\": %d, \"after\": %d}" at_exec
        before after
  | Shard_sync { at_exec; epoch; queue; retained; dup_dropped } ->
      Printf.sprintf
        "{\"ev\": \"shard_sync\", \"at\": %d, \"epoch\": %d, \"queue\": %d, \
         \"retained\": %d, \"dup_dropped\": %d}"
        at_exec epoch queue retained dup_dropped
  | Stall { at_exec; epoch; shard; wall_s; median_s } ->
      Printf.sprintf
        "{\"ev\": \"stall\", \"at\": %d, \"epoch\": %d, \"shard\": %d, \
         \"wall_s\": %s, \"median_s\": %s}"
        at_exec epoch shard
        (Snapshot.json_float wall_s)
        (Snapshot.json_float median_s)
  | Emit_fallback { reason } ->
      Printf.sprintf "{\"ev\": \"emit_fallback\", \"reason\": %s}"
        (Snapshot.json_string reason)
  | Trial_begin { task; worker } ->
      Printf.sprintf "{\"ev\": \"trial_begin\", \"task\": %d, \"worker\": %d}"
        task worker
  | Trial_end { task; worker; wall_s } ->
      Printf.sprintf
        "{\"ev\": \"trial_end\", \"task\": %d, \"worker\": %d, \"wall_s\": %s}"
        task worker
        (Snapshot.json_float wall_s)
