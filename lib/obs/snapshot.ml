(** Immutable periodic stats rows — the [plot_data] analogue.

    A campaign samples its {!Counters.t} block (plus the queue and
    virgin-map state only it can see) into one [row] every
    [budget / 64] executions and once more at budget exhaustion, so a
    finished run carries its whole coverage/queue/crash trajectory, not
    just end-of-run aggregates. Rows are plain data: they can be
    rendered as tables ([pathfuzz stats]), streamed as JSONL, or folded
    back into the legacy [Campaign.result.queue_series] view. *)

type row = {
  at_exec : int;  (** observer-global execution counter at sample time *)
  queue : int;  (** queue size *)
  favored : int;  (** favored entries at the last cycle boundary *)
  pending_favored : int;
  cycles : int;
  retained : int;
  havocs : int;
  splices : int;
  i2s_cands : int;
  calibrations : int;
  crashes : int;
  crashes_stack_unique : int;
  crashes_cov_novel : int;
  hangs : int;
  queue_full_drops : int;
  blocks : int;
  virgin_residual : int;  (** virgin-map indices still untouched *)
  vm_s : float;  (** cumulative wall inside the VM (0 without a clock) *)
  mut_s : float;  (** cumulative wall inside the mutator *)
  mut_minor_words : float;  (** cumulative mutator minor words *)
}

(** Sample the sharable part of a row from the counter block; the caller
    fills in what only it can see (queue size, virgin residual). *)
let of_counters (c : Counters.t) ~queue ~virgin_residual : row =
  {
    at_exec = c.execs;
    queue;
    favored = c.favored;
    pending_favored = c.pending_favored;
    cycles = c.cycles;
    retained = c.retained;
    havocs = c.havocs;
    splices = c.splices;
    i2s_cands = c.i2s_cands;
    calibrations = c.calibrations;
    crashes = c.crashes;
    crashes_stack_unique = c.crashes_stack_unique;
    crashes_cov_novel = c.crashes_cov_novel;
    hangs = c.hangs;
    queue_full_drops = c.queue_full_drops;
    blocks = c.blocks;
    virgin_residual;
    vm_s = c.vm_s;
    mut_s = c.mut_s;
    mut_minor_words = c.mut_minor_words;
  }

(* Compact float rendering shared with Event's JSONL writer. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

(** Quote and escape [s] as a JSON string literal (quotes, backslashes
    and control characters; everything else passes through byte-wise).
    Every string interpolated into an obs JSON stream — subject names,
    paths, trace track labels, metric names — must go through this. *)
let json_string (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(** One JSONL line (no trailing newline). *)
let to_jsonl (r : row) : string =
  Printf.sprintf
    "{\"ev\": \"snapshot\", \"at\": %d, \"queue\": %d, \"favored\": %d, \
     \"pending_favored\": %d, \"cycles\": %d, \"retained\": %d, \"havocs\": \
     %d, \"splices\": %d, \"i2s_cands\": %d, \"calibrations\": %d, \
     \"crashes\": %d, \"crashes_stack_unique\": %d, \"crashes_cov_novel\": \
     %d, \"hangs\": %d, \"queue_full_drops\": %d, \"blocks\": %d, \
     \"virgin_residual\": %d, \"vm_s\": %s, \"mut_s\": %s, \
     \"mut_minor_words\": %s}"
    r.at_exec r.queue r.favored r.pending_favored r.cycles r.retained r.havocs
    r.splices r.i2s_cands r.calibrations r.crashes r.crashes_stack_unique
    r.crashes_cov_novel r.hangs r.queue_full_drops r.blocks r.virgin_residual
    (json_float r.vm_s) (json_float r.mut_s)
    (json_float r.mut_minor_words)

(** One-line human status (the [pathfuzz fuzz --stats] monitor line). *)
let to_status (r : row) : string =
  Printf.sprintf
    "execs %d | queue %d (fav %d, pend %d) | retained %d | crashes %d (%d \
     uniq, %d novel) | hangs %d | cycles %d | virgin %d"
    r.at_exec r.queue r.favored r.pending_favored r.retained r.crashes
    r.crashes_stack_unique r.crashes_cov_novel r.hangs r.cycles
    r.virgin_residual
