(** The campaign-wide counter block: one preallocated record of mutable
    scalars, bumped inline from the fuzzer's hot loop and sampled into
    immutable {!Snapshot.row}s on an exec-count cadence.

    The block generalises the ad-hoc [Campaign.telemetry] record the
    bench used to carry (vm/mutator wall split, mutator allocation) into
    the full set of live-stats AFL exposes via [fuzzer_stats]. Updates
    are plain int/float stores — no allocation, no branching on observer
    state — so a counted campaign runs the same trajectory, byte for
    byte, as an uncounted one (the zero-perturbation rule; see
    DESIGN.md §7). *)

type t = {
  (* execution *)
  mutable execs : int;  (** VM executions completed *)
  mutable blocks : int;  (** VM basic blocks executed (throughput proxy) *)
  (* mutation *)
  mutable havocs : int;  (** mutated candidates generated *)
  mutable splices : int;  (** candidates built with a splice peer *)
  mutable i2s_cands : int;  (** candidates built with cmplog pairs in scope *)
  mutable calibrations : int;  (** calibration runs (cmplog colorization) *)
  (* queue *)
  mutable seeds_imported : int;  (** seed-directory imports retained *)
  mutable retained : int;  (** coverage-novel candidates admitted *)
  mutable favored : int;  (** favored entries at the last cycle boundary *)
  mutable pending_favored : int;  (** never-fuzzed favored at last boundary *)
  mutable cycles : int;  (** queue cycles started *)
  mutable queue_full_drops : int;  (** finished execs evaluated with a full queue *)
  (* outcomes *)
  mutable crashes : int;  (** raw crash count *)
  mutable crashes_stack_unique : int;  (** new top-5-frame stack hashes *)
  mutable crashes_cov_novel : int;  (** AFL-2.52b coverage-novel crashes *)
  mutable hangs : int;  (** fuel-exhausted executions *)
  (* replay work outside the campaign loop (culling, showmap) *)
  mutable replays : int;
  (* per-stage wall splits + mutator allocation (observer clock only) *)
  mutable vm_s : float;
  mutable mut_s : float;
  mutable mut_minor_words : float;
}

let create () =
  {
    execs = 0;
    blocks = 0;
    havocs = 0;
    splices = 0;
    i2s_cands = 0;
    calibrations = 0;
    seeds_imported = 0;
    retained = 0;
    favored = 0;
    pending_favored = 0;
    cycles = 0;
    queue_full_drops = 0;
    crashes = 0;
    crashes_stack_unique = 0;
    crashes_cov_novel = 0;
    hangs = 0;
    replays = 0;
    vm_s = 0.;
    mut_s = 0.;
    mut_minor_words = 0.;
  }

let reset (c : t) : unit =
  c.execs <- 0;
  c.blocks <- 0;
  c.havocs <- 0;
  c.splices <- 0;
  c.i2s_cands <- 0;
  c.calibrations <- 0;
  c.seeds_imported <- 0;
  c.retained <- 0;
  c.favored <- 0;
  c.pending_favored <- 0;
  c.cycles <- 0;
  c.queue_full_drops <- 0;
  c.crashes <- 0;
  c.crashes_stack_unique <- 0;
  c.crashes_cov_novel <- 0;
  c.hangs <- 0;
  c.replays <- 0;
  c.vm_s <- 0.;
  c.mut_s <- 0.;
  c.mut_minor_words <- 0.

(** Fold [src] into [into] field-wise. Sharded campaigns give every
    shard a private block bumped lock-free on its own domain, then
    aggregate into the campaign observer's block at each sync barrier —
    the zero-perturbation rule extends across domains because shard
    blocks are only ever read at the barrier. *)
let add_into ~(into : t) (src : t) : unit =
  into.execs <- into.execs + src.execs;
  into.blocks <- into.blocks + src.blocks;
  into.havocs <- into.havocs + src.havocs;
  into.splices <- into.splices + src.splices;
  into.i2s_cands <- into.i2s_cands + src.i2s_cands;
  into.calibrations <- into.calibrations + src.calibrations;
  into.seeds_imported <- into.seeds_imported + src.seeds_imported;
  into.retained <- into.retained + src.retained;
  into.favored <- into.favored + src.favored;
  into.pending_favored <- into.pending_favored + src.pending_favored;
  into.cycles <- into.cycles + src.cycles;
  into.queue_full_drops <- into.queue_full_drops + src.queue_full_drops;
  into.crashes <- into.crashes + src.crashes;
  into.crashes_stack_unique <- into.crashes_stack_unique + src.crashes_stack_unique;
  into.crashes_cov_novel <- into.crashes_cov_novel + src.crashes_cov_novel;
  into.hangs <- into.hangs + src.hangs;
  into.replays <- into.replays + src.replays;
  into.vm_s <- into.vm_s +. src.vm_s;
  into.mut_s <- into.mut_s +. src.mut_s;
  into.mut_minor_words <- into.mut_minor_words +. src.mut_minor_words

(** (name, value) pairs in a fixed render order — the [fuzzer_stats]
    analogue consumed by [pathfuzz stats]. Wall-split floats are rendered
    separately by callers that enabled a clock. *)
let to_fields (c : t) : (string * int) list =
  [
    ("execs", c.execs);
    ("blocks", c.blocks);
    ("havocs", c.havocs);
    ("splices", c.splices);
    ("i2s_cands", c.i2s_cands);
    ("calibrations", c.calibrations);
    ("seeds_imported", c.seeds_imported);
    ("retained", c.retained);
    ("favored", c.favored);
    ("pending_favored", c.pending_favored);
    ("cycles", c.cycles);
    ("queue_full_drops", c.queue_full_drops);
    ("crashes", c.crashes);
    ("crashes_stack_unique", c.crashes_stack_unique);
    ("crashes_cov_novel", c.crashes_cov_novel);
    ("hangs", c.hangs);
    ("replays", c.replays);
  ]
