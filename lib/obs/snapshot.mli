(** Immutable periodic stats rows — the [plot_data] analogue.

    A campaign samples its {!Counters.t} block (plus the queue and
    virgin-map state only it can see) into one [row] every
    [budget / 64] executions and once more at budget exhaustion. Rows
    are plain data: render as tables ([pathfuzz stats]), stream as
    JSONL, or fold back into [Campaign.result.queue_series]. *)

type row = {
  at_exec : int;  (** observer-global execution counter at sample time *)
  queue : int;  (** queue size *)
  favored : int;  (** favored entries at the last cycle boundary *)
  pending_favored : int;
  cycles : int;
  retained : int;
  havocs : int;
  splices : int;
  i2s_cands : int;
  calibrations : int;
  crashes : int;
  crashes_stack_unique : int;
  crashes_cov_novel : int;
  hangs : int;
  queue_full_drops : int;
  blocks : int;
  virgin_residual : int;  (** virgin-map indices still untouched *)
  vm_s : float;  (** cumulative wall inside the VM (0 without a clock) *)
  mut_s : float;  (** cumulative wall inside the mutator *)
  mut_minor_words : float;  (** cumulative mutator minor words *)
}

(** Sample the sharable part of a row from the counter block; the caller
    fills in what only it can see (queue size, virgin residual). *)
val of_counters : Counters.t -> queue:int -> virgin_residual:int -> row

(** Compact float rendering shared by every obs JSON writer: integers as
    ["%.1f"], everything else as ["%.6g"]. *)
val json_float : float -> string

(** Quote and escape a string as a JSON string literal (quotes,
    backslashes, control characters). Every string interpolated into an
    obs JSON stream must go through this. *)
val json_string : string -> string

(** One JSONL line (no trailing newline). *)
val to_jsonl : row -> string

(** One-line human status (the [pathfuzz fuzz --stats] monitor line). *)
val to_status : row -> string
