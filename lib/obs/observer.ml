(** The campaign observer: one counter block, one snapshot log, one
    event sink, and an optional wall clock, threaded through
    [Fuzz.Campaign], [Fuzz.Triage], [Fuzz.Measure] and [Exec.Pool].

    The contract (the zero-perturbation rule, DESIGN.md §7):

    - observers never consume RNG draws;
    - fuzzing decisions never branch on observer state;
    - hot-path cost is limited to unconditional int/float stores into
      the preallocated {!Counters.t} block.

    A campaign observed through a null sink, a memory ring or a JSONL
    writer therefore runs the exact same trajectory as an unobserved
    one — test-enforced byte-for-byte over final queues, triage and
    snapshots.

    One observer may outlive one campaign: multi-phase strategies
    (culling rounds, the opportunistic driver) and benches thread the
    same observer through every phase, so counters and snapshots
    accumulate monotonically while each [Campaign.run] reports its own
    deltas. *)

type t = {
  counters : Counters.t;
  metrics : Metrics.t;
      (** engine-metrics registry (compile cache, rollbacks, barrier
          waits, checkpoint costs); always present — an unused registry
          is a few empty arrays *)
  sink : Sink.t;
  clock : (unit -> float) option;
      (** enables the vm/mutator wall split; [None] costs nothing *)
  trace : Trace.t option;
      (** span flight recorder; [None] (the default) costs nothing *)
  mutable snapshots : Snapshot.row array;  (** slots [0, n_snapshots) *)
  mutable n_snapshots : int;
}

let create ?clock ?metrics ?trace ?(sink = Sink.null) () : t =
  {
    counters = Counters.create ();
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    sink;
    clock;
    trace;
    snapshots = [||];
    n_snapshots = 0;
  }

(** A fresh counters-only observer — what [Campaign.run] uses when the
    caller passes none. *)
let null () : t = create ()

(** Emit one event (cold paths only). *)
let event (o : t) (e : Event.t) : unit = o.sink.emit e

(** Append a snapshot row and emit it as an event. *)
let snapshot (o : t) (row : Snapshot.row) : unit =
  if o.n_snapshots = Array.length o.snapshots then begin
    let bigger = Array.make (max 16 (2 * o.n_snapshots)) row in
    Array.blit o.snapshots 0 bigger 0 o.n_snapshots;
    o.snapshots <- bigger
  end;
  o.snapshots.(o.n_snapshots) <- row;
  o.n_snapshots <- o.n_snapshots + 1;
  o.sink.emit (Event.Snapshot row)

(** Append already-recorded rows without emitting sink events — the
    checkpoint-restore half of {!snapshot}: a resumed campaign reloads
    the snapshot trajectory captured before the interruption so its
    final report carries the whole run's rows, while the sink (status
    lines, JSONL) only sees what happens after the resume. *)
let preload_snapshots (o : t) (rows : Snapshot.row list) : unit =
  List.iter
    (fun row ->
      if o.n_snapshots = Array.length o.snapshots then begin
        let bigger = Array.make (max 16 (2 * o.n_snapshots)) row in
        Array.blit o.snapshots 0 bigger 0 o.n_snapshots;
        o.snapshots <- bigger
      end;
      o.snapshots.(o.n_snapshots) <- row;
      o.n_snapshots <- o.n_snapshots + 1)
    rows

let flush (o : t) : unit = o.sink.flush ()

(** Snapshot rows recorded so far, oldest first. *)
let snapshots (o : t) : Snapshot.row list =
  List.init o.n_snapshots (fun i -> o.snapshots.(i))

(** Rows recorded at positions [>= from] — a campaign's own slice when
    the observer is shared across phases. *)
let snapshots_from (o : t) ~(from : int) : Snapshot.row list =
  List.init
    (max 0 (o.n_snapshots - from))
    (fun i -> o.snapshots.(from + i))
