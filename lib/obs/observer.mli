(** The campaign observer: one counter block, one metrics registry, one
    snapshot log, one event sink, an optional wall clock and an optional
    span trace, threaded through [Fuzz.Campaign], [Fuzz.Shard],
    [Fuzz.Triage], [Fuzz.Measure] and [Exec.Pool].

    The contract (the zero-perturbation rule, DESIGN.md §7/§14):

    - observers never consume RNG draws;
    - fuzzing decisions never branch on observer state;
    - hot-path cost is limited to unconditional int/float stores into
      preallocated records.

    A campaign observed through a null sink, a memory ring, a JSONL
    writer, a metrics registry or a span trace therefore runs the exact
    same trajectory as an unobserved one — test-enforced byte-for-byte
    over final queues, triage, snapshots and stdout. *)

type t = {
  counters : Counters.t;
  metrics : Metrics.t;
      (** engine-metrics registry (compile cache, rollbacks, barrier
          waits, checkpoint costs); always present — an unused registry
          is a few empty arrays *)
  sink : Sink.t;
  clock : (unit -> float) option;
      (** enables the vm/mutator wall split; [None] costs nothing *)
  trace : Trace.t option;
      (** span flight recorder; [None] (the default) costs nothing *)
  mutable snapshots : Snapshot.row array;  (** slots [0, n_snapshots) *)
  mutable n_snapshots : int;
}

val create :
  ?clock:(unit -> float) ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?sink:Sink.t ->
  unit ->
  t

(** A fresh counters-only observer — what [Campaign.run] uses when the
    caller passes none. *)
val null : unit -> t

(** Emit one event (cold paths only). *)
val event : t -> Event.t -> unit

(** Append a snapshot row and emit it as an event. *)
val snapshot : t -> Snapshot.row -> unit

(** Append already-recorded rows without emitting sink events — the
    checkpoint-restore half of {!snapshot}. *)
val preload_snapshots : t -> Snapshot.row list -> unit

val flush : t -> unit

(** Snapshot rows recorded so far, oldest first. *)
val snapshots : t -> Snapshot.row list

(** Rows recorded at positions [>= from] — a campaign's own slice when
    the observer is shared across phases. *)
val snapshots_from : t -> from:int -> Snapshot.row list
