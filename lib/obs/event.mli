(** Structured campaign events.

    Events fire on the fuzzer's *cold* paths — retention, crashes, cycle
    boundaries, calibration, sync barriers, pool trial scheduling —
    never per execution. Everything an event carries is data the
    campaign computed anyway: observers never consume RNG draws and
    never feed back into fuzzing decisions (the zero-perturbation rule,
    test-enforced). *)

type t =
  | Seed_import of { at_exec : int; len : int }
      (** a seed-directory input was executed and retained *)
  | Retain of { at_exec : int; id : int; len : int; depth : int }
      (** a coverage-novel candidate was admitted to the queue *)
  | Favored_cycle of {
      at_exec : int;
      queue : int;
      favored : int;
      pending : int;
    }  (** a queue cycle began; favored flags were recomputed *)
  | Calibration of { at_exec : int; entry : int; cmps : int }
      (** a queue entry was calibrated, capturing [cmps] operand pairs *)
  | Crash of { at_exec : int; stack_unique : bool; cov_novel : bool }
  | Hang of { at_exec : int }
  | Queue_full of { at_exec : int; queue : int }
      (** first finished execution evaluated against a full queue *)
  | Cull of { at_exec : int; before : int; after : int }
      (** a queue trim (culling/opportunistic strategies) *)
  | Shard_sync of {
      at_exec : int;
      epoch : int;
      queue : int;
      retained : int;  (** candidates admitted at this barrier *)
      dup_dropped : int;  (** shard-novel candidates another item beat to it *)
    }  (** a sharded campaign's sync barrier merged shard discoveries *)
  | Stall of {
      at_exec : int;
      epoch : int;
      shard : int;
      wall_s : float;  (** the straggler's epoch wall *)
      median_s : float;  (** median epoch wall across shards *)
    }
      (** the coordinator's watchdog flagged a shard whose epoch wall
          exceeded the stall factor times the median (clocked runs
          only; diagnostics, never a fuzzing decision) *)
  | Emit_fallback of { reason : string }
      (** a native-engine campaign failed to emit/compile/load its
          generated unit and degraded to the fused closure engine *)
  | Snapshot of Snapshot.row  (** periodic stats sample *)
  | Trial_begin of { task : int; worker : int }
      (** a pool worker claimed trial [task] *)
  | Trial_end of { task : int; worker : int; wall_s : float }

(** Event name as rendered in tables and JSONL ([ev] field). *)
val name : t -> string

(** Execution counter the event is anchored to (-1 for pool events,
    which live outside any one campaign's exec clock). *)
val at_exec : t -> int

(** Human-readable payload (everything but the name and exec anchor). *)
val detail : t -> string

(** One JSONL line (no trailing newline); snapshots delegate to
    {!Snapshot.to_jsonl} so both streams share one schema. *)
val to_jsonl : t -> string
