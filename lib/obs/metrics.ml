(** Typed engine-metrics registry.

    Counters, snapshots and events (PR 4) cover the fuzzing trajectory;
    this registry covers the *machinery underneath it*: compile-cache
    behaviour, superblock-fusion shape, bulk-burn rollbacks, selective
    replays, batch cohort sizes, dirty-reset widths, shard barrier
    waits, checkpoint write costs. Instruments are registered by name on
    first use and kept in registration order, so every render and dump
    is deterministic for a deterministic trajectory.

    Four instrument kinds:

    - {!counter}: a monotone event count (merged by summing);
    - {!gauge}: a last-written or running-max level (merged by summing —
      gauges are only written coordinator-side, where there is exactly
      one writer, so the merge never actually combines two non-zero
      gauges);
    - {!wall}: a float seconds accumulator (merged by summing);
    - {!hist}: a fixed 64-bucket log2 histogram of non-negative ints
      (zero-allocation observe; merged bucket-wise).

    The zero-perturbation rule (DESIGN.md §7) extends to this registry:
    instruments are plain mutable records bumped with int/float stores,
    nothing here is read back by fuzzing decisions, and sharded
    campaigns aggregate shard-private registries into the coordinator's
    only at sync barriers, exactly like {!Counters.add_into}. *)

type counter = { mutable c : int }
type gauge = { mutable g : int }
type wall = { mutable s : float }

(** Log2 histogram: bucket 0 counts values [<= 0]; bucket [k >= 1]
    counts values in [\[2{^k-1}, 2{^k})]. 64 buckets cover every
    non-negative OCaml int. *)
type hist = {
  buckets : int array;  (** length 64 *)
  mutable count : int;
  mutable sum : int;
  mutable max_v : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Wall of wall
  | Hist of hist

type t = {
  index : (string, instrument) Hashtbl.t;
  mutable names : string array;  (** registration order; slots [0, n) *)
  mutable n : int;
}

let create () : t = { index = Hashtbl.create 64; names = [||]; n = 0 }

let register (t : t) (name : string) (i : instrument) : unit =
  Hashtbl.add t.index name i;
  if t.n = Array.length t.names then begin
    let bigger = Array.make (max 16 (2 * t.n)) name in
    Array.blit t.names 0 bigger 0 t.n;
    t.names <- bigger
  end;
  t.names.(t.n) <- name;
  t.n <- t.n + 1

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Wall _ -> "wall"
  | Hist _ -> "hist"

let mismatch name want got =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a %s, wanted a %s" name
       (kind_name got) want)

(* Get-or-create accessors: the returned record is the live instrument —
   callers hold on to it and bump fields directly, paying one Hashtbl
   probe per campaign, not per event. *)

let counter (t : t) (name : string) : counter =
  match Hashtbl.find_opt t.index name with
  | Some (Counter c) -> c
  | Some other -> mismatch name "counter" other
  | None ->
      let c = { c = 0 } in
      register t name (Counter c);
      c

let gauge (t : t) (name : string) : gauge =
  match Hashtbl.find_opt t.index name with
  | Some (Gauge g) -> g
  | Some other -> mismatch name "gauge" other
  | None ->
      let g = { g = 0 } in
      register t name (Gauge g);
      g

let wall (t : t) (name : string) : wall =
  match Hashtbl.find_opt t.index name with
  | Some (Wall w) -> w
  | Some other -> mismatch name "wall" other
  | None ->
      let w = { s = 0. } in
      register t name (Wall w);
      w

let hist (t : t) (name : string) : hist =
  match Hashtbl.find_opt t.index name with
  | Some (Hist h) -> h
  | Some other -> mismatch name "hist" other
  | None ->
      let h = { buckets = Array.make 64 0; count = 0; sum = 0; max_v = 0 } in
      register t name (Hist h);
      h

(* Bump helpers — all plain stores, no allocation. *)

let add (c : counter) (n : int) : unit = c.c <- c.c + n
let bump (c : counter) : unit = c.c <- c.c + 1
let set (g : gauge) (v : int) : unit = g.g <- v
let set_max (g : gauge) (v : int) : unit = if v > g.g then g.g <- v
let add_wall (w : wall) (s : float) : unit = w.s <- w.s +. s
let set_wall (w : wall) (s : float) : unit = w.s <- s

let bucket_of (v : int) : int =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      incr b;
      x := !x lsr 1
    done;
    if !b > 63 then 63 else !b
  end

let observe (h : hist) (v : int) : unit =
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v > h.max_v then h.max_v <- v

(* ------------------------------------------------------------------ *)
(* Readers *)

(** Registered names, registration order. *)
let names (t : t) : string list = List.init t.n (fun i -> t.names.(i))

let find (t : t) (name : string) : instrument option =
  Hashtbl.find_opt t.index name

(** Scalar readers return the zero of their kind when the instrument is
    absent or of another kind — report renderers stay total. *)

let counter_value (t : t) (name : string) : int =
  match Hashtbl.find_opt t.index name with Some (Counter c) -> c.c | _ -> 0

let gauge_value (t : t) (name : string) : int =
  match Hashtbl.find_opt t.index name with Some (Gauge g) -> g.g | _ -> 0

let wall_value (t : t) (name : string) : float =
  match Hashtbl.find_opt t.index name with Some (Wall w) -> w.s | _ -> 0.

(** [(count, sum, max)] of a histogram, [(0, 0, 0)] when absent. *)
let hist_stats (t : t) (name : string) : int * int * int =
  match Hashtbl.find_opt t.index name with
  | Some (Hist h) -> (h.count, h.sum, h.max_v)
  | _ -> (0, 0, 0)

(* ------------------------------------------------------------------ *)
(* Aggregation *)

(** Fold [src] into [into] by name, creating missing instruments in
    [src]'s registration order — the {!Counters.add_into} analogue for
    shard-private registries drained at sync barriers. Every kind merges
    by summing (histograms bucket-wise, max by max); a name registered
    with different kinds on the two sides is a programming error. *)
let add_into ~(into : t) (src : t) : unit =
  for i = 0 to src.n - 1 do
    let name = src.names.(i) in
    match Hashtbl.find src.index name with
    | Counter c -> add (counter into name) c.c
    | Gauge g ->
        let dst = gauge into name in
        dst.g <- dst.g + g.g
    | Wall w -> add_wall (wall into name) w.s
    | Hist h ->
        let dst = hist into name in
        for b = 0 to 63 do
          dst.buckets.(b) <- dst.buckets.(b) + h.buckets.(b)
        done;
        dst.count <- dst.count + h.count;
        dst.sum <- dst.sum + h.sum;
        if h.max_v > dst.max_v then dst.max_v <- h.max_v
  done

(** Zero every instrument in place (registrations survive — the
    registry keeps its deterministic name order across barriers). *)
let reset (t : t) : unit =
  for i = 0 to t.n - 1 do
    match Hashtbl.find t.index t.names.(i) with
    | Counter c -> c.c <- 0
    | Gauge g -> g.g <- 0
    | Wall w -> w.s <- 0.
    | Hist h ->
        Array.fill h.buckets 0 64 0;
        h.count <- 0;
        h.sum <- 0;
        h.max_v <- 0
  done

(* ------------------------------------------------------------------ *)
(* Dumps *)

let hist_to_json (h : hist) : string =
  let last = ref (-1) in
  for b = 0 to 63 do
    if h.buckets.(b) > 0 then last := b
  done;
  let buckets =
    if !last < 0 then "[]"
    else begin
      let buf = Buffer.create 64 in
      Buffer.add_char buf '[';
      for b = 0 to !last do
        if b > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (string_of_int h.buckets.(b))
      done;
      Buffer.add_char buf ']';
      Buffer.contents buf
    end
  in
  Printf.sprintf "{\"count\": %d, \"sum\": %d, \"max\": %d, \"buckets\": %s}"
    h.count h.sum h.max_v buckets

(** One JSON object, fields in registration order (no trailing
    newline) — the [fuzz --metrics FILE] payload. *)
let to_json (t : t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  for i = 0 to t.n - 1 do
    let name = t.names.(i) in
    if i > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Snapshot.json_string name);
    Buffer.add_string buf ": ";
    (match Hashtbl.find t.index name with
    | Counter c -> Buffer.add_string buf (string_of_int c.c)
    | Gauge g -> Buffer.add_string buf (string_of_int g.g)
    | Wall w -> Buffer.add_string buf (Snapshot.json_float w.s)
    | Hist h -> Buffer.add_string buf (hist_to_json h))
  done;
  Buffer.add_char buf '}';
  Buffer.contents buf
