(** Typed engine-metrics registry: counters, gauges, wall accumulators
    and fixed-bucket log2 histograms, registered by name on first use
    and iterated in registration order, so every render and dump is
    deterministic for a deterministic trajectory.

    Instruments are concrete mutable records: callers look one up once
    (one Hashtbl probe per campaign) and bump fields with plain
    int/float stores afterwards — the same zero-perturbation discipline
    as {!Counters}. Sharded campaigns keep a private registry per shard
    and drain it into the coordinator's with {!add_into} at sync
    barriers, exactly like counter blocks. *)

type counter = { mutable c : int }
type gauge = { mutable g : int }
type wall = { mutable s : float }

(** Log2 histogram: bucket 0 counts values [<= 0]; bucket [k >= 1]
    counts values in [\[2{^k-1}, 2{^k})]. 64 buckets cover every
    non-negative OCaml int; observing allocates nothing. *)
type hist = {
  buckets : int array;  (** length 64 *)
  mutable count : int;
  mutable sum : int;
  mutable max_v : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Wall of wall
  | Hist of hist

type t

val create : unit -> t

(** {2 Get-or-create}

    Each returns the live instrument registered under the name,
    creating it on first use; raises [Invalid_argument] if the name is
    already registered with a different kind. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val wall : t -> string -> wall
val hist : t -> string -> hist

(** {2 Bump helpers} — plain stores, no allocation. *)

val add : counter -> int -> unit
val bump : counter -> unit
val set : gauge -> int -> unit

(** Running max. *)
val set_max : gauge -> int -> unit

val add_wall : wall -> float -> unit
val set_wall : wall -> float -> unit
val observe : hist -> int -> unit

(** {2 Readers} *)

(** Registered names, registration order. *)
val names : t -> string list

val find : t -> string -> instrument option

(** Scalar readers return the zero of their kind when the instrument is
    absent or of another kind. *)

val counter_value : t -> string -> int
val gauge_value : t -> string -> int
val wall_value : t -> string -> float

(** [(count, sum, max)] of a histogram, [(0, 0, 0)] when absent. *)
val hist_stats : t -> string -> int * int * int

(** {2 Aggregation and dumps} *)

(** Fold [src] into [into] by name, creating missing instruments in
    [src]'s registration order. Every kind merges by summing
    (histograms bucket-wise, max by max). Raises [Invalid_argument] on
    a kind clash. *)
val add_into : into:t -> t -> unit

(** Zero every instrument in place (registrations survive). *)
val reset : t -> unit

(** One JSON object, fields in registration order (no trailing
    newline) — the [fuzz --metrics FILE] payload. *)
val to_json : t -> string
