(** Pluggable event sinks.

    A sink is just an [emit]/[flush] pair, concrete so callers can wrap
    and compose them without this module's help. The stock sinks:
    {!null} (drop everything), {!ring} (last-N in memory), {!jsonl}
    (one JSON object per line), {!status} (human snapshot lines),
    {!tee} (fan-out), {!locked} (mutex-wrap for cross-domain use). *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

(** Drops everything — the default observer sink. *)
val null : t

val make : ?flush:(unit -> unit) -> (Event.t -> unit) -> t

(** {2 Ring buffer} *)

type ring

(** A preallocated ring retaining the last [capacity] (default 4096)
    events in memory ([pathfuzz stats]). *)
val create_ring : ?capacity:int -> unit -> ring

(** The sink face of a ring. *)
val ring : ring -> t

(** Retained events, oldest first. *)
val ring_events : ring -> Event.t list

(** Events emitted over the ring's lifetime (retained or overwritten). *)
val ring_total : ring -> int

(** Events lost to capacity. *)
val ring_dropped : ring -> int

(** {2 Writers and combinators} *)

(** JSONL writer. The channel is the caller's to close; [flush]
    flushes. *)
val jsonl : out_channel -> t

(** Status-line writer: renders snapshot events through the callback
    (e.g. [prerr_endline]) and ignores everything else. *)
val status : (string -> unit) -> t

(** Fan one event stream out to two sinks. *)
val tee : t -> t -> t

(** Serialize a sink shared across domains. *)
val locked : t -> t
