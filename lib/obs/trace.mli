(** Preallocated per-track span rings — the campaign's flight recorder.

    A trace owns a fixed set of tracks (track 0 = the coordinator /
    sequential campaign, track [s + 1] = shard [s]); each track carries
    a preallocated ring of completed spans, a fixed-depth open-span
    stack, and per-kind aggregate totals. Recording a span is two clock
    reads and a handful of int/float stores — zero steady-state
    allocation (DESIGN.md §14). Each track must only ever be touched
    from one domain; no locking is done here.

    The clock is passed in by the caller (obs is stdlib-only). Spans
    export as Chrome trace-event JSON via {!to_chrome}. *)

type kind =
  | Plan  (** coordinator: epoch planning *)
  | Mutate  (** candidate generation (mutator) *)
  | Exec  (** VM execution of a candidate cohort *)
  | Calibrate  (** calibration / cmplog colorization runs *)
  | Replay  (** selective-tracing full replays and triage re-execs *)
  | Triage  (** crash triage *)
  | Merge  (** coordinator: shard sync-barrier merge *)
  | Compile  (** staged subject compilation *)
  | Checkpoint  (** campaign snapshot serialization + write *)
  | Epoch  (** one shard's whole epoch slice (shard tracks) *)

val kind_name : kind -> string

(** A finished span, as read back from the ring. [t0] is seconds since
    the trace's creation; [arg] is a caller payload (batch size, bytes
    written, ...). *)
type span = { kind : kind; t0 : float; dur : float; arg : int }

type t

(** [create ~clock ~tracks ()] preallocates [tracks] tracks of
    [capacity] (default 8192) span slots each. *)
val create : ?capacity:int -> clock:(unit -> float) -> tracks:int -> unit -> t

val n_tracks : t -> int

(** Open a span on a track. Spans nest; frames beyond the fixed stack
    depth are counted but not recorded, keeping begin/end pairing. *)
val begin_span : t -> track:int -> kind -> unit

(** Close the innermost open span on a track and record it. *)
val end_span : ?arg:int -> t -> track:int -> unit -> unit

(** Time a thunk as one span (exception-safe). *)
val span : ?arg:int -> t -> track:int -> kind -> (unit -> 'a) -> 'a

(** Retained spans of one track, oldest first. *)
val spans : t -> track:int -> span list

(** Spans ever completed on a track (retained or overwritten). *)
val total : t -> track:int -> int

(** Spans lost to ring capacity on a track. *)
val dropped : t -> track:int -> int

(** [(count, total seconds)] for one kind on one track, over every
    completed span including overwritten ones. *)
val agg : t -> track:int -> kind -> int * float

(** [(count, total seconds)] for one kind summed across all tracks. *)
val agg_all : t -> kind -> int * float

(** Write the whole trace as Chrome trace-event JSON (the
    [{"traceEvents": [...]}] object form) — loadable in
    [chrome://tracing] / Perfetto. One [tid] per track; [track_names]
    labels tracks with thread-name metadata events. *)
val to_chrome : ?track_names:(int -> string option) -> t -> out_channel -> unit
