(** The campaign-wide counter block: one preallocated record of mutable
    scalars, bumped inline from the fuzzer's hot loop and sampled into
    immutable {!Snapshot.row}s on an exec-count cadence.

    The record is deliberately concrete: the whole point is that hot
    paths bump fields with plain int/float stores — no closure, no
    dispatch, no allocation — which is what makes the zero-perturbation
    rule (DESIGN.md §7) hold byte-for-byte. *)

type t = {
  (* execution *)
  mutable execs : int;  (** VM executions completed *)
  mutable blocks : int;  (** VM basic blocks executed (throughput proxy) *)
  (* mutation *)
  mutable havocs : int;  (** mutated candidates generated *)
  mutable splices : int;  (** candidates built with a splice peer *)
  mutable i2s_cands : int;  (** candidates built with cmplog pairs in scope *)
  mutable calibrations : int;  (** calibration runs (cmplog colorization) *)
  (* queue *)
  mutable seeds_imported : int;  (** seed-directory imports retained *)
  mutable retained : int;  (** coverage-novel candidates admitted *)
  mutable favored : int;  (** favored entries at the last cycle boundary *)
  mutable pending_favored : int;  (** never-fuzzed favored at last boundary *)
  mutable cycles : int;  (** queue cycles started *)
  mutable queue_full_drops : int;
      (** finished execs evaluated with a full queue *)
  (* outcomes *)
  mutable crashes : int;  (** raw crash count *)
  mutable crashes_stack_unique : int;  (** new top-5-frame stack hashes *)
  mutable crashes_cov_novel : int;  (** AFL-2.52b coverage-novel crashes *)
  mutable hangs : int;  (** fuel-exhausted executions *)
  (* replay work outside the campaign loop (culling, showmap) *)
  mutable replays : int;
  (* per-stage wall splits + mutator allocation (observer clock only) *)
  mutable vm_s : float;
  mutable mut_s : float;
  mutable mut_minor_words : float;
}

val create : unit -> t

(** Zero every field in place. *)
val reset : t -> unit

(** Fold [src] into [into] field-wise. Sharded campaigns give every
    shard a private block bumped lock-free on its own domain, then
    aggregate into the campaign observer's block at each sync barrier. *)
val add_into : into:t -> t -> unit

(** (name, value) pairs in a fixed render order — the [fuzzer_stats]
    analogue consumed by [pathfuzz stats]. Wall-split floats are
    rendered separately by callers that enabled a clock. *)
val to_fields : t -> (string * int) list
