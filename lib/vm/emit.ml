(* Per-subject native code emission: print a prepared subject as
   straight-line OCaml over the pooled [Interp.exec_ctx] API, compile
   it out-of-process, Dynlink the artifact, and hand back a runnable
   instance. The generated code mirrors [Compile]'s observable
   semantics op for op — same evaluation order, same crash sites, same
   fuel discipline (bulk burn + careful replay over the same fusion
   plan), same probe formulas — so the differential suite can hold it
   to the boxed reference interpreter bit for bit (DESIGN §15). *)

open Interp

let emitter_version = 1

(* ------------------------------------------------------------------ *)
(* Plugin side-channel *)

type raw = {
  r_set_trace : Pathcov.Coverage_map.t -> unit;
  r_set_cmp : (int -> int -> unit) -> unit;
  r_reset : unit -> unit;
  r_signal : unit -> int;
  r_enter : exec_ctx -> unit;
}

let lock = Mutex.create ()

(* Filled by generated module initialisers during [Dynlink.loadfile],
   which only ever runs under [lock]; drained into [makers] right
   after the load returns. *)
let pending : (string * (unit -> raw)) list ref = ref []
let register ~key make = pending := (key, make) :: !pending

let makers : (string, unit -> raw) Hashtbl.t = Hashtbl.create 64
let loaded_paths : (string, unit) Hashtbl.t = Hashtbl.create 16

(* ------------------------------------------------------------------ *)
(* Introspection *)

type stats = {
  cache_hits : int;
  cache_misses : int;
  fallbacks : int;
  compile_s : float;
}

let hits = Atomic.make 0
let misses = Atomic.make 0
let fallback_count = Atomic.make 0
let compile_us = Atomic.make 0

let stats () =
  {
    cache_hits = Atomic.get hits;
    cache_misses = Atomic.get misses;
    fallbacks = Atomic.get fallback_count;
    compile_s = float_of_int (Atomic.get compile_us) /. 1e6;
  }

let note_fallback () = Atomic.incr fallback_count

let add_compile_s dt =
  ignore (Atomic.fetch_and_add compile_us (int_of_float (dt *. 1e6)))

let forced_fail () =
  match Sys.getenv_opt "PATHFUZZ_EMIT_FAIL" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* ------------------------------------------------------------------ *)
(* Artifact cache location *)

let forced_dir : string option ref = ref None
let set_cache_dir d = forced_dir := Some d

let cache_dir () =
  match !forced_dir with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "PATHFUZZ_EMIT_CACHE" with
      | Some d when d <> "" -> d
      | _ -> (
          match Sys.getenv_opt "XDG_CACHE_HOME" with
          | Some d when d <> "" -> Filename.concat d "pathfuzz-emit"
          | _ -> (
              match Sys.getenv_opt "HOME" with
              | Some h when h <> "" ->
                  Filename.concat h (Filename.concat ".cache" "pathfuzz-emit")
              | _ ->
                  Filename.concat
                    (Filename.get_temp_dir_name ())
                    "pathfuzz-emit")))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error _ -> ()
  end

let cache_dir_ensured () =
  let d = cache_dir () in
  mkdir_p d;
  d

let artifact_ext = if Dynlink.is_native then ".cmxs" else ".cmo"

let artifact_path key =
  Filename.concat (cache_dir_ensured ()) ("pf_emit_" ^ key ^ artifact_ext)

(* ------------------------------------------------------------------ *)
(* Cache key: resolved IR fingerprint × spec × cmplog × compiler
   version × emitter version × linking model. *)

let key_of (p : prepared) (spec : Compile.spec) (cmplog : bool) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Marshal.to_string p.prog []);
  Buffer.add_string b (Compile.spec_name spec);
  (match spec with
  | Compile.Sfull (Pathcov.Feedback.Ngram n) ->
      Buffer.add_string b (string_of_int n)
  | _ -> ());
  Buffer.add_string b (if cmplog then "+cmp" else "-cmp");
  Buffer.add_string b Sys.ocaml_version;
  Buffer.add_string b (string_of_int emitter_version);
  Buffer.add_string b (if Dynlink.is_native then "n" else "b");
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Source generation: probe templates *)

let lit n = if n < 0 then Printf.sprintf "(%d)" n else string_of_int n

(* String-producing mirror of [Compile]'s probe sets: each generator
   returns the probe body as a parenthesisable unit statement (or
   [None] for no probe); [gpe_add]/[gpadd] carry the compile-time
   Ball–Larus add folding exactly as in the closure engine. *)
type gprobes = {
  gpc : int -> string option;
  gpb : int -> int -> string option;
  gpe : int -> int -> int -> string option;
  gpr : int -> int -> string option;
  gpe_add : int -> int -> int -> int option;
  gpadd : (int -> string) option;
  gemit_cmp : bool;
}

let gprobes_none =
  {
    gpc = (fun _ -> None);
    gpb = (fun _ _ -> None);
    gpe = (fun _ _ _ -> None);
    gpr = (fun _ _ -> None);
    gpe_add = (fun _ _ _ -> Some 0);
    gpadd = None;
    gemit_cmp = false;
  }

let edge_pb fid b =
  let cur = Pathcov.Feedback.block_key fid b in
  Some
    (Printf.sprintf "M.hit !trace (%s lxor !prev); prev := %s" (lit cur)
       (lit (cur lsr 1)))

let gprobes_of ?plans (p : prepared) (spec : Compile.spec) : gprobes =
  match spec with
  | Compile.Snone -> gprobes_none
  | Compile.Ssignal ->
      let mix k =
        Printf.sprintf
          "sigh := ((!sigh lxor %s) * 0x2545F4914F6CDD1D) land max_int"
          (lit k)
      in
      {
        gprobes_none with
        gpc = (fun fid -> Some (mix (Compile.sig_call_tag fid)));
        gpb = (fun fid b -> Some (mix (Compile.sig_block_tag fid b)));
        gpr = (fun fid b -> Some (mix (Compile.sig_ret_tag fid b)));
      }
  | Compile.Sfull Pathcov.Feedback.Block ->
      {
        gprobes_none with
        gemit_cmp = true;
        gpb =
          (fun fid b ->
            Some
              (Printf.sprintf "M.hit !trace %s"
                 (lit (Pathcov.Feedback.block_key fid b))));
      }
  | Compile.Sfull Pathcov.Feedback.Edge ->
      { gprobes_none with gemit_cmp = true; gpb = edge_pb }
  | Compile.Sfull (Pathcov.Feedback.Ngram n) ->
      {
        gprobes_none with
        gemit_cmp = true;
        gpb =
          (fun fid b ->
            let key = Pathcov.Feedback.block_key fid b in
            Some
              (Printf.sprintf
                 "Array.unsafe_set hist (!pos mod %d) %s; pos := !pos + 1; \
                  let h = ref 0 in for i = 0 to %d do h := !h lxor \
                  (Array.unsafe_get hist i lsr (i land 15)) done; M.hit \
                  !trace !h"
                 n (lit key) (n - 1)));
      }
  | Compile.Sfull Pathcov.Feedback.Path ->
      let plans =
        match plans with
        | Some pl -> pl
        | None -> Pathcov.Ball_larus.of_program p.prog
      in
      let salts = Array.map Compile.path_salt p.prog.funcs in
      let guard_add k =
        Printf.sprintf
          "if !top > 0 then begin let r = !regs in let i = !top - 1 in \
           Array.unsafe_set r i (Array.unsafe_get r i + %s) end"
          (lit k)
      in
      {
        gprobes_none with
        gemit_cmp = true;
        gpc =
          (fun _ ->
            Some
              "if !top = Array.length !regs then begin let bigger = \
               Array.make (2 * !top) 0 in Array.blit !regs 0 bigger 0 !top; \
               regs := bigger end; Array.unsafe_set !regs !top 0; top := \
               !top + 1");
        gpe =
          (fun fid src dst ->
            match
              Pathcov.Ball_larus.on_edge
                plans.Pathcov.Ball_larus.plans.(fid)
                ~src ~dst
            with
            | None -> None
            | Some (Pathcov.Ball_larus.Add k) -> Some (guard_add k)
            | Some (Pathcov.Ball_larus.Commit_back { add; reset }) ->
                Some
                  (Printf.sprintf
                     "if !top > 0 then begin let r = !regs in let i = !top \
                      - 1 in M.hit !trace (((Array.unsafe_get r i + %s) \
                      lxor %s) land max_int); Array.unsafe_set r i %s end"
                     (lit add)
                     (lit salts.(fid))
                     (lit reset)));
        gpe_add =
          (fun fid src dst ->
            match
              Pathcov.Ball_larus.on_edge
                plans.Pathcov.Ball_larus.plans.(fid)
                ~src ~dst
            with
            | None -> Some 0
            | Some (Pathcov.Ball_larus.Add k) -> Some k
            | Some (Pathcov.Ball_larus.Commit_back _) -> None);
        gpadd = Some guard_add;
        gpr =
          (fun fid block ->
            let ra =
              plans.Pathcov.Ball_larus.plans.(fid).Pathcov.Ball_larus.ret_add.(
                block)
            in
            Some
              (Printf.sprintf
                 "if !top > 0 then begin let i = !top - 1 in M.hit !trace \
                  (((Array.unsafe_get !regs i + %s) lxor %s) land max_int); \
                  top := i end"
                 (lit ra)
                 (lit salts.(fid))));
      }
  | Compile.Sfull Pathcov.Feedback.Pathafl ->
      let nsucc fid src =
        List.length
          (Minic.Ir.successors p.prog.funcs.(fid).blocks.(src).Minic.Ir.term)
      in
      let key_event k =
        Printf.sprintf
          "rolling := (((!rolling lsl 13) lor (!rolling lsr 49)) lxor %s) \
           land max_int; M.hit !trace !rolling"
          (lit k)
      in
      {
        gprobes_none with
        gemit_cmp = true;
        gpc =
          (fun fid -> Some (key_event (Pathcov.Feedback.block_key fid 0 + 1)));
        gpb = edge_pb;
        gpe =
          (fun fid src dst ->
            if nsucc fid src >= 2 then
              Some
                (key_event (Pathcov.Feedback.block_key fid src lxor (dst * 31)))
            else None);
        gpe_add =
          (fun fid src _dst -> if nsucc fid src >= 2 then None else Some 0);
      }

(* ------------------------------------------------------------------ *)
(* Source generation: one subject *)

type eop = Eentry of int | Einstr of rinstr | Ecall of rinstr | Eedge of int * int

let slot_lit = function
  | Local i -> Printf.sprintf "(I.Local %d)" i
  | Global g -> Printf.sprintf "(I.Global %d)" g

let rel_of = function
  | Ceq -> "="
  | Cne -> "<>"
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let gen_subject (buf : Buffer.t) ~(key : string) ?plans ~(cmplog : bool)
    (p : prepared) (spec : Compile.spec) : unit =
  let gp = gprobes_of ?plans p spec in
  let gp = { gp with gemit_cmp = gp.gemit_cmp && cmplog } in
  let typing = Compile.may_array_analysis p in
  let zeroes = Compile.zero_slots_analysis p in
  let gma = typing.Compile.gmay in
  let ngram_n =
    match spec with Compile.Sfull (Pathcov.Feedback.Ngram n) -> n | _ -> 0
  in
  let nextv = ref 0 in
  let fresh () =
    incr nextv;
    Printf.sprintf "v%d" !nextv
  in
  let parts : (string * string) list ref = ref [] in
  let push name body = parts := (name, body) :: !parts in
  (* One function's bodies: expression/statement printers close over
     the function's may-array row. *)
  let gen_fn fid (f : rfunc) =
    let ma = typing.Compile.lmay.(fid) in
    let rec exp (e : rexpr) : string =
      match e with
      | Rconst n -> lit n
      | Rload (Local i, site) ->
          if ma.(i) then
            Printf.sprintf
              "(if fr.I.f_arrs_live && Array.unsafe_get fr.I.f_arrs %d != \
               I.no_arr then raise (I.Crash_exn (C.Type_error \"int \
               expected\", %s)) else Array.unsafe_get fr.I.f_ints %d)"
              i (lit site) i
          else Printf.sprintf "(Array.unsafe_get fr.I.f_ints %d)" i
      | Rload (Global g, site) ->
          if gma.(g) then
            Printf.sprintf
              "(if Array.unsafe_get ctx.I.garrs %d != I.no_arr then raise \
               (I.Crash_exn (C.Type_error \"int expected\", %s)) else \
               Array.unsafe_get ctx.I.gints %d)"
              g (lit site) g
          else Printf.sprintf "(Array.unsafe_get ctx.I.gints %d)" g
      | Rindex (b, i, site) ->
          let a = fresh () and iv = fresh () in
          Printf.sprintf
            "(let %s = %s in let %s = %s in if %s < 0 || %s >= Array.length \
             %s then raise (I.Crash_exn (C.Out_of_bounds { len = \
             Array.length %s; idx = %s }, %s)) else Array.unsafe_get %s %s)"
            a (aexp site b) iv (exp i) iv iv a a iv (lit site) a iv
      | Rarith (op, e1, e2, site) ->
          let a = fresh () and b = fresh () in
          let body =
            match op with
            | Aadd -> Printf.sprintf "%s + %s" a b
            | Asub -> Printf.sprintf "%s - %s" a b
            | Amul -> Printf.sprintf "%s * %s" a b
            | Adiv ->
                Printf.sprintf
                  "if %s = 0 then raise (I.Crash_exn (C.Div_by_zero, %s)) \
                   else %s / %s"
                  b (lit site) a b
            | Arem ->
                Printf.sprintf
                  "if %s = 0 then raise (I.Crash_exn (C.Div_by_zero, %s)) \
                   else %s mod %s"
                  b (lit site) a b
            | Aband -> Printf.sprintf "%s land %s" a b
            | Abor -> Printf.sprintf "%s lor %s" a b
            | Abxor -> Printf.sprintf "%s lxor %s" a b
            | Ashl -> Printf.sprintf "%s lsl min 62 (%s land 63)" a b
            | Ashr -> Printf.sprintf "%s asr min 62 (%s land 63)" a b
          in
          Printf.sprintf "(let %s = %s in let %s = %s in %s)" a (exp e1) b
            (exp e2) body
      | Rcmp (op, e1, e2) ->
          let a = fresh () and b = fresh () in
          Printf.sprintf "(let %s = %s in let %s = %s in %sif %s %s %s then \
                          1 else 0)"
            a (exp e1) b (exp e2)
            (if gp.gemit_cmp then Printf.sprintf "(!hcmp) %s %s; " a b
             else "")
            a (rel_of op) b
      | Rneg e -> Printf.sprintf "(- %s)" (exp e)
      | Rnot e -> Printf.sprintf "(if %s = 0 then 1 else 0)" (exp e)
      | Rbnot e -> Printf.sprintf "(lnot %s)" (exp e)
      | Rin e ->
          let i = fresh () in
          Printf.sprintf
            "(let %s = %s in if %s < 0 || %s >= ctx.I.input_len then (-1) \
             else Char.code (String.unsafe_get ctx.I.input %s))"
            i (exp e) i i i
      | Rlen -> "ctx.I.input_len"
      | Rabs e -> Printf.sprintf "(abs %s)" (exp e)
      | Rarray_make (_, site) ->
          Printf.sprintf
            "(raise (I.Crash_exn (C.Type_error \"array in int context\", \
             %s)))"
            (lit site)
      | Rarray_len (e, site) ->
          Printf.sprintf "(Array.length %s)" (aexp site e)
    and aexp (site : int) (e : rexpr) : string =
      match e with
      | Rload (Local i, _) ->
          if ma.(i) then
            let a = fresh () in
            Printf.sprintf
              "(let %s = if fr.I.f_arrs_live then Array.unsafe_get \
               fr.I.f_arrs %d else I.no_arr in if %s == I.no_arr then raise \
               (I.Crash_exn (C.Type_error \"array expected\", %s)) else %s)"
              a i a (lit site) a
          else
            Printf.sprintf
              "(raise (I.Crash_exn (C.Type_error \"array expected\", %s)))"
              (lit site)
      | Rload (Global g, _) ->
          if gma.(g) then
            let a = fresh () in
            Printf.sprintf
              "(let %s = Array.unsafe_get ctx.I.garrs %d in if %s == \
               I.no_arr then raise (I.Crash_exn (C.Type_error \"array \
               expected\", %s)) else %s)"
              a g a (lit site) a
          else
            Printf.sprintf
              "(raise (I.Crash_exn (C.Type_error \"array expected\", %s)))"
              (lit site)
      | Rarray_make (n, site') ->
          let v = fresh () in
          Printf.sprintf
            "(let %s = %s in if %s < 0 || %s > I.max_alloc then raise \
             (I.Crash_exn (C.Bad_alloc %s, %s)) else Array.make %s 0)"
            v (exp n) v v v (lit site') v
      | _ ->
          Printf.sprintf
            "(raise (I.Crash_exn (C.Type_error \"array expected\", %s)))"
            (lit site)
    in
    let cond (e : rexpr) : string =
      match e with
      | Rcmp (op, e1, e2) ->
          let a = fresh () and b = fresh () in
          Printf.sprintf "(let %s = %s in let %s = %s in %s%s %s %s)" a
            (exp e1) b (exp e2)
            (if gp.gemit_cmp then Printf.sprintf "(!hcmp) %s %s; " a b
             else "")
            a (rel_of op) b
      | Rnot e -> Printf.sprintf "(%s = 0)" (exp e)
      | _ -> Printf.sprintf "(%s <> 0)" (exp e)
    in
    (* [Interp.eval_into]: evaluate in the caller frame [fr], store
       into [dstv]'s slot [dst] under the destination's typing row. *)
    let into ~(dstma : bool array) ~(dstv : string) (dst : slot) (e : rexpr)
        : string =
      let store_int (v : string) : string =
        match dst with
        | Local i ->
            if dstma.(i) then
              let t = fresh () in
              Printf.sprintf
                "(let %s = %s in Array.unsafe_set %s.I.f_ints %d %s; if \
                 %s.I.f_arrs_live && Array.unsafe_get %s.I.f_arrs %d != \
                 I.no_arr then Array.unsafe_set %s.I.f_arrs %d I.no_arr)"
                t v dstv i t dstv dstv i dstv i
            else Printf.sprintf "(Array.unsafe_set %s.I.f_ints %d %s)" dstv i v
        | Global g ->
            if gma.(g) then
              let t = fresh () in
              Printf.sprintf
                "(let %s = %s in I.touch_global ctx %d; Array.unsafe_set \
                 ctx.I.gints %d %s; if Array.unsafe_get ctx.I.garrs %d != \
                 I.no_arr then Array.unsafe_set ctx.I.garrs %d I.no_arr)"
                t v g g t g g
            else
              let t = fresh () in
              Printf.sprintf
                "(let %s = %s in I.touch_global ctx %d; Array.unsafe_set \
                 ctx.I.gints %d %s)"
                t v g g t
      in
      match e with
      | Rload ((Local i) as s, _) when ma.(i) ->
          Printf.sprintf "(I.copy_slot ctx fr %s %s %s)" (slot_lit s) dstv
            (slot_lit dst)
      | Rload ((Global g) as s, _) when gma.(g) ->
          Printf.sprintf "(I.copy_slot ctx fr %s %s %s)" (slot_lit s) dstv
            (slot_lit dst)
      | Rload (Local i, _) ->
          store_int (Printf.sprintf "(Array.unsafe_get fr.I.f_ints %d)" i)
      | Rload (Global g, _) ->
          store_int (Printf.sprintf "(Array.unsafe_get ctx.I.gints %d)" g)
      | Rarray_make (n, site) ->
          let v = fresh () in
          Printf.sprintf
            "(let %s = %s in if %s < 0 || %s > I.max_alloc then raise \
             (I.Crash_exn (C.Bad_alloc %s, %s)) else I.write_arr ctx %s %s \
             (Array.make %s 0))"
            v (exp n) v v v (lit site) dstv (slot_lit dst) v
      | _ -> store_int (exp e)
    in
    let ret_stmt (e : rexpr option) : string =
      match e with
      | None -> "(ctx.I.ret_a <- I.no_arr; ctx.I.ret_i <- 0)"
      | Some (Rload (Local i, _)) ->
          if ma.(i) then
            let a = fresh () in
            Printf.sprintf
              "(let %s = if fr.I.f_arrs_live then Array.unsafe_get \
               fr.I.f_arrs %d else I.no_arr in if %s != I.no_arr then \
               ctx.I.ret_a <- %s else begin ctx.I.ret_a <- I.no_arr; \
               ctx.I.ret_i <- Array.unsafe_get fr.I.f_ints %d end)"
              a i a a i
          else
            Printf.sprintf
              "(ctx.I.ret_a <- I.no_arr; ctx.I.ret_i <- Array.unsafe_get \
               fr.I.f_ints %d)"
              i
      | Some (Rload (Global g, _)) ->
          if gma.(g) then
            let a = fresh () in
            Printf.sprintf
              "(let %s = Array.unsafe_get ctx.I.garrs %d in if %s != \
               I.no_arr then ctx.I.ret_a <- %s else begin ctx.I.ret_a <- \
               I.no_arr; ctx.I.ret_i <- Array.unsafe_get ctx.I.gints %d \
               end)"
              a g a a g
          else
            Printf.sprintf
              "(ctx.I.ret_a <- I.no_arr; ctx.I.ret_i <- Array.unsafe_get \
               ctx.I.gints %d)"
              g
      | Some (Rarray_make (n, site)) ->
          let v = fresh () in
          Printf.sprintf
            "(let %s = %s in if %s < 0 || %s > I.max_alloc then raise \
             (I.Crash_exn (C.Bad_alloc %s, %s)) else ctx.I.ret_a <- \
             Array.make %s 0)"
            v (exp n) v v v (lit site) v
      | Some e ->
          Printf.sprintf "(ctx.I.ret_a <- I.no_arr; ctx.I.ret_i <- %s)"
            (exp e)
    in
    let instr_stmt (ins : rinstr) : string =
      match ins with
      | Rassign (dst, e) -> into ~dstma:ma ~dstv:"fr" dst e
      | Rstore (base, idx, v, site) ->
          let a = fresh () and i = fresh () and x = fresh () in
          Printf.sprintf
            "(let %s = %s in let %s = %s in let %s = %s in if %s < 0 || %s \
             >= Array.length %s then raise (I.Crash_exn (C.Out_of_bounds { \
             len = Array.length %s; idx = %s }, %s)) else Array.unsafe_set \
             %s %s %s)"
            a (aexp site base) i (exp idx) x (exp v) i i a a i (lit site) a i
            x
      | Rbug (bug, site) ->
          Printf.sprintf "(raise (I.Crash_exn (C.Seeded %s, %s)))" (lit bug)
            (lit site)
      | Rcheck (c, bug, site) ->
          Printf.sprintf
            "(if not %s then raise (I.Crash_exn (C.Check_failed %s, %s)))"
            (cond c) (lit bug) (lit site)
      | Rcall _ -> assert false
    in
    let call_text ~dst ~callee ~(args : rexpr array) ~site : string =
      let bb = Buffer.create 256 in
      let cf = fresh () in
      Printf.bprintf bb
        "ctx.I.fuel <- ctx.I.fuel - 1;\n\
         if ctx.I.fuel <= 0 then raise I.Out_of_fuel;\n\
         let %s = I.acquire_raw ctx %d in\n"
        cf callee;
      Array.iter
        (fun sl -> Printf.bprintf bb "Array.unsafe_set %s.I.f_ints %d 0;\n" cf sl)
        zeroes.(callee);
      let params = p.rfuncs.(callee).param_slots in
      Array.iteri
        (fun k a ->
          Printf.bprintf bb "%s;\n"
            (into ~dstma:typing.Compile.lmay.(callee) ~dstv:cf params.(k) a))
        args;
      Printf.bprintf bb "I.push_call ctx %d %s;\n" fid (lit site);
      Printf.bprintf bb "depth := !depth + 1;\n";
      Printf.bprintf bb "f_%d ctx %s;\n" callee cf;
      Printf.bprintf bb "depth := !depth - 1;\n";
      Printf.bprintf bb "ctx.I.cs_top <- ctx.I.cs_top - 1;\n";
      let pv = fresh () in
      Printf.bprintf bb
        "let %s = Array.unsafe_get ctx.I.pools %d in\n%s.I.live <- %s.I.live - 1;\n"
        pv callee pv pv;
      (match dst with
      | None -> ()
      | Some d ->
          Printf.bprintf bb
            "(if ctx.I.ret_a != I.no_arr then I.write_arr ctx fr %s \
             ctx.I.ret_a else I.write_int ctx fr %s ctx.I.ret_i);\n"
            (slot_lit d) (slot_lit d));
      Buffer.contents bb
    in
    let term_code (label : int) (t : rterm) : string =
      match t with
      | Rgoto l ->
          (match gp.gpe fid label l with
          | None -> ""
          | Some pr -> "(" ^ pr ^ ");\n")
          ^ Printf.sprintf "b_%d_%d ctx fr" fid l
      | Rbranch (c, tl, fl, _site) ->
          let arm target =
            (match gp.gpe fid label target with
            | None -> ""
            | Some pr -> "(" ^ pr ^ ");\n")
            ^ Printf.sprintf "b_%d_%d ctx fr" fid target
          in
          Printf.sprintf "if %s then begin\n%s\nend\nelse begin\n%s\nend"
            (cond c) (arm tl) (arm fl)
      | Rret (e, _site) -> (
          ret_stmt e
          ^
          match gp.gpr fid label with
          | None -> ""
          | Some pr -> ";\n(" ^ pr ^ ")")
    in
    let fast_text seg =
      let bb = Buffer.create 256 in
      let pending_add = ref 0 in
      let flush () =
        if !pending_add <> 0 then begin
          (match gp.gpadd with
          | Some fmt -> Buffer.add_string bb ("(" ^ fmt !pending_add ^ ");\n")
          | None -> assert false);
          pending_add := 0
        end
      in
      List.iter
        (function
          | Eentry b ->
              Buffer.add_string bb "ctx.I.blocks <- ctx.I.blocks + 1;\n";
              (match gp.gpb fid b with
              | None -> ()
              | Some pr -> Buffer.add_string bb ("(" ^ pr ^ ");\n"))
          | Einstr i -> Buffer.add_string bb (instr_stmt i ^ ";\n")
          | Eedge (s, d) -> (
              match gp.gpe_add fid s d with
              | Some k -> pending_add := !pending_add + k
              | None -> (
                  flush ();
                  match gp.gpe fid s d with
                  | None -> ()
                  | Some pr -> Buffer.add_string bb ("(" ^ pr ^ ");\n")))
          | Ecall _ -> assert false)
        seg;
      flush ();
      Buffer.contents bb
    in
    let careful_text seg =
      let bb = Buffer.create 256 in
      List.iter
        (function
          | Eentry b ->
              Buffer.add_string bb
                "ctx.I.fuel <- ctx.I.fuel - 1;\n\
                 if ctx.I.fuel <= 0 then raise I.Out_of_fuel;\n\
                 ctx.I.blocks <- ctx.I.blocks + 1;\n";
              (match gp.gpb fid b with
              | None -> ()
              | Some pr -> Buffer.add_string bb ("(" ^ pr ^ ");\n"))
          | Einstr i ->
              Buffer.add_string bb
                "ctx.I.fuel <- ctx.I.fuel - 1;\n\
                 if ctx.I.fuel <= 0 then raise I.Out_of_fuel;\n";
              Buffer.add_string bb (instr_stmt i ^ ";\n")
          | Eedge (s, d) -> (
              match gp.gpe fid s d with
              | None -> ()
              | Some pr -> Buffer.add_string bb ("(" ^ pr ^ ");\n"))
          | Ecall _ -> assert false)
        seg;
      Buffer.contents bb
    in
    let ops_of (chain : int list) : eop list * int * rterm =
      let instr_op i = match i with Rcall _ -> Ecall i | _ -> Einstr i in
      let rec go = function
        | [] -> assert false
        | [ last ] ->
            let b = f.rblocks.(last) in
            ( Eentry last :: List.map instr_op (Array.to_list b.rinstrs),
              last,
              b.rterm )
        | cur :: (next :: _ as rest) ->
            let b = f.rblocks.(cur) in
            let more, ll, tt = go rest in
            ( (Eentry cur :: List.map instr_op (Array.to_list b.rinstrs))
              @ (Eedge (cur, next) :: more),
              ll,
              tt )
      in
      go chain
    in
    let gen_block_group ~head ~chain =
      let ops, last_label, term = ops_of chain in
      let kcount = ref 0 in
      let base = Printf.sprintf "b_%d_%d" fid head in
      let rec build name ops =
        let bb = Buffer.create 256 in
        let rec eat = function
          | Ecall (Rcall { dst; callee; args; site }) :: rest ->
              Buffer.add_string bb (call_text ~dst ~callee ~args ~site);
              eat rest
          | ops -> ops
        in
        let ops = eat ops in
        if ops = [] then begin
          Buffer.add_string bb (term_code last_label term);
          push name (Buffer.contents bb)
        end
        else begin
          let rec split acc = function
            | (Ecall _ :: _ | []) as rest -> (List.rev acc, rest)
            | op :: more -> split (op :: acc) more
          in
          let seg, rest = split [] ops in
          incr kcount;
          let cont = Printf.sprintf "%s_k%d" base !kcount in
          let burn =
            List.fold_left
              (fun a op -> match op with Eentry _ | Einstr _ -> a + 1 | _ -> a)
              0 seg
          in
          let fast = fast_text seg in
          if burn = 0 then
            Buffer.add_string bb (fast ^ Printf.sprintf "%s ctx fr" cont)
          else
            Buffer.add_string bb
              (Printf.sprintf
                 "ctx.I.fuel <- ctx.I.fuel - %d;\n\
                  if ctx.I.fuel > 0 then begin\n\
                  %s%s ctx fr\n\
                  end\n\
                  else begin\n\
                  ctx.I.fuel <- ctx.I.fuel + %d;\n\
                  %s%s ctx fr\n\
                  end"
                 burn fast cont burn (careful_text seg) cont);
          push name (Buffer.contents bb);
          build cont rest
        end
      in
      build base ops
    in
    (* Entry: depth fence, call probe, jump to block 0. *)
    push
      (Printf.sprintf "f_%d" fid)
      (Printf.sprintf
         "if !depth > ctx.I.max_depth then raise (I.Crash_exn \
          (C.Stack_overflow, (-1)));\n\
          %sb_%d_0 ctx fr"
         (match gp.gpc fid with None -> "" | Some pr -> "(" ^ pr ^ ");\n")
         fid);
    let plan = Compile.fusion_plan f in
    Array.iteri
      (fun lb _ ->
        let chain = match plan.(lb) with Some c -> c | None -> [ lb ] in
        gen_block_group ~head:lb ~chain)
      f.rblocks
  in
  Array.iteri gen_fn p.rfuncs;
  (* Assemble the registration block. *)
  Printf.bprintf buf "let () =\n  Vm.Emit.register ~key:%S (fun () ->\n" key;
  Printf.bprintf buf "let trace = ref (M.create ~size_log2:6 ()) in\n";
  Printf.bprintf buf "let hcmp = ref (fun (_ : int) (_ : int) -> ()) in\n";
  Printf.bprintf buf "let depth = ref 0 in\n";
  Printf.bprintf buf "let prev = ref 0 in\n";
  Printf.bprintf buf "let hist = Array.make %d 0 in\n" ngram_n;
  Printf.bprintf buf "let pos = ref 0 in\n";
  Printf.bprintf buf "let regs = ref (Array.make 64 0) in\n";
  Printf.bprintf buf "let top = ref 0 in\n";
  Printf.bprintf buf "let rolling = ref 0 in\n";
  Printf.bprintf buf "let sigh = ref 0 in\n";
  List.iteri
    (fun i (name, body) ->
      Printf.bprintf buf "%s %s (ctx : I.exec_ctx) (fr : I.frame) =\n%s\n"
        (if i = 0 then "let rec" else "and")
        name body)
    (List.rev !parts);
  Printf.bprintf buf "in\n";
  let zero_main =
    Array.to_list zeroes.(p.main_id)
    |> List.map (fun sl -> Printf.sprintf "Array.unsafe_set fr.I.f_ints %d 0; " sl)
    |> String.concat ""
  in
  Printf.bprintf buf
    "{ Vm.Emit.r_set_trace = (fun m -> trace := m);\n\
    \  Vm.Emit.r_set_cmp = (fun f -> hcmp := f);\n\
    \  Vm.Emit.r_reset = (fun () -> depth := 0; prev := 0; pos := 0; %stop \
     := 0; rolling := 0; sigh := 0);\n\
    \  Vm.Emit.r_signal = (fun () -> !sigh);\n\
    \  Vm.Emit.r_enter = (fun ctx -> let fr = I.acquire_raw ctx %d in \
     %sf_%d ctx fr) })\n\n"
    (if ngram_n > 0 then Printf.sprintf "Array.fill hist 0 %d 0; " ngram_n
     else "")
    p.main_id zero_main p.main_id

let header =
  "(* generated by Vm.Emit — do not edit *)\n\
   module I = Vm.Interp\n\
   module C = Vm.Crash\n\
   module M = Pathcov.Coverage_map\n\n"

(* ------------------------------------------------------------------ *)
(* Out-of-process compilation *)

let read_tail path n =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let ofs = max 0 (len - n) in
    seek_in ic ofs;
    let s = really_input_string ic (len - ofs) in
    close_in ic;
    s
  with _ -> ""

(* The cmi search path: the dune build tree that produced the running
   executable (walk up to the [_build/default] ancestor), plus fmt's
   findlib dir (vm's interfaces may surface its types). Overridable
   with a colon-separated [PATHFUZZ_EMIT_INC]. *)
let discovered_incs =
  lazy
    (match Sys.getenv_opt "PATHFUZZ_EMIT_INC" with
    | Some s when s <> "" -> String.split_on_char ':' s
    | _ ->
        let marker root =
          Sys.file_exists
            (Filename.concat root "lib/vm/.vm.objs/byte/vm.cmi")
        in
        let rec up d n =
          if n > 16 then None
          else if marker d then Some d
          else
            let parent = Filename.dirname d in
            if parent = d then None else up parent (n + 1)
        in
        let root =
          match up (Filename.dirname Sys.executable_name) 0 with
          | Some r -> Some r
          | None -> up (Sys.getcwd ()) 0
        in
        let tree =
          match root with
          | None -> []
          | Some root ->
              List.concat_map
                (fun (sub, name) ->
                  let objs =
                    Filename.concat root
                      (Printf.sprintf "lib/%s/.%s.objs" sub name)
                  in
                  [ Filename.concat objs "byte"; Filename.concat objs "native" ])
                [ ("vm", "vm"); ("core", "pathcov"); ("minic", "minic") ]
        in
        let fmt_dir =
          let tmp = Filename.temp_file "pfemit" ".out" in
          let rc =
            Sys.command
              (Printf.sprintf "ocamlfind query fmt > %s 2> /dev/null"
                 (Filename.quote tmp))
          in
          let r =
            if rc = 0 then (
              try
                let ic = open_in tmp in
                let line = input_line ic in
                close_in ic;
                if line <> "" then [ line ] else []
              with _ -> [])
            else []
          in
          (try Sys.remove tmp with _ -> ());
          r
        in
        List.filter Sys.file_exists (tree @ fmt_dir))

let compile_source ~(tmp : string) ~(modbase : string) : (string, string) result
    =
  let src = Filename.concat tmp (modbase ^ ".ml") in
  let logf = Filename.concat tmp (modbase ^ ".log") in
  let incs =
    String.concat " "
      (List.map
         (fun d -> "-I " ^ Filename.quote d)
         (Lazy.force discovered_incs))
  in
  let out = Filename.concat tmp (modbase ^ artifact_ext) in
  let attempts =
    if Dynlink.is_native then
      List.map
        (fun comp ->
          Printf.sprintf
            "%s %s -no-alias-deps -shared -w -a -o %s %s > %s 2>&1" comp incs
            (Filename.quote out) (Filename.quote src) (Filename.quote logf))
        [ "ocamlfind ocamlopt"; "ocamlopt.opt"; "ocamlopt" ]
    else
      List.map
        (fun comp ->
          Printf.sprintf "%s %s -no-alias-deps -c -w -a %s > %s 2>&1" comp incs
            (Filename.quote src) (Filename.quote logf))
        [ "ocamlfind ocamlc"; "ocamlc" ]
  in
  let rec try_all = function
    | [] ->
        Error
          (Printf.sprintf "emit compile failed: %s"
             (String.trim (read_tail logf 400)))
    | cmd :: rest ->
        let rc = try Sys.command cmd with Sys_error e -> failwith e in
        if rc = 0 && Sys.file_exists out then Ok out else try_all rest
  in
  try try_all attempts with Failure e -> Error e

let cleanup_dir d =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
       (Sys.readdir d)
   with _ -> ());
  try Unix.rmdir d with _ -> ()

(* Generate + compile one compilation unit holding [entries]; publish
   the artifact at [artifact_path gkey] with an atomic rename. Caller
   holds [lock]. *)
let build_unit ~(gkey : string)
    (entries :
      (string * prepared * Compile.spec * bool
      * Pathcov.Ball_larus.program_plans option)
      list) : (string, string) result =
  let dir = cache_dir_ensured () in
  let tmp =
    Filename.concat dir (Printf.sprintf "tmp-%d-%s" (Unix.getpid ()) gkey)
  in
  mkdir_p tmp;
  if not (Sys.file_exists tmp) then
    Error (Printf.sprintf "emit cache dir not writable: %s" dir)
  else begin
    let modbase = "pf_emit_" ^ gkey in
    let buf = Buffer.create 65536 in
    Buffer.add_string buf header;
    List.iter
      (fun (key, p, spec, cmplog, plans) ->
        gen_subject buf ~key ?plans ~cmplog p spec)
      entries;
    let src = Filename.concat tmp (modbase ^ ".ml") in
    let res =
      try
        let oc = open_out_bin src in
        output_string oc (Buffer.contents buf);
        close_out oc;
        let t0 = Unix.gettimeofday () in
        let r = compile_source ~tmp ~modbase in
        add_compile_s (Unix.gettimeofday () -. t0);
        r
      with Sys_error e -> Error e
    in
    match res with
    | Ok art_tmp ->
        let final = artifact_path gkey in
        let ok = try Sys.rename art_tmp final; true with Sys_error _ -> false in
        cleanup_dir tmp;
        if ok && Sys.file_exists final then Ok final
        else Error "emit artifact publish failed"
    | Error e ->
        cleanup_dir tmp;
        Error e
  end

(* ------------------------------------------------------------------ *)
(* Loading *)

let load_and_drain (path : string) : (unit, string) result =
  if Hashtbl.mem loaded_paths path then Ok ()
  else begin
    pending := [];
    match Dynlink.loadfile_private path with
    | () ->
        List.iter (fun (k, mk) -> Hashtbl.replace makers k mk) !pending;
        pending := [];
        Hashtbl.replace loaded_paths path ();
        Ok ()
    | exception Dynlink.Error e ->
        pending := [];
        Error ("dynlink: " ^ Dynlink.error_message e)
    | exception e ->
        pending := [];
        Error ("dynlink: " ^ Printexc.to_string e)
  end

(* ------------------------------------------------------------------ *)
(* Public instantiation *)

type t = { prepared : prepared; raw : raw }

let locked f = Mutex.protect lock f

let maker_for ?plans ~cmplog (p : prepared) (spec : Compile.spec) :
    ((unit -> raw), string) result =
  let key = key_of p spec cmplog in
  match Hashtbl.find_opt makers key with
  | Some mk ->
      Atomic.incr hits;
      Ok mk
  | None -> (
      let finish () =
        match Hashtbl.find_opt makers key with
        | Some mk -> Ok mk
        | None -> Error ("emit artifact did not register key " ^ key)
      in
      let art = artifact_path key in
      if Sys.file_exists art then begin
        match load_and_drain art with
        | Ok () ->
            Atomic.incr hits;
            finish ()
        | Error e -> Error e
      end
      else begin
        Atomic.incr misses;
        match build_unit ~gkey:key [ (key, p, spec, cmplog, plans) ] with
        | Ok art -> (
            match load_and_drain art with
            | Ok () -> finish ()
            | Error e -> Error e)
        | Error e -> Error e
      end)

let instance ?plans ?(cmplog = true) (p : prepared) (spec : Compile.spec) :
    (t, string) result =
  if forced_fail () then Error "disabled by PATHFUZZ_EMIT_FAIL"
  else
    locked (fun () ->
        match maker_for ?plans ~cmplog p spec with
        | Ok mk -> Ok { prepared = p; raw = mk () }
        | Error e -> Error e)

let preload (entries : (prepared * Compile.spec * bool) list) : int =
  if forced_fail () then 0
  else
    locked (fun () ->
        let keyed =
          List.map (fun (p, spec, cmplog) -> (key_of p spec cmplog, p, spec, cmplog)) entries
        in
        (* Dedup by key, keep first occurrence. *)
        let seen = Hashtbl.create 64 in
        let uniq =
          List.filter
            (fun (k, _, _, _) ->
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
            keyed
        in
        let missing =
          List.filter (fun (k, _, _, _) -> not (Hashtbl.mem makers k)) uniq
        in
        let rec chunks n = function
          | [] -> []
          | l ->
              let rec take acc k = function
                | x :: rest when k > 0 -> take (x :: acc) (k - 1) rest
                | rest -> (List.rev acc, rest)
              in
              let c, rest = take [] n l in
              c :: chunks n rest
        in
        List.iter
          (fun chunk ->
            let gkey =
              Digest.to_hex
                (Digest.string
                   (String.concat "" (List.map (fun (k, _, _, _) -> k) chunk)))
            in
            let art = artifact_path gkey in
            if Sys.file_exists art then (
              match load_and_drain art with
              | Ok () -> Atomic.incr hits
              | Error _ -> ())
            else begin
              Atomic.incr misses;
              match
                build_unit ~gkey
                  (List.map
                     (fun (k, p, spec, cmplog) -> (k, p, spec, cmplog, None))
                     chunk)
              with
              | Ok art -> ignore (load_and_drain art)
              | Error _ -> ()
            end)
          (chunks 48 missing);
        List.length
          (List.filter (fun (k, _, _, _) -> Hashtbl.mem makers k) keyed))

(* ------------------------------------------------------------------ *)
(* Campaign binding + execution (mirrors of the [Compile] runners) *)

let bind (t : t) ~(trace : Pathcov.Coverage_map.t)
    ~(h_cmp : int -> int -> unit) : unit =
  t.raw.r_set_trace trace;
  t.raw.r_set_cmp h_cmp

let signal (t : t) : int = t.raw.r_signal ()

let run_current (t : t) (ctx : exec_ctx) ~fuel ~max_depth : outcome =
  t.raw.r_reset ();
  reset_ctx ctx;
  ctx.fuel <- fuel;
  ctx.max_depth <- max_depth;
  let status =
    try
      t.raw.r_enter ctx;
      if ctx.ret_a != no_arr then Finished None else Finished (Some ctx.ret_i)
    with
    | Crash_exn (kind, site) ->
        ctx.unwound <- true;
        let top = { Crash.fn = site_function t.prepared.prog site; site } in
        Crashed { Crash.kind; stack = top :: materialize_stack ctx }
    | Out_of_fuel ->
        ctx.unwound <- true;
        Hung
    | Stack_overflow ->
        ctx.unwound <- true;
        Crashed
          { Crash.kind = Crash.Stack_overflow; stack = materialize_stack ctx }
  in
  { status; blocks_executed = ctx.blocks }

let run ?(fuel = default_fuel) ?(max_depth = default_max_depth) (t : t)
    (ctx : exec_ctx) ~(input : string) : outcome =
  if ctx.p != t.prepared then
    invalid_arg "Emit.run: context belongs to a different prepared program";
  ctx.input <- input;
  ctx.input_len <- String.length input;
  run_current t ctx ~fuel ~max_depth

let run_sub ?(fuel = default_fuel) ?(max_depth = default_max_depth) (t : t)
    (ctx : exec_ctx) ~(buf : Bytes.t) ~(len : int) : outcome =
  if ctx.p != t.prepared then
    invalid_arg "Emit.run_sub: context belongs to a different prepared program";
  if len < 0 || len > Bytes.length buf then invalid_arg "Emit.run_sub";
  ctx.input <- Bytes.unsafe_to_string buf;
  ctx.input_len <- len;
  run_current t ctx ~fuel ~max_depth

let run_batch ?(fuel = default_fuel) ?(max_depth = default_max_depth) ?clock
    ?(vm_s = fun (_ : float) -> ()) (t : t) (ctx : exec_ctx) ~(n : int)
    ~(gen : int -> Bytes.t * int) ~(sink : int -> outcome -> unit) : unit =
  if n > 0 && ctx.p != t.prepared then
    invalid_arg
      "Emit.run_batch: context belongs to a different prepared program";
  for k = 0 to n - 1 do
    let buf, len = gen k in
    if len < 0 || len > Bytes.length buf then invalid_arg "Emit.run_batch";
    ctx.input <- Bytes.unsafe_to_string buf;
    ctx.input_len <- len;
    let out =
      match clock with
      | None -> run_current t ctx ~fuel ~max_depth
      | Some now ->
          let t0 = now () in
          let out = run_current t ctx ~fuel ~max_depth in
          vm_s (now () -. t0);
          out
    in
    sink k out
  done
