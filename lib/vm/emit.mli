(** Per-subject native code emission — the fourth execution engine.

    Where {!Compile} partially evaluates a {!Interp.prepared} CFG into
    a closure tree at runtime, this module prints it as straight-line
    OCaml source — superblock chains, inlined comparisons, baked
    feedback probes per {!Compile.spec}, folded Ball–Larus adds, cmplog
    taps — compiles the source out-of-process ([ocamlfind ocamlopt
    -shared], falling back to [ocamlc] bytecode where native Dynlink is
    unavailable), and loads the artifact via {!Dynlink} through a
    registration side-channel. Generated code runs against the
    unmodified pooled {!Interp.exec_ctx} and replicates the
    interpreter's observable semantics exactly — fuel burn placement,
    evaluation order, crash kinds/sites/stacks, [h_cmp] timing,
    [blocks_executed] — with the same bulk-burn + careful-replay
    discipline as the fused engine (DESIGN §13, §15); the differential
    suite enforces this against the boxed reference interpreter.

    Artifacts are cached on disk keyed by a content hash of the
    resolved IR, the spec, the cmplog flag, the compiler version and
    the emitter version, so a campaign pays the compile cost once ever
    per subject. Every fallible step ({!instance}, {!preload}) returns
    [Error reason] rather than raising: callers degrade to the fused
    closure engine and surface the reason through their own telemetry
    (the fuzz layer's [emit.fallbacks] metric and [emit_fallback]
    event). Setting [PATHFUZZ_EMIT_FAIL=1] in the environment forces
    every instantiation to fail — the fallback path's test hook. *)

type t

(** {2 Artifact cache} *)

(** Override the on-disk artifact cache directory (highest
    precedence). Defaults, in order: [$PATHFUZZ_EMIT_CACHE],
    [$XDG_CACHE_HOME/pathfuzz-emit], [$HOME/.cache/pathfuzz-emit], a
    path under the system temp dir. The directory is created on
    first use. *)
val set_cache_dir : string -> unit

(** The cache directory currently in effect. *)
val cache_dir : unit -> string

(** Bumped whenever generated code changes shape; part of the cache
    key, so stale artifacts from older emitters are never loaded. *)
val emitter_version : int

(** {2 Instantiation} *)

(** Emit + compile + load (or reuse a cached artifact for) one
    [(prepared, spec, cmplog)] triple and return a runnable instance.
    [plans] as in {!Compile.compile} — consulted only under
    [Sfull Path], defaulting to [Ball_larus.of_program]. Each call
    returns an instance with private mutable probe state, so distinct
    shards/domains each take their own. All failures (no compiler,
    compile error, Dynlink refusal, forced [PATHFUZZ_EMIT_FAIL]) come
    back as [Error reason]. *)
val instance :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?cmplog:bool ->
  Interp.prepared ->
  Compile.spec ->
  (t, string) result

(** Batch-compile many triples into a handful of compilation units
    (amortising process-spawn + ocamlopt startup across subjects) and
    prime the in-process registry, so subsequent {!instance} calls hit.
    Returns the number of triples that are now servable; failures are
    skipped silently (the corresponding {!instance} call reports the
    reason). *)
val preload : (Interp.prepared * Compile.spec * bool) list -> int

(** {2 Campaign binding + execution}

    Mirrors of the {!Compile} equivalents; see there for semantics. *)

val bind :
  t -> trace:Pathcov.Coverage_map.t -> h_cmp:(int -> int -> unit) -> unit

(** The signal accumulated by the last [Ssignal] execution. *)
val signal : t -> int

val run :
  ?fuel:int -> ?max_depth:int -> t -> Interp.exec_ctx -> input:string -> Interp.outcome

val run_sub :
  ?fuel:int -> ?max_depth:int -> t -> Interp.exec_ctx -> buf:Bytes.t -> len:int -> Interp.outcome

val run_batch :
  ?fuel:int ->
  ?max_depth:int ->
  ?clock:(unit -> float) ->
  ?vm_s:(float -> unit) ->
  t ->
  Interp.exec_ctx ->
  n:int ->
  gen:(int -> Bytes.t * int) ->
  sink:(int -> Interp.outcome -> unit) ->
  unit

(** {2 Plugin side-channel}

    The registration protocol between a Dynlink'd artifact and the
    host. Generated modules call {!register} from their initialiser;
    the host drains registrations right after [Dynlink.loadfile]
    returns, under a global lock, so concurrent loaders never observe
    each other's pending entries. User code never calls these. *)

(** What a generated module hands the host: rebind/reset/read hooks
    over its private probe state plus the specialised entry point. *)
type raw = {
  r_set_trace : Pathcov.Coverage_map.t -> unit;
  r_set_cmp : (int -> int -> unit) -> unit;
  r_reset : unit -> unit;  (** clear probe state before an execution *)
  r_signal : unit -> int;  (** last [Ssignal] hash; [0] otherwise *)
  r_enter : Interp.exec_ctx -> unit;  (** run main on a primed context *)
}

(** [register ~key make]: called by generated code at load time. [make]
    allocates a fresh private probe state per call. *)
val register : key:string -> (unit -> raw) -> unit

(** {2 Introspection}

    Process-global tallies (atomics — artifacts are shared across
    shards/domains through one registry). [compile_s] is wall time
    spent inside out-of-process compiler invocations. *)

type stats = {
  cache_hits : int;  (** instance/preload served from registry or disk *)
  cache_misses : int;  (** compilation units actually compiled *)
  fallbacks : int;  (** {!note_fallback} calls — callers degrading *)
  compile_s : float;
}

val stats : unit -> stats

(** Record one caller-side degradation to the fused engine (the fuzz
    layer calls this when {!instance} fails and it falls back). *)
val note_fallback : unit -> unit
