(** Staged compilation of a prepared MiniC program into OCaml closures —
    the second execution engine, threaded-code style.

    [Interp] walks the resolved IR per execution: every expression node
    re-matches its constructor, every instruction re-dispatches, and
    every block/edge/return event goes through a devirtualised hook call
    whether or not the feedback mode cares. [compile] pays all of that
    once: it partially evaluates the CFG into one closure per basic
    block (forward references resolved through a captured block table
    read at call time), expressions into closure trees with operators,
    slots, sites and constants baked in, and — the point — the feedback
    listener itself into per-site probe closures generated at compile
    time from the {!spec}. A probe that a (site, mode) pair cannot fire
    (an edge that is no Ball–Larus operation, any probe under the null
    spec) is simply not emitted: the compiled code for it is a direct
    jump.

    Three further things are resolved at compile time that the
    interpreter re-derives per event:

    - {b slot typing}: a whole-program may-hold-array fixpoint proves
      most locals and globals int-only, so their loads/stores compile to
      single unchecked table accesses instead of the tagged two-table
      probe (sound over-approximation: a slot the analysis calls
      int-only can never observe an array at runtime);
    - {b fuel}: straight-line instruction runs between calls pre-pay
      their fuel in one subtraction, falling back to the exact
      per-instruction burn chain when the budget is nearly exhausted —
      the hang point and everything a mid-segment crash can observe stay
      bit-identical;
    - {b branches}: comparison and negation conditions fuse into the
      branch, skipping the 1/0 materialisation ([h_cmp] still fires
      between operand evaluation and the jump).

    Compiled code runs against the unmodified pooled {!Interp.exec_ctx}
    — frames, pools, the touched-globals journal, fuel, the int call
    stack and crash materialisation are shared with the interpreter —
    and replicates its observable semantics exactly: same evaluation
    order, same crash kinds and sites, same [h_cmp] timing, same
    [blocks_executed]. The differential suite pins compiled vs the boxed
    reference interpreter on random programs and on every subject
    seed/witness, per mode.

    Artifacts are cacheable: all per-campaign state (the bound trace
    map, the cmplog probe, listener registers, the activation depth, the
    probe-pruning table) lives in a mutable {!cstate} rebound via
    {!bind}, so one compiled artifact per [(prepared, spec)] serves
    every campaign on a domain — {!cached} memoises per domain via
    [Domain.DLS]. Sharded campaigns must {!compile} fresh per shard
    instead: [cstate] is single-threaded. *)

open Interp

(** What gets baked in. [Snone] is the bare program (the throughput
    bench's "none" row); [Ssignal] folds the whole tagged execution
    event stream (call/block/ret) into a rolling hash — the selective-
    tracing novelty signal — and nothing else; [Sfull mode] bakes the
    corresponding {!Pathcov.Feedback} listener in as per-site probes. *)
type spec = Snone | Ssignal | Sfull of Pathcov.Feedback.mode

let spec_name = function
  | Snone -> "none"
  | Ssignal -> "signal"
  | Sfull m -> Pathcov.Feedback.mode_name m

(* Per-campaign (rebindable) listener state. One record per artifact;
   probes read it through the closure environment, so rebinding [trace]
   or [h_cmp] retargets every probe at once. [depth] replaces the
   interpreter's threaded depth argument: block closures are binary
   (ctx, frame) and only call sites and function entries touch the
   cell. *)
type cstate = {
  mutable trace : Pathcov.Coverage_map.t;
  mutable h_cmp : int -> int -> unit;
  mutable depth : int;  (** current activation depth *)
  mutable prev : int;  (** edge / pathafl previous-block register *)
  hist : int array;  (** ngram history ring (length n, else empty) *)
  mutable pos : int;
  mutable regs : int array;  (** Ball–Larus path registers, a stack *)
  mutable top : int;
  mutable rolling : int;  (** pathafl whole-program rolling hash *)
  mutable sig_h : int;  (** Ssignal event-stream hash *)
  mutable pruned : Bytes.t;  (** per-fid path-commit elision gate *)
  (* introspection tallies — plain stores on paths that never feed back
     into execution, so they are trajectory-invisible *)
  mutable stat_rollbacks : int;
      (** bulk-burn fast paths abandoned for a careful replay *)
  mutable stat_careful_units : int;
      (** fuel units re-burned one at a time by those replays *)
  (* static superblock-fusion shape, filled once at compile time *)
  mutable stat_chains : int;  (** fused chains emitted *)
  mutable stat_chain_blocks : int;  (** blocks covered by fused chains *)
  mutable stat_chain_max : int;  (** longest fused chain (blocks) *)
  mutable stat_dup_instrs : int;  (** instructions copied by tail duplication *)
}

type t = {
  prepared : prepared;
  spec : spec;
  cmplog : bool;  (** were [h_cmp] calls compiled into comparisons? *)
  fused : bool;  (** was superblock fusion applied? *)
  cs : cstate;
  fentries : (exec_ctx -> frame -> unit) array;
  main_zero : int array;
      (** [main]'s definite-assignment residue (entry frames come from
          {!Interp.acquire_raw}, so the residue is zeroed by hand) *)
  pruned_zero : Bytes.t;  (** all-live table (no probe elided) *)
  pruned_live : Bytes.t;  (** the self-pruning table {!prune_fid} edits *)
  path_universe : int array array;
      (** per function: every map key its path commits can produce
          (unwrapped; [[||]] when the function's path count exceeds the
          pruning bound, or for non-path specs) *)
}

(* ------------------------------------------------------------------ *)
(* Selective-tracing signal: a 62-bit rolling hash over the tagged
   event stream. Blocks alone would conflate recursion with looping;
   with call/block/ret tags the per-activation block sequences — and
   hence every edge — are derivable from the stream, so signal equality
   implies trace equality under every feedback mode (modulo hash
   collisions; see DESIGN §12). Both engines must compute bit-identical
   signals, so the in-interpreter hook variant below shares these.

   The mixer is xor-then-multiply (xorshift*-style; odd multiplier, so
   each step is a bijection of the accumulator). A rotate-xor mixer is
   NOT acceptable here: it is linear over GF(2) with rotation period 62,
   so the hash only sees the XOR of tags grouped by stream position mod
   62 — compensating loop-iteration patterns collide within a few
   thousand executions and break skip invisibility (observed on cflow). *)

let[@inline] sig_mix h k = ((h lxor k) * 0x2545F4914F6CDD1D) land max_int
let sig_call_tag fid = Pathcov.Feedback.block_key fid 0 + 0x1351
let sig_block_tag fid b = Pathcov.Feedback.block_key fid b
let sig_ret_tag fid b = Pathcov.Feedback.block_key fid b lxor 0x6b43

(** The interpreter-engine signal listener: same hash, driven by hooks.
    [cell] accumulates across one execution; reset it to 0 first. *)
let signal_hooks (p : prepared) ~(cell : int ref) : hooks =
  let block_tags =
    Array.mapi
      (fun fid (f : rfunc) ->
        Array.init (Array.length f.rblocks) (fun b -> sig_block_tag fid b))
      p.rfuncs
  in
  let ret_tags =
    Array.mapi
      (fun fid (f : rfunc) ->
        Array.init (Array.length f.rblocks) (fun b -> sig_ret_tag fid b))
      p.rfuncs
  in
  let call_tags =
    Array.init (Array.length p.rfuncs) (fun fid -> sig_call_tag fid)
  in
  {
    no_hooks with
    h_call = (fun fid -> cell := sig_mix !cell (Array.unsafe_get call_tags fid));
    h_block =
      (fun fid b ->
        cell := sig_mix !cell (Array.unsafe_get (Array.unsafe_get block_tags fid) b));
    h_ret =
      (fun fid b ->
        cell := sig_mix !cell (Array.unsafe_get (Array.unsafe_get ret_tags fid) b));
  }

(* ------------------------------------------------------------------ *)
(* Probe generation: compile-time per-site closures, or None = the
   probe is not emitted at all. *)

type probes = {
  pc : int -> (unit -> unit) option;  (** fid *)
  pb : int -> int -> (unit -> unit) option;  (** fid block *)
  pe : int -> int -> int -> (unit -> unit) option;  (** fid src dst *)
  pr : int -> int -> (unit -> unit) option;  (** fid block (return) *)
  pe_add : int -> int -> int -> int option;
      (** Superblock-fusion query: [Some k] means the edge's only effect
          is adding [k] to the current Ball–Larus register ([k = 0]: no
          effect at all), so consecutive fused edges may fold their
          constants into one deferred add; [None] means the probe must
          fire in place (it reads or commits the register, or emits an
          event whose stream position is observable). Must agree with
          {!pe}: an edge reported [Some _] is exactly one whose [pe]
          either is [None] or only adds to the register. *)
  padd : (int -> unit) option;
      (** Apply a folded (nonzero) register add — same top-of-stack guard
          as the per-edge closures it replaces. [None] when the spec has
          no register adds to fold (then [pe_add] never reports a nonzero
          constant). *)
  emit_cmp : bool;  (** compile [cs.h_cmp] calls into comparisons *)
}

let probes_none =
  {
    pc = (fun _ -> None);
    pb = (fun _ _ -> None);
    pe = (fun _ _ _ -> None);
    pr = (fun _ _ -> None);
    pe_add = (fun _ _ _ -> Some 0);
    padd = None;
    emit_cmp = false;
  }

let probes_signal (cs : cstate) =
  {
    probes_none with
    pc =
      (fun fid ->
        let k = sig_call_tag fid in
        Some (fun () -> cs.sig_h <- sig_mix cs.sig_h k));
    pb =
      (fun fid b ->
        let k = sig_block_tag fid b in
        Some (fun () -> cs.sig_h <- sig_mix cs.sig_h k));
    pr =
      (fun fid b ->
        let k = sig_ret_tag fid b in
        Some (fun () -> cs.sig_h <- sig_mix cs.sig_h k));
  }

let probes_block (cs : cstate) =
  {
    probes_none with
    emit_cmp = true;
    pb =
      (fun fid b ->
        let key = Pathcov.Feedback.block_key fid b in
        Some (fun () -> Pathcov.Coverage_map.hit cs.trace key));
  }

let probes_edge (cs : cstate) =
  {
    probes_none with
    emit_cmp = true;
    pb =
      (fun fid b ->
        let cur = Pathcov.Feedback.block_key fid b in
        Some
          (fun () ->
            Pathcov.Coverage_map.hit cs.trace (cur lxor cs.prev);
            cs.prev <- cur lsr 1));
  }

let probes_ngram (cs : cstate) n =
  {
    probes_none with
    emit_cmp = true;
    pb =
      (fun fid b ->
        let key = Pathcov.Feedback.block_key fid b in
        Some
          (fun () ->
            Array.unsafe_set cs.hist (cs.pos mod n) key;
            cs.pos <- cs.pos + 1;
            let h = ref 0 in
            for i = 0 to n - 1 do
              h := !h lxor (Array.unsafe_get cs.hist i lsr (i land 15))
            done;
            Pathcov.Coverage_map.hit cs.trace !h));
  }

(* Path probes: the Ball–Larus operation per edge is resolved at compile
   time — edges carrying no operation compile to direct jumps, register
   increments bake their constant in, and commits bake (salt, add/reset)
   in. Commits additionally consult the per-function pruning gate: an
   elided commit skips only the map write (the register discipline is
   untouched, so later commits in the same run stay exact). *)
let path_salt (f : Minic.Ir.func) = Hashtbl.hash f.Minic.Ir.name * 0x9e3779b1

let probes_path (cs : cstate) (p : prepared)
    (plans : Pathcov.Ball_larus.program_plans) =
  let salts = Array.map path_salt p.prog.funcs in
  {
    probes_none with
    emit_cmp = true;
    pc =
      (fun _fid ->
        Some
          (fun () ->
            if cs.top = Array.length cs.regs then begin
              let bigger = Array.make (2 * cs.top) 0 in
              Array.blit cs.regs 0 bigger 0 cs.top;
              cs.regs <- bigger
            end;
            Array.unsafe_set cs.regs cs.top 0;
            cs.top <- cs.top + 1));
    pe =
      (fun fid src dst ->
        match Pathcov.Ball_larus.on_edge plans.plans.(fid) ~src ~dst with
        | None -> None
        | Some (Pathcov.Ball_larus.Add k) ->
            Some
              (fun () ->
                if cs.top > 0 then begin
                  let r = cs.regs in
                  let i = cs.top - 1 in
                  Array.unsafe_set r i (Array.unsafe_get r i + k)
                end)
        | Some (Pathcov.Ball_larus.Commit_back { add; reset }) ->
            let salt = salts.(fid) in
            Some
              (fun () ->
                if cs.top > 0 then begin
                  let r = cs.regs in
                  let i = cs.top - 1 in
                  if Bytes.unsafe_get cs.pruned fid = '\000' then
                    Pathcov.Coverage_map.hit cs.trace
                      (((Array.unsafe_get r i + add) lxor salt) land max_int);
                  Array.unsafe_set r i reset
                end));
    pe_add =
      (fun fid src dst ->
        match Pathcov.Ball_larus.on_edge plans.plans.(fid) ~src ~dst with
        | None -> Some 0
        | Some (Pathcov.Ball_larus.Add k) -> Some k
        | Some (Pathcov.Ball_larus.Commit_back _) -> None);
    padd =
      Some
        (fun k ->
          if cs.top > 0 then begin
            let r = cs.regs in
            let i = cs.top - 1 in
            Array.unsafe_set r i (Array.unsafe_get r i + k)
          end);
    pr =
      (fun fid block ->
        let ra = plans.plans.(fid).Pathcov.Ball_larus.ret_add.(block) in
        let salt = salts.(fid) in
        Some
          (fun () ->
            if cs.top > 0 then begin
              let i = cs.top - 1 in
              if Bytes.unsafe_get cs.pruned fid = '\000' then
                Pathcov.Coverage_map.hit cs.trace
                  (((Array.unsafe_get cs.regs i + ra) lxor salt) land max_int);
              cs.top <- i
            end));
  }

let probes_pathafl (cs : cstate) (p : prepared) =
  let nsucc fid src =
    List.length
      (Minic.Ir.successors p.prog.funcs.(fid).blocks.(src).Minic.Ir.term)
  in
  let key_event k =
    cs.rolling <- (((cs.rolling lsl 13) lor (cs.rolling lsr 49)) lxor k) land max_int;
    Pathcov.Coverage_map.hit cs.trace cs.rolling
  in
  {
    probes_none with
    emit_cmp = true;
    pc =
      (fun fid ->
        let k = Pathcov.Feedback.block_key fid 0 + 1 in
        Some (fun () -> key_event k));
    pb =
      (fun fid b ->
        let cur = Pathcov.Feedback.block_key fid b in
        Some
          (fun () ->
            Pathcov.Coverage_map.hit cs.trace (cur lxor cs.prev);
            cs.prev <- cur lsr 1));
    pe =
      (fun fid src dst ->
        if nsucc fid src >= 2 then
          let k = Pathcov.Feedback.block_key fid src lxor (dst * 31) in
          Some (fun () -> key_event k)
        else None);
    pe_add =
      (fun fid src _dst -> if nsucc fid src >= 2 then None else Some 0);
  }

(* ------------------------------------------------------------------ *)
(* May-hold-array analysis.

   MiniC slots are dynamically typed: the interpreter keeps an int and
   an array table per frame and checks, per access, which one is live.
   Statically, though, almost every slot is int-only. A whole-program
   fixpoint over "may this slot ever hold an array" lets the compiler
   emit single unchecked loads/stores for int-only slots. Sources of
   array-ness: [array(n)] literals, loads from may-array slots, calls
   returning may-array, and array-declared globals; arrays propagate
   through assignment, argument passing, returns and global writes
   (globals are NOT statically typed — an int-declared global may be
   overwritten with an array). Everything else (arithmetic, comparisons,
   input reads) is int-valued, so the analysis is a sound
   over-approximation: a slot it calls int-only never holds an array. *)

type typing = {
  lmay : bool array array;  (** per (fid, local slot) *)
  gmay : bool array;  (** per global *)
}

let may_array_analysis (p : prepared) : typing =
  let lmay =
    Array.map (fun (f : rfunc) -> Array.make f.nlocals false) p.rfuncs
  in
  let gmay = Array.map (fun n -> n > 0) p.global_sizes in
  let rmay = Array.make (Array.length p.rfuncs) false in
  let changed = ref true in
  let expr_may fid (e : rexpr) =
    match e with
    | Rload (Local i, _) -> lmay.(fid).(i)
    | Rload (Global g, _) -> gmay.(g)
    | Rarray_make _ -> true
    | _ -> false
  in
  let set_slot fid (s : slot) =
    match s with
    | Local i ->
        if not lmay.(fid).(i) then begin
          lmay.(fid).(i) <- true;
          changed := true
        end
    | Global g ->
        if not gmay.(g) then begin
          gmay.(g) <- true;
          changed := true
        end
  in
  while !changed do
    changed := false;
    Array.iteri
      (fun fid (f : rfunc) ->
        Array.iter
          (fun (b : rblock) ->
            Array.iter
              (fun ins ->
                match ins with
                | Rassign (dst, e) -> if expr_may fid e then set_slot fid dst
                | Rcall { dst; callee; args; _ } ->
                    Array.iteri
                      (fun k a ->
                        if expr_may fid a then
                          set_slot callee p.rfuncs.(callee).param_slots.(k))
                      args;
                    (match dst with
                    | Some d when rmay.(callee) -> set_slot fid d
                    | _ -> ())
                | Rstore _ | Rbug _ | Rcheck _ -> ())
              b.rinstrs;
            match b.rterm with
            | Rret (Some e, _) when expr_may fid e && not rmay.(fid) ->
                rmay.(fid) <- true;
                changed := true
            | _ -> ())
          f.rblocks)
      p.rfuncs
  done;
  { lmay; gmay }

(* ------------------------------------------------------------------ *)
(* Definite-assignment analysis.

   MiniC locals are zero-initialised, which the interpreter implements
   as a whole-frame [Array.fill] per activation ([Interp.acquire]).
   Per function, a must-assign forward dataflow proves which locals are
   written before every possible read; only the residue needs zeroing,
   so compiled call sites use [Interp.acquire_raw] plus a (usually
   empty) per-callee slot list. Sound over all paths: a slot outside
   the list can never be read before it is written, so the stale value
   a reused pooled frame carries is unobservable — including by crashes
   (the analysis covers every expression position, and frames are never
   reflected into outcomes). *)

let zero_slots_analysis (p : prepared) : int array array =
  Array.map
    (fun (f : rfunc) ->
      let n = f.nlocals in
      if n = 0 then [||]
      else begin
        let nb = Array.length f.rblocks in
        (* per block: [gen] = slots assigned; [ue] = slots read before
           any in-block assignment (upward-exposed reads) *)
        let gen = Array.init nb (fun _ -> Array.make n false) in
        let ue = Array.init nb (fun _ -> Array.make n false) in
        let preds = Array.make nb [] in
        let succs = function
          | Rgoto l -> [ l ]
          | Rbranch (_, tl, fl, _) -> if tl = fl then [ tl ] else [ tl; fl ]
          | Rret _ -> []
        in
        Array.iteri
          (fun b (blk : rblock) ->
            List.iter (fun s -> preds.(s) <- b :: preds.(s)) (succs blk.rterm))
          f.rblocks;
        Array.iteri
          (fun b (blk : rblock) ->
            let g = gen.(b) and u = ue.(b) in
            let rec reads (e : rexpr) =
              match e with
              | Rconst _ | Rlen -> ()
              | Rload (Local i, _) -> if not g.(i) then u.(i) <- true
              | Rload (Global _, _) -> ()
              | Rindex (a, i, _) ->
                  reads a;
                  reads i
              | Rarith (_, a, b', _) | Rcmp (_, a, b') ->
                  reads a;
                  reads b'
              | Rneg a | Rnot a | Rbnot a | Rin a | Rabs a
              | Rarray_make (a, _)
              | Rarray_len (a, _) ->
                  reads a
            in
            let def = function Local i -> g.(i) <- true | Global _ -> () in
            Array.iter
              (fun ins ->
                match ins with
                | Rassign (dst, e) ->
                    reads e;
                    def dst
                | Rstore (a, i, v, _) ->
                    reads a;
                    reads i;
                    reads v
                | Rcall { dst; args; _ } ->
                    Array.iter reads args;
                    (match dst with Some d -> def d | None -> ())
                | Rbug _ -> ()
                | Rcheck (c, _, _) -> reads c)
              blk.rinstrs;
            match blk.rterm with
            | Rgoto _ | Rret (None, _) -> ()
            | Rbranch (c, _, _, _) -> reads c
            | Rret (Some e, _) -> reads e)
          f.rblocks;
        (* Must-assign fixpoint: IN(b) = meet over incoming edges of
           IN(pred) ∪ gen(pred); the function-entry edge contributes
           exactly the parameter slots, so IN(0) starts there and only
           shrinks. Unreachable blocks keep ⊤ and contribute nothing. *)
        let inb =
          Array.init nb (fun b ->
              if b = 0 then begin
                let a = Array.make n false in
                Array.iter
                  (function Local i -> a.(i) <- true | Global _ -> ())
                  f.param_slots;
                a
              end
              else Array.make n true)
        in
        let changed = ref true in
        while !changed do
          changed := false;
          for b = 0 to nb - 1 do
            let cur = inb.(b) in
            List.iter
              (fun pb ->
                let pin = inb.(pb) and pg = gen.(pb) in
                for i = 0 to n - 1 do
                  if cur.(i) && not (pin.(i) || pg.(i)) then begin
                    cur.(i) <- false;
                    changed := true
                  end
                done)
              preds.(b)
          done
        done;
        let need = Array.make n false in
        for b = 0 to nb - 1 do
          for i = 0 to n - 1 do
            if ue.(b).(i) && not inb.(b).(i) then need.(i) <- true
          done
        done;
        let out = ref [] in
        for i = n - 1 downto 0 do
          if need.(i) then out := i :: !out
        done;
        Array.of_list !out
      end)
    p.rfuncs

(* ------------------------------------------------------------------ *)
(* Expression compilation. Closure trees mirror [Interp.eval_int] /
   [eval_arr] node for node: same left-to-right evaluation (explicit
   lets — OCaml operator arguments evaluate right-to-left), same crash
   kinds and sites, same h_cmp timing (after both operands). Slots the
   typing proves int-only compile to unchecked single-table accesses
   (and a [caexp] on one becomes the constant type error the
   interpreter's [no_arr] probe would produce). *)

type iexp = exec_ctx -> frame -> int
type aexp = exec_ctx -> frame -> int array

(* Compile-time environment: listener state + the typing views needed by
   the function being compiled. *)
type env = {
  cs : cstate;
  emit_cmp : bool;
  lmay : bool array array;  (** all functions (for call-arg stores) *)
  ma : bool array;  (** current function's locals (= [lmay.(fid)]) *)
  gma : bool array;  (** globals *)
  zeroes : int array array;
      (** per function: local slots to zero at frame entry (the
          definite-assignment residue) *)
}

let type_err site what = raise (Crash_exn (Crash.Type_error what, site))

(* Effect-free int operands — constants and slots the typing proves
   int-only — fuse into their consumer without a closure call: their
   fetch can neither crash, emit a cmp event, nor change under another
   operand's evaluation, so fetch order is unobservable. *)
type simple = Sconst of int | Sloc of int | Sglob of int

let simple_of (env : env) (e : rexpr) : simple option =
  match e with
  | Rconst n -> Some (Sconst n)
  | Rload (Local i, _) when not env.ma.(i) -> Some (Sloc i)
  | Rload (Global g, _) when not env.gma.(g) -> Some (Sglob g)
  | _ -> None

(* Direct (non-closure) calls for the fused forms; [op] is
   loop-invariant so the dispatch predicts perfectly. *)
let[@inline] apply_arith op a b site =
  match op with
  | Aadd -> a + b
  | Asub -> a - b
  | Amul -> a * b
  | Adiv -> if b = 0 then raise (Crash_exn (Crash.Div_by_zero, site)) else a / b
  | Arem ->
      if b = 0 then raise (Crash_exn (Crash.Div_by_zero, site)) else a mod b
  | Aband -> a land b
  | Abor -> a lor b
  | Abxor -> a lxor b
  | Ashl -> a lsl min 62 (b land 63)
  | Ashr -> a asr min 62 (b land 63)

let[@inline] apply_cmp op a b =
  match op with
  | Ceq -> a = b
  | Cne -> a <> b
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

let rec cexp (env : env) (e : rexpr) : iexp =
  match e with
  | Rconst n -> fun _ _ -> n
  | Rload (Local i, site) ->
      if env.ma.(i) then
        fun _ fr ->
          if fr.f_arrs_live && Array.unsafe_get fr.f_arrs i != no_arr then
            type_err site "int expected"
          else Array.unsafe_get fr.f_ints i
      else fun _ fr -> Array.unsafe_get fr.f_ints i
  | Rload (Global g, site) ->
      if env.gma.(g) then
        fun ctx _ ->
          if Array.unsafe_get ctx.garrs g != no_arr then
            type_err site "int expected"
          else Array.unsafe_get ctx.gints g
      else fun ctx _ -> Array.unsafe_get ctx.gints g
  | Rindex (b, i, site) -> begin
      let fb = caexp env site b in
      match simple_of env i with
      | Some (Sconst k) ->
          fun ctx fr ->
            let a = fb ctx fr in
            if k < 0 || k >= Array.length a then
              raise
                (Crash_exn
                   (Crash.Out_of_bounds { len = Array.length a; idx = k }, site))
            else Array.unsafe_get a k
      | Some (Sloc li) ->
          fun ctx fr ->
            let a = fb ctx fr in
            let idx = Array.unsafe_get fr.f_ints li in
            if idx < 0 || idx >= Array.length a then
              raise
                (Crash_exn
                   (Crash.Out_of_bounds { len = Array.length a; idx }, site))
            else Array.unsafe_get a idx
      | Some (Sglob g) ->
          fun ctx fr ->
            let a = fb ctx fr in
            let idx = Array.unsafe_get ctx.gints g in
            if idx < 0 || idx >= Array.length a then
              raise
                (Crash_exn
                   (Crash.Out_of_bounds { len = Array.length a; idx }, site))
            else Array.unsafe_get a idx
      | None ->
          let fi = cexp env i in
          fun ctx fr ->
            let a = fb ctx fr in
            let idx = fi ctx fr in
            if idx < 0 || idx >= Array.length a then
              raise
                (Crash_exn
                   (Crash.Out_of_bounds { len = Array.length a; idx }, site))
            else Array.unsafe_get a idx
    end
  | Rarith (op, e1, e2, site) -> begin
      match (simple_of env e1, simple_of env e2) with
      | Some s1, Some s2 -> begin
          match (s1, s2) with
          | Sconst a, Sconst b -> fun _ _ -> apply_arith op a b site
          | Sloc i, Sconst k ->
              fun _ fr -> apply_arith op (Array.unsafe_get fr.f_ints i) k site
          | Sconst k, Sloc i ->
              fun _ fr -> apply_arith op k (Array.unsafe_get fr.f_ints i) site
          | Sloc i, Sloc j ->
              fun _ fr ->
                apply_arith op
                  (Array.unsafe_get fr.f_ints i)
                  (Array.unsafe_get fr.f_ints j)
                  site
          | Sglob g, Sconst k ->
              fun ctx _ -> apply_arith op (Array.unsafe_get ctx.gints g) k site
          | Sconst k, Sglob g ->
              fun ctx _ -> apply_arith op k (Array.unsafe_get ctx.gints g) site
          | Sglob g, Sloc i ->
              fun ctx fr ->
                apply_arith op
                  (Array.unsafe_get ctx.gints g)
                  (Array.unsafe_get fr.f_ints i)
                  site
          | Sloc i, Sglob g ->
              fun ctx fr ->
                apply_arith op
                  (Array.unsafe_get fr.f_ints i)
                  (Array.unsafe_get ctx.gints g)
                  site
          | Sglob g, Sglob h ->
              fun ctx _ ->
                apply_arith op
                  (Array.unsafe_get ctx.gints g)
                  (Array.unsafe_get ctx.gints h)
                  site
        end
      | Some s1, None -> begin
          let f2 = cexp env e2 in
          match s1 with
          | Sconst k ->
              fun ctx fr ->
                let b = f2 ctx fr in
                apply_arith op k b site
          | Sloc i ->
              fun ctx fr ->
                let a = Array.unsafe_get fr.f_ints i in
                let b = f2 ctx fr in
                apply_arith op a b site
          | Sglob g ->
              fun ctx fr ->
                let a = Array.unsafe_get ctx.gints g in
                let b = f2 ctx fr in
                apply_arith op a b site
        end
      | None, Some s2 -> begin
          let f1 = cexp env e1 in
          match s2 with
          | Sconst k ->
              fun ctx fr ->
                let a = f1 ctx fr in
                apply_arith op a k site
          | Sloc i ->
              fun ctx fr ->
                let a = f1 ctx fr in
                apply_arith op a (Array.unsafe_get fr.f_ints i) site
          | Sglob g ->
              fun ctx fr ->
                let a = f1 ctx fr in
                apply_arith op a (Array.unsafe_get ctx.gints g) site
        end
      | None, None -> (
      let f1 = cexp env e1 in
      let f2 = cexp env e2 in
      match op with
      | Aadd ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            a + b
      | Asub ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            a - b
      | Amul ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            a * b
      | Adiv ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            if b = 0 then raise (Crash_exn (Crash.Div_by_zero, site)) else a / b
      | Arem ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            if b = 0 then raise (Crash_exn (Crash.Div_by_zero, site))
            else a mod b
      | Aband ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            a land b
      | Abor ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            a lor b
      | Abxor ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            a lxor b
      | Ashl ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            a lsl min 62 (b land 63)
      | Ashr ->
          fun ctx fr ->
            let a = f1 ctx fr in
            let b = f2 ctx fr in
            a asr min 62 (b land 63))
    end
  | Rcmp (op, e1, e2) -> begin
      match (simple_of env e1, simple_of env e2) with
      | Some s1, Some s2 -> begin
          let cs = env.cs in
          let emit = env.emit_cmp in
          match (s1, s2) with
          | Sconst a, Sconst b ->
              fun _ _ ->
                if emit then cs.h_cmp a b;
                if apply_cmp op a b then 1 else 0
          | Sloc i, Sconst k ->
              fun _ fr ->
                let a = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp a k;
                if apply_cmp op a k then 1 else 0
          | Sconst k, Sloc i ->
              fun _ fr ->
                let b = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp k b;
                if apply_cmp op k b then 1 else 0
          | Sloc i, Sloc j ->
              fun _ fr ->
                let a = Array.unsafe_get fr.f_ints i in
                let b = Array.unsafe_get fr.f_ints j in
                if emit then cs.h_cmp a b;
                if apply_cmp op a b then 1 else 0
          | Sglob g, Sconst k ->
              fun ctx _ ->
                let a = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp a k;
                if apply_cmp op a k then 1 else 0
          | Sconst k, Sglob g ->
              fun ctx _ ->
                let b = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp k b;
                if apply_cmp op k b then 1 else 0
          | Sglob g, Sloc i ->
              fun ctx fr ->
                let a = Array.unsafe_get ctx.gints g in
                let b = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp a b;
                if apply_cmp op a b then 1 else 0
          | Sloc i, Sglob g ->
              fun ctx fr ->
                let a = Array.unsafe_get fr.f_ints i in
                let b = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp a b;
                if apply_cmp op a b then 1 else 0
          | Sglob g, Sglob h ->
              fun ctx _ ->
                let a = Array.unsafe_get ctx.gints g in
                let b = Array.unsafe_get ctx.gints h in
                if emit then cs.h_cmp a b;
                if apply_cmp op a b then 1 else 0
        end
      | _ -> (
      let f1 = cexp env e1 in
      let f2 = cexp env e2 in
      let cs = env.cs in
      if env.emit_cmp then
        match op with
        | Ceq ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              if a = b then 1 else 0
        | Cne ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              if a <> b then 1 else 0
        | Clt ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              if a < b then 1 else 0
        | Cle ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              if a <= b then 1 else 0
        | Cgt ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              if a > b then 1 else 0
        | Cge ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              if a >= b then 1 else 0
      else
        match op with
        | Ceq ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              if a = b then 1 else 0
        | Cne ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              if a <> b then 1 else 0
        | Clt ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              if a < b then 1 else 0
        | Cle ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              if a <= b then 1 else 0
        | Cgt ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              if a > b then 1 else 0
        | Cge ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              if a >= b then 1 else 0)
    end
  | Rneg e ->
      let f = cexp env e in
      fun ctx fr -> -f ctx fr
  | Rnot e ->
      let f = cexp env e in
      fun ctx fr -> if f ctx fr = 0 then 1 else 0
  | Rbnot e ->
      let f = cexp env e in
      fun ctx fr -> lnot (f ctx fr)
  | Rin e -> begin
      match simple_of env e with
      | Some (Sconst k) ->
          fun ctx _ ->
            if k < 0 || k >= ctx.input_len then -1
            else Char.code (String.unsafe_get ctx.input k)
      | Some (Sloc li) ->
          fun ctx fr ->
            let i = Array.unsafe_get fr.f_ints li in
            if i < 0 || i >= ctx.input_len then -1
            else Char.code (String.unsafe_get ctx.input i)
      | Some (Sglob g) ->
          fun ctx _ ->
            let i = Array.unsafe_get ctx.gints g in
            if i < 0 || i >= ctx.input_len then -1
            else Char.code (String.unsafe_get ctx.input i)
      | None ->
          let f = cexp env e in
          fun ctx fr ->
            let i = f ctx fr in
            if i < 0 || i >= ctx.input_len then -1
            else Char.code (String.unsafe_get ctx.input i)
    end
  | Rlen -> fun ctx _ -> ctx.input_len
  | Rabs e ->
      let f = cexp env e in
      fun ctx fr -> abs (f ctx fr)
  | Rarray_make (_, site) -> fun _ _ -> type_err site "array in int context"
  | Rarray_len (e, site) ->
      let fa = caexp env site e in
      fun ctx fr -> Array.length (fa ctx fr)

and caexp (env : env) (site : int) (e : rexpr) : aexp =
  match e with
  | Rload (Local i, _) ->
      if env.ma.(i) then
        fun _ fr ->
          let a =
            if fr.f_arrs_live then Array.unsafe_get fr.f_arrs i else no_arr
          in
          if a == no_arr then type_err site "array expected" else a
      else fun _ _ -> type_err site "array expected"
  | Rload (Global g, _) ->
      if env.gma.(g) then
        fun ctx _ ->
          let a = Array.unsafe_get ctx.garrs g in
          if a == no_arr then type_err site "array expected" else a
      else fun _ _ -> type_err site "array expected"
  | Rarray_make (n, site') ->
      let fn = cexp env n in
      fun ctx fr ->
        let n = fn ctx fr in
        if n < 0 || n > max_alloc then
          raise (Crash_exn (Crash.Bad_alloc n, site'))
        else Array.make n 0
  | _ -> fun _ _ -> type_err site "array expected"

(* Branch conditions, fused: the comparison feeds the branch directly
   instead of materialising 1/0 and re-testing it. [h_cmp] still fires
   between operand evaluation and the jump, as in the interpreter. *)
let ccond (env : env) (e : rexpr) : exec_ctx -> frame -> bool =
  match e with
  | Rcmp (op, e1, e2) -> begin
      match (simple_of env e1, simple_of env e2) with
      | Some s1, Some s2 -> begin
          let cs = env.cs in
          let emit = env.emit_cmp in
          match (s1, s2) with
          | Sconst a, Sconst b ->
              fun _ _ ->
                if emit then cs.h_cmp a b;
                apply_cmp op a b
          | Sloc i, Sconst k ->
              fun _ fr ->
                let a = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp a k;
                apply_cmp op a k
          | Sconst k, Sloc i ->
              fun _ fr ->
                let b = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp k b;
                apply_cmp op k b
          | Sloc i, Sloc j ->
              fun _ fr ->
                let a = Array.unsafe_get fr.f_ints i in
                let b = Array.unsafe_get fr.f_ints j in
                if emit then cs.h_cmp a b;
                apply_cmp op a b
          | Sglob g, Sconst k ->
              fun ctx _ ->
                let a = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp a k;
                apply_cmp op a k
          | Sconst k, Sglob g ->
              fun ctx _ ->
                let b = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp k b;
                apply_cmp op k b
          | Sglob g, Sloc i ->
              fun ctx fr ->
                let a = Array.unsafe_get ctx.gints g in
                let b = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp a b;
                apply_cmp op a b
          | Sloc i, Sglob g ->
              fun ctx fr ->
                let a = Array.unsafe_get fr.f_ints i in
                let b = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp a b;
                apply_cmp op a b
          | Sglob g, Sglob h ->
              fun ctx _ ->
                let a = Array.unsafe_get ctx.gints g in
                let b = Array.unsafe_get ctx.gints h in
                if emit then cs.h_cmp a b;
                apply_cmp op a b
        end
      | Some s1, None -> begin
          let f2 = cexp env e2 in
          let cs = env.cs in
          let emit = env.emit_cmp in
          match s1 with
          | Sconst k ->
              fun ctx fr ->
                let b = f2 ctx fr in
                if emit then cs.h_cmp k b;
                apply_cmp op k b
          | Sloc i ->
              fun ctx fr ->
                let a = Array.unsafe_get fr.f_ints i in
                let b = f2 ctx fr in
                if emit then cs.h_cmp a b;
                apply_cmp op a b
          | Sglob g ->
              fun ctx fr ->
                let a = Array.unsafe_get ctx.gints g in
                let b = f2 ctx fr in
                if emit then cs.h_cmp a b;
                apply_cmp op a b
        end
      | None, Some s2 -> begin
          let f1 = cexp env e1 in
          let cs = env.cs in
          let emit = env.emit_cmp in
          match s2 with
          | Sconst k ->
              fun ctx fr ->
                let a = f1 ctx fr in
                if emit then cs.h_cmp a k;
                apply_cmp op a k
          | Sloc i ->
              fun ctx fr ->
                let a = f1 ctx fr in
                let b = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp a b;
                apply_cmp op a b
          | Sglob g ->
              fun ctx fr ->
                let a = f1 ctx fr in
                let b = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp a b;
                apply_cmp op a b
        end
      | None, None -> (
      let f1 = cexp env e1 in
      let f2 = cexp env e2 in
      let cs = env.cs in
      if env.emit_cmp then
        match op with
        | Ceq ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              a = b
        | Cne ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              a <> b
        | Clt ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              a < b
        | Cle ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              a <= b
        | Cgt ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              a > b
        | Cge ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              cs.h_cmp a b;
              a >= b
      else
        match op with
        | Ceq ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              a = b
        | Cne ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              a <> b
        | Clt ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              a < b
        | Cle ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              a <= b
        | Cgt ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              a > b
        | Cge ->
            fun ctx fr ->
              let a = f1 ctx fr in
              let b = f2 ctx fr in
              a >= b)
    end
  | Rnot e ->
      let f = cexp env e in
      fun ctx fr -> f ctx fr = 0
  | _ -> begin
      match simple_of env e with
      | Some (Sconst k) ->
          let v = k <> 0 in
          fun _ _ -> v
      | Some (Sloc i) -> fun _ fr -> Array.unsafe_get fr.f_ints i <> 0
      | Some (Sglob g) -> fun ctx _ -> Array.unsafe_get ctx.gints g <> 0
      | None ->
          let f = cexp env e in
          fun ctx fr -> f ctx fr <> 0
    end

(* [Interp.eval_into]: evaluate in [src] and store (int or array, no
   boxing) into [dst] of the destination frame. [dstma] is the may-array
   table of the frame being stored into — the callee's for argument
   passing, the current function's otherwise. *)
let cinto (env : env) ~(dstma : bool array) (dst : slot) (e : rexpr) :
    exec_ctx -> frame -> frame -> unit =
  let store_int : exec_ctx -> frame -> int -> unit =
    match dst with
    | Local i ->
        if dstma.(i) then
          fun _ dstf v ->
            Array.unsafe_set dstf.f_ints i v;
            if dstf.f_arrs_live && Array.unsafe_get dstf.f_arrs i != no_arr
            then Array.unsafe_set dstf.f_arrs i no_arr
            else ()
        else fun _ dstf v -> Array.unsafe_set dstf.f_ints i v
    | Global g ->
        if env.gma.(g) then
          fun ctx _ v ->
            touch_global ctx g;
            Array.unsafe_set ctx.gints g v;
            if Array.unsafe_get ctx.garrs g != no_arr then
              Array.unsafe_set ctx.garrs g no_arr
            else ()
        else
          fun ctx _ v ->
            touch_global ctx g;
            Array.unsafe_set ctx.gints g v
  in
  match e with
  | Rload ((Local i) as s, _) when env.ma.(i) ->
      fun ctx src dstf -> copy_slot ctx src s dstf dst
  | Rload ((Global g) as s, _) when env.gma.(g) ->
      fun ctx src dstf -> copy_slot ctx src s dstf dst
  | Rload (Local i, _) ->
      (* int-only source: a plain int move *)
      fun ctx src dstf -> store_int ctx dstf (Array.unsafe_get src.f_ints i)
  | Rload (Global g, _) ->
      fun ctx _ dstf -> store_int ctx dstf (Array.unsafe_get ctx.gints g)
  | Rarray_make (n, site) ->
      let fn = cexp env n in
      fun ctx src dstf ->
        let n = fn ctx src in
        if n < 0 || n > max_alloc then
          raise (Crash_exn (Crash.Bad_alloc n, site))
        else write_arr ctx dstf dst (Array.make n 0)
  | _ ->
      let f = cexp env e in
      fun ctx src dstf -> store_int ctx dstf (f ctx src)

(* [Interp.eval_ret]: evaluate a return expression into the return
   scratch. *)
let cret (env : env) (e : rexpr option) : exec_ctx -> frame -> unit =
  match e with
  | None ->
      fun ctx _ ->
        ctx.ret_a <- no_arr;
        ctx.ret_i <- 0
  | Some (Rload (Local i, _)) ->
      if env.ma.(i) then
        fun ctx fr ->
          let a =
            if fr.f_arrs_live then Array.unsafe_get fr.f_arrs i else no_arr
          in
          if a != no_arr then ctx.ret_a <- a
          else begin
            ctx.ret_a <- no_arr;
            ctx.ret_i <- Array.unsafe_get fr.f_ints i
          end
      else
        fun ctx fr ->
          ctx.ret_a <- no_arr;
          ctx.ret_i <- Array.unsafe_get fr.f_ints i
  | Some (Rload (Global g, _)) ->
      if env.gma.(g) then
        fun ctx _ ->
          let a = Array.unsafe_get ctx.garrs g in
          if a != no_arr then ctx.ret_a <- a
          else begin
            ctx.ret_a <- no_arr;
            ctx.ret_i <- Array.unsafe_get ctx.gints g
          end
      else
        fun ctx _ ->
          ctx.ret_a <- no_arr;
          ctx.ret_i <- Array.unsafe_get ctx.gints g
  | Some (Rarray_make (n, site)) ->
      let fn = cexp env n in
      fun ctx fr ->
        let n = fn ctx fr in
        if n < 0 || n > max_alloc then
          raise (Crash_exn (Crash.Bad_alloc n, site))
        else ctx.ret_a <- Array.make n 0
  | Some e ->
      let f = cexp env e in
      fun ctx fr ->
        ctx.ret_a <- no_arr;
        ctx.ret_i <- f ctx fr

(* ------------------------------------------------------------------ *)
(* Instruction / block / function compilation.

   Straight-line instruction runs between calls ("segments") pre-pay
   their fuel in one subtraction: the dispatcher takes the fast body
   (no per-instruction accounting) whenever the budget strictly covers
   the whole segment — in which case the interpreter could not have
   hung anywhere inside it and ends the segment with the identical fuel
   value — and otherwise rolls the subtraction back and runs the exact
   per-instruction burn chain, reproducing the interpreter's hang point
   (and the burn-before-execute ordering a mid-segment crash observes)
   bit for bit. Calls always burn exactly: the callee shares the fuel
   pool and must see the same budget as under the interpreter. *)

type bfn = exec_ctx -> frame -> unit

(* One instruction, no fuel accounting (the pre-paid fast body),
   continuing into [rest]. *)
let cinstr_fast (env : env) (ins : rinstr) (rest : bfn) : bfn =
  match ins with
  (* A store to an int-only local: the typing guarantees the source
     expression is statically int-valued (an array-yielding source would
     have marked the destination may-array), so this is a bare int
     write — no [cinto] indirection, no array-table probe. *)
  | Rassign (Local d, e) when not env.ma.(d) -> begin
      (* Superinstructions: the hottest source shapes (constants, moves,
         simple-operand arithmetic, input reads) write the destination
         straight from the assignment closure — no [cexp] hop. *)
      match e with
      | Rconst k ->
          fun ctx fr ->
            Array.unsafe_set fr.f_ints d k;
            rest ctx fr
      | Rload (Local s, _) when not env.ma.(s) ->
          fun ctx fr ->
            Array.unsafe_set fr.f_ints d (Array.unsafe_get fr.f_ints s);
            rest ctx fr
      | Rload (Global g, _) when not env.gma.(g) ->
          fun ctx fr ->
            Array.unsafe_set fr.f_ints d (Array.unsafe_get ctx.gints g);
            rest ctx fr
      | Rarith (op, e1, e2, site) -> begin
          match (simple_of env e1, simple_of env e2) with
          | Some (Sloc i), Some (Sconst k) ->
              fun ctx fr ->
                Array.unsafe_set fr.f_ints d
                  (apply_arith op (Array.unsafe_get fr.f_ints i) k site);
                rest ctx fr
          | Some (Sconst k), Some (Sloc i) ->
              fun ctx fr ->
                Array.unsafe_set fr.f_ints d
                  (apply_arith op k (Array.unsafe_get fr.f_ints i) site);
                rest ctx fr
          | Some (Sloc i), Some (Sloc j) ->
              fun ctx fr ->
                Array.unsafe_set fr.f_ints d
                  (apply_arith op
                     (Array.unsafe_get fr.f_ints i)
                     (Array.unsafe_get fr.f_ints j)
                     site);
                rest ctx fr
          | Some (Sglob g), Some (Sconst k) ->
              fun ctx fr ->
                Array.unsafe_set fr.f_ints d
                  (apply_arith op (Array.unsafe_get ctx.gints g) k site);
                rest ctx fr
          | _ ->
              let f = cexp env e in
              fun ctx fr ->
                Array.unsafe_set fr.f_ints d (f ctx fr);
                rest ctx fr
        end
      | Rin a -> begin
          match simple_of env a with
          | Some (Sloc i) ->
              fun ctx fr ->
                let i = Array.unsafe_get fr.f_ints i in
                Array.unsafe_set fr.f_ints d
                  (if i < 0 || i >= ctx.input_len then -1
                   else Char.code (String.unsafe_get ctx.input i));
                rest ctx fr
          | _ ->
              let f = cexp env e in
              fun ctx fr ->
                Array.unsafe_set fr.f_ints d (f ctx fr);
                rest ctx fr
        end
      | _ ->
          let f = cexp env e in
          fun ctx fr ->
            Array.unsafe_set fr.f_ints d (f ctx fr);
            rest ctx fr
    end
  | Rassign (Global g, e) when not env.gma.(g) ->
      let f = cexp env e in
      fun ctx fr ->
        let v = f ctx fr in
        touch_global ctx g;
        Array.unsafe_set ctx.gints g v;
        rest ctx fr
  | Rassign (dst, e) ->
      let f = cinto env ~dstma:env.ma dst e in
      fun ctx fr ->
        f ctx fr fr;
        rest ctx fr
  | Rstore (base, idx, v, site) -> begin
      let fb = caexp env site base in
      let fv = cexp env v in
      let finish a i x ctx fr =
        if i < 0 || i >= Array.length a then
          raise
            (Crash_exn
               (Crash.Out_of_bounds { len = Array.length a; idx = i }, site))
        else begin
          Array.unsafe_set a i x;
          rest ctx fr
        end
      in
      match simple_of env idx with
      | Some (Sconst k) ->
          fun ctx fr ->
            let a = fb ctx fr in
            let x = fv ctx fr in
            finish a k x ctx fr
      | Some (Sloc li) ->
          fun ctx fr ->
            let a = fb ctx fr in
            let i = Array.unsafe_get fr.f_ints li in
            let x = fv ctx fr in
            finish a i x ctx fr
      | Some (Sglob g) ->
          fun ctx fr ->
            let a = fb ctx fr in
            let i = Array.unsafe_get ctx.gints g in
            let x = fv ctx fr in
            finish a i x ctx fr
      | None ->
          let fi = cexp env idx in
          fun ctx fr ->
            let a = fb ctx fr in
            let i = fi ctx fr in
            let x = fv ctx fr in
            finish a i x ctx fr
    end
  | Rbug (bug, site) -> fun _ _ -> raise (Crash_exn (Crash.Seeded bug, site))
  | Rcheck (cond, bug, site) ->
      (* The condition compiles through the fused boolean path — same
         crash test ([= 0]), no 1/0 materialisation. *)
      let f = ccond env cond in
      fun ctx fr ->
        if not (f ctx fr) then raise (Crash_exn (Crash.Check_failed bug, site));
        rest ctx fr
  | Rcall _ -> invalid_arg "Compile.cinstr_fast: calls bound segments"

(* The same instruction with its exact leading burn (the careful
   fallback). *)
let cinstr_careful (env : env) (ins : rinstr) (rest : bfn) : bfn =
  let body = cinstr_fast env ins rest in
  fun ctx fr ->
    ctx.fuel <- ctx.fuel - 1;
    if ctx.fuel <= 0 then raise Out_of_fuel;
    body ctx fr

(* A call instruction: exact burn, argument evaluation into the callee
   frame, depth / call-stack / pool bookkeeping, return-value store. *)
let ccall (env : env) (p : prepared) (fentries : bfn array) (fid : int) ~dst
    ~callee ~(args : rexpr array) ~site (rest : bfn) : bfn =
  let params = p.rfuncs.(callee).param_slots in
  let dstma = env.lmay.(callee) in
  let cargs = Array.mapi (fun k a -> cinto env ~dstma params.(k) a) args in
  let nargs = Array.length cargs in
  let store_ret : exec_ctx -> frame -> unit =
    match dst with
    | None -> fun _ _ -> ()
    | Some d ->
        fun ctx fr ->
          if ctx.ret_a != no_arr then write_arr ctx fr d ctx.ret_a
          else write_int ctx fr d ctx.ret_i
  in
  let cs = env.cs in
  let zs = env.zeroes.(callee) in
  let nz = Array.length zs in
  fun ctx fr ->
    ctx.fuel <- ctx.fuel - 1;
    if ctx.fuel <= 0 then raise Out_of_fuel;
    let cf = acquire_raw ctx callee in
    if nz > 0 then
      for k = 0 to nz - 1 do
        Array.unsafe_set cf.f_ints (Array.unsafe_get zs k) 0
      done;
    for k = 0 to nargs - 1 do
      (Array.unsafe_get cargs k) ctx fr cf
    done;
    push_call ctx fid site;
    cs.depth <- cs.depth + 1;
    (Array.unsafe_get fentries callee) ctx cf;
    cs.depth <- cs.depth - 1;
    ctx.cs_top <- ctx.cs_top - 1;
    let pool = Array.unsafe_get ctx.pools callee in
    pool.live <- pool.live - 1;
    store_ret ctx fr;
    rest ctx fr

let cterm (env : env) (probes : probes) (tbl : bfn array) (fid : int)
    (label : int) (t : rterm) : bfn =
  match t with
  | Rgoto l -> begin
      match probes.pe fid label l with
      | None -> fun ctx fr -> (Array.unsafe_get tbl l) ctx fr
      | Some p ->
          fun ctx fr ->
            p ();
            (Array.unsafe_get tbl l) ctx fr
    end
  | Rbranch (cond, tl, fl, _site) -> begin
      let fc = ccond env cond in
      match (probes.pe fid label tl, probes.pe fid label fl) with
      | None, None ->
          fun ctx fr ->
            let d = if fc ctx fr then tl else fl in
            (Array.unsafe_get tbl d) ctx fr
      | Some pt, None ->
          fun ctx fr ->
            if fc ctx fr then begin
              pt ();
              (Array.unsafe_get tbl tl) ctx fr
            end
            else (Array.unsafe_get tbl fl) ctx fr
      | None, Some pf ->
          fun ctx fr ->
            if fc ctx fr then (Array.unsafe_get tbl tl) ctx fr
            else begin
              pf ();
              (Array.unsafe_get tbl fl) ctx fr
            end
      | Some pt, Some pf ->
          fun ctx fr ->
            if fc ctx fr then begin
              pt ();
              (Array.unsafe_get tbl tl) ctx fr
            end
            else begin
              pf ();
              (Array.unsafe_get tbl fl) ctx fr
            end
    end
  | Rret (e, _site) -> begin
      let f = cret env e in
      match probes.pr fid label with
      | None -> fun ctx fr -> f ctx fr
      | Some p ->
          fun ctx fr ->
            f ctx fr;
            p ()
    end

let[@inline] fire = function None -> () | Some p -> p ()

(* An instruction-free block fused into one closure: entry burn, work
   counter, block probe, condition and jump — branch-only blocks are the
   bulk of loop control, and the generic dispatcher would spend an extra
   closure hop on them. Event order matches the interpreter: burn,
   blocks, h_block, condition (h_cmp inside), h_edge/h_ret, jump. *)
let cblock_empty (env : env) (probes : probes) (tbl : bfn array) (fid : int)
    (label : int) (t : rterm) : bfn =
  let pb = probes.pb fid label in
  match t with
  | Rgoto l ->
      let pe = probes.pe fid label l in
      fun ctx fr ->
        ctx.fuel <- ctx.fuel - 1;
        if ctx.fuel <= 0 then raise Out_of_fuel;
        ctx.blocks <- ctx.blocks + 1;
        fire pb;
        fire pe;
        (Array.unsafe_get tbl l) ctx fr
  | Rbranch (cond, tl, fl, _site) -> begin
      let pt = probes.pe fid label tl and pf = probes.pe fid label fl in
      (* Loop-control blocks with a simple-operand comparison inline the
         test itself — entry, condition and jump in one closure. *)
      let simple_cmp =
        match cond with
        | Rcmp (op, e1, e2) -> (
            match (simple_of env e1, simple_of env e2) with
            | Some s1, Some s2 -> Some (op, s1, s2)
            | _ -> None)
        | _ -> None
      in
      match simple_cmp with
      | Some (op, s1, s2) ->
          let cs = env.cs in
          let emit = env.emit_cmp in
          let[@inline] finish taken ctx fr =
            if taken then begin
              fire pt;
              (Array.unsafe_get tbl tl) ctx fr
            end
            else begin
              fire pf;
              (Array.unsafe_get tbl fl) ctx fr
            end
          in
          let[@inline] entry ctx =
            ctx.fuel <- ctx.fuel - 1;
            if ctx.fuel <= 0 then raise Out_of_fuel;
            ctx.blocks <- ctx.blocks + 1;
            fire pb
          in
          (match (s1, s2) with
          | Sconst a, Sconst b ->
              fun ctx fr ->
                entry ctx;
                if emit then cs.h_cmp a b;
                finish (apply_cmp op a b) ctx fr
          | Sloc i, Sconst k ->
              fun ctx fr ->
                entry ctx;
                let a = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp a k;
                finish (apply_cmp op a k) ctx fr
          | Sconst k, Sloc i ->
              fun ctx fr ->
                entry ctx;
                let b = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp k b;
                finish (apply_cmp op k b) ctx fr
          | Sloc i, Sloc j ->
              fun ctx fr ->
                entry ctx;
                let a = Array.unsafe_get fr.f_ints i in
                let b = Array.unsafe_get fr.f_ints j in
                if emit then cs.h_cmp a b;
                finish (apply_cmp op a b) ctx fr
          | Sglob g, Sconst k ->
              fun ctx fr ->
                entry ctx;
                let a = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp a k;
                finish (apply_cmp op a k) ctx fr
          | Sconst k, Sglob g ->
              fun ctx fr ->
                entry ctx;
                let b = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp k b;
                finish (apply_cmp op k b) ctx fr
          | Sglob g, Sloc i ->
              fun ctx fr ->
                entry ctx;
                let a = Array.unsafe_get ctx.gints g in
                let b = Array.unsafe_get fr.f_ints i in
                if emit then cs.h_cmp a b;
                finish (apply_cmp op a b) ctx fr
          | Sloc i, Sglob g ->
              fun ctx fr ->
                entry ctx;
                let a = Array.unsafe_get fr.f_ints i in
                let b = Array.unsafe_get ctx.gints g in
                if emit then cs.h_cmp a b;
                finish (apply_cmp op a b) ctx fr
          | Sglob g, Sglob h ->
              fun ctx fr ->
                entry ctx;
                let a = Array.unsafe_get ctx.gints g in
                let b = Array.unsafe_get ctx.gints h in
                if emit then cs.h_cmp a b;
                finish (apply_cmp op a b) ctx fr)
      | None ->
          let fc = ccond env cond in
          fun ctx fr ->
            ctx.fuel <- ctx.fuel - 1;
            if ctx.fuel <= 0 then raise Out_of_fuel;
            ctx.blocks <- ctx.blocks + 1;
            fire pb;
            if fc ctx fr then begin
              fire pt;
              (Array.unsafe_get tbl tl) ctx fr
            end
            else begin
              fire pf;
              (Array.unsafe_get tbl fl) ctx fr
            end
    end
  | Rret (e, _site) ->
      let f = cret env e in
      let pr = probes.pr fid label in
      fun ctx fr ->
        ctx.fuel <- ctx.fuel - 1;
        if ctx.fuel <= 0 then raise Out_of_fuel;
        ctx.blocks <- ctx.blocks + 1;
        fire pb;
        f ctx fr;
        fire pr

(* Compile a block: segment the instruction array at call boundaries,
   emit a bulk-burn dispatcher per non-empty segment (fast body vs exact
   fallback, sharing one continuation), and fold the block-entry burn,
   the [blocks] work counter and the block probe into the first
   segment. *)
let cblock (env : env) (probes : probes) (p : prepared) (fentries : bfn array)
    (tbl : bfn array) (fid : int) (label : int) (b : rblock) : bfn =
  let instrs = b.rinstrs in
  let n = Array.length instrs in
  if n = 0 then cblock_empty env probes tbl fid label b.rterm
  else begin
  let term = cterm env probes tbl fid label b.rterm in
  (* [build i ~first] compiles execution from instruction [i] to the end
     of the block: one dispatcher for the straight-line run starting at
     [i], chained through the call (if any) into the next segment. *)
  let rec build (i : int) ~(first : bool) : bfn =
    let j = ref i in
    while !j < n && (match instrs.(!j) with Rcall _ -> false | _ -> true) do
      incr j
    done;
    let j = !j in
    let cont : bfn =
      if j >= n then term
      else
        match instrs.(j) with
        | Rcall { dst; callee; args; site } ->
            let rest = build (j + 1) ~first:false in
            ccall env p fentries fid ~dst ~callee ~args ~site rest
        | _ -> assert false
    in
    let burn_units = j - i + if first then 1 else 0 in
    if burn_units = 0 then cont
    else begin
      let rec fast_chain k =
        if k >= j then cont else cinstr_fast env instrs.(k) (fast_chain (k + 1))
      in
      let rec careful_chain k =
        if k >= j then cont
        else cinstr_careful env instrs.(k) (careful_chain (k + 1))
      in
      let head_careful : bfn -> bfn =
        if not first then fun body -> body
        else
          match probes.pb fid label with
          | None ->
              fun body ctx fr ->
                ctx.fuel <- ctx.fuel - 1;
                if ctx.fuel <= 0 then raise Out_of_fuel;
                ctx.blocks <- ctx.blocks + 1;
                body ctx fr
          | Some pb ->
              fun body ctx fr ->
                ctx.fuel <- ctx.fuel - 1;
                if ctx.fuel <= 0 then raise Out_of_fuel;
                ctx.blocks <- ctx.blocks + 1;
                pb ();
                body ctx fr
      in
      let fast = fast_chain i in
      let careful = head_careful (careful_chain i) in
      let cs = env.cs in
      (* The head work of the first segment (entry burn already counted
         in [burn_units], the work counter, the block probe) is inlined
         into the dispatcher itself — no extra closure hop. *)
      if not first then
        fun ctx fr ->
          ctx.fuel <- ctx.fuel - burn_units;
          if ctx.fuel > 0 then fast ctx fr
          else begin
            ctx.fuel <- ctx.fuel + burn_units;
            cs.stat_rollbacks <- cs.stat_rollbacks + 1;
            cs.stat_careful_units <- cs.stat_careful_units + burn_units;
            careful ctx fr
          end
      else
        match probes.pb fid label with
        | None ->
            fun ctx fr ->
              ctx.fuel <- ctx.fuel - burn_units;
              if ctx.fuel > 0 then begin
                ctx.blocks <- ctx.blocks + 1;
                fast ctx fr
              end
              else begin
                ctx.fuel <- ctx.fuel + burn_units;
                cs.stat_rollbacks <- cs.stat_rollbacks + 1;
                cs.stat_careful_units <- cs.stat_careful_units + burn_units;
                careful ctx fr
              end
        | Some pb ->
            fun ctx fr ->
              ctx.fuel <- ctx.fuel - burn_units;
              if ctx.fuel > 0 then begin
                ctx.blocks <- ctx.blocks + 1;
                pb ();
                fast ctx fr
              end
              else begin
                ctx.fuel <- ctx.fuel + burn_units;
                cs.stat_rollbacks <- cs.stat_rollbacks + 1;
                cs.stat_careful_units <- cs.stat_careful_units + burn_units;
                careful ctx fr
              end
    end
  in
  build 0 ~first:true
  end

(* ------------------------------------------------------------------ *)
(* Superblock fusion.

   A chain of blocks linked by unconditional gotos where every interior
   block has exactly one predecessor executes as one straight line: no
   input-dependent branch can enter or leave it except at the head and
   the final terminator. Fusing the chain into one closure elides the
   interior dispatch (the [tbl] jumps), coalesces the interior fuel
   burns into the bulk-burn dispatcher the intra-block segments already
   use — lifted here from intra-block to inter-block — and folds
   consecutive Ball–Larus register increments into one deferred
   constant-add.

   Equivalence argument (the inter-block extension of the intra-block
   one at [cblock]): the fast chain runs only when [fuel > burn_units]
   where [burn_units] counts one unit per block entry and per non-call
   instruction in the segment, exactly what the careful chain burns one
   at a time. Under that guard no interior burn can hit zero, so
   [Out_of_fuel] is impossible inside the fast chain and the end-of-
   segment fuel is identical; otherwise the careful chain replays the
   per-op burn order exactly, making mid-chain hang points and crash
   sites (each instruction's own crash raises from its compiled body,
   with [ctx.blocks] advanced per block entry) bit-identical to the
   unfused engine. Probe event order is preserved: block probes fire
   per entry in chain order, and only edges whose entire effect is a
   register increment ([probes.pe_add] = [Some k]) are folded — the
   folded constant is flushed (via [probes.padd], same top-of-stack
   guard) before any must-fire edge probe (a commit reads the register)
   and at segment end, and adds commute with everything in between
   (instructions never touch the register; register state after an
   aborted run is dead — [reset] clears it before the next one). *)

type cop =
  | Oentry of int  (** fused block entry: burn 1, work counter, pb *)
  | Oinstr of rinstr  (** non-call instruction: burn 1 *)
  | Ocall of rinstr  (** [Rcall]: burns exactly, bounds segments *)
  | Oedge of int * int  (** fused goto edge (src, dst): burn 0 *)

let max_chain_blocks = 24
let max_dup_instrs = 32

(* Grow the fused region headed at [head]: follow unconditional gotos
   through single-predecessor interior blocks, and through multi-
   predecessor join blocks by tail duplication (the join keeps its own
   [tbl] entry for the other predecessors) within a copied-instruction
   budget. Stops on branches, returns, self-loops/cycles and the caps. *)
let grow_chain (f : rfunc) (interior : bool array) (head : int) : int list =
  let dup = ref 0 in
  let rec go acc len cur =
    let acc = cur :: acc in
    match f.rblocks.(cur).rterm with
    | Rgoto l when (not (List.mem l acc)) && len < max_chain_blocks ->
        if interior.(l) then go acc (len + 1) l
        else begin
          let cost = Array.length f.rblocks.(l).rinstrs + 1 in
          if !dup + cost <= max_dup_instrs then begin
            dup := !dup + cost;
            go acc (len + 1) l
          end
          else List.rev acc
        end
    | _ -> List.rev acc
  in
  go [] 1 head

(* Interior marking for superblock fusion: a block reached only by one
   unconditional goto (the entry block keeps a pseudo-predecessor so it
   is never fused away). Interior blocks keep their standalone [tbl]
   entries — a budget-capped chain can still end with a goto into
   one. *)
let fusion_interior (f : rfunc) : bool array =
  let nb = Array.length f.rblocks in
  let npreds = Array.make nb 0 in
  npreds.(0) <- 1;
  let succs = function
    | Rgoto l -> [ l ]
    | Rbranch (_, tl, fl, _) -> if tl = fl then [ tl ] else [ tl; fl ]
    | Rret _ -> []
  in
  Array.iter
    (fun (b : rblock) ->
      List.iter (fun s -> npreds.(s) <- npreds.(s) + 1) (succs b.rterm))
    f.rblocks;
  let interior = Array.make nb false in
  Array.iteri
    (fun bi (b : rblock) ->
      match b.rterm with
      | Rgoto l when l <> bi && npreds.(l) = 1 -> interior.(l) <- true
      | _ -> ())
    f.rblocks;
  interior

let fusion_plan_of (f : rfunc) (interior : bool array) :
    int list option array =
  Array.init (Array.length f.rblocks) (fun b ->
      if interior.(b) then None
      else
        match grow_chain f interior b with
        | _ :: _ :: _ as chain -> Some chain
        | _ -> None)

(** The per-function fusion plan: [Some chain] (length >= 2) at every
    chain head, [None] elsewhere. Shared with the native emitter, which
    must fuse exactly the regions the closure engine does. *)
let fusion_plan (f : rfunc) : int list option array =
  fusion_plan_of f (fusion_interior f)

(* Compile one fused chain into a single closure. *)
let cchain (env : env) (probes : probes) (p : prepared) (fentries : bfn array)
    (tbl : bfn array) (fid : int) (f : rfunc) (chain : int list) : bfn =
  let instr_op i = match i with Rcall _ -> Ocall i | _ -> Oinstr i in
  (* Flatten the chain into an op stream; the last block's terminator
     compiles through the ordinary [cterm] (its edge/return probes and
     jumps through [tbl] are unchanged). *)
  let rec ops_of = function
    | [] -> assert false
    | [ last ] ->
        let b = f.rblocks.(last) in
        ( Oentry last :: List.map instr_op (Array.to_list b.rinstrs),
          cterm env probes tbl fid last b.rterm )
    | cur :: (next :: _ as rest) ->
        let b = f.rblocks.(cur) in
        let here =
          Oentry cur
          :: List.map instr_op (Array.to_list b.rinstrs)
          @ [ Oedge (cur, next) ]
        in
        let more, final = ops_of rest in
        (here @ more, final)
  in
  let ops, final = ops_of chain in
  let rec compile_ops (ops : cop list) : bfn =
    match ops with
    | [] -> final
    | Ocall (Rcall { dst; callee; args; site }) :: rest ->
        ccall env p fentries fid ~dst ~callee ~args ~site (compile_ops rest)
    | Ocall _ :: _ -> assert false
    | _ ->
        (* Maximal call-free segment: one bulk-burn dispatcher. *)
        let rec split acc = function
          | (Ocall _ :: _ | []) as rest -> (List.rev acc, rest)
          | op :: more -> split (op :: acc) more
        in
        let seg, rest = split [] ops in
        let cont = compile_ops rest in
        let burn =
          List.fold_left
            (fun a op ->
              match op with Oentry _ | Oinstr _ -> a + 1 | _ -> a)
            0 seg
        in
        (* Apply a folded register add ([padd] is the fold target the
           probe set promised whenever [pe_add] reports nonzero). *)
        let apply_add k (restf : bfn) : bfn =
          if k = 0 then restf
          else
            match probes.padd with
            | Some add ->
                fun ctx fr ->
                  add k;
                  restf ctx fr
            | None -> assert false
        in
        let rec fast pending = function
          | [] -> apply_add pending cont
          | Oentry b :: tl -> (
              let restf = fast pending tl in
              match probes.pb fid b with
              | None ->
                  fun ctx fr ->
                    ctx.blocks <- ctx.blocks + 1;
                    restf ctx fr
              | Some pb ->
                  fun ctx fr ->
                    ctx.blocks <- ctx.blocks + 1;
                    pb ();
                    restf ctx fr)
          | Oinstr i :: tl -> cinstr_fast env i (fast pending tl)
          | Oedge (s, d) :: tl -> (
              match probes.pe_add fid s d with
              | Some k -> fast (pending + k) tl
              | None ->
                  (* Must fire in place: flush the fold first. *)
                  let fire_then =
                    match probes.pe fid s d with
                    | None -> fast 0 tl
                    | Some pe ->
                        let restf = fast 0 tl in
                        fun ctx fr ->
                          pe ();
                          restf ctx fr
                  in
                  apply_add pending fire_then)
          | Ocall _ :: _ -> assert false
        in
        let rec careful = function
          | [] -> cont
          | Oentry b :: tl -> (
              let restc = careful tl in
              match probes.pb fid b with
              | None ->
                  fun ctx fr ->
                    ctx.fuel <- ctx.fuel - 1;
                    if ctx.fuel <= 0 then raise Out_of_fuel;
                    ctx.blocks <- ctx.blocks + 1;
                    restc ctx fr
              | Some pb ->
                  fun ctx fr ->
                    ctx.fuel <- ctx.fuel - 1;
                    if ctx.fuel <= 0 then raise Out_of_fuel;
                    ctx.blocks <- ctx.blocks + 1;
                    pb ();
                    restc ctx fr)
          | Oinstr i :: tl -> cinstr_careful env i (careful tl)
          | Oedge (s, d) :: tl -> (
              match probes.pe fid s d with
              | None -> careful tl
              | Some pe ->
                  let restc = careful tl in
                  fun ctx fr ->
                    pe ();
                    restc ctx fr)
          | Ocall _ :: _ -> assert false
        in
        let carefulc = careful seg in
        let cs = env.cs in
        if burn = 0 then fast 0 seg
        else
          (* The leading block entry's work (counter, block probe) is
             inlined into the dispatcher itself, as in [cblock] — the
             fused fast path must not pay a closure hop the standalone
             one doesn't. *)
          match seg with
          | Oentry b :: tl -> (
              let fastc = fast 0 tl in
              match probes.pb fid b with
              | None ->
                  fun ctx fr ->
                    ctx.fuel <- ctx.fuel - burn;
                    if ctx.fuel > 0 then begin
                      ctx.blocks <- ctx.blocks + 1;
                      fastc ctx fr
                    end
                    else begin
                      ctx.fuel <- ctx.fuel + burn;
                      cs.stat_rollbacks <- cs.stat_rollbacks + 1;
                      cs.stat_careful_units <- cs.stat_careful_units + burn;
                      carefulc ctx fr
                    end
              | Some pb ->
                  fun ctx fr ->
                    ctx.fuel <- ctx.fuel - burn;
                    if ctx.fuel > 0 then begin
                      ctx.blocks <- ctx.blocks + 1;
                      pb ();
                      fastc ctx fr
                    end
                    else begin
                      ctx.fuel <- ctx.fuel + burn;
                      cs.stat_rollbacks <- cs.stat_rollbacks + 1;
                      cs.stat_careful_units <- cs.stat_careful_units + burn;
                      carefulc ctx fr
                    end)
          | _ ->
              let fastc = fast 0 seg in
              fun ctx fr ->
                ctx.fuel <- ctx.fuel - burn;
                if ctx.fuel > 0 then fastc ctx fr
                else begin
                  ctx.fuel <- ctx.fuel + burn;
                  cs.stat_rollbacks <- cs.stat_rollbacks + 1;
                  cs.stat_careful_units <- cs.stat_careful_units + burn;
                  carefulc ctx fr
                end
  in
  compile_ops ops

let cfunc (env : env) (probes : probes) (p : prepared) (fentries : bfn array)
    ~(fused : bool) (fid : int) (f : rfunc) : bfn =
  let nb = Array.length f.rblocks in
  let tbl = Array.make nb (fun _ _ -> assert false : bfn) in
  for b = 0 to nb - 1 do
    tbl.(b) <- cblock env probes p fentries tbl fid b f.rblocks.(b)
  done;
  if fused then begin
    let interior = fusion_interior f in
    let plan = fusion_plan_of f interior in
    for b = 0 to nb - 1 do
      match plan.(b) with
      | Some chain ->
            let cs = env.cs in
            let len = List.length chain in
            cs.stat_chains <- cs.stat_chains + 1;
            cs.stat_chain_blocks <- cs.stat_chain_blocks + len;
            if len > cs.stat_chain_max then cs.stat_chain_max <- len;
            List.iteri
              (fun i l ->
                if i > 0 && not interior.(l) then
                  cs.stat_dup_instrs <-
                    cs.stat_dup_instrs + Array.length f.rblocks.(l).rinstrs + 1)
              chain;
            tbl.(b) <- cchain env probes p fentries tbl fid f chain
      | None -> ()
    done
  end;
  let b0 = tbl.(0) in
  let cs = env.cs in
  match probes.pc fid with
  | None ->
      fun ctx fr ->
        if cs.depth > ctx.max_depth then
          raise (Crash_exn (Crash.Stack_overflow, -1));
        b0 ctx fr
  | Some pc ->
      fun ctx fr ->
        if cs.depth > ctx.max_depth then
          raise (Crash_exn (Crash.Stack_overflow, -1));
        pc ();
        b0 ctx fr

(* ------------------------------------------------------------------ *)
(* Artifact construction *)

(** Functions whose acyclic-path count is at most this are tracked for
    probe self-pruning (their full commit-key universe is enumerable
    cheaply). *)
let prune_path_bound = 4096

let compile ?plans ?(cmplog = true) ?(fused = false) (p : prepared)
    (spec : spec) : t =
  let nfuncs = Array.length p.rfuncs in
  let pruned_zero = Bytes.make (max 1 nfuncs) '\000' in
  let pruned_live = Bytes.make (max 1 nfuncs) '\000' in
  let ngram_n = match spec with Sfull (Ngram n) -> n | _ -> 0 in
  let cs =
    {
      trace = Pathcov.Coverage_map.create ~size_log2:6 ();
      h_cmp = (fun _ _ -> ());
      depth = 0;
      prev = 0;
      hist = Array.make ngram_n 0;
      pos = 0;
      regs = Array.make 64 0;
      top = 0;
      rolling = 0;
      sig_h = 0;
      pruned = pruned_zero;
      stat_rollbacks = 0;
      stat_careful_units = 0;
      stat_chains = 0;
      stat_chain_blocks = 0;
      stat_chain_max = 0;
      stat_dup_instrs = 0;
    }
  in
  let path_plans =
    match spec with
    | Sfull Path -> (
        match plans with
        | Some pl -> Some pl
        | None -> Some (Pathcov.Ball_larus.of_program p.prog))
    | _ -> None
  in
  let probes =
    match spec with
    | Snone -> probes_none
    | Ssignal -> probes_signal cs
    | Sfull Block -> probes_block cs
    | Sfull Edge -> probes_edge cs
    | Sfull (Ngram n) -> probes_ngram cs n
    | Sfull Path -> probes_path cs p (Option.get path_plans)
    | Sfull Pathafl -> probes_pathafl cs p
  in
  (* A campaign with cmplog off binds a no-op [h_cmp]; eliding the call
     entirely is then unobservable, so such callers compile (and cache)
     a cmp-free variant. *)
  let probes = { probes with emit_cmp = probes.emit_cmp && cmplog } in
  let typing = may_array_analysis p in
  let zeroes = zero_slots_analysis p in
  let fentries = Array.make nfuncs (fun _ _ -> assert false : bfn) in
  Array.iteri
    (fun fid f ->
      let env =
        {
          cs;
          emit_cmp = probes.emit_cmp;
          lmay = typing.lmay;
          ma = typing.lmay.(fid);
          gma = typing.gmay;
          zeroes;
        }
      in
      fentries.(fid) <- cfunc env probes p fentries ~fused fid f)
    p.rfuncs;
  let path_universe =
    match path_plans with
    | None -> Array.make nfuncs [||]
    | Some plans ->
        Array.init nfuncs (fun fid ->
            let plan = plans.plans.(fid) in
            let np = plan.Pathcov.Ball_larus.num_paths in
            if np > prune_path_bound then [||]
            else
              let salt = path_salt p.prog.funcs.(fid) in
              Array.init np (fun pid -> (pid lxor salt) land max_int))
  in
  {
    prepared = p;
    spec;
    cmplog;
    fused;
    cs;
    fentries;
    main_zero = zeroes.(p.main_id);
    pruned_zero;
    pruned_live;
    path_universe;
  }

(* ------------------------------------------------------------------ *)
(* Per-campaign binding, reset, execution *)

(** Retarget the artifact's probes at a campaign's trace map and cmplog
    probe — O(1), so callers may rebind before every execution. *)
let bind (t : t) ~(trace : Pathcov.Coverage_map.t)
    ~(h_cmp : int -> int -> unit) : unit =
  t.cs.trace <- trace;
  t.cs.h_cmp <- h_cmp

(** Reset the baked listener state (the [Feedback.t.reset] analogue);
    {!run} calls this itself before every execution. *)
let reset (t : t) : unit =
  let cs = t.cs in
  cs.depth <- 0;
  cs.prev <- 0;
  cs.pos <- 0;
  let n = Array.length cs.hist in
  if n > 0 then Array.fill cs.hist 0 n 0;
  cs.top <- 0;
  cs.rolling <- 0;
  cs.sig_h <- 0

(** The [Ssignal] event-stream hash of the last execution. *)
let signal (t : t) : int = t.cs.sig_h

(** Toggle probe self-pruning: [true] installs the live table edited by
    {!prune_fid}, [false] the all-zero table (every probe fires). *)
let set_pruning (t : t) (on : bool) : unit =
  t.cs.pruned <- (if on then t.pruned_live else t.pruned_zero)

(** Mark one function's path commits elided (or restore them) in the
    live pruning table. *)
let prune_fid (t : t) (fid : int) (elide : bool) : unit =
  Bytes.set t.pruned_live fid (if elide then '\001' else '\000')

(** Every map key function [fid]'s path commits can produce (unwrapped),
    or [[||]] when not enumerable (too many paths, or a non-path
    spec). *)
let path_universe (t : t) (fid : int) : int array = t.path_universe.(fid)

(* ------------------------------------------------------------------ *)
(* Introspection (plain ints — this library has no obs dependency; the
   fuzz layer reads these into its metrics registry at deterministic
   points) *)

type runtime_stats = {
  rollbacks : int;  (** bulk-burn fast paths abandoned for careful replay *)
  careful_units : int;  (** fuel units re-burned by those replays *)
}

type static_stats = {
  chains : int;  (** fused superblock chains emitted *)
  chain_blocks : int;  (** blocks covered by fused chains *)
  chain_max : int;  (** longest fused chain (blocks) *)
  dup_instrs : int;  (** instructions copied by tail duplication *)
}

(** Bulk-burn rollback tallies accumulated since compilation. *)
let runtime_stats (t : t) : runtime_stats =
  { rollbacks = t.cs.stat_rollbacks; careful_units = t.cs.stat_careful_units }

(** Superblock-fusion shape fixed at compilation (all zero unfused). *)
let static_stats (t : t) : static_stats =
  {
    chains = t.cs.stat_chains;
    chain_blocks = t.cs.stat_chain_blocks;
    chain_max = t.cs.stat_chain_max;
    dup_instrs = t.cs.stat_dup_instrs;
  }

(* Mirror of [Interp.run_current] over the compiled entry points: same
   reset, same exception fences, same outcome construction. *)
let run_current (t : t) (ctx : exec_ctx) ~fuel ~max_depth : outcome =
  reset t;
  reset_ctx ctx;
  ctx.fuel <- fuel;
  ctx.max_depth <- max_depth;
  let status =
    try
      let fr = acquire_raw ctx t.prepared.main_id in
      let zs = t.main_zero in
      for k = 0 to Array.length zs - 1 do
        Array.unsafe_set fr.f_ints (Array.unsafe_get zs k) 0
      done;
      (Array.unsafe_get t.fentries t.prepared.main_id) ctx fr;
      if ctx.ret_a != no_arr then Finished None else Finished (Some ctx.ret_i)
    with
    | Crash_exn (kind, site) ->
        ctx.unwound <- true;
        let top = { Crash.fn = site_function t.prepared.prog site; site } in
        Crashed { Crash.kind; stack = top :: materialize_stack ctx }
    | Out_of_fuel ->
        ctx.unwound <- true;
        Hung
    | Stack_overflow ->
        ctx.unwound <- true;
        Crashed
          { Crash.kind = Crash.Stack_overflow; stack = materialize_stack ctx }
  in
  { status; blocks_executed = ctx.blocks }

(** Execute the compiled program on [input] through [ctx]. The context
    must have been created over the same [prepared] the artifact was
    compiled from (its pools are indexed by the program's function
    ids). *)
let run ?(fuel = default_fuel) ?(max_depth = default_max_depth) (t : t)
    (ctx : exec_ctx) ~(input : string) : outcome =
  if ctx.p != t.prepared then
    invalid_arg "Compile.run: context belongs to a different prepared program";
  ctx.input <- input;
  ctx.input_len <- String.length input;
  run_current t ctx ~fuel ~max_depth

(** Zero-copy variant over the first [len] bytes of [buf] (see
    {!Interp.run_ctx_sub}). *)
let run_sub ?(fuel = default_fuel) ?(max_depth = default_max_depth) (t : t)
    (ctx : exec_ctx) ~(buf : Bytes.t) ~(len : int) : outcome =
  if ctx.p != t.prepared then
    invalid_arg "Compile.run_sub: context belongs to a different prepared program";
  if len < 0 || len > Bytes.length buf then invalid_arg "Compile.run_sub";
  ctx.input <- Bytes.unsafe_to_string buf;
  ctx.input_len <- len;
  run_current t ctx ~fuel ~max_depth

(** Execute a cohort of [n] candidates back-to-back on one context (see
    {!Interp.run_batch}): [gen k] produces the [k]-th candidate as a
    [(buf, len)] scratch view, [sink k outcome] consumes its result
    before [gen (k+1)] runs. [clock]/[vm_s] bracket each VM run alone
    (generation and consumption excluded), matching the per-exec timing
    of the one-shot entry points. *)
let run_batch ?(fuel = default_fuel) ?(max_depth = default_max_depth) ?clock
    ?(vm_s = fun (_ : float) -> ()) (t : t) (ctx : exec_ctx) ~(n : int)
    ~(gen : int -> Bytes.t * int) ~(sink : int -> outcome -> unit) : unit =
  if n > 0 && ctx.p != t.prepared then
    invalid_arg
      "Compile.run_batch: context belongs to a different prepared program";
  for k = 0 to n - 1 do
    let buf, len = gen k in
    if len < 0 || len > Bytes.length buf then invalid_arg "Compile.run_batch";
    ctx.input <- Bytes.unsafe_to_string buf;
    ctx.input_len <- len;
    let out =
      match clock with
      | None -> run_current t ctx ~fuel ~max_depth
      | Some now ->
          let t0 = now () in
          let out = run_current t ctx ~fuel ~max_depth in
          vm_s (now () -. t0);
          out
    in
    sink k out
  done

(* ------------------------------------------------------------------ *)
(* Per-domain artifact cache *)

let cache_cap = 16

let dls_cache : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Hit/miss tallies live beside the cache in DLS — multiple domains
   probe their own caches concurrently, so the counters must be
   per-domain too. *)
let dls_cache_stats : (int ref * int ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref 0, ref 0))

(** [(hits, misses)] of {!cached} on the calling domain. *)
let cache_stats () : int * int =
  let hits, misses = Domain.DLS.get dls_cache_stats in
  (!hits, !misses)

(** Compile-once memo, per domain: sequential campaigns, measurement
    replays and bench cells over the same [(prepared, spec)] share one
    artifact (rebound per campaign via {!bind}). Sharded campaigns must
    not use this — each shard owns a fresh {!compile} because [cstate]
    is single-threaded. *)
let cached ?plans ?(cmplog = true) ?(fused = false) (p : prepared)
    (spec : spec) : t =
  let c = Domain.DLS.get dls_cache in
  let hits, misses = Domain.DLS.get dls_cache_stats in
  match
    List.find_opt
      (fun t ->
        t.prepared == p && t.spec = spec && t.cmplog = cmplog
        && t.fused = fused)
      !c
  with
  | Some t ->
      incr hits;
      t
  | None ->
      incr misses;
      let t = compile ?plans ~cmplog ~fused p spec in
      let keep =
        if List.length !c >= cache_cap then
          List.filteri (fun i _ -> i < cache_cap - 1) !c
        else !c
      in
      c := t :: keep;
      t
