(** Staged compilation of a prepared MiniC program into OCaml closures —
    the second execution engine.

    [compile] partially evaluates a {!Interp.prepared} CFG, threaded-code
    style: one closure per basic block (forward references resolved
    through a block table read at call time), expression trees folded
    into closure trees with slots/sites/constants baked in, and the
    feedback listener specialised at compile time into per-site probes.
    Under {!spec} [Snone] no probe code exists at all; under
    [Sfull Path] each CFG edge bakes its resolved Ball–Larus operation
    (or compiles to a direct jump when it carries none), so the per-event
    dense-table dispatch of the runtime listener disappears along with
    the interpreter's [rinstr]/[rexpr] match dispatch.

    Compiled code executes against the unmodified pooled
    {!Interp.exec_ctx} and replicates the interpreter's observable
    semantics exactly — fuel burn placement, evaluation order, crash
    kinds/sites/stacks, [h_cmp] timing, [blocks_executed] — which the
    differential suite enforces against the boxed reference interpreter.

    Artifacts are immutable modulo a small rebindable {!cstate} (trace
    map, cmplog probe, listener registers, pruning gate), so one
    artifact per [(prepared, spec)] serves every campaign on a domain;
    {!cached} memoises exactly that. The state is single-threaded:
    sharded campaigns compile one artifact per shard via {!compile}. *)

(** What gets baked in: nothing, the selective-tracing novelty signal,
    or a full {!Pathcov.Feedback} mode. *)
type spec = Snone | Ssignal | Sfull of Pathcov.Feedback.mode

val spec_name : spec -> string

type t

(** [cmplog] (default [true]) controls whether comparisons emit [h_cmp]
    calls. A campaign with cmplog disabled binds a no-op probe, so such
    callers pass [~cmplog:false] to compile the calls out entirely —
    unobservable by construction.

    [fused] (default [false]) additionally applies superblock fusion:
    chains of blocks linked by unconditional gotos whose interior blocks
    have a single predecessor (plus rejoining diamond tails within a
    tail-duplication budget) collapse into one closure — interior
    dispatch elided, interior fuel burns coalesced into one bulk burn
    with exact per-op replay on the crash/hang path, and consecutive
    Ball–Larus register increments folded into one constant-add.
    Observably equivalent to the unfused artifact (same outcomes, crash
    sites, fuel accounting, [blocks_executed], probe event order);
    enforced by the differential suite. *)
val compile :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?cmplog:bool ->
  ?fused:bool ->
  Interp.prepared ->
  spec ->
  t

(** Per-domain compile-once memo over [(prepared, spec, cmplog, fused)]
    (physical identity on [prepared]). Safe for sequential campaigns,
    measurement replays and bench cells; sharded campaigns must
    {!compile} fresh per shard instead. *)
val cached :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?cmplog:bool ->
  ?fused:bool ->
  Interp.prepared ->
  spec ->
  t

(** {2 Campaign binding} *)

(** Retarget the artifact's probes at a trace map and cmplog probe —
    two field writes, so callers may rebind before every execution.
    Only meaningful for [Sfull _] artifacts (others never touch
    either). *)
val bind :
  t -> trace:Pathcov.Coverage_map.t -> h_cmp:(int -> int -> unit) -> unit

(** {2 Execution}

    Both runners mirror {!Interp.run_ctx} / {!Interp.run_ctx_sub}: same
    defaults, same outcome construction, same crash materialisation.
    The context must have been created over the same [prepared] value
    the artifact was compiled from ([Invalid_argument] otherwise); the
    context's own hooks are ignored — probes are already compiled in. *)

val run : ?fuel:int -> ?max_depth:int -> t -> Interp.exec_ctx -> input:string -> Interp.outcome

val run_sub :
  ?fuel:int -> ?max_depth:int -> t -> Interp.exec_ctx -> buf:Bytes.t -> len:int -> Interp.outcome

(** Batched mirror of {!Interp.run_batch} over the compiled entry: run
    [n] candidates back-to-back on one context, [gen k] producing the
    [k]-th [(buf, len)] scratch view and [sink k outcome] consuming its
    result before the next [gen]. The prepared-program identity check
    happens once per cohort instead of once per exec. *)
val run_batch :
  ?fuel:int ->
  ?max_depth:int ->
  ?clock:(unit -> float) ->
  ?vm_s:(float -> unit) ->
  t ->
  Interp.exec_ctx ->
  n:int ->
  gen:(int -> Bytes.t * int) ->
  sink:(int -> Interp.outcome -> unit) ->
  unit

(** {2 Selective-tracing novelty signal}

    A 62-bit rolling hash over the tagged call/block/return event
    stream. The tags make per-activation block sequences — and hence
    every derived feedback index, in every mode — a function of the
    stream, so signal equality implies trace equality up to hash
    collisions (DESIGN §12). *)

(** The signal accumulated by the last [Ssignal] execution. *)
val signal : t -> int

(** The same hash computed by the interpreter engine: hooks folding
    each event's tag into [cell]. Reset [cell] to [0] before each
    execution; precomputed tag tables keep the handlers
    allocation-free. *)
val signal_hooks : Interp.prepared -> cell:int ref -> Interp.hooks

(** {2 Probe self-pruning} (only affects [Sfull Path] artifacts)

    The runtime analogue of Ball–Larus spanning-tree probe
    minimisation: once every map index a function's path commits can
    produce is saturated in the virgin map, the commit's map write can
    never change novelty and is elided. Register arithmetic is never
    elided, so unpruned functions commit exact IDs regardless. *)

(** Functions with at most this many acyclic paths have an enumerable
    commit universe and participate in pruning. *)
val prune_path_bound : int

(** Every map key function [fid]'s path commits can produce — unwrapped,
    so wrap by the consulted map's size — or [[||]] when not enumerable
    (too many paths, or non-path spec). *)
val path_universe : t -> int -> int array

(** Mark one function's path commits elided (or restore them). Takes
    effect only while pruning is enabled. *)
val prune_fid : t -> int -> bool -> unit

(** Enable/disable pruning: [false] (the initial state) makes every
    probe fire regardless of {!prune_fid} marks. *)
val set_pruning : t -> bool -> unit

(** {2 Introspection}

    Plain-int tallies — this library carries no obs dependency; the
    fuzz layer reads them into its metrics registry at deterministic
    points. Reading them never perturbs execution. *)

type runtime_stats = {
  rollbacks : int;  (** bulk-burn fast paths abandoned for careful replay *)
  careful_units : int;  (** fuel units re-burned by those replays *)
}

type static_stats = {
  chains : int;  (** fused superblock chains emitted *)
  chain_blocks : int;  (** blocks covered by fused chains *)
  chain_max : int;  (** longest fused chain (blocks) *)
  dup_instrs : int;  (** instructions copied by tail duplication *)
}

(** Bulk-burn rollback tallies accumulated since compilation. *)
val runtime_stats : t -> runtime_stats

(** Superblock-fusion shape fixed at compilation (all zero unfused). *)
val static_stats : t -> static_stats

(** [(hits, misses)] of {!cached} on the calling domain. *)
val cache_stats : unit -> int * int

(** {2 Shared planning} (consumed by {!Emit})

    The analyses and constants the closure engine bakes into its
    probes, exposed so the native source emitter specialises over
    exactly the same plan — any drift between the two engines is a
    trajectory divergence the differential suite would catch. *)

(** Per-slot may-hold-array verdicts of the whole-program fixpoint: a
    slot outside the tables never holds an array, so loads/stores on it
    compile to single unchecked int-table accesses. *)
type typing = {
  lmay : bool array array;  (** per (fid, local slot) *)
  gmay : bool array;  (** per global *)
}

val may_array_analysis : Interp.prepared -> typing

(** Per function: the local slots to zero at frame entry (the
    definite-assignment residue left over a pooled [acquire_raw]). *)
val zero_slots_analysis : Interp.prepared -> int array array

(** The tagged-event-stream mixer tags behind {!signal} /
    {!signal_hooks}: call entry, block entry and return tags per
    (fid, block). The mixer itself is
    [h' = ((h lxor tag) * 0x2545F4914F6CDD1D) land max_int]. *)
val sig_call_tag : int -> int

val sig_block_tag : int -> int -> int
val sig_ret_tag : int -> int -> int

(** The per-function salt XOR-folded into every Ball–Larus commit key. *)
val path_salt : Minic.Ir.func -> int

(** The superblock-fusion plan for one resolved function: [Some chain]
    (length >= 2, head first) at every chain head, [None] elsewhere.
    Interior chain blocks still require standalone bodies — a
    budget-capped chain can end with a goto into one. *)
val fusion_plan : Interp.rfunc -> int list option array
