(** CFG interpreter for MiniC IR programs — the stand-in for native
    execution of the instrumented target. It runs a program on an input
    byte string, emitting the events that the instrumentation listeners of
    [Pathcov.Feedback] consume, and converting memory-safety violations
    into {!Crash.t} reports exactly where ASAN would. Execution is bounded
    by a fuel budget (the analogue of AFL's timeout) and a call-depth
    limit. MiniC locals are zero-initialised at function entry.

    The resolved representation and the pooled execution context are
    exposed concretely (not abstract) because {!Compile} — the staged
    compiler that partially evaluates a prepared program into OCaml
    closures — is a second execution engine over exactly this state:
    compiled code runs against the same frames, pools, globals journal,
    call stack and return scratch, so crash materialisation, fuel and
    outcome construction stay byte-identical between engines. Treat every
    exposed field as read-only unless you are an execution engine. *)

(** Instrumentation hooks, invoked during execution. *)
type hooks = {
  h_call : int -> unit;  (** [fid]: entering a function *)
  h_block : int -> int -> unit;  (** [fid block]: control enters a block *)
  h_edge : int -> int -> int -> unit;  (** [fid src dst]: CFG transition *)
  h_ret : int -> int -> unit;  (** [fid block]: return executes *)
  h_cmp : int -> int -> unit;  (** comparison operands, for cmplog *)
}

val no_hooks : hooks

type status =
  | Finished of int option  (** [main] returned normally *)
  | Crashed of Crash.t
  | Hung  (** fuel exhausted: the analogue of an AFL timeout *)

type outcome = {
  status : status;
  blocks_executed : int;  (** work metric: blocks entered across the run *)
}

val default_fuel : int
val default_max_depth : int

(** Maximum [array(n)] size before the VM reports [Bad_alloc]. *)
val max_alloc : int

(** {2 Resolved (slot-addressed) representation} *)

type slot = Local of int | Global of int

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type arith =
  | Aadd
  | Asub
  | Amul
  | Adiv
  | Arem
  | Aband
  | Abor
  | Abxor
  | Ashl
  | Ashr

type rexpr =
  | Rconst of int
  | Rload of slot * int  (** slot, site of the enclosing instruction *)
  | Rindex of rexpr * rexpr * int  (** base, index, site *)
  | Rarith of arith * rexpr * rexpr * int  (** site for div-by-zero *)
  | Rcmp of cmp * rexpr * rexpr
  | Rneg of rexpr
  | Rnot of rexpr
  | Rbnot of rexpr
  | Rin of rexpr
  | Rlen
  | Rarray_make of rexpr * int
  | Rarray_len of rexpr * int
  | Rabs of rexpr

type rinstr =
  | Rassign of slot * rexpr
  | Rstore of rexpr * rexpr * rexpr * int
  | Rcall of { dst : slot option; callee : int; args : rexpr array; site : int }
  | Rbug of int * int  (** bug id, site *)
  | Rcheck of rexpr * int * int  (** cond, bug id, site *)

type rterm =
  | Rgoto of int
  | Rbranch of rexpr * int * int * int  (** cond, true, false, site *)
  | Rret of rexpr option * int

type rblock = { rinstrs : rinstr array; rterm : rterm }

type rfunc = {
  rname : string;
  nlocals : int;
  param_slots : slot array;
  rblocks : rblock array;
}

(** A program with names resolved to slots — build once per program,
    reuse across the campaign's millions of executions. *)
type prepared = {
  prog : Minic.Ir.program;
  rfuncs : rfunc array;
  main_id : int;
  global_names : string array;
  global_sizes : int array;  (** 0 = int cell, n > 0 = array of n *)
}

(** Raised by {!prepare} when the IR references an unbound variable or an
    undefined function (cannot happen for sema-checked programs). *)
exception Unknown_name of string

val prepare : Minic.Ir.program -> prepared

(** Memoised {!prepare} keyed on the program's physical identity —
    campaigns, measurement replays and throughput cells over the same
    (cached) program share one resolution. Mutex-guarded; the [prepared]
    artifact is immutable, so sharing it across domains is safe. *)
val prepare_cached : Minic.Ir.program -> prepared

(** Execute a prepared program from [main] on [input] through a fresh
    context. Never raises for program-under-test misbehaviour — crashes,
    hangs and type confusion all come back as [status]. *)
val run_prepared :
  ?fuel:int -> ?hooks:hooks -> ?max_depth:int -> prepared -> input:string -> outcome

(** {2 Execution context}

    Pooled frames, globals and call stack, reused across executions so
    the steady-state hot path allocates nothing beyond the program's own
    [array(n)] requests. Single-threaded; use one per worker domain. *)

(** Raised internally (and by compiled code) for program-under-test
    crashes: kind plus the crash site. Converted to {!Crash.t} with the
    materialised stack by the run harness — never escapes [run_ctx]. *)
exception Crash_exn of Crash.kind * int

(** Raised internally when the fuel budget is exhausted. *)
exception Out_of_fuel

(** Distinguished "this slot holds an int" marker for array-slot tables
    (compare with [==] only). *)
val no_arr : int array

type frame = {
  f_ints : int array;
  f_arrs : int array array;
  mutable f_arrs_live : bool;
}

type fpool = { mutable frames : frame array; mutable live : int }

type exec_ctx = {
  p : prepared;
  hooks : hooks;
  gints : int array;
  garrs : int array array;
  gorig : int array array;
  gdirty : Bytes.t;
  mutable gtouched : int array;
  mutable ngtouched : int;
  pools : fpool array;  (** indexed by function id *)
  mutable cs_fid : int array;
  mutable cs_site : int array;
  mutable cs_top : int;
  mutable input : string;
  mutable input_len : int;
  mutable fuel : int;
  mutable max_depth : int;
  mutable blocks : int;
  mutable ret_i : int;
  mutable ret_a : int array;
  gclear : int array array;
      (** the subset of [gorig] holding real arrays (reset re-zeroes
          exactly these) *)
  mutable unwound : bool;
      (** set by the run-loop exception fences when a crash/hang
          unwound the frame stack; tells {!reset_ctx} the pool
          occupancy cannot be trusted and a full sweep is needed *)
  mutable last_reset_width : int;
      (** introspection: journaled global slots the last {!reset_ctx}
          undid (dirty-set width); written by reset, read only by
          observers *)
}

val create_ctx : ?hooks:hooks -> prepared -> exec_ctx

(** Reset between executions: undo journaled global writes, re-zero
    array globals, drop leftover frames, clear per-exec registers. *)
val reset_ctx : exec_ctx -> unit

(** Take a zeroed frame for one activation of [fid]. *)
val acquire : exec_ctx -> int -> frame

(** Like {!acquire} but leaves [f_ints] unzeroed (the array table is
    still reset — reads consult it to tell ints from arrays). For
    engines that prove definite assignment and zero the residual slots
    themselves. *)
val acquire_raw : exec_ctx -> int -> frame

val push_call : exec_ctx -> int -> int -> unit

(** Materialise the [Crash.frame] list (innermost first) from the int
    stacks — only reached when a crash actually happened. *)
val materialize_stack : exec_ctx -> Crash.frame list

val site_function : Minic.Ir.program -> int -> string

(** {2 Slot access} (shared by both engines) *)

(** Record a global index in the write journal (so {!reset_ctx} can undo
    it) — engines writing globals directly must call it first. *)
val touch_global : exec_ctx -> int -> unit

val read_int : exec_ctx -> frame -> int -> slot -> int
val read_arr : exec_ctx -> frame -> int -> slot -> int array
val write_int : exec_ctx -> frame -> slot -> int -> unit
val write_arr : exec_ctx -> frame -> slot -> int array -> unit
val copy_slot : exec_ctx -> frame -> slot -> frame -> slot -> unit

val run_ctx : ?fuel:int -> ?max_depth:int -> exec_ctx -> input:string -> outcome

(** Execute on the first [len] bytes of [buf] without copying them into a
    string — the zero-copy path for pooled mutation buffers. The caller
    must not mutate [buf] during the run; raises [Invalid_argument] if
    [len] exceeds the buffer. *)
val run_ctx_sub :
  ?fuel:int -> ?max_depth:int -> exec_ctx -> buf:Bytes.t -> len:int -> outcome

(** Execute a cohort of [n] candidates back-to-back on one context.
    [gen k] produces candidate [k] as a [(buf, len)] scratch view (same
    zero-copy contract as {!run_ctx_sub}); [sink k outcome] consumes its
    result before [gen (k + 1)] is called, so one scratch buffer may
    back the whole cohort. Back-to-back runs take the journaled
    fast-reset path (clean runs skip the frame-pool sweep).
    [clock]/[vm_s] bracket each VM run alone — generation and
    consumption excluded — matching the one-shot entry points'
    per-exec timing. *)
val run_batch :
  ?fuel:int ->
  ?max_depth:int ->
  ?clock:(unit -> float) ->
  ?vm_s:(float -> unit) ->
  exec_ctx ->
  n:int ->
  gen:(int -> Bytes.t * int) ->
  sink:(int -> outcome -> unit) ->
  unit

(** One-shot convenience (prepares on each call; use {!prepare} +
    {!create_ctx} + {!run_ctx} in loops). *)
val run :
  ?fuel:int -> ?hooks:hooks -> ?max_depth:int -> Minic.Ir.program -> input:string -> outcome

(** Run and return the crash, if any. *)
val crash_of :
  ?fuel:int -> ?hooks:hooks -> ?max_depth:int -> Minic.Ir.program -> input:string -> Crash.t option
