(** CFG interpreter for MiniC IR programs — the stand-in for native
    execution of the instrumented target. It runs a program on an input
    byte string, emitting the events that the instrumentation listeners of
    [Pathcov.Feedback] consume, and converting memory-safety violations
    into {!Crash.t} reports exactly where ASAN would. Execution is bounded
    by a fuel budget (the analogue of AFL's timeout) and a call-depth
    limit. MiniC locals are zero-initialised at function entry. *)

(** Instrumentation hooks, invoked during execution. *)
type hooks = {
  h_call : int -> unit;  (** [fid]: entering a function *)
  h_block : int -> int -> unit;  (** [fid block]: control enters a block *)
  h_edge : int -> int -> int -> unit;  (** [fid src dst]: CFG transition *)
  h_ret : int -> int -> unit;  (** [fid block]: return executes *)
  h_cmp : int -> int -> unit;  (** comparison operands, for cmplog *)
}

val no_hooks : hooks

type status =
  | Finished of int option  (** [main] returned normally *)
  | Crashed of Crash.t
  | Hung  (** fuel exhausted: the analogue of an AFL timeout *)

type outcome = {
  status : status;
  blocks_executed : int;  (** work metric: blocks entered across the run *)
}

val default_fuel : int
val default_max_depth : int

(** Maximum [array(n)] size before the VM reports [Bad_alloc]. *)
val max_alloc : int

(** A program with names resolved to slots — build once per program,
    reuse across the campaign's millions of executions. *)
type prepared

(** Raised by {!prepare} when the IR references an unbound variable or an
    undefined function (cannot happen for sema-checked programs). *)
exception Unknown_name of string

val prepare : Minic.Ir.program -> prepared

(** Execute a prepared program from [main] on [input] through a fresh
    context. Never raises for program-under-test misbehaviour — crashes,
    hangs and type confusion all come back as [status]. *)
val run_prepared :
  ?fuel:int -> ?hooks:hooks -> ?max_depth:int -> prepared -> input:string -> outcome

(** A reusable execution context over a prepared program: owns the frame
    pools, global slots and call stack, reused across executions so the
    steady-state hot path allocates nothing beyond the program's own
    [array(n)] requests. Single-threaded; use one per worker domain. *)
type exec_ctx

val create_ctx : ?hooks:hooks -> prepared -> exec_ctx
val run_ctx : ?fuel:int -> ?max_depth:int -> exec_ctx -> input:string -> outcome

(** Execute on the first [len] bytes of [buf] without copying them into a
    string — the zero-copy path for pooled mutation buffers. The caller
    must not mutate [buf] during the run; raises [Invalid_argument] if
    [len] exceeds the buffer. *)
val run_ctx_sub :
  ?fuel:int -> ?max_depth:int -> exec_ctx -> buf:Bytes.t -> len:int -> outcome

(** One-shot convenience (prepares on each call; use {!prepare} +
    {!create_ctx} + {!run_ctx} in loops). *)
val run :
  ?fuel:int -> ?hooks:hooks -> ?max_depth:int -> Minic.Ir.program -> input:string -> outcome

(** Run and return the crash, if any. *)
val crash_of :
  ?fuel:int -> ?hooks:hooks -> ?max_depth:int -> Minic.Ir.program -> input:string -> Crash.t option
