(** CFG interpreter for MiniC IR programs.

    The interpreter is the stand-in for native execution of the
    instrumented target: it runs a program on an input byte string,
    emitting the events (calls, block entries, edge traversals, returns,
    comparisons) that the instrumentation hooks of [Pathcov.Feedback]
    consume, and converting memory-safety violations into [Crash.t]
    reports exactly where ASAN would. Execution is bounded by a fuel
    budget (the analogue of AFL's timeout) and a call-depth limit.

    Because a fuzzing campaign executes the same program millions of
    times, the hot path is allocation-free: [prepare] resolves variable
    names to frame slots and function names to indices once, and
    [create_ctx] builds a reusable execution context — per-function frame
    pools with unboxed [int array] locals plus a separate array-slot
    table, pooled global cells reset through a touched-slot journal, and
    a preallocated [(fid, site)] call stack that only materialises
    [Crash.frame] records when a crash actually happens. Steady-state
    execution through [run_ctx] allocates nothing beyond the program's
    own [array(n)] requests and the small per-run [outcome] record.
    MiniC locals are zero-initialised at function entry (as if the
    target were built with [-ftrivial-auto-var-init=zero]). *)

type hooks = {
  h_call : int -> unit;  (** [fid]: entering a function *)
  h_block : int -> int -> unit;  (** [fid block]: control enters a block *)
  h_edge : int -> int -> int -> unit;  (** [fid src dst]: CFG transition *)
  h_ret : int -> int -> unit;  (** [fid block]: return executes *)
  h_cmp : int -> int -> unit;  (** comparison operands, for cmplog *)
}

let no_hooks =
  {
    h_call = (fun _ -> ());
    h_block = (fun _ _ -> ());
    h_edge = (fun _ _ _ -> ());
    h_ret = (fun _ _ -> ());
    h_cmp = (fun _ _ -> ());
  }

type status =
  | Finished of int option  (** [main] returned normally *)
  | Crashed of Crash.t
  | Hung  (** fuel exhausted: the analogue of an AFL timeout *)

type outcome = {
  status : status;
  blocks_executed : int;  (** work metric: blocks entered across the run *)
}

let default_fuel = 200_000
let default_max_depth = 128
let max_alloc = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Resolved (slot-addressed) representation *)

type slot = Local of int | Global of int

(* Comparison operators are split out so the evaluator can invoke the
   cmplog hook without re-dispatching on the operator. *)
type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type arith = Aadd | Asub | Amul | Adiv | Arem | Aband | Abor | Abxor | Ashl | Ashr

type rexpr =
  | Rconst of int
  | Rload of slot * int  (** slot, site of the enclosing instruction *)
  | Rindex of rexpr * rexpr * int  (** base, index, site *)
  | Rarith of arith * rexpr * rexpr * int  (** site for div-by-zero *)
  | Rcmp of cmp * rexpr * rexpr
  | Rneg of rexpr
  | Rnot of rexpr
  | Rbnot of rexpr
  | Rin of rexpr
  | Rlen
  | Rarray_make of rexpr * int
  | Rarray_len of rexpr * int
  | Rabs of rexpr

type rinstr =
  | Rassign of slot * rexpr
  | Rstore of rexpr * rexpr * rexpr * int
  | Rcall of { dst : slot option; callee : int; args : rexpr array; site : int }
  | Rbug of int * int  (** bug id, site *)
  | Rcheck of rexpr * int * int  (** cond, bug id, site *)

type rterm =
  | Rgoto of int
  | Rbranch of rexpr * int * int * int  (** cond, true, false, site *)
  | Rret of rexpr option * int

type rblock = { rinstrs : rinstr array; rterm : rterm }

type rfunc = {
  rname : string;
  nlocals : int;
  param_slots : slot array;  (** always [Local _]; prebuilt so argument
                                 passing allocates no constructor *)
  rblocks : rblock array;
}

type prepared = {
  prog : Minic.Ir.program;
  rfuncs : rfunc array;
  main_id : int;
  global_names : string array;
  global_sizes : int array;  (** 0 = int cell, n > 0 = array of n *)
}

(* ------------------------------------------------------------------ *)
(* Resolution *)

exception Unknown_name of string

let resolve_func (globals : (string, int) Hashtbl.t)
    (fidx : (string, int) Hashtbl.t) (f : Minic.Ir.func) : rfunc =
  let locals : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let nlocals = ref 0 in
  let local name =
    match Hashtbl.find_opt locals name with
    | Some i -> i
    | None ->
        let i = !nlocals in
        incr nlocals;
        Hashtbl.replace locals name i;
        i
  in
  (* Params first, then the function's declared locals and temporaries;
     loads and stores of anything else resolve to globals. *)
  let param_slots =
    Array.of_list (List.map (fun p -> Local (local p)) f.params)
  in
  List.iter (fun name -> ignore (local name)) f.locals;
  let slot name =
    match Hashtbl.find_opt locals name with
    | Some i -> Local i
    | None -> (
        match Hashtbl.find_opt globals name with
        | Some i -> Global i
        | None -> raise (Unknown_name name))
  in
  let arith_of : Minic.Ast.binop -> arith option = function
    | Add -> Some Aadd
    | Sub -> Some Asub
    | Mul -> Some Amul
    | Div -> Some Adiv
    | Rem -> Some Arem
    | Band -> Some Aband
    | Bor -> Some Abor
    | Bxor -> Some Abxor
    | Shl -> Some Ashl
    | Shr -> Some Ashr
    | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> None
  in
  let cmp_of : Minic.Ast.binop -> cmp = function
    | Eq -> Ceq
    | Ne -> Cne
    | Lt -> Clt
    | Le -> Cle
    | Gt -> Cgt
    | Ge -> Cge
    | _ -> assert false
  in
  let rec rexpr site (e : Minic.Ir.expr) : rexpr =
    match e with
    | Const n -> Rconst n
    | Load v -> Rload (slot v, site)
    | Index (b, i) -> Rindex (rexpr site b, rexpr site i, site)
    | Binop (op, a, b) -> begin
        match arith_of op with
        | Some a' -> Rarith (a', rexpr site a, rexpr site b, site)
        | None -> Rcmp (cmp_of op, rexpr site a, rexpr site b)
      end
    | Unop (Neg, a) -> Rneg (rexpr site a)
    | Unop (Not, a) -> Rnot (rexpr site a)
    | Unop (Bnot, a) -> Rbnot (rexpr site a)
    | InByte a -> Rin (rexpr site a)
    | InputLen -> Rlen
    | ArrayMake a -> Rarray_make (rexpr site a, site)
    | ArrayLen a -> Rarray_len (rexpr site a, site)
    | Abs a -> Rabs (rexpr site a)
  in
  let rinstr (i : Minic.Ir.instr) : rinstr =
    match i with
    | Assign { dst; e; site } -> Rassign (slot dst, rexpr site e)
    | Store { base; idx; v; site } ->
        Rstore (rexpr site base, rexpr site idx, rexpr site v, site)
    | CallI { dst; callee; args; site } ->
        let cid =
          match Hashtbl.find_opt fidx callee with
          | Some c -> c
          | None -> raise (Unknown_name callee)
        in
        Rcall
          {
            dst = Option.map (fun d -> slot d) dst;
            callee = cid;
            args = Array.of_list (List.map (rexpr site) args);
            site;
          }
    | BugI { bug; site } -> Rbug (bug, site)
    | CheckI { cond; bug; site } -> Rcheck (rexpr site cond, bug, site)
  in
  let rterm (t : Minic.Ir.term) : rterm =
    match t with
    | Goto l -> Rgoto l
    | Branch { cond; if_true; if_false; site } ->
        Rbranch (rexpr site cond, if_true, if_false, site)
    | Ret { e; site } -> Rret (Option.map (rexpr site) e, site)
  in
  let rblocks =
    Array.map
      (fun (b : Minic.Ir.block) ->
        { rinstrs = Array.of_list (List.map rinstr b.instrs); rterm = rterm b.term })
      f.blocks
  in
  { rname = f.name; nlocals = !nlocals; param_slots; rblocks }

(** Resolve a program once; reuse the result across executions. *)
let prepare (prog : Minic.Ir.program) : prepared =
  let globals = Hashtbl.create 16 in
  let names = ref [] and sizes = ref [] in
  List.iteri
    (fun i g ->
      let name, size =
        match g with
        | Minic.Ast.Gint n -> (n, 0)
        | Minic.Ast.Garr (n, s) -> (n, s)
      in
      Hashtbl.replace globals name i;
      names := name :: !names;
      sizes := size :: !sizes)
    prog.globals;
  let fidx = Hashtbl.create 16 in
  Array.iteri (fun i (f : Minic.Ir.func) -> Hashtbl.replace fidx f.name i) prog.funcs;
  let main_id =
    match Hashtbl.find_opt fidx "main" with
    | Some id -> id
    | None -> invalid_arg "Interp.prepare: program has no main"
  in
  {
    prog;
    rfuncs = Array.map (resolve_func globals fidx) prog.funcs;
    main_id;
    global_names = Array.of_list (List.rev !names);
    global_sizes = Array.of_list (List.rev !sizes);
  }

(* Memoised [prepare] keyed on physical program identity. Campaigns,
   measurement replays and throughput cells all resolve the same cached
   program; one shared [prepared] (immutable once built) saves the
   per-invocation resolution that used to run per cell/per replay. The
   list is short (one entry per live program) and mutex-guarded so
   worker domains can share it. *)
let prepare_cache : (Minic.Ir.program * prepared) list ref = ref []
let prepare_cache_lock = Mutex.create ()
let prepare_cache_cap = 16

let prepare_cached (prog : Minic.Ir.program) : prepared =
  Mutex.lock prepare_cache_lock;
  let hit =
    List.find_opt (fun (p, _) -> p == prog) !prepare_cache
  in
  match hit with
  | Some (_, prepared) ->
      Mutex.unlock prepare_cache_lock;
      prepared
  | None ->
      Mutex.unlock prepare_cache_lock;
      let prepared = prepare prog in
      Mutex.lock prepare_cache_lock;
      (* racing domains may both prepare; first insert wins *)
      let r =
        match List.find_opt (fun (p, _) -> p == prog) !prepare_cache with
        | Some (_, winner) -> winner
        | None ->
            let keep =
              if List.length !prepare_cache >= prepare_cache_cap then
                List.filteri (fun i _ -> i < prepare_cache_cap - 1) !prepare_cache
              else !prepare_cache
            in
            prepare_cache := (prog, prepared) :: keep;
            prepared
      in
      Mutex.unlock prepare_cache_lock;
      r

(* ------------------------------------------------------------------ *)
(* Execution context: pooled frames, globals and call stack *)

exception Crash_exn of Crash.kind * int
exception Out_of_fuel

(* Distinguished "this slot holds an int" marker for array-slot tables.
   Length 1 on purpose: zero-length OCaml arrays all share the atom (so a
   program-made [array(0)] would compare physically equal to a length-0
   sentinel), while every program array of length >= 1 is freshly
   allocated and therefore never physically equal to this private one. *)
let no_arr : int array = Array.make 1 0

(* A frame is an unboxed int-slot array plus a parallel array-slot table.
   [arrs_live] is false while every [arrs] entry is [no_arr], letting the
   (overwhelmingly common) int-only functions skip the pointer-array scan
   on both zeroing and reads. *)
type frame = {
  f_ints : int array;
  f_arrs : int array array;
  mutable f_arrs_live : bool;
}

(* Per-function frame pool: [live] frames are active activations (the
   function's recursion depth); frames above [live] are free. *)
type fpool = { mutable frames : frame array; mutable live : int }

type exec_ctx = {
  p : prepared;
  hooks : hooks;
  (* Globals: unboxed int cells, current array bindings, and the pooled
     per-declaration arrays that bindings are restored to on reset. For
     int globals [gorig] holds [no_arr], doubling as the dynamic tag. *)
  gints : int array;
  garrs : int array array;
  gorig : int array array;
  (* Touched-globals journal (mirrors [Coverage_map]'s clear strategy):
     only slots written during an execution are reset. Array *contents*
     are mutated through aliases and so are re-zeroed unconditionally. *)
  gdirty : Bytes.t;
  mutable gtouched : int array;
  mutable ngtouched : int;
  pools : fpool array;  (** indexed by function id *)
  (* Call stack as parallel int stacks; [Crash.frame] records are only
     materialised when a crash actually happens. *)
  mutable cs_fid : int array;
  mutable cs_site : int array;
  mutable cs_top : int;
  (* Per-execution registers. [input_len] is authoritative: the scratch
     fast path ([run_ctx_sub]) views a pooled buffer as a string whose
     physical length exceeds the candidate's. *)
  mutable input : string;
  mutable input_len : int;
  mutable fuel : int;
  mutable max_depth : int;
  mutable blocks : int;
  (* Return-value scratch: [ret_a == no_arr] means the value is the int
     in [ret_i]. Lets [call] return results without boxing. *)
  mutable ret_i : int;
  mutable ret_a : int array;
  (* Batched-reset support. [gclear] is the subset of [gorig] that holds
     real arrays, precomputed so reset skips int-global sentinels.
     [unwound] is set by the exception fences of both engines' run
     loops: a clean run leaves every callee pool back at zero (calls
     release their frame on return) with only the entry frame live, so
     reset can skip the full pool sweep unless an exception unwound the
     stack. *)
  gclear : int array array;
  mutable unwound : bool;
  (* Introspection: how many journaled global slots the last reset had
     to undo — the width of the dirty set. Written by [reset_ctx], read
     only by observers (never by execution). *)
  mutable last_reset_width : int;
}

let make_frame nlocals =
  {
    f_ints = Array.make nlocals 0;
    f_arrs = Array.make nlocals no_arr;
    f_arrs_live = false;
  }

(** Build a reusable execution context. One context serves one campaign:
    frames, globals and the call stack are pooled here and reused by
    every [run_ctx] call. Contexts are single-threaded; use one per
    worker domain. *)
let create_ctx ?(hooks = no_hooks) (p : prepared) : exec_ctx =
  let ng = Array.length p.global_sizes in
  let gorig =
    Array.map
      (fun size -> if size = 0 then no_arr else Array.make size 0)
      p.global_sizes
  in
  {
    p;
    hooks;
    gints = Array.make ng 0;
    garrs = Array.copy gorig;
    gorig;
    gdirty = Bytes.make (max 1 ng) '\000';
    gtouched = Array.make (max 16 ng) 0;
    ngtouched = 0;
    pools = Array.map (fun _ -> { frames = [||]; live = 0 }) p.rfuncs;
    cs_fid = Array.make 64 0;
    cs_site = Array.make 64 0;
    cs_top = 0;
    input = "";
    input_len = 0;
    fuel = 0;
    max_depth = default_max_depth;
    blocks = 0;
    ret_i = 0;
    ret_a = no_arr;
    gclear =
      Array.of_list
        (List.filter (fun a -> a != no_arr) (Array.to_list gorig));
    unwound = false;
    last_reset_width = 0;
  }

(* Reset between executions: undo journaled global-slot writes, re-zero
   declared array globals (their contents are reachable through aliases,
   so content dirtiness cannot be slot-journaled), drop leftover frames
   from crash unwinding, and clear the per-execution registers. *)
let reset_ctx (ctx : exec_ctx) : unit =
  ctx.last_reset_width <- ctx.ngtouched;
  for k = 0 to ctx.ngtouched - 1 do
    let i = Array.unsafe_get ctx.gtouched k in
    Array.unsafe_set ctx.gints i 0;
    Array.unsafe_set ctx.garrs i (Array.unsafe_get ctx.gorig i);
    Bytes.unsafe_set ctx.gdirty i '\000'
  done;
  ctx.ngtouched <- 0;
  let gc = ctx.gclear in
  for k = 0 to Array.length gc - 1 do
    let a = Array.unsafe_get gc k in
    Array.fill a 0 (Array.length a) 0
  done;
  (* Clean runs release every callee frame on return, so only the entry
     pool can be live; crash/hang unwinding skips the releases and is
     flagged by [unwound], paying the full sweep only then. *)
  if ctx.unwound then begin
    Array.iter (fun (pool : fpool) -> pool.live <- 0) ctx.pools;
    ctx.unwound <- false
  end
  else (Array.unsafe_get ctx.pools ctx.p.main_id).live <- 0;
  ctx.cs_top <- 0;
  ctx.blocks <- 0;
  ctx.ret_i <- 0;
  ctx.ret_a <- no_arr

(* Take a zeroed frame for one activation of [fid]. Frames above the
   pool's high-water mark are created on demand and kept forever. *)
let acquire (ctx : exec_ctx) (fid : int) : frame =
  let pool = Array.unsafe_get ctx.pools fid in
  let n = Array.length pool.frames in
  if pool.live = n then begin
    let nlocals = ctx.p.rfuncs.(fid).nlocals in
    pool.frames <-
      Array.init
        (max 4 (2 * n))
        (fun i -> if i < n then pool.frames.(i) else make_frame nlocals)
  end;
  let fr = Array.unsafe_get pool.frames pool.live in
  pool.live <- pool.live + 1;
  Array.fill fr.f_ints 0 (Array.length fr.f_ints) 0;
  if fr.f_arrs_live then begin
    Array.fill fr.f_arrs 0 (Array.length fr.f_arrs) no_arr;
    fr.f_arrs_live <- false
  end;
  fr

(* Like [acquire] but leaves [f_ints] unzeroed (the array table is still
   reset — reads consult it to tell ints from arrays). For engines that
   prove definite assignment and zero the residual slots themselves. *)
let acquire_raw (ctx : exec_ctx) (fid : int) : frame =
  let pool = Array.unsafe_get ctx.pools fid in
  let n = Array.length pool.frames in
  if pool.live = n then begin
    let nlocals = ctx.p.rfuncs.(fid).nlocals in
    pool.frames <-
      Array.init
        (max 4 (2 * n))
        (fun i -> if i < n then pool.frames.(i) else make_frame nlocals)
  end;
  let fr = Array.unsafe_get pool.frames pool.live in
  pool.live <- pool.live + 1;
  if fr.f_arrs_live then begin
    Array.fill fr.f_arrs 0 (Array.length fr.f_arrs) no_arr;
    fr.f_arrs_live <- false
  end;
  fr

let push_call (ctx : exec_ctx) (fid : int) (site : int) : unit =
  if ctx.cs_top = Array.length ctx.cs_fid then begin
    let n = Array.length ctx.cs_fid in
    let grow a = Array.init (2 * n) (fun i -> if i < n then a.(i) else 0) in
    ctx.cs_fid <- grow ctx.cs_fid;
    ctx.cs_site <- grow ctx.cs_site
  end;
  Array.unsafe_set ctx.cs_fid ctx.cs_top fid;
  Array.unsafe_set ctx.cs_site ctx.cs_top site;
  ctx.cs_top <- ctx.cs_top + 1

(* Materialise the [Crash.frame] list (innermost first) from the int
   stacks — only reached when a crash actually happened. *)
let materialize_stack (ctx : exec_ctx) : Crash.frame list =
  let rec go k acc =
    if k >= ctx.cs_top then acc
    else
      go (k + 1)
        ({ Crash.fn = ctx.p.rfuncs.(ctx.cs_fid.(k)).rname; site = ctx.cs_site.(k) }
        :: acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Slot access *)

let type_err site what = raise (Crash_exn (Crash.Type_error what, site))

let[@inline] set_local_int (fr : frame) i v =
  Array.unsafe_set fr.f_ints i v;
  if fr.f_arrs_live && Array.unsafe_get fr.f_arrs i != no_arr then
    Array.unsafe_set fr.f_arrs i no_arr

let[@inline] set_local_arr (fr : frame) i a =
  Array.unsafe_set fr.f_arrs i a;
  fr.f_arrs_live <- true

let[@inline] touch_global (ctx : exec_ctx) i =
  if Bytes.unsafe_get ctx.gdirty i = '\000' then begin
    Bytes.unsafe_set ctx.gdirty i '\001';
    if ctx.ngtouched = Array.length ctx.gtouched then begin
      let bigger = Array.make (2 * Array.length ctx.gtouched) 0 in
      Array.blit ctx.gtouched 0 bigger 0 ctx.ngtouched;
      ctx.gtouched <- bigger
    end;
    Array.unsafe_set ctx.gtouched ctx.ngtouched i;
    ctx.ngtouched <- ctx.ngtouched + 1
  end

let[@inline] set_global_int (ctx : exec_ctx) i v =
  touch_global ctx i;
  Array.unsafe_set ctx.gints i v;
  if Array.unsafe_get ctx.garrs i != no_arr then
    Array.unsafe_set ctx.garrs i no_arr

let[@inline] set_global_arr (ctx : exec_ctx) i a =
  touch_global ctx i;
  Array.unsafe_set ctx.garrs i a

let[@inline] write_int ctx fr (dst : slot) v =
  match dst with
  | Local i -> set_local_int fr i v
  | Global i -> set_global_int ctx i v

let[@inline] write_arr ctx fr (dst : slot) a =
  match dst with
  | Local i -> set_local_arr fr i a
  | Global i -> set_global_arr ctx i a

let[@inline] read_int ctx (fr : frame) site (s : slot) =
  match s with
  | Local i ->
      if fr.f_arrs_live && Array.unsafe_get fr.f_arrs i != no_arr then
        type_err site "int expected"
      else Array.unsafe_get fr.f_ints i
  | Global i ->
      if Array.unsafe_get ctx.garrs i != no_arr then type_err site "int expected"
      else Array.unsafe_get ctx.gints i

let[@inline] read_arr ctx (fr : frame) site (s : slot) =
  match s with
  | Local i ->
      let a = if fr.f_arrs_live then Array.unsafe_get fr.f_arrs i else no_arr in
      if a == no_arr then type_err site "array expected" else a
  | Global i ->
      let a = Array.unsafe_get ctx.garrs i in
      if a == no_arr then type_err site "array expected" else a

(* Copy one slot's raw value (int or array) to another without boxing. *)
let copy_slot ctx (src_fr : frame) (src : slot) (dst_fr : frame) (dst : slot) =
  match src with
  | Local i ->
      let a =
        if src_fr.f_arrs_live then Array.unsafe_get src_fr.f_arrs i else no_arr
      in
      if a != no_arr then write_arr ctx dst_fr dst a
      else write_int ctx dst_fr dst (Array.unsafe_get src_fr.f_ints i)
  | Global i ->
      let a = Array.unsafe_get ctx.garrs i in
      if a != no_arr then write_arr ctx dst_fr dst a
      else write_int ctx dst_fr dst (Array.unsafe_get ctx.gints i)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

(* Integer-typed evaluation; array-typed sub-expressions are reached only
   through [eval_arr]. *)
let rec eval_int ctx (fr : frame) (e : rexpr) : int =
  match e with
  | Rconst n -> n
  | Rload (s, site) -> read_int ctx fr site s
  | Rindex (b, i, site) ->
      let a = eval_arr ctx fr site b in
      let idx = eval_int ctx fr i in
      if idx < 0 || idx >= Array.length a then
        raise (Crash_exn (Crash.Out_of_bounds { len = Array.length a; idx }, site))
      else Array.unsafe_get a idx
  | Rarith (op, e1, e2, site) -> begin
      let a = eval_int ctx fr e1 in
      let b = eval_int ctx fr e2 in
      match op with
      | Aadd -> a + b
      | Asub -> a - b
      | Amul -> a * b
      | Adiv -> if b = 0 then raise (Crash_exn (Crash.Div_by_zero, site)) else a / b
      | Arem -> if b = 0 then raise (Crash_exn (Crash.Div_by_zero, site)) else a mod b
      | Aband -> a land b
      | Abor -> a lor b
      | Abxor -> a lxor b
      | Ashl -> a lsl (min 62 (b land 63))
      | Ashr -> a asr (min 62 (b land 63))
    end
  | Rcmp (op, e1, e2) -> begin
      let a = eval_int ctx fr e1 in
      let b = eval_int ctx fr e2 in
      ctx.hooks.h_cmp a b;
      match op with
      | Ceq -> if a = b then 1 else 0
      | Cne -> if a <> b then 1 else 0
      | Clt -> if a < b then 1 else 0
      | Cle -> if a <= b then 1 else 0
      | Cgt -> if a > b then 1 else 0
      | Cge -> if a >= b then 1 else 0
    end
  | Rneg e -> -eval_int ctx fr e
  | Rnot e -> if eval_int ctx fr e = 0 then 1 else 0
  | Rbnot e -> lnot (eval_int ctx fr e)
  | Rin e ->
      let i = eval_int ctx fr e in
      if i < 0 || i >= ctx.input_len then -1
      else Char.code (String.unsafe_get ctx.input i)
  | Rlen -> ctx.input_len
  | Rabs e -> abs (eval_int ctx fr e)
  | Rarray_make (_, site) -> type_err site "array in int context"
  | Rarray_len (e, site) -> Array.length (eval_arr ctx fr site e)

and eval_arr ctx (fr : frame) site (e : rexpr) : int array =
  match e with
  | Rload (s, _) -> read_arr ctx fr site s
  | Rarray_make (n, site') ->
      let n = eval_int ctx fr n in
      if n < 0 || n > max_alloc then raise (Crash_exn (Crash.Bad_alloc n, site'))
      else Array.make n 0
  | _ -> type_err site "array expected"

(* Evaluate [e] in [src_fr] and store the result (int or array, no
   boxing) into [dst] of [dst_fr]. The two frames differ only when
   passing call arguments directly into the callee frame. *)
let eval_into ctx (src_fr : frame) (dst_fr : frame) (dst : slot) (e : rexpr) :
    unit =
  match e with
  | Rload (s, _) -> copy_slot ctx src_fr s dst_fr dst
  | Rarray_make (n, site) ->
      let n = eval_int ctx src_fr n in
      if n < 0 || n > max_alloc then raise (Crash_exn (Crash.Bad_alloc n, site))
      else write_arr ctx dst_fr dst (Array.make n 0)
  | _ -> write_int ctx dst_fr dst (eval_int ctx src_fr e)

(* Evaluate a return expression into the context's return scratch. *)
let eval_ret ctx (fr : frame) (e : rexpr) : unit =
  match e with
  | Rload (s, _) -> begin
      match s with
      | Local i ->
          let a =
            if fr.f_arrs_live then Array.unsafe_get fr.f_arrs i else no_arr
          in
          if a != no_arr then ctx.ret_a <- a
          else begin
            ctx.ret_a <- no_arr;
            ctx.ret_i <- Array.unsafe_get fr.f_ints i
          end
      | Global i ->
          let a = Array.unsafe_get ctx.garrs i in
          if a != no_arr then ctx.ret_a <- a
          else begin
            ctx.ret_a <- no_arr;
            ctx.ret_i <- Array.unsafe_get ctx.gints i
          end
    end
  | Rarray_make (n, site) ->
      let n = eval_int ctx fr n in
      if n < 0 || n > max_alloc then raise (Crash_exn (Crash.Bad_alloc n, site))
      else ctx.ret_a <- Array.make n 0
  | _ ->
      ctx.ret_a <- no_arr;
      ctx.ret_i <- eval_int ctx fr e

let[@inline] burn ctx =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then raise Out_of_fuel

(* Execute one activation of [fid] in the (already zeroed and
   argument-filled) frame [fr]. The result lands in the return scratch. *)
let rec call ctx (fid : int) (fr : frame) (depth : int) : unit =
  if depth > ctx.max_depth then raise (Crash_exn (Crash.Stack_overflow, -1));
  let f = Array.unsafe_get ctx.p.rfuncs fid in
  ctx.hooks.h_call fid;
  let rec run_block label =
    burn ctx;
    ctx.blocks <- ctx.blocks + 1;
    ctx.hooks.h_block fid label;
    let b = Array.unsafe_get f.rblocks label in
    let n = Array.length b.rinstrs in
    for i = 0 to n - 1 do
      exec_instr ctx fr fid depth (Array.unsafe_get b.rinstrs i)
    done;
    match b.rterm with
    | Rgoto l ->
        ctx.hooks.h_edge fid label l;
        run_block l
    | Rbranch (cond, if_true, if_false, _site) ->
        let dst = if eval_int ctx fr cond <> 0 then if_true else if_false in
        ctx.hooks.h_edge fid label dst;
        run_block dst
    | Rret (e, _site) ->
        (match e with
        | Some e -> eval_ret ctx fr e
        | None ->
            ctx.ret_a <- no_arr;
            ctx.ret_i <- 0);
        ctx.hooks.h_ret fid label
  in
  run_block 0

and exec_instr ctx (fr : frame) fid depth (i : rinstr) : unit =
  burn ctx;
  match i with
  | Rassign (slot, e) -> eval_into ctx fr fr slot e
  | Rstore (base, idx, v, site) ->
      let a = eval_arr ctx fr site base in
      let i = eval_int ctx fr idx in
      let x = eval_int ctx fr v in
      if i < 0 || i >= Array.length a then
        raise (Crash_exn (Crash.Out_of_bounds { len = Array.length a; idx = i }, site))
      else Array.unsafe_set a i x
  | Rcall { dst; callee; args; site } ->
      (* Arguments evaluate (in the caller frame) directly into the
         callee's pooled frame: no intermediate value list. *)
      let cf = acquire ctx callee in
      let params = (Array.unsafe_get ctx.p.rfuncs callee).param_slots in
      for k = 0 to Array.length args - 1 do
        eval_into ctx fr cf (Array.unsafe_get params k) (Array.unsafe_get args k)
      done;
      push_call ctx fid site;
      call ctx callee cf (depth + 1);
      ctx.cs_top <- ctx.cs_top - 1;
      (Array.unsafe_get ctx.pools callee).live <-
        (Array.unsafe_get ctx.pools callee).live - 1;
      (match dst with
      | Some d ->
          if ctx.ret_a != no_arr then write_arr ctx fr d ctx.ret_a
          else write_int ctx fr d ctx.ret_i
      | None -> ())
  | Rbug (bug, site) -> raise (Crash_exn (Crash.Seeded bug, site))
  | Rcheck (cond, bug, site) ->
      if eval_int ctx fr cond = 0 then raise (Crash_exn (Crash.Check_failed bug, site))

let site_function (prog : Minic.Ir.program) site =
  if site >= 0 && site < Array.length prog.sites then prog.sites.(site).sfunc
  else "?"

(* Run [main] on whatever input registers are already set. *)
let run_current (ctx : exec_ctx) ~fuel ~max_depth : outcome =
  reset_ctx ctx;
  ctx.fuel <- fuel;
  ctx.max_depth <- max_depth;
  let status =
    try
      let fr = acquire ctx ctx.p.main_id in
      call ctx ctx.p.main_id fr 0;
      if ctx.ret_a != no_arr then Finished None else Finished (Some ctx.ret_i)
    with
    | Crash_exn (kind, site) ->
        ctx.unwound <- true;
        let top = { Crash.fn = site_function ctx.p.prog site; site } in
        Crashed { Crash.kind; stack = top :: materialize_stack ctx }
    | Out_of_fuel ->
        ctx.unwound <- true;
        Hung
    | Stack_overflow ->
        ctx.unwound <- true;
        Crashed { Crash.kind = Crash.Stack_overflow; stack = materialize_stack ctx }
  in
  { status; blocks_executed = ctx.blocks }

(** Execute the context's program from [main] on [input]. Never raises
    for program-under-test misbehaviour — crashes, hangs and type
    confusion all come back as [status]. Steady-state this allocates only
    the [outcome] record and whatever [array(n)] the program requests. *)
let run_ctx ?(fuel = default_fuel) ?(max_depth = default_max_depth)
    (ctx : exec_ctx) ~(input : string) : outcome =
  ctx.input <- input;
  ctx.input_len <- String.length input;
  run_current ctx ~fuel ~max_depth

(** Execute on the first [len] bytes of [buf] without copying them into a
    string — the zero-copy path for pooled mutation buffers. The VM never
    writes to its input, so viewing the buffer as a string is safe; the
    caller must not mutate [buf] during the run. *)
let run_ctx_sub ?(fuel = default_fuel) ?(max_depth = default_max_depth)
    (ctx : exec_ctx) ~(buf : Bytes.t) ~(len : int) : outcome =
  if len < 0 || len > Bytes.length buf then invalid_arg "Interp.run_ctx_sub";
  ctx.input <- Bytes.unsafe_to_string buf;
  ctx.input_len <- len;
  run_current ctx ~fuel ~max_depth

(** Execute a cohort of [n] candidates back-to-back on one context.
    [gen k] produces candidate [k] as a [(buf, len)] scratch view (same
    zero-copy contract as {!run_ctx_sub}); [sink k outcome] consumes its
    result before [gen (k + 1)] is called, so a single scratch buffer
    may back the whole cohort. The point of the batched entry is reset
    amortisation: back-to-back runs take the journaled fast path of
    [reset_ctx] (clean runs skip the frame-pool sweep entirely), and
    callers hoist their own per-candidate dispatch out of the loop.
    [clock]/[vm_s] bracket each VM run alone — generation and
    consumption are excluded, matching the one-shot entry points. *)
let run_batch ?(fuel = default_fuel) ?(max_depth = default_max_depth) ?clock
    ?(vm_s = fun (_ : float) -> ()) (ctx : exec_ctx) ~(n : int)
    ~(gen : int -> Bytes.t * int) ~(sink : int -> outcome -> unit) : unit =
  for k = 0 to n - 1 do
    let buf, len = gen k in
    if len < 0 || len > Bytes.length buf then invalid_arg "Interp.run_batch";
    ctx.input <- Bytes.unsafe_to_string buf;
    ctx.input_len <- len;
    let out =
      match clock with
      | None -> run_current ctx ~fuel ~max_depth
      | Some now ->
          let t0 = now () in
          let out = run_current ctx ~fuel ~max_depth in
          vm_s (now () -. t0);
          out
    in
    sink k out
  done

(** Execute a prepared program from [main] on [input] through a fresh
    context (use [create_ctx] + [run_ctx] in loops to reuse the pools). *)
let run_prepared ?fuel ?hooks ?max_depth (p : prepared) ~(input : string) :
    outcome =
  run_ctx ?fuel ?max_depth (create_ctx ?hooks p) ~input

(** One-shot convenience (prepares on each call; use [prepare] +
    [create_ctx] + [run_ctx] in loops). *)
let run ?fuel ?hooks ?max_depth (prog : Minic.Ir.program) ~input : outcome =
  run_prepared ?fuel ?hooks ?max_depth (prepare prog) ~input

(** Convenience: run and return the crash, if any. *)
let crash_of ?fuel ?hooks ?max_depth prog ~input : Crash.t option =
  match (run ?fuel ?hooks ?max_depth prog ~input).status with
  | Crashed c -> Some c
  | Finished _ | Hung -> None
