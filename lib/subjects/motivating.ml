(** The paper's Figure 1 motivating example, transliterated to MiniC: a
    heap overflow in [foo] that triggers only when execution reaches
    [arr[l + j]] through the rare [j = 3] block with a long input starting
    with 'h'. Used by the quickstart example, the Figure 1 generator and
    the test suite. *)

let source =
  {|
// Figure 1: arr is a heap array of size N=54; the write at arr[l + j]
// overflows only when the rare block set j = 3 and l = 52.
fn foo() {
  var arr = array(54);
  var l = len();
  if (l > 54 || l < 3) {
    return 0;
  }
  var j = 0;
  if (l % 4 == 0 && l > 39) {
    j = 3;                       // rare to reach
  } else {
    j = 0 - 2;
  }
  var c = in(0);
  if (c == 104) {
    // buffer overflow if reached via the rare block and l = 52
    arr[l + j] = 7;
  } else {
    j = abs(j);
    arr[j] = 0;
  }
  return j;
}

fn main() {
  return foo();
}
|}

let subject : Subject.t =
  {
    name = "motivating";
    description = "Figure 1 motivating example (path-dependent heap overflow)";
    source;
    seeds = [ "hello"; "some longer input to mutate" ];
    bugs =
      [
        {
          id = 0;
          (* the overflow is organic (no seeded id): identified by site *)
          summary = "heap overflow via rare block with len=52 and leading 'h'";
          bug_class = Subject.Path_dependent;
          witness = "h" ^ String.make 51 'x';
        };
      ];
  }

(** The organic overflow's ground-truth identity (site-based). The
    self-check reports the subject name and witness bytes on failure
    (see {!Subject.witness_identity_exn}). *)
let overflow_identity () : Vm.Crash.identity =
  Subject.witness_identity_exn subject ~witness:("h" ^ String.make 51 'x')
