(** The benchmark-subject abstraction: a MiniC program standing in for one
    UNIFUZZ target, with seed inputs, a ground-truth bug table, and one
    *witness input* per bug. The witnesses make the paper's manual bug
    deduplication exact and are verified by the test suite (every witness
    provably triggers its bug id; every seed runs crash-free). *)

type bug_class =
  | Shallow  (** reachable with little coverage progress *)
  | Magic  (** gated behind multi-byte magic values (cmplog territory) *)
  | Path_dependent
      (** triggers only via a specific path over edges that are all
          individually coverable — the paper's motivating class (§II-B) *)
  | Loop_accumulation
      (** state accumulated over repeated executions of the same paths,
          like the cflow [curs] overflow of §V-A *)
  | Deep  (** requires sustained coverage progress to reach *)

let bug_class_name = function
  | Shallow -> "shallow"
  | Magic -> "magic"
  | Path_dependent -> "path-dependent"
  | Loop_accumulation -> "loop-accumulation"
  | Deep -> "deep"

type bug = {
  id : int;  (** ground-truth identity, matches [bug]/[check] ids in source *)
  summary : string;
  bug_class : bug_class;
  witness : string;  (** a known input that triggers exactly this bug *)
}

type t = {
  name : string;  (** UNIFUZZ subject this stands in for *)
  description : string;
  source : string;  (** MiniC source text *)
  seeds : string list;
  bugs : bug list;
}

(** Compile a subject's source (parse + check + lower); memoised because
    experiments instantiate subjects repeatedly. The cache is guarded by a
    mutex since worker domains of the parallel experiment runner may look
    subjects up concurrently; the compiled IR itself is immutable, so
    sharing a cached program across domains is safe. *)
let ir_cache : (string, Minic.Ir.program) Hashtbl.t = Hashtbl.create 32

let ir_cache_lock = Mutex.create ()

let program (t : t) : Minic.Ir.program =
  Mutex.lock ir_cache_lock;
  match Hashtbl.find_opt ir_cache t.name with
  | Some p ->
      Mutex.unlock ir_cache_lock;
      p
  | None ->
      (* Compile outside the lock: lowering a large subject must not
         serialise unrelated lookups. A racing domain may compile the same
         subject; first insert wins and the copies are identical. *)
      Mutex.unlock ir_cache_lock;
      let p = Minic.Lower.compile t.source in
      Mutex.lock ir_cache_lock;
      let p =
        match Hashtbl.find_opt ir_cache t.name with
        | Some winner -> winner
        | None ->
            Hashtbl.replace ir_cache t.name p;
            p
      in
      Mutex.unlock ir_cache_lock;
      p

(** Compile fresh, bypassing the cache. Worker domains that must own
    their program outright (and everything reachable from it) use this;
    site identifiers are allocated per compilation, so repeated compiles
    of the same source yield structurally identical programs. *)
let compile_fresh (t : t) : Minic.Ir.program = Minic.Lower.compile t.source

(** Number of MiniC functions (the "Functions" column of Table I). *)
let num_functions (t : t) : int = Array.length (program t).funcs

let bug_ids (t : t) : int list = List.map (fun b -> b.id) t.bugs

(** Check one witness: run it and return the crash identity observed. *)
let witness_identity (t : t) (b : bug) : Vm.Crash.identity option =
  match Vm.Interp.crash_of (program t) ~input:b.witness with
  | Some crash -> Some (Vm.Crash.bug_identity crash)
  | None -> None

(** Witness self-check used by subject modules that assert their own
    ground truth: the identity a witness input actually triggers. A
    witness that no longer crashes fails with the subject name and the
    witness bytes in the message, so a registry-wide sweep pinpoints
    which subject's bug table went stale without a debugger. *)
let witness_identity_exn (t : t) ~(witness : string) : Vm.Crash.identity =
  match Vm.Interp.crash_of (program t) ~input:witness with
  | Some crash -> Vm.Crash.bug_identity crash
  | None ->
      failwith
        (Printf.sprintf "subject %s: witness %S no longer crashes" t.name
           witness)

(* Helpers for building binary seed/witness strings. *)
let b (l : int list) : string =
  String.init (List.length l) (fun i -> Char.chr (List.nth l i land 255))

let u16le v = b [ v land 255; (v lsr 8) land 255 ]
let u32le v = b [ v land 255; (v lsr 8) land 255; (v lsr 16) land 255; (v lsr 24) land 255 ]
