(** A small fixed-size domain pool (OCaml 5 [Domain] + [Mutex]/[Condition],
    stdlib only) for fanning indexed task lists out across cores.

    Two consumers with different shapes share it:

    - the experiment matrix ([map]) is embarrassingly parallel — every
      (subject, fuzzer, trial) campaign is a pure function of its inputs —
      and wants one-shot fan-out: results land by task index, so the
      output array is identical for every worker count and schedule;
    - sharded campaigns want a *reusable* barrier: one pool outlives many
      sync epochs, each epoch submitting a batch of shard tasks and
      blocking on [wait] until the batch drains ([run_phase]). Spawning
      domains once per campaign instead of once per epoch keeps the
      barrier cost at mutex/condvar level.

    Failure handling is centralised in the workers: a raising task never
    kills its worker domain. The worker captures the exception and its
    backtrace immediately (in the raising domain, before any lock is
    taken — the capture cannot be clobbered by another domain's raise),
    and the pool records the failure with the smallest submission index,
    so the surfaced exception is stable across schedules. [wait] and
    [shutdown] re-raise it in the calling domain after the queue has
    drained and (for [shutdown]) every worker has been joined — a raising
    task can no longer leave workers blocked or domains unjoined.

    Scheduling is observable without being influential: [map] can emit
    [Trial_begin]/[Trial_end] events (task index, worker id, wall-clock)
    into an {!Obs.Sink.t}, serialised under the result mutex so sinks
    need no locking of their own. Results never depend on the sink.

    Tasks must not share mutable state unless that state is itself
    domain-safe; the experiment runner rebuilds the per-task program,
    Ball–Larus plans and interpreter state, and sharded campaigns hand
    each shard its own execution context, for exactly this reason. *)

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (** signalled when a task is queued or the pool closes *)
  idle : Condition.t;  (** signalled when the last in-flight task finishes *)
  tasks : (int * (int -> unit)) Queue.t;
      (** (submission index, thunk); thunks receive the claiming worker's id *)
  mutable next_seq : int;  (** submission counter, for stable failure pick *)
  mutable running : int;  (** tasks currently executing on some worker *)
  mutable closing : bool;
  mutable domains : unit Domain.t list;
  mutable failure : (int * int * exn * Printexc.raw_backtrace) option;
      (** (submission index, worker, exn, backtrace) of the earliest
          failure since the last [wait]/[shutdown] *)
}

(** Worker count used when the caller does not pick one: one worker per
    core the runtime recommends. *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Keep the failure with the smallest submission index: tasks are claimed
   in submission order, so the surfaced exception is stable across
   schedules and worker counts. Caller holds the mutex. *)
let record_failure_locked pool seq worker e bt =
  match pool.failure with
  | Some (j, _, _, _) when j <= seq -> ()
  | _ -> pool.failure <- Some (seq, worker, e, bt)

(** Spawn a pool of [jobs] worker domains consuming submitted thunks.
    Each worker passes its id (0-based) to the tasks it claims. *)
let create ~jobs : t =
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      tasks = Queue.create ();
      next_seq = 0;
      running = 0;
      closing = false;
      domains = [];
      failure = None;
    }
  in
  let rec worker wid =
    (* invariant: the mutex is held here *)
    match Queue.take_opt pool.tasks with
    | Some (seq, task) ->
        pool.running <- pool.running + 1;
        Mutex.unlock pool.mutex;
        (match task wid with
        | () -> Mutex.lock pool.mutex
        | exception e ->
            (* capture in the raising domain, before touching the lock *)
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock pool.mutex;
            record_failure_locked pool seq wid e bt);
        pool.running <- pool.running - 1;
        if pool.running = 0 && Queue.is_empty pool.tasks then
          Condition.broadcast pool.idle;
        worker wid
    | None ->
        if pool.closing then Mutex.unlock pool.mutex
        else begin
          Condition.wait pool.work pool.mutex;
          worker wid
        end
  in
  pool.domains <-
    List.init (max 1 jobs) (fun wid ->
        Domain.spawn (fun () ->
            Mutex.lock pool.mutex;
            worker wid));
  pool

let submit (pool : t) (task : int -> unit) : unit =
  Mutex.lock pool.mutex;
  if pool.closing then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is closed"
  end
  else begin
    Queue.add (pool.next_seq, task) pool.tasks;
    pool.next_seq <- pool.next_seq + 1;
    Condition.signal pool.work;
    Mutex.unlock pool.mutex
  end

(** Has any task failed since the last [wait]/[shutdown]? Observable
    mid-flight, so long fan-outs can stop submitting doomed work. *)
let failed (pool : t) : bool =
  Mutex.lock pool.mutex;
  let f = pool.failure <> None in
  Mutex.unlock pool.mutex;
  f

(* Take and clear the recorded failure, print the worker-side frames
   (the re-raised backtrace only covers the calling domain) and re-raise
   in the calling domain. *)
let reraise_failure pool =
  Mutex.lock pool.mutex;
  let f = pool.failure in
  pool.failure <- None;
  Mutex.unlock pool.mutex;
  match f with
  | None -> ()
  | Some (seq, worker, e, bt) ->
      let frames = Printexc.raw_backtrace_to_string bt in
      Printf.eprintf "pathfuzz: task %d failed on worker %d: %s\n%s%!" seq
        worker (Printexc.to_string e)
        (if frames = "" then "" else frames);
      Printexc.raise_with_backtrace e bt

(** Barrier: block until every submitted task has finished, then re-raise
    the earliest recorded failure (if any) in the calling domain. The
    pool stays open — submit the next phase afterwards. *)
let wait (pool : t) : unit =
  Mutex.lock pool.mutex;
  while pool.running > 0 || not (Queue.is_empty pool.tasks) do
    Condition.wait pool.idle pool.mutex
  done;
  Mutex.unlock pool.mutex;
  reraise_failure pool

(** One synchronization phase: submit [n] tasks ([f] receives the task
    index and the claiming worker's id) and block until all of them have
    finished. Tasks of one phase run concurrently; phases never overlap.
    The earliest failure is re-raised after the whole phase has drained,
    leaving the pool reusable. *)
let run_phase (pool : t) (n : int) (f : int -> worker:int -> unit) : unit =
  for i = 0 to n - 1 do
    submit pool (fun wid -> f i ~worker:wid)
  done;
  wait pool

(** Close the pool: queued tasks drain, every worker domain exits and is
    joined — even when tasks failed — and only then is the earliest
    failure re-raised. Acts as the completion barrier for [map]. *)
let shutdown (pool : t) : unit =
  Mutex.lock pool.mutex;
  pool.closing <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  (* Workers never die of task exceptions (they are captured above), but
     join defensively so one pathological domain death cannot leave the
     rest unjoined. *)
  let join_failure = ref None in
  List.iter
    (fun d ->
      try Domain.join d
      with e -> if !join_failure = None then join_failure := Some e)
    pool.domains;
  pool.domains <- [];
  reraise_failure pool;
  match !join_failure with None -> () | Some e -> raise e

(** [map ~jobs ?sink ?on_done n f] computes [|f 0; ...; f (n-1)|] on up to
    [jobs] worker domains. Tasks are claimed in index order from a shared
    queue (dynamic scheduling, so uneven task costs balance), and results
    land in their task's slot — the returned array is independent of the
    schedule. [sink] receives [Trial_begin] at claim and [Trial_end]
    (with per-trial wall-clock) at completion; both are emitted under the
    result mutex, so a plain ring or JSONL sink is safe to share.
    [on_done i r] fires once per finished task under the same mutex, so
    callbacks (e.g. a progress line) never interleave. If any task (or
    its [on_done]) raises, the exception with the lowest task index is
    re-raised in the calling domain after the queue has drained and every
    worker has been joined — preceded by a stderr diagnostic naming the
    task, its worker and the worker-side backtrace. Remaining queued
    tasks are skipped. [jobs <= 1] runs sequentially in the calling
    domain (worker id 0) with identical results and callbacks. *)
let map ?(jobs = 1) ?sink ?on_done (n : int) (f : int -> 'a) : 'a array =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  let jobs = min (max 1 jobs) n in
  let emit ev =
    match sink with Some (s : Obs.Sink.t) -> s.emit ev | None -> ()
  in
  if n = 0 then [||]
  else if jobs = 1 then
    Array.init n (fun i ->
        emit (Obs.Event.Trial_begin { task = i; worker = 0 });
        let t0 = Unix.gettimeofday () in
        let r = f i in
        emit
          (Obs.Event.Trial_end
             { task = i; worker = 0; wall_s = Unix.gettimeofday () -. t0 });
        (match on_done with Some g -> g i r | None -> ());
        r)
  else begin
    let state = Mutex.create () in
    let results = Array.make n None in
    let pool = create ~jobs in
    for i = 0 to n - 1 do
      submit pool (fun worker ->
          (* tasks are submitted in index order, so the pool's earliest
             recorded failure is the lowest-index one *)
          let skip = failed pool in
          if not skip then begin
            Mutex.lock state;
            emit (Obs.Event.Trial_begin { task = i; worker });
            Mutex.unlock state;
            let t0 = Unix.gettimeofday () in
            let r = f i in
            let wall_s = Unix.gettimeofday () -. t0 in
            Mutex.lock state;
            results.(i) <- Some r;
            emit (Obs.Event.Trial_end { task = i; worker; wall_s });
            let finish =
              match on_done with Some g -> fun () -> g i r | None -> ignore
            in
            Fun.protect ~finally:(fun () -> Mutex.unlock state) finish
          end)
    done;
    shutdown pool;
    Array.map
      (function Some r -> r | None -> invalid_arg "Pool.map: missing result")
      results
  end
