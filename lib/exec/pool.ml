(** A small fixed-size domain pool (OCaml 5 [Domain] + [Mutex]/[Condition],
    stdlib only) for fanning indexed task lists out across cores.

    The experiment matrix is embarrassingly parallel — every
    (subject, fuzzer, trial) campaign is a pure function of its inputs —
    so the pool's one job is to spread those tasks over worker domains
    without ever letting scheduling order leak into results. [map] stores
    each result by its task index and returns a plain array in task
    order: the output is identical for every worker count and schedule.

    Tasks must not share mutable state unless that state is itself
    domain-safe; the experiment runner rebuilds the per-task program,
    Ball–Larus plans and interpreter state for exactly this reason. *)

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (** signalled when a task is queued or the pool closes *)
  tasks : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable domains : unit Domain.t list;
}

(** Worker count used when the caller does not pick one: one worker per
    core the runtime recommends. *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

(** Spawn a pool of [jobs] worker domains consuming submitted thunks. *)
let create ~jobs : t =
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      tasks = Queue.create ();
      closing = false;
      domains = [];
    }
  in
  let rec worker () =
    Mutex.lock pool.mutex;
    let rec take () =
      match Queue.take_opt pool.tasks with
      | Some task ->
          Mutex.unlock pool.mutex;
          (* Submitted thunks are expected to capture their own failures
             (as [map]'s do); a raise here would kill the worker domain. *)
          task ();
          worker ()
      | None ->
          if pool.closing then Mutex.unlock pool.mutex
          else begin
            Condition.wait pool.work pool.mutex;
            take ()
          end
    in
    take ()
  in
  pool.domains <- List.init (max 1 jobs) (fun _ -> Domain.spawn worker);
  pool

let submit (pool : t) (task : unit -> unit) : unit =
  Mutex.lock pool.mutex;
  if pool.closing then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is closed"
  end
  else begin
    Queue.add task pool.tasks;
    Condition.signal pool.work;
    Mutex.unlock pool.mutex
  end

(** Close the pool: queued tasks drain, then every worker domain exits
    and is joined. Acts as the completion barrier for [map]. *)
let shutdown (pool : t) : unit =
  Mutex.lock pool.mutex;
  pool.closing <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(** [map ~jobs ?on_done n f] computes [|f 0; ...; f (n-1)|] on up to
    [jobs] worker domains. Tasks are claimed in index order from a shared
    queue (dynamic scheduling, so uneven task costs balance), and results
    land in their task's slot — the returned array is independent of the
    schedule. [on_done i r] fires once per finished task under the
    result mutex, so callbacks (e.g. a progress line) never interleave.
    If any task raises, the exception with the lowest recorded task index
    is re-raised in the calling domain after all workers stop; remaining
    queued tasks are skipped. [jobs <= 1] runs sequentially in the
    calling domain with identical results and callbacks. *)
let map ?(jobs = 1) ?on_done (n : int) (f : int -> 'a) : 'a array =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  let jobs = min (max 1 jobs) n in
  if n = 0 then [||]
  else if jobs = 1 then
    Array.init n (fun i ->
        let r = f i in
        (match on_done with Some g -> g i r | None -> ());
        r)
  else begin
    let state = Mutex.create () in
    let results = Array.make n None in
    let failure = ref None in
    (* Keep the failure with the smallest task index: tasks are claimed in
       index order, so the surfaced exception is stable across runs. *)
    let record_failure_locked i e bt =
      match !failure with
      | Some (j, _, _) when j <= i -> ()
      | _ -> failure := Some (i, e, bt)
    in
    let pool = create ~jobs in
    for i = 0 to n - 1 do
      submit pool (fun () ->
          Mutex.lock state;
          let skip = !failure <> None in
          Mutex.unlock state;
          if not skip then
            match f i with
            | r ->
                Mutex.lock state;
                results.(i) <- Some r;
                (match on_done with
                | Some g -> (
                    try g i r
                    with e ->
                      record_failure_locked i e (Printexc.get_raw_backtrace ()))
                | None -> ());
                Mutex.unlock state
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                Mutex.lock state;
                record_failure_locked i e bt;
                Mutex.unlock state)
    done;
    shutdown pool;
    match !failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some r -> r | None -> invalid_arg "Pool.map: missing result")
          results
  end
