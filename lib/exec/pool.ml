(** A small fixed-size domain pool (OCaml 5 [Domain] + [Mutex]/[Condition],
    stdlib only) for fanning indexed task lists out across cores.

    The experiment matrix is embarrassingly parallel — every
    (subject, fuzzer, trial) campaign is a pure function of its inputs —
    so the pool's one job is to spread those tasks over worker domains
    without ever letting scheduling order leak into results. [map] stores
    each result by its task index and returns a plain array in task
    order: the output is identical for every worker count and schedule.

    Scheduling is observable without being influential: [map] can emit
    [Trial_begin]/[Trial_end] events (task index, worker id, wall-clock)
    into an {!Obs.Sink.t}, serialised under the result mutex so sinks
    need no locking of their own. Results never depend on the sink.

    Tasks must not share mutable state unless that state is itself
    domain-safe; the experiment runner rebuilds the per-task program,
    Ball–Larus plans and interpreter state for exactly this reason. *)

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (** signalled when a task is queued or the pool closes *)
  tasks : (int -> unit) Queue.t;  (** thunks receive the claiming worker's id *)
  mutable closing : bool;
  mutable domains : unit Domain.t list;
}

(** Worker count used when the caller does not pick one: one worker per
    core the runtime recommends. *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

(** Spawn a pool of [jobs] worker domains consuming submitted thunks.
    Each worker passes its id (0-based) to the tasks it claims. *)
let create ~jobs : t =
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      tasks = Queue.create ();
      closing = false;
      domains = [];
    }
  in
  let rec worker wid =
    Mutex.lock pool.mutex;
    let rec take () =
      match Queue.take_opt pool.tasks with
      | Some task ->
          Mutex.unlock pool.mutex;
          (* Submitted thunks are expected to capture their own failures
             (as [map]'s do); a raise here would kill the worker domain. *)
          task wid;
          worker wid
      | None ->
          if pool.closing then Mutex.unlock pool.mutex
          else begin
            Condition.wait pool.work pool.mutex;
            take ()
          end
    in
    take ()
  in
  pool.domains <-
    List.init (max 1 jobs) (fun wid -> Domain.spawn (fun () -> worker wid));
  pool

let submit (pool : t) (task : int -> unit) : unit =
  Mutex.lock pool.mutex;
  if pool.closing then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is closed"
  end
  else begin
    Queue.add task pool.tasks;
    Condition.signal pool.work;
    Mutex.unlock pool.mutex
  end

(** Close the pool: queued tasks drain, then every worker domain exits
    and is joined. Acts as the completion barrier for [map]. *)
let shutdown (pool : t) : unit =
  Mutex.lock pool.mutex;
  pool.closing <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(** [map ~jobs ?sink ?on_done n f] computes [|f 0; ...; f (n-1)|] on up to
    [jobs] worker domains. Tasks are claimed in index order from a shared
    queue (dynamic scheduling, so uneven task costs balance), and results
    land in their task's slot — the returned array is independent of the
    schedule. [sink] receives [Trial_begin] at claim and [Trial_end]
    (with per-trial wall-clock) at completion; both are emitted under the
    result mutex, so a plain ring or JSONL sink is safe to share.
    [on_done i r] fires once per finished task under the same mutex, so
    callbacks (e.g. a progress line) never interleave. If any task
    raises, the exception with the lowest recorded task index is
    re-raised in the calling domain after all workers stop — preceded by
    a stderr diagnostic naming the task, its worker and the captured
    backtrace, which otherwise dies with the worker domain. Remaining
    queued tasks are skipped. [jobs <= 1] runs sequentially in the
    calling domain (worker id 0) with identical results and callbacks. *)
let map ?(jobs = 1) ?sink ?on_done (n : int) (f : int -> 'a) : 'a array =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  let jobs = min (max 1 jobs) n in
  let emit ev =
    match sink with Some (s : Obs.Sink.t) -> s.emit ev | None -> ()
  in
  if n = 0 then [||]
  else if jobs = 1 then
    Array.init n (fun i ->
        emit (Obs.Event.Trial_begin { task = i; worker = 0 });
        let t0 = Unix.gettimeofday () in
        let r = f i in
        emit
          (Obs.Event.Trial_end
             { task = i; worker = 0; wall_s = Unix.gettimeofday () -. t0 });
        (match on_done with Some g -> g i r | None -> ());
        r)
  else begin
    let state = Mutex.create () in
    let results = Array.make n None in
    let failure = ref None in
    (* Keep the failure with the smallest task index: tasks are claimed in
       index order, so the surfaced exception is stable across runs. *)
    let record_failure_locked i w e bt =
      match !failure with
      | Some (j, _, _, _) when j <= i -> ()
      | _ -> failure := Some (i, w, e, bt)
    in
    let pool = create ~jobs in
    for i = 0 to n - 1 do
      submit pool (fun worker ->
          Mutex.lock state;
          let skip = !failure <> None in
          if not skip then emit (Obs.Event.Trial_begin { task = i; worker });
          Mutex.unlock state;
          if not skip then begin
            let t0 = Unix.gettimeofday () in
            match f i with
            | r ->
                let wall_s = Unix.gettimeofday () -. t0 in
                Mutex.lock state;
                results.(i) <- Some r;
                emit (Obs.Event.Trial_end { task = i; worker; wall_s });
                (match on_done with
                | Some g -> (
                    try g i r
                    with e ->
                      record_failure_locked i worker e
                        (Printexc.get_raw_backtrace ()))
                | None -> ());
                Mutex.unlock state
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                Mutex.lock state;
                record_failure_locked i worker e bt;
                Mutex.unlock state
          end)
    done;
    shutdown pool;
    match !failure with
    | Some (i, worker, e, bt) ->
        (* The raw backtrace re-raised below only covers the calling
           domain; print the worker-side frames while we still have them. *)
        let frames = Printexc.raw_backtrace_to_string bt in
        Printf.eprintf "pathfuzz: task %d failed on worker %d: %s\n%s%!" i
          worker (Printexc.to_string e)
          (if frames = "" then "" else frames);
        Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some r -> r | None -> invalid_arg "Pool.map: missing result")
          results
  end
