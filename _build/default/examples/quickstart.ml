(** Quickstart: the paper's Figure 1 walkthrough.

    Compiles the motivating example, prints the Ball–Larus machinery for
    [foo] (edge increments, path table), demonstrates that the path-aware
    feedback flags as novel a test case that edge coverage cannot
    distinguish, and finishes by letting the path-aware fuzzer find the
    heap overflow. Run with: dune exec examples/quickstart.exe *)

let () =
  let subject = Subjects.Motivating.subject in
  let prog = Subjects.Subject.program subject in
  let foo = Minic.Ir.func_exn prog "foo" in

  Fmt.pr "=== CFG of foo (Figure 1) ===@.%a@.@." Minic.Pretty.pp_func foo;

  let plan = Pathcov.Ball_larus.of_func foo in
  Fmt.pr "acyclic paths: %d  instrumented transitions: %d@.@." plan.num_paths
    plan.probes;
  Fmt.pr "=== path table (id -> blocks) ===@.";
  List.iter
    (fun (id, nodes) ->
      Fmt.pr "  %2d: %s@." id
        (String.concat " -> "
           (List.map
              (fun n -> if n = plan.nblocks then "EXIT" else "L" ^ string_of_int n)
              nodes)))
    (Pathcov.Ball_larus.enumerate plan);

  (* The paper's §II-B scenario: after inputs covering every edge
     separately, a new combination of already-covered edges appears. *)
  let replay mode virgin input =
    let fb = Pathcov.Feedback.make mode prog in
    let hooks =
      {
        Vm.Interp.no_hooks with
        h_call = fb.on_call;
        h_block = fb.on_block;
        h_edge = fb.on_edge;
        h_ret = fb.on_ret;
      }
    in
    fb.reset ();
    Pathcov.Coverage_map.clear fb.trace;
    ignore (Vm.Interp.run ~hooks prog ~input);
    Pathcov.Coverage_map.classify fb.trace;
    Pathcov.Coverage_map.merge_into ~virgin fb.trace
  in
  (* len=52 takes the rare block; leading 'h' takes the dangerous branch.
     The two warm-up inputs cover all four arms on separate runs. *)
  let rare_no_h = String.make 52 'x' in
  let h_not_rare = "h" ^ String.make 40 'x' in
  let rare_with_h_short = "h" ^ String.make 43 'x' in
  (* 44 bytes: rare block (44%4=0, >39) via 'h', but no overflow: index 47 *)
  Fmt.pr "@.=== novelty of the crucial intermediate test case ===@.";
  List.iter
    (fun mode ->
      let virgin = Pathcov.Coverage_map.create_virgin () in
      ignore (replay mode virgin rare_no_h);
      ignore (replay mode virgin h_not_rare);
      let novelty = replay mode virgin rare_with_h_short in
      Fmt.pr "  %-5s feedback: crucial input %s@."
        (Pathcov.Feedback.mode_name mode)
        (if novelty = Pathcov.Coverage_map.Nothing then
           "DISCARDED (no new edges)"
         else "RETAINED (new path)"))
    [ Pathcov.Feedback.Edge; Pathcov.Feedback.Path ];

  Fmt.pr "@.=== fuzzing with the path-aware feedback ===@.";
  let r =
    Fuzz.Strategy.run ~budget:12_000 ~trial_seed:1 Fuzz.Strategy.path prog
      ~seeds:subject.seeds
  in
  Fmt.pr "execs=%d queue=%d crashes=%d unique bugs=%d@." r.execs r.queue_size
    r.triage.total_crashes
    (Fuzz.Triage.unique_bugs r.triage);
  List.iter
    (fun id ->
      match Fuzz.Triage.bug_witness r.triage id with
      | Some w ->
          Fmt.pr "  found %a with input %S@." Vm.Crash.pp_identity id
            (if String.length w > 16 then String.sub w 0 16 ^ "..." else w)
      | None -> ())
    (Fuzz.Triage.bugs r.triage)
