(** A miniature of the paper's Table II on a single subject: run the four
    §V fuzzer configurations (plus the sensitivity-ladder extras) on the
    gdk-like image loader and compare bugs, crashes and queue sizes.
    Run with: dune exec examples/compare_feedbacks.exe *)

let () =
  let subject = Subjects.Registry.find_exn "gdk" in
  let prog = Subjects.Subject.program subject in
  let plans = Pathcov.Ball_larus.of_program prog in
  let budget = 16_000 and trials = 3 in
  Fmt.pr "subject %s: %d functions, %d seeded bugs, %d execs x %d trials@.@."
    subject.name
    (Subjects.Subject.num_functions subject)
    (List.length subject.bugs) budget trials;
  Fmt.pr "%-8s %6s %8s %8s %8s  %s@." "fuzzer" "bugs" "crashes" "queue" "edges"
    "bug ids";
  List.iter
    (fun (fz : Fuzz.Strategy.fuzzer) ->
      let bugs = ref Fuzz.Stats.Bug_set.empty in
      let crashes = ref 0 and queue = ref 0 and edges = ref Fuzz.Measure.Int_set.empty in
      for t = 1 to trials do
        let r =
          Fuzz.Strategy.run ~plans ~budget ~trial_seed:(t * 31) fz prog
            ~seeds:subject.seeds
        in
        bugs :=
          Fuzz.Stats.Bug_set.union !bugs
            (Fuzz.Stats.bug_set (Fuzz.Triage.bugs r.triage));
        crashes := !crashes + Fuzz.Triage.unique_crashes r.triage;
        queue := !queue + r.queue_size;
        edges :=
          Fuzz.Measure.Int_set.union !edges
            (Fuzz.Measure.edge_union prog r.final_queue)
      done;
      let ids =
        Fuzz.Stats.Bug_set.elements !bugs
        |> List.map (fun id -> Fmt.str "%a" Vm.Crash.pp_identity id)
        |> String.concat " "
      in
      Fmt.pr "%-8s %6d %8d %8d %8d  %s@." fz.name
        (Fuzz.Stats.Bug_set.cardinal !bugs)
        !crashes (!queue / trials)
        (Fuzz.Measure.Int_set.cardinal !edges)
        ids)
    [
      Fuzz.Strategy.path;
      Fuzz.Strategy.pcguard;
      Fuzz.Strategy.cull ();
      Fuzz.Strategy.opp;
      Fuzz.Strategy.block;
      Fuzz.Strategy.ngram 4;
      Fuzz.Strategy.pathafl;
    ]
