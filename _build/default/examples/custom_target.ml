(** Fuzzing your own target: the downstream-user scenario from the
    artifact's "Experiment customization" appendix. Write a MiniC program,
    compile it with the library front-end, and point any of the fuzzer
    configurations at it — the equivalent of building with
    AFL_PATH_PROFILING=1 and running afl-fuzz.
    Run with: dune exec examples/custom_target.exe *)

let my_target =
  {|
// A tiny configuration-file parser: "key=value" lines.
global keys_seen;
global debug_level;

fn handle_pair(kstart, klen, vstart, vlen) {
  keys_seen = keys_seen + 1;
  check(klen > 0, 1);                  // empty key accepted by the grammar
  if (klen == 5 && in(kstart) == 100 && in(kstart + 1) == 101) {
    // "debug" (prefix check only, like sloppy real parsers)
    var v = 0;
    var i = 0;
    while (i < vlen) {
      v = (v * 10) + (in(vstart + i) - 48);
      i = i + 1;
    }
    debug_level = v;
    check(debug_level <= 9, 2);        // debug level table has 10 entries
  }
  return keys_seen;
}

fn main() {
  keys_seen = 0;
  debug_level = 0;
  var p = 0;
  var line = 0;
  while (in(p) != -1 && line < 16) {
    var kstart = p;
    while (in(p) != 61 && in(p) != 10 && in(p) != -1) {
      p = p + 1;
    }
    if (in(p) == 61) {
      var klen = p - kstart;
      var vstart = p + 1;
      p = p + 1;
      while (in(p) != 10 && in(p) != -1) {
        p = p + 1;
      }
      handle_pair(kstart, klen, vstart, p - vstart);
    }
    if (in(p) == 10) {
      p = p + 1;
    }
    line = line + 1;
  }
  if (keys_seen > 8 && debug_level == 7) {
    bug(3);                            // stale config cache at debug 7
  }
  return keys_seen;
}
|}

let () =
  (* front-end: parse, check, lower — errors come back with positions *)
  let prog =
    try Minic.Lower.compile my_target with
    | Minic.Parser.Error (msg, pos) ->
        Fmt.epr "parse error at %a: %s@." Minic.Ast.pp_pos pos msg;
        exit 1
    | Minic.Sema.Error e ->
        Fmt.epr "sema error at %a: %s@." Minic.Ast.pp_pos e.pos e.msg;
        exit 1
  in
  (* inspect the instrumentation before fuzzing *)
  let plans = Pathcov.Ball_larus.of_program prog in
  Array.iteri
    (fun i (pl : Pathcov.Ball_larus.t) ->
      Fmt.pr "fn %-12s blocks=%-3d acyclic paths=%-4d probes=%d@."
        prog.funcs.(i).name pl.nblocks pl.num_paths pl.probes)
    plans.plans;

  (* run the baseline path-aware fuzzer, then the culling variant *)
  let seeds = [ "debug=3\nname=x\n"; "a=1\nb=2\n" ] in
  List.iter
    (fun (fz : Fuzz.Strategy.fuzzer) ->
      let r = Fuzz.Strategy.run ~plans ~budget:20_000 ~trial_seed:7 fz prog ~seeds in
      Fmt.pr "@.%s: %d execs, queue %d, %d unique bugs@." fz.name r.execs
        r.queue_size
        (Fuzz.Triage.unique_bugs r.triage);
      List.iter
        (fun id ->
          let w = Option.value ~default:"" (Fuzz.Triage.bug_witness r.triage id) in
          Fmt.pr "  %a triggered by %S@." Vm.Crash.pp_identity id w)
        (Fuzz.Triage.bugs r.triage))
    [ Fuzz.Strategy.path; Fuzz.Strategy.cull () ]
