examples/path_profiler.mli:
