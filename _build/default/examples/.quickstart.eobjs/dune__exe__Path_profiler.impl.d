examples/path_profiler.ml: Array Fmt Hashtbl List Minic Option Pathcov String Subjects Vm
