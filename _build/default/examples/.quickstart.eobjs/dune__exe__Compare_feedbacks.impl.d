examples/compare_feedbacks.ml: Fmt Fuzz List Pathcov String Subjects Vm
