examples/custom_target.ml: Array Fmt Fuzz List Minic Option Pathcov Vm
