examples/compare_feedbacks.mli:
