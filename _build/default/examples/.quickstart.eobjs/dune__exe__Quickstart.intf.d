examples/quickstart.mli:
