examples/quickstart.ml: Fmt Fuzz List Minic Pathcov String Subjects Vm
