(** Ball–Larus as a classic path profiler (the encoding's original use,
    §III-A cites its value in performance measurement and debugging): run
    a workload through the jq-like JSON parser and report the hottest
    acyclic paths per function, regenerated from their IDs.
    Run with: dune exec examples/path_profiler.exe *)

let workload =
  [
    {_|{"name": "pathcov", "tags": [1, 2, 3], "ok": true}|_};
    {_|[[1,2],[3,4],[5,6],[7,8]]|_};
    {_|{"a": {"b": {"c": [null, false, 12.5]}}}|_};
    "-3.25";
  ]

let () =
  let subject = Subjects.Registry.find_exn "jq" in
  let prog = Subjects.Subject.program subject in
  let plans = Pathcov.Ball_larus.of_program prog in
  let counts : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let regs = ref [] in
  let bump fid pid =
    let k = (fid, pid) in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  let hooks =
    {
      Vm.Interp.no_hooks with
      h_call = (fun _ -> regs := 0 :: !regs);
      h_edge =
        (fun fid src dst ->
          match Pathcov.Ball_larus.on_edge plans.plans.(fid) ~src ~dst with
          | None -> ()
          | Some (Pathcov.Ball_larus.Add k) -> begin
              match !regs with [] -> () | r :: rest -> regs := (r + k) :: rest
            end
          | Some (Pathcov.Ball_larus.Commit_back { add; reset }) -> begin
              match !regs with
              | [] -> ()
              | r :: rest ->
                  bump fid (r + add);
                  regs := reset :: rest
            end);
      h_ret =
        (fun fid block ->
          match !regs with
          | [] -> ()
          | r :: rest ->
              bump fid (r + Pathcov.Ball_larus.on_ret plans.plans.(fid) ~block);
              regs := rest);
    }
  in
  let prepared = Vm.Interp.prepare prog in
  List.iter
    (fun input -> ignore (Vm.Interp.run_prepared ~hooks prepared ~input))
    workload;

  Fmt.pr "path profile over %d documents:@.@." (List.length workload);
  Array.iteri
    (fun fid (f : Minic.Ir.func) ->
      let plan = plans.plans.(fid) in
      let here =
        Hashtbl.fold
          (fun (fid', pid) n acc -> if fid' = fid then (pid, n) :: acc else acc)
          counts []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      let total = List.fold_left (fun a (_, n) -> a + n) 0 here in
      if total > 0 then begin
        Fmt.pr "@[<v 2>%s: %d activations over %d distinct paths (of %d possible)@,"
          f.name total (List.length here) plan.num_paths;
        List.iteri
          (fun i (pid, n) ->
            if i < 3 then
              Fmt.pr "%5.1f%%  path %-4d %s@,"
                (100. *. float_of_int n /. float_of_int total)
                pid
                (String.concat "->"
                   (List.map string_of_int (Pathcov.Ball_larus.regenerate plan pid))))
          here;
        Fmt.pr "@]@."
      end)
    prog.funcs;
  Fmt.pr "total probes placed: %d (spanning-tree minimised)@." plans.total_probes
