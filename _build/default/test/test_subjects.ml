(** Benchmark-subject oracle tests: every subject compiles, every seed is
    crash-free, every witness triggers exactly its ground-truth bug, and
    random inputs never crash outside the ground-truth set (so the bug
    tables really are exhaustive oracles for the evaluation). *)

let check = Alcotest.check
let fail = Alcotest.fail

let subject_case (s : Subjects.Subject.t) =
  Alcotest.test_case s.name `Quick (fun () ->
      let prog = Subjects.Subject.program s in
      let prep = Vm.Interp.prepare prog in
      (* structural sanity *)
      check Alcotest.bool "has functions" true (Array.length prog.funcs >= 3);
      Array.iter
        (fun f ->
          let cfg = Minic.Cfg.of_func f in
          check Alcotest.bool ("reducible " ^ f.Minic.Ir.name) true
            (Minic.Loops.reducible cfg))
        prog.funcs;
      (* the Ball-Larus pass must succeed on every function *)
      let plans = Pathcov.Ball_larus.of_program prog in
      check Alcotest.bool "paths enumerable" true (plans.total_paths > 0);
      (* seeds run clean *)
      List.iter
        (fun seed ->
          match (Vm.Interp.run_prepared prep ~input:seed).status with
          | Vm.Interp.Finished _ -> ()
          | Vm.Interp.Crashed c ->
              fail (Fmt.str "seed crashes: %a" Vm.Crash.pp c)
          | Vm.Interp.Hung -> fail "seed hangs")
        s.seeds;
      (* each witness triggers exactly its bug *)
      List.iter
        (fun (bug : Subjects.Subject.bug) ->
          match (Vm.Interp.run_prepared prep ~input:bug.witness).status with
          | Vm.Interp.Crashed c
            when Vm.Crash.bug_identity c = Vm.Crash.Id bug.id ->
              ()
          | Vm.Interp.Crashed c ->
              fail
                (Fmt.str "witness for %d triggered %a instead" bug.id Vm.Crash.pp c)
          | Vm.Interp.Finished _ -> fail (Fmt.str "witness for %d does not crash" bug.id)
          | Vm.Interp.Hung -> fail (Fmt.str "witness for %d hangs" bug.id))
        s.bugs;
      (* bug ids are unique within the subject *)
      let ids = Subjects.Subject.bug_ids s in
      check Alcotest.int "unique ids" (List.length ids)
        (List.length (List.sort_uniq compare ids)))

(* Fuzz-ish oracle: random byte strings and mutated seeds may only crash
   with identities listed in the ground-truth table. *)
let random_input_oracle (s : Subjects.Subject.t) =
  Alcotest.test_case (s.name ^ " oracle") `Quick (fun () ->
      let prog = Subjects.Subject.program s in
      let prep = Vm.Interp.prepare prog in
      let known = Subjects.Subject.bug_ids s in
      let rng = Fuzz.Rng.create 1234 in
      let try_input input =
        match (Vm.Interp.run_prepared prep ~input).status with
        | Vm.Interp.Crashed c -> begin
            match Vm.Crash.bug_identity c with
            | Vm.Crash.Id id ->
                if not (List.mem id known) then
                  fail (Fmt.str "unknown seeded bug %d on %S" id input)
            | Vm.Crash.At_site _ ->
                fail (Fmt.str "organic crash outside ground truth: %a on %S"
                        Vm.Crash.pp c input)
          end
        | Vm.Interp.Finished _ | Vm.Interp.Hung -> ()
      in
      for _ = 1 to 150 do
        let len = Fuzz.Rng.int rng 48 in
        try_input (String.init len (fun _ -> Fuzz.Rng.byte rng))
      done;
      List.iter
        (fun seed ->
          for _ = 1 to 50 do
            try_input (Fuzz.Mutator.havoc rng seed)
          done)
        s.seeds)

let test_registry_complete () =
  check Alcotest.int "18 subjects" 18 (List.length Subjects.Registry.all);
  let names = Subjects.Registry.names () in
  check Alcotest.int "names unique" 18 (List.length (List.sort_uniq compare names));
  check Alcotest.bool "total bugs in range" true (Subjects.Registry.total_bugs () >= 60)

let test_registry_lookup () =
  check Alcotest.bool "find hits" true (Subjects.Registry.find "cflow" <> None);
  check Alcotest.bool "find misses" true (Subjects.Registry.find "nope" = None);
  match Subjects.Registry.find_exn "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument"

let test_bug_classes_represented () =
  (* the suite must exercise every bug class the paper discusses *)
  let classes =
    List.concat_map
      (fun (s : Subjects.Subject.t) ->
        List.map (fun (b : Subjects.Subject.bug) -> b.bug_class) s.bugs)
      Subjects.Registry.all
    |> List.sort_uniq compare
  in
  check Alcotest.int "all five classes" 5 (List.length classes)

let test_motivating_example () =
  let s = Subjects.Motivating.subject in
  let prog = Subjects.Subject.program s in
  (* seeds clean *)
  List.iter
    (fun seed ->
      match (Vm.Interp.run prog ~input:seed).status with
      | Vm.Interp.Finished _ -> ()
      | _ -> fail "seed misbehaves")
    s.seeds;
  (* the witness triggers the organic overflow *)
  match Subjects.Motivating.overflow_identity () with
  | Vm.Crash.At_site _ -> ()
  | Vm.Crash.Id _ -> fail "expected an organic (site-identified) overflow"

let test_functions_column () =
  (* Table I's Functions column must be derivable for every subject *)
  List.iter
    (fun (s : Subjects.Subject.t) ->
      check Alcotest.bool (s.name ^ " functions") true
        (Subjects.Subject.num_functions s >= 3))
    Subjects.Registry.all

let suite =
  [
    ("subjects", List.map subject_case Subjects.Registry.all);
    ("subject-oracles", List.map random_input_oracle Subjects.Registry.all);
    ( "registry",
      [
        Alcotest.test_case "complete" `Quick test_registry_complete;
        Alcotest.test_case "lookup" `Quick test_registry_lookup;
        Alcotest.test_case "bug classes" `Quick test_bug_classes_represented;
        Alcotest.test_case "motivating example" `Quick test_motivating_example;
        Alcotest.test_case "functions column" `Quick test_functions_column;
      ] );
  ]
