(** Front-end tests: lexer, parser, sema, lowering, CFG, dominance, loops. *)

let check = Alcotest.check
let fail = Alcotest.fail

open Minic

(* --- lexer --- *)

let test_lex_basic () =
  check (Alcotest.list Alcotest.string) "tokens"
    [ "fn"; "main"; "("; ")"; "{"; "return"; "1"; ";"; "}"; "<eof>" ]
    (List.map
       (fun (t : Minic.Lexer.tok) -> Minic.Lexer.token_to_string t.tok)
       (Minic.Lexer.tokenize "fn main() { return 1; }"))

let test_lex_multichar () =
  let got =
    List.map
      (fun (t : Minic.Lexer.tok) -> Minic.Lexer.token_to_string t.tok)
      (Minic.Lexer.tokenize "a==b!=c<=d>=e&&f||g<<h>>i")
  in
  check (Alcotest.list Alcotest.string) "longest match"
    [ "a"; "=="; "b"; "!="; "c"; "<="; "d"; ">="; "e"; "&&"; "f"; "||"; "g";
      "<<"; "h"; ">>"; "i"; "<eof>" ]
    got

let test_lex_comment () =
  let got = Minic.Lexer.tokenize "1 // two three\n4" in
  check Alcotest.int "comment skipped" 3 (List.length got)

let test_lex_positions () =
  match Minic.Lexer.tokenize "a\n  b" with
  | [ a; b; _eof ] ->
      check Alcotest.int "a line" 1 a.pos.line;
      check Alcotest.int "b line" 2 b.pos.line;
      check Alcotest.int "b col" 3 b.pos.col
  | _ -> fail "expected three tokens"

let test_lex_error () =
  match Minic.Lexer.tokenize "a $ b" with
  | exception Minic.Lexer.Error (_, pos) -> check Alcotest.int "col" 3 pos.col
  | _ -> fail "expected lexer error"

(* --- parser --- *)

let parse_main body =
  Minic.Parser.parse (Printf.sprintf "fn main() { %s }" body)

let main_stmts (p : Ast.program) =
  match p.funcs with [ f ] -> f.body | _ -> fail "one function expected"

let rec expr_str (e : Ast.expr_node) =
  match e.expr with
  | Ast.Int n -> string_of_int n
  | Ast.Var v -> v
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "(%s%s%s)" (expr_str a) (Ast.binop_to_string op) (expr_str b)
  | Ast.Unop (op, a) -> Printf.sprintf "(%s%s)" (Ast.unop_to_string op) (expr_str a)
  | Ast.In a -> Printf.sprintf "in(%s)" (expr_str a)
  | Ast.Len -> "len()"
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat "," (List.map expr_str args))
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" (expr_str a) (expr_str i)
  | Ast.ArrayMake a -> Printf.sprintf "array(%s)" (expr_str a)
  | Ast.ArrayLen a -> Printf.sprintf "array_len(%s)" (expr_str a)
  | Ast.Abs a -> Printf.sprintf "abs(%s)" (expr_str a)

let first_expr body =
  match main_stmts (parse_main body) with
  | [ { stmt = Ast.ExprStmt e; _ } ] -> expr_str e
  | _ -> fail "expected single expression statement"

let test_parse_precedence () =
  check Alcotest.string "mul binds tighter" "(1+(2*3))" (first_expr "1 + 2 * 3;");
  check Alcotest.string "parens" "((1+2)*3)" (first_expr "(1 + 2) * 3;");
  check Alcotest.string "cmp vs arith" "((a+1)<(b*2))" (first_expr "a + 1 < b * 2;");
  check Alcotest.string "and/or" "(a||(b&&c))" (first_expr "a || b && c;");
  check Alcotest.string "left assoc" "((a-b)-c)" (first_expr "a - b - c;");
  check Alcotest.string "unary" "((-a)+b)" (first_expr "-a + b;");
  check Alcotest.string "shift" "((a<<1)|(b>>2))" (first_expr "a << 1 | b >> 2;")

let test_parse_if_else_chain () =
  let p = parse_main "if (a) { } else if (b) { } else { c = 1; }" in
  match main_stmts p with
  | [ { stmt = Ast.If (_, _, [ { stmt = Ast.If (_, _, else2); _ } ]); _ } ] ->
      check Alcotest.int "final else" 1 (List.length else2)
  | _ -> fail "expected nested if-else chain"

let test_parse_statements () =
  let p =
    parse_main
      "var x = 1; x = x + 1; while (x < 3) { x = x + 1; } bug(7); check(x, 8); \
       return x;"
  in
  check Alcotest.int "statement count" 6 (List.length (main_stmts p))

let test_parse_store () =
  match main_stmts (parse_main "a[1] = 2;") with
  | [ { stmt = Ast.Store _; _ } ] -> ()
  | _ -> fail "expected store"

let test_parse_globals () =
  let p = Minic.Parser.parse "global x; global arr[9]; fn main() { return x; }" in
  check Alcotest.int "globals" 2 (List.length p.globals);
  match p.globals with
  | [ Ast.Gint "x"; Ast.Garr ("arr", 9) ] -> ()
  | _ -> fail "wrong globals"

let expect_parse_error src =
  match Minic.Parser.parse src with
  | exception Minic.Parser.Error _ -> ()
  | _ -> fail ("expected parse error for: " ^ src)

let test_parse_errors () =
  expect_parse_error "fn main() { return 1 }";
  expect_parse_error "fn main() { 1 + ; }";
  expect_parse_error "fn main() { if a { } }";
  expect_parse_error "fn main() { 1 = 2; }";
  expect_parse_error "fn () { }";
  expect_parse_error "global 3;"

(* --- sema --- *)

let expect_sema_error src =
  match Minic.Sema.front src with
  | exception Minic.Sema.Error _ -> ()
  | _ -> fail ("expected sema error for: " ^ src)

let test_sema_ok () =
  ignore
    (Minic.Sema.front
       "global g; fn f(x) { var y = x; return y + g; } fn main() { return f(1); }")

let test_sema_errors () =
  expect_sema_error "fn f() { return 0; }";
  (* no main *)
  expect_sema_error "fn main(x) { return x; }";
  (* main arity *)
  expect_sema_error "fn main() { return y; }";
  (* unbound *)
  expect_sema_error "fn main() { y = 1; return 0; }";
  (* assign undeclared *)
  expect_sema_error "fn main() { return f(); }";
  (* undefined callee *)
  expect_sema_error "fn f(x) { return x; } fn main() { return f(); }";
  (* arity *)
  expect_sema_error "fn main() { bug(1); bug(1); }";
  (* duplicate bug id *)
  expect_sema_error "fn f() { return 0; } fn f() { return 1; } fn main() { return 0; }";
  expect_sema_error "fn f(x, x) { return x; } fn main() { return 0; }";
  expect_sema_error "global g; global g; fn main() { return 0; }"

let test_sema_bug_ids () =
  let p =
    Minic.Sema.front "fn main() { bug(3); check(1, 9); bug(5); return 0; }"
  in
  check (Alcotest.list Alcotest.int) "bug ids" [ 3; 5; 9 ] (Minic.Sema.bug_ids p)

(* --- lowering / CFG --- *)

let compile = Minic.Lower.compile

let test_lower_if_shape () =
  let p = compile "fn main() { var x = in(0); if (x) { x = 1; } else { x = 2; } return x; }" in
  let f = Minic.Ir.func_exn p "main" in
  let cfg = Minic.Cfg.of_func f in
  (* entry branch, then, else, join *)
  check Alcotest.int "blocks" 4 (Minic.Cfg.num_blocks cfg);
  check Alcotest.int "exits" 1 (List.length (Minic.Cfg.exits cfg))

let test_lower_while_back_edge () =
  let p = compile "fn main() { var i = 0; while (i < 3) { i = i + 1; } return i; }" in
  let f = Minic.Ir.func_exn p "main" in
  let cfg = Minic.Cfg.of_func f in
  check Alcotest.int "one back edge" 1 (List.length (Minic.Loops.back_edges cfg));
  check Alcotest.bool "reducible" true (Minic.Loops.reducible cfg)

let test_lower_short_circuit () =
  (* a && b in a condition becomes a branch chain: no Land survives *)
  let p = compile "fn main() { var a = in(0); if (a > 1 && a < 5) { a = 0; } return a; }" in
  let f = Minic.Ir.func_exn p "main" in
  let has_land = ref false in
  let rec walk (e : Minic.Ir.expr) =
    match e with
    | Minic.Ir.Binop (op, a, b) ->
        if op = Minic.Ast.Land || op = Minic.Ast.Lor then has_land := true;
        walk a;
        walk b
    | Minic.Ir.Unop (_, a)
    | Minic.Ir.InByte a
    | Minic.Ir.ArrayMake a
    | Minic.Ir.ArrayLen a
    | Minic.Ir.Abs a ->
        walk a
    | Minic.Ir.Index (a, b) -> walk a; walk b
    | Minic.Ir.Const _ | Minic.Ir.Load _ | Minic.Ir.InputLen -> ()
  in
  Array.iter
    (fun (b : Minic.Ir.block) ->
      List.iter
        (function
          | Minic.Ir.Assign { e; _ } -> walk e
          | Minic.Ir.Store { base; idx; v; _ } -> walk base; walk idx; walk v
          | Minic.Ir.CallI { args; _ } -> List.iter walk args
          | Minic.Ir.BugI _ -> ()
          | Minic.Ir.CheckI { cond; _ } -> walk cond)
        b.instrs;
      match b.term with
      | Minic.Ir.Branch { cond; _ } -> walk cond
      | Minic.Ir.Ret { e = Some e; _ } -> walk e
      | Minic.Ir.Ret { e = None; _ } | Minic.Ir.Goto _ -> ())
    f.blocks;
  check Alcotest.bool "no Land/Lor in IR" false !has_land

let test_lower_dead_code_pruned () =
  let p = compile "fn main() { return 1; var x = 2; x = 3; }" in
  let f = Minic.Ir.func_exn p "main" in
  (* the trailing statements are unreachable: single block remains *)
  check Alcotest.int "blocks" 1 (Array.length f.blocks)

let test_lower_call_hoisting () =
  let p =
    compile "fn f(x) { return x + 1; } fn main() { return f(1) + f(2); }"
  in
  let f = Minic.Ir.func_exn p "main" in
  let calls = ref 0 in
  Array.iter
    (fun (b : Minic.Ir.block) ->
      List.iter
        (function Minic.Ir.CallI _ -> incr calls | _ -> ())
        b.instrs)
    f.blocks;
  check Alcotest.int "two hoisted calls" 2 !calls

let test_sites_unique_and_dense () =
  let p = compile "fn main() { var x = in(0); if (x) { bug(1); } return x; }" in
  let n = Minic.Ir.num_sites p in
  check Alcotest.bool "has sites" true (n > 0);
  (* every instr/term site is within [0, n) *)
  Array.iter
    (fun (f : Minic.Ir.func) ->
      Array.iter
        (fun (b : Minic.Ir.block) ->
          List.iter
            (fun i ->
              let s = Minic.Ir.instr_site i in
              check Alcotest.bool "site in range" true (s >= 0 && s < n))
            b.instrs)
        f.blocks)
    p.funcs

(* --- dominance & loops --- *)

let test_dominance_diamond () =
  let p = compile "fn main() { var x = in(0); if (x) { x = 1; } else { x = 2; } return x; }" in
  let cfg = Minic.Cfg.of_func (Minic.Ir.func_exn p "main") in
  let dom = Minic.Dominance.compute cfg in
  (* entry dominates everything; neither branch arm dominates the join *)
  let n = Minic.Cfg.num_blocks cfg in
  for v = 0 to n - 1 do
    check Alcotest.bool "entry dominates" true (Minic.Dominance.dominates dom 0 v)
  done;
  let exits = Minic.Cfg.exits cfg in
  let join = List.hd exits in
  check Alcotest.int "join idom is entry" 0 (Minic.Dominance.immediate_dominator dom join)

let test_natural_loop_body () =
  let p =
    compile
      "fn main() { var i = 0; var s = 0; while (i < 4) { s = s + i; i = i + 1; } \
       return s; }"
  in
  let cfg = Minic.Cfg.of_func (Minic.Ir.func_exn p "main") in
  match Minic.Loops.loops cfg with
  | [ l ] ->
      check Alcotest.bool "header in body" true (List.mem l.header l.body);
      check Alcotest.bool "latch in body" true (List.mem (fst l.back_edge) l.body);
      let depths = Minic.Loops.depths cfg in
      check Alcotest.int "header depth" 1 depths.(l.header)
  | _ -> fail "expected exactly one loop"

let test_nested_loop_depths () =
  let p =
    compile
      "fn main() { var i = 0; var j = 0; var s = 0; while (i < 3) { j = 0; while \
       (j < 3) { s = s + 1; j = j + 1; } i = i + 1; } return s; }"
  in
  let cfg = Minic.Cfg.of_func (Minic.Ir.func_exn p "main") in
  check Alcotest.int "two loops" 2 (List.length (Minic.Loops.loops cfg));
  let depths = Minic.Loops.depths cfg in
  let max_depth = Array.fold_left max 0 depths in
  check Alcotest.int "max nesting" 2 max_depth

(* --- properties --- *)

let prop_generated_pipeline =
  QCheck.Test.make ~count:200 ~name:"generated programs survive the front-end"
    Gen.arbitrary_program (fun p ->
      Minic.Sema.check p;
      let ir = Minic.Lower.lower p in
      Array.for_all
        (fun (f : Minic.Ir.func) ->
          let cfg = Minic.Cfg.of_func f in
          (* labels dense, successors valid, reducible *)
          let n = Minic.Cfg.num_blocks cfg in
          Array.for_all
            (fun (b : Minic.Ir.block) ->
              List.for_all (fun s -> s >= 0 && s < n) (Minic.Ir.successors b.term))
            f.blocks
          && Minic.Loops.reducible cfg
          && List.length (Minic.Cfg.postorder cfg) = n)
        ir.funcs)

let prop_back_edges_dominated =
  QCheck.Test.make ~count:200 ~name:"back edge targets dominate sources"
    Gen.arbitrary_ir (fun ir ->
      Array.for_all
        (fun (f : Minic.Ir.func) ->
          let cfg = Minic.Cfg.of_func f in
          let dom = Minic.Dominance.compute cfg in
          List.for_all
            (fun (v, w) -> Minic.Dominance.dominates dom w v)
            (Minic.Loops.back_edges cfg))
        ir.funcs)

let suite =
  [
    ( "lexer",
      [
        Alcotest.test_case "basic tokens" `Quick test_lex_basic;
        Alcotest.test_case "multichar operators" `Quick test_lex_multichar;
        Alcotest.test_case "comments" `Quick test_lex_comment;
        Alcotest.test_case "positions" `Quick test_lex_positions;
        Alcotest.test_case "error position" `Quick test_lex_error;
      ] );
    ( "parser",
      [
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "if-else chain" `Quick test_parse_if_else_chain;
        Alcotest.test_case "statements" `Quick test_parse_statements;
        Alcotest.test_case "store statement" `Quick test_parse_store;
        Alcotest.test_case "globals" `Quick test_parse_globals;
        Alcotest.test_case "errors" `Quick test_parse_errors;
      ] );
    ( "sema",
      [
        Alcotest.test_case "accepts valid program" `Quick test_sema_ok;
        Alcotest.test_case "rejects invalid programs" `Quick test_sema_errors;
        Alcotest.test_case "collects bug ids" `Quick test_sema_bug_ids;
      ] );
    ( "lowering",
      [
        Alcotest.test_case "if produces diamond" `Quick test_lower_if_shape;
        Alcotest.test_case "while produces back edge" `Quick test_lower_while_back_edge;
        Alcotest.test_case "short-circuit desugared" `Quick test_lower_short_circuit;
        Alcotest.test_case "dead code pruned" `Quick test_lower_dead_code_pruned;
        Alcotest.test_case "calls hoisted" `Quick test_lower_call_hoisting;
        Alcotest.test_case "sites in range" `Quick test_sites_unique_and_dense;
      ] );
    ( "dominance-loops",
      [
        Alcotest.test_case "diamond dominance" `Quick test_dominance_diamond;
        Alcotest.test_case "natural loop body" `Quick test_natural_loop_body;
        Alcotest.test_case "nested loop depths" `Quick test_nested_loop_depths;
      ] );
    ( "frontend-properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_generated_pipeline; prop_back_edges_dominated ] );
  ]
