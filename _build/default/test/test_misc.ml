(** Remaining surface: printers, Graphviz output, table rendering, path
    registers across nested calls, and white-box resolution errors. *)

let check = Alcotest.check
let fail = Alcotest.fail

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_pretty_roundtrip_tokens () =
  let prog =
    Minic.Lower.compile
      "fn main() { var x = in(0); if (x > 2) { x = x * 3; } return x; }"
  in
  let s = Minic.Pretty.program_to_string prog in
  List.iter
    (fun needle ->
      check Alcotest.bool ("mentions " ^ needle) true (contains s needle))
    [ "fn main"; "in(0)"; "ret"; "goto"; "if" ]

let test_dot_output () =
  let prog =
    Minic.Lower.compile "fn main() { var i = 0; while (i < 3) { i = i + 1; } return i; }"
  in
  let f = Minic.Ir.func_exn prog "main" in
  let plan = Pathcov.Ball_larus.of_func f in
  let edge_label (src, dst) =
    match Pathcov.Ball_larus.on_edge plan ~src ~dst with
    | Some (Pathcov.Ball_larus.Add k) -> Some (Printf.sprintf "+%d" k)
    | Some (Pathcov.Ball_larus.Commit_back _) -> Some "commit"
    | None -> None
  in
  let dot = Minic.Dot.to_dot ~edge_label f in
  check Alcotest.bool "digraph" true (contains dot "digraph");
  check Alcotest.bool "has nodes" true (contains dot "n0 ");
  check Alcotest.bool "has edges" true (contains dot "->");
  check Alcotest.bool "back edge committed" true (contains dot "commit")

let test_dot_escaping () =
  let prog = Minic.Lower.compile {|fn main() { return in(0) == 34; }|} in
  let dot = Minic.Dot.to_dot (Minic.Ir.func_exn prog "main") in
  check Alcotest.bool "renders" true (String.length dot > 0)

let test_render_table_alignment () =
  let s =
    Experiments.Render.table ~title:"T" ~header:[ "a"; "bb" ]
      ~rows:[ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  let data_lines =
    List.filter (fun l -> contains l "x" || contains l "longer") lines
  in
  match data_lines with
  | [ l1; l2 ] -> check Alcotest.int "aligned widths" (String.length l1) (String.length l2)
  | _ -> fail "expected two data lines"

let test_render_floats () =
  check Alcotest.string "f1" "1.5" (Experiments.Render.f1 1.5);
  check Alcotest.string "f2 nan" "-" (Experiments.Render.f2 nan)

(* Path registers must nest correctly across recursive activations: each
   activation of [fact] commits exactly one acyclic path. *)
let test_path_register_nesting () =
  let src =
    "fn fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); } fn main() \
     { return fact(5); }"
  in
  let prog = Minic.Lower.compile src in
  let commits = ref 0 in
  let plans = Pathcov.Ball_larus.of_program prog in
  let regs = ref [] in
  let hooks =
    {
      Vm.Interp.no_hooks with
      h_call = (fun _ -> regs := 0 :: !regs);
      h_edge =
        (fun fid src dst ->
          match Pathcov.Ball_larus.on_edge plans.plans.(fid) ~src ~dst with
          | Some (Pathcov.Ball_larus.Add k) -> begin
              match !regs with [] -> () | r :: rest -> regs := (r + k) :: rest
            end
          | Some (Pathcov.Ball_larus.Commit_back _) -> incr commits
          | None -> ());
      h_ret =
        (fun _ _ ->
          incr commits;
          match !regs with [] -> () | _ :: rest -> regs := rest);
    }
  in
  ignore (Vm.Interp.run ~hooks prog ~input:"");
  (* 5 fact activations + main, each returning once, no loops *)
  check Alcotest.int "one commit per activation" 6 !commits;
  check Alcotest.int "stack drained" 0 (List.length !regs)

let test_prepare_rejects_unknown_name () =
  (* hand-built IR referencing an unbound name must be rejected at
     preparation time, not silently defaulted *)
  let f =
    {
      Minic.Ir.name = "main";
      params = [];
      locals = [];
      blocks =
        [|
          {
            Minic.Ir.label = 0;
            instrs = [ Minic.Ir.Assign { dst = "x"; e = Minic.Ir.Const 1; site = 0 } ];
            term = Minic.Ir.Ret { e = None; site = 1 };
          };
        |];
    }
  in
  let prog =
    {
      Minic.Ir.globals = [];
      funcs = [| f |];
      sites =
        Array.make 2
          { Minic.Ir.sfunc = "main"; spos = Minic.Ast.dummy_pos; skind = Minic.Ir.Sassign };
    }
  in
  match Vm.Interp.prepare prog with
  | exception Vm.Interp.Unknown_name "x" -> ()
  | exception e -> fail ("unexpected exception: " ^ Printexc.to_string e)
  | _ -> fail "expected Unknown_name"

let test_mutator_length_clamp () =
  let rng = Fuzz.Rng.create 2 in
  let big = String.make Fuzz.Mutator.max_len 'z' in
  for _ = 1 to 100 do
    let child = Fuzz.Mutator.havoc rng big in
    check Alcotest.bool "never exceeds max_len" true
      (String.length child <= Fuzz.Mutator.max_len)
  done

let test_i2s_widths () =
  let rng = Fuzz.Rng.create 1 in
  (* 4-byte little-endian *)
  let input = "??" ^ Subjects.Subject.u32le 305419896 ^ "!!" in
  let out =
    Fuzz.Mutator.i2s_apply rng { observed = 305419896; wanted = 1 } input
  in
  check Alcotest.string "u32 rewritten" ("??" ^ Subjects.Subject.u32le 1 ^ "!!") out

let test_subject_helpers () =
  check Alcotest.string "b" "\x01\xff" (Subjects.Subject.b [ 1; 255 ]);
  check Alcotest.string "u16le" "\x34\x12" (Subjects.Subject.u16le 0x1234);
  check Alcotest.string "u32le" "\x78\x56\x34\x12" (Subjects.Subject.u32le 0x12345678)

let test_campaign_hang_counted () =
  let src =
    "fn main() { if (in(0) == 104) { while (1) { } } return 0; }"
  in
  let prog = Minic.Lower.compile src in
  let config =
    {
      Fuzz.Campaign.default_config with
      budget = 2000;
      fuel = 2000;
      rng_seed = 1;
    }
  in
  let r = Fuzz.Campaign.run ~config prog ~seeds:[ "aa" ] in
  check Alcotest.bool "hangs recorded" true (r.triage.total_hangs > 0)

let test_pathafl_differs_from_edge () =
  let subject = Subjects.Registry.find_exn "gdk" in
  let prog = Subjects.Subject.program subject in
  let run mode =
    let fb = Pathcov.Feedback.make mode prog in
    let hooks =
      {
        Vm.Interp.no_hooks with
        h_call = fb.Pathcov.Feedback.on_call;
        h_block = fb.Pathcov.Feedback.on_block;
        h_edge = fb.Pathcov.Feedback.on_edge;
        h_ret = fb.Pathcov.Feedback.on_ret;
      }
    in
    fb.Pathcov.Feedback.reset ();
    ignore (Vm.Interp.run ~hooks prog ~input:(List.hd subject.seeds));
    Pathcov.Coverage_map.count_set fb.trace
  in
  (* the PathAFL sketch layers key-edge hashes on top of edge coverage *)
  check Alcotest.bool "pathafl has strictly more tuples" true
    (run Pathcov.Feedback.Pathafl > run Pathcov.Feedback.Edge)

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "pretty printer" `Quick test_pretty_roundtrip_tokens;
        Alcotest.test_case "dot output" `Quick test_dot_output;
        Alcotest.test_case "dot escaping" `Quick test_dot_escaping;
        Alcotest.test_case "table alignment" `Quick test_render_table_alignment;
        Alcotest.test_case "float rendering" `Quick test_render_floats;
        Alcotest.test_case "path registers nest across calls" `Quick
          test_path_register_nesting;
        Alcotest.test_case "prepare rejects unknown names" `Quick
          test_prepare_rejects_unknown_name;
        Alcotest.test_case "mutator length clamp" `Quick test_mutator_length_clamp;
        Alcotest.test_case "i2s u32 width" `Quick test_i2s_widths;
        Alcotest.test_case "subject byte helpers" `Quick test_subject_helpers;
        Alcotest.test_case "campaign counts hangs" `Quick test_campaign_hang_counted;
        Alcotest.test_case "pathafl layers over edge" `Quick
          test_pathafl_differs_from_edge;
      ] );
  ]
