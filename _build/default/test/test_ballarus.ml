(** Ball–Larus pass tests: path numbering, uniqueness, regeneration,
    spanning-tree probe minimisation, and the runtime-equivalence property
    between naive and optimised placements. *)

let check = Alcotest.check
let fail = Alcotest.fail

let compile = Minic.Lower.compile

let plan_of ?optimize src fname =
  let p = compile src in
  Pathcov.Ball_larus.of_func ?optimize (Minic.Ir.func_exn p fname)

let diamond_src =
  "fn main() { var x = in(0); if (x) { x = 1; } else { x = 2; } return x; }"

let seq_diamonds_src =
  "fn main() { var x = in(0); var y = 0; if (x > 1) { y = 1; } if (x > 2) { y = \
   y + 2; } if (x > 3) { y = y + 4; } return y; }"

let loop_src = "fn main() { var i = 0; while (i < in(0)) { i = i + 1; } return i; }"

let test_diamond_paths () =
  let plan = plan_of diamond_src "main" in
  check Alcotest.int "two paths" 2 plan.num_paths;
  check Alcotest.int "no back edges" 0 (List.length plan.back_edges)

let test_sequential_diamonds () =
  let plan = plan_of seq_diamonds_src "main" in
  (* three independent diamonds: 2^3 = 8 acyclic paths *)
  check Alcotest.int "eight paths" 8 plan.num_paths

let test_loop_paths () =
  let plan = plan_of loop_src "main" in
  (* entry->head->exit, entry->head->body(->EXIT dummy), dummy-entry->head->exit,
     dummy-entry->head->body: 4 acyclic paths *)
  check Alcotest.int "loop paths" 4 plan.num_paths;
  check Alcotest.int "one back edge" 1 (List.length plan.back_edges)

let test_straightline () =
  let plan = plan_of "fn main() { var x = 1; return x; }" "main" in
  check Alcotest.int "single path" 1 plan.num_paths;
  check Alcotest.int "no probes needed" 0 plan.probes

let test_path_ids_unique_and_regenerable () =
  let plan = plan_of seq_diamonds_src "main" in
  let paths = Pathcov.Ball_larus.enumerate plan in
  check Alcotest.int "count matches" plan.num_paths (List.length paths);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (id, nodes) ->
      if Hashtbl.mem seen nodes then fail "duplicate node sequence";
      Hashtbl.add seen nodes ();
      check Alcotest.bool "id in range" true (id >= 0 && id < plan.num_paths))
    paths

let test_regenerate_bounds () =
  let plan = plan_of diamond_src "main" in
  (match Pathcov.Ball_larus.regenerate plan (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument");
  match Pathcov.Ball_larus.regenerate plan plan.num_paths with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument"

let test_probe_reduction () =
  (* the spanning tree must never need more probes than the naive scheme *)
  let naive = plan_of ~optimize:false loop_src "main" in
  let opt = plan_of ~optimize:true loop_src "main" in
  check Alcotest.bool "probes reduced or equal" true (opt.probes <= naive.probes);
  check Alcotest.int "same path count" naive.num_paths opt.num_paths

(* Run a program under the Path feedback twice (naive and optimised
   placement) and compare the classified trace maps: the committed path
   IDs must be identical. *)
let committed_paths ~optimize prog input =
  let plans = Pathcov.Ball_larus.of_program ~optimize prog in
  let fb = Pathcov.Feedback.make ~plans Pathcov.Feedback.Path prog in
  let hooks =
    {
      Vm.Interp.no_hooks with
      h_call = fb.on_call;
      h_block = fb.on_block;
      h_edge = fb.on_edge;
      h_ret = fb.on_ret;
    }
  in
  fb.reset ();
  ignore (Vm.Interp.run ~hooks prog ~input);
  Pathcov.Coverage_map.classify fb.trace;
  List.map (fun i -> (i, Pathcov.Coverage_map.get fb.trace i))
    (Pathcov.Coverage_map.set_indices fb.trace)

let test_placement_equivalence_concrete () =
  let prog = compile seq_diamonds_src in
  List.iter
    (fun input ->
      check
        Alcotest.(list (pair int int))
        ("same commits for " ^ String.escaped input)
        (committed_paths ~optimize:false prog input)
        (committed_paths ~optimize:true prog input))
    [ ""; "\x00"; "\x02"; "\x03"; "\x04"; "hello" ]

let prop_placement_equivalence =
  QCheck.Test.make ~count:100 ~name:"naive and optimised placements commit equal paths"
    (QCheck.pair Gen.arbitrary_ir Gen.arbitrary_input)
    (fun (prog, input) ->
      committed_paths ~optimize:false prog input
      = committed_paths ~optimize:true prog input)

let prop_enumeration_bijective =
  QCheck.Test.make ~count:100 ~name:"path id <-> edge sequence is a bijection"
    Gen.arbitrary_ir (fun prog ->
      Array.for_all
        (fun f ->
          let plan = Pathcov.Ball_larus.of_func f in
          plan.num_paths > 2000
          ||
          let tbl = Hashtbl.create 64 in
          for id = 0 to plan.num_paths - 1 do
            let edge_ids =
              List.map
                (fun (e : Pathcov.Ball_larus.edge) -> e.id)
                (Pathcov.Ball_larus.regenerate_edges plan id)
            in
            Hashtbl.replace tbl edge_ids ()
          done;
          Hashtbl.length tbl = plan.num_paths)
        prog.funcs)

let prop_num_paths_positive =
  QCheck.Test.make ~count:100 ~name:"every function has at least one acyclic path"
    Gen.arbitrary_ir (fun prog ->
      let plans = Pathcov.Ball_larus.of_program prog in
      Array.for_all (fun (pl : Pathcov.Ball_larus.t) -> pl.num_paths >= 1) plans.plans)

(* Executed paths observed at run time must regenerate to real block walks:
   the first node of every committed path is a block of the function. *)
let test_runtime_commits_are_valid_ids () =
  let prog = compile loop_src in
  let plan = (Pathcov.Ball_larus.of_program prog).plans.(0) in
  let commits = ref [] in
  let fb = Pathcov.Feedback.make Pathcov.Feedback.Path prog in
  ignore fb;
  (* reconstruct commits by instrumenting manually *)
  let reg = ref 0 in
  let hooks =
    {
      Vm.Interp.no_hooks with
      h_call = (fun _ -> reg := 0);
      h_edge =
        (fun _ src dst ->
          match Pathcov.Ball_larus.on_edge plan ~src ~dst with
          | None -> ()
          | Some (Pathcov.Ball_larus.Add k) -> reg := !reg + k
          | Some (Pathcov.Ball_larus.Commit_back { add; reset }) ->
              commits := (!reg + add) :: !commits;
              reg := reset);
      h_ret =
        (fun _ block ->
          commits := (!reg + Pathcov.Ball_larus.on_ret plan ~block) :: !commits);
    }
  in
  ignore (Vm.Interp.run ~hooks prog ~input:"\x03");
  check Alcotest.bool "some paths committed" true (!commits <> []);
  List.iter
    (fun id ->
      check Alcotest.bool "id in range" true (id >= 0 && id < plan.num_paths);
      match Pathcov.Ball_larus.regenerate plan id with
      | [] -> fail "empty regenerated path"
      | first :: _ -> check Alcotest.bool "starts at a block" true (first >= 0))
    !commits

let test_motivating_example_plan () =
  let prog = Subjects.Subject.program Subjects.Motivating.subject in
  let plan = Pathcov.Ball_larus.of_func (Minic.Ir.func_exn prog "foo") in
  (* foo has the early return plus 2x2 diamond combinations plus the
     short-circuit split: enumeration must be stable and small *)
  check Alcotest.bool "paths between 4 and 12" true
    (plan.num_paths >= 4 && plan.num_paths <= 12);
  let ids = List.map fst (Pathcov.Ball_larus.enumerate plan) in
  check (Alcotest.list Alcotest.int) "dense ids"
    (List.init plan.num_paths Fun.id) ids

let suite =
  [
    ( "ball-larus",
      [
        Alcotest.test_case "diamond has two paths" `Quick test_diamond_paths;
        Alcotest.test_case "sequential diamonds multiply" `Quick test_sequential_diamonds;
        Alcotest.test_case "loop paths via dummy edges" `Quick test_loop_paths;
        Alcotest.test_case "straight line" `Quick test_straightline;
        Alcotest.test_case "ids unique and regenerable" `Quick
          test_path_ids_unique_and_regenerable;
        Alcotest.test_case "regenerate bounds" `Quick test_regenerate_bounds;
        Alcotest.test_case "spanning tree reduces probes" `Quick test_probe_reduction;
        Alcotest.test_case "placement equivalence (concrete)" `Quick
          test_placement_equivalence_concrete;
        Alcotest.test_case "runtime commits are valid ids" `Quick
          test_runtime_commits_are_valid_ids;
        Alcotest.test_case "motivating example plan" `Quick test_motivating_example_plan;
      ] );
    ( "ball-larus-properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_placement_equivalence;
          prop_enumeration_bijective;
          prop_num_paths_positive;
        ] );
  ]
