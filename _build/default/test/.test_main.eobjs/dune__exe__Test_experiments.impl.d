test/test_experiments.ml: Alcotest Experiments Fuzz Hashtbl Lazy List String Subjects
