test/test_ballarus.ml: Alcotest Array Fun Gen Hashtbl List Minic Pathcov QCheck QCheck_alcotest String Subjects Vm
