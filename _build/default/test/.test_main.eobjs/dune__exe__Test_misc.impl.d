test/test_misc.ml: Alcotest Array Experiments Fuzz List Minic Pathcov Printexc Printf String Subjects Vm
