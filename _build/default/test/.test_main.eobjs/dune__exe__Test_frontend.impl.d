test/test_frontend.ml: Alcotest Array Ast Gen List Minic Printf QCheck QCheck_alcotest String
