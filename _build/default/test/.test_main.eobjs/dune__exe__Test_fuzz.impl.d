test/test_fuzz.ml: Alcotest Array Float Fuzz Gen List Minic Pathcov QCheck QCheck_alcotest String Subjects Vm
