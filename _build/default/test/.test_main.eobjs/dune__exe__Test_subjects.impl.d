test/test_subjects.ml: Alcotest Array Fmt Fuzz List Minic Pathcov String Subjects Vm
