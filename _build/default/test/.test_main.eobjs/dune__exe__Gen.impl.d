test/gen.ml: List Minic QCheck
