test/test_coverage.ml: Alcotest Gen List Minic Pathcov Printf QCheck QCheck_alcotest Vm
