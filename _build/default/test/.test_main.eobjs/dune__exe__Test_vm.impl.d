test/test_vm.ml: Alcotest Fmt Gen List Minic Option QCheck QCheck_alcotest Vm
