(** Runtime values of the MiniC VM: machine integers and heap-allocated
    integer arrays (arrays are shared by reference, like C pointers). *)

type t = Vint of int | Varr of int array

let pp fmt = function
  | Vint n -> Fmt.int fmt n
  | Varr a -> Fmt.pf fmt "array[%d]" (Array.length a)

let type_name = function Vint _ -> "int" | Varr _ -> "array"
