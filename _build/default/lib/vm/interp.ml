(** CFG interpreter for MiniC IR programs.

    The interpreter is the stand-in for native execution of the
    instrumented target: it runs a program on an input byte string,
    emitting the events (calls, block entries, edge traversals, returns,
    comparisons) that the instrumentation hooks of [Pathcov.Feedback]
    consume, and converting memory-safety violations into [Crash.t]
    reports exactly where ASAN would. Execution is bounded by a fuel
    budget (the analogue of AFL's timeout) and a call-depth limit.

    Because a fuzzing campaign executes the same program millions of
    times, [prepare] resolves variable names to frame slots and function
    names to indices once; [run] then evaluates integers unboxed. MiniC
    locals are zero-initialised at function entry (as if the target were
    built with [-ftrivial-auto-var-init=zero]). *)

type hooks = {
  h_call : int -> unit;  (** [fid]: entering a function *)
  h_block : int -> int -> unit;  (** [fid block]: control enters a block *)
  h_edge : int -> int -> int -> unit;  (** [fid src dst]: CFG transition *)
  h_ret : int -> int -> unit;  (** [fid block]: return executes *)
  h_cmp : int -> int -> unit;  (** comparison operands, for cmplog *)
}

let no_hooks =
  {
    h_call = (fun _ -> ());
    h_block = (fun _ _ -> ());
    h_edge = (fun _ _ _ -> ());
    h_ret = (fun _ _ -> ());
    h_cmp = (fun _ _ -> ());
  }

type status =
  | Finished of int option  (** [main] returned normally *)
  | Crashed of Crash.t
  | Hung  (** fuel exhausted: the analogue of an AFL timeout *)

type outcome = {
  status : status;
  blocks_executed : int;  (** work metric: blocks entered across the run *)
}

let default_fuel = 200_000
let default_max_depth = 128
let max_alloc = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Resolved (slot-addressed) representation *)

type slot = Local of int | Global of int

(* Comparison operators are split out so the evaluator can invoke the
   cmplog hook without re-dispatching on the operator. *)
type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type arith = Aadd | Asub | Amul | Adiv | Arem | Aband | Abor | Abxor | Ashl | Ashr

type rexpr =
  | Rconst of int
  | Rload of slot
  | Rindex of rexpr * rexpr * int  (** base, index, site *)
  | Rarith of arith * rexpr * rexpr * int  (** site for div-by-zero *)
  | Rcmp of cmp * rexpr * rexpr
  | Rneg of rexpr
  | Rnot of rexpr
  | Rbnot of rexpr
  | Rin of rexpr
  | Rlen
  | Rarray_make of rexpr * int
  | Rarray_len of rexpr * int
  | Rabs of rexpr

type rinstr =
  | Rassign of slot * rexpr
  | Rstore of rexpr * rexpr * rexpr * int
  | Rcall of { dst : slot option; callee : int; args : rexpr list; site : int }
  | Rbug of int * int  (** bug id, site *)
  | Rcheck of rexpr * int * int  (** cond, bug id, site *)

type rterm =
  | Rgoto of int
  | Rbranch of rexpr * int * int * int  (** cond, true, false, site *)
  | Rret of rexpr option * int

type rblock = { rinstrs : rinstr array; rterm : rterm }

type rfunc = {
  rname : string;
  nlocals : int;
  param_slots : int list;
  rblocks : rblock array;
}

type prepared = {
  prog : Minic.Ir.program;
  rfuncs : rfunc array;
  main_id : int;
  global_names : string array;
  global_sizes : int array;  (** 0 = int cell, n > 0 = array of n *)
}

(* ------------------------------------------------------------------ *)
(* Resolution *)

exception Unknown_name of string

let resolve_func (globals : (string, int) Hashtbl.t)
    (fidx : (string, int) Hashtbl.t) (f : Minic.Ir.func) : rfunc =
  let locals : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let nlocals = ref 0 in
  let local name =
    match Hashtbl.find_opt locals name with
    | Some i -> i
    | None ->
        let i = !nlocals in
        incr nlocals;
        Hashtbl.replace locals name i;
        i
  in
  (* Params first, then the function's declared locals and temporaries;
     loads and stores of anything else resolve to globals. *)
  let param_slots = List.map local f.params in
  List.iter (fun name -> ignore (local name)) f.locals;
  let slot name =
    match Hashtbl.find_opt locals name with
    | Some i -> Local i
    | None -> (
        match Hashtbl.find_opt globals name with
        | Some i -> Global i
        | None -> raise (Unknown_name name))
  in
  let arith_of : Minic.Ast.binop -> arith option = function
    | Add -> Some Aadd
    | Sub -> Some Asub
    | Mul -> Some Amul
    | Div -> Some Adiv
    | Rem -> Some Arem
    | Band -> Some Aband
    | Bor -> Some Abor
    | Bxor -> Some Abxor
    | Shl -> Some Ashl
    | Shr -> Some Ashr
    | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> None
  in
  let cmp_of : Minic.Ast.binop -> cmp = function
    | Eq -> Ceq
    | Ne -> Cne
    | Lt -> Clt
    | Le -> Cle
    | Gt -> Cgt
    | Ge -> Cge
    | _ -> assert false
  in
  let rec rexpr site (e : Minic.Ir.expr) : rexpr =
    match e with
    | Const n -> Rconst n
    | Load v -> Rload (slot v)
    | Index (b, i) -> Rindex (rexpr site b, rexpr site i, site)
    | Binop (op, a, b) -> begin
        match arith_of op with
        | Some a' -> Rarith (a', rexpr site a, rexpr site b, site)
        | None -> Rcmp (cmp_of op, rexpr site a, rexpr site b)
      end
    | Unop (Neg, a) -> Rneg (rexpr site a)
    | Unop (Not, a) -> Rnot (rexpr site a)
    | Unop (Bnot, a) -> Rbnot (rexpr site a)
    | InByte a -> Rin (rexpr site a)
    | InputLen -> Rlen
    | ArrayMake a -> Rarray_make (rexpr site a, site)
    | ArrayLen a -> Rarray_len (rexpr site a, site)
    | Abs a -> Rabs (rexpr site a)
  in
  let rinstr (i : Minic.Ir.instr) : rinstr =
    match i with
    | Assign { dst; e; site } -> Rassign (slot dst, rexpr site e)
    | Store { base; idx; v; site } ->
        Rstore (rexpr site base, rexpr site idx, rexpr site v, site)
    | CallI { dst; callee; args; site } ->
        let cid =
          match Hashtbl.find_opt fidx callee with
          | Some c -> c
          | None -> raise (Unknown_name callee)
        in
        Rcall
          {
            dst = Option.map (fun d -> slot d) dst;
            callee = cid;
            args = List.map (rexpr site) args;
            site;
          }
    | BugI { bug; site } -> Rbug (bug, site)
    | CheckI { cond; bug; site } -> Rcheck (rexpr site cond, bug, site)
  in
  let rterm (t : Minic.Ir.term) : rterm =
    match t with
    | Goto l -> Rgoto l
    | Branch { cond; if_true; if_false; site } ->
        Rbranch (rexpr site cond, if_true, if_false, site)
    | Ret { e; site } -> Rret (Option.map (rexpr site) e, site)
  in
  let rblocks =
    Array.map
      (fun (b : Minic.Ir.block) ->
        { rinstrs = Array.of_list (List.map rinstr b.instrs); rterm = rterm b.term })
      f.blocks
  in
  { rname = f.name; nlocals = !nlocals; param_slots; rblocks }

(** Resolve a program once; reuse the result across executions. *)
let prepare (prog : Minic.Ir.program) : prepared =
  let globals = Hashtbl.create 16 in
  let names = ref [] and sizes = ref [] in
  List.iteri
    (fun i g ->
      let name, size =
        match g with
        | Minic.Ast.Gint n -> (n, 0)
        | Minic.Ast.Garr (n, s) -> (n, s)
      in
      Hashtbl.replace globals name i;
      names := name :: !names;
      sizes := size :: !sizes)
    prog.globals;
  let fidx = Hashtbl.create 16 in
  Array.iteri (fun i (f : Minic.Ir.func) -> Hashtbl.replace fidx f.name i) prog.funcs;
  let main_id =
    match Hashtbl.find_opt fidx "main" with
    | Some id -> id
    | None -> invalid_arg "Interp.prepare: program has no main"
  in
  {
    prog;
    rfuncs = Array.map (resolve_func globals fidx) prog.funcs;
    main_id;
    global_names = Array.of_list (List.rev !names);
    global_sizes = Array.of_list (List.rev !sizes);
  }

(* ------------------------------------------------------------------ *)
(* Execution *)

exception Crash_exn of Crash.kind * int
exception Out_of_fuel

type rstate = {
  p : prepared;
  input : string;
  hooks : hooks;
  gvals : Value.t array;
  mutable fuel : int;
  mutable blocks : int;
  mutable call_stack : Crash.frame list;
}

let type_err site what = raise (Crash_exn (Crash.Type_error what, site))

let read st (frame : Value.t array) = function
  | Local i -> frame.(i)
  | Global i -> st.gvals.(i)

let write st (frame : Value.t array) slot v =
  match slot with Local i -> frame.(i) <- v | Global i -> st.gvals.(i) <- v

let as_int site = function
  | Value.Vint n -> n
  | Value.Varr _ -> type_err site "int expected"

let as_arr site = function
  | Value.Varr a -> a
  | Value.Vint _ -> type_err site "array expected"

(* Integer-typed evaluation; array-typed sub-expressions are reached only
   through [eval_arr]. *)
let rec eval_int st frame (e : rexpr) : int =
  match e with
  | Rconst n -> n
  | Rload s -> as_int (-1) (read st frame s)
  | Rindex (b, i, site) ->
      let a = eval_arr st frame site b in
      let idx = eval_int st frame i in
      if idx < 0 || idx >= Array.length a then
        raise (Crash_exn (Crash.Out_of_bounds { len = Array.length a; idx }, site))
      else Array.unsafe_get a idx
  | Rarith (op, e1, e2, site) -> begin
      let a = eval_int st frame e1 in
      let b = eval_int st frame e2 in
      match op with
      | Aadd -> a + b
      | Asub -> a - b
      | Amul -> a * b
      | Adiv -> if b = 0 then raise (Crash_exn (Crash.Div_by_zero, site)) else a / b
      | Arem -> if b = 0 then raise (Crash_exn (Crash.Div_by_zero, site)) else a mod b
      | Aband -> a land b
      | Abor -> a lor b
      | Abxor -> a lxor b
      | Ashl -> a lsl (min 62 (b land 63))
      | Ashr -> a asr (min 62 (b land 63))
    end
  | Rcmp (op, e1, e2) -> begin
      let a = eval_int st frame e1 in
      let b = eval_int st frame e2 in
      st.hooks.h_cmp a b;
      match op with
      | Ceq -> if a = b then 1 else 0
      | Cne -> if a <> b then 1 else 0
      | Clt -> if a < b then 1 else 0
      | Cle -> if a <= b then 1 else 0
      | Cgt -> if a > b then 1 else 0
      | Cge -> if a >= b then 1 else 0
    end
  | Rneg e -> -eval_int st frame e
  | Rnot e -> if eval_int st frame e = 0 then 1 else 0
  | Rbnot e -> lnot (eval_int st frame e)
  | Rin e ->
      let i = eval_int st frame e in
      if i < 0 || i >= String.length st.input then -1
      else Char.code (String.unsafe_get st.input i)
  | Rlen -> String.length st.input
  | Rabs e -> abs (eval_int st frame e)
  | Rarray_make (_, site) -> type_err site "array in int context"
  | Rarray_len (e, site) -> Array.length (eval_arr st frame site e)

and eval_arr st frame site (e : rexpr) : int array =
  match e with
  | Rload s -> as_arr site (read st frame s)
  | Rarray_make (n, site') ->
      let n = eval_int st frame n in
      if n < 0 || n > max_alloc then raise (Crash_exn (Crash.Bad_alloc n, site'))
      else Array.make n 0
  | _ -> type_err site "array expected"

(* Values for call arguments and assignments: arrays stay arrays. *)
and eval_val st frame (e : rexpr) : Value.t =
  match e with
  | Rload s -> read st frame s
  | Rarray_make (n, site) ->
      let n = eval_int st frame n in
      if n < 0 || n > max_alloc then raise (Crash_exn (Crash.Bad_alloc n, site))
      else Value.Varr (Array.make n 0)
  | _ -> Value.Vint (eval_int st frame e)

let burn st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

let rec call st (fid : int) (args : Value.t list) (depth : int) : Value.t =
  if depth > default_max_depth then raise (Crash_exn (Crash.Stack_overflow, -1));
  let f = st.p.rfuncs.(fid) in
  st.hooks.h_call fid;
  let frame = Array.make (max 1 f.nlocals) (Value.Vint 0) in
  List.iter2 (fun slot v -> frame.(slot) <- v) f.param_slots args;
  let rec run_block label =
    burn st;
    st.blocks <- st.blocks + 1;
    st.hooks.h_block fid label;
    let b = f.rblocks.(label) in
    let n = Array.length b.rinstrs in
    for i = 0 to n - 1 do
      exec_instr st frame fid depth (Array.unsafe_get b.rinstrs i)
    done;
    match b.rterm with
    | Rgoto l ->
        st.hooks.h_edge fid label l;
        run_block l
    | Rbranch (cond, if_true, if_false, _site) ->
        let dst = if eval_int st frame cond <> 0 then if_true else if_false in
        st.hooks.h_edge fid label dst;
        run_block dst
    | Rret (e, _site) ->
        let v =
          match e with Some e -> eval_val st frame e | None -> Value.Vint 0
        in
        st.hooks.h_ret fid label;
        v
  in
  run_block 0

and exec_instr st frame fid depth (i : rinstr) : unit =
  burn st;
  match i with
  | Rassign (slot, e) -> write st frame slot (eval_val st frame e)
  | Rstore (base, idx, v, site) ->
      let a = eval_arr st frame site base in
      let i = eval_int st frame idx in
      let x = eval_int st frame v in
      if i < 0 || i >= Array.length a then
        raise (Crash_exn (Crash.Out_of_bounds { len = Array.length a; idx = i }, site))
      else Array.unsafe_set a i x
  | Rcall { dst; callee; args; site } ->
      let argv = List.map (eval_val st frame) args in
      let fname = st.p.rfuncs.(fid).rname in
      st.call_stack <- { Crash.fn = fname; site } :: st.call_stack;
      let result = call st callee argv (depth + 1) in
      st.call_stack <- List.tl st.call_stack;
      (match dst with Some d -> write st frame d result | None -> ())
  | Rbug (bug, site) -> raise (Crash_exn (Crash.Seeded bug, site))
  | Rcheck (cond, bug, site) ->
      if eval_int st frame cond = 0 then raise (Crash_exn (Crash.Check_failed bug, site))

let site_function (prog : Minic.Ir.program) site =
  if site >= 0 && site < Array.length prog.sites then prog.sites.(site).sfunc
  else "?"

(** Execute a prepared program from [main] on [input]. Never raises for
    program-under-test misbehaviour — crashes, hangs and type confusion
    all come back as [status]. *)
let run_prepared ?(fuel = default_fuel) ?(hooks = no_hooks) (p : prepared)
    ~(input : string) : outcome =
  let gvals =
    Array.map
      (fun size -> if size = 0 then Value.Vint 0 else Value.Varr (Array.make size 0))
      p.global_sizes
  in
  let st = { p; input; hooks; gvals; fuel; blocks = 0; call_stack = [] } in
  let status =
    try
      match call st p.main_id [] 0 with
      | Value.Vint n -> Finished (Some n)
      | Value.Varr _ -> Finished None
    with
    | Crash_exn (kind, site) ->
        let top = { Crash.fn = site_function p.prog site; site } in
        Crashed { Crash.kind; stack = top :: st.call_stack }
    | Out_of_fuel -> Hung
    | Stack_overflow ->
        Crashed { Crash.kind = Crash.Stack_overflow; stack = st.call_stack }
  in
  { status; blocks_executed = st.blocks }

(** One-shot convenience (prepares on each call; use [prepare] +
    [run_prepared] in loops). *)
let run ?fuel ?hooks (prog : Minic.Ir.program) ~input : outcome =
  run_prepared ?fuel ?hooks (prepare prog) ~input

(** Convenience: run and return the crash, if any. *)
let crash_of ?fuel ?hooks prog ~input : Crash.t option =
  match (run ?fuel ?hooks prog ~input).status with
  | Crashed c -> Some c
  | Finished _ | Hung -> None
