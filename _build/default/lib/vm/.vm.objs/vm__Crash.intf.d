lib/vm/crash.mli: Format
