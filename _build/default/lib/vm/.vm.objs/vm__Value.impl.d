lib/vm/value.ml: Array Fmt
