lib/vm/interp.ml: Array Char Crash Hashtbl List Minic Option String Value
