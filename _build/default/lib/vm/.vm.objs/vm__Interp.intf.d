lib/vm/interp.mli: Crash Minic
