lib/vm/crash.ml: Fmt Hashtbl
