(** Crash model: what the paper's ASAN-instrumented targets report, made
    deterministic. A crash carries a kind, the faulting site and the call
    stack; [top5_hash] implements the stack-trace clustering used for
    "unique crashes" (top 5 frames, as in §V-A), while [bug_identity] is
    the exact ground-truth notion that the paper approximates by manual
    deduplication. *)

type kind =
  | Out_of_bounds of { len : int; idx : int }
  | Div_by_zero
  | Seeded of int  (** explicit [bug(id)] defect site *)
  | Check_failed of int  (** [check(cond, id)] with a zero condition *)
  | Bad_alloc of int
  | Stack_overflow
  | Type_error of string

type frame = { fn : string; site : int }

type t = {
  kind : kind;
  stack : frame list;  (** innermost first; head is the faulting frame *)
}

(** Ground-truth bug identity: seeded ids are explicit; organic crashes
    (OOB, division, allocation, recursion, type confusion) are identified
    by their faulting site, which is stable across runs of a program. *)
type identity = Id of int | At_site of int

let faulting_site t = match t.stack with [] -> -1 | f :: _ -> f.site

let bug_identity t : identity =
  match t.kind with
  | Seeded id | Check_failed id -> Id id
  | Out_of_bounds _ | Div_by_zero | Bad_alloc _ | Stack_overflow | Type_error _ ->
      At_site (faulting_site t)

let kind_name = function
  | Out_of_bounds _ -> "heap-out-of-bounds"
  | Div_by_zero -> "division-by-zero"
  | Seeded _ -> "seeded-memory-error"
  | Check_failed _ -> "assertion-failure"
  | Bad_alloc _ -> "allocation-failure"
  | Stack_overflow -> "stack-overflow"
  | Type_error _ -> "type-confusion"

(** Stack-trace clustering key: hash of the top 5 frames plus the crash
    kind tag — the standard "unique crash" notion of the evaluation. *)
let top5_hash t : int =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | f :: rest -> (f.fn, f.site) :: take (n - 1) rest
  in
  Hashtbl.hash (kind_name t.kind, take 5 t.stack)

(** AFL 2.52b's cruder notion (Appendix C): a crash is "unique" iff its
    execution trace hits a coverage tuple no earlier crash hit. This lives
    in the fuzzer (it needs the coverage map); here we only expose the
    stack-based key. *)

let pp_identity fmt = function
  | Id n -> Fmt.pf fmt "bug#%d" n
  | At_site s -> Fmt.pf fmt "site@%d" s

let pp fmt t =
  Fmt.pf fmt "%s at %a [%a]" (kind_name t.kind) pp_identity (bug_identity t)
    Fmt.(list ~sep:(any " <- ") (fun fmt f -> Fmt.pf fmt "%s:%d" f.fn f.site))
    t.stack

let identity_compare (a : identity) (b : identity) = compare a b
