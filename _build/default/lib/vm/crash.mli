(** Crash model: what the paper's ASAN-instrumented targets report, made
    deterministic. *)

(** Kind of failure observed by the VM. *)
type kind =
  | Out_of_bounds of { len : int; idx : int }
  | Div_by_zero
  | Seeded of int  (** explicit [bug(id)] defect site *)
  | Check_failed of int  (** [check(cond, id)] with a zero condition *)
  | Bad_alloc of int
  | Stack_overflow
  | Type_error of string

type frame = { fn : string; site : int }

type t = {
  kind : kind;
  stack : frame list;  (** innermost first; head is the faulting frame *)
}

(** Ground-truth bug identity: seeded ids are explicit; organic crashes
    are identified by their faulting site, stable across runs. This is the
    exact notion the paper approximates by manual deduplication. *)
type identity = Id of int | At_site of int

val faulting_site : t -> int
val bug_identity : t -> identity
val kind_name : kind -> string

(** Stack-trace clustering key: hash of the top 5 frames plus the crash
    kind — the standard "unique crash" notion of the evaluation (§V-A). *)
val top5_hash : t -> int

val pp_identity : Format.formatter -> identity -> unit
val pp : Format.formatter -> t -> unit
val identity_compare : identity -> identity -> int
