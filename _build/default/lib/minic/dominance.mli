(** Dominator computation using the Cooper–Harvey–Kennedy iterative
    algorithm. Used by the loop analysis to certify back edges, which in
    turn certifies CFG reducibility for the Ball–Larus pass. *)

type t

val compute : Cfg.t -> t

(** [dominates t a b] iff every path from the entry to [b] goes through
    [a] (reflexive). *)
val dominates : t -> int -> int -> bool

(** Immediate dominator; the entry maps to itself. *)
val immediate_dominator : t -> int -> int
