(** Recursive-descent parser for MiniC with precedence climbing for
    expressions. Raises [Error] with a message and position on bad input. *)

open Ast

exception Error of string * pos

type state = { mutable toks : Lexer.tok list }

let peek st =
  match st.toks with [] -> { Lexer.tok = Lexer.EOF; pos = dummy_pos } | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let errorf p fmt = Format.kasprintf (fun s -> raise (Error (s, p))) fmt

let expect_punct st s =
  let t = peek st in
  match t.tok with
  | Lexer.PUNCT p when p = s -> advance st
  | other -> errorf t.pos "expected %S, got %S" s (Lexer.token_to_string other)

let expect_kw st s =
  let t = peek st in
  match t.tok with
  | Lexer.KW k when k = s -> advance st
  | other -> errorf t.pos "expected keyword %S, got %S" s (Lexer.token_to_string other)

let expect_ident st =
  let t = peek st in
  match t.tok with
  | Lexer.IDENT s ->
      advance st;
      s
  | other -> errorf t.pos "expected identifier, got %S" (Lexer.token_to_string other)

let expect_int st =
  let t = peek st in
  match t.tok with
  | Lexer.INT n ->
      advance st;
      n
  | other -> errorf t.pos "expected integer, got %S" (Lexer.token_to_string other)

let accept_punct st s =
  match (peek st).tok with
  | Lexer.PUNCT p when p = s ->
      advance st;
      true
  | _ -> false

(* Binary operator precedence: higher binds tighter. *)
let binop_of_punct = function
  | "||" -> Some (Lor, 1)
  | "&&" -> Some (Land, 2)
  | "|" -> Some (Bor, 3)
  | "^" -> Some (Bxor, 4)
  | "&" -> Some (Band, 5)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Rem, 10)
  | _ -> None

let rec parse_expr st = parse_binop st 0

and parse_binop st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    let t = peek st in
    match t.tok with
    | Lexer.PUNCT p -> begin
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            advance st;
            let rhs = parse_binop st (prec + 1) in
            loop { expr = Binop (op, lhs, rhs); epos = t.pos }
        | _ -> lhs
      end
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let t = peek st in
  match t.tok with
  | Lexer.PUNCT "-" ->
      advance st;
      let e = parse_unary st in
      { expr = Unop (Neg, e); epos = t.pos }
  | Lexer.PUNCT "!" ->
      advance st;
      let e = parse_unary st in
      { expr = Unop (Not, e); epos = t.pos }
  | Lexer.PUNCT "~" ->
      advance st;
      let e = parse_unary st in
      { expr = Unop (Bnot, e); epos = t.pos }
  | _ -> parse_postfix st

and parse_postfix st =
  let base = parse_atom st in
  let rec loop base =
    if accept_punct st "[" then begin
      let idx = parse_expr st in
      expect_punct st "]";
      loop { expr = Index (base, idx); epos = base.epos }
    end
    else base
  in
  loop base

and parse_args st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []

and parse_atom st =
  let t = peek st in
  match t.tok with
  | Lexer.INT n ->
      advance st;
      { expr = Int n; epos = t.pos }
  | Lexer.IDENT name ->
      advance st;
      if (peek st).tok = Lexer.PUNCT "(" then
        { expr = Call (name, parse_args st); epos = t.pos }
      else { expr = Var name; epos = t.pos }
  | Lexer.KW "in" ->
      advance st;
      begin
        match parse_args st with
        | [ e ] -> { expr = In e; epos = t.pos }
        | args -> errorf t.pos "in() takes 1 argument, got %d" (List.length args)
      end
  | Lexer.KW "len" ->
      advance st;
      expect_punct st "(";
      expect_punct st ")";
      { expr = Len; epos = t.pos }
  | Lexer.KW "array" ->
      advance st;
      begin
        match parse_args st with
        | [ e ] -> { expr = ArrayMake e; epos = t.pos }
        | args -> errorf t.pos "array() takes 1 argument, got %d" (List.length args)
      end
  | Lexer.KW "array_len" ->
      advance st;
      begin
        match parse_args st with
        | [ e ] -> { expr = ArrayLen e; epos = t.pos }
        | args ->
            errorf t.pos "array_len() takes 1 argument, got %d" (List.length args)
      end
  | Lexer.KW "abs" ->
      advance st;
      begin
        match parse_args st with
        | [ e ] -> { expr = Abs e; epos = t.pos }
        | args -> errorf t.pos "abs() takes 1 argument, got %d" (List.length args)
      end
  | Lexer.PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | other -> errorf t.pos "unexpected token %S in expression" (Lexer.token_to_string other)

let rec parse_stmt st : stmt_node =
  let t = peek st in
  match t.tok with
  | Lexer.KW "var" ->
      advance st;
      let name = expect_ident st in
      let init = if accept_punct st "=" then Some (parse_expr st) else None in
      expect_punct st ";";
      { stmt = Decl (name, init); spos = t.pos }
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let then_ = parse_block st in
      let else_ =
        match (peek st).tok with
        | Lexer.KW "else" ->
            advance st;
            if (peek st).tok = Lexer.KW "if" then [ parse_stmt st ]
            else parse_block st
        | _ -> []
      in
      { stmt = If (cond, then_, else_); spos = t.pos }
  | Lexer.KW "while" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let body = parse_block st in
      { stmt = While (cond, body); spos = t.pos }
  | Lexer.KW "return" ->
      advance st;
      if accept_punct st ";" then { stmt = Return None; spos = t.pos }
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        { stmt = Return (Some e); spos = t.pos }
      end
  | Lexer.KW "bug" ->
      advance st;
      expect_punct st "(";
      let id = expect_int st in
      expect_punct st ")";
      expect_punct st ";";
      { stmt = Bug id; spos = t.pos }
  | Lexer.KW "check" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ",";
      let id = expect_int st in
      expect_punct st ")";
      expect_punct st ";";
      { stmt = Check (cond, id); spos = t.pos }
  | _ ->
      (* Expression-led statement: assignment, store or bare call. *)
      let e = parse_expr st in
      if accept_punct st "=" then begin
        let rhs = parse_expr st in
        expect_punct st ";";
        match e.expr with
        | Var name -> { stmt = Assign (name, rhs); spos = t.pos }
        | Index (base, idx) -> { stmt = Store (base, idx, rhs); spos = t.pos }
        | _ -> errorf t.pos "invalid assignment target"
      end
      else begin
        expect_punct st ";";
        { stmt = ExprStmt e; spos = t.pos }
      end

and parse_block st : block =
  expect_punct st "{";
  let rec loop acc =
    if accept_punct st "}" then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

let parse_params st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else
    let rec loop acc =
      let p = expect_ident st in
      if accept_punct st "," then loop (p :: acc)
      else begin
        expect_punct st ")";
        List.rev (p :: acc)
      end
    in
    loop []

let parse_program (src : string) : program =
  let st = { toks = Lexer.tokenize src } in
  let rec loop globals funcs =
    let t = peek st in
    match t.tok with
    | Lexer.EOF -> { globals = List.rev globals; funcs = List.rev funcs }
    | Lexer.KW "global" ->
        advance st;
        let name = expect_ident st in
        let g =
          if accept_punct st "[" then begin
            let n = expect_int st in
            expect_punct st "]";
            Garr (name, n)
          end
          else Gint name
        in
        expect_punct st ";";
        loop (g :: globals) funcs
    | Lexer.KW "fn" ->
        advance st;
        let name = expect_ident st in
        let params = parse_params st in
        let body = parse_block st in
        loop globals ({ fname = name; params; body; fpos = t.pos } :: funcs)
    | other ->
        errorf t.pos "expected 'fn' or 'global' at top level, got %S"
          (Lexer.token_to_string other)
  in
  loop [] []

(** Parse a program, converting lexer errors into parser errors. *)
let parse src =
  try parse_program src
  with Lexer.Error (msg, pos) -> raise (Error ("lexer: " ^ msg, pos))
