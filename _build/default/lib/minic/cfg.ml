(** Graph view over an [Ir.func]: successor/predecessor arrays and standard
    traversals. Labels are dense block indices; block 0 is the entry. *)

type t = {
  func : Ir.func;
  succ : int list array;  (** successors in terminator order *)
  pred : int list array;  (** predecessors, ascending *)
}

let of_func (f : Ir.func) : t =
  let n = Array.length f.blocks in
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iter
    (fun (b : Ir.block) -> succ.(b.label) <- Ir.successors b.term)
    f.blocks;
  for v = n - 1 downto 0 do
    List.iter (fun w -> pred.(w) <- v :: pred.(w)) succ.(v)
  done;
  { func = f; succ; pred }

let num_blocks t = Array.length t.func.blocks
let successors t v = t.succ.(v)
let predecessors t v = t.pred.(v)

(** Block labels in depth-first postorder from the entry. Every block is
    reachable (lowering prunes unreachable blocks), so this covers all. *)
let postorder (t : t) : int list =
  let n = num_blocks t in
  let visited = Array.make n false in
  let acc = ref [] in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs t.succ.(v);
      acc := v :: !acc
    end
  in
  dfs 0;
  List.rev !acc

let reverse_postorder (t : t) : int list = List.rev (postorder t)

(** Exit blocks: those terminated by a return. *)
let exits (t : t) : int list =
  Array.to_list t.func.blocks
  |> List.filter_map (fun (b : Ir.block) ->
         match b.term with Ir.Ret _ -> Some b.label | Ir.Goto _ | Ir.Branch _ -> None)

(** All edges (v, w) in terminator order per source block. *)
let edges (t : t) : (int * int) list =
  let acc = ref [] in
  for v = num_blocks t - 1 downto 0 do
    List.iter (fun w -> acc := (v, w) :: !acc) (List.rev t.succ.(v))
  done;
  !acc

let num_edges t = List.length (edges t)
