lib/minic/loops.mli: Cfg
