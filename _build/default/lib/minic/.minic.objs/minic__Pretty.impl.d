lib/minic/pretty.ml: Ast Fmt Ir List
