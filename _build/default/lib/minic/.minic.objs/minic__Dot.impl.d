lib/minic/dot.ml: Array Buffer Cfg Fmt Ir List Pretty Printf String
