lib/minic/sema.ml: Ast Format Hashtbl List Map Option Parser Set String
