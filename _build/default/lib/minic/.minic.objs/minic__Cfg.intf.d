lib/minic/cfg.mli: Ir
