lib/minic/dominance.ml: Array Cfg List
