lib/minic/cfg.ml: Array Ir List
