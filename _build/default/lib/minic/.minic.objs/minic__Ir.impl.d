lib/minic/ir.ml: Array Ast Printf
