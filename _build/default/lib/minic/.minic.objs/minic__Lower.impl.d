lib/minic/lower.ml: Array Ast Ir List Option Printf Sema
