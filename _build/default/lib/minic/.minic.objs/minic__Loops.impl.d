lib/minic/loops.ml: Array Cfg Dominance List
