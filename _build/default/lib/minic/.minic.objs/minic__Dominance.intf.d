lib/minic/dominance.mli: Cfg
