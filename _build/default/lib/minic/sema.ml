(** Semantic checks for MiniC programs: scoping, arity, entry point and
    ground-truth bug-id uniqueness. MiniC values are dynamically typed in the
    VM (ints vs arrays), so [check] validates names and shapes, not types. *)

open Ast

type error = { msg : string; pos : pos }

exception Error of error

let errorf pos fmt = Format.kasprintf (fun msg -> raise (Error { msg; pos })) fmt

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(** All seeded bug ids appearing in [Bug]/[Check] statements, sorted. *)
let bug_ids (p : program) : int list =
  let ids = ref [] in
  let rec walk_block b = List.iter walk_stmt b
  and walk_stmt s =
    match s.stmt with
    | Bug id -> ids := id :: !ids
    | Check (_, id) -> ids := id :: !ids
    | If (_, a, b) ->
        walk_block a;
        walk_block b
    | While (_, b) -> walk_block b
    | Decl _ | Assign _ | Store _ | Return _ | ExprStmt _ -> ()
  in
  List.iter (fun f -> walk_block f.body) p.funcs;
  List.sort_uniq compare !ids

let check (p : program) : unit =
  (* Function table: unique names, collect arities. *)
  let arities =
    List.fold_left
      (fun m f ->
        if SMap.mem f.fname m then
          errorf f.fpos "duplicate function %s" f.fname
        else SMap.add f.fname (List.length f.params) m)
      SMap.empty p.funcs
  in
  begin
    match SMap.find_opt "main" arities with
    | Some 0 -> ()
    | Some n -> errorf dummy_pos "main must take 0 parameters, has %d" n
    | None -> errorf dummy_pos "missing entry function main"
  end;
  let globals =
    List.fold_left
      (fun s g ->
        let name = match g with Gint n | Garr (n, _) -> n in
        if SSet.mem name s then errorf dummy_pos "duplicate global %s" name
        else SSet.add name s)
      SSet.empty p.globals
  in
  List.iter
    (fun g ->
      match g with
      | Garr (name, n) when n <= 0 ->
          errorf dummy_pos "global array %s has non-positive size %d" name n
      | Garr _ | Gint _ -> ())
    p.globals;
  (* Bug ids must be globally unique: they are ground-truth identities. *)
  let seen = Hashtbl.create 16 in
  let rec collect_block b = List.iter collect_stmt b
  and collect_stmt s =
    match s.stmt with
    | Bug id | Check (_, id) ->
        if Hashtbl.mem seen id then errorf s.spos "duplicate bug id %d" id
        else Hashtbl.add seen id ()
    | If (_, a, b) ->
        collect_block a;
        collect_block b
    | While (_, b) -> collect_block b
    | Decl _ | Assign _ | Store _ | Return _ | ExprStmt _ -> ()
  in
  List.iter (fun f -> collect_block f.body) p.funcs;
  (* Per-function scope checks. MiniC scoping is function-wide: a [var]
     declaration is visible from its statement to the end of the function,
     including inside nested blocks entered after it. *)
  let check_func f =
    let rec check_expr env (e : expr_node) =
      match e.expr with
      | Int _ | Len -> ()
      | Var v ->
          if not (SSet.mem v env || SSet.mem v globals) then
            errorf e.epos "unbound variable %s in %s" v f.fname
      | Index (a, i) ->
          check_expr env a;
          check_expr env i
      | Binop (_, a, b) ->
          check_expr env a;
          check_expr env b
      | Unop (_, a) | In a | ArrayMake a | ArrayLen a | Abs a -> check_expr env a
      | Call (name, args) -> begin
          match SMap.find_opt name arities with
          | None -> errorf e.epos "call to undefined function %s" name
          | Some arity ->
              if arity <> List.length args then
                errorf e.epos "%s expects %d arguments, got %d" name arity
                  (List.length args);
              List.iter (check_expr env) args
        end
    in
    let rec check_block env b =
      List.fold_left
        (fun env s ->
          match s.stmt with
          | Decl (name, init) ->
              Option.iter (check_expr env) init;
              SSet.add name env
          | Assign (name, e) ->
              if not (SSet.mem name env || SSet.mem name globals) then
                errorf s.spos "assignment to undeclared variable %s" name;
              check_expr env e;
              env
          | Store (base, idx, v) ->
              check_expr env base;
              check_expr env idx;
              check_expr env v;
              env
          | If (c, a, b) ->
              check_expr env c;
              ignore (check_block env a);
              ignore (check_block env b);
              env
          | While (c, body) ->
              check_expr env c;
              ignore (check_block env body);
              env
          | Return (Some e) ->
              check_expr env e;
              env
          | Return None -> env
          | ExprStmt e ->
              check_expr env e;
              env
          | Bug _ -> env
          | Check (c, _) ->
              check_expr env c;
              env)
        env b
    in
    let params =
      List.fold_left
        (fun s p ->
          if SSet.mem p s then
            errorf f.fpos "duplicate parameter %s in %s" p f.fname
          else SSet.add p s)
        SSet.empty f.params
    in
    ignore (check_block params f.body)
  in
  List.iter check_func p.funcs

(** Parse then check; the one-stop front-end entry point. *)
let front (src : string) : program =
  let p = Parser.parse src in
  check p;
  p
