(** Abstract syntax for MiniC, the small imperative language used as the
    program-under-test substrate. MiniC deliberately mirrors the control-flow
    features that matter to path profiling: conditionals, loops,
    short-circuit booleans, function calls and mutable global state. *)

(** Source position (line, column), for error reporting. *)
type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

let pp_pos fmt p = Format.fprintf fmt "%d:%d" p.line p.col

(** Binary operators. [Land]/[Lor] are short-circuiting and are desugared
    into control flow during lowering; all others are strict. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type unop = Neg | Not | Bnot

(** Expressions. [In] reads an input byte (-1 when out of range), [Len] is
    the input length, [ArrayMake] allocates a zero-filled integer array. *)
type expr =
  | Int of int
  | Var of string
  | Index of expr_node * expr_node  (** [a[i]]; the base must name an array *)
  | Binop of binop * expr_node * expr_node
  | Unop of unop * expr_node
  | Call of string * expr_node list
  | In of expr_node
  | Len
  | ArrayMake of expr_node
  | ArrayLen of expr_node
  | Abs of expr_node

and expr_node = { expr : expr; epos : pos }

(** Statements. [Bug] marks a seeded defect site: executing it crashes with
    the given ground-truth bug identifier (the analogue of an ASAN report at
    a known buggy line). [Check] crashes when its condition is zero. *)
type stmt =
  | Decl of string * expr_node option
  | Assign of string * expr_node
  | Store of expr_node * expr_node * expr_node  (** base, index, value *)
  | If of expr_node * block * block
  | While of expr_node * block
  | Return of expr_node option
  | ExprStmt of expr_node
  | Bug of int
  | Check of expr_node * int  (** condition, bug id on failure *)

and stmt_node = { stmt : stmt; spos : pos }

and block = stmt_node list

type func = {
  fname : string;
  params : string list;
  body : block;
  fpos : pos;
}

(** A global is an integer cell or an array of the given static size,
    zero-initialised before [main] runs. *)
type global = Gint of string | Garr of string * int

type program = { globals : global list; funcs : func list }

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let unop_to_string = function Neg -> "-" | Not -> "!" | Bnot -> "~"
