(** Lowering from the MiniC AST to the CFG IR.

    The pass performs three desugarings that shape the CFG exactly as a C
    compiler front-end would:
    - short-circuit [&&]/[||]/[!] become branch chains ("jumping code"),
      both in statement conditions and in value positions;
    - calls are hoisted out of expressions into [CallI] instructions on
      fresh temporaries, in left-to-right evaluation order;
    - [while] becomes the classic header/body/exit shape whose body→header
      edge is the loop back edge Ball–Larus instrumentation keys on.

    Unreachable blocks (e.g. code after [return]) are pruned and labels are
    compacted before the function is emitted. *)

open Ast

(* Mutable single-function lowering state. Blocks are built as a growable
   list of (label, rev-instrs, term option); the current block accumulates
   instructions until a terminator seals it. *)
type fstate = {
  mutable blocks : (int * Ir.instr list * Ir.term option) array;
  mutable nblocks : int;
  mutable cur : int;  (** index of the open block *)
  mutable tmp : int;
  mutable locals : string list;  (* declared names + temps, reversed *)
  sites : Ir.site_info list ref;  (** program-wide, reversed *)
  nsites : int ref;
  fname : string;
}

let new_site st pos kind =
  let id = !(st.nsites) in
  incr st.nsites;
  st.sites := { Ir.sfunc = st.fname; spos = pos; skind = kind } :: !(st.sites);
  id

let new_block st =
  let label = st.nblocks in
  if st.nblocks = Array.length st.blocks then begin
    let bigger = Array.make (max 8 (2 * st.nblocks)) (0, [], None) in
    Array.blit st.blocks 0 bigger 0 st.nblocks;
    st.blocks <- bigger
  end;
  st.blocks.(st.nblocks) <- (label, [], None);
  st.nblocks <- st.nblocks + 1;
  label

let emit st instr =
  let label, instrs, term = st.blocks.(st.cur) in
  match term with
  | Some _ -> ()  (* dead code after return: drop *)
  | None -> st.blocks.(st.cur) <- (label, instr :: instrs, None)

let seal st term =
  let label, instrs, t = st.blocks.(st.cur) in
  match t with
  | Some _ -> ()
  | None -> st.blocks.(st.cur) <- (label, instrs, Some term)

let switch_to st label = st.cur <- label

let fresh_tmp st =
  let n = st.tmp in
  st.tmp <- n + 1;
  let name = Printf.sprintf "%%t%d" n in
  st.locals <- name :: st.locals;
  name

(* Lower an expression to a pure IR expression, emitting call instructions
   and short-circuit control flow as needed. *)
let rec lower_expr st (e : expr_node) : Ir.expr =
  match e.expr with
  | Int n -> Ir.Const n
  | Var v -> Ir.Load v
  | Index (a, i) ->
      let a' = lower_expr st a in
      let i' = lower_expr st i in
      Ir.Index (a', i')
  | Binop ((Land | Lor), _, _) | Unop (Not, _) ->
      (* Value position: materialise the boolean through jumping code. *)
      let t = fresh_tmp st in
      let l_true = new_block st in
      let l_false = new_block st in
      let l_join = new_block st in
      lower_cond st e l_true l_false;
      switch_to st l_true;
      let s1 = new_site st e.epos Ir.Sassign in
      emit st (Ir.Assign { dst = t; e = Ir.Const 1; site = s1 });
      seal st (Ir.Goto l_join);
      switch_to st l_false;
      let s0 = new_site st e.epos Ir.Sassign in
      emit st (Ir.Assign { dst = t; e = Ir.Const 0; site = s0 });
      seal st (Ir.Goto l_join);
      switch_to st l_join;
      Ir.Load t
  | Binop (op, a, b) ->
      let a' = lower_expr st a in
      let b' = lower_expr st b in
      Ir.Binop (op, a', b')
  | Unop (op, a) -> Ir.Unop (op, lower_expr st a)
  | Call (callee, args) ->
      let args' = List.map (lower_expr st) args in
      let t = fresh_tmp st in
      let site = new_site st e.epos Ir.Scall in
      emit st (Ir.CallI { dst = Some t; callee; args = args'; site });
      Ir.Load t
  | In a -> Ir.InByte (lower_expr st a)
  | Len -> Ir.InputLen
  | ArrayMake a -> Ir.ArrayMake (lower_expr st a)
  | ArrayLen a -> Ir.ArrayLen (lower_expr st a)
  | Abs a -> Ir.Abs (lower_expr st a)

(* Lower [e] as a condition jumping to [l_true]/[l_false]. *)
and lower_cond st (e : expr_node) l_true l_false : unit =
  match e.expr with
  | Binop (Land, a, b) ->
      let l_mid = new_block st in
      lower_cond st a l_mid l_false;
      switch_to st l_mid;
      lower_cond st b l_true l_false
  | Binop (Lor, a, b) ->
      let l_mid = new_block st in
      lower_cond st a l_true l_mid;
      switch_to st l_mid;
      lower_cond st b l_true l_false
  | Unop (Not, a) -> lower_cond st a l_false l_true
  | _ ->
      let c = lower_expr st e in
      let site = new_site st e.epos Ir.Sbranch in
      seal st (Ir.Branch { cond = c; if_true = l_true; if_false = l_false; site })

let rec lower_block st (b : block) : unit = List.iter (lower_stmt st) b

and lower_stmt st (s : stmt_node) : unit =
  match s.stmt with
  | Decl (name, init) ->
      if not (List.mem name st.locals) then st.locals <- name :: st.locals;
      let e =
        match init with Some e -> lower_expr st e | None -> Ir.Const 0
      in
      let site = new_site st s.spos Ir.Sassign in
      emit st (Ir.Assign { dst = name; e; site })
  | Assign (name, e) ->
      let e' = lower_expr st e in
      let site = new_site st s.spos Ir.Sassign in
      emit st (Ir.Assign { dst = name; e = e'; site })
  | Store (base, idx, v) ->
      let base' = lower_expr st base in
      let idx' = lower_expr st idx in
      let v' = lower_expr st v in
      let site = new_site st s.spos Ir.Sstore in
      emit st (Ir.Store { base = base'; idx = idx'; v = v'; site })
  | If (cond, then_, else_) ->
      let l_then = new_block st in
      let l_else = new_block st in
      let l_join = new_block st in
      lower_cond st cond l_then l_else;
      switch_to st l_then;
      lower_block st then_;
      seal st (Ir.Goto l_join);
      switch_to st l_else;
      lower_block st else_;
      seal st (Ir.Goto l_join);
      switch_to st l_join
  | While (cond, body) ->
      let l_head = new_block st in
      let l_body = new_block st in
      let l_exit = new_block st in
      seal st (Ir.Goto l_head);
      switch_to st l_head;
      lower_cond st cond l_body l_exit;
      switch_to st l_body;
      lower_block st body;
      seal st (Ir.Goto l_head);
      switch_to st l_exit
  | Return e ->
      let e' = Option.map (lower_expr st) e in
      let site = new_site st s.spos Ir.Sreturn in
      seal st (Ir.Ret { e = e'; site });
      (* Open a fresh (unreachable) block for any trailing statements. *)
      let l = new_block st in
      switch_to st l
  | ExprStmt e ->
      (* Only the side effects (calls) matter; a pure result is dropped. *)
      begin
        match e.expr with
        | Call (callee, args) ->
            let args' = List.map (lower_expr st) args in
            let site = new_site st e.epos Ir.Scall in
            emit st (Ir.CallI { dst = None; callee; args = args'; site })
        | _ -> ignore (lower_expr st e)
      end
  | Bug id ->
      let site = new_site st s.spos (Ir.Sbug id) in
      emit st (Ir.BugI { bug = id; site })
  | Check (cond, id) ->
      let c = lower_expr st cond in
      let site = new_site st s.spos (Ir.Scheck id) in
      emit st (Ir.CheckI { cond = c; bug = id; site })

(* Drop unreachable blocks and compact labels so that blocks.(i).label = i. *)
let prune_and_compact (blocks : (int * Ir.instr list * Ir.term option) array)
    (n : int) : Ir.block array =
  let term_of i =
    let _, _, t = blocks.(i) in
    match t with Some t -> t | None -> Ir.Ret { e = None; site = -1 }
  in
  let visited = Array.make n false in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs (Ir.successors (term_of i))
    end
  in
  dfs 0;
  let remap = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if visited.(i) then begin
      remap.(i) <- !count;
      incr count
    end
  done;
  let remap_term = function
    | Ir.Goto l -> Ir.Goto remap.(l)
    | Ir.Branch b ->
        Ir.Branch { b with if_true = remap.(b.if_true); if_false = remap.(b.if_false) }
    | Ir.Ret _ as t -> t
  in
  let out = Array.make !count { Ir.label = 0; instrs = []; term = Ir.Goto 0 } in
  for i = 0 to n - 1 do
    if visited.(i) then begin
      let _, rev_instrs, _ = blocks.(i) in
      out.(remap.(i)) <-
        {
          Ir.label = remap.(i);
          instrs = List.rev rev_instrs;
          term = remap_term (term_of i);
        }
    end
  done;
  out

let lower_func sites nsites (f : func) : Ir.func =
  let st =
    {
      blocks = Array.make 8 (0, [], None);
      nblocks = 0;
      cur = 0;
      tmp = 0;
      locals = [];
      sites;
      nsites;
      fname = f.fname;
    }
  in
  let entry = new_block st in
  switch_to st entry;
  lower_block st f.body;
  (* Implicit return at the end of the body. *)
  let site = new_site st f.fpos Ir.Sreturn in
  seal st (Ir.Ret { e = None; site });
  {
    Ir.name = f.fname;
    params = f.params;
    locals = List.rev st.locals;
    blocks = prune_and_compact st.blocks st.nblocks;
  }

(** Lower a checked program to IR. *)
let lower (p : program) : Ir.program =
  let sites = ref [] in
  let nsites = ref 0 in
  let funcs = Array.of_list (List.map (lower_func sites nsites) p.funcs) in
  let site_arr = Array.of_list (List.rev !sites) in
  { Ir.globals = p.globals; funcs; sites = site_arr }

(** Front-end pipeline: parse, check, lower. *)
let compile (src : string) : Ir.program = lower (Sema.front src)
