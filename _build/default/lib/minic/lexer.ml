(** Hand-written lexer for MiniC. Produces a token list with positions;
    raises [Error] on malformed input. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** one of the reserved words *)
  | PUNCT of string  (** operators and delimiters, longest-match *)
  | EOF

type tok = { tok : token; pos : Ast.pos }

exception Error of string * Ast.pos

let keywords =
  [
    "fn"; "var"; "global"; "if"; "else"; "while"; "return"; "bug"; "check";
    "in"; "len"; "array"; "array_len"; "abs";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Multi-character punctuation must be tried before its prefixes. *)
let puncts =
  [
    "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "("; ")"; "{"; "}"; "[";
    "]"; ","; ";"; "="; "<"; ">"; "+"; "-"; "*"; "/"; "%"; "!"; "&"; "|"; "^";
    "~";
  ]

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"

let tokenize (src : string) : tok list =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let pos i = { Ast.line = !line; col = i - !bol + 1 } in
  let rec skip i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> skip (i + 1)
      | '\n' ->
          incr line;
          bol := i + 1;
          skip (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
          skip (eol (i + 1))
      | _ -> i
  in
  let rec lex acc i =
    let i = skip i in
    if i >= n then List.rev ({ tok = EOF; pos = pos i } :: acc)
    else
      let p = pos i in
      let c = src.[i] in
      if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        let v = int_of_string (String.sub src i (!j - i)) in
        lex ({ tok = INT v; pos = p } :: acc) !j
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        let s = String.sub src i (!j - i) in
        let t = if List.mem s keywords then KW s else IDENT s in
        lex ({ tok = t; pos = p } :: acc) !j
      end
      else
        let rec try_puncts = function
          | [] -> raise (Error (Printf.sprintf "unexpected character %C" c, p))
          | pct :: rest ->
              let l = String.length pct in
              if i + l <= n && String.sub src i l = pct then
                lex ({ tok = PUNCT pct; pos = p } :: acc) (i + l)
              else try_puncts rest
        in
        try_puncts puncts
  in
  lex [] 0
