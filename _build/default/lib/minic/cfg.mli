(** Graph view over an {!Ir.func}: successor/predecessor arrays and
    standard traversals. Labels are dense block indices; block 0 is the
    entry and every block is reachable (lowering prunes the rest). *)

type t = {
  func : Ir.func;
  succ : int list array;  (** successors in terminator order *)
  pred : int list array;  (** predecessors, ascending *)
}

val of_func : Ir.func -> t
val num_blocks : t -> int
val successors : t -> int -> int list
val predecessors : t -> int -> int list

(** Depth-first postorder from the entry. *)
val postorder : t -> int list

val reverse_postorder : t -> int list

(** Blocks terminated by a return. *)
val exits : t -> int list

(** All edges (src, dst), terminator order per source block. The order is
    significant for Ball–Larus edge numbering. *)
val edges : t -> (int * int) list

val num_edges : t -> int
