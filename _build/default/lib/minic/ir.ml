(** Control-flow-graph intermediate representation for MiniC.

    Every function is an array of basic blocks; block 0 is the entry. IR
    expressions are pure (no calls, no short-circuit operators — the
    lowering pass hoists calls into [Call] instructions and desugars
    [&&]/[||] into branches), so an instruction is the only unit of side
    effect and a terminator is the only unit of intra-procedural control
    flow. Each instruction and terminator carries a globally unique [site]
    identifier used for crash reporting and ground-truth bug identity. *)

type var = string

(** Strict binary operators (no [Land]/[Lor]; those never reach the IR). *)
type binop = Ast.binop

type expr =
  | Const of int
  | Load of var
  | Index of expr * expr
  | Binop of binop * expr * expr
  | Unop of Ast.unop * expr
  | InByte of expr  (** input byte at offset, or -1 when out of range *)
  | InputLen
  | ArrayMake of expr
  | ArrayLen of expr
  | Abs of expr

type site = int

type instr =
  | Assign of { dst : var; e : expr; site : site }
  | Store of { base : expr; idx : expr; v : expr; site : site }
  | CallI of { dst : var option; callee : string; args : expr list; site : site }
  | BugI of { bug : int; site : site }
      (** seeded defect: executing this crashes with ground-truth id [bug] *)
  | CheckI of { cond : expr; bug : int; site : site }
      (** ASAN-like check: crashes with id [bug] when [cond] is zero *)

type term =
  | Goto of int
  | Branch of { cond : expr; if_true : int; if_false : int; site : site }
  | Ret of { e : expr option; site : site }

type block = { label : int; instrs : instr list; term : term }

type func = {
  name : string;
  params : var list;
  locals : var list;
      (** names declared with [var] plus lowering temporaries; any other
          name referenced by the body is a global *)
  blocks : block array;
}

(** What kind of source construct a site identifies — used in diagnostics. *)
type site_kind =
  | Sassign
  | Sstore
  | Scall
  | Sbug of int
  | Scheck of int
  | Sbranch
  | Sreturn

type site_info = { sfunc : string; spos : Ast.pos; skind : site_kind }

type program = {
  globals : Ast.global list;
  funcs : func array;
  sites : site_info array;  (** indexed by site id *)
}

let instr_site = function
  | Assign { site; _ } | Store { site; _ } | CallI { site; _ } | BugI { site; _ }
  | CheckI { site; _ } ->
      site

let term_site = function
  | Goto _ -> None
  | Branch { site; _ } -> Some site
  | Ret { site; _ } -> Some site

(** Successor labels of a terminator, in CFG order (branch: true then
    false). The order is significant for Ball–Larus edge numbering. *)
let successors = function
  | Goto l -> [ l ]
  | Branch { if_true; if_false; _ } ->
      if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Ret _ -> []

let find_func (p : program) (name : string) : func option =
  Array.find_opt (fun f -> f.name = name) p.funcs

let func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.func_exn: no function %s" name)

(** Number of sites in the program (site ids are dense in [0, n)). *)
let num_sites p = Array.length p.sites
