(** Back-edge and natural-loop detection.

    A retreating edge is a DFS edge to a node already on the DFS stack; it
    is a proper back edge when its target dominates its source. MiniC only
    produces structured loops, so every retreating edge is a back edge and
    CFGs are reducible — [reducible] certifies this, and the Ball–Larus
    pass asserts it before instrumenting. *)

type loop = {
  header : int;
  back_edge : int * int;  (** (latch, header) *)
  body : int list;  (** blocks of the natural loop, ascending, incl. header *)
}

(** Retreating edges of a depth-first traversal from the entry, in
    discovery order. *)
let retreating_edges (cfg : Cfg.t) : (int * int) list =
  let n = Cfg.num_blocks cfg in
  let color = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let acc = ref [] in
  let rec dfs v =
    color.(v) <- 1;
    List.iter
      (fun w ->
        if color.(w) = 0 then dfs w
        else if color.(w) = 1 then acc := (v, w) :: !acc)
      (Cfg.successors cfg v);
    color.(v) <- 2
  in
  dfs 0;
  List.rev !acc

(** Back edges (v, w) where [w] dominates [v]. *)
let back_edges (cfg : Cfg.t) : (int * int) list =
  let dom = Dominance.compute cfg in
  List.filter (fun (v, w) -> Dominance.dominates dom w v) (retreating_edges cfg)

(** A CFG is reducible when every retreating edge is a back edge. *)
let reducible (cfg : Cfg.t) : bool =
  let dom = Dominance.compute cfg in
  List.for_all (fun (v, w) -> Dominance.dominates dom w v) (retreating_edges cfg)

(** Natural loop of a back edge: header plus all blocks that reach the
    latch without passing through the header. *)
let natural_loop (cfg : Cfg.t) ((latch, header) : int * int) : loop =
  let n = Cfg.num_blocks cfg in
  let in_loop = Array.make n false in
  in_loop.(header) <- true;
  let rec walk v =
    if not in_loop.(v) then begin
      in_loop.(v) <- true;
      List.iter walk (Cfg.predecessors cfg v)
    end
  in
  walk latch;
  let body = ref [] in
  for v = n - 1 downto 0 do
    if in_loop.(v) then body := v :: !body
  done;
  { header; back_edge = (latch, header); body = !body }

let loops (cfg : Cfg.t) : loop list = List.map (natural_loop cfg) (back_edges cfg)

(** Loop nesting depth per block (0 = not in any loop). *)
let depths (cfg : Cfg.t) : int array =
  let n = Cfg.num_blocks cfg in
  let d = Array.make n 0 in
  List.iter
    (fun l -> List.iter (fun v -> d.(v) <- d.(v) + 1) l.body)
    (loops cfg);
  d
