(** Printers for IR programs, used by diagnostics, examples and tests. *)

open Ir

let rec pp_expr fmt = function
  | Const n -> Fmt.int fmt n
  | Load v -> Fmt.string fmt v
  | Index (a, i) -> Fmt.pf fmt "%a[%a]" pp_expr a pp_expr i
  | Binop (op, a, b) ->
      Fmt.pf fmt "(%a %s %a)" pp_expr a (Ast.binop_to_string op) pp_expr b
  | Unop (op, a) -> Fmt.pf fmt "%s%a" (Ast.unop_to_string op) pp_expr a
  | InByte e -> Fmt.pf fmt "in(%a)" pp_expr e
  | InputLen -> Fmt.string fmt "len()"
  | ArrayMake e -> Fmt.pf fmt "array(%a)" pp_expr e
  | ArrayLen e -> Fmt.pf fmt "array_len(%a)" pp_expr e
  | Abs e -> Fmt.pf fmt "abs(%a)" pp_expr e

let pp_instr fmt = function
  | Assign { dst; e; _ } -> Fmt.pf fmt "%s = %a" dst pp_expr e
  | Store { base; idx; v; _ } ->
      Fmt.pf fmt "%a[%a] = %a" pp_expr base pp_expr idx pp_expr v
  | CallI { dst = Some d; callee; args; _ } ->
      Fmt.pf fmt "%s = %s(%a)" d callee Fmt.(list ~sep:comma pp_expr) args
  | CallI { dst = None; callee; args; _ } ->
      Fmt.pf fmt "%s(%a)" callee Fmt.(list ~sep:comma pp_expr) args
  | BugI { bug; _ } -> Fmt.pf fmt "bug(%d)" bug
  | CheckI { cond; bug; _ } -> Fmt.pf fmt "check(%a, %d)" pp_expr cond bug

let pp_term fmt = function
  | Goto l -> Fmt.pf fmt "goto L%d" l
  | Branch { cond; if_true; if_false; _ } ->
      Fmt.pf fmt "if %a then L%d else L%d" pp_expr cond if_true if_false
  | Ret { e = Some e; _ } -> Fmt.pf fmt "ret %a" pp_expr e
  | Ret { e = None; _ } -> Fmt.string fmt "ret"

let pp_block fmt (b : block) =
  Fmt.pf fmt "@[<v 2>L%d:" b.label;
  List.iter (fun i -> Fmt.pf fmt "@ %a" pp_instr i) b.instrs;
  Fmt.pf fmt "@ %a@]" pp_term b.term

let pp_func fmt (f : func) =
  Fmt.pf fmt "@[<v 2>fn %s(%a):@ %a@]" f.name
    Fmt.(list ~sep:comma string)
    f.params
    Fmt.(array ~sep:(any "@ ") pp_block)
    f.blocks

let pp_program fmt (p : program) =
  Fmt.pf fmt "@[<v>%a@]" Fmt.(array ~sep:(any "@ @ ") pp_func) p.funcs

let func_to_string f = Fmt.str "%a" pp_func f
let program_to_string p = Fmt.str "%a" pp_program p
