(** Graphviz output for function CFGs, optionally annotated with
    Ball–Larus edge increments (the caller supplies a labelling function,
    keeping this module independent of the instrumentation library). *)

let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

(** [to_dot ?edge_label f] renders the CFG of [f]. [edge_label (v, w)]
    may return a string shown on the edge (e.g. a path-ID increment). *)
let to_dot ?(edge_label = fun (_ : int * int) -> None) (f : Ir.func) : string =
  let buf = Buffer.create 512 in
  let cfg = Cfg.of_func f in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" f.name);
  Buffer.add_string buf "  node [shape=box fontname=monospace];\n";
  Array.iter
    (fun (b : Ir.block) ->
      let body =
        String.concat "\\l"
          (List.map (Fmt.str "%a" Pretty.pp_instr) b.instrs
          @ [ Fmt.str "%a" Pretty.pp_term b.term ])
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"L%d:\\l%s\\l\"];\n" b.label b.label
           (escape body)))
    f.blocks;
  List.iter
    (fun (v, w) ->
      match edge_label (v, w) with
      | Some l ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" v w (escape l))
      | None -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" v w))
    (Cfg.edges cfg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
