(** Dominator computation using the Cooper–Harvey–Kennedy iterative
    algorithm ("A Simple, Fast Dominance Algorithm"). Used by the loop
    analysis to certify back edges (target dominates source), which in turn
    certifies CFG reducibility for the Ball–Larus pass. *)

type t = {
  idom : int array;  (** immediate dominator; entry maps to itself *)
  rpo_index : int array;  (** position of each block in reverse postorder *)
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.num_blocks cfg in
  let rpo = Array.of_list (Cfg.reverse_postorder cfg) in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i v -> rpo_index.(v) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_index.(!f1) > rpo_index.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_index.(!f2) > rpo_index.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> 0 then begin
          let preds = Cfg.predecessors cfg v in
          let processed = List.filter (fun p -> idom.(p) <> -1) preds in
          match processed with
          | [] -> ()  (* unreachable; cannot happen after pruning *)
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo_index }

(** [dominates t a b] iff every path from the entry to [b] goes through
    [a] (reflexive). *)
let dominates (t : t) (a : int) (b : int) : bool =
  let rec walk v = if v = a then true else if v = 0 then a = 0 else walk t.idom.(v) in
  walk b

let immediate_dominator t v = t.idom.(v)
