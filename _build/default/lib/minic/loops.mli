(** Back-edge and natural-loop detection. MiniC only produces structured
    loops, so every retreating edge is a back edge and CFGs are reducible;
    {!reducible} certifies this and the Ball–Larus pass asserts it. *)

type loop = {
  header : int;
  back_edge : int * int;  (** (latch, header) *)
  body : int list;  (** blocks of the natural loop, ascending, incl. header *)
}

(** Retreating edges of a depth-first traversal from the entry. *)
val retreating_edges : Cfg.t -> (int * int) list

(** Back edges (latch, header) where the header dominates the latch. *)
val back_edges : Cfg.t -> (int * int) list

(** A CFG is reducible when every retreating edge is a back edge. *)
val reducible : Cfg.t -> bool

val natural_loop : Cfg.t -> int * int -> loop
val loops : Cfg.t -> loop list

(** Loop nesting depth per block (0 = not in any loop); drives the
    spanning-tree edge weights of the Ball–Larus pass. *)
val depths : Cfg.t -> int array
