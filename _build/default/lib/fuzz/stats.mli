(** Statistics toolbox for the evaluation: medians, geometric means and
    the set algebra behind the pairwise bug comparisons (the ∩ and ∖
    columns of Tables II/VI/VII/VIII/X and the Figure 3 Venn regions). *)

val median_float : float list -> float
val median_int : int list -> float

(** Geometric mean of positive values; non-positive entries are skipped
    (mirrors how the paper reports GEOMEAN rows); [nan] on empty input. *)
val geomean : float list -> float

module Bug_set : Set.S with type elt = Vm.Crash.identity

val bug_set : Vm.Crash.identity list -> Bug_set.t
val inter : Bug_set.t -> Bug_set.t -> int
val diff : Bug_set.t -> Bug_set.t -> int

(** Sizes of the seven regions of a three-set Venn diagram, as
    [(only_a, only_b, only_c, ab, ac, bc, abc)]. *)
val venn3 :
  Bug_set.t -> Bug_set.t -> Bug_set.t -> int * int * int * int * int * int * int

(** Two-set Venn regions: [(only_a, only_b, both)]. *)
val venn2 : Bug_set.t -> Bug_set.t -> int * int * int
