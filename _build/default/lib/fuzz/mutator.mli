(** Input mutation engine: the AFL havoc stack, splicing, and an
    input-to-state substitution stage fed by comparison operands captured
    by the VM (the stand-in for AFL++'s cmplog/Redqueen, enabled for all
    fuzzer configurations in the paper's evaluation). *)

(** Hard cap on generated input length. *)
val max_len : int

(** A comparison observed at run time: the program compared [observed]
    (hopefully an input-derived value) against [wanted]. *)
type cmp_pair = { observed : int; wanted : int }

(** Try to rewrite the input so the observed operand becomes the wanted
    one: searches for little-endian (1/2/4-byte) and ASCII-decimal
    encodings of [observed] and substitutes the encoding of [wanted];
    returns the input unchanged when no encoding is found. *)
val i2s_apply : Rng.t -> cmp_pair -> string -> string

(** One havoc-mutated child: a random stack of 1–8 operations (bit flips,
    arithmetic, interesting values, block copy/insert/delete, optional
    input-to-state substitution from [cmps], optional splice with a second
    corpus entry). Never returns an empty string. *)
val havoc : ?cmps:cmp_pair list -> ?splice_with:string -> Rng.t -> string -> string

(** The deterministic stage (walking bit flips and interesting bytes),
    used by tests and the classic-AFL profile; returns all children. *)
val deterministic : string -> string list
