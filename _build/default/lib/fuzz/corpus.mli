(** The fuzzer queue and AFL's favored-corpus machinery
    ([update_bitmap_score]/[cull_queue]): for every coverage-map index the
    cheapest entry covering it is top-rated, and an entry is *favored* if
    it is top-rated somewhere. The paper's culling strategy (§III-B1) and
    opportunistic queue trim (§III-B2) reuse this machinery, as does the
    scheduler's favored-skip logic. *)

type entry = {
  id : int;
  data : string;
  indices : int array;  (** classified trace indices hit, ascending *)
  exec_blocks : int;  (** work proxy standing in for execution time *)
  depth : int;  (** mutation chain length from the seed *)
  found_at : int;  (** global execution counter at discovery *)
  mutable favored : bool;
  mutable times_fuzzed : int;
}

type t = {
  mutable entries : entry list;  (** newest first *)
  mutable size : int;
  mutable next_id : int;
  top_rated : (int, entry) Hashtbl.t;  (** map index -> cheapest entry *)
  mutable pending_favored : int;
}

val create : unit -> t

(** afl's fav_factor: execution work x input length. *)
val fav_factor : entry -> int

(** Full favored recomputation (afl's cull_queue, run at cycle starts). *)
val recompute_favored : t -> unit

val add :
  t ->
  data:string ->
  indices:int array ->
  exec_blocks:int ->
  depth:int ->
  found_at:int ->
  entry

(** Entries in discovery order. *)
val to_list : t -> entry list

val size : t -> int

(** Entries whose union of indices equals the whole queue's union, chosen
    greedily by {!fav_factor} — the "minimal coverage-preserving queue"
    the culling strategy retains. *)
val favored_subset : t -> entry list

(** Union of all covered indices across the queue, ascending. *)
val covered_indices : t -> int list
