(** The coverage-guided fuzzing loop: an afl-fuzz-shaped campaign over the
    MiniC VM, parameterised by the feedback listener (§IV "Integration").
    Budgets are execution counts — the deterministic stand-in for the
    paper's wall-clock budgets — and all randomness flows from one
    {!Rng.t}, so a run is a pure function of (program, seeds, config). *)

type config = {
  mode : Pathcov.Feedback.mode;
  budget : int;  (** total target executions *)
  rng_seed : int;
  fuel : int;  (** VM fuel per execution (the timeout analogue) *)
  map_size_log2 : int;
  cmplog : bool;  (** comparison-operand capture + I2S mutations *)
  max_queue : int;  (** hard safety bound on queue growth *)
}

val default_config : config

type result = {
  config : config;
  corpus : Corpus.t;
  triage : Triage.t;
  execs : int;  (** executions actually performed *)
  queue_series : (int * int) list;  (** (execs, queue size) samples *)
  sum_exec_blocks : int;  (** total VM blocks executed, throughput proxy *)
}

(** Final queue inputs, in discovery order. *)
val queue_inputs : result -> string list

(** Run a campaign. [plans] shares a precomputed Ball–Larus artifact
    across campaigns on the same program. *)
val run :
  ?plans:Pathcov.Ball_larus.program_plans ->
  ?config:config ->
  Minic.Ir.program ->
  seeds:string list ->
  result
