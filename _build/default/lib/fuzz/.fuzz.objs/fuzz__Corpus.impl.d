lib/fuzz/corpus.ml: Array Hashtbl List String
