lib/fuzz/campaign.mli: Corpus Minic Pathcov Triage
