lib/fuzz/measure.ml: Hashtbl Int List Pathcov Set String Vm
