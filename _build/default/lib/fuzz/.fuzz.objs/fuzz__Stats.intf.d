lib/fuzz/stats.mli: Set Vm
