lib/fuzz/mutator.mli: Rng
