lib/fuzz/campaign.ml: Array Corpus Hashtbl List Minic Mutator Pathcov Rng Triage Vm
