lib/fuzz/triage.mli: Hashtbl Vm
