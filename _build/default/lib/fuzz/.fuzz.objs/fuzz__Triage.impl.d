lib/fuzz/triage.ml: Hashtbl List Option Vm
