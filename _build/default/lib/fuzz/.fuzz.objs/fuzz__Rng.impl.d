lib/fuzz/rng.ml: Array Char List
