lib/fuzz/strategy.ml: Array Campaign Corpus List Measure Minic Pathcov Printf Rng Triage
