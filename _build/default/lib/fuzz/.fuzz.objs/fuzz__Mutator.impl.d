lib/fuzz/mutator.ml: Array Bytes Char List Rng String
