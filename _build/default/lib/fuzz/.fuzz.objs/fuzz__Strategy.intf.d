lib/fuzz/strategy.mli: Minic Pathcov Triage
