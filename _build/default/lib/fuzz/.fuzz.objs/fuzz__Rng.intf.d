lib/fuzz/rng.mli:
