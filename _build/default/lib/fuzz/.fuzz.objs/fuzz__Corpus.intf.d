lib/fuzz/corpus.mli: Hashtbl
