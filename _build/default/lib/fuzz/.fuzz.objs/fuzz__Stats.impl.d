lib/fuzz/stats.ml: List Set Vm
