lib/fuzz/measure.mli: Minic Pathcov Set
