lib/core/ball_larus.mli: Hashtbl Minic
