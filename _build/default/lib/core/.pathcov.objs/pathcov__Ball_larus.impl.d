lib/core/ball_larus.ml: Array Hashtbl List Minic Printf Queue
