lib/core/feedback.mli: Ball_larus Coverage_map Minic
