lib/core/coverage_map.ml: Array Bytes Char List
