lib/core/feedback.ml: Array Ball_larus Coverage_map Hashtbl List Minic Printf
