lib/core/coverage_map.mli:
