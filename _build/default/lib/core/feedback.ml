(** Coverage feedback listeners: the sensitivity ladder studied by the
    paper. Each listener consumes VM execution events and fills a trace
    [Coverage_map.t]; the fuzzer then classifies the trace and asks the
    virgin map for novelty. Implemented modes:

    - [Block]: basic-block coverage (n-gram with n=0);
    - [Edge]: AFL/pcguard-style edge coverage via a shifted previous-block
      key, the paper's baseline feedback;
    - [Ngram n]: last-n-blocks history hashing (§VII related work);
    - [Path]: the paper's contribution — Ball–Larus intra-procedural
      acyclic-path IDs, committed at back edges and returns, indexed as
      [(path_id xor function_salt) mod map_size] (§IV);
    - [Pathafl]: a PathAFL-like sketch — edge coverage plus a rolling hash
      over "key" edges (function entries and branch edges), approximating
      partial whole-program paths (Appendix C comparison). *)

type mode = Block | Edge | Ngram of int | Path | Pathafl

let mode_name = function
  | Block -> "block"
  | Edge -> "edge"
  | Ngram n -> Printf.sprintf "ngram%d" n
  | Path -> "path"
  | Pathafl -> "pathafl"

type t = {
  mode : mode;
  trace : Coverage_map.t;
  reset : unit -> unit;  (** called before each execution *)
  on_call : int -> unit;  (** [fid]: a function activation begins *)
  on_block : int -> int -> unit;  (** [fid block]: control enters block *)
  on_edge : int -> int -> int -> unit;  (** [fid src dst]: CFG transition *)
  on_ret : int -> int -> unit;  (** [fid block]: return executes in block *)
}

(* Stable per-(function, block) location key, spread over the map domain. *)
let block_key fid block = ((fid * 0x9e3779b1) + (block * 0x85ebca6b)) land max_int

let make_block prog map =
  ignore prog;
  {
    mode = Block;
    trace = map;
    reset = (fun () -> ());
    on_call = (fun _ -> ());
    on_block = (fun fid b -> Coverage_map.hit map (block_key fid b));
    on_edge = (fun _ _ _ -> ());
    on_ret = (fun _ _ -> ());
  }

let make_edge prog map =
  ignore prog;
  let prev = ref 0 in
  {
    mode = Edge;
    trace = map;
    reset = (fun () -> prev := 0);
    on_call = (fun _ -> ());
    on_block =
      (fun fid b ->
        let cur = block_key fid b in
        Coverage_map.hit map (cur lxor !prev);
        prev := cur lsr 1);
    on_edge = (fun _ _ _ -> ());
    on_ret = (fun _ _ -> ());
  }

let make_ngram n prog map =
  ignore prog;
  if n < 2 then invalid_arg "Feedback.make_ngram: n must be >= 2";
  let hist = Array.make n 0 in
  let pos = ref 0 in
  {
    mode = Ngram n;
    trace = map;
    reset =
      (fun () ->
        Array.fill hist 0 n 0;
        pos := 0);
    on_call = (fun _ -> ());
    on_block =
      (fun fid b ->
        hist.(!pos mod n) <- block_key fid b;
        incr pos;
        let h = ref 0 in
        for i = 0 to n - 1 do
          h := !h lxor (hist.(i) lsr (i land 15))
        done;
        Coverage_map.hit map !h);
    on_edge = (fun _ _ _ -> ());
    on_ret = (fun _ _ -> ());
  }

let make_path (plans : Ball_larus.program_plans) (prog : Minic.Ir.program) map =
  let salts =
    Array.map (fun (f : Minic.Ir.func) -> Hashtbl.hash f.name * 0x9e3779b1) prog.funcs
  in
  (* One path register per live activation; reset clears leftovers from
     crashed executions. *)
  let regs = ref [] in
  let fids = ref [] in
  let commit fid pid =
    Coverage_map.hit map ((pid lxor salts.(fid)) land max_int)
  in
  let top_add delta =
    match !regs with [] -> () | r :: rest -> regs := (r + delta) :: rest
  in
  {
    mode = Path;
    trace = map;
    reset =
      (fun () ->
        regs := [];
        fids := []);
    on_call =
      (fun fid ->
        regs := 0 :: !regs;
        fids := fid :: !fids);
    on_block = (fun _ _ -> ());
    on_edge =
      (fun fid src dst ->
        match Ball_larus.on_edge plans.plans.(fid) ~src ~dst with
        | None -> ()
        | Some (Ball_larus.Add k) -> top_add k
        | Some (Ball_larus.Commit_back { add; reset }) -> begin
            match !regs with
            | [] -> ()
            | r :: rest ->
                commit fid (r + add);
                regs := reset :: rest
          end);
    on_ret =
      (fun fid block ->
        match (!regs, !fids) with
        | r :: rrest, _ :: frest ->
            commit fid (r + Ball_larus.on_ret plans.plans.(fid) ~block);
            regs := rrest;
            fids := frest
        | _ -> ());
  }

let make_pathafl (prog : Minic.Ir.program) map =
  (* Branch-edge predicate per function: edges out of multi-successor
     blocks are "key" edges that feed the rolling whole-program hash. *)
  let nsucc =
    Array.map
      (fun (f : Minic.Ir.func) ->
        Array.map
          (fun (b : Minic.Ir.block) -> List.length (Minic.Ir.successors b.term))
          f.blocks)
      prog.funcs
  in
  let prev = ref 0 in
  let rolling = ref 0 in
  let key_event k =
    rolling := (((!rolling lsl 13) lor (!rolling lsr 49)) lxor k) land max_int;
    Coverage_map.hit map !rolling
  in
  {
    mode = Pathafl;
    trace = map;
    reset =
      (fun () ->
        prev := 0;
        rolling := 0);
    on_call = (fun fid -> key_event (block_key fid 0 + 1));
    on_block =
      (fun fid b ->
        let cur = block_key fid b in
        Coverage_map.hit map (cur lxor !prev);
        prev := cur lsr 1);
    on_edge =
      (fun fid src dst ->
        if nsucc.(fid).(src) >= 2 then key_event (block_key fid src lxor (dst * 31)));
    on_ret = (fun _ _ -> ());
  }

(** Instantiate a feedback listener for [prog]. [plans] may be supplied to
    share a precomputed Ball–Larus artifact across campaigns (it is only
    consulted for [Path] mode). *)
let make ?size_log2 ?plans mode (prog : Minic.Ir.program) : t =
  let map = Coverage_map.create ?size_log2 () in
  match mode with
  | Block -> make_block prog map
  | Edge -> make_edge prog map
  | Ngram n -> make_ngram n prog map
  | Path ->
      let plans =
        match plans with Some p -> p | None -> Ball_larus.of_program prog
      in
      make_path plans prog map
  | Pathafl -> make_pathafl prog map
